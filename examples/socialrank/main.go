// Socialrank: the paper's headline scenario — PageRank over a skewed
// social graph when messages overflow memory. Runs all five engines under
// the same buffer pressure and prints the comparison the paper's Fig. 8
// plots, plus hybrid's per-superstep mode trace.
//
//	go run ./examples/socialrank [-vertices 20000] [-buffer 500]
package main

import (
	"flag"
	"fmt"
	"log"

	"hybridgraph"
)

func main() {
	vertices := flag.Int("vertices", 20000, "graph size")
	buffer := flag.Int("buffer", 0, "message buffer per worker (0 = 5% of vertices)")
	flag.Parse()

	n := *vertices
	g := hybridgraph.GenRMAT(n, n*18, 0.6, 0.15, 0.15, 7)
	buf := *buffer
	if buf == 0 {
		buf = n / 20
	}
	prog := hybridgraph.PageRank(0.85)
	cfg := hybridgraph.Config{Workers: 5, MsgBuf: buf, MaxSteps: 5, VertexCache: n / 5 * 4 / 5}

	fmt.Printf("PageRank over %d vertices / %d edges, buffer %d msgs/worker, 5 workers\n\n",
		g.NumVertices, g.NumEdges(), buf)
	fmt.Printf("%-8s %12s %14s %12s %10s\n", "engine", "sim-time(s)", "disk-bytes", "net-bytes", "spilled")
	for _, e := range hybridgraph.Engines {
		res, err := hybridgraph.Run(g, prog, cfg, e)
		if err != nil {
			fmt.Printf("%-8s %12s\n", e, "F") // not runnable, like the paper's F bars
			continue
		}
		var spilled int64
		for _, s := range res.Steps {
			spilled += s.Spilled
		}
		fmt.Printf("%-8s %12.4f %14d %12d %10d\n",
			e, res.SimSeconds, res.IO.DevTotal(), res.NetBytes, spilled)
	}

	res, err := hybridgraph.Run(g, prog, cfg, hybridgraph.Hybrid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhybrid mode trace (Qt >= 0 keeps b-pull, Qt < 0 prefers push):")
	for _, s := range res.Steps {
		marker := ""
		if s.SwitchedFrom != "" {
			marker = "  <-- switched from " + s.SwitchedFrom
		}
		fmt.Printf("  step %2d  %-7s Qt=%+.4g%s\n", s.Step, s.Mode, s.Qt, marker)
	}
}
