// Communities: label propagation (LPA) over a clustered graph. LPA's
// messages are community labels — a majority vote needs every neighbour's
// label, so messages cannot be combined and the engines exercise the
// concatenate-only path (Eq. 6 Vblock sizing, no pushM).
//
//	go run ./examples/communities
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"hybridgraph"
)

func main() {
	hoods := flag.Int("neighborhoods", 60, "number of planted communities")
	flag.Parse()

	// Strongly clustered graph: 96% of edges stay inside a neighbourhood.
	size := 50
	n := *hoods * size
	g := hybridgraph.GenWeb(n, n*12, size, 0.96, 123)

	res, err := hybridgraph.Run(g, hybridgraph.LPA(), hybridgraph.Config{
		Workers:  4,
		MsgBuf:   n / 10,
		MaxSteps: 8,
	}, hybridgraph.Hybrid)
	if err != nil {
		log.Fatal(err)
	}

	sizes := map[float64]int{}
	for _, label := range res.Values {
		sizes[label]++
	}
	type comm struct {
		label float64
		size  int
	}
	var comms []comm
	for l, s := range sizes {
		comms = append(comms, comm{l, s})
	}
	sort.Slice(comms, func(i, j int) bool { return comms[i].size > comms[j].size })

	fmt.Printf("LPA over %d vertices / %d edges (%d planted neighbourhoods): %d supersteps, %.3f s sim\n\n",
		g.NumVertices, g.NumEdges(), *hoods, res.Supersteps(), res.SimSeconds)
	fmt.Printf("found %d communities; largest:\n", len(comms))
	for i, c := range comms {
		if i == 10 {
			break
		}
		fmt.Printf("  label %6.0f: %4d members\n", c.label, c.size)
	}

	// How well do detected communities align with the planted ones? Count
	// vertices whose label lives in their own neighbourhood.
	aligned := 0
	for v, label := range res.Values {
		if int(label)/size == v/size {
			aligned++
		}
	}
	fmt.Printf("\n%.1f%% of vertices carry a label from their own planted neighbourhood\n",
		100*float64(aligned)/float64(n))
}
