// Adcampaign: the SA workload from the paper (via Mizan) — advertisements
// spreading through a social network. Selected users advertise; a user
// adopts the ad most of their responding friends hold and forwards it only
// if interested. The adoption frontier surges and collapses, the behaviour
// that stresses the hybrid switcher's predictions (Figs. 11-13).
//
//	go run ./examples/adcampaign [-ads 12] [-interest 55]
package main

import (
	"flag"
	"fmt"
	"log"

	"hybridgraph"
)

func main() {
	ads := flag.Int("ads", 12, "number of competing advertisements")
	interest := flag.Uint("interest", 55, "percent chance a user is interested in a given ad")
	flag.Parse()

	n := 20000
	g := hybridgraph.GenRMAT(n, n*16, 0.6, 0.15, 0.15, 2026)
	prog := hybridgraph.SA(64, *ads, uint32(*interest))

	res, err := hybridgraph.Run(g, prog, hybridgraph.Config{
		Workers:  5,
		MsgBuf:   n / 20,
		MaxSteps: 40,
	}, hybridgraph.Hybrid)
	if err != nil {
		log.Fatal(err)
	}

	adoption := map[int]int{}
	reached := 0
	for _, v := range res.Values {
		if v >= 0 {
			adoption[int(v)]++
			reached++
		}
	}
	fmt.Printf("SA over %d users / %d friendships, %d ads, %d%% interest\n",
		g.NumVertices, g.NumEdges(), *ads, *interest)
	fmt.Printf("%d supersteps, %.3f s simulated; %d/%d users adopted an ad\n\n",
		res.Supersteps(), res.SimSeconds, reached, n)

	fmt.Println("adoption per advertisement:")
	for ad := 0; ad < *ads; ad++ {
		fmt.Printf("  ad %2d: %5d users\n", ad, adoption[ad])
	}

	fmt.Println("\ncampaign wave (newly persuaded users per superstep):")
	for _, s := range res.Steps {
		bar := ""
		for i := int64(0); i < s.Responding; i += int64(1 + n/800) {
			bar += "#"
		}
		fmt.Printf("  step %2d  %-7s %6d %s\n", s.Step, s.Mode, s.Responding, bar)
		if s.Responding == 0 {
			break
		}
	}
}
