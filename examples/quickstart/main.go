// Quickstart: run PageRank over a small social graph with the hybrid
// engine and print the top-ranked vertices.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"hybridgraph"
)

func main() {
	// A skewed power-law graph standing in for a social network.
	g := hybridgraph.GenRMAT(5000, 70000, 0.57, 0.19, 0.19, 42)

	res, err := hybridgraph.Run(g, hybridgraph.PageRank(0.85), hybridgraph.Config{
		Workers:  5,
		MsgBuf:   500, // limited memory: ~500 buffered messages per worker
		MaxSteps: 10,
	}, hybridgraph.Hybrid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PageRank over %d vertices / %d edges: %d supersteps, %.3f s simulated\n",
		g.NumVertices, g.NumEdges(), res.Supersteps(), res.SimSeconds)
	fmt.Printf("disk I/O: %d B (device), network: %d B\n\n", res.IO.DevTotal(), res.NetBytes)

	type vr struct {
		v    int
		rank float64
	}
	ranks := make([]vr, len(res.Values))
	for v, r := range res.Values {
		ranks[v] = vr{v, r}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].rank > ranks[j].rank })
	fmt.Println("top 10 vertices by rank:")
	for _, r := range ranks[:10] {
		fmt.Printf("  vertex %5d  rank %.6f\n", r.v, r.rank)
	}
}
