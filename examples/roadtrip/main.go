// Roadtrip: single-source shortest paths over a long-diameter network —
// the workload whose shifting message volume makes the hybrid engine
// shine. The frontier grows (b-pull territory), peaks, and decays through
// a long convergent tail (push territory); hybrid switches between them
// while push and b-pull each pay for their weak phase.
//
//	go run ./examples/roadtrip [-towns 200]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"hybridgraph"
)

func main() {
	towns := flag.Int("towns", 200, "number of towns (clusters) along the road network")
	flag.Parse()

	// A road-trip-flavoured graph: a long chain of towns, each an internal
	// cluster, with local roads dominating — built from the host-clustered
	// web generator, whose intra-host edges play the role of town streets.
	n := *towns * 40
	g := hybridgraph.GenWeb(n, n*8, 40, 0.9, 99)
	prog := hybridgraph.SSSP(0)
	cfg := hybridgraph.Config{Workers: 4, MsgBuf: n / 25, MaxSteps: 120, VertexCache: n / 4 * 4 / 5}

	fmt.Printf("SSSP from vertex 0 over %d vertices / %d edges\n\n", g.NumVertices, g.NumEdges())
	fmt.Printf("%-8s %6s %12s %14s %12s\n", "engine", "steps", "sim-time(s)", "disk-bytes", "net-bytes")
	var hybridRes *hybridgraph.Result
	for _, e := range []hybridgraph.Engine{hybridgraph.Push, hybridgraph.BPull, hybridgraph.Hybrid} {
		res, err := hybridgraph.Run(g, prog, cfg, e)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %6d %12.4f %14d %12d\n",
			e, res.Supersteps(), res.SimSeconds, res.IO.DevTotal(), res.NetBytes)
		if e == hybridgraph.Hybrid {
			hybridRes = res
		}
	}

	reached, maxDist := 0, 0.0
	for _, d := range hybridRes.Values {
		if !math.IsInf(d, 1) {
			reached++
			if d > maxDist {
				maxDist = d
			}
		}
	}
	fmt.Printf("\nreached %d/%d vertices; farthest distance %.2f\n", reached, len(hybridRes.Values), maxDist)

	fmt.Println("\nfrontier and engine choice per superstep:")
	for _, s := range hybridRes.Steps {
		bar := ""
		for i := int64(0); i < s.Responding/int64(1+len(hybridRes.Values)/400); i++ {
			bar += "#"
		}
		fmt.Printf("  %3d %-7s %6d %s\n", s.Step, s.Mode, s.Responding, bar)
		if s.Responding == 0 {
			break
		}
	}
}
