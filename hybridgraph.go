// Package hybridgraph is a from-scratch Go implementation of HybridGraph
// (Wang et al., "Hybrid Pulling/Pushing for I/O-Efficient Distributed and
// Iterative Graph Computing", SIGMOD 2016): a Pregel-style vertex-centric
// BSP graph engine whose graph and message data are disk-resident, with
// five interchangeable message-handling engines —
//
//   - Push: Giraph-style pushing with buffer-bounded receivers that spill
//     messages to disk (random writes) under memory pressure;
//   - PushM: MOCgraph-style message online computing onto a hot vertex set;
//   - Pull: a disk-extended PowerGraph-style vertex-cut gather baseline;
//   - BPull: the paper's block-centric pulling over the VE-BLOCK layout
//     (range-partitioned Vblocks, per-destination-block Eblocks whose edges
//     cluster into per-source fragments);
//   - Hybrid: adaptive switching between Push and BPull driven by the
//     performance metric Q^t of Eq. (11) and Theorem 2's initial-mode rule.
//
// The package is a facade over the internal packages: it re-exports the
// job runner, configuration, the four benchmark vertex programs
// (PageRank, SSSP, LPA, SA), the synthetic dataset generators standing in
// for the paper's six graphs, and the Table 3 hardware cost models.
//
// Quick start:
//
//	g := hybridgraph.GenRMAT(10_000, 140_000, 0.57, 0.19, 0.19, 1)
//	res, err := hybridgraph.Run(g, hybridgraph.PageRank(0.85),
//	    hybridgraph.Config{Workers: 5, MsgBuf: 1000}, hybridgraph.Hybrid)
//	if err != nil { ... }
//	fmt.Println(res.SimSeconds, res.Supersteps())
package hybridgraph

import (
	"bytes"
	"context"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/codec"
	"hybridgraph/internal/core"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/metrics"
	"hybridgraph/internal/obs"
)

// Engine selects a message-handling approach.
type Engine = core.Engine

// The five engines of the paper's evaluation.
const (
	Push   = core.Push
	PushM  = core.PushM
	Pull   = core.Pull
	BPull  = core.BPull
	Hybrid = core.Hybrid
)

// Engines lists all engines in the paper's plotting order.
var Engines = core.Engines

// Config parameterises one job; zero values select the paper's defaults
// (5 workers, unlimited buffer, HDD cost model, per-worker compute
// parallelism of NumCPU/Workers). Parallelism never changes results:
// vertex values, I/O totals, wire bytes and trace events are byte-
// identical at any setting. See core.Config for every knob.
type Config = core.Config

// Result carries per-superstep statistics, aggregate simulated/wall time,
// byte counters and the final vertex values.
type Result = metrics.JobResult

// StepStats is one superstep's aggregated statistics.
type StepStats = metrics.StepStats

// Program is a vertex program in the decoupled update/pullRes form the
// hybrid engine requires (Section 5.2 of the paper).
type Program = algo.Program

// Graph is the staged in-memory directed graph used to build the
// per-worker disk stores.
type Graph = graph.Graph

// VertexID identifies a vertex.
type VertexID = graph.VertexID

// Profile is a hardware cost model (device and network throughputs).
type Profile = diskio.Profile

// The paper's Table 3 cluster profiles.
var (
	HDDLocal  = diskio.HDDLocal
	SSDAmazon = diskio.SSDAmazon
)

// FaultPlan is a deterministic schedule of injected faults: worker
// crashes and stalls at (superstep, worker) points and, over TCP, seeded
// transport faults. Assign one to Config.FaultPlan and pick a
// Config.Recovery policy ("scratch", "resume", "checkpoint" or
// "confined").
type FaultPlan = faultplan.Plan

// Crash is one scheduled worker failure.
type Crash = faultplan.Crash

// Stall is one scheduled worker hang, detected by the master's
// barrier-deadline supervision (see Config.BarrierDeadline) instead of at
// superstep start — the survivors complete the superstep the stalled
// worker misses.
type Stall = faultplan.Stall

// TransportFaults seeds the resilient TCP fabric's fault injector with
// drop/delay/duplicate probabilities.
type TransportFaults = faultplan.TransportFaults

// DiskFaults seeds the storage-fault injector installed over the job's
// working directory: ENOSPC, torn writes, failed fsyncs, bit-flip reads
// and a simulated power cut, all drawn from a deterministic stream.
// Attach one to a plan with FaultPlan.WithDisk.
type DiskFaults = diskio.FaultConfig

// ErrDiskFault matches (via errors.Is) every injected storage fault. A
// job that fails under disk-fault injection fails with an error wrapping
// this sentinel; real I/O errors annotated by the layer do not match.
var ErrDiskFault = diskio.ErrDiskFault

// IsPowerCut reports whether err is (or wraps) a simulated power cut —
// the one storage fault no in-process retry survives.
func IsPowerCut(err error) bool { return diskio.IsPowerCut(err) }

// NewFaultPlan builds a crash schedule (sorted by superstep). Chain
// WithStalls to add worker hangs.
func NewFaultPlan(crashes ...Crash) *FaultPlan { return faultplan.NewPlan(crashes...) }

// RandomCrashes derives a deterministic schedule of n distinct-superstep
// crashes from a seed.
func RandomCrashes(seed int64, n, maxStep, workers int) []Crash {
	return faultplan.RandomCrashes(seed, n, maxStep, workers)
}

// RandomStalls derives a deterministic schedule of n distinct-superstep
// worker hangs from a seed.
func RandomStalls(seed int64, n, maxStep, workers int) []Stall {
	return faultplan.RandomStalls(seed, n, maxStep, workers)
}

// PermanentCrash schedules a crash the machine never returns from:
// under Config.Recovery "reassign" a survivor adopts the dead worker's
// partition instead of restoring it.
func PermanentCrash(step, worker int) Crash {
	return faultplan.PermanentCrash(step, worker)
}

// RandomPermanentCrashes derives a deterministic schedule of n
// distinct-superstep permanent machine losses from a seed.
func RandomPermanentCrashes(seed int64, n, maxStep, workers int) []Crash {
	return faultplan.RandomPermanentCrashes(seed, n, maxStep, workers)
}

// RecoveryNotice is the event Config.OnRecovery receives after each
// recovery action: Kind "crash", "stall" or "reassign" (for a reassign,
// Host is the surviving worker that adopted the dead partition and
// Epoch the new ownership epoch).
type RecoveryNotice = core.RecoveryNotice

// ErrInjectedFailure matches (via errors.Is) the typed error a scheduled
// crash raises inside the engines; recovery normally absorbs it.
var ErrInjectedFailure = core.ErrInjectedFailure

// ErrStalledWorker matches (via errors.Is) the typed error the master's
// barrier-deadline supervision raises for a hung worker; recovery
// normally absorbs it.
var ErrStalledWorker = core.ErrStalledWorker

// ErrNoSurvivors matches (via errors.Is) the typed failure a
// reassignment raises when every worker is permanently dead, so no
// survivor can adopt the failed partition.
var ErrNoSurvivors = core.ErrNoSurvivors

// ErrCodecCorrupt matches (via errors.Is) every decode failure of a
// compressed block (Config.Codec): bad frame magic, truncation, CRC
// mismatch, or a payload that does not decode to its declared length. A
// bit flip in a compressed store surfaces as this or as ErrDiskFault,
// never as silently wrong values.
var ErrCodecCorrupt = codec.ErrCorrupt

// ErrUnknownCodec matches (via errors.Is) the validation failure for a
// Config.Codec name that is not registered (have: none, delta, lz).
var ErrUnknownCodec = codec.ErrUnknown

// Run executes prog over g with the given engine and returns the result.
func Run(g *Graph, prog Program, cfg Config, engine Engine) (*Result, error) {
	return core.Run(g, prog, cfg, engine)
}

// RunContext is Run under a context: cancelling ctx (or exceeding its
// deadline) aborts the job promptly — the master checks it at every
// superstep barrier and both comm fabrics fail in-flight exchanges fast —
// returning an error matching ctx's cause via errors.Is.
func RunContext(ctx context.Context, g *Graph, prog Program, cfg Config, engine Engine) (*Result, error) {
	return core.RunContext(ctx, g, prog, cfg, engine)
}

// StoreSource supplies pre-built read-only edge stores to a job (set
// Config.Stores); a catalog Entry implements it. See internal/catalog and
// internal/service for the persistent catalog and the service daemon.
type StoreSource = core.StoreSource

// Metrics is a live counter/gauge registry. Assign one to Config.Metrics
// and every subsystem under the job — engines, comm fabrics, message
// stores, pull caches, checkpointing — reports into it; snapshot it any
// time or serve it via StartDebug. The zero registry cannot be used; call
// NewMetrics.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// DebugServer is a running observability HTTP server (see StartDebug).
type DebugServer = obs.DebugServer

// StartDebug serves plain-text metrics at /metrics, expvar at /debug/vars
// and pprof at /debug/pprof/ on addr (e.g. "localhost:6060"). reg may be
// nil to serve pprof/expvar only.
func StartDebug(addr string, reg *Metrics) (*DebugServer, error) {
	return obs.StartDebug(addr, reg)
}

// PageRank returns the paper's Fig. 3 PageRank program (Always-Active).
func PageRank(damping float64) Program { return algo.NewPageRank(damping) }

// SSSP returns single-source shortest paths from source (Traversal).
func SSSP(source VertexID) Program { return algo.NewSSSP(source) }

// LPA returns label-propagation community detection (Always-Active,
// non-combinable messages).
func LPA() Program { return algo.NewLPA() }

// SA returns the social-advertisement simulation from Mizan (Traversal,
// non-combinable messages). Every sourceEvery-th vertex advertises one of
// numAds ads; interestPct is the forwarding probability in percent.
func SA(sourceEvery, numAds int, interestPct uint32) Program {
	return algo.NewSA(sourceEvery, numAds, interestPct)
}

// AlgorithmByName resolves "pagerank", "sssp", "lpa", "sa" or
// "multiphase" with default parameters.
func AlgorithmByName(name string, source VertexID) (Program, bool) {
	return algo.ByName(name, source)
}

// GenRMAT generates a skewed power-law directed graph (social networks).
func GenRMAT(n, m int, a, b, c float64, seed int64) *Graph {
	return graph.GenRMAT(n, m, a, b, c, seed)
}

// GenWeb generates a host-clustered web graph with strong locality.
func GenWeb(n, m, hostSize int, intraProb float64, seed int64) *Graph {
	return graph.GenWeb(n, m, hostSize, intraProb, seed)
}

// GenUniform generates an Erdős–Rényi style directed graph.
func GenUniform(n, m int, seed int64) *Graph { return graph.GenUniform(n, m, seed) }

// Dataset is a synthetic stand-in for one of the paper's Table 4 graphs.
type Dataset = graph.Dataset

// Datasets mirrors the paper's Table 4 (livej, wiki, orkut, twi, fri, uk).
var Datasets = graph.Datasets

// DatasetByName looks a Table 4 dataset up by name.
func DatasetByName(name string) (Dataset, error) { return graph.DatasetByName(name) }

// WCC returns weakly-connected-components by min-label propagation; run
// it on a Symmetrize'd graph.
func WCC() Program { return algo.NewWCC() }

// ConvergingPageRank is PageRank with an aggregator-driven halt: the job
// stops once the global L1 rank change drops below epsilon.
func ConvergingPageRank(damping, epsilon float64) Program {
	return algo.NewConvergingPageRank(damping, epsilon)
}

// Matching returns Pregel-style bipartite maximal matching (Multi-Phase-
// Style; run on a GenBipartite graph).
func Matching(maxAttempts int) Program { return algo.NewMatching(maxAttempts) }

// GenBipartite builds a bipartite graph (even ids left, odd ids right)
// with edges stored in both directions.
func GenBipartite(n, m int, seed int64) *Graph { return algo.GenBipartite(n, m, seed) }

// Symmetrize returns g plus the reverse of every edge.
func Symmetrize(g *Graph) *Graph { return algo.Symmetrize(g) }

// Relabel renames every vertex v to perm[v]; combined with BFSOrder or
// DegreeOrder it expresses arbitrary partitioning strategies over the
// range-partitioned stores (the paper's footnote 1).
func Relabel(g *Graph, perm []VertexID) *Graph { return graph.Relabel(g, perm) }

// BFSOrder returns a locality-improving renumbering (fewer VE-BLOCK
// fragments on clustered graphs).
func BFSOrder(g *Graph) []VertexID { return graph.BFSOrder(g) }

// DegreeOrder returns a hubs-first renumbering.
func DegreeOrder(g *Graph) []VertexID { return graph.DegreeOrder(g) }

// LoadEdgeList reads a graph from a "src dst [weight]" text file.
func LoadEdgeList(path string) (*Graph, error) { return graph.LoadEdgeList(path) }

// ParseEdgeList reads a graph from in-memory edge-list text.
func ParseEdgeList(data []byte) (*Graph, error) {
	return graph.ReadEdgeList(bytes.NewReader(data))
}

// SaveEdgeList writes a graph to a text edge-list file.
func SaveEdgeList(path string, g *Graph) error { return graph.SaveEdgeList(path, g) }
