package comm

import (
	"testing"

	"hybridgraph/internal/graph"
)

func newTCPPair(t *testing.T) (*TCP, *recorder) {
	t.Helper()
	fab, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fab.Close() })
	r := &recorder{}
	fab.Register(1, r)
	return fab, r
}

func TestTCPSend(t *testing.T) {
	fab, r := newTCPPair(t)
	p := &Packet{From: 0, To: 1, Step: 3, Msgs: []Msg{{Dst: 7, Val: 1.5}, {Dst: 8, Val: 2.5}}}
	if err := fab.Send(p); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.packets) != 1 {
		t.Fatalf("packets = %d", len(r.packets))
	}
	got := r.packets[0]
	if got.Step != 3 || len(got.Msgs) != 2 || got.Msgs[1].Val != 2.5 {
		t.Fatalf("packet = %+v", got)
	}
	if fab.TotalBytes() != 2*MsgWireSize {
		t.Fatalf("total bytes = %d", fab.TotalBytes())
	}
}

func TestTCPPullRequest(t *testing.T) {
	fab, r := newTCPPair(t)
	r.mu.Lock()
	r.pullOut = []Msg{{Dst: 3, Val: 9}}
	r.mu.Unlock()
	msgs, wire, err := fab.PullRequest(0, 1, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Val != 9 {
		t.Fatalf("msgs = %v", msgs)
	}
	if wire != ConcatSize(r.pullOut) {
		t.Fatalf("wire = %d", wire)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.pulls) != 1 || r.pulls[0] != 5 {
		t.Fatalf("pulls = %v", r.pulls)
	}
}

func TestTCPGatherAndSignal(t *testing.T) {
	fab, r := newTCPPair(t)
	ids := []graph.VertexID{1, 2}
	res, err := fab.Gather(0, 1, ids, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Vals[0] != 1 {
		t.Fatalf("gather = %v", res)
	}
	if err := fab.Signal(0, 1, ids, 4); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.signals) != 1 {
		t.Fatalf("signals = %v", r.signals)
	}
}

func TestTCPUnregisteredHandler(t *testing.T) {
	fab, _ := newTCPPair(t)
	// Worker 0 has no handler.
	if err := fab.Send(&Packet{From: 1, To: 0, Msgs: []Msg{{Dst: 1}}}); err == nil {
		t.Fatal("Send to unregistered worker should fail")
	}
	if _, _, err := fab.PullRequest(1, 9, 0, 1); err == nil {
		t.Fatal("PullRequest to nonexistent worker should fail")
	}
}

func TestTCPConcurrentRequests(t *testing.T) {
	fab, _ := newTCPPair(t)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			_, _, err := fab.PullRequest(0, 1, i, 2)
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
