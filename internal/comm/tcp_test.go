package comm

import (
	"testing"
	"time"

	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
)

func newTCPPair(t *testing.T) (*TCP, *recorder) {
	t.Helper()
	fab, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fab.Close() })
	r := &recorder{}
	fab.Register(1, r)
	return fab, r
}

func TestTCPSend(t *testing.T) {
	fab, r := newTCPPair(t)
	p := &Packet{From: 0, To: 1, Step: 3, Msgs: []Msg{{Dst: 7, Val: 1.5}, {Dst: 8, Val: 2.5}}}
	if err := fab.Send(p); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.packets) != 1 {
		t.Fatalf("packets = %d", len(r.packets))
	}
	got := r.packets[0]
	if got.Step != 3 || len(got.Msgs) != 2 || got.Msgs[1].Val != 2.5 {
		t.Fatalf("packet = %+v", got)
	}
	if fab.TotalBytes() != 2*MsgWireSize {
		t.Fatalf("total bytes = %d", fab.TotalBytes())
	}
}

func TestTCPPullRequest(t *testing.T) {
	fab, r := newTCPPair(t)
	r.mu.Lock()
	r.pullOut = []Msg{{Dst: 3, Val: 9}}
	r.mu.Unlock()
	msgs, wire, err := fab.PullRequest(0, 1, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Val != 9 {
		t.Fatalf("msgs = %v", msgs)
	}
	if wire != ConcatSize(r.pullOut) {
		t.Fatalf("wire = %d", wire)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.pulls) != 1 || r.pulls[0] != 5 {
		t.Fatalf("pulls = %v", r.pulls)
	}
}

func TestTCPGatherAndSignal(t *testing.T) {
	fab, r := newTCPPair(t)
	ids := []graph.VertexID{1, 2}
	res, err := fab.Gather(0, 1, ids, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Vals[0] != 1 {
		t.Fatalf("gather = %v", res)
	}
	if err := fab.Signal(0, 1, ids, 4); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.signals) != 1 {
		t.Fatalf("signals = %v", r.signals)
	}
}

func TestTCPUnregisteredHandler(t *testing.T) {
	fab, _ := newTCPPair(t)
	// Worker 0 has no handler.
	if err := fab.Send(&Packet{From: 1, To: 0, Msgs: []Msg{{Dst: 1}}}); err == nil {
		t.Fatal("Send to unregistered worker should fail")
	}
	if _, _, err := fab.PullRequest(1, 9, 0, 1); err == nil {
		t.Fatal("PullRequest to nonexistent worker should fail")
	}
}

func TestTCPConcurrentRequests(t *testing.T) {
	fab, _ := newTCPPair(t)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			_, _, err := fab.PullRequest(0, 1, i, 2)
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func newFaultyTCPPair(t *testing.T, faults faultplan.TransportFaults) (*TCP, *recorder) {
	t.Helper()
	fab, err := NewTCPConfig(2, TCPConfig{
		Timeout: 30 * time.Millisecond,
		Faults:  &faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fab.Close() })
	r := &recorder{}
	fab.Register(1, r)
	return fab, r
}

// TestTCPFaultyExactlyOnce floods a lossy, duplicating, delaying link with
// sends and signals; every logical operation must be applied to the
// handler exactly once, and the semantic byte accounting must match what a
// fault-free fabric would charge.
func TestTCPFaultyExactlyOnce(t *testing.T) {
	fab, r := newFaultyTCPPair(t, faultplan.TransportFaults{
		Seed:         11,
		DropRequest:  0.15,
		DropResponse: 0.1,
		Duplicate:    0.15,
		Delay:        0.2,
		MaxDelay:     3 * time.Millisecond,
	})
	const n = 50
	for i := 0; i < n; i++ {
		p := &Packet{From: 0, To: 1, Step: 2, Msgs: []Msg{{Dst: graph.VertexID(i), Val: float64(i)}}}
		if err := fab.Send(p); err != nil {
			t.Fatal(err)
		}
		if err := fab.Signal(0, 1, []graph.VertexID{graph.VertexID(i)}, 2); err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.packets) != n {
		t.Fatalf("handler saw %d packets, want exactly %d (no loss, no duplicates)", len(r.packets), n)
	}
	seen := map[graph.VertexID]bool{}
	for _, p := range r.packets {
		if len(p.Msgs) != 1 || seen[p.Msgs[0].Dst] {
			t.Fatalf("duplicate or malformed delivery: %+v", p)
		}
		seen[p.Msgs[0].Dst] = true
	}
	if len(r.signals) != n {
		t.Fatalf("handler saw %d signal batches, want exactly %d", len(r.signals), n)
	}
	if want := int64(n)*MsgWireSize + int64(n)*GatherIDSize; fab.TotalBytes() != want {
		t.Fatalf("total bytes = %d, want %d (retries must not be double-charged)", fab.TotalBytes(), want)
	}
}

// TestTCPFaultyPullsMatchCleanResponses checks request/response round
// trips survive faults with responses intact and in order.
func TestTCPFaultyPullsMatchCleanResponses(t *testing.T) {
	fab, r := newFaultyTCPPair(t, faultplan.TransportFaults{
		Seed:         23,
		DropRequest:  0.2,
		DropResponse: 0.1,
		Duplicate:    0.1,
	})
	r.mu.Lock()
	r.pullOut = []Msg{{Dst: 3, Val: 9}, {Dst: 4, Val: 16}}
	r.mu.Unlock()
	for i := 0; i < 40; i++ {
		msgs, wire, err := fab.PullRequest(0, 1, i, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 2 || msgs[0].Val != 9 || msgs[1].Val != 16 {
			t.Fatalf("pull %d returned %v", i, msgs)
		}
		if wire != ConcatSize(msgs) {
			t.Fatalf("pull %d wire = %d", i, wire)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.pulls) != 40 {
		t.Fatalf("handler answered %d pulls, want exactly 40", len(r.pulls))
	}
}

// TestTCPFaultyConcurrent hammers the lossy fabric from many goroutines;
// run under -race this covers the per-peer dial locks, connection
// invalidation and the dedup table's in-flight waiters.
func TestTCPFaultyConcurrent(t *testing.T) {
	fab, r := newFaultyTCPPair(t, faultplan.TransportFaults{
		Seed:         37,
		DropRequest:  0.1,
		DropResponse: 0.1,
		Duplicate:    0.2,
		Delay:        0.2,
		MaxDelay:     2 * time.Millisecond,
	})
	const n = 32
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			if i%2 == 0 {
				_, _, err := fab.PullRequest(0, 1, i, 2)
				done <- err
				return
			}
			done <- fab.Send(&Packet{From: 0, To: 1, Step: 2, Msgs: []Msg{{Dst: graph.VertexID(i)}}})
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.packets) != n/2 || len(r.pulls) != n/2 {
		t.Fatalf("handler saw %d packets and %d pulls, want %d each", len(r.packets), len(r.pulls), n/2)
	}
}

// TestTCPDroppedResponseStillAppliedOnce is the sharpest exactly-once
// case: every response is lost, so the client retries until it gives up —
// yet the handler must have applied the operation exactly once.
func TestTCPDroppedResponseStillAppliedOnce(t *testing.T) {
	fab, err := NewTCPConfig(2, TCPConfig{
		Timeout:    20 * time.Millisecond,
		MaxRetries: 3,
		Faults:     &faultplan.TransportFaults{Seed: 5, DropResponse: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fab.Close() })
	r := &recorder{}
	fab.Register(1, r)
	if err := fab.Send(&Packet{From: 0, To: 1, Msgs: []Msg{{Dst: 1, Val: 1}}}); err == nil {
		t.Fatal("Send should fail when every response is lost")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.packets) != 1 {
		t.Fatalf("handler applied the send %d times, want exactly 1", len(r.packets))
	}
}

// TestTCPGivesUpOnDeadPeer checks roundTrip no longer blocks forever: a
// peer that never answers costs a bounded number of timed-out attempts.
func TestTCPGivesUpOnDeadPeer(t *testing.T) {
	fab, err := NewTCPConfig(2, TCPConfig{
		Timeout:    15 * time.Millisecond,
		MaxRetries: 2,
		Faults:     &faultplan.TransportFaults{Seed: 1, DropRequest: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fab.Close() })
	fab.Register(1, &recorder{})
	start := time.Now()
	if err := fab.Signal(0, 1, []graph.VertexID{1}, 1); err == nil {
		t.Fatal("Signal to a black-holed peer should eventually fail")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("giving up took %v; retries are not bounded", elapsed)
	}
}

// TestTCPStaleEpochRetry: the receiver rejects a request stamped with a
// pre-reassignment epoch (before the dedup layer can cache the rejection)
// and the sender transparently re-stamps and retries.
func TestTCPStaleEpochRetry(t *testing.T) {
	fab, r := newTCPPair(t)
	if e := fab.AdvanceEpoch(); e != 2 {
		t.Fatalf("AdvanceEpoch = %d, want 2", e)
	}
	p := &Packet{From: 0, To: 1, Epoch: 1, Msgs: []Msg{{Dst: 2, Val: 5}}}
	if err := fab.Send(p); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.packets) != 1 {
		t.Fatalf("delivered %d times, want exactly 1 after the stale retry", len(r.packets))
	}
}

// TestTCPRehomeRedirectsTraffic: after Rehome the dead worker's address
// points at the survivor, whose server dispatches by the addressed
// worker id, so traffic to the adopted origin still reaches its handler.
func TestTCPRehomeRedirectsTraffic(t *testing.T) {
	fab, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fab.Close() })
	r0, r1 := &recorder{}, &recorder{}
	fab.Register(0, r0)
	fab.Register(1, r1)
	fab.AdvanceEpoch()
	fab.Rehome(1, 0)
	if err := fab.Send(&Packet{From: 0, To: 1, Msgs: []Msg{{Dst: 9, Val: 3}}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fab.PullRequest(0, 1, 0, 2); err != nil {
		t.Fatalf("pull to the rehomed origin failed: %v", err)
	}
	r1.mu.Lock()
	defer r1.mu.Unlock()
	if len(r1.packets) != 1 {
		t.Fatalf("adopted origin's handler saw %d packets, want 1", len(r1.packets))
	}
	if len(r1.pulls) != 1 {
		t.Fatalf("adopted origin's handler saw %d pulls, want 1", len(r1.pulls))
	}
	r0.mu.Lock()
	defer r0.mu.Unlock()
	if len(r0.packets) != 0 || len(r0.pulls) != 0 {
		t.Fatal("host's own handler received the rehomed traffic")
	}
}
