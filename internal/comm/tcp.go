package comm

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/obs"
)

// TCP is a fabric whose traffic really crosses loopback TCP sockets with
// gob framing: each worker owns a listener, requests are dispatched to the
// registered handler on the serving side, and responses travel back on the
// same connection. Byte accounting uses the same semantic wire sizes as
// the Local fabric (message ids and values, not gob framing overhead or
// retry duplicates), so the cost model is transport-independent.
//
// The fabric is resilient: every request carries a deadline, transport
// errors (timeouts, broken pipes, resets) trigger bounded retries with
// exponential backoff and jitter over a fresh connection, and the serving
// side deduplicates by sequence number so a retried Send or Signal whose
// original was processed — only its response lost — is not applied twice.
// Injected transport faults from a faultplan exercise exactly these paths
// deterministically.
type TCP struct {
	mu        sync.RWMutex // guards handlers, addrs elements, counters below
	handlers  map[int]Handler
	listeners []net.Listener
	addrs     []string
	peers     []*tcpPeer
	dedups    []*dedup
	cfg       TCPConfig
	ctx       ctxHolder
	roller    *faultplan.Roller
	seq       atomic.Uint64
	epoch     atomic.Int64
	in        []atomic.Int64
	out       []atomic.Int64
	total     atomic.Int64
	closed    atomic.Bool

	jmu  sync.Mutex // guards jrng (retry jitter)
	jrng *rand.Rand

	mRequests *obs.Counter // "comm.tcp.requests"
	mRetries  *obs.Counter // "comm.tcp.retries"
	mRedials  *obs.Counter // "comm.tcp.redials"
	mStale    *obs.Counter // "comm.stale_epoch"
}

// TCPConfig tunes the fabric's resilience machinery. Zero values select
// defaults.
type TCPConfig struct {
	// Timeout is the per-request deadline covering one send+receive round
	// trip. Default 5s, or 150ms when Faults are injected (loopback round
	// trips are microseconds; a short deadline keeps fault runs brisk, and
	// a spurious timeout is harmless — the retry is deduplicated).
	Timeout time.Duration
	// MaxRetries bounds the retransmissions after the first attempt
	// (default 8).
	MaxRetries int
	// Backoff is the base of the exponential retry backoff (default 1ms;
	// doubled per attempt, capped at 100ms, plus up to 100% jitter).
	Backoff time.Duration
	// Faults, when non-nil, injects seeded transport faults on the serving
	// side: dropped requests, dropped responses, duplicated deliveries and
	// delays.
	Faults *faultplan.TransportFaults
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.Timeout <= 0 {
		if c.Faults != nil {
			c.Timeout = 150 * time.Millisecond
		} else {
			c.Timeout = 5 * time.Second
		}
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	return c
}

// errFabricClosed reports a roundTrip raced with Close.
var errFabricClosed = errors.New("comm: tcp fabric closed")

// tcpPeer is the client side's state for one destination worker. The
// per-peer lock means dialing one slow peer never blocks traffic to the
// others (and never blocks handler registration, which has its own lock).
type tcpPeer struct {
	mu   sync.Mutex
	conn *tcpConn
}

type tcpConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

// do performs one framed round trip under the request deadline. The
// connection lock serialises concurrent requests onto the shared stream.
func (c *tcpConn) do(req *tcpRequest, resp *tcpResponse, timeout time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if timeout > 0 {
		c.c.SetDeadline(time.Now().Add(timeout))
		defer c.c.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return err
	}
	return c.dec.Decode(resp)
}

const (
	tcpSend = iota
	tcpPull
	tcpGather
	tcpSignal
)

type tcpRequest struct {
	Kind  int
	Seq   uint64 // fabric-wide id: constant across retries, the dedup key
	Epoch int64  // sender's block-ownership epoch (0 = epoch-unaware)
	From  int
	To    int
	Step  int
	Block int
	Msgs  []Msg
	Wire  int64
	IDs   []graph.VertexID
}

type tcpResponse struct {
	Msgs    []Msg
	Wire    int64
	Results []GatherResult
	Err     string
	// Stale rejects a request stamped with a pre-reassignment epoch: the
	// client must re-stamp against the current ownership table and re-route
	// (redial — the endpoint may have been rehomed). Never cached by the
	// dedup layer, so the re-routed retry under the same Seq is processed.
	Stale bool
}

// dedup is one serving worker's exactly-once filter: the first delivery of
// a sequence number runs the handler, every later delivery (a client retry
// or a duplicated packet) waits for and returns the recorded response.
type dedup struct {
	mu      sync.Mutex
	entries map[dedupKey]*dedupEntry
	order   []dedupKey
	mHits   *obs.Counter // "comm.tcp.dedup_hits"; guarded by mu — serve
	// goroutines predate SetMetrics, so a bare field would race.
}

type dedupKey struct {
	from int
	seq  uint64
}

type dedupEntry struct {
	done chan struct{}
	resp tcpResponse
}

// dedupWindow bounds remembered responses per worker. Retries arrive
// within milliseconds of the original, so a few thousand entries is far
// more history than any in-flight retry needs.
const dedupWindow = 4096

func newDedup() *dedup {
	return &dedup{entries: make(map[dedupKey]*dedupEntry)}
}

func (d *dedup) do(from int, seq uint64, process func() tcpResponse) tcpResponse {
	key := dedupKey{from, seq}
	d.mu.Lock()
	if e, ok := d.entries[key]; ok {
		d.mHits.Inc()
		d.mu.Unlock()
		<-e.done
		return e.resp
	}
	e := &dedupEntry{done: make(chan struct{})}
	d.entries[key] = e
	d.order = append(d.order, key)
	for len(d.order) > dedupWindow {
		old := d.order[0]
		d.order = d.order[1:]
		oe := d.entries[old]
		if oe == nil {
			continue
		}
		select {
		case <-oe.done:
			delete(d.entries, old)
		default:
			// Still in flight; re-queue it and stop pruning for now.
			d.order = append(d.order, old)
		}
		break
	}
	d.mu.Unlock()
	e.resp = process()
	close(e.done)
	return e.resp
}

// NewTCP starts listeners for n workers on loopback with default
// resilience settings. Callers must Close it.
func NewTCP(n int) (*TCP, error) { return NewTCPConfig(n, TCPConfig{}) }

// NewTCPConfig starts a TCP fabric with explicit resilience settings and
// optional injected transport faults.
func NewTCPConfig(n int, cfg TCPConfig) (*TCP, error) {
	cfg = cfg.withDefaults()
	f := &TCP{
		handlers: make(map[int]Handler, n),
		cfg:      cfg,
		in:       make([]atomic.Int64, n),
		out:      make([]atomic.Int64, n),
		jrng:     rand.New(rand.NewSource(1)),
	}
	f.epoch.Store(1)
	if cfg.Faults != nil {
		f.roller = cfg.Faults.NewRoller()
	}
	for w := 0; w < n; w++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, err
		}
		f.listeners = append(f.listeners, ln)
		f.addrs = append(f.addrs, ln.Addr().String())
		f.peers = append(f.peers, &tcpPeer{})
		f.dedups = append(f.dedups, newDedup())
		go f.serve(w, ln)
	}
	return f, nil
}

// Close shuts the listeners and cached connections down. Safe to call
// while round trips are in flight: they fail fast instead of retrying
// against closed sockets.
func (f *TCP) Close() error {
	f.closed.Store(true)
	for _, ln := range f.listeners {
		ln.Close()
	}
	for _, p := range f.peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.c.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
	return nil
}

// SetMetrics wires the fabric's resilience counters into reg
// (obs.MetricsSetter). Call before the first superstep; a nil registry
// leaves metrics off.
func (f *TCP) SetMetrics(reg *obs.Registry) {
	f.mu.Lock()
	f.mRequests = reg.Counter("comm.tcp.requests")
	f.mRetries = reg.Counter("comm.tcp.retries")
	f.mRedials = reg.Counter("comm.tcp.redials")
	f.mStale = reg.Counter("comm.stale_epoch")
	f.mu.Unlock()
	for _, d := range f.dedups {
		d.mu.Lock()
		d.mHits = reg.Counter("comm.tcp.dedup_hits")
		d.mu.Unlock()
	}
	reg.RegisterFunc("comm.net_bytes", f.total.Load)
}

// SetContext implements ContextSetter: once ctx is cancelled, round trips
// in flight stop retrying, backoff sleeps abort, and new operations fail
// fast with the context's error.
func (f *TCP) SetContext(ctx context.Context) { f.ctx.SetContext(ctx) }

// Register implements Fabric.
func (f *TCP) Register(worker int, h Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handlers[worker] = h
}

func (f *TCP) serve(worker int, ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go f.serveConn(worker, c)
	}
}

func (f *TCP) serveConn(worker int, c net.Conn) {
	defer c.Close()
	dec := gob.NewDecoder(c)
	enc := gob.NewEncoder(c)
	for {
		var req tcpRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		// Epoch gate, BEFORE the dedup layer: a stale rejection must never
		// be recorded under the request's Seq, or the client's re-stamped
		// retry (same Seq) would be answered with the cached rejection
		// forever instead of being processed.
		if req.Epoch != 0 {
			if cur := f.epoch.Load(); req.Epoch < cur {
				f.mu.RLock()
				stale := f.mStale
				f.mu.RUnlock()
				stale.Inc()
				if err := enc.Encode(&tcpResponse{Stale: true}); err != nil {
					return
				}
				continue
			}
		}
		var d faultplan.Decision
		if f.roller != nil {
			d = f.roller.Roll()
		}
		if d.DropRequest {
			// The request never reached the server: no processing, no
			// response. The client times out and retries.
			continue
		}
		resp := f.dedups[worker].do(req.From, req.Seq, func() tcpResponse {
			return f.process(worker, &req)
		})
		if d.Duplicate {
			// The network delivered the request twice; the dedup layer must
			// absorb the copy without re-invoking the handler.
			f.dedups[worker].do(req.From, req.Seq, func() tcpResponse {
				return f.process(worker, &req)
			})
		}
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		if d.DropResponse {
			// Processed, but the response is lost: the client's retry must
			// be answered from the dedup record, not re-applied.
			continue
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// process dispatches one deduplicated request to its destination worker's
// handler. Dispatch is by req.To, not by which listener the request
// arrived on: after a Rehome, a dead worker's traffic lands on the
// adopting host's listener but must still reach the adopted unit's
// handler.
func (f *TCP) process(worker int, req *tcpRequest) tcpResponse {
	_ = worker
	var resp tcpResponse
	f.mu.RLock()
	h := f.handlers[req.To]
	f.mu.RUnlock()
	if h == nil {
		resp.Err = fmt.Sprintf("comm: no handler registered for worker %d", req.To)
		return resp
	}
	switch req.Kind {
	case tcpSend:
		p := &Packet{From: req.From, To: req.To, Step: req.Step, Msgs: req.Msgs, WireBytes: req.Wire}
		if err := h.DeliverMessages(p); err != nil {
			resp.Err = err.Error()
		}
	case tcpPull:
		msgs, wire, err := h.RespondPull(req.Block, req.Step)
		resp.Msgs, resp.Wire = msgs, wire
		if err != nil {
			resp.Err = err.Error()
		}
	case tcpGather:
		res, err := h.GatherValues(req.IDs, req.Step)
		resp.Results = res
		if err != nil {
			resp.Err = err.Error()
		}
	case tcpSignal:
		if err := h.DeliverSignals(req.IDs, req.Step); err != nil {
			resp.Err = err.Error()
		}
	default:
		resp.Err = fmt.Sprintf("comm: unknown request kind %d", req.Kind)
	}
	return resp
}

// Epoch implements Rehomer.
func (f *TCP) Epoch() int64 { return f.epoch.Load() }

// AdvanceEpoch implements Rehomer.
func (f *TCP) AdvanceEpoch() int64 { return f.epoch.Add(1) }

// Rehome implements Rehomer: traffic addressed to origin now dials the
// adopting host's endpoint. The dead endpoint's listener is closed, its
// cached client connection dropped so the next round trip redials, and
// its dedup history merged into the host's so a retry of a request the
// dead endpoint already applied — only its response lost — is still
// absorbed after the redial.
func (f *TCP) Rehome(origin, host int) {
	f.mu.Lock()
	f.addrs[origin] = f.addrs[host]
	f.mu.Unlock()
	if a, b := f.dedups[origin], f.dedups[host]; a != b {
		first, second := a, b
		if host < origin {
			first, second = b, a
		}
		first.mu.Lock()
		second.mu.Lock()
		for k, e := range a.entries {
			if _, ok := b.entries[k]; !ok {
				b.entries[k] = e
				b.order = append(b.order, k)
			}
		}
		second.mu.Unlock()
		first.mu.Unlock()
	}
	f.listeners[origin].Close()
	p := f.peers[origin]
	p.mu.Lock()
	if p.conn != nil {
		p.conn.c.Close()
		p.conn = nil
	}
	p.mu.Unlock()
}

// dial returns a cached connection to worker w, dialing on demand. Only
// the destination's per-peer lock is held across the dial, so a slow or
// dead peer stalls nobody else.
func (f *TCP) dial(w int) (*tcpConn, error) {
	p := f.peers[w]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return p.conn, nil
	}
	if f.closed.Load() {
		return nil, errFabricClosed
	}
	f.mu.RLock()
	addr := f.addrs[w]
	f.mu.RUnlock()
	nc, err := net.DialTimeout("tcp", addr, f.cfg.Timeout)
	if err != nil {
		return nil, err
	}
	f.mRedials.Inc()
	c := &tcpConn{c: nc, enc: gob.NewEncoder(nc), dec: gob.NewDecoder(nc)}
	p.conn = c
	return c, nil
}

// invalidate drops a broken connection so the next attempt redials.
func (f *TCP) invalidate(w int, c *tcpConn) {
	p := f.peers[w]
	p.mu.Lock()
	if p.conn == c {
		p.conn = nil
	}
	p.mu.Unlock()
	c.c.Close()
}

// roundTrip performs one at-most-once-applied, at-least-once-delivered
// request: transport failures retry with backoff over a fresh connection
// under the same sequence number; application-level errors surface
// immediately without retrying.
func (f *TCP) roundTrip(w int, req *tcpRequest) (*tcpResponse, error) {
	if w < 0 || w >= len(f.addrs) {
		return nil, fmt.Errorf("comm: no such worker %d", w)
	}
	req.Seq = f.seq.Add(1)
	f.mRequests.Inc()
	var lastErr error
	for attempt := 0; attempt <= f.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			f.mRetries.Inc()
			if err := f.sleepBackoff(attempt); err != nil {
				return nil, err
			}
		}
		if err := f.ctx.err(); err != nil {
			return nil, err
		}
		if f.closed.Load() {
			return nil, errFabricClosed
		}
		c, err := f.dial(w)
		if err != nil {
			lastErr = err
			continue
		}
		var resp tcpResponse
		if err := c.do(req, &resp, f.cfg.Timeout); err != nil {
			lastErr = err
			f.invalidate(w, c)
			continue
		}
		if resp.Stale {
			// The receiver is ahead of us on block ownership: re-stamp with
			// the current epoch and re-route over a fresh dial (the endpoint
			// may have been rehomed under us).
			cur := f.epoch.Load()
			lastErr = &StaleEpochError{Sent: req.Epoch, Current: cur}
			req.Epoch = cur
			f.invalidate(w, c)
			continue
		}
		if resp.Err != "" {
			return nil, errors.New(resp.Err)
		}
		return &resp, nil
	}
	return nil, fmt.Errorf("comm: worker %d unreachable after %d attempts: %w",
		w, f.cfg.MaxRetries+1, lastErr)
}

// sleepBackoff waits 2^(attempt-1)·Backoff, capped at 100ms, plus up to
// 100% jitter so synchronised retry storms spread out. A cancelled job
// context aborts the wait and returns its error.
func (f *TCP) sleepBackoff(attempt int) error {
	d := f.cfg.Backoff << uint(attempt-1)
	if max := 100 * time.Millisecond; d > max {
		d = max
	}
	f.jmu.Lock()
	j := time.Duration(f.jrng.Int63n(int64(d) + 1))
	f.jmu.Unlock()
	tm := time.NewTimer(d + j)
	defer tm.Stop()
	select {
	case <-tm.C:
		return nil
	case <-f.ctx.done():
		return f.ctx.err()
	}
}

func (f *TCP) account(from, to int, bytes int64) {
	if from == to || from < 0 || to < 0 || from >= len(f.out) || to >= len(f.in) {
		return
	}
	f.out[from].Add(bytes)
	f.in[to].Add(bytes)
	f.total.Add(bytes)
}

// Send implements Fabric.
func (f *TCP) Send(p *Packet) error {
	if p.Epoch == 0 {
		p.Epoch = f.epoch.Load()
	}
	f.account(p.From, p.To, p.Bytes())
	_, err := f.roundTrip(p.To, &tcpRequest{Kind: tcpSend, Epoch: p.Epoch, From: p.From, To: p.To,
		Step: p.Step, Msgs: p.Msgs, Wire: p.WireBytes})
	return err
}

// PullRequest implements Fabric.
func (f *TCP) PullRequest(from, to, block, step int) ([]Msg, int64, error) {
	f.account(from, to, PullReqSize)
	resp, err := f.roundTrip(to, &tcpRequest{Kind: tcpPull, Epoch: f.epoch.Load(),
		From: from, To: to, Block: block, Step: step})
	if err != nil {
		return nil, 0, err
	}
	f.account(to, from, resp.Wire)
	return resp.Msgs, resp.Wire, nil
}

// Gather implements Fabric.
func (f *TCP) Gather(from, to int, ids []graph.VertexID, step int) ([]GatherResult, error) {
	f.account(from, to, int64(len(ids))*GatherIDSize)
	resp, err := f.roundTrip(to, &tcpRequest{Kind: tcpGather, Epoch: f.epoch.Load(),
		From: from, To: to, IDs: ids, Step: step})
	if err != nil {
		return nil, err
	}
	f.account(to, from, GatherResultsSize(resp.Results))
	return resp.Results, nil
}

// Signal implements Fabric.
func (f *TCP) Signal(from, to int, ids []graph.VertexID, step int) error {
	f.account(from, to, int64(len(ids))*GatherIDSize)
	_, err := f.roundTrip(to, &tcpRequest{Kind: tcpSignal, Epoch: f.epoch.Load(),
		From: from, To: to, IDs: ids, Step: step})
	return err
}

// Traffic implements Fabric.
func (f *TCP) Traffic(w int) (in, out int64) {
	return f.in[w].Load(), f.out[w].Load()
}

// TotalBytes implements Fabric.
func (f *TCP) TotalBytes() int64 { return f.total.Load() }
