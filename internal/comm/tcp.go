package comm

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"hybridgraph/internal/graph"
)

// TCP is a fabric whose traffic really crosses loopback TCP sockets with
// gob framing: each worker owns a listener, requests are dispatched to the
// registered handler on the serving side, and responses travel back on the
// same connection. Byte accounting uses the same semantic wire sizes as
// the Local fabric (message ids and values, not gob framing overhead), so
// the cost model is transport-independent; the point of TCP is
// demonstrating that superstep semantics survive a real network hop.
type TCP struct {
	mu        sync.RWMutex
	handlers  map[int]Handler
	listeners []net.Listener
	addrs     []string
	conns     map[int]*tcpConn
	in        []atomic.Int64
	out       []atomic.Int64
	total     atomic.Int64
	closed    atomic.Bool
}

type tcpConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

const (
	tcpSend = iota
	tcpPull
	tcpGather
	tcpSignal
)

type tcpRequest struct {
	Kind  int
	From  int
	To    int
	Step  int
	Block int
	Msgs  []Msg
	Wire  int64
	IDs   []graph.VertexID
}

type tcpResponse struct {
	Msgs    []Msg
	Wire    int64
	Results []GatherResult
	Err     string
}

// NewTCP starts listeners for n workers on loopback and returns the
// fabric. Callers must Close it.
func NewTCP(n int) (*TCP, error) {
	f := &TCP{
		handlers: make(map[int]Handler, n),
		conns:    make(map[int]*tcpConn, n),
		in:       make([]atomic.Int64, n),
		out:      make([]atomic.Int64, n),
	}
	for w := 0; w < n; w++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, err
		}
		f.listeners = append(f.listeners, ln)
		f.addrs = append(f.addrs, ln.Addr().String())
		go f.serve(w, ln)
	}
	return f, nil
}

// Close shuts the listeners and cached connections down.
func (f *TCP) Close() error {
	f.closed.Store(true)
	for _, ln := range f.listeners {
		ln.Close()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.conns {
		c.c.Close()
	}
	f.conns = map[int]*tcpConn{}
	return nil
}

// Register implements Fabric.
func (f *TCP) Register(worker int, h Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handlers[worker] = h
}

func (f *TCP) serve(worker int, ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go f.serveConn(worker, c)
	}
}

func (f *TCP) serveConn(worker int, c net.Conn) {
	defer c.Close()
	dec := gob.NewDecoder(c)
	enc := gob.NewEncoder(c)
	for {
		var req tcpRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp tcpResponse
		f.mu.RLock()
		h := f.handlers[worker]
		f.mu.RUnlock()
		if h == nil {
			resp.Err = fmt.Sprintf("comm: no handler registered for worker %d", worker)
		} else {
			switch req.Kind {
			case tcpSend:
				p := &Packet{From: req.From, To: req.To, Step: req.Step, Msgs: req.Msgs, WireBytes: req.Wire}
				if err := h.DeliverMessages(p); err != nil {
					resp.Err = err.Error()
				}
			case tcpPull:
				msgs, wire, err := h.RespondPull(req.Block, req.Step)
				resp.Msgs, resp.Wire = msgs, wire
				if err != nil {
					resp.Err = err.Error()
				}
			case tcpGather:
				res, err := h.GatherValues(req.IDs, req.Step)
				resp.Results = res
				if err != nil {
					resp.Err = err.Error()
				}
			case tcpSignal:
				if err := h.DeliverSignals(req.IDs, req.Step); err != nil {
					resp.Err = err.Error()
				}
			default:
				resp.Err = fmt.Sprintf("comm: unknown request kind %d", req.Kind)
			}
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// dialLocked returns a cached connection to worker w, dialing on demand.
func (f *TCP) dial(w int) (*tcpConn, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.conns[w]; ok {
		return c, nil
	}
	if w < 0 || w >= len(f.addrs) {
		return nil, fmt.Errorf("comm: no such worker %d", w)
	}
	nc, err := net.Dial("tcp", f.addrs[w])
	if err != nil {
		return nil, err
	}
	c := &tcpConn{c: nc, enc: gob.NewEncoder(nc), dec: gob.NewDecoder(nc)}
	f.conns[w] = c
	return c, nil
}

func (f *TCP) roundTrip(w int, req *tcpRequest) (*tcpResponse, error) {
	c, err := f.dial(w)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	var resp tcpResponse
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("%s", resp.Err)
	}
	return &resp, nil
}

func (f *TCP) account(from, to int, bytes int64) {
	if from == to || from < 0 || to < 0 || from >= len(f.out) || to >= len(f.in) {
		return
	}
	f.out[from].Add(bytes)
	f.in[to].Add(bytes)
	f.total.Add(bytes)
}

// Send implements Fabric.
func (f *TCP) Send(p *Packet) error {
	f.account(p.From, p.To, p.Bytes())
	_, err := f.roundTrip(p.To, &tcpRequest{Kind: tcpSend, From: p.From, To: p.To,
		Step: p.Step, Msgs: p.Msgs, Wire: p.WireBytes})
	return err
}

// PullRequest implements Fabric.
func (f *TCP) PullRequest(from, to, block, step int) ([]Msg, int64, error) {
	f.account(from, to, PullReqSize)
	resp, err := f.roundTrip(to, &tcpRequest{Kind: tcpPull, From: from, To: to, Block: block, Step: step})
	if err != nil {
		return nil, 0, err
	}
	f.account(to, from, resp.Wire)
	return resp.Msgs, resp.Wire, nil
}

// Gather implements Fabric.
func (f *TCP) Gather(from, to int, ids []graph.VertexID, step int) ([]GatherResult, error) {
	f.account(from, to, int64(len(ids))*GatherIDSize)
	resp, err := f.roundTrip(to, &tcpRequest{Kind: tcpGather, From: from, To: to, IDs: ids, Step: step})
	if err != nil {
		return nil, err
	}
	f.account(to, from, GatherResultsSize(resp.Results))
	return resp.Results, nil
}

// Signal implements Fabric.
func (f *TCP) Signal(from, to int, ids []graph.VertexID, step int) error {
	f.account(from, to, int64(len(ids))*GatherIDSize)
	_, err := f.roundTrip(to, &tcpRequest{Kind: tcpSignal, From: from, To: to, IDs: ids, Step: step})
	return err
}

// Traffic implements Fabric.
func (f *TCP) Traffic(w int) (in, out int64) {
	return f.in[w].Load(), f.out[w].Load()
}

// TotalBytes implements Fabric.
func (f *TCP) TotalBytes() int64 { return f.total.Load() }
