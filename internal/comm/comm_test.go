package comm

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"hybridgraph/internal/graph"
)

// recorder is a Handler that records everything it receives.
type recorder struct {
	mu      sync.Mutex
	packets []*Packet
	pulls   []int
	gathers [][]graph.VertexID
	signals [][]graph.VertexID
	pullOut []Msg
}

func (r *recorder) DeliverMessages(p *Packet) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.packets = append(r.packets, p)
	return nil
}

func (r *recorder) RespondPull(block, step int) ([]Msg, int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pulls = append(r.pulls, block)
	return r.pullOut, ConcatSize(r.pullOut), nil
}

func (r *recorder) GatherValues(ids []graph.VertexID, step int) ([]GatherResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gathers = append(r.gathers, ids)
	out := make([]GatherResult, 0, len(ids))
	for _, id := range ids {
		out = append(out, GatherResult{Dst: id, Vals: []float64{1}})
	}
	return out, nil
}

func (r *recorder) DeliverSignals(ids []graph.VertexID, step int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.signals = append(r.signals, ids)
	return nil
}

func TestConcatSize(t *testing.T) {
	msgs := []Msg{{Dst: 1, Val: 1}, {Dst: 1, Val: 2}, {Dst: 2, Val: 3}}
	// Two distinct ids (4B each) + three values (8B each).
	if got := ConcatSize(msgs); got != 2*4+3*8 {
		t.Fatalf("ConcatSize = %d, want 32", got)
	}
	if got := ConcatSize(nil); got != 0 {
		t.Fatalf("ConcatSize(nil) = %d", got)
	}
}

func TestConcatSizeNeverExceedsRawProperty(t *testing.T) {
	f := func(dsts []uint8) bool {
		msgs := make([]Msg, len(dsts))
		for i, d := range dsts {
			msgs[i] = Msg{Dst: graph.VertexID(d % 16), Val: float64(i)}
		}
		SortByDst(msgs)
		c := ConcatSize(msgs)
		raw := int64(len(msgs)) * MsgWireSize
		return c <= raw && (len(msgs) == 0 || c >= int64(len(msgs))*MsgValSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSendAccountsBytes(t *testing.T) {
	fab := NewLocal(3)
	r := &recorder{}
	fab.Register(1, r)
	p := &Packet{From: 0, To: 1, Step: 2, Msgs: []Msg{{Dst: 5, Val: 1}, {Dst: 6, Val: 2}}}
	if err := fab.Send(p); err != nil {
		t.Fatal(err)
	}
	if len(r.packets) != 1 || len(r.packets[0].Msgs) != 2 {
		t.Fatalf("packets = %v", r.packets)
	}
	in, _ := fab.Traffic(1)
	if in != 2*MsgWireSize {
		t.Fatalf("in bytes = %d, want %d", in, 2*MsgWireSize)
	}
	_, out := fab.Traffic(0)
	if out != 2*MsgWireSize {
		t.Fatalf("out bytes = %d, want %d", out, 2*MsgWireSize)
	}
	if fab.TotalBytes() != 2*MsgWireSize {
		t.Fatalf("total = %d", fab.TotalBytes())
	}
}

func TestLoopbackNotCounted(t *testing.T) {
	fab := NewLocal(2)
	r := &recorder{}
	fab.Register(0, r)
	if err := fab.Send(&Packet{From: 0, To: 0, Msgs: []Msg{{Dst: 1}}}); err != nil {
		t.Fatal(err)
	}
	if fab.TotalBytes() != 0 {
		t.Fatalf("loopback counted: %d bytes", fab.TotalBytes())
	}
	if len(r.packets) != 1 {
		t.Fatal("loopback packet not delivered")
	}
}

func TestPullRequestRoundTrip(t *testing.T) {
	fab := NewLocal(2)
	resp := &recorder{pullOut: []Msg{{Dst: 3, Val: 1}, {Dst: 3, Val: 2}}}
	fab.Register(1, resp)
	msgs, bytes, err := fab.PullRequest(0, 1, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || resp.pulls[0] != 7 {
		t.Fatalf("msgs %v, pulls %v", msgs, resp.pulls)
	}
	wantResp := ConcatSize(resp.pullOut)
	if bytes != wantResp {
		t.Fatalf("response bytes = %d, want %d", bytes, wantResp)
	}
	if fab.TotalBytes() != PullReqSize+wantResp {
		t.Fatalf("total = %d, want %d", fab.TotalBytes(), PullReqSize+wantResp)
	}
}

func TestGatherRoundTrip(t *testing.T) {
	fab := NewLocal(2)
	r := &recorder{}
	fab.Register(1, r)
	ids := []graph.VertexID{1, 2, 3}
	res, err := fab.Gather(0, 1, ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %v", res)
	}
	want := int64(len(ids))*GatherIDSize + GatherResultsSize(res)
	if fab.TotalBytes() != want {
		t.Fatalf("total = %d, want %d", fab.TotalBytes(), want)
	}
}

func TestSignalDelivery(t *testing.T) {
	fab := NewLocal(2)
	r := &recorder{}
	fab.Register(1, r)
	if err := fab.Signal(0, 1, []graph.VertexID{9, 10}, 3); err != nil {
		t.Fatal(err)
	}
	if len(r.signals) != 1 || len(r.signals[0]) != 2 {
		t.Fatalf("signals = %v", r.signals)
	}
	if fab.TotalBytes() != 2*GatherIDSize {
		t.Fatalf("total = %d", fab.TotalBytes())
	}
}

func TestUnregisteredWorkerErrors(t *testing.T) {
	fab := NewLocal(2)
	if err := fab.Send(&Packet{From: 0, To: 1}); err == nil {
		t.Fatal("Send to unregistered worker should fail")
	}
	if _, _, err := fab.PullRequest(0, 1, 0, 1); err == nil {
		t.Fatal("PullRequest to unregistered worker should fail")
	}
	if _, err := fab.Gather(0, 1, nil, 1); err == nil {
		t.Fatal("Gather to unregistered worker should fail")
	}
	if err := fab.Signal(0, 1, nil, 1); err == nil {
		t.Fatal("Signal to unregistered worker should fail")
	}
}

func TestOutboxFlushesAtThreshold(t *testing.T) {
	fab := NewLocal(2)
	r := &recorder{}
	fab.Register(1, r)
	// Threshold of 3 messages.
	ob := NewOutbox(fab, 2, 0, 1, 3*MsgWireSize)
	for i := 0; i < 7; i++ {
		if err := ob.Add(1, Msg{Dst: graph.VertexID(i), Val: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.packets) != 2 {
		t.Fatalf("auto-flushed %d packets, want 2", len(r.packets))
	}
	if err := ob.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(r.packets) != 3 || ob.Sent() != 7 || ob.Flushes() != 3 {
		t.Fatalf("packets=%d sent=%d flushes=%d", len(r.packets), ob.Sent(), ob.Flushes())
	}
	total := 0
	for _, p := range r.packets {
		total += len(p.Msgs)
	}
	if total != 7 {
		t.Fatalf("delivered %d messages, want 7", total)
	}
}

func TestOutboxDefaultThreshold(t *testing.T) {
	ob := NewOutbox(NewLocal(1), 1, 0, 1, 0)
	if ob.threshold != 4<<20 {
		t.Fatalf("default threshold = %d, want 4MB", ob.threshold)
	}
}

func TestPacketBytes(t *testing.T) {
	p := &Packet{Msgs: make([]Msg, 5)}
	if p.Bytes() != 5*MsgWireSize {
		t.Fatalf("Bytes = %d", p.Bytes())
	}
	p.WireBytes = 17
	if p.Bytes() != 17 {
		t.Fatalf("explicit WireBytes ignored: %d", p.Bytes())
	}
}

func TestGatherResultsSizeSkipsEmpty(t *testing.T) {
	res := []GatherResult{
		{Dst: 1, Vals: []float64{1, 2}},
		{Dst: 2, Vals: nil},
	}
	if got := GatherResultsSize(res); got != 4+16 {
		t.Fatalf("GatherResultsSize = %d, want 20", got)
	}
}

func TestCombineSorted(t *testing.T) {
	sum := func(a, b float64) float64 { return a + b }
	msgs := []Msg{{Dst: 1, Val: 1}, {Dst: 1, Val: 2}, {Dst: 2, Val: 3}, {Dst: 2, Val: 4}, {Dst: 5, Val: 5}}
	out := CombineSorted(msgs, sum)
	if len(out) != 3 || out[0].Val != 3 || out[1].Val != 7 || out[2].Val != 5 {
		t.Fatalf("CombineSorted = %v", out)
	}
	if got := CombineSorted(nil, sum); len(got) != 0 {
		t.Fatal("empty input should stay empty")
	}
}

func TestOutboxSenderCombine(t *testing.T) {
	fab := NewLocal(2)
	r := &recorder{}
	fab.Register(1, r)
	ob := NewOutbox(fab, 2, 0, 1, 1<<20)
	ob.SetCombine(func(a, b float64) float64 { return a + b })
	for i := 0; i < 10; i++ {
		if err := ob.Add(1, Msg{Dst: 3, Val: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ob.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(r.packets) != 1 || len(r.packets[0].Msgs) != 1 {
		t.Fatalf("packets = %v", r.packets)
	}
	if r.packets[0].Msgs[0].Val != 10 {
		t.Fatalf("combined value = %g, want 10", r.packets[0].Msgs[0].Val)
	}
	// 10 messages of 12B collapse to one 12B message: 108 bytes saved.
	if ob.SavedBytes() != 9*MsgWireSize {
		t.Fatalf("SavedBytes = %d, want %d", ob.SavedBytes(), 9*MsgWireSize)
	}
	if ob.CombinedTouches() != 10 {
		t.Fatalf("CombinedTouches = %d, want 10", ob.CombinedTouches())
	}
	if fab.TotalBytes() != MsgWireSize {
		t.Fatalf("wire bytes = %d, want %d", fab.TotalBytes(), MsgWireSize)
	}
}

// TestLocalStaleEpochReroute: a packet stamped with a pre-reassignment
// epoch is rejected by delivery and re-routed by Send against the current
// ownership table instead of being silently accepted.
func TestLocalStaleEpochReroute(t *testing.T) {
	fab := NewLocal(2)
	r := &recorder{}
	fab.Register(1, r)
	if fab.Epoch() != 1 {
		t.Fatalf("initial epoch = %d, want 1", fab.Epoch())
	}
	if e := fab.AdvanceEpoch(); e != 2 {
		t.Fatalf("AdvanceEpoch = %d, want 2", e)
	}
	p := &Packet{From: 0, To: 1, Epoch: 1, Msgs: []Msg{{Dst: 3, Val: 7}}}
	if err := fab.Send(p); err != nil {
		t.Fatal(err)
	}
	if p.Epoch != 2 {
		t.Fatalf("packet not re-stamped: epoch %d, want 2", p.Epoch)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.packets) != 1 {
		t.Fatalf("delivered %d times, want exactly 1", len(r.packets))
	}
}

// TestLocalRehomeHostOf: after an adoption the origin slot keeps its
// handler (the adopted unit runs in the survivor's process) but HostOf
// reports the new machine for accounting.
func TestLocalRehomeHostOf(t *testing.T) {
	fab := NewLocal(3)
	r := &recorder{}
	fab.Register(1, r)
	fab.AdvanceEpoch()
	fab.Rehome(1, 2)
	if h := fab.HostOf(1); h != 2 {
		t.Fatalf("HostOf(1) = %d, want 2", h)
	}
	if h := fab.HostOf(0); h != 0 {
		t.Fatalf("HostOf(0) = %d, want 0", h)
	}
	if err := fab.Send(&Packet{From: 0, To: 1, Msgs: []Msg{{Dst: 4, Val: 1}}}); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.packets) != 1 {
		t.Fatal("packet to the rehomed origin not delivered")
	}
}

// TestStaleEpochErrorTyping: the typed rejection matches the sentinel.
func TestStaleEpochErrorTyping(t *testing.T) {
	err := error(&StaleEpochError{Sent: 1, Current: 3})
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatal("StaleEpochError does not unwrap to ErrStaleEpoch")
	}
}
