// Package comm implements the message fabric between HybridGraph workers:
// message and packet types with the wire sizes the paper's cost analysis
// uses, network byte accounting per worker, and the three interaction
// patterns the engines need — push-style delivery, block-centric pull
// requests (b-pull), and per-svertex gathers (the pull baseline). The
// default fabric is in-process (workers are goroutines, per the DESIGN.md
// substitution); a TCP/gob fabric with the same interface demonstrates
// multi-process distribution.
package comm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hybridgraph/internal/graph"
	"hybridgraph/internal/obs"
)

// Wire sizes in bytes. A message is a destination vertex id plus one
// value; when several messages share a destination they are concatenated
// so the id travels once (Section 4.2). These constants are the paper's
// Byte_m accounting.
const (
	MsgIDSize   = 4  // destination vertex id
	MsgValSize  = 8  // one message value
	MsgWireSize = 12 // un-concatenated message
	// PullReqSize is the wire size of one block-centric pull request (a
	// Vblock identifier); b-pull sends at most V·T of these per superstep.
	PullReqSize = 8
	// GatherIDSize is the wire size of one gather request entry in the
	// pull baseline: a destination vertex id sent to one mirror-holding
	// worker (vertex-cut traffic is proportional to mirrors).
	GatherIDSize = 4
)

// Msg is one message in flight: a value addressed to a destination vertex.
type Msg struct {
	Dst graph.VertexID
	Val float64
}

// Packet is a batch of messages bound for one worker.
type Packet struct {
	From, To int
	Step     int
	Msgs     []Msg
	// WireBytes is the encoded size given the concatenation the sender
	// applied; 0 means "compute as unconcatenated".
	WireBytes int64
	// Epoch is the block-ownership epoch the sender believed current when
	// it addressed the packet (0 = stamp at send). A receiver behind a
	// reassignment rejects packets from an older epoch with
	// StaleEpochError so the sender re-stamps and re-routes them against
	// the new ownership table instead of the fabric silently accepting
	// traffic addressed to a dead worker.
	Epoch int64
}

// Bytes reports the packet's wire size.
func (p *Packet) Bytes() int64 {
	if p.WireBytes > 0 {
		return p.WireBytes
	}
	return int64(len(p.Msgs)) * MsgWireSize
}

// ConcatSize reports the wire size of msgs when concatenated: each
// distinct destination id travels once, each value always travels. msgs
// must be grouped by destination (sorted is fine).
func ConcatSize(msgs []Msg) int64 {
	var b int64
	for i, m := range msgs {
		if i == 0 || m.Dst != msgs[i-1].Dst {
			b += MsgIDSize
		}
		b += MsgValSize
	}
	return b
}

// SortByDst orders msgs by destination id so they concatenate maximally.
func SortByDst(msgs []Msg) {
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].Dst < msgs[j].Dst })
}

// CombineSorted folds runs of equal-destination messages into one using
// the reducer c; msgs must be sorted by destination. The result aliases
// msgs' storage.
func CombineSorted(msgs []Msg, c func(a, b float64) float64) []Msg {
	if len(msgs) == 0 {
		return msgs
	}
	out := msgs[:1]
	for _, m := range msgs[1:] {
		last := &out[len(out)-1]
		if m.Dst == last.Dst {
			last.Val = c(last.Val, m.Val)
		} else {
			out = append(out, m)
		}
	}
	return out
}

// GatherResult is the pull baseline's response for one requested
// destination vertex: the message values generated at the mirror from the
// responding local source vertices (already reduced to one value when the
// algorithm's messages combine, like PowerGraph's local gather
// aggregation).
type GatherResult struct {
	Dst  graph.VertexID
	Vals []float64
}

// GatherResultsSize reports the wire size of a gather response: each
// non-empty result carries its destination id once plus its values.
func GatherResultsSize(res []GatherResult) int64 {
	var b int64
	for _, r := range res {
		if len(r.Vals) == 0 {
			continue
		}
		b += MsgIDSize + int64(len(r.Vals))*MsgValSize
	}
	return b
}

// Handler is the worker-side surface the fabric calls into.
type Handler interface {
	// DeliverMessages accepts a push packet addressed to this worker for
	// consumption in superstep p.Step+1.
	DeliverMessages(p *Packet) error
	// RespondPull runs Pull-Respond (Algorithm 2) for the given global
	// Vblock at superstep step, returning the generated (already
	// concatenated/combined) messages and their wire size.
	RespondPull(reqBlock, step int) ([]Msg, int64, error)
	// GatherValues runs the pull baseline's mirror-side gather: for each
	// requested destination vertex, generate message values from this
	// worker's responding source vertices along its locally-held in-edges.
	GatherValues(ids []graph.VertexID, step int) ([]GatherResult, error)
	// DeliverSignals activates the given local vertices for superstep
	// step+1 (the pull baseline's scatter phase).
	DeliverSignals(ids []graph.VertexID, step int) error
}

// Fabric routes traffic between workers and accounts bytes per worker.
type Fabric interface {
	Register(worker int, h Handler)
	// Send delivers a push packet; counted as From-out / To-in bytes.
	Send(p *Packet) error
	// PullRequest performs a synchronous block-centric pull.
	PullRequest(from, to, block, step int) ([]Msg, int64, error)
	// Gather performs a synchronous vertex-cut gather.
	Gather(from, to int, ids []graph.VertexID, step int) ([]GatherResult, error)
	// Signal delivers scatter activations (4 bytes each on the wire).
	Signal(from, to int, ids []graph.VertexID, step int) error
	// Traffic reports cumulative (in, out) bytes for worker w.
	Traffic(w int) (in, out int64)
	// TotalBytes reports cumulative bytes moved across the fabric.
	TotalBytes() int64
}

// ErrStaleEpoch is the sentinel wrapped by every StaleEpochError;
// errors.Is(err, ErrStaleEpoch) identifies an epoch rejection whichever
// fabric produced it.
var ErrStaleEpoch = errors.New("comm: stale ownership epoch")

// StaleEpochError is the typed rejection a receiver returns for traffic
// stamped with a block-ownership epoch older than its own: the sender is
// operating on a routing table from before a partition reassignment and
// must re-stamp and re-route.
type StaleEpochError struct {
	Sent, Current int64
}

// Error implements error.
func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("comm: stale ownership epoch %d (current %d)", e.Sent, e.Current)
}

// Unwrap ties the error to the ErrStaleEpoch sentinel.
func (e *StaleEpochError) Unwrap() error { return ErrStaleEpoch }

// Rehomer is implemented by fabrics that support partition reassignment:
// an epoch-versioned ownership view plus the ability to re-point a dead
// worker's address at the survivor hosting its blocks. AdvanceEpoch
// invalidates every in-flight packet stamped with the old epoch; Rehome
// redirects traffic addressed to origin at host. Both built-in fabrics
// implement it.
type Rehomer interface {
	// Epoch reports the current ownership epoch (starts at 1).
	Epoch() int64
	// AdvanceEpoch bumps the ownership epoch and returns the new value.
	AdvanceEpoch() int64
	// Rehome redirects traffic addressed to worker origin at worker host.
	// The origin keeps its logical identity — packets still name it in
	// From/To — only the physical endpoint moves.
	Rehome(origin, host int)
}

// ContextSetter is implemented by fabrics that honour job cancellation:
// once a context is installed, fabric operations fail fast with the
// context's error after it is cancelled, so a cancelled job's workers
// unwind mid-superstep instead of finishing the exchange. Both built-in
// fabrics implement it.
type ContextSetter interface {
	SetContext(ctx context.Context)
}

// ctxHolder is the shared cancellation plumbing of both fabrics: an
// atomically swappable context consulted before every operation.
type ctxHolder struct {
	v atomic.Pointer[context.Context]
}

func (c *ctxHolder) SetContext(ctx context.Context) {
	if ctx != nil {
		c.v.Store(&ctx)
	}
}

// err reports the installed context's cancellation error, nil when no
// context was installed or it is still live.
func (c *ctxHolder) err() error {
	if p := c.v.Load(); p != nil {
		return context.Cause(*p)
	}
	return nil
}

func (c *ctxHolder) done() <-chan struct{} {
	if p := c.v.Load(); p != nil {
		return (*p).Done()
	}
	return nil
}

// Local is the in-process fabric: handlers are invoked directly, which
// keeps superstep semantics identical to a networked run while the paper's
// byte accounting is applied to every interaction.
type Local struct {
	mu       sync.RWMutex
	handlers map[int]Handler
	homes    map[int]int // origin -> adopting host after a Rehome
	epoch    atomic.Int64
	ctx      ctxHolder
	in       []atomic.Int64
	out      []atomic.Int64
	total    atomic.Int64

	mPackets  *obs.Counter // "comm.packets"
	mPullReqs *obs.Counter // "comm.pull_requests"
	mGathers  *obs.Counter // "comm.gathers"
	mSignals  *obs.Counter // "comm.signals"
	mStale    *obs.Counter // "comm.stale_epoch"
}

// NewLocal returns a Local fabric for n workers.
func NewLocal(n int) *Local {
	l := &Local{handlers: make(map[int]Handler, n), in: make([]atomic.Int64, n), out: make([]atomic.Int64, n)}
	l.epoch.Store(1)
	return l
}

// SetMetrics wires the fabric's counters into reg (obs.MetricsSetter).
// Call before the first superstep; a nil registry leaves metrics off.
func (l *Local) SetMetrics(reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.mPackets = reg.Counter("comm.packets")
	l.mPullReqs = reg.Counter("comm.pull_requests")
	l.mGathers = reg.Counter("comm.gathers")
	l.mSignals = reg.Counter("comm.signals")
	l.mStale = reg.Counter("comm.stale_epoch")
	reg.RegisterFunc("comm.net_bytes", l.total.Load)
}

// SetContext implements ContextSetter: after ctx is cancelled every
// fabric operation fails fast with its error.
func (l *Local) SetContext(ctx context.Context) { l.ctx.SetContext(ctx) }

// Register implements Fabric.
func (l *Local) Register(worker int, h Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.handlers[worker] = h
}

func (l *Local) handler(w int) (Handler, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	h, ok := l.handlers[w]
	if !ok {
		return nil, fmt.Errorf("comm: no handler registered for worker %d", w)
	}
	return h, nil
}

func (l *Local) account(from, to int, bytes int64) {
	if from == to {
		// Loopback traffic never crosses the network; the paper's GANGLIA
		// traffic measurements (Fig. 18) see inter-node bytes only.
		return
	}
	l.out[from].Add(bytes)
	l.in[to].Add(bytes)
	l.total.Add(bytes)
}

// Epoch implements Rehomer.
func (l *Local) Epoch() int64 { return l.epoch.Load() }

// AdvanceEpoch implements Rehomer.
func (l *Local) AdvanceEpoch() int64 { return l.epoch.Add(1) }

// Rehome implements Rehomer. In-process the adopted worker unit keeps
// serving its origin slot (the host drives it on its own goroutine), so
// the handler table is untouched; the mapping is recorded so callers can
// introspect where an origin now lives.
func (l *Local) Rehome(origin, host int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.homes == nil {
		l.homes = make(map[int]int)
	}
	l.homes[origin] = host
}

// HostOf reports where worker w's blocks are served: w itself, or the
// survivor a Rehome pointed it at.
func (l *Local) HostOf(w int) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if h, ok := l.homes[w]; ok {
		return h
	}
	return w
}

// Send implements Fabric. Packets stamped with a pre-reassignment epoch
// are rejected by the delivery path and re-routed here once against the
// current ownership table; a packet that is stale again after the re-stamp
// (a reassignment raced the retry) surfaces the rejection to the caller.
func (l *Local) Send(p *Packet) error {
	if err := l.ctx.err(); err != nil {
		return err
	}
	if p.Epoch == 0 {
		p.Epoch = l.epoch.Load()
	}
	err := l.deliver(p)
	var stale *StaleEpochError
	if errors.As(err, &stale) {
		l.mStale.Inc()
		p.Epoch = l.epoch.Load()
		return l.deliver(p)
	}
	return err
}

// deliver is the receive side of Send: the epoch gate plus the handler
// dispatch and accounting.
func (l *Local) deliver(p *Packet) error {
	if cur := l.epoch.Load(); p.Epoch < cur {
		return &StaleEpochError{Sent: p.Epoch, Current: cur}
	}
	h, err := l.handler(p.To)
	if err != nil {
		return err
	}
	l.account(p.From, p.To, p.Bytes())
	l.mPackets.Inc()
	return h.DeliverMessages(p)
}

// PullRequest implements Fabric.
func (l *Local) PullRequest(from, to, block, step int) ([]Msg, int64, error) {
	if err := l.ctx.err(); err != nil {
		return nil, 0, err
	}
	h, err := l.handler(to)
	if err != nil {
		return nil, 0, err
	}
	l.account(from, to, PullReqSize)
	l.mPullReqs.Inc()
	msgs, bytes, err := h.RespondPull(block, step)
	if err != nil {
		return nil, 0, err
	}
	l.account(to, from, bytes)
	return msgs, bytes, nil
}

// Gather implements Fabric.
func (l *Local) Gather(from, to int, ids []graph.VertexID, step int) ([]GatherResult, error) {
	if err := l.ctx.err(); err != nil {
		return nil, err
	}
	h, err := l.handler(to)
	if err != nil {
		return nil, err
	}
	l.account(from, to, int64(len(ids))*GatherIDSize)
	l.mGathers.Inc()
	replies, err := h.GatherValues(ids, step)
	if err != nil {
		return nil, err
	}
	l.account(to, from, GatherResultsSize(replies))
	return replies, nil
}

// Signal implements Fabric.
func (l *Local) Signal(from, to int, ids []graph.VertexID, step int) error {
	if err := l.ctx.err(); err != nil {
		return err
	}
	h, err := l.handler(to)
	if err != nil {
		return err
	}
	l.account(from, to, int64(len(ids))*GatherIDSize)
	l.mSignals.Inc()
	return h.DeliverSignals(ids, step)
}

// Traffic implements Fabric.
func (l *Local) Traffic(w int) (in, out int64) {
	return l.in[w].Load(), l.out[w].Load()
}

// TotalBytes implements Fabric.
func (l *Local) TotalBytes() int64 { return l.total.Load() }
