package comm

// Outbox is the sender-side message buffer used by the push engines:
// messages accumulate per destination worker and a packet is flushed as
// soon as its encoded size reaches the sending threshold (the paper's
// "distributed systems usually set a sending threshold to control the
// communication behaviour", Appendix E; Giraph-style, 4 MB by default).
// Push does not concatenate or combine — the paper argues the poor
// destination locality at the sender makes it not cost-effective — so
// packets are flushed unconcatenated.
type Outbox struct {
	fabric    Fabric
	from      int
	step      int
	threshold int64
	pending   [][]Msg
	flushes   int64
	sent      int64
	combine   func(a, b float64) float64
	saved     int64 // wire bytes saved by sender-side combining
	touched   int64 // messages processed by the combiner
}

// SetCombine enables sender-side combining at flush time (the paper's
// modified MOCgraph, pushM+com, Appendix E). Only messages that happen to
// share a destination within one buffered packet combine — exactly the
// limitation the paper demonstrates: once a threshold-triggered flush has
// carried a message away, later messages to the same vertex cannot join
// it.
func (o *Outbox) SetCombine(c func(a, b float64) float64) { o.combine = c }

// SavedBytes reports the wire bytes sender-side combining removed.
func (o *Outbox) SavedBytes() int64 { return o.saved }

// CombinedTouches reports how many messages the combiner processed (its
// CPU cost, which a small threshold fails to amortise).
func (o *Outbox) CombinedTouches() int64 { return o.touched }

// NewOutbox returns an outbox for worker from sending via fabric at the
// given superstep. thresholdBytes <= 0 selects the 4 MB default.
func NewOutbox(fabric Fabric, workers, from, step int, thresholdBytes int64) *Outbox {
	if thresholdBytes <= 0 {
		thresholdBytes = 4 << 20
	}
	return &Outbox{
		fabric:    fabric,
		from:      from,
		step:      step,
		threshold: thresholdBytes,
		pending:   make([][]Msg, workers),
	}
}

// Add buffers one message for worker to, flushing if the buffer reaches
// the threshold.
func (o *Outbox) Add(to int, m Msg) error {
	o.pending[to] = append(o.pending[to], m)
	if int64(len(o.pending[to]))*MsgWireSize >= o.threshold {
		return o.flush(to)
	}
	return nil
}

// Flush sends every non-empty buffer.
func (o *Outbox) Flush() error {
	for to := range o.pending {
		if len(o.pending[to]) > 0 {
			if err := o.flush(to); err != nil {
				return err
			}
		}
	}
	return nil
}

func (o *Outbox) flush(to int) error {
	msgs := o.pending[to]
	o.pending[to] = nil
	o.flushes++
	o.sent += int64(len(msgs))
	p := &Packet{From: o.from, To: to, Step: o.step, Msgs: msgs}
	if o.combine != nil && len(msgs) > 1 {
		raw := int64(len(msgs)) * MsgWireSize
		o.touched += int64(len(msgs))
		SortByDst(msgs)
		p.Msgs = CombineSorted(msgs, o.combine)
		p.WireBytes = ConcatSize(p.Msgs)
		o.saved += raw - p.WireBytes
	}
	return o.fabric.Send(p)
}

// Sent reports the number of messages sent (including buffered-then-
// flushed), and Flushes the number of packets.
func (o *Outbox) Sent() int64 { return o.sent }

// Flushes reports the number of packets sent.
func (o *Outbox) Flushes() int64 { return o.flushes }

// ShardThreshold partitions the sending threshold across the shards of a
// parallel update scan: each shard stages at most its share of the 4 MB
// budget before the shard buffers are merged, floored at one message so a
// degenerate split can still form a packet. Partitioning (rather than
// giving every shard the full threshold) keeps the aggregate staged bytes
// within the sequential sender's budget, so packet counts and Eq. (7) net
// bytes cannot drift from the Parallelism=1 run.
func ShardThreshold(thresholdBytes int64, shards int) int64 {
	if thresholdBytes <= 0 {
		thresholdBytes = 4 << 20
	}
	if shards < 1 {
		shards = 1
	}
	t := thresholdBytes / int64(shards)
	if t < MsgWireSize {
		t = MsgWireSize
	}
	return t
}

// stageEntry is one deferred Outbox.Add.
type stageEntry struct {
	to int
	m  Msg
}

// Stage is a per-shard sender buffer for parallel update scans. Shards
// cannot share an Outbox directly — threshold-triggered flushes depend on
// the exact Add order, and interleaving shards would change packet
// boundaries (and, under sender combining, which messages meet in a
// packet). Instead each shard stages its sends locally and the caller
// replays the stages into one Outbox in shard order after the scan joins.
// Because shards cover disjoint ascending vertex ranges, that replay
// reproduces the sequential run's Add sequence exactly: identical packet
// boundaries, combine batches, wire bytes and message-log appends for any
// Parallelism.
type Stage struct {
	entries []stageEntry
}

// NewStage returns a stage pre-sized for budgetBytes of staged messages
// (see ShardThreshold); the stage grows past the budget rather than flush,
// since flushing out of order is exactly what staging exists to prevent.
func NewStage(budgetBytes int64) *Stage {
	c := int(budgetBytes / MsgWireSize)
	if c < 1 {
		c = 1
	}
	return &Stage{entries: make([]stageEntry, 0, c)}
}

// Add stages one message for worker to.
func (s *Stage) Add(to int, m Msg) {
	s.entries = append(s.entries, stageEntry{to: to, m: m})
}

// Len reports the number of staged messages.
func (s *Stage) Len() int { return len(s.entries) }

// MergeInto replays the staged sends into o in staging order, releasing
// the stage's memory. Threshold flushes fire during the replay exactly as
// they would have during a sequential scan.
func (s *Stage) MergeInto(o *Outbox) error {
	for _, e := range s.entries {
		if err := o.Add(e.to, e.m); err != nil {
			return err
		}
	}
	s.entries = nil
	return nil
}
