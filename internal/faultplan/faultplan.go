// Package faultplan describes deterministic fault schedules for one job:
// worker crashes pinned to (superstep, worker) points plus seeded transport
// faults (dropped, delayed and duplicated RPCs). A Plan is pure data — it
// carries no firing state — so the same Plan value can parameterise many
// runs and always injects the same faults; the consumer (core's master for
// crashes, the TCP fabric for transport faults) tracks what has fired.
// Deterministic injection is what makes recovery testable: a recovered run
// can be compared bit-for-bit against a clean run of the same plan.
package faultplan

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"hybridgraph/internal/diskio"
)

// Crash schedules one worker failure, detected by the master's fault
// detector at the start of superstep Step (1-based). Each crash fires at
// most once per job: a superstep re-executed during recovery does not
// re-fire a crash that already happened.
type Crash struct {
	Step   int
	Worker int
	// Permanent marks the worker as gone for good: under the reassign
	// recovery policy the master does not restore it but migrates its
	// partition to a survivor. Other policies treat a permanent crash
	// like an ordinary one.
	Permanent bool
}

// String implements fmt.Stringer.
func (c Crash) String() string {
	if c.Permanent {
		return fmt.Sprintf("crash(step=%d, worker=%d, permanent)", c.Step, c.Worker)
	}
	return fmt.Sprintf("crash(step=%d, worker=%d)", c.Step, c.Worker)
}

// PermanentCrash schedules a worker failure the master must treat as
// unrecoverable in place: the machine is gone, not restarting.
func PermanentCrash(step, worker int) Crash {
	return Crash{Step: step, Worker: worker, Permanent: true}
}

// Stall schedules one worker hang: at superstep Step the worker stops
// making progress without crashing, and the master's barrier-deadline
// supervision declares it failed once the deadline expires. Unlike a
// crash — which fires at the start of the superstep, before any worker
// runs — a stall lets the survivors complete superstep Step, which is
// exactly the asymmetry confined recovery must handle (the stalled
// worker rejoins a superstep the rest of the cluster already finished).
// Each stall fires at most once per job, like crashes.
type Stall struct {
	Step   int
	Worker int
}

// String implements fmt.Stringer.
func (s Stall) String() string {
	return fmt.Sprintf("stall(step=%d, worker=%d)", s.Step, s.Worker)
}

// TransportFaults describes seeded network-level faults the TCP fabric
// injects on the serving side of each RPC. Rates are probabilities in
// [0, 1] evaluated independently per request from a deterministic stream
// seeded by Seed. The description is immutable; call NewRoller for a
// fresh decision stream.
type TransportFaults struct {
	// Seed fixes the pseudo-random decision stream.
	Seed int64
	// DropRequest is the probability a request is lost before the server
	// processes it: the client times out and retries.
	DropRequest float64
	// DropResponse is the probability the server processes a request but
	// its response is lost: the client times out and retries, and the
	// server-side dedup must suppress the re-application (exactly-once).
	DropResponse float64
	// Duplicate is the probability the network delivers a request twice:
	// the second delivery must be absorbed by the dedup layer.
	Duplicate float64
	// Delay is the probability a response is delayed by up to MaxDelay.
	Delay float64
	// MaxDelay bounds injected delays (default 2ms when Delay > 0).
	MaxDelay time.Duration
}

// Plan is a deterministic fault schedule for one job.
type Plan struct {
	// Crashes lists the scheduled worker failures.
	Crashes []Crash
	// Stalls lists the scheduled worker hangs, detected by the master's
	// barrier-deadline supervision rather than at superstep start.
	Stalls []Stall
	// Net holds transport faults applied when the job runs over TCP;
	// nil injects none.
	Net *TransportFaults
	// Disk holds seeded storage faults (ENOSPC, torn writes, failed
	// fsync, bit-flip reads, simulated power cuts) injected by a
	// diskio.FaultFS installed over the job's working directory; nil
	// injects none. Like Net, the description is pure data: each run
	// builds a fresh injector from it.
	Disk *diskio.FaultConfig
}

// WithDisk returns the plan with the storage-fault description attached.
// The receiver is returned for chaining.
func (p *Plan) WithDisk(cfg diskio.FaultConfig) *Plan {
	p.Disk = &cfg
	return p
}

// NewPlan returns a plan with the given crashes, sorted by step (ties by
// worker) so injection order is independent of construction order.
func NewPlan(crashes ...Crash) *Plan {
	p := &Plan{Crashes: append([]Crash(nil), crashes...)}
	sort.Slice(p.Crashes, func(i, j int) bool {
		if p.Crashes[i].Step != p.Crashes[j].Step {
			return p.Crashes[i].Step < p.Crashes[j].Step
		}
		return p.Crashes[i].Worker < p.Crashes[j].Worker
	})
	return p
}

// WithStalls returns the plan with the given stalls added, sorted by step
// (ties by worker). The receiver is returned for chaining.
func (p *Plan) WithStalls(stalls ...Stall) *Plan {
	p.Stalls = append(p.Stalls, stalls...)
	sort.Slice(p.Stalls, func(i, j int) bool {
		if p.Stalls[i].Step != p.Stalls[j].Step {
			return p.Stalls[i].Step < p.Stalls[j].Step
		}
		return p.Stalls[i].Worker < p.Stalls[j].Worker
	})
	return p
}

// RandomCrashes deterministically draws n crashes at distinct supersteps in
// [2, maxStep] across workers in [0, workers), sorted by step. The same
// arguments always yield the same schedule.
func RandomCrashes(seed int64, n, maxStep, workers int) []Crash {
	if maxStep < 2 || n <= 0 || workers <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	steps := rng.Perm(maxStep - 1) // values 0..maxStep-2 → steps 2..maxStep
	if n > len(steps) {
		n = len(steps)
	}
	out := make([]Crash, 0, n)
	for _, s := range steps[:n] {
		out = append(out, Crash{Step: s + 2, Worker: rng.Intn(workers)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// RandomPermanentCrashes deterministically draws n permanent crashes at
// distinct supersteps in [2, maxStep] across workers in [0, workers),
// sorted by step. Distinct workers are preferred so a chaos campaign does
// not waste draws re-killing an already-dead worker.
func RandomPermanentCrashes(seed int64, n, maxStep, workers int) []Crash {
	crashes := RandomCrashes(seed, n, maxStep, workers)
	used := make(map[int]bool, len(crashes))
	for i := range crashes {
		crashes[i].Permanent = true
		if used[crashes[i].Worker] {
			for w := 0; w < workers; w++ {
				if !used[w] {
					crashes[i].Worker = w
					break
				}
			}
		}
		used[crashes[i].Worker] = true
	}
	return crashes
}

// RandomStalls deterministically draws n stalls at distinct supersteps in
// [2, maxStep] across workers in [0, workers), sorted by step. The same
// arguments always yield the same schedule, and a seed distinct from the
// one used for RandomCrashes yields an independent schedule.
func RandomStalls(seed int64, n, maxStep, workers int) []Stall {
	crashes := RandomCrashes(seed, n, maxStep, workers)
	out := make([]Stall, len(crashes))
	for i, c := range crashes {
		out[i] = Stall{Step: c.Step, Worker: c.Worker}
	}
	return out
}

// Decision is one request's injected faults.
type Decision struct {
	DropRequest  bool
	DropResponse bool
	Duplicate    bool
	Delay        time.Duration
}

// Roller produces the deterministic per-request fault decision stream for
// one TransportFaults description. Safe for concurrent use; under
// concurrency the assignment of decisions to requests follows arrival
// order, but each decision is still drawn from the seeded stream, so
// aggregate fault rates are reproducible.
type Roller struct {
	mu  sync.Mutex
	rng *rand.Rand
	t   TransportFaults
}

// NewRoller returns a fresh decision stream for the description.
func (t *TransportFaults) NewRoller() *Roller {
	tt := *t
	if tt.MaxDelay <= 0 {
		tt.MaxDelay = 2 * time.Millisecond
	}
	return &Roller{rng: rand.New(rand.NewSource(tt.Seed)), t: tt}
}

// Roll draws the fault decision for the next request.
func (r *Roller) Roll() Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	var d Decision
	d.DropRequest = r.rng.Float64() < r.t.DropRequest
	d.DropResponse = r.rng.Float64() < r.t.DropResponse
	d.Duplicate = r.rng.Float64() < r.t.Duplicate
	if r.rng.Float64() < r.t.Delay {
		d.Delay = time.Duration(r.rng.Int63n(int64(r.t.MaxDelay) + 1))
	}
	return d
}
