package faultplan

import (
	"testing"
	"time"
)

func TestNewPlanSortsCrashes(t *testing.T) {
	p := NewPlan(Crash{Step: 9, Worker: 1}, Crash{Step: 3, Worker: 2}, Crash{Step: 9, Worker: 0})
	want := []Crash{{3, 2}, {9, 0}, {9, 1}}
	if len(p.Crashes) != len(want) {
		t.Fatalf("crashes = %v", p.Crashes)
	}
	for i, c := range want {
		if p.Crashes[i] != c {
			t.Fatalf("crashes[%d] = %v, want %v", i, p.Crashes[i], c)
		}
	}
}

func TestRandomCrashesDeterministic(t *testing.T) {
	a := RandomCrashes(7, 4, 20, 3)
	b := RandomCrashes(7, 4, 20, 3)
	if len(a) != 4 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	seen := map[int]bool{}
	for _, c := range a {
		if c.Step < 2 || c.Step > 20 {
			t.Fatalf("step %d out of range", c.Step)
		}
		if c.Worker < 0 || c.Worker >= 3 {
			t.Fatalf("worker %d out of range", c.Worker)
		}
		if seen[c.Step] {
			t.Fatalf("duplicate step %d", c.Step)
		}
		seen[c.Step] = true
	}
	if c := RandomCrashes(9, 4, 20, 3); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] && c[3] == a[3] {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRollerDeterministicAndRated(t *testing.T) {
	tf := &TransportFaults{Seed: 42, DropRequest: 0.3, DropResponse: 0.1, Duplicate: 0.2, Delay: 0.5, MaxDelay: time.Millisecond}
	a, b := tf.NewRoller(), tf.NewRoller()
	const n = 10000
	var drops int
	for i := 0; i < n; i++ {
		da, db := a.Roll(), b.Roll()
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
		if da.DropRequest {
			drops++
		}
		if da.Delay > time.Millisecond {
			t.Fatalf("delay %v exceeds MaxDelay", da.Delay)
		}
	}
	rate := float64(drops) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("drop-request rate %.3f, want ~0.3", rate)
	}
}

func TestRollerZeroFaults(t *testing.T) {
	r := (&TransportFaults{Seed: 1}).NewRoller()
	for i := 0; i < 100; i++ {
		if d := r.Roll(); d != (Decision{}) {
			t.Fatalf("zero-rate roller injected %+v", d)
		}
	}
}
