package faultplan

import (
	"testing"
	"time"
)

func TestNewPlanSortsCrashes(t *testing.T) {
	p := NewPlan(Crash{Step: 9, Worker: 1}, Crash{Step: 3, Worker: 2}, Crash{Step: 9, Worker: 0})
	want := []Crash{{Step: 3, Worker: 2}, {Step: 9, Worker: 0}, {Step: 9, Worker: 1}}
	if len(p.Crashes) != len(want) {
		t.Fatalf("crashes = %v", p.Crashes)
	}
	for i, c := range want {
		if p.Crashes[i] != c {
			t.Fatalf("crashes[%d] = %v, want %v", i, p.Crashes[i], c)
		}
	}
}

func TestRandomCrashesDeterministic(t *testing.T) {
	a := RandomCrashes(7, 4, 20, 3)
	b := RandomCrashes(7, 4, 20, 3)
	if len(a) != 4 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	seen := map[int]bool{}
	for _, c := range a {
		if c.Step < 2 || c.Step > 20 {
			t.Fatalf("step %d out of range", c.Step)
		}
		if c.Worker < 0 || c.Worker >= 3 {
			t.Fatalf("worker %d out of range", c.Worker)
		}
		if seen[c.Step] {
			t.Fatalf("duplicate step %d", c.Step)
		}
		seen[c.Step] = true
	}
	if c := RandomCrashes(9, 4, 20, 3); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] && c[3] == a[3] {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRollerDeterministicAndRated(t *testing.T) {
	tf := &TransportFaults{Seed: 42, DropRequest: 0.3, DropResponse: 0.1, Duplicate: 0.2, Delay: 0.5, MaxDelay: time.Millisecond}
	a, b := tf.NewRoller(), tf.NewRoller()
	const n = 10000
	var drops int
	for i := 0; i < n; i++ {
		da, db := a.Roll(), b.Roll()
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
		if da.DropRequest {
			drops++
		}
		if da.Delay > time.Millisecond {
			t.Fatalf("delay %v exceeds MaxDelay", da.Delay)
		}
	}
	rate := float64(drops) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("drop-request rate %.3f, want ~0.3", rate)
	}
}

func TestRollerZeroFaults(t *testing.T) {
	r := (&TransportFaults{Seed: 1}).NewRoller()
	for i := 0; i < 100; i++ {
		if d := r.Roll(); d != (Decision{}) {
			t.Fatalf("zero-rate roller injected %+v", d)
		}
	}
}

func TestWithStallsSorts(t *testing.T) {
	p := NewPlan(Crash{Step: 4, Worker: 0}).WithStalls(
		Stall{Step: 9, Worker: 2}, Stall{Step: 3, Worker: 1}, Stall{Step: 3, Worker: 0})
	want := []Stall{{Step: 3, Worker: 0}, {Step: 3, Worker: 1}, {Step: 9, Worker: 2}}
	if len(p.Stalls) != len(want) {
		t.Fatalf("got %d stalls, want %d", len(p.Stalls), len(want))
	}
	for i := range want {
		if p.Stalls[i] != want[i] {
			t.Fatalf("Stalls[%d] = %v, want %v", i, p.Stalls[i], want[i])
		}
	}
	if len(p.Crashes) != 1 {
		t.Fatalf("crashes lost: %v", p.Crashes)
	}
}

func TestRandomStallsDeterministic(t *testing.T) {
	a := RandomStalls(7, 3, 10, 4)
	b := RandomStalls(7, 3, 10, 4)
	if len(a) != 3 {
		t.Fatalf("got %d stalls, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
		if a[i].Step < 2 || a[i].Step > 10 || a[i].Worker < 0 || a[i].Worker >= 4 {
			t.Fatalf("stall out of range: %v", a[i])
		}
	}
	c := RandomStalls(8, 3, 10, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical schedule")
	}
}
