package veblock

import (
	"path/filepath"
	"testing"
	"testing/quick"

	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
)

func mkLayout(t *testing.T, n, workers, blocksPer int) *Layout {
	t.Helper()
	l, err := UniformLayout(graph.RangePartition(n, workers), blocksPer)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutGeometry(t *testing.T) {
	l := mkLayout(t, 100, 4, 3)
	if l.NumBlocks() != 12 {
		t.Fatalf("NumBlocks = %d, want 12", l.NumBlocks())
	}
	// Blocks are contiguous and cover [0,100).
	prev := graph.VertexID(0)
	for _, b := range l.Blocks {
		if b.Lo != prev {
			t.Fatalf("gap before block at %d", b.Lo)
		}
		prev = b.Hi
	}
	if prev != 100 {
		t.Fatalf("blocks end at %d, want 100", prev)
	}
	for v := 0; v < 100; v++ {
		b := l.BlockOf(graph.VertexID(v))
		if b < 0 || !l.Blocks[b].Contains(graph.VertexID(v)) {
			t.Fatalf("BlockOf(%d) = %d wrong", v, b)
		}
		w := l.OwnerOfBlock(b)
		if lo, hi := l.WorkerBlocks(w); b < lo || b >= hi {
			t.Fatalf("OwnerOfBlock(%d) = %d inconsistent", b, w)
		}
	}
	if l.BlockOf(100) != -1 {
		t.Fatal("BlockOf out of range should be -1")
	}
}

func TestBlockCountRules(t *testing.T) {
	// Eq (5): Vi = (2n + nT)/B rounded up.
	if got := BlocksCombinable(1000, 5, 1000); got != 7 {
		t.Fatalf("BlocksCombinable = %d, want 7", got)
	}
	// Eq (6): Vi = sum-in-degree / B rounded up.
	if got := BlocksConcatOnly(10500, 1000, 100000); got != 11 {
		t.Fatalf("BlocksConcatOnly = %d, want 11", got)
	}
	// Degenerate buffers yield one block; counts never exceed n.
	if got := BlocksCombinable(10, 5, 0); got != 1 {
		t.Fatalf("zero buffer: %d, want 1", got)
	}
	if got := BlocksCombinable(3, 50, 1); got != 3 {
		t.Fatalf("clamp to n: %d, want 3", got)
	}
}

func buildAll(t *testing.T, g *graph.Graph, l *Layout, workers int) ([]*Store, *diskio.Counter) {
	t.Helper()
	var ct diskio.Counter
	dir := t.TempDir()
	stores := make([]*Store, workers)
	for w := 0; w < workers; w++ {
		s, err := Build(filepath.Join(dir, "ve-w"+string(rune('0'+w))+".dat"), &ct, g, l, w, nil)
		if err == nil {
			stores[w] = s
			t.Cleanup(func() { s.Close() })
			continue
		}
		t.Fatal(err)
	}
	return stores, &ct
}

func TestBuildCoversEveryEdgeExactlyOnce(t *testing.T) {
	g := graph.GenRMAT(256, 2048, 0.57, 0.19, 0.19, 7)
	l := mkLayout(t, 256, 3, 4)
	stores, _ := buildAll(t, g, l, 3)
	seen := map[[2]graph.VertexID]int{}
	for _, s := range stores {
		for j := 0; j < s.LocalBlocks(); j++ {
			for i := 0; i < l.NumBlocks(); i++ {
				_, err := s.ScanEblock(j, i, func(src graph.VertexID, edges []graph.Half) error {
					jb := l.Blocks[s.FirstBlock()+j]
					if !jb.Contains(src) {
						t.Fatalf("fragment src %d outside its block [%d,%d)", src, jb.Lo, jb.Hi)
					}
					for _, e := range edges {
						if l.BlockOf(e.Dst) != i {
							t.Fatalf("edge (%d,%d) in wrong Eblock %d", src, e.Dst, i)
						}
						seen[[2]graph.VertexID{src, e.Dst}]++
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	total := 0
	for _, c := range seen {
		total += c
	}
	if total != g.NumEdges() {
		t.Fatalf("scanned %d edges, graph has %d", total, g.NumEdges())
	}
	for v := 0; v < g.NumVertices; v++ {
		for _, h := range g.OutEdges(graph.VertexID(v)) {
			if seen[[2]graph.VertexID{graph.VertexID(v), h.Dst}] == 0 {
				t.Fatalf("edge (%d,%d) missing from VE-BLOCK", v, h.Dst)
			}
		}
	}
}

func TestMetadataMatchesGraph(t *testing.T) {
	g := graph.GenUniform(120, 600, 5)
	l := mkLayout(t, 120, 2, 3)
	stores, _ := buildAll(t, g, l, 2)
	var outSum, inSum int64
	var nVerts int
	for _, s := range stores {
		for j := 0; j < s.LocalBlocks(); j++ {
			m := s.Meta(j)
			outSum += m.OutDegree
			inSum += m.InDegree
			nVerts += m.NumVertices
			// Bitmap consistency: bit set iff Eblock non-empty.
			for i := 0; i < l.NumBlocks(); i++ {
				_, _, edges := s.EblockSize(j, i)
				if (edges > 0) != m.Bitmap.Get(i) {
					t.Fatalf("bitmap bit %d disagrees with Eblock size", i)
				}
			}
		}
	}
	if outSum != int64(g.NumEdges()) || inSum != int64(g.NumEdges()) {
		t.Fatalf("degree sums out=%d in=%d, want %d", outSum, inSum, g.NumEdges())
	}
	if nVerts != 120 {
		t.Fatalf("metadata vertices = %d, want 120", nVerts)
	}
}

func TestFragmentClusteringIsTight(t *testing.T) {
	// A vertex with all edges into one destination block must produce a
	// single fragment in that block.
	b := graph.NewBuilder(20)
	for d := 10; d < 15; d++ {
		b.AddEdge(0, graph.VertexID(d), 1)
	}
	g := b.Build()
	l := mkLayout(t, 20, 1, 2) // blocks [0,10) and [10,20)
	stores, _ := buildAll(t, g, l, 1)
	s := stores[0]
	_, frags, edges := s.EblockSize(0, 1)
	if frags != 1 || edges != 5 {
		t.Fatalf("g_01 has %d fragments/%d edges, want 1/5", frags, edges)
	}
	if s.Fragments() != 1 {
		t.Fatalf("total fragments = %d, want 1", s.Fragments())
	}
}

// TestTheorem1FragmentsProportionalToV checks Theorem 1 empirically: the
// expected fragment count grows monotonically with the number of Vblocks V
// and is bounded by min(|E|, Σ_u min(deg u, V)).
func TestTheorem1FragmentsProportionalToV(t *testing.T) {
	g := graph.GenRMAT(512, 8192, 0.57, 0.19, 0.19, 13)
	prev := int64(0)
	for _, blocksPer := range []int{1, 2, 4, 8, 16} {
		l := mkLayout(t, 512, 2, blocksPer)
		stores, _ := buildAll(t, g, l, 2)
		var f int64
		for _, s := range stores {
			f += s.Fragments()
		}
		if f < prev {
			t.Fatalf("fragments decreased from %d to %d when V grew to %d",
				prev, f, l.NumBlocks())
		}
		if f > int64(g.NumEdges()) {
			t.Fatalf("fragments %d exceed edge count %d", f, g.NumEdges())
		}
		prev = f
	}
}

func TestScanStatsAccounting(t *testing.T) {
	g := graph.GenUniform(64, 512, 9)
	l := mkLayout(t, 64, 1, 2)
	stores, ct := buildAll(t, g, l, 1)
	s := stores[0]
	before := ct.Snapshot()
	var st ScanStats
	for j := 0; j < s.LocalBlocks(); j++ {
		for i := 0; i < l.NumBlocks(); i++ {
			one, err := s.ScanEblock(j, i, func(graph.VertexID, []graph.Half) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
			st.FragBytes += one.FragBytes
			st.EdgeBytes += one.EdgeBytes
			st.Fragments += one.Fragments
		}
	}
	if st.EdgeBytes != int64(g.NumEdges())*edgeSize {
		t.Fatalf("edge bytes %d, want %d", st.EdgeBytes, g.NumEdges()*edgeSize)
	}
	if int64(st.Fragments) != s.Fragments() {
		t.Fatalf("scanned %d fragments, store reports %d", st.Fragments, s.Fragments())
	}
	d := ct.Snapshot().Sub(before)
	if d.Bytes[diskio.SeqRead] != st.FragBytes+st.EdgeBytes {
		t.Fatalf("SeqRead %d, want %d", d.Bytes[diskio.SeqRead], st.FragBytes+st.EdgeBytes)
	}
}

func TestScanEblockRangeChecks(t *testing.T) {
	g := graph.GenUniform(32, 64, 1)
	l := mkLayout(t, 32, 1, 2)
	stores, _ := buildAll(t, g, l, 1)
	if _, err := stores[0].ScanEblock(5, 0, nil); err == nil {
		t.Fatal("out-of-range local block should fail")
	}
	if _, err := stores[0].ScanEblock(0, 99, nil); err == nil {
		t.Fatal("out-of-range destination block should fail")
	}
}

func TestLayoutBlockOfProperty(t *testing.T) {
	f := func(nRaw uint16, wRaw, bRaw uint8) bool {
		n := int(nRaw%2000) + 10
		workers := int(wRaw%8) + 1
		per := int(bRaw%6) + 1
		l, err := UniformLayout(graph.RangePartition(n, workers), per)
		if err != nil {
			return false
		}
		// Every vertex maps to exactly one block that contains it.
		for v := 0; v < n; v += 1 + n/50 {
			b := l.BlockOf(graph.VertexID(v))
			if b < 0 || !l.Blocks[b].Contains(graph.VertexID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaMemBytesPositive(t *testing.T) {
	g := graph.GenUniform(64, 256, 2)
	l := mkLayout(t, 64, 1, 4)
	stores, _ := buildAll(t, g, l, 1)
	if stores[0].MetaMemBytes() <= 0 {
		t.Fatal("MetaMemBytes should be positive")
	}
}

// TestBFSReorderingReducesFragments validates the paper's footnote 1 in
// action: renumbering a locality-rich graph in BFS order clusters each
// vertex's out-edges into fewer destination blocks, cutting the fragment
// count (and with it IO(F^t)) relative to a scrambled numbering.
func TestBFSReorderingReducesFragments(t *testing.T) {
	base := graph.GenWeb(1024, 8192, 32, 0.85, 81)
	// Scramble: reverse the id space to destroy host locality.
	scramble := make([]graph.VertexID, base.NumVertices)
	for i := range scramble {
		scramble[i] = graph.VertexID(base.NumVertices - 1 - i*7%base.NumVertices)
	}
	// The naive scramble above is not a permutation for all n; build a
	// deterministic one instead.
	for i := range scramble {
		scramble[i] = graph.VertexID((i*797 + 13) % base.NumVertices)
	}
	if !graph.IsPermutation(scramble, base.NumVertices) {
		t.Skip("scramble constants do not form a permutation for this n")
	}
	scrambled := graph.Relabel(base, scramble)
	ordered := graph.Relabel(scrambled, graph.BFSOrder(scrambled))

	frags := func(g *graph.Graph) int64 {
		l := mkLayout(t, g.NumVertices, 2, 8)
		stores, _ := buildAll(t, g, l, 2)
		var f int64
		for _, s := range stores {
			f += s.Fragments()
		}
		return f
	}
	fs, fo := frags(scrambled), frags(ordered)
	if fo >= fs {
		t.Fatalf("BFS ordering should reduce fragments: scrambled %d, ordered %d", fs, fo)
	}
}
