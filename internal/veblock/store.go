package veblock

import (
	"encoding/binary"
	"fmt"
	"math"

	"hybridgraph/internal/bitset"
	"hybridgraph/internal/codec"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
)

// blockReader abstracts the Eblock file: a raw accounted File (codec
// "none") or a compressed codec.BlockFile with identical logical
// charges and physical frame I/O on the counter's twin.
type blockReader interface {
	ReadAtClass(p []byte, off int64, c diskio.Class) (int, error)
	Size() (int64, error)
	SetCounter(*diskio.Counter)
	Close() error
}

const (
	// FragAuxSize is the on-disk size of a fragment's auxiliary data
	// (svertex id + clustered edge count), the paper's S_f.
	FragAuxSize = 8
	edgeSize    = 8 // dst uint32 + weight float32
)

// BlockMeta is the paper's X_j metadata for one Vblock: kept in memory on
// the owning worker ("the memory for metadata ... is negligible").
type BlockMeta struct {
	NumVertices int
	InDegree    int64
	OutDegree   int64
	Bitmap      *bitset.Set // bit i set ⇔ Eblock g_ji is non-empty
}

type span struct {
	off   int64
	size  int64
	frags int32
	edges int32
}

// Store is one worker's share of VE-BLOCK: the Eblocks of its local
// Vblocks plus their metadata. Vertex values live in the shared
// vertexfile.Store; this type only handles edges and metadata.
type Store struct {
	layout *Layout
	worker int
	f      blockReader
	buf    []byte // memory-resident Eblocks when f is nil
	firstB int    // global id of first local block
	nLocal int    // number of local blocks
	meta   []BlockMeta
	spans  [][]span // spans[j][i]: Eblock g_{(firstB+j), i}
	frags  int64    // total fragments on this worker (contributes to f)
	edges  int64    // total edges stored
}

// Build constructs worker w's VE-BLOCK file at path from the staged graph.
// Edges are grouped into Eblocks by (source block, destination block) and
// clustered into per-svertex fragments, then written in one sequential
// pass — the "VE-BLOCK" loading path of Fig. 16.
func Build(path string, ct *diskio.Counter, g *graph.Graph, layout *Layout, w int, cdc codec.Codec) (*Store, error) {
	s, buf, err := assemble(g, layout, w)
	if err != nil {
		return nil, err
	}
	if !codec.IsNone(cdc) {
		if err := codec.WriteBlockFile(path, ct, cdc, buf); err != nil {
			return nil, err
		}
		bf, err := codec.OpenBlockFile(path, ct)
		if err != nil {
			return nil, err
		}
		s.f = bf
		return s, nil
	}
	f, err := diskio.Create(path, ct)
	if err != nil {
		return nil, err
	}
	s.f = f
	if len(buf) > 0 {
		if _, err := f.WriteAtClass(buf, 0, diskio.SeqWrite); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// Open opens a previously built VE-BLOCK file read-only. The span index
// and X_j metadata are recomputed from the staged graph — they are a
// deterministic function of (g, layout, w), so the catalog need not
// persist them. The file size must match the assembled layout; deeper
// integrity is the manifest CRC's job.
func Open(path string, ct *diskio.Counter, g *graph.Graph, layout *Layout, w int, cdc codec.Codec) (*Store, error) {
	s, buf, err := assemble(g, layout, w)
	if err != nil {
		return nil, err
	}
	var f blockReader
	var err2 error
	if codec.IsNone(cdc) {
		f, err2 = diskio.OpenRead(path, ct)
	} else {
		f, err2 = codec.OpenBlockFile(path, ct)
	}
	if err2 != nil {
		return nil, err2
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size != int64(len(buf)) {
		f.Close()
		return nil, fmt.Errorf("veblock: %s is %d bytes, layout expects %d", path, size, len(buf))
	}
	s.f = f
	return s, nil
}

// BuildMem constructs worker w's VE-BLOCK in memory: same structure and
// scan semantics, no I/O charges (sufficient-memory scenario).
func BuildMem(g *graph.Graph, layout *Layout, w int) (*Store, error) {
	s, buf, err := assemble(g, layout, w)
	if err != nil {
		return nil, err
	}
	s.buf = buf
	return s, nil
}

func assemble(g *graph.Graph, layout *Layout, w int) (*Store, []byte, error) {
	lo, hi := layout.WorkerBlocks(w)
	s := &Store{
		layout: layout,
		worker: w,
		firstB: lo,
		nLocal: hi - lo,
		meta:   make([]BlockMeta, hi-lo),
		spans:  make([][]span, hi-lo),
	}
	v := layout.NumBlocks()
	var buf []byte
	var off int64
	for j := 0; j < s.nLocal; j++ {
		blk := layout.Blocks[lo+j]
		m := &s.meta[j]
		m.NumVertices = blk.Len()
		m.Bitmap = bitset.New(v)
		s.spans[j] = make([]span, v)

		// Group this block's out-edges by destination block, preserving
		// source order so each Eblock's edges cluster into fragments.
		byDst := make([][]graph.Edge, v)
		for u := blk.Lo; u < blk.Hi; u++ {
			out := g.OutEdges(u)
			m.OutDegree += int64(len(out))
			for _, h := range out {
				db := layout.BlockOf(h.Dst)
				if db < 0 {
					return nil, nil, fmt.Errorf("veblock: edge (%d,%d) destination outside layout", u, h.Dst)
				}
				byDst[db] = append(byDst[db], graph.Edge{Src: u, Dst: h.Dst, Weight: h.Weight})
			}
		}
		for i := 0; i < v; i++ {
			sp := span{off: off}
			edges := byDst[i]
			k := 0
			for k < len(edges) {
				src := edges[k].Src
				run := k
				for run < len(edges) && edges[run].Src == src {
					run++
				}
				var aux [FragAuxSize]byte
				binary.LittleEndian.PutUint32(aux[0:], uint32(src))
				binary.LittleEndian.PutUint32(aux[4:], uint32(run-k))
				buf = append(buf, aux[:]...)
				for _, e := range edges[k:run] {
					var rec [edgeSize]byte
					binary.LittleEndian.PutUint32(rec[0:], uint32(e.Dst))
					binary.LittleEndian.PutUint32(rec[4:], math.Float32bits(e.Weight))
					buf = append(buf, rec[:]...)
				}
				sp.frags++
				sp.edges += int32(run - k)
				k = run
			}
			sp.size = int64(sp.frags)*FragAuxSize + int64(sp.edges)*edgeSize
			off += sp.size
			s.spans[j][i] = sp
			if sp.edges > 0 {
				m.Bitmap.Set(i)
			}
			s.frags += int64(sp.frags)
			s.edges += int64(sp.edges)
		}
	}
	// In-degrees of local vertices (metadata item "ind" of X_j).
	for u := 0; u < g.NumVertices; u++ {
		for _, h := range g.OutEdges(graph.VertexID(u)) {
			if b := layout.BlockOf(h.Dst); b >= lo && b < hi {
				s.meta[b-lo].InDegree++
			}
		}
	}
	return s, buf, nil
}

// Close releases the underlying file, if any.
func (s *Store) Close() error {
	if s.f == nil {
		return nil
	}
	return s.f.Close()
}

// LocalBlocks reports the number of Vblocks this worker owns.
func (s *Store) LocalBlocks() int { return s.nLocal }

// FirstBlock reports the global id of the worker's first block.
func (s *Store) FirstBlock() int { return s.firstB }

// Fragments reports this worker's total fragment count (its share of the
// paper's f).
func (s *Store) Fragments() int64 { return s.frags }

// Edges reports the number of edges stored.
func (s *Store) Edges() int64 { return s.edges }

// SizeBytes reports the store's Eblock bytes (the on-disk file size for
// file-backed stores).
func (s *Store) SizeBytes() int64 { return s.frags*FragAuxSize + s.edges*edgeSize }

// Meta returns the metadata X_j of local block j (0-based local index).
func (s *Store) Meta(j int) *BlockMeta { return &s.meta[j] }

// EblockSize reports the on-disk byte size and fragment count of Eblock
// g_{j,i} (local j, global destination i) without reading it. Hybrid uses
// these to estimate Cio(b-pull) while running push (Section 5.3).
func (s *Store) EblockSize(j, i int) (bytes int64, frags int32, edges int32) {
	sp := s.spans[j][i]
	return sp.size, sp.frags, sp.edges
}

// ScanStats reports what a scan actually read, split into the paper's
// I/O components: fragment auxiliary bytes IO(F^t) and edge bytes
// (part of IO(Ē^t)).
type ScanStats struct {
	FragBytes int64
	EdgeBytes int64
	Fragments int
}

// ScanEblock sequentially reads Eblock g_{j,i} and invokes fn once per
// fragment with the source vertex and its clustered edges. The edges slice
// is reused across calls. Returns per-component byte counts.
func (s *Store) ScanEblock(j, i int, fn func(src graph.VertexID, edges []graph.Half) error) (ScanStats, error) {
	var st ScanStats
	if j < 0 || j >= s.nLocal || i < 0 || i >= s.layout.NumBlocks() {
		return st, fmt.Errorf("veblock: eblock (%d,%d) out of range", j, i)
	}
	sp := s.spans[j][i]
	if sp.size == 0 {
		return st, nil
	}
	var buf []byte
	if s.f == nil {
		buf = s.buf[sp.off : sp.off+sp.size]
	} else {
		buf = make([]byte, sp.size)
		if _, err := s.f.ReadAtClass(buf, sp.off, diskio.SeqRead); err != nil {
			return st, err
		}
	}
	var edges []graph.Half
	o := 0
	for o < len(buf) {
		src := graph.VertexID(binary.LittleEndian.Uint32(buf[o:]))
		cnt := int(binary.LittleEndian.Uint32(buf[o+4:]))
		o += FragAuxSize
		st.FragBytes += FragAuxSize
		st.Fragments++
		edges = edges[:0]
		for e := 0; e < cnt; e++ {
			edges = append(edges, graph.Half{
				Dst:    graph.VertexID(binary.LittleEndian.Uint32(buf[o:])),
				Weight: math.Float32frombits(binary.LittleEndian.Uint32(buf[o+4:])),
			})
			o += edgeSize
			st.EdgeBytes += edgeSize
		}
		if err := fn(src, edges); err != nil {
			return st, err
		}
	}
	return st, nil
}

// MetaMemBytes reports the in-memory footprint of the X_j metadata as the
// paper defines it — vertex count, in/out degree, bitmap and res indicator
// per Vblock (Section 4.1). The span index is an implementation aid, not
// part of X_j, and is excluded so the Fig. 23/24 memory curves measure
// what the paper measured (message buffers dominating at small V).
func (s *Store) MetaMemBytes() int64 {
	var b int64
	for j := range s.meta {
		b += 8*3 + 1 // #, ind, outd counters and the res indicator
		b += s.meta[j].Bitmap.MemBytes()
	}
	return b
}

// SetCounter retargets the store's I/O accounting (no-op for
// memory-resident stores).
func (s *Store) SetCounter(ct *diskio.Counter) {
	if s == nil || s.f == nil {
		return
	}
	s.f.SetCounter(ct)
}
