// Package veblock implements VE-BLOCK (Section 4.1), the graph storage
// that makes block-centric pulling I/O-efficient: vertices are
// range-partitioned into V fixed-size Vblocks; the out-edges of Vblock b_j
// are split into V variable-size Eblocks g_j1..g_jV by destination block,
// and within each Eblock the edges sharing a source vertex are clustered
// into a fragment carrying (svertex id, edge count) auxiliary data. Each
// Vblock also carries metadata X_j: vertex count, total in/out degree, a
// destination bitmap x_j, and a responding indicator res.
package veblock

import (
	"fmt"
	"sort"

	"hybridgraph/internal/graph"
)

// Layout is the global Vblock geometry shared by every worker: which
// vertex range each of the V blocks covers and which worker owns it.
type Layout struct {
	Blocks      []graph.Partition // all V blocks, ascending by Lo, contiguous
	WorkerFirst []int             // len T+1; worker w owns blocks [WorkerFirst[w], WorkerFirst[w+1])
}

// NewLayout subdivides each worker partition into blocksPer[w] Vblocks.
// Partitions must be the contiguous output of graph.RangePartition.
func NewLayout(parts []graph.Partition, blocksPer []int) (*Layout, error) {
	if len(parts) != len(blocksPer) {
		return nil, fmt.Errorf("veblock: %d partitions but %d block counts", len(parts), len(blocksPer))
	}
	l := &Layout{WorkerFirst: make([]int, len(parts)+1)}
	for w, p := range parts {
		l.WorkerFirst[w] = len(l.Blocks)
		l.Blocks = append(l.Blocks, graph.BlockRanges(p, blocksPer[w])...)
	}
	l.WorkerFirst[len(parts)] = len(l.Blocks)
	return l, nil
}

// UniformLayout gives every worker the same number of Vblocks.
func UniformLayout(parts []graph.Partition, blocksPerWorker int) (*Layout, error) {
	bp := make([]int, len(parts))
	for i := range bp {
		bp[i] = blocksPerWorker
	}
	return NewLayout(parts, bp)
}

// NumBlocks reports V, the total number of Vblocks.
func (l *Layout) NumBlocks() int { return len(l.Blocks) }

// BlockOf returns the global id of the block containing v, or -1.
func (l *Layout) BlockOf(v graph.VertexID) int {
	i := sort.Search(len(l.Blocks), func(i int) bool { return l.Blocks[i].Hi > v })
	if i < len(l.Blocks) && l.Blocks[i].Contains(v) {
		return i
	}
	return -1
}

// OwnerOfBlock reports the worker owning global block b.
func (l *Layout) OwnerOfBlock(b int) int {
	for w := 0; w+1 < len(l.WorkerFirst); w++ {
		if b >= l.WorkerFirst[w] && b < l.WorkerFirst[w+1] {
			return w
		}
	}
	return -1
}

// WorkerBlocks reports the global ids of worker w's blocks.
func (l *Layout) WorkerBlocks(w int) (lo, hi int) {
	return l.WorkerFirst[w], l.WorkerFirst[w+1]
}

// BlocksCombinable computes worker w's Vblock count by Eq. (5):
// V_i = (2 n_i + n_i T) / B_i, the rule for algorithms whose messages
// combine (PageRank, SSSP). n is the worker's vertex count, t the number
// of workers, b the worker's message buffer capacity in messages.
func BlocksCombinable(n, t, b int) int {
	if b <= 0 {
		return 1
	}
	v := (2*n + n*t + b - 1) / b
	return clampBlocks(v, n)
}

// BlocksConcatOnly computes worker w's Vblock count by Eq. (6):
// V_i = Σ in-degree(u) / B_i, the rule for concatenate-only algorithms
// (LPA, SA), where buffering holds one value per in-edge.
func BlocksConcatOnly(inDegreeSum int64, b int, n int) int {
	if b <= 0 {
		return 1
	}
	v := int((inDegreeSum + int64(b) - 1) / int64(b))
	return clampBlocks(v, n)
}

func clampBlocks(v, n int) int {
	if v < 1 {
		v = 1
	}
	if n > 0 && v > n {
		v = n
	}
	return v
}
