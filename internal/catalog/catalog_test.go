package catalog

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/core"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/obs"
)

func testGraph() *graph.Graph {
	return graph.GenRMAT(800, 6400, 0.57, 0.19, 0.19, 7)
}

func TestIngestListRemove(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph()
	if _, err := c.Ingest("beta", g, 3, 2, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest("alpha", graph.GenUniform(200, 1200, 3), 2, 1, ""); err != nil {
		t.Fatal(err)
	}
	list, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Name != "alpha" || list[1].Name != "beta" {
		t.Fatalf("List = %+v, want [alpha beta]", list)
	}
	if list[1].Vertices != g.NumVertices || list[1].Edges != int64(g.NumEdges()) {
		t.Fatalf("beta manifest %dv/%de, want %dv/%de",
			list[1].Vertices, list[1].Edges, g.NumVertices, g.NumEdges())
	}
	if err := c.Remove("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Entry("alpha"); err == nil {
		t.Fatal("Entry(alpha) succeeded after Remove")
	}
	// A fresh Catalog over the same directory still sees beta.
	c2, err := Open(c.Root())
	if err != nil {
		t.Fatal(err)
	}
	e, err := c2.Entry("beta")
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() != 3 || len(e.BlocksPer()) != 3 || e.BlocksPer()[0] != 2 {
		t.Fatalf("beta geometry = %d workers, blocks %v", e.Workers(), e.BlocksPer())
	}
}

func TestIngestRejectsBadNamesAndDuplicates(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GenUniform(100, 500, 1)
	for _, bad := range []string{"", ".hidden", "a/b", "sp ace", "x*"} {
		if _, err := c.Ingest(bad, g, 2, 1, ""); err == nil {
			t.Errorf("Ingest(%q) succeeded, want error", bad)
		}
	}
	if _, err := c.Ingest("dup", g, 2, 1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest("dup", g, 2, 1, ""); err == nil {
		t.Fatal("duplicate Ingest succeeded, want error")
	}
}

func TestCorruptedStoreRejected(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest("g", testGraph(), 3, 2, ""); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "g", "w0", "adj.dat")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// A fresh Catalog (no cached Entry) must reject the flipped byte via
	// the manifest checksum.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Entry("g"); err == nil {
		t.Fatal("Entry succeeded over a corrupted adjacency store")
	}
}

// readCatalogEvents parses the "catalog" events out of a JSONL trace
// journal.
func readCatalogEvents(t *testing.T, path string) []obs.CatalogEvent {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []obs.CatalogEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if probe.Type != obs.EventCatalog {
			continue
		}
		var ev obs.CatalogEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCatalogReuseBitIdentical is the reuse acceptance check: results over
// catalog stores are bit-identical to a fresh per-job build, repeated runs
// stay identical, and the reused runs perform zero layout-build writes —
// cross-checked against both the JobResult and the trace journal.
func TestCatalogReuseBitIdentical(t *testing.T) {
	g := testGraph()
	const workers, blocks = 3, 2
	dir := t.TempDir()
	c, err := Open(filepath.Join(dir, "catalog"))
	if err != nil {
		t.Fatal(err)
	}
	entry, err := c.Ingest("rmat", g, workers, blocks, "")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		prog   func() algo.Program
		engine core.Engine
	}{
		{"pagerank-hybrid", func() algo.Program { return algo.NewPageRank(0.85) }, core.Hybrid},
		{"sssp-bpull", func() algo.Program { return algo.NewSSSP(0) }, core.BPull},
		{"pagerank-push", func() algo.Program { return algo.NewPageRank(0.85) }, core.Push},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh, err := core.Run(g, tc.prog(), core.Config{
				Workers: workers, BlocksPerWorker: blocks, MsgBuf: 200, MaxSteps: 6}, tc.engine)
			if err != nil {
				t.Fatal(err)
			}
			if fresh.CatalogHit || fresh.LayoutBuildBytes == 0 {
				t.Fatalf("fresh run: hit=%v build=%d, want miss with build writes",
					fresh.CatalogHit, fresh.LayoutBuildBytes)
			}
			for run := 1; run <= 2; run++ {
				trace := filepath.Join(t.TempDir(), "trace.jsonl")
				res, err := core.Run(entry.Graph(), tc.prog(), core.Config{
					Stores: entry, MsgBuf: 200, MaxSteps: 6, TracePath: trace}, tc.engine)
				if err != nil {
					t.Fatal(err)
				}
				if !res.CatalogHit {
					t.Fatalf("run %d: CatalogHit = false", run)
				}
				if res.LayoutBuildBytes != 0 {
					t.Fatalf("run %d: %d layout-build bytes on a catalog hit", run, res.LayoutBuildBytes)
				}
				if res.LayoutReusedBytes == 0 {
					t.Fatalf("run %d: LayoutReusedBytes = 0", run)
				}
				if len(res.Values) != len(fresh.Values) {
					t.Fatalf("run %d: %d values, fresh %d", run, len(res.Values), len(fresh.Values))
				}
				for v := range fresh.Values {
					if res.Values[v] != fresh.Values[v] {
						t.Fatalf("run %d: vertex %d = %g, fresh %g (not bit-identical)",
							run, v, res.Values[v], fresh.Values[v])
					}
				}
				evs := readCatalogEvents(t, trace)
				if len(evs) != 1 {
					t.Fatalf("run %d: %d catalog trace events, want 1", run, len(evs))
				}
				if !evs[0].Hit || evs[0].BuiltBytes != 0 || evs[0].Graph != "rmat" {
					t.Fatalf("run %d: catalog trace event %+v, want hit on rmat with zero built bytes",
						run, evs[0])
				}
				if evs[0].ReusedBytes != res.LayoutReusedBytes {
					t.Fatalf("run %d: trace reused=%d, result reused=%d",
						run, evs[0].ReusedBytes, res.LayoutReusedBytes)
				}
			}
		})
	}
}

// TestCrashedIngestLeavesNoEntry checks the atomic-rename protocol: a
// half-built staging directory is invisible to Entry/List and does not
// block a later successful ingest.
func TestCrashedIngestLeavesNoEntry(t *testing.T) {
	dir := t.TempDir()
	// Fake an interrupted ingest: the hidden staging dir exists with some
	// files but was never renamed into place.
	stage := filepath.Join(dir, ".g.ingest")
	if err := os.MkdirAll(filepath.Join(stage, "w0"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stage, "w0", "adj.dat"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if list, err := c.List(); err != nil || len(list) != 0 {
		t.Fatalf("List = %v, %v; want empty", list, err)
	}
	if _, err := c.Entry("g"); err == nil {
		t.Fatal("Entry resolved a half-ingested graph")
	}
	if _, err := c.Ingest("g", graph.GenUniform(100, 500, 1), 2, 1, ""); err != nil {
		t.Fatalf("re-ingest after crash: %v", err)
	}
}
