package catalog

import (
	"errors"
	"testing"

	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
)

func smallGraph() *graph.Graph {
	return graph.GenRMAT(60, 320, 0.57, 0.19, 0.19, 13)
}

// TestIngestSurvivesImmediatePowerCut is the fsync half of the ingest
// durability contract: power lost the very instant Ingest returns must
// find the entry complete and verifiable. Without the sync-before-
// manifest walk, the built store files are volatile and the power cut
// truncates them out from under the committed manifest.
func TestIngestSurvivesImmediatePowerCut(t *testing.T) {
	root := t.TempDir()
	fs := diskio.NewFaultFS(diskio.FaultConfig{Seed: 1})
	diskio.Install(root, fs)
	defer diskio.Uninstall(root)

	c, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	g := smallGraph()
	if _, err := c.Ingest("g", g, 2, 2, ""); err != nil {
		t.Fatal(err)
	}
	fs.PowerCut()
	diskio.Uninstall(root)

	// Reboot: a fresh catalog over the same directory must serve the
	// entry, fully verified against its manifest.
	c2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	e, err := c2.Entry("g")
	if err != nil {
		t.Fatalf("entry failed verification after power cut: %v", err)
	}
	if e.Graph().NumVertices != g.NumVertices || e.Graph().NumEdges() != g.NumEdges() {
		t.Fatalf("entry is %dv/%de after power cut, ingested %dv/%de",
			e.Graph().NumVertices, e.Graph().NumEdges(), g.NumVertices, g.NumEdges())
	}
}

// TestIngestPowerCutAtEveryOp cuts power at every single mutating disk
// op an ingest performs, reboots, and reopens the catalog: the entry
// must be fully absent (a crashed ingest never half-publishes), the
// error must be typed, and a clean re-ingest under the same name must
// succeed — the crash leaves nothing behind that wedges recovery.
func TestIngestPowerCutAtEveryOp(t *testing.T) {
	g := smallGraph()

	// Probe run: count the mutating ops of a clean ingest.
	probe := t.TempDir()
	pfs := diskio.NewFaultFS(diskio.FaultConfig{})
	diskio.Install(probe, pfs)
	pc, err := Open(probe)
	if err != nil {
		diskio.Uninstall(probe)
		t.Fatal(err)
	}
	if _, err := pc.Ingest("g", g, 2, 2, ""); err != nil {
		diskio.Uninstall(probe)
		t.Fatal(err)
	}
	diskio.Uninstall(probe)
	total := pfs.Stats().Ops
	if total < 10 {
		t.Fatalf("clean ingest performed only %d tracked mutating ops; interception broken?", total)
	}

	for k := int64(1); k <= total; k++ {
		root := t.TempDir()
		fs := diskio.NewFaultFS(diskio.FaultConfig{Seed: k, PowerCutAfter: k})
		diskio.Install(root, fs)
		c, err := Open(root)
		if err != nil {
			diskio.Uninstall(root)
			t.Fatal(err)
		}
		_, ierr := c.Ingest("g", g, 2, 2, "")
		diskio.Uninstall(root)
		if ierr == nil {
			t.Fatalf("cut at op %d/%d: ingest reported success", k, total)
		}
		if !errors.Is(ierr, diskio.ErrDiskFault) {
			t.Fatalf("cut at op %d/%d: error is not a typed disk fault: %v", k, total, ierr)
		}

		// Reboot: all-or-nothing. A crashed ingest must leave the entry
		// fully absent — not listed, not loadable.
		c2, err := Open(root)
		if err != nil {
			t.Fatal(err)
		}
		if ms, err := c2.List(); err != nil {
			t.Fatalf("cut at op %d/%d: List after reboot: %v", k, total, err)
		} else if len(ms) != 0 {
			t.Fatalf("cut at op %d/%d: crashed ingest left a listed entry %q", k, total, ms[0].Name)
		}
		if _, err := c2.Entry("g"); err == nil {
			t.Fatalf("cut at op %d/%d: absent entry loaded", k, total)
		}

		// And nothing the crash left behind blocks a clean retry.
		if _, err := c2.Ingest("g", g, 2, 2, ""); err != nil {
			t.Fatalf("cut at op %d/%d: re-ingest after reboot failed: %v", k, total, err)
		}
		if _, err := c2.Entry("g"); err != nil {
			t.Fatalf("cut at op %d/%d: re-ingested entry failed verification: %v", k, total, err)
		}
	}
}
