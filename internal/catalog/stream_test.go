package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/codec"
	"hybridgraph/internal/core"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/ingest"
)

// streamInput generates a deterministic text edge list with unique
// (src, dst) pairs and varied weights.
func streamInput(t *testing.T, n, m int, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# vertices %d\n", n)
	for len(seen) < m {
		src := uint32(rng.Intn(n))
		dst := uint32(rng.Intn(n))
		if src == dst {
			continue
		}
		key := uint64(src)<<32 | uint64(dst)
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Fprintf(&buf, "%d %d %g\n", src, dst, float32(rng.Intn(100))/4)
	}
	return buf.Bytes()
}

func valuesHash(vals []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// TestIngestStreamByteIdenticalToInMemory is the acceptance check for
// the streaming path: the same input ingested via IngestStream at a
// tiny budget (forcing >= 3 spill/merge generations), a medium budget,
// and unlimited, and via the in-memory Ingest, must publish entries
// whose manifests — sizes, CRCs, IngestWriteBytes — are identical, and
// whose PageRank values match bit-exactly across push, b-pull and
// hybrid engines.
func TestIngestStreamByteIdenticalToInMemory(t *testing.T) {
	const workers, blocks = 3, 2
	input := streamInput(t, 500, 8000, 21)
	g, err := graph.ReadEdgeList(bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}

	memCat, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	memEntry, err := memCat.Ingest("g", g, workers, blocks, "")
	if err != nil {
		t.Fatal(err)
	}
	ref := memEntry.Manifest()

	entries := []*Entry{memEntry}
	for _, budget := range []int64{16 << 10, 256 << 10, 0} {
		c, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		e, st, err := c.IngestStream("g", bytes.NewReader(input), StreamOptions{
			Workers: workers, BlocksPer: blocks, MemBudget: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if budget == 16<<10 {
			if st.MergeGenerations < 3 {
				t.Errorf("budget 16k: %d merge generations, want >= 3", st.MergeGenerations)
			}
			if st.SpillWriteBytes == 0 || st.SpillReadBytes == 0 {
				t.Errorf("budget 16k: spill bytes w=%d r=%d, want nonzero",
					st.SpillWriteBytes, st.SpillReadBytes)
			}
		}
		m := e.Manifest()
		if m.Vertices != ref.Vertices || m.Edges != ref.Edges ||
			m.IngestWriteBytes != ref.IngestWriteBytes {
			t.Errorf("budget %d: manifest %dv/%de/%dB, in-memory %dv/%de/%dB",
				budget, m.Vertices, m.Edges, m.IngestWriteBytes,
				ref.Vertices, ref.Edges, ref.IngestWriteBytes)
		}
		if len(m.Files) != len(ref.Files) {
			t.Errorf("budget %d: %d files, in-memory %d", budget, len(m.Files), len(ref.Files))
		}
		for rel, want := range ref.Files {
			if got, ok := m.Files[rel]; !ok || got != want {
				t.Errorf("budget %d: %s = %+v, in-memory %+v", budget, rel, got, want)
			}
		}
		entries = append(entries, e)
	}

	// PageRank must agree bit-exactly across entries for each engine
	// (engines differ among themselves only in floating-point summation
	// order, which the repo compares with tolerance elsewhere).
	for _, engine := range []core.Engine{core.Push, core.BPull, core.Hybrid} {
		var want uint64
		for i, e := range entries {
			res, err := core.Run(e.Graph(), algo.NewPageRank(0.85), core.Config{
				Stores: e, MsgBuf: 200, MaxSteps: 5}, engine)
			if err != nil {
				t.Fatalf("entry %d engine %v: %v", i, engine, err)
			}
			h := valuesHash(res.Values)
			if i == 0 {
				want = h
			} else if h != want {
				t.Fatalf("entry %d engine %v: values hash %x, want %x", i, engine, h, want)
			}
		}
	}
}

// TestIngestStreamCodecIdentical repeats the identity check under a
// real codec: frames differ from raw bytes, but budgets must not.
func TestIngestStreamCodecIdentical(t *testing.T) {
	input := streamInput(t, 200, 3000, 5)
	g, err := graph.ReadEdgeList(bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	memCat, _ := Open(t.TempDir())
	memEntry, err := memCat.Ingest("g", g, 2, 2, "lz")
	if err != nil {
		t.Fatal(err)
	}
	c, _ := Open(t.TempDir())
	e, _, err := c.IngestStream("g", bytes.NewReader(input), StreamOptions{
		Workers: 2, BlocksPer: 2, Codec: "lz", MemBudget: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ref, got := memEntry.Manifest(), e.Manifest()
	if got.Codec != "lz" {
		t.Fatalf("manifest codec %q, want lz", got.Codec)
	}
	for rel, want := range ref.Files {
		if g, ok := got.Files[rel]; !ok || g != want {
			t.Errorf("%s = %+v, in-memory %+v", rel, g, want)
		}
	}
}

// assertNoResidue checks the all-or-nothing publish contract after a
// failed streaming ingest: no entry directory and no staging directory
// survive under the catalog root.
func assertNoResidue(t *testing.T, root, name string) {
	t.Helper()
	if _, err := os.Stat(filepath.Join(root, name)); !os.IsNotExist(err) {
		t.Fatalf("entry directory %s survives a failed ingest (stat err = %v)", name, err)
	}
	if _, err := os.Stat(filepath.Join(root, "."+name+".ingest")); !os.IsNotExist(err) {
		t.Fatalf("staging directory survives a failed ingest (stat err = %v)", err)
	}
}

// TestIngestStreamENOSPCMidSpill injects ENOSPC on the first accounted
// write — with a tiny budget that is a spill-run write, mid external
// sort. The ingest must fail with the typed disk fault and leave no
// trace under the catalog root.
func TestIngestStreamENOSPCMidSpill(t *testing.T) {
	root := t.TempDir()
	fs := diskio.NewFaultFS(diskio.FaultConfig{Seed: 3, WriteENOSPC: 1, MaxFaults: 1})
	diskio.Install(root, fs)
	defer diskio.Uninstall(root)
	c, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.IngestStream("g", bytes.NewReader(streamInput(t, 300, 5000, 9)),
		StreamOptions{Workers: 2, MemBudget: 16 << 10})
	if err == nil {
		t.Fatal("ingest succeeded under ENOSPC")
	}
	if !errors.Is(err, diskio.ErrDiskFault) {
		t.Fatalf("err = %v, want ErrDiskFault", err)
	}
	assertNoResidue(t, root, "g")
	// The catalog must be reusable after the failure.
	diskio.Uninstall(root)
	if _, _, err := c.IngestStream("g", bytes.NewReader(streamInput(t, 300, 5000, 9)),
		StreamOptions{Workers: 2, MemBudget: 16 << 10}); err != nil {
		t.Fatalf("re-ingest after ENOSPC failed: %v", err)
	}
}

// TestIngestStreamPowerCutMidMerge cuts power partway through the
// build's disk ops — in merge territory for a tiny budget — and checks
// the same all-or-nothing outcome with the typed power-cut error.
func TestIngestStreamPowerCutMidMerge(t *testing.T) {
	input := streamInput(t, 300, 5000, 13)
	for _, after := range []int64{5, 25, 80} {
		root := t.TempDir()
		fs := diskio.NewFaultFS(diskio.FaultConfig{Seed: 1, PowerCutAfter: after})
		diskio.Install(root, fs)
		c, err := Open(root)
		if err != nil {
			diskio.Uninstall(root)
			t.Fatal(err)
		}
		_, _, err = c.IngestStream("g", bytes.NewReader(input),
			StreamOptions{Workers: 2, MemBudget: 16 << 10})
		diskio.Uninstall(root)
		if err == nil {
			t.Fatalf("after=%d: ingest survived a power cut", after)
		}
		if !diskio.IsPowerCut(err) {
			t.Fatalf("after=%d: err = %v, want power-cut", after, err)
		}
		assertNoResidue(t, root, "g")
	}
}

// TestIngestStreamBitFlipOnSpillRead flips one bit on a read — with a
// tiny budget the overwhelmingly likely victim is a spill frame during
// the merge. The silent corruption must surface as the codec's typed
// CRC failure, and the failed ingest must leave nothing behind.
func TestIngestStreamBitFlipOnSpillRead(t *testing.T) {
	root := t.TempDir()
	fs := diskio.NewFaultFS(diskio.FaultConfig{Seed: 7, ReadBitFlip: 1, MaxFaults: 1})
	diskio.Install(root, fs)
	defer diskio.Uninstall(root)
	c, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.IngestStream("g", bytes.NewReader(streamInput(t, 300, 5000, 17)),
		StreamOptions{Workers: 2, MemBudget: 16 << 10})
	if err == nil {
		t.Fatal("ingest succeeded over a flipped spill bit")
	}
	if !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("err = %v, want codec.ErrCorrupt", err)
	}
	assertNoResidue(t, root, "g")
}

// TestIngestStreamRejects covers the request-validation surface of the
// streaming path.
func TestIngestStreamRejects(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.IngestStream("g", strings.NewReader(""), StreamOptions{Workers: 2}); !errors.Is(err, ingest.ErrFormat) {
		t.Fatalf("empty stream: err = %v, want ErrFormat", err)
	}
	if _, _, err := c.IngestStream("g", strings.NewReader("0 1\n"), StreamOptions{Workers: 0}); err == nil {
		t.Fatal("0 workers accepted")
	}
	if _, _, err := c.IngestStream(".bad", strings.NewReader("0 1\n"), StreamOptions{Workers: 1}); err == nil {
		t.Fatal("hidden name accepted")
	}
	if _, _, err := c.IngestStream("g", strings.NewReader("0 1\n"), StreamOptions{Workers: 1, Codec: "zstd"}); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, _, err := c.IngestStream("g", strings.NewReader("garbage line\n"), StreamOptions{Workers: 1}); !errors.Is(err, ingest.ErrFormat) {
		t.Fatalf("malformed stream: err = %v, want ErrFormat", err)
	}
	assertNoResidue(t, c.Root(), "g")
}
