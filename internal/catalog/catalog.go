// Package catalog implements the persistent graph catalog of the service
// daemon: a graph is ingested once — its edge list, per-worker adjacency
// runs and VE-BLOCK Eblock files written under a catalog directory with a
// CRC-carrying manifest — and every subsequent job opens those files
// read-only instead of rebuilding them. This is the paper's VE-BLOCK
// amortisation argument made operational: the one-time loading cost of
// Fig. 16 is paid at ingest, and each job's LoadIO shrinks to its private
// vertex-store initialisation (vertex values mutate per job and are never
// shared). An Entry implements core.StoreSource, so handing it to
// core.Config.Stores is the whole integration surface.
package catalog

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"hybridgraph/internal/adjstore"
	"hybridgraph/internal/codec"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/ingest"
	"hybridgraph/internal/veblock"
)

// ManifestVersion is bumped whenever the on-disk layout changes shape;
// entries with a different version are rejected rather than misread.
const ManifestVersion = 1

// ManifestName is the per-graph manifest file name.
const ManifestName = "manifest.json"

// FileSum records one catalog file's size and IEEE CRC32, verified before
// an entry is served to jobs.
type FileSum struct {
	Size  int64  `json:"size"`
	CRC32 uint32 `json:"crc32"`
}

// Manifest describes one ingested graph: its dimensions, the partition
// geometry its stores were built for (authoritative for every job that
// reuses them), the sequential-write bytes ingestion paid, and a checksum
// per file. It is written last during ingest, so a manifest's presence
// implies the files beside it are complete.
type Manifest struct {
	Name      string `json:"name"`
	Version   int    `json:"version"`
	Vertices  int    `json:"vertices"`
	Edges     int64  `json:"edges"`
	Workers   int    `json:"workers"`
	BlocksPer []int  `json:"blocks_per"`
	// IngestWriteBytes is the layout-build cost paid once at ingest (the
	// bytes every catalog-hit job avoids), always in logical bytes.
	IngestWriteBytes int64              `json:"ingest_write_bytes"`
	Files            map[string]FileSum `json:"files"`
	// Codec names the block codec the adjacency and VE-BLOCK files were
	// encoded with at ingest (empty means "none", the raw layout). Jobs
	// must open the entry with the same codec; the mismatch is a typed
	// configuration error, not a silent re-encode.
	Codec string `json:"codec,omitempty"`
}

// Catalog is a directory of ingested graphs. Safe for concurrent use;
// loaded entries are cached and shared (they are immutable).
type Catalog struct {
	root    string
	mu      sync.Mutex
	entries map[string]*Entry
}

// Open opens (creating if needed) a catalog rooted at dir.
func Open(dir string) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Catalog{root: dir, entries: make(map[string]*Entry)}, nil
}

// Root reports the catalog directory.
func (c *Catalog) Root() string { return c.root }

// validName rejects names that would escape the catalog directory or
// collide with ingest's temporary directories.
func validName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("catalog: empty or oversized graph name")
	}
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("catalog: graph name %q may not start with '.'", name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return fmt.Errorf("catalog: graph name %q contains %q (want [A-Za-z0-9._-])", name, r)
		}
	}
	return nil
}

// Ingest builds graph g's catalog entry under the given name: the edge
// list, one adjacency file and one VE-BLOCK file per worker, and the
// manifest. The build happens in a hidden temporary directory that is
// renamed into place only after the manifest is written, so a crashed
// ingest never leaves a half-entry a later open could trust. blocksPer
// fixes each worker's Vblock count (>= 1); jobs reusing the entry adopt
// this geometry. codecName selects the block codec the stores are encoded
// with ("" or "none" for the raw layout); it is recorded in the manifest
// and every job opening the entry must declare the same codec.
func (c *Catalog) Ingest(name string, g *graph.Graph, workers, blocksPer int, codecName string) (*Entry, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	if g == nil || g.NumVertices <= 0 {
		return nil, fmt.Errorf("catalog: ingest of empty graph %q", name)
	}
	if workers <= 0 || workers > g.NumVertices {
		return nil, fmt.Errorf("catalog: %d workers for %d vertices", workers, g.NumVertices)
	}
	e, _, err := c.ingestWith(name, codecName, workers, blocksPer,
		func(tmp string, cdc codec.Codec, ct *diskio.Counter) (*ingest.Stats, error) {
			return ingest.BuildFromGraph(ingest.Options{
				Dir: tmp, Workers: workers, BlocksPer: blocksPer,
				Codec: cdc, LayoutCT: ct}, g)
		})
	return e, err
}

// StreamOptions configures IngestStream. Workers is required; BlocksPer
// defaults to 1, Codec to "none", and MemBudget <= 0 means unlimited
// (the whole sort happens in memory, nothing spills).
type StreamOptions struct {
	Workers   int
	BlocksPer int
	Codec     string
	MemBudget int64
}

// IngestStream builds a catalog entry directly from an edge-list stream
// — text, binary, or gzip-wrapped, sniffed by magic bytes — without
// materialising the graph: the streaming builder external-sorts the
// edges under o.MemBudget and writes the entry layout shard by shard.
// The published entry is bit-identical to what Ingest would produce
// from the parsed graph, whatever the budget. The same staged-rename
// publishing protocol applies: a failed or interrupted stream leaves no
// trace under the catalog root except a hidden temp directory that the
// next attempt clears.
func (c *Catalog) IngestStream(name string, r io.Reader, o StreamOptions) (*Entry, *ingest.Stats, error) {
	if err := validName(name); err != nil {
		return nil, nil, err
	}
	if o.Workers <= 0 {
		return nil, nil, fmt.Errorf("catalog: %d workers", o.Workers)
	}
	return c.ingestWith(name, o.Codec, o.Workers, o.BlocksPer,
		func(tmp string, cdc codec.Codec, ct *diskio.Counter) (*ingest.Stats, error) {
			return ingest.BuildFromStream(ingest.Options{
				Dir: tmp, Workers: o.Workers, BlocksPer: o.BlocksPer,
				Codec: cdc, MemBudget: o.MemBudget, LayoutCT: ct}, r)
		})
}

// ingestWith runs one build function against a staged hidden directory
// and publishes the result: build, fsync + checksum every file, write
// the manifest, rename into place. Every error path removes the staging
// directory, so a failed ingest is all-or-nothing.
func (c *Catalog) ingestWith(name, codecName string, workers, blocksPer int,
	build func(tmp string, cdc codec.Codec, ct *diskio.Counter) (*ingest.Stats, error)) (*Entry, *ingest.Stats, error) {
	cdc, err := codec.Lookup(codecName)
	if err != nil {
		return nil, nil, fmt.Errorf("catalog: ingest of %q: %w", name, err)
	}
	if blocksPer <= 0 {
		blocksPer = 1
	}
	final := filepath.Join(c.root, name)
	if _, err := os.Stat(final); err == nil {
		return nil, nil, fmt.Errorf("catalog: graph %q already ingested", name)
	}
	tmp := filepath.Join(c.root, "."+name+".ingest")
	if err := os.RemoveAll(tmp); err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return nil, nil, err
	}
	ct := &diskio.Counter{}
	st, err := build(tmp, cdc, ct)
	if err != nil {
		os.RemoveAll(tmp)
		return nil, nil, err
	}
	m := &Manifest{Name: name, Version: ManifestVersion,
		Vertices: st.Vertices, Edges: st.Edges,
		Workers: workers, Files: make(map[string]FileSum),
		IngestWriteBytes: ct.Bytes(diskio.SeqWrite)}
	if !codec.IsNone(cdc) {
		m.Codec = cdc.Name()
	}
	m.BlocksPer = make([]int, workers)
	for i := range m.BlocksPer {
		m.BlocksPer[i] = blocksPer
	}
	// Fsync then checksum everything built so far (the manifest itself is
	// excluded). The sync is the durability half of the ingest contract:
	// the manifest asserts these exact bytes, so they must be on the
	// platter before the manifest — let alone the publishing rename —
	// exists. A power cut after Ingest returns must find a verifiable
	// entry (see DESIGN.md, "Durability contract").
	err = filepath.Walk(tmp, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(tmp, path)
		if err != nil {
			return err
		}
		if err := diskio.SyncFile(path, ct); err != nil {
			return err
		}
		sum, err := checksumFile(path)
		if err != nil {
			return err
		}
		m.Files[filepath.ToSlash(rel)] = sum
		return nil
	})
	if err != nil {
		os.RemoveAll(tmp)
		return nil, nil, err
	}
	if err := writeManifest(filepath.Join(tmp, ManifestName), m); err != nil {
		os.RemoveAll(tmp)
		return nil, nil, err
	}
	// The publishing rename goes through diskio so the storage-fault layer
	// can model it (a simulated power cut on the rename leaves the entry
	// fully absent, never half-published).
	if err := diskio.Rename(tmp, final); err != nil {
		os.RemoveAll(tmp)
		return nil, nil, err
	}
	e, err := c.Entry(name)
	if err != nil {
		return nil, nil, err
	}
	return e, st, nil
}

func checksumFile(path string) (FileSum, error) {
	f, err := os.Open(path)
	if err != nil {
		return FileSum{}, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	n, err := io.Copy(h, f)
	if err != nil {
		return FileSum{}, err
	}
	return FileSum{Size: n, CRC32: h.Sum32()}, nil
}

// writeManifest publishes the manifest via write-temp/fsync/rename
// (diskio.WriteFileSync), so a crash never leaves a torn manifest: the
// entry either has its complete manifest or none at all.
func writeManifest(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return diskio.WriteFileSync(path, data, &diskio.Counter{}, diskio.SeqWrite)
}

// Entry loads (or returns the cached) entry for name, verifying every
// catalog file against the manifest's size and CRC before serving it.
func (c *Catalog) Entry(name string) (*Entry, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if e, ok := c.entries[name]; ok {
		c.mu.Unlock()
		return e, nil
	}
	c.mu.Unlock()
	e, err := loadEntry(filepath.Join(c.root, name))
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prior, ok := c.entries[name]; ok {
		return prior, nil
	}
	c.entries[name] = e
	return e, nil
}

// List reports the manifests of every ingested graph, sorted by name.
// Entries whose manifest is unreadable are skipped (a concurrent ingest's
// temporary directory, or damage Entry would reject anyway).
func (c *Catalog) List() ([]*Manifest, error) {
	des, err := os.ReadDir(c.root)
	if err != nil {
		return nil, err
	}
	var out []*Manifest
	for _, de := range des {
		if !de.IsDir() || strings.HasPrefix(de.Name(), ".") {
			continue
		}
		m, err := readManifest(filepath.Join(c.root, de.Name(), ManifestName))
		if err != nil {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Remove deletes an ingested graph. Jobs already holding the entry keep
// their open file handles (POSIX unlink semantics); new Entry calls fail.
func (c *Catalog) Remove(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.entries, name)
	c.mu.Unlock()
	return os.RemoveAll(filepath.Join(c.root, name))
}

func readManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("catalog: %s: %w", path, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("catalog: %s: manifest version %d, want %d", path, m.Version, ManifestVersion)
	}
	return m, nil
}

// Entry is one ingested graph, loaded and verified: the staged graph plus
// the geometry and paths of its pre-built stores. It implements
// core.StoreSource (structurally — catalog does not import core), is
// immutable, and is shared by every job over the graph; each OpenAdj /
// OpenVE call returns an independent read-only handle charged to the
// calling job's counter.
type Entry struct {
	dir      string
	manifest *Manifest
	g        *graph.Graph
	parts    []graph.Partition
	cdc      codec.Codec
}

func loadEntry(dir string) (*Entry, error) {
	m, err := readManifest(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	for rel, want := range m.Files {
		got, err := checksumFile(filepath.Join(dir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, fmt.Errorf("catalog: %s: %w", m.Name, err)
		}
		if got != want {
			return nil, fmt.Errorf("catalog: %s: %s failed verification (size %d crc %08x, manifest says size %d crc %08x)",
				m.Name, rel, got.Size, got.CRC32, want.Size, want.CRC32)
		}
	}
	g, err := graph.LoadEdgeList(filepath.Join(dir, "graph.el"))
	if err != nil {
		return nil, err
	}
	if g.NumVertices != m.Vertices || int64(g.NumEdges()) != m.Edges {
		return nil, fmt.Errorf("catalog: %s: edge list is %dv/%de, manifest says %dv/%de",
			m.Name, g.NumVertices, g.NumEdges(), m.Vertices, m.Edges)
	}
	if len(m.BlocksPer) != m.Workers || m.Workers <= 0 {
		return nil, fmt.Errorf("catalog: %s: inconsistent geometry (%d workers, %d block counts)",
			m.Name, m.Workers, len(m.BlocksPer))
	}
	cdc, err := codec.Lookup(m.Codec)
	if err != nil {
		return nil, fmt.Errorf("catalog: %s: %w", m.Name, err)
	}
	return &Entry{dir: dir, manifest: m, g: g, cdc: cdc,
		parts: graph.RangePartition(g.NumVertices, m.Workers)}, nil
}

// Graph returns the staged graph jobs should run over.
func (e *Entry) Graph() *graph.Graph { return e.g }

// Manifest returns the entry's manifest (treat as read-only).
func (e *Entry) Manifest() *Manifest { return e.manifest }

// GraphName implements core.StoreSource.
func (e *Entry) GraphName() string { return e.manifest.Name }

// Workers implements core.StoreSource.
func (e *Entry) Workers() int { return e.manifest.Workers }

// BlocksPer implements core.StoreSource.
func (e *Entry) BlocksPer() []int {
	return append([]int(nil), e.manifest.BlocksPer...)
}

// Codec implements core.StoreSource: the canonical name of the block
// codec the entry's store files were encoded with at ingest ("none" for
// the raw layout). Jobs must run with a matching Config.Codec.
func (e *Entry) Codec() string {
	if codec.IsNone(e.cdc) {
		return "none"
	}
	return e.cdc.Name()
}

// OpenAdj implements core.StoreSource.
func (e *Entry) OpenAdj(w int, ct *diskio.Counter, g *graph.Graph, part graph.Partition) (*adjstore.Store, error) {
	if w < 0 || w >= e.manifest.Workers {
		return nil, fmt.Errorf("catalog: %s: no worker %d", e.manifest.Name, w)
	}
	if part != e.parts[w] {
		return nil, fmt.Errorf("catalog: %s: worker %d partition [%d,%d) does not match ingested [%d,%d)",
			e.manifest.Name, w, part.Lo, part.Hi, e.parts[w].Lo, e.parts[w].Hi)
	}
	return adjstore.Open(filepath.Join(e.dir, fmt.Sprintf("w%d", w), "adj.dat"), ct, g, part, e.cdc)
}

// OpenVE implements core.StoreSource.
func (e *Entry) OpenVE(w int, ct *diskio.Counter, g *graph.Graph, layout *veblock.Layout) (*veblock.Store, error) {
	if w < 0 || w >= e.manifest.Workers {
		return nil, fmt.Errorf("catalog: %s: no worker %d", e.manifest.Name, w)
	}
	return veblock.Open(filepath.Join(e.dir, fmt.Sprintf("w%d", w), "veblock.dat"), ct, g, layout, w, e.cdc)
}
