package diskio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestFaultENOSPCTyped(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(FaultConfig{Seed: 1, WriteENOSPC: 1})
	Install(dir, fs)
	defer Uninstall(dir)

	ct := &Counter{}
	if _, err := Create(filepath.Join(dir, "a"), ct); err == nil {
		t.Fatal("want ENOSPC on create")
	} else {
		var de *Error
		if !errors.As(err, &de) || de.Kind != KindENOSPC {
			t.Fatalf("want KindENOSPC, got %v", err)
		}
		if !errors.Is(err, ErrDiskFault) {
			t.Fatal("injected fault must match ErrDiskFault")
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatal("ENOSPC must unwrap to syscall.ENOSPC")
		}
		if de.Path == "" || de.Op != "create" {
			t.Fatalf("error not annotated: %+v", de)
		}
	}
	if fs.Stats().ENOSPC == 0 {
		t.Fatal("stats did not record the fault")
	}
}

func TestFaultTornWriteIsShortAndTyped(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(FaultConfig{Seed: 7, TornWrite: 1})
	Install(dir, fs)
	defer Uninstall(dir)

	ct := &Counter{}
	f, err := Create(filepath.Join(dir, "a"), ct)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := bytes.Repeat([]byte{0xAB}, 64)
	n, err := f.WriteAtClass(payload, 0, SeqWrite)
	var de *Error
	if !errors.As(err, &de) || de.Kind != KindTornWrite {
		t.Fatalf("want KindTornWrite, got %v", err)
	}
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatal("torn write must unwrap to io.ErrShortWrite")
	}
	if n >= len(payload) {
		t.Fatalf("torn write wrote all %d bytes", n)
	}
	if de.Class != SeqWrite.String() {
		t.Fatalf("want class annotation %q, got %q", SeqWrite, de.Class)
	}
	sz, _ := f.Size()
	if sz != int64(n) {
		t.Fatalf("on-disk size %d != reported short count %d", sz, n)
	}
}

func TestPowerCutDiscardsUnsyncedKeepsSynced(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(FaultConfig{Seed: 1, PowerCutAfter: 1 << 30})
	Install(dir, fs)
	defer Uninstall(dir)

	ct := &Counter{}
	path := filepath.Join(dir, "a")
	f, err := Create(path, ct)
	if err != nil {
		t.Fatal(err)
	}
	durable := []byte("durable-data")
	if _, err := f.WriteAtClass(durable, 0, SeqWrite); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Overwrite part of the synced data and append a tail — neither synced.
	if _, err := f.WriteAtClass([]byte("XXX"), 0, RandWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAtClass([]byte("volatile-tail"), int64(len(durable)), SeqWrite); err != nil {
		t.Fatal(err)
	}

	fs.mu.Lock()
	fs.powerCutLocked()
	fs.mu.Unlock()

	if _, err := f.WriteAtClass([]byte("x"), 0, SeqWrite); !IsPowerCut(err) {
		t.Fatalf("post-cut write must fail with power cut, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, durable) {
		t.Fatalf("after power cut want %q, got %q", durable, got)
	}
	if !fs.Stats().PowerCut {
		t.Fatal("stats did not record the cut")
	}
}

func TestPowerCutAfterNthMutation(t *testing.T) {
	dir := t.TempDir()
	// Op 1 = create, op 2 = first write, op 3 = second write (cut fires here).
	fs := NewFaultFS(FaultConfig{Seed: 1, PowerCutAfter: 3})
	Install(dir, fs)
	defer Uninstall(dir)

	ct := &Counter{}
	f, err := Create(filepath.Join(dir, "a"), ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAtClass([]byte("one"), 0, SeqWrite); err != nil {
		t.Fatalf("write before the cut failed: %v", err)
	}
	if _, err := f.WriteAtClass([]byte("two"), 3, SeqWrite); !IsPowerCut(err) {
		t.Fatalf("write at the cut point must fail, got %v", err)
	}
}

func TestBitFlipIsSilentButObserved(t *testing.T) {
	dir := t.TempDir()
	ct := &Counter{}
	path := filepath.Join(dir, "a")
	clean, err := Create(path, ct)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x55}, 128)
	if _, err := clean.WriteAtClass(payload, 0, SeqWrite); err != nil {
		t.Fatal(err)
	}
	clean.Close()

	fs := NewFaultFS(FaultConfig{Seed: 3, ReadBitFlip: 1})
	var observed []*Error
	fs.OnFault = func(e *Error) { observed = append(observed, e) }
	Install(dir, fs)
	defer Uninstall(dir)

	f, err := OpenRead(path, ct)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := make([]byte, len(payload))
	if _, err := f.ReadAtClass(got, 0, SeqRead); err != nil {
		t.Fatalf("bit flip must be silent, got %v", err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("read returned uncorrupted bytes under ReadBitFlip=1")
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^payload[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("want exactly 1 flipped bit, got %d", diff)
	}
	if len(observed) != 1 || observed[0].Kind != KindBitFlip {
		t.Fatalf("OnFault not notified of the flip: %v", observed)
	}
}

func TestSyncFailKeepsDataVolatile(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(FaultConfig{Seed: 1, SyncFail: 1, PowerCutAfter: 1 << 30})
	Install(dir, fs)
	defer Uninstall(dir)

	ct := &Counter{}
	path := filepath.Join(dir, "a")
	f, err := Create(path, ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAtClass([]byte("data"), 0, SeqWrite); err != nil {
		t.Fatal(err)
	}
	err = f.Sync()
	var de *Error
	if !errors.As(err, &de) || de.Kind != KindSyncFail {
		t.Fatalf("want KindSyncFail, got %v", err)
	}
	fs.mu.Lock()
	fs.powerCutLocked()
	fs.mu.Unlock()
	got, _ := os.ReadFile(path)
	if len(got) != 0 {
		t.Fatalf("data behind a failed fsync survived the cut: %q", got)
	}
}

func TestRenameCarriesVolatility(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(FaultConfig{Seed: 1, PowerCutAfter: 1 << 30})
	Install(dir, fs)
	defer Uninstall(dir)

	ct := &Counter{}
	tmp, final := filepath.Join(dir, "a.tmp"), filepath.Join(dir, "a")
	f, err := Create(tmp, ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAtClass([]byte("not-synced"), 0, SeqWrite); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	fs.powerCutLocked()
	fs.mu.Unlock()
	// The rename (metadata) is durable; the never-synced data is not:
	// the classic torn tmp+rename commit without an fsync.
	got, err := os.ReadFile(final)
	if err != nil {
		t.Fatalf("renamed file lost entirely: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("unsynced bytes survived rename + power cut: %q", got)
	}
}

func TestWriteFileSyncSurvivesPowerCut(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(FaultConfig{Seed: 1, PowerCutAfter: 1 << 30})
	Install(dir, fs)
	defer Uninstall(dir)

	ct := &Counter{}
	path := filepath.Join(dir, "marker")
	if err := WriteFileSync(path, []byte("commit-42"), ct, SeqWrite); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	fs.powerCutLocked()
	fs.mu.Unlock()
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "commit-42" {
		t.Fatalf("synced atomic write did not survive: %q, %v", got, err)
	}
}

func TestMaxFaultsCapsInjection(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(FaultConfig{Seed: 1, WriteENOSPC: 1, MaxFaults: 2})
	Install(dir, fs)
	defer Uninstall(dir)

	ct := &Counter{}
	fails := 0
	for i := 0; i < 5; i++ {
		f, err := Create(filepath.Join(dir, "a"), ct)
		if err != nil {
			fails++
			continue
		}
		if _, err := f.WriteAtClass([]byte("x"), 0, SeqWrite); err != nil {
			fails++
		}
		f.Close()
	}
	if fails != 2 {
		t.Fatalf("MaxFaults=2 but %d ops failed", fails)
	}
}

func TestUninstalledPathsUntouched(t *testing.T) {
	faulty, clean := t.TempDir(), t.TempDir()
	fs := NewFaultFS(FaultConfig{Seed: 1, WriteENOSPC: 1})
	Install(faulty, fs)
	defer Uninstall(faulty)

	ct := &Counter{}
	f, err := Create(filepath.Join(clean, "a"), ct)
	if err != nil {
		t.Fatalf("path outside the injector root failed: %v", err)
	}
	if _, err := f.WriteAtClass([]byte("x"), 0, SeqWrite); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestSeededDeterminism(t *testing.T) {
	run := func() []string {
		dir := t.TempDir()
		fs := NewFaultFS(FaultConfig{Seed: 99, WriteENOSPC: 0.3, TornWrite: 0.3})
		Install(dir, fs)
		defer Uninstall(dir)
		ct := &Counter{}
		var outcomes []string
		f, err := Create(filepath.Join(dir, "a"), ct)
		if err != nil {
			return []string{"create-failed"}
		}
		for i := 0; i < 40; i++ {
			_, err := f.WriteAtClass([]byte("0123456789"), int64(i*10), SeqWrite)
			switch {
			case err == nil:
				outcomes = append(outcomes, "ok")
			default:
				var de *Error
				errors.As(err, &de)
				outcomes = append(outcomes, string(de.Kind))
			}
		}
		f.Close()
		return outcomes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged: %s vs %s", i, a[i], b[i])
		}
	}
}
