package diskio

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestSequentialVersusRandomClassification(t *testing.T) {
	var ct Counter
	f, err := Create(filepath.Join(t.TempDir(), "x"), &ct)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	buf := make([]byte, 100)
	// Two back-to-back writes: both sequential.
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(buf, 100); err != nil {
		t.Fatal(err)
	}
	if got := ct.Bytes(SeqWrite); got != 200 {
		t.Fatalf("SeqWrite = %d, want 200", got)
	}
	// A jump back: random.
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if got := ct.Bytes(RandWrite); got != 100 {
		t.Fatalf("RandWrite = %d, want 100", got)
	}
	// Reading from the middle after a write elsewhere: random, then the
	// continuation is sequential.
	if _, err := f.ReadAt(buf[:50], 10); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(buf[:50], 60); err != nil {
		t.Fatal(err)
	}
	if got := ct.Bytes(RandRead); got != 50 {
		t.Fatalf("RandRead = %d, want 50", got)
	}
	if got := ct.Bytes(SeqRead); got != 50 {
		t.Fatalf("SeqRead = %d, want 50", got)
	}
}

func TestExplicitClassOverride(t *testing.T) {
	var ct Counter
	f, err := Create(filepath.Join(t.TempDir(), "x"), &ct)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 64)
	if _, err := f.WriteAtClass(buf, 0, RandWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAtClass(buf, 64, RandWrite); err != nil {
		t.Fatal(err)
	}
	if got := ct.Bytes(RandWrite); got != 128 {
		t.Fatalf("RandWrite = %d, want 128 (explicit class)", got)
	}
	if _, err := f.ReadAtClass(buf, 0, SeqRead); err != nil {
		t.Fatal(err)
	}
	if got := ct.Bytes(SeqRead); got != 64 {
		t.Fatalf("SeqRead = %d, want 64", got)
	}
}

func TestSnapshotArithmetic(t *testing.T) {
	var ct Counter
	ct.Add(RandRead, 10)
	a := ct.Snapshot()
	ct.Add(RandRead, 5)
	ct.Add(SeqWrite, 7)
	b := ct.Snapshot()
	d := b.Sub(a)
	if d.Bytes[RandRead] != 5 || d.Bytes[SeqWrite] != 7 {
		t.Fatalf("diff = %v", d)
	}
	s := a.Add(d)
	if s.Bytes[RandRead] != b.Bytes[RandRead] {
		t.Fatalf("add/sub not inverse: %v vs %v", s, b)
	}
	if b.Total() != 22 {
		t.Fatalf("Total = %d, want 22", b.Total())
	}
}

func TestSnapshotAddSubProperty(t *testing.T) {
	f := func(a, b [4]int32) bool {
		var x, y Snapshot
		for i := 0; i < 4; i++ {
			x.Bytes[i] = int64(a[i])
			y.Bytes[i] = int64(b[i])
		}
		return x.Add(y).Sub(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterReset(t *testing.T) {
	var ct Counter
	ct.Add(SeqRead, 100)
	ct.Reset()
	if ct.Total() != 0 || ct.Ops(SeqRead) != 0 {
		t.Fatal("Reset did not zero the counter")
	}
}

func TestProfileSeconds(t *testing.T) {
	var s Snapshot
	s.Dev[RandRead] = 1177 * 1024 // device bytes drive the cost model
	got := HDDLocal.DiskSeconds(s)
	want := float64(s.Dev[RandRead]) / (1.177 * (1 << 20))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("DiskSeconds = %v, want %v", got, want)
	}
	if n := HDDLocal.NetSeconds(112 << 20); math.Abs(n-1.0) > 1e-9 {
		t.Fatalf("NetSeconds(112MB) = %v, want 1.0", n)
	}
}

func TestTable3Profiles(t *testing.T) {
	// Table 3 values, verbatim from the paper.
	if HDDLocal.SRR != 1.177 || HDDLocal.SRW != 1.182 || HDDLocal.SSR != 2.358 || HDDLocal.SNet != 112 {
		t.Fatalf("HDDLocal = %+v, does not match Table 3", HDDLocal)
	}
	if SSDAmazon.SRR != 18.177 || SSDAmazon.SRW != 18.194 || SSDAmazon.SSR != 18.270 || SSDAmazon.SNet != 116 {
		t.Fatalf("SSDAmazon = %+v, does not match Table 3", SSDAmazon)
	}
	// SSDs have near-uniform throughput across access classes; HDDs pay
	// ~2x for random access. These relations drive Fig. 9 and Fig. 14a.
	if !(SSDAmazon.SRR/SSDAmazon.SSR > 0.9) {
		t.Fatal("SSD random/sequential ratio should be near 1")
	}
	if !(HDDLocal.SRR/HDDLocal.SSR < 0.6) {
		t.Fatal("HDD random reads should be much slower than sequential")
	}
}

func TestOpenExisting(t *testing.T) {
	var ct Counter
	path := filepath.Join(t.TempDir(), "x")
	f, err := Create(path, &ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g, err := Open(path, &ct)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	sz, err := g.Size()
	if err != nil || sz != 5 {
		t.Fatalf("Size = %d, %v; want 5", sz, err)
	}
	buf := make([]byte, 5)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		RandRead: "rand-read", RandWrite: "rand-write",
		SeqRead: "seq-read", SeqWrite: "seq-write",
	} {
		if c.String() != want {
			t.Fatalf("Class(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}
