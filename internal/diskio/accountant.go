package diskio

import "sync"

// Accountant replays File's exact charging state machine — sequential
// position, last-touched page, per-page device amplification for random
// classes, the zero-byte sync op — against a Counter without performing
// any real I/O. Compressed stores use it to keep the *logical* byte
// dimension byte-identical to an uncompressed run: every logical access
// is charged here exactly as the raw File would have charged it, while
// the store's real frame I/O goes through an ordinary File opened on
// the counter's physical twin. Charges are applied with the raw
// (non-mirroring) tally update, so they never leak into the physical
// dimension.
type Accountant struct {
	mu       sync.Mutex
	ct       *Counter
	seqPos   int64
	lastPage int64
}

// NewAccountant starts a charge machine in the state of a freshly
// created or opened File.
func NewAccountant(ct *Counter) *Accountant {
	return &Accountant{ct: ct, lastPage: -1}
}

// SetCounter retargets accounting, mirroring File.SetCounter.
func (a *Accountant) SetCounter(ct *Counter) {
	a.mu.Lock()
	a.ct = ct
	a.mu.Unlock()
}

// devCharge mirrors File.devCharge. Callers hold a.mu.
func (a *Accountant) devCharge(off, n int64, c Class) int64 {
	if n <= 0 {
		return 0
	}
	first := off / PageSize
	last := (off + n - 1) / PageSize
	if c == SeqRead || c == SeqWrite {
		a.lastPage = last
		return n
	}
	var dev int64
	for p := first; p <= last; p++ {
		if p != a.lastPage {
			dev += PageSize
		}
		a.lastPage = p
	}
	return dev
}

// ReadAtClass charges an n-byte read of class c at off, exactly as
// File.ReadAtClass would for a successful full read.
func (a *Accountant) ReadAtClass(n, off int64, c Class) {
	a.charge(n, off, c)
}

// WriteAtClass charges an n-byte write of class c at off, exactly as
// File.WriteAtClass would for a successful full write.
func (a *Accountant) WriteAtClass(n, off int64, c Class) {
	a.charge(n, off, c)
}

func (a *Accountant) charge(n, off int64, c Class) {
	a.mu.Lock()
	a.seqPos = off + n
	dev := a.devCharge(off, n, c)
	ct := a.ct
	a.mu.Unlock()
	ct.addDev(c, n, dev)
}

// Sync charges the zero-byte sequential-write op File.Sync records.
func (a *Accountant) Sync() {
	a.mu.Lock()
	ct := a.ct
	a.mu.Unlock()
	ct.addDev(SeqWrite, 0, 0)
}

// WriteFileSyncDual is WriteFileSync for a compressed file: phys is
// what reaches the disk (written, fsynced and renamed through the fault
// layer, charged to ct's physical twin), while ct receives the logical
// charges the uncompressed WriteFileSync would have made for a
// logicalLen-byte payload — one class-c write plus the sync op.
func WriteFileSyncDual(path string, phys []byte, logicalLen int64, ct *Counter, c Class) error {
	if err := WriteFileSync(path, phys, PhysFor(ct), c); err != nil {
		return err
	}
	a := NewAccountant(ct)
	a.WriteAtClass(logicalLen, 0, c)
	a.Sync()
	return nil
}
