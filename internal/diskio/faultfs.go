// Storage-fault injection. A FaultFS sits underneath File and injects
// the failure modes disk-resident recovery state must survive: ENOSPC,
// short (torn) writes, failed fsync, bit-flip read corruption, and a
// simulated power cut that discards every byte written since the last
// successful fsync. The model is write-through with an undo log: data
// reaches the real file immediately (so fault-free runs are unchanged),
// but each unsynced write records the bytes it overwrote, and a power
// cut rolls them back and truncates the file to its last synced size.
// Metadata operations (create, rename, remove) are modelled as
// journaled and therefore durable; file *data* is durable only after
// Sync — the strictest model, and exactly the one that exposes a commit
// marker written before its snapshots were fsynced.
//
// Injectors are registered per directory tree (Install/Uninstall), so
// existing call sites are untouched: Create/Open consult the registry
// and route through the injector when their path falls under an
// installed root. All decisions draw from a seeded PRNG, so a serial
// operation sequence replays identically; under concurrent workers the
// schedule is pseudorandom but still fixed by the seed.
package diskio

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
)

// ErrDiskFault is the sentinel every *injected* fault matches via
// errors.Is. Real I/O errors wrapped for annotation (KindIO) do not.
var ErrDiskFault = errors.New("injected disk fault")

// Kind classifies a fault-layer error.
type Kind string

const (
	KindENOSPC    Kind = "enospc"     // write refused: no space on device
	KindTornWrite Kind = "torn-write" // only a prefix of the write reached disk
	KindSyncFail  Kind = "sync-fail"  // fsync failed; data remains volatile
	KindBitFlip   Kind = "bit-flip"   // a read returned silently corrupted bytes
	KindPowerCut  Kind = "power-cut"  // the simulated machine lost power
	KindIO        Kind = "io"         // a real error, wrapped for path/class context
)

// Error is the typed, path-and-class-annotated error every durability
// subsystem surfaces on a storage failure: which operation, on which
// file, in which access class, failed and how.
type Error struct {
	Op    string // "create", "open", "read", "write", "sync", "close", "rename"
	Path  string
	Class string // access-class annotation ("rand-write", …); empty when not applicable
	Kind  Kind
	Err   error // underlying cause (syscall.ENOSPC, io.ErrShortWrite, real os error, …)
}

// Error implements the error interface.
func (e *Error) Error() string {
	s := fmt.Sprintf("diskio: %s %s", e.Op, e.Path)
	if e.Class != "" {
		s += " [" + e.Class + "]"
	}
	s += ": " + string(e.Kind)
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Is matches ErrDiskFault for injected kinds, so callers distinguish
// "the fault layer did this" from annotated real failures.
func (e *Error) Is(target error) bool {
	return target == ErrDiskFault && e.Kind != KindIO
}

// IsPowerCut reports whether err is (or wraps) a simulated power cut —
// the one storage fault no amount of in-process retrying survives.
func IsPowerCut(err error) bool {
	var de *Error
	return errors.As(err, &de) && de.Kind == KindPowerCut
}

// FaultConfig parameterises one FaultFS. Probabilities are per
// intercepted operation; zero disables that fault. PowerCutAfter > 0
// cuts power on the Nth mutating operation (create/write/sync/rename),
// which makes single-threaded torture tests exactly reproducible.
type FaultConfig struct {
	Seed          int64   `json:"seed"`
	WriteENOSPC   float64 `json:"write_enospc,omitempty"`    // P(ENOSPC) per create/write
	TornWrite     float64 `json:"torn_write,omitempty"`      // P(short write) per write
	SyncFail      float64 `json:"sync_fail,omitempty"`       // P(failure) per fsync
	ReadBitFlip   float64 `json:"read_bit_flip,omitempty"`   // P(one flipped bit) per read
	PowerCutAfter int64   `json:"power_cut_after,omitempty"` // cut on the Nth mutating op; 0 = never
	MaxFaults     int     `json:"max_faults,omitempty"`      // cap on probabilistic faults; 0 = unlimited
}

// Enabled reports whether the config injects anything at all.
func (c FaultConfig) Enabled() bool {
	return c.WriteENOSPC > 0 || c.TornWrite > 0 || c.SyncFail > 0 ||
		c.ReadBitFlip > 0 || c.PowerCutAfter > 0
}

// FaultStats summarises what an injector actually did.
type FaultStats struct {
	ENOSPC   int   `json:"enospc"`
	Torn     int   `json:"torn"`
	SyncFail int   `json:"sync_fail"`
	BitFlip  int   `json:"bit_flip"`
	PowerCut bool  `json:"power_cut"`
	Ops      int64 `json:"ops"` // mutating operations intercepted
}

// Total reports the number of injected faults (the power cut counts as
// one).
func (s FaultStats) Total() int {
	n := s.ENOSPC + s.Torn + s.SyncFail + s.BitFlip
	if s.PowerCut {
		n++
	}
	return n
}

type undoRec struct {
	off int64
	old []byte
}

// shadow is the volatile (unsynced) state of one file: the size fsync
// last made durable and the undo records that revert unsynced writes.
type shadow struct {
	syncedSize int64
	undo       []undoRec
}

// FaultFS injects storage faults for every File whose path falls under
// the directory it is installed on. Safe for concurrent use; all
// decisions and undo bookkeeping are serialised on one mutex, which is
// fine because injectors only exist in fault campaigns.
type FaultFS struct {
	// OnFault, when set before Install, observes every injected fault
	// (including silent bit flips, which return no error to the reader).
	// Called without internal locks held; must not re-enter this FaultFS's
	// files.
	OnFault func(*Error)

	cfg   FaultConfig
	mu    sync.Mutex
	rng   *rand.Rand
	ops   int64
	n     int // probabilistic faults injected so far
	cut   bool
	stats FaultStats
	files map[string]*shadow
}

// NewFaultFS builds an injector from cfg, seeding its dice.
func NewFaultFS(cfg FaultConfig) *FaultFS {
	return &FaultFS{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		files: make(map[string]*shadow),
	}
}

// Stats reports what the injector has done so far.
func (fs *FaultFS) Stats() FaultStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s := fs.stats
	s.Ops = fs.ops
	return s
}

// Cut reports whether the simulated power cut has fired.
func (fs *FaultFS) Cut() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cut
}

// PowerCut cuts power right now: every unsynced byte is reverted, every
// file is truncated to its last synced size, and every subsequent
// operation through this injector fails with KindPowerCut. For
// harnesses that cut at a chosen moment (e.g. "the instant the ingest
// was acknowledged") rather than at the Nth mutating op.
func (fs *FaultFS) PowerCut() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.cut {
		fs.powerCutLocked()
	}
}

// ---- registry -------------------------------------------------------

var (
	regMu     sync.RWMutex
	injectors = map[string]*FaultFS{}
)

// Install routes every File subsequently created or opened under dir
// through fs. Files opened before Install are not intercepted.
func Install(dir string, fs *FaultFS) {
	dir = filepath.Clean(dir)
	regMu.Lock()
	injectors[dir] = fs
	regMu.Unlock()
}

// Uninstall removes the injector for dir (simulating, e.g., the machine
// rebooting after a power cut). Files already routed keep their
// injector until closed.
func Uninstall(dir string) {
	regMu.Lock()
	delete(injectors, filepath.Clean(dir))
	regMu.Unlock()
}

// injectorFor resolves the injector whose root contains path, if any.
// The deepest matching root wins.
func injectorFor(path string) *FaultFS {
	regMu.RLock()
	defer regMu.RUnlock()
	if len(injectors) == 0 {
		return nil
	}
	path = filepath.Clean(path)
	var best string
	var hit *FaultFS
	for dir, fs := range injectors {
		if (path == dir || strings.HasPrefix(path, dir+string(filepath.Separator))) && len(dir) > len(best) {
			best, hit = dir, fs
		}
	}
	return hit
}

// ---- fault rolls ----------------------------------------------------

// roll decides one probabilistic fault under fs.mu, honouring MaxFaults.
func (fs *FaultFS) roll(p float64) bool {
	if p <= 0 || fs.cut {
		return false
	}
	if fs.cfg.MaxFaults > 0 && fs.n >= fs.cfg.MaxFaults {
		return false
	}
	if fs.rng.Float64() >= p {
		return false
	}
	fs.n++
	return true
}

// notify invokes OnFault outside fs.mu.
func (fs *FaultFS) notify(e *Error) *Error {
	if fs.OnFault != nil {
		fs.OnFault(e)
	}
	return e
}

// mutation counts one mutating op and fires the scheduled power cut
// when its turn comes. Callers hold fs.mu; a true return means power
// was just lost and the caller's operation must fail.
func (fs *FaultFS) mutation() bool {
	fs.ops++
	if fs.cfg.PowerCutAfter > 0 && fs.ops >= fs.cfg.PowerCutAfter && !fs.cut {
		fs.powerCutLocked()
		return true
	}
	return false
}

// powerCutLocked reverts every unsynced byte: undo records are applied
// newest-first and each file is truncated to its last synced size.
// Best-effort — a file removed since its last write is simply gone.
func (fs *FaultFS) powerCutLocked() {
	fs.cut = true
	fs.stats.PowerCut = true
	for path, sh := range fs.files {
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			continue
		}
		for i := len(sh.undo) - 1; i >= 0; i-- {
			f.WriteAt(sh.undo[i].old, sh.undo[i].off)
		}
		f.Truncate(sh.syncedSize)
		f.Close()
	}
}

// ---- intercepted operations -----------------------------------------

func (fs *FaultFS) create(path string) error {
	fs.mu.Lock()
	if fs.cut {
		fs.mu.Unlock()
		return fs.notify(&Error{Op: "create", Path: path, Kind: KindPowerCut})
	}
	if fs.mutation() {
		fs.mu.Unlock()
		return fs.notify(&Error{Op: "create", Path: path, Kind: KindPowerCut})
	}
	if fs.roll(fs.cfg.WriteENOSPC) {
		fs.stats.ENOSPC++
		fs.mu.Unlock()
		return fs.notify(&Error{Op: "create", Path: path, Kind: KindENOSPC, Err: syscall.ENOSPC})
	}
	// Creation truncates: the journal makes the zero-length file durable,
	// so any previous shadow state is void.
	fs.files[path] = &shadow{}
	fs.mu.Unlock()
	return nil
}

func (fs *FaultFS) open(path string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cut {
		return &Error{Op: "open", Path: path, Kind: KindPowerCut}
	}
	// First sight of a pre-existing file: its current content is assumed
	// durable. A shadow from an earlier Create/Open in this run persists
	// across close/reopen — closing does not sync.
	if _, ok := fs.files[path]; !ok {
		fs.files[path] = &shadow{syncedSize: size}
	}
	return nil
}

func (fs *FaultFS) writeAt(path string, f *os.File, p []byte, off int64, class string) (int, error) {
	fs.mu.Lock()
	if fs.cut {
		fs.mu.Unlock()
		return 0, fs.notify(&Error{Op: "write", Path: path, Class: class, Kind: KindPowerCut})
	}
	if fs.mutation() {
		fs.mu.Unlock()
		return 0, fs.notify(&Error{Op: "write", Path: path, Class: class, Kind: KindPowerCut})
	}
	if fs.roll(fs.cfg.WriteENOSPC) {
		fs.stats.ENOSPC++
		fs.mu.Unlock()
		return 0, fs.notify(&Error{Op: "write", Path: path, Class: class, Kind: KindENOSPC, Err: syscall.ENOSPC})
	}
	n, torn := len(p), false
	if len(p) > 0 && fs.roll(fs.cfg.TornWrite) {
		fs.stats.Torn++
		torn = true
		n = fs.rng.Intn(len(p)) // strict prefix, possibly empty
	}
	var wn int
	var werr error
	if n > 0 {
		fs.recordUndoLocked(path, f, off, int64(n))
		wn, werr = f.WriteAt(p[:n], off)
	}
	fs.mu.Unlock()
	if torn {
		return wn, fs.notify(&Error{Op: "write", Path: path, Class: class, Kind: KindTornWrite, Err: io.ErrShortWrite})
	}
	if werr != nil {
		return wn, &Error{Op: "write", Path: path, Class: class, Kind: KindIO, Err: werr}
	}
	return wn, nil
}

// recordUndoLocked captures the bytes about to be overwritten so a
// power cut can restore them. Bytes beyond the current size need no
// undo — the final truncate removes them.
func (fs *FaultFS) recordUndoLocked(path string, f *os.File, off, n int64) {
	sh := fs.files[path]
	if sh == nil {
		sh = &shadow{}
		if st, err := f.Stat(); err == nil {
			sh.syncedSize = st.Size()
		}
		fs.files[path] = sh
	}
	old := make([]byte, n)
	rn, _ := f.ReadAt(old, off)
	if rn > 0 {
		sh.undo = append(sh.undo, undoRec{off: off, old: old[:rn]})
	}
}

func (fs *FaultFS) readAt(path string, f *os.File, p []byte, off int64, class string) (int, error) {
	fs.mu.Lock()
	if fs.cut {
		fs.mu.Unlock()
		return 0, fs.notify(&Error{Op: "read", Path: path, Class: class, Kind: KindPowerCut})
	}
	flip := len(p) > 0 && fs.roll(fs.cfg.ReadBitFlip)
	var bit int
	if flip {
		fs.stats.BitFlip++
		bit = fs.rng.Intn(len(p) * 8)
	}
	fs.mu.Unlock()
	n, err := f.ReadAt(p, off)
	if flip && bit/8 < n {
		p[bit/8] ^= 1 << (bit % 8)
		// Silent corruption: the reader gets no error — only CRC framing
		// can catch this. The fault is still observable via OnFault.
		fs.notify(&Error{Op: "read", Path: path, Class: class, Kind: KindBitFlip})
	}
	return n, err
}

func (fs *FaultFS) sync(path string, f *os.File) error {
	fs.mu.Lock()
	if fs.cut {
		fs.mu.Unlock()
		return fs.notify(&Error{Op: "sync", Path: path, Kind: KindPowerCut})
	}
	if fs.mutation() {
		fs.mu.Unlock()
		return fs.notify(&Error{Op: "sync", Path: path, Kind: KindPowerCut})
	}
	if fs.roll(fs.cfg.SyncFail) {
		fs.stats.SyncFail++
		fs.mu.Unlock()
		// The data stays volatile: undo records are kept, so a later power
		// cut still discards everything this sync failed to make durable.
		return fs.notify(&Error{Op: "sync", Path: path, Kind: KindSyncFail})
	}
	if err := f.Sync(); err != nil {
		fs.mu.Unlock()
		return &Error{Op: "sync", Path: path, Kind: KindIO, Err: err}
	}
	sh := fs.files[path]
	if sh == nil {
		sh = &shadow{}
		fs.files[path] = sh
	}
	sh.undo = nil
	if st, err := f.Stat(); err == nil {
		sh.syncedSize = st.Size()
	}
	fs.mu.Unlock()
	return nil
}

func (fs *FaultFS) close(path string, f *os.File) error {
	// Closing never syncs; the shadow persists. Power loss still forbids
	// further progress, but the descriptor is released either way.
	err := f.Close()
	fs.mu.Lock()
	cut := fs.cut
	fs.mu.Unlock()
	if cut {
		return fs.notify(&Error{Op: "close", Path: path, Kind: KindPowerCut})
	}
	if err != nil {
		return &Error{Op: "close", Path: path, Kind: KindIO, Err: err}
	}
	return nil
}

func (fs *FaultFS) rename(oldpath, newpath string) error {
	fs.mu.Lock()
	if fs.cut {
		fs.mu.Unlock()
		return fs.notify(&Error{Op: "rename", Path: oldpath, Kind: KindPowerCut})
	}
	if fs.mutation() {
		fs.mu.Unlock()
		return fs.notify(&Error{Op: "rename", Path: oldpath, Kind: KindPowerCut})
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		fs.mu.Unlock()
		return &Error{Op: "rename", Path: oldpath, Kind: KindIO, Err: err}
	}
	// The rename itself is journaled metadata (durable at once), but the
	// renamed file's *data* keeps its volatility: rekey every shadow under
	// the old path, including whole-directory renames.
	sep := string(filepath.Separator)
	for k, sh := range fs.files {
		switch {
		case k == oldpath:
			delete(fs.files, k)
			fs.files[newpath] = sh
		case strings.HasPrefix(k, oldpath+sep):
			delete(fs.files, k)
			fs.files[newpath+k[len(oldpath):]] = sh
		}
	}
	fs.mu.Unlock()
	return nil
}

// ---- path-level helpers ---------------------------------------------

// Rename renames a file or directory through the fault layer, so a
// shadowed (unsynced) file keeps its volatility across the rename. The
// atomic tmp+rename commit idiom must use this instead of os.Rename or
// the injector loses track of what the renamed bytes owe to fsync.
func Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	fs := injectorFor(oldpath)
	if fs == nil {
		fs = injectorFor(newpath)
	}
	if fs == nil {
		return os.Rename(oldpath, newpath)
	}
	return fs.rename(oldpath, newpath)
}

// SyncFile fsyncs path through the fault layer, charging the op to ct.
func SyncFile(path string, ct *Counter) error {
	f, err := Open(path, ct)
	if err != nil {
		return err
	}
	serr := f.Sync()
	if cerr := f.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// WriteFileSync atomically replaces path with data: write to a
// temporary sibling, fsync it, rename over path — all through the fault
// layer with class c accounting. This is the only safe shape for commit
// markers and manifests under the durability contract.
func WriteFileSync(path string, data []byte, ct *Counter, c Class) error {
	tmp := path + ".tmp"
	f, err := Create(tmp, ct)
	if err != nil {
		return err
	}
	if _, err := f.WriteAtClass(data, 0, c); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
