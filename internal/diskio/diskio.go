// Package diskio provides the byte-accounted file layer underneath every
// on-disk store in HybridGraph. The paper's whole argument is about *which
// class* of I/O each approach performs — random writes of spilled messages
// in push, random reads of source-vertex values in pull/b-pull, sequential
// scans of edge blocks — so every read and write is tagged with an access
// class and tallied in a per-worker Counter. A Profile holds the device and
// network throughputs from the paper's Table 3 and converts byte tallies to
// the simulated seconds the experiment harness reports.
package diskio

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Class labels one I/O access pattern, mirroring the throughput rows of
// Table 3 (random read srr, random write srw, sequential read ssr; we add
// sequential write, benchmarked equal to sequential read on both clusters).
type Class int

const (
	RandRead Class = iota
	RandWrite
	SeqRead
	SeqWrite
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case RandRead:
		return "rand-read"
	case RandWrite:
		return "rand-write"
	case SeqRead:
		return "seq-read"
	case SeqWrite:
		return "seq-write"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// PageSize is the device transfer granularity: a random access of any
// size moves at least one page, which is the read/write amplification that
// separates per-vertex random access from clustered access in the paper's
// measured I/O (Fig. 10).
const PageSize = 4096

// Counter tallies bytes and operations per access class. Logical bytes are
// what the caller asked for (the quantities in Eqs. 7, 8 and 11); device
// bytes round random accesses up to page transfers and are what the
// platters actually move (the quantity the paper's I/O plots measure).
// Safe for concurrent use; workers share one counter across their stores.
type Counter struct {
	bytes [numClasses]atomic.Int64
	dev   [numClasses]atomic.Int64
	ops   [numClasses]atomic.Int64
	phys  atomic.Pointer[Counter]
}

// Add records n logical bytes of class c as one operation with an equal
// device transfer (used for sequential access and direct accounting).
func (ct *Counter) Add(c Class, n int64) { ct.AddDev(c, n, n) }

// AddDev records n logical bytes moved with dev device bytes. When a
// physical twin is attached (SetPhys), the same charge is mirrored into
// it: for uncompressed files the bytes that hit the device *are* the
// logical bytes, so the physical dimension tracks charge-for-charge.
// Compressed stores instead charge logical bytes through an Accountant
// (which does not mirror) and let their real frame I/O land on the twin.
func (ct *Counter) AddDev(c Class, n, dev int64) {
	ct.addDev(c, n, dev)
	if p := ct.phys.Load(); p != nil {
		p.addDev(c, n, dev)
	}
}

// addDev is the raw, non-mirroring tally update.
func (ct *Counter) addDev(c Class, n, dev int64) {
	ct.bytes[c].Add(n)
	ct.dev[c].Add(dev)
	ct.ops[c].Add(1)
}

// SetPhys attaches the counter that receives this counter's physical
// (on-device) dimension. Passing nil detaches it.
func (ct *Counter) SetPhys(p *Counter) { ct.phys.Store(p) }

// Phys reports the attached physical twin, or nil.
func (ct *Counter) Phys() *Counter { return ct.phys.Load() }

// PhysFor resolves where a store's real compressed-frame I/O should be
// charged: ct's physical twin when one is attached, otherwise a
// throwaway counter so callers that never wired a twin (unit tests,
// one-off tools) keep exact logical accounting and simply drop the
// physical dimension.
func PhysFor(ct *Counter) *Counter {
	if p := ct.Phys(); p != nil {
		return p
	}
	return &Counter{}
}

// DevBytes reports accumulated device bytes of class c.
func (ct *Counter) DevBytes(c Class) int64 { return ct.dev[c].Load() }

// Bytes reports accumulated bytes of class c.
func (ct *Counter) Bytes(c Class) int64 { return ct.bytes[c].Load() }

// Ops reports accumulated operations of class c.
func (ct *Counter) Ops(c Class) int64 { return ct.ops[c].Load() }

// Total reports accumulated bytes across all classes.
func (ct *Counter) Total() int64 {
	var t int64
	for c := Class(0); c < numClasses; c++ {
		t += ct.Bytes(c)
	}
	return t
}

// Snapshot captures the current tallies.
func (ct *Counter) Snapshot() Snapshot {
	var s Snapshot
	for c := Class(0); c < numClasses; c++ {
		s.Bytes[c] = ct.Bytes(c)
		s.Dev[c] = ct.DevBytes(c)
		s.Ops[c] = ct.Ops(c)
	}
	return s
}

// Reset zeroes all tallies.
func (ct *Counter) Reset() {
	for c := Class(0); c < numClasses; c++ {
		ct.bytes[c].Store(0)
		ct.dev[c].Store(0)
		ct.ops[c].Store(0)
	}
}

// Snapshot is an immutable copy of a Counter's tallies. Subtracting two
// snapshots yields the I/O performed in between (one superstep, say).
type Snapshot struct {
	Bytes [numClasses]int64
	Dev   [numClasses]int64
	Ops   [numClasses]int64
}

// Sub returns s - o component-wise.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	var d Snapshot
	for c := Class(0); c < numClasses; c++ {
		d.Bytes[c] = s.Bytes[c] - o.Bytes[c]
		d.Dev[c] = s.Dev[c] - o.Dev[c]
		d.Ops[c] = s.Ops[c] - o.Ops[c]
	}
	return d
}

// Add returns s + o component-wise.
func (s Snapshot) Add(o Snapshot) Snapshot {
	var d Snapshot
	for c := Class(0); c < numClasses; c++ {
		d.Bytes[c] = s.Bytes[c] + o.Bytes[c]
		d.Dev[c] = s.Dev[c] + o.Dev[c]
		d.Ops[c] = s.Ops[c] + o.Ops[c]
	}
	return d
}

// Total reports total logical bytes in the snapshot.
func (s Snapshot) Total() int64 {
	var t int64
	for c := Class(0); c < numClasses; c++ {
		t += s.Bytes[c]
	}
	return t
}

// DevTotal reports total device bytes — what the paper's I/O plots show.
func (s Snapshot) DevTotal() int64 {
	var t int64
	for c := Class(0); c < numClasses; c++ {
		t += s.Dev[c]
	}
	return t
}

// String renders a compact per-class byte summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("rr=%d rw=%d sr=%d sw=%d", s.Bytes[RandRead], s.Bytes[RandWrite],
		s.Bytes[SeqRead], s.Bytes[SeqWrite])
}

// File wraps an *os.File with class-tagged accounting. All stores in the
// repository perform their I/O through File so that the per-worker Counter
// sees every byte.
type File struct {
	f        *os.File
	path     string
	fs       *FaultFS // fault injector covering path, or nil
	ct       *Counter
	mu       sync.Mutex
	seqPos   int64 // next offset that still counts as sequential
	lastPage int64 // most recently touched page, for device-byte accounting
	created  bool
}

// Create creates (truncating) an accounted file.
func Create(path string, ct *Counter) (*File, error) {
	path = filepath.Clean(path)
	fs := injectorFor(path)
	if fs != nil {
		if err := fs.create(path); err != nil {
			return nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &File{f: f, path: path, fs: fs, ct: ct, created: true, lastPage: -1}, nil
}

// Open opens an existing file for accounted reading and writing.
func Open(path string, ct *Counter) (*File, error) {
	path = filepath.Clean(path)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	fs := injectorFor(path)
	if fs != nil {
		var size int64
		if st, serr := f.Stat(); serr == nil {
			size = st.Size()
		}
		if err := fs.open(path, size); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &File{f: f, path: path, fs: fs, ct: ct, lastPage: -1}, nil
}

// OpenRead opens an existing file for accounted read-only access. Catalog
// stores are shared by concurrent jobs and must never be written, so the
// OS-level permission backs up the convention.
func OpenRead(path string, ct *Counter) (*File, error) {
	path = filepath.Clean(path)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fs := injectorFor(path)
	if fs != nil {
		var size int64
		if st, serr := f.Stat(); serr == nil {
			size = st.Size()
		}
		if err := fs.open(path, size); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &File{f: f, path: path, fs: fs, ct: ct, lastPage: -1}, nil
}

// pread performs the device read, routed through the fault injector when
// one covers this file. Real read errors pass through unwrapped (io.EOF
// semantics matter to callers); injected faults surface as *Error.
func (af *File) pread(p []byte, off int64, c Class) (int, error) {
	if af.fs != nil {
		return af.fs.readAt(af.path, af.f, p, off, c.String())
	}
	return af.f.ReadAt(p, off)
}

// pwrite performs the device write. Injected faults and real write
// errors both surface as a typed, path-and-class-annotated *Error —
// a spilled message or log append that fails must name what failed.
func (af *File) pwrite(p []byte, off int64, c Class) (int, error) {
	if af.fs != nil {
		return af.fs.writeAt(af.path, af.f, p, off, c.String())
	}
	n, err := af.f.WriteAt(p, off)
	if err != nil {
		return n, &Error{Op: "write", Path: af.path, Class: c.String(), Kind: KindIO, Err: err}
	}
	return n, nil
}

// guessClass predicts the sequential/random classification account()
// will assign, for fault-error annotation before the write happens.
func (af *File) guessClass(off int64, randC, seqC Class) Class {
	af.mu.Lock()
	seq := off == af.seqPos || (off == 0 && af.seqPos == 0)
	af.mu.Unlock()
	if seq {
		return seqC
	}
	return randC
}

// devCharge computes the device bytes an access moves and records the page
// position. Sequential classes transfer what they read; random classes
// transfer whole pages, except repeated touches of the most recent page
// (b-pull's svertex reads ascend within an Eblock scan and so coalesce,
// while the pull baseline's scattered misses each pay a page — the
// mechanism behind Fig. 10's orders-of-magnitude gap). Callers hold af.mu.
func (af *File) devCharge(off, n int64, c Class) int64 {
	if n <= 0 {
		return 0
	}
	first := off / PageSize
	last := (off + n - 1) / PageSize
	if c == SeqRead || c == SeqWrite {
		af.lastPage = last
		return n
	}
	var dev int64
	for p := first; p <= last; p++ {
		if p != af.lastPage {
			dev += PageSize
		}
		af.lastPage = p
	}
	return dev
}

// Name reports the underlying file path.
func (af *File) Name() string { return af.f.Name() }

// SetCounter retargets accounting to a different counter. The stores are
// built under a worker's loading counter (Fig. 16 reports loading cost
// separately) and then retargeted to its computation counter.
func (af *File) SetCounter(ct *Counter) {
	af.mu.Lock()
	af.ct = ct
	af.mu.Unlock()
}

// Close closes the underlying file. Closing does not sync: bytes
// written but never Synced are still lost to a simulated power cut.
func (af *File) Close() error {
	if af.fs != nil {
		return af.fs.close(af.path, af.f)
	}
	return af.f.Close()
}

// Sync flushes the file to stable storage — the durability point of the
// fault model: only synced bytes survive a simulated power cut. The
// flush is charged to the counter as one zero-byte sequential-write
// operation, so checkpoint/log deltas see the op without perturbing the
// byte tallies Eqs. (7)/(8) reason about.
func (af *File) Sync() error {
	var err error
	if af.fs != nil {
		err = af.fs.sync(af.path, af.f)
	} else if serr := af.f.Sync(); serr != nil {
		err = &Error{Op: "sync", Path: af.path, Kind: KindIO, Err: serr}
	}
	if err == nil {
		af.mu.Lock()
		ct := af.ct
		af.mu.Unlock()
		ct.AddDev(SeqWrite, 0, 0)
	}
	return err
}

// Size reports the current file size.
func (af *File) Size() (int64, error) {
	st, err := af.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ReadAt reads len(p) bytes at off. The access is classified automatically:
// a read that continues exactly where the previous access on this File
// ended counts as sequential, anything else as random. The classification
// matches how the paper reasons about Eblock scans (sequential) versus
// svertex lookups (random).
func (af *File) ReadAt(p []byte, off int64) (int, error) {
	n, err := af.pread(p, off, af.guessClass(off, RandRead, SeqRead))
	af.account(off, int64(n), RandRead, SeqRead)
	return n, err
}

// WriteAt writes p at off with automatic sequential/random classification.
func (af *File) WriteAt(p []byte, off int64) (int, error) {
	n, err := af.pwrite(p, off, af.guessClass(off, RandWrite, SeqWrite))
	af.account(off, int64(n), RandWrite, SeqWrite)
	return n, err
}

// ReadAtClass reads with an explicit class, for callers that know the
// device-level pattern better than position heuristics do (e.g. Giraph's
// message spill is written in arrival order, which the paper charges as
// random writes regardless of file offsets, because the *logical* locality
// over destination vertices is poor).
func (af *File) ReadAtClass(p []byte, off int64, c Class) (int, error) {
	n, err := af.pread(p, off, c)
	af.mu.Lock()
	af.seqPos = off + int64(n)
	dev := af.devCharge(off, int64(n), c)
	ct := af.ct
	af.mu.Unlock()
	ct.AddDev(c, int64(n), dev)
	return n, err
}

// ReadAtClassDev reads with an explicit class and an explicit device
// charge. Callers that manage their own page locality (b-pull's Eblock
// scans keep one Vblock's pages hot) use it to coalesce page transfers.
func (af *File) ReadAtClassDev(p []byte, off int64, c Class, dev int64) (int, error) {
	n, err := af.pread(p, off, c)
	af.mu.Lock()
	af.seqPos = off + int64(n)
	if n > 0 {
		af.lastPage = (off + int64(n) - 1) / PageSize
	}
	ct := af.ct
	af.mu.Unlock()
	ct.AddDev(c, int64(n), dev)
	return n, err
}

// WriteAtClass writes with an explicit class.
func (af *File) WriteAtClass(p []byte, off int64, c Class) (int, error) {
	n, err := af.pwrite(p, off, c)
	af.mu.Lock()
	af.seqPos = off + int64(n)
	dev := af.devCharge(off, int64(n), c)
	ct := af.ct
	af.mu.Unlock()
	ct.AddDev(c, int64(n), dev)
	return n, err
}

func (af *File) account(off, n int64, randC, seqC Class) {
	af.mu.Lock()
	seq := off == af.seqPos || (off == 0 && af.seqPos == 0)
	af.seqPos = off + n
	c := randC
	if seq {
		c = seqC
	}
	dev := af.devCharge(off, n, c)
	ct := af.ct
	af.mu.Unlock()
	if n <= 0 {
		return
	}
	ct.AddDev(c, n, dev)
}
