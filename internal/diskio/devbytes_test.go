package diskio

import (
	"path/filepath"
	"testing"
)

func TestDevBytesPageGranularRandomAccess(t *testing.T) {
	var ct Counter
	f, err := Create(filepath.Join(t.TempDir(), "x"), &ct)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Lay down two pages of data.
	if _, err := f.WriteAtClass(make([]byte, 2*PageSize), 0, SeqWrite); err != nil {
		t.Fatal(err)
	}
	base := ct.Snapshot()

	buf := make([]byte, 8)
	// First random read: one page of device transfer for 8 logical bytes.
	if _, err := f.ReadAtClass(buf, 100, RandRead); err != nil {
		t.Fatal(err)
	}
	d := ct.Snapshot().Sub(base)
	if d.Bytes[RandRead] != 8 || d.Dev[RandRead] != PageSize {
		t.Fatalf("first read: logical %d dev %d", d.Bytes[RandRead], d.Dev[RandRead])
	}
	// Second read on the same page: no extra device transfer.
	if _, err := f.ReadAtClass(buf, 200, RandRead); err != nil {
		t.Fatal(err)
	}
	d = ct.Snapshot().Sub(base)
	if d.Dev[RandRead] != PageSize {
		t.Fatalf("same-page read recharged: dev %d", d.Dev[RandRead])
	}
	// A different page pays again.
	if _, err := f.ReadAtClass(buf, PageSize+8, RandRead); err != nil {
		t.Fatal(err)
	}
	d = ct.Snapshot().Sub(base)
	if d.Dev[RandRead] != 2*PageSize {
		t.Fatalf("page change: dev %d, want %d", d.Dev[RandRead], 2*PageSize)
	}
}

func TestDevBytesSequentialEqualsLogical(t *testing.T) {
	var ct Counter
	f, err := Create(filepath.Join(t.TempDir(), "x"), &ct)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAtClass(make([]byte, 10000), 0, SeqWrite); err != nil {
		t.Fatal(err)
	}
	s := ct.Snapshot()
	if s.Dev[SeqWrite] != s.Bytes[SeqWrite] || s.Bytes[SeqWrite] != 10000 {
		t.Fatalf("seq: logical %d dev %d", s.Bytes[SeqWrite], s.Dev[SeqWrite])
	}
}

func TestDevBytesExplicitCharge(t *testing.T) {
	var ct Counter
	f, err := Create(filepath.Join(t.TempDir(), "x"), &ct)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAtClass(make([]byte, 100), 0, SeqWrite); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := f.ReadAtClassDev(buf, 0, RandRead, 0); err != nil {
		t.Fatal(err)
	}
	if ct.DevBytes(RandRead) != 0 || ct.Bytes(RandRead) != 8 {
		t.Fatalf("explicit zero charge: dev %d logical %d",
			ct.DevBytes(RandRead), ct.Bytes(RandRead))
	}
}

func TestDevBytesAppendsCoalesce(t *testing.T) {
	// Spilled messages append; successive 12-byte random writes on the
	// same page must not each pay a page.
	var ct Counter
	f, err := Create(filepath.Join(t.TempDir(), "x"), &ct)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec := make([]byte, 12)
	for i := int64(0); i < 400; i++ { // ~1.2 pages of appends
		if _, err := f.WriteAtClass(rec, i*12, RandWrite); err != nil {
			t.Fatal(err)
		}
	}
	if dev := ct.DevBytes(RandWrite); dev > 3*PageSize {
		t.Fatalf("appends paid %d device bytes, want ≤ %d", dev, 3*PageSize)
	}
	if got := ct.Bytes(RandWrite); got != 4800 {
		t.Fatalf("logical = %d, want 4800", got)
	}
}

func TestSnapshotDevTotal(t *testing.T) {
	var s Snapshot
	s.Dev[RandRead] = 5
	s.Dev[SeqWrite] = 7
	if s.DevTotal() != 12 {
		t.Fatalf("DevTotal = %d", s.DevTotal())
	}
}
