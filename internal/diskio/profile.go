package diskio

// Profile holds the device and network throughputs of one cluster, in
// MB/s, exactly as the paper's Table 3 reports them (measured with fio and
// iperf). The harness converts byte tallies into the "simulated seconds" it
// reports using these constants, which is the same conversion the paper's
// performance metric Qt (Eq. 11) applies.
type Profile struct {
	Name string
	SRR  float64 // random-read throughput, MB/s
	SRW  float64 // random-write throughput, MB/s
	SSR  float64 // sequential-read throughput, MB/s
	SSW  float64 // sequential-write throughput, MB/s
	SNet float64 // network throughput, MB/s
	// CPUFactor scales the fixed per-message compute charge; the paper
	// notes the amazon cluster's virtual CPUs are weaker than the local
	// cluster's physical ones, which is why push (sort-merge heavy) does
	// not improve on SSDs (Section 6.1).
	CPUFactor float64
}

// HDDLocal is the paper's local cluster: 7,200 RPM HDDs, Gigabit Ethernet
// (Table 3, "local" row).
var HDDLocal = Profile{
	Name: "hdd-local",
	SRR:  1.177, SRW: 1.182, SSR: 2.358, SSW: 2.358,
	SNet: 112, CPUFactor: 1.0,
}

// SSDAmazon is the paper's amazon cluster: SSDs, virtual CPUs
// (Table 3, "amazon" row).
var SSDAmazon = Profile{
	Name: "ssd-amazon",
	SRR:  18.177, SRW: 18.194, SSR: 18.270, SSW: 18.270,
	SNet: 116, CPUFactor: 2.0,
}

const mb = 1 << 20

// DiskSeconds converts an I/O snapshot into simulated seconds under the
// profile, using device bytes (random accesses move whole pages; the
// fio-measured Table 3 throughputs are block-granular).
func (p Profile) DiskSeconds(s Snapshot) float64 {
	return float64(s.Dev[RandRead])/(p.SRR*mb) +
		float64(s.Dev[RandWrite])/(p.SRW*mb) +
		float64(s.Dev[SeqRead])/(p.SSR*mb) +
		float64(s.Dev[SeqWrite])/(p.SSW*mb)
}

// NetSeconds converts transferred bytes into simulated seconds under the
// profile's network throughput.
func (p Profile) NetSeconds(bytes int64) float64 {
	return float64(bytes) / (p.SNet * mb)
}
