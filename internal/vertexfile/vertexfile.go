// Package vertexfile implements the disk-resident vertex-value store every
// engine shares. One store holds the records for one worker's contiguous
// vertex range.
//
// Record layout (32 bytes, fixed width, little endian):
//
//	id      uint32  — vertex id (redundant with position; kept for checks)
//	outdeg  uint32  — out-degree
//	val     float64 — the vertex value updated by update()/compute()
//	bcast0  float64 — broadcast value written at even supersteps
//	bcast1  float64 — broadcast value written at odd supersteps
//
// The two broadcast columns make block-centric pulling deterministic under
// BSP: update() at superstep t writes val and bcast[t mod 2], while
// pullRes() at superstep t reads bcast[(t-1) mod 2], so concurrent remote
// pulls never observe a half-updated superstep (see DESIGN.md,
// "Deviations"). The extra 8 bytes per vertex are charged to IO(Vt) like
// any other vertex byte.
package vertexfile

import (
	"encoding/binary"
	"fmt"
	"sync"

	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
)

// RecordSize is the fixed on-disk size of one vertex record.
const RecordSize = 32

// BcastSize is the number of bytes random-read per source vertex when
// pulling (one broadcast column), the paper's S_v.
const BcastSize = 8

// Record is the decoded form of one vertex record.
type Record struct {
	ID     graph.VertexID
	OutDeg uint32
	Val    float64
	Bcast  [2]float64
}

// Store is a disk-resident array of vertex records covering the id range
// [Lo, Lo+N).
type Store struct {
	f  *diskio.File
	lo graph.VertexID
	n  int
	// mem is non-nil for memory-resident stores (sufficient memory).
	// memMu serialises access: remote pullers read broadcast columns while
	// the owner's update scan writes records back.
	mem   []Record
	memMu sync.RWMutex
}

// Create builds a store at path for n vertices starting at id lo, writing
// the initial records sequentially. recs must have length n and be in id
// order.
func Create(path string, ct *diskio.Counter, lo graph.VertexID, recs []Record) (*Store, error) {
	f, err := diskio.Create(path, ct)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, lo: lo, n: len(recs)}
	buf := make([]byte, len(recs)*RecordSize)
	for i, r := range recs {
		if r.ID != lo+graph.VertexID(i) {
			f.Close()
			return nil, fmt.Errorf("vertexfile: record %d has id %d, want %d", i, r.ID, lo+graph.VertexID(i))
		}
		encode(buf[i*RecordSize:], r)
	}
	if _, err := f.WriteAtClass(buf, 0, diskio.SeqWrite); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Close releases the underlying file, if any.
func (s *Store) Close() error {
	if s.f == nil {
		return nil
	}
	return s.f.Close()
}

// Lo reports the first vertex id held by the store.
func (s *Store) Lo() graph.VertexID { return s.lo }

// Len reports the number of records.
func (s *Store) Len() int { return s.n }

// Contains reports whether v is stored here.
func (s *Store) Contains(v graph.VertexID) bool {
	return v >= s.lo && int(v-s.lo) < s.n
}

// ReadRange sequentially reads records for ids [lo, hi) into recs (which
// must have length hi-lo). This is the update-phase scan, charged as
// sequential reads (part of IO(Vt)).
func (s *Store) ReadRange(lo, hi graph.VertexID, recs []Record) error {
	if err := s.checkRange(lo, hi, len(recs)); err != nil {
		return err
	}
	if s.mem != nil {
		s.memMu.RLock()
		copy(recs, s.mem[lo-s.lo:hi-s.lo])
		s.memMu.RUnlock()
		return nil
	}
	buf := make([]byte, int(hi-lo)*RecordSize)
	if _, err := s.f.ReadAtClass(buf, int64(lo-s.lo)*RecordSize, diskio.SeqRead); err != nil {
		return err
	}
	for i := range recs {
		recs[i] = decode(buf[i*RecordSize:])
	}
	return nil
}

// WriteRange sequentially writes back records for ids [lo, hi), the second
// half of the update-phase scan (also IO(Vt)).
func (s *Store) WriteRange(lo, hi graph.VertexID, recs []Record) error {
	if err := s.checkRange(lo, hi, len(recs)); err != nil {
		return err
	}
	if s.mem != nil {
		s.memMu.Lock()
		copy(s.mem[lo-s.lo:hi-s.lo], recs)
		s.memMu.Unlock()
		return nil
	}
	buf := make([]byte, int(hi-lo)*RecordSize)
	for i, r := range recs {
		encode(buf[i*RecordSize:], r)
	}
	_, err := s.f.WriteAtClass(buf, int64(lo-s.lo)*RecordSize, diskio.SeqWrite)
	return err
}

// ReadBcast random-reads the broadcast column of parity for vertex v: the
// per-svertex random read that pull and b-pull pay (IO(V_rr^t)).
func (s *Store) ReadBcast(v graph.VertexID, parity int) (float64, error) {
	if !s.Contains(v) {
		return 0, fmt.Errorf("vertexfile: vertex %d outside [%d,%d)", v, s.lo, int(s.lo)+s.n)
	}
	if s.mem != nil {
		s.memMu.RLock()
		val := s.mem[v-s.lo].Bcast[parity&1]
		s.memMu.RUnlock()
		return val, nil
	}
	var b [8]byte
	off := int64(v-s.lo)*RecordSize + 16 + int64(parity&1)*8
	if _, err := s.f.ReadAtClass(b[:], off, diskio.RandRead); err != nil {
		return 0, err
	}
	return float64FromBits(b[:]), nil
}

// PageSet tracks the 4 KiB pages one scan has already pulled into memory.
// Pull-Respond's svertex reads ascend within each Eblock scan, so the
// requested Vblock's pages stay hot for the duration of the scan — the
// locality VE-BLOCK exists to create. A fresh PageSet per scan models
// that; accesses without one pay a full page each.
type PageSet map[int64]bool

// ReadBcastScan is ReadBcast with scan-local page accounting: the logical
// cost is one broadcast column, the device cost one page per page not yet
// in seen.
func (s *Store) ReadBcastScan(v graph.VertexID, parity int, seen PageSet) (float64, error) {
	if !s.Contains(v) {
		return 0, fmt.Errorf("vertexfile: vertex %d outside [%d,%d)", v, s.lo, int(s.lo)+s.n)
	}
	if s.mem != nil {
		return s.ReadBcast(v, parity)
	}
	off := int64(v-s.lo)*RecordSize + 16 + int64(parity&1)*8
	var dev int64
	if page := off / diskio.PageSize; !seen[page] {
		seen[page] = true
		dev = diskio.PageSize
	}
	var b [8]byte
	if _, err := s.f.ReadAtClassDev(b[:], off, diskio.RandRead, dev); err != nil {
		return 0, err
	}
	return float64FromBits(b[:]), nil
}

// WriteRecord random-writes one full record (the pull baseline's
// per-active-vertex apply when few vertices are active).
func (s *Store) WriteRecord(r Record) error {
	if !s.Contains(r.ID) {
		return fmt.Errorf("vertexfile: vertex %d outside [%d,%d)", r.ID, s.lo, int(s.lo)+s.n)
	}
	if s.mem != nil {
		s.memMu.Lock()
		s.mem[r.ID-s.lo] = r
		s.memMu.Unlock()
		return nil
	}
	var b [RecordSize]byte
	encode(b[:], r)
	_, err := s.f.WriteAtClass(b[:], int64(r.ID-s.lo)*RecordSize, diskio.RandWrite)
	return err
}

// ReadRecord random-reads one full record.
func (s *Store) ReadRecord(v graph.VertexID) (Record, error) {
	if !s.Contains(v) {
		return Record{}, fmt.Errorf("vertexfile: vertex %d outside [%d,%d)", v, s.lo, int(s.lo)+s.n)
	}
	if s.mem != nil {
		s.memMu.RLock()
		r := s.mem[v-s.lo]
		s.memMu.RUnlock()
		return r, nil
	}
	var b [RecordSize]byte
	if _, err := s.f.ReadAtClass(b[:], int64(v-s.lo)*RecordSize, diskio.RandRead); err != nil {
		return Record{}, err
	}
	return decode(b[:]), nil
}

func (s *Store) checkRange(lo, hi graph.VertexID, n int) error {
	if lo < s.lo || hi < lo || int(hi-s.lo) > s.n || int(hi-lo) != n {
		return fmt.Errorf("vertexfile: bad range [%d,%d) (store [%d,%d), buf %d)",
			lo, hi, s.lo, int(s.lo)+s.n, n)
	}
	return nil
}

func encode(b []byte, r Record) {
	binary.LittleEndian.PutUint32(b[0:], uint32(r.ID))
	binary.LittleEndian.PutUint32(b[4:], r.OutDeg)
	binary.LittleEndian.PutUint64(b[8:], float64Bits(r.Val))
	binary.LittleEndian.PutUint64(b[16:], float64Bits(r.Bcast[0]))
	binary.LittleEndian.PutUint64(b[24:], float64Bits(r.Bcast[1]))
}

func decode(b []byte) Record {
	return Record{
		ID:     graph.VertexID(binary.LittleEndian.Uint32(b[0:])),
		OutDeg: binary.LittleEndian.Uint32(b[4:]),
		Val:    float64FromBitsU(binary.LittleEndian.Uint64(b[8:])),
		Bcast: [2]float64{
			float64FromBitsU(binary.LittleEndian.Uint64(b[16:])),
			float64FromBitsU(binary.LittleEndian.Uint64(b[24:])),
		},
	}
}

// SetCounter retargets the store's I/O accounting (no-op for
// memory-resident stores). Used to separate loading cost from
// computation cost.
func (s *Store) SetCounter(ct *diskio.Counter) {
	if s == nil || s.f == nil {
		return
	}
	s.f.SetCounter(ct)
}
