package vertexfile

import "math"

func float64Bits(f float64) uint64 { return math.Float64bits(f) }

func float64FromBitsU(u uint64) float64 { return math.Float64frombits(u) }

func float64FromBits(b []byte) float64 {
	var u uint64
	for i := 7; i >= 0; i-- {
		u = u<<8 | uint64(b[i])
	}
	return math.Float64frombits(u)
}
