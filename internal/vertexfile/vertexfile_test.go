package vertexfile

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
)

func newStore(t *testing.T, lo graph.VertexID, n int) (*Store, *diskio.Counter) {
	t.Helper()
	var ct diskio.Counter
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			ID:     lo + graph.VertexID(i),
			OutDeg: uint32(i * 2),
			Val:    float64(i) + 0.5,
			Bcast:  [2]float64{float64(i), -float64(i)},
		}
	}
	s, err := Create(filepath.Join(t.TempDir(), "v.dat"), &ct, lo, recs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, &ct
}

func TestCreateAndReadRange(t *testing.T) {
	s, ct := newStore(t, 100, 50)
	recs := make([]Record, 10)
	if err := s.ReadRange(110, 120, recs); err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		want := Record{ID: graph.VertexID(110 + i), OutDeg: uint32((10 + i) * 2),
			Val: float64(10+i) + 0.5, Bcast: [2]float64{float64(10 + i), -float64(10 + i)}}
		if r != want {
			t.Fatalf("record %d = %+v, want %+v", i, r, want)
		}
	}
	if got := ct.Bytes(diskio.SeqRead); got != 10*RecordSize {
		t.Fatalf("SeqRead bytes = %d, want %d", got, 10*RecordSize)
	}
	if got := ct.Bytes(diskio.SeqWrite); got != 50*RecordSize {
		t.Fatalf("SeqWrite bytes (create) = %d, want %d", got, 50*RecordSize)
	}
}

func TestWriteRangeRoundTrip(t *testing.T) {
	s, _ := newStore(t, 0, 20)
	recs := make([]Record, 5)
	if err := s.ReadRange(5, 10, recs); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		recs[i].Val *= 3
		recs[i].Bcast[1] = 42
	}
	if err := s.WriteRange(5, 10, recs); err != nil {
		t.Fatal(err)
	}
	got := make([]Record, 5)
	if err := s.ReadRange(5, 10, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestReadBcastParityAndAccounting(t *testing.T) {
	s, ct := newStore(t, 10, 8)
	before := ct.Snapshot()
	v0, err := s.ReadBcast(13, 0)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := s.ReadBcast(13, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v0 != 3 || v1 != -3 {
		t.Fatalf("bcast = %g,%g; want 3,-3", v0, v1)
	}
	d := ct.Snapshot().Sub(before)
	if d.Bytes[diskio.RandRead] != 2*BcastSize {
		t.Fatalf("RandRead = %d, want %d", d.Bytes[diskio.RandRead], 2*BcastSize)
	}
	// Higher parities reduce mod 2.
	v2, err := s.ReadBcast(13, 2)
	if err != nil || v2 != v0 {
		t.Fatalf("parity 2 read = %g, %v; want %g", v2, err, v0)
	}
}

func TestReadRecordRandom(t *testing.T) {
	s, _ := newStore(t, 0, 10)
	r, err := s.ReadRecord(7)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != 7 || r.OutDeg != 14 {
		t.Fatalf("ReadRecord(7) = %+v", r)
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	s, _ := newStore(t, 100, 10)
	if _, err := s.ReadBcast(99, 0); err == nil {
		t.Fatal("ReadBcast below range should fail")
	}
	if _, err := s.ReadBcast(110, 0); err == nil {
		t.Fatal("ReadBcast above range should fail")
	}
	if _, err := s.ReadRecord(110); err == nil {
		t.Fatal("ReadRecord above range should fail")
	}
	if err := s.ReadRange(100, 111, make([]Record, 11)); err == nil {
		t.Fatal("ReadRange past end should fail")
	}
	if err := s.ReadRange(100, 105, make([]Record, 4)); err == nil {
		t.Fatal("ReadRange with wrong buffer length should fail")
	}
}

func TestCreateRejectsMisnumberedRecords(t *testing.T) {
	var ct diskio.Counter
	_, err := Create(filepath.Join(t.TempDir(), "v"), &ct, 5, []Record{{ID: 9}})
	if err == nil {
		t.Fatal("Create should reject records whose ids do not match positions")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(id, deg uint32, val, b0, b1 float64) bool {
		r := Record{ID: graph.VertexID(id), OutDeg: deg, Val: val, Bcast: [2]float64{b0, b1}}
		var buf [RecordSize]byte
		encode(buf[:], r)
		got := decode(buf[:])
		eq := func(a, b float64) bool {
			return a == b || (math.IsNaN(a) && math.IsNaN(b))
		}
		return got.ID == r.ID && got.OutDeg == r.OutDeg &&
			eq(got.Val, r.Val) && eq(got.Bcast[0], r.Bcast[0]) && eq(got.Bcast[1], r.Bcast[1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContains(t *testing.T) {
	s, _ := newStore(t, 10, 5)
	for v, want := range map[graph.VertexID]bool{9: false, 10: true, 14: true, 15: false} {
		if got := s.Contains(v); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", v, got, want)
		}
	}
}
