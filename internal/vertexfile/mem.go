package vertexfile

import "hybridgraph/internal/graph"

// CreateMem returns a memory-resident store with the same interface as a
// disk-backed one: used for the paper's sufficient-memory scenario (Fig.
// 7, "all systems tested manage data in memory"), where vertex access
// incurs no I/O. recs must be in id order starting at lo.
func CreateMem(lo graph.VertexID, recs []Record) *Store {
	cp := make([]Record, len(recs))
	copy(cp, recs)
	return &Store{lo: lo, n: len(cp), mem: cp}
}

// InMemory reports whether the store is memory-resident.
func (s *Store) InMemory() bool { return s.mem != nil }
