// Package msglog implements the sender-side message log that confined
// recovery consumes: each worker appends the push packets it sends and the
// pull responses it serves to a local, append-only, superstep-segmented
// log. After a failure only the crashed worker recomputes — survivors
// serve their log segments instead of re-executing supersteps, which is
// what makes recovery cost scale with the failed partition rather than
// the whole job (the GraphD-style confined recovery the paper's
// prototype omits).
//
// Records are CRC-framed individually, so a torn tail write surfaces as a
// verification error instead of silently replaying garbage. Segments are
// one file per superstep and are pruned once the checkpoint coordinator
// commits a superstep that subsumes them. All writes flow through the
// diskio counter handed to Open, so log overhead is charged to the same
// cost model as computation.
package msglog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"hybridgraph/internal/codec"
	"hybridgraph/internal/comm"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
)

// Kind discriminates the two record flavours a worker logs.
type Kind uint8

const (
	// KindPush is an outgoing push packet, keyed by destination worker.
	KindPush Kind = 1
	// KindPullResp is a served pull response, keyed by requested global
	// Vblock.
	KindPullResp Kind = 2
)

// recHeaderSize is kind(1) + step(4) + key(4) + count(4).
const recHeaderSize = 1 + 4 + 4 + 4

// msgSize is one logged message: dst(4) + value bits(8).
const msgSize = 4 + 8

// Log is one worker's message log. Appends are serialised internally
// (pull responses run on requester goroutines); reads take the same lock
// only long enough to flush segment bookkeeping.
type Log struct {
	dir string
	ct  *diskio.Counter
	cdc codec.Codec

	mu      sync.Mutex
	step    int          // superstep of the open segment (-1 = none)
	f       *diskio.File // open segment, append position off
	off     int64        // logical append position (== physical when raw)
	poff    int64        // physical append position (framed segments)
	acct    *diskio.Accountant
	bytes   int64 // total record bytes appended over the log's lifetime
	records int64
}

// Open creates (or reopens) a worker's message log rooted at dir. All
// write I/O is charged to ct as sequential writes. With a non-trivial
// codec each record is stored as one compressed frame: the logical
// charge (the record bytes, the number Eq.-style LogIO reasons about)
// is unchanged, while the frame bytes land on ct's physical twin.
func Open(dir string, ct *diskio.Counter, cdc codec.Codec) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Log{dir: dir, ct: ct, cdc: cdc, step: -1}, nil
}

// SegmentPath names the segment file holding superstep step's records.
func (l *Log) SegmentPath(step int) string {
	return filepath.Join(l.dir, fmt.Sprintf("seg-%06d.log", step))
}

// AppendPush logs one outgoing push packet sent during superstep step to
// worker dst. Call before handing the packet to the fabric so retries and
// duplicated deliveries never double-log.
func (l *Log) AppendPush(step, dst int, msgs []comm.Msg) error {
	return l.append(step, KindPush, uint32(dst), msgs)
}

// AppendPullResp logs one served pull response for global Vblock block at
// superstep step, exactly as it crossed the wire (post concat/combine).
func (l *Log) AppendPullResp(step, block int, msgs []comm.Msg) error {
	return l.append(step, KindPullResp, uint32(block), msgs)
}

func (l *Log) append(step int, kind Kind, key uint32, msgs []comm.Msg) error {
	rec := encodeRecord(step, kind, key, msgs)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.switchTo(step); err != nil {
		return err
	}
	if codec.IsNone(l.cdc) {
		if _, err := l.f.WriteAtClass(rec, l.off, diskio.SeqWrite); err != nil {
			return fmt.Errorf("msglog: %s: %w", l.SegmentPath(step), err)
		}
	} else {
		frame := codec.AppendFrame(nil, l.cdc, rec)
		if _, err := l.f.WriteAtClass(frame, l.poff, diskio.SeqWrite); err != nil {
			return fmt.Errorf("msglog: %s: %w", l.SegmentPath(step), err)
		}
		l.poff += int64(len(frame))
		l.acct.WriteAtClass(int64(len(rec)), l.off, diskio.SeqWrite)
	}
	l.off += int64(len(rec))
	l.bytes += int64(len(rec))
	l.records++
	return nil
}

// switchTo points the append position at step's segment, reopening an
// existing segment at its tail (a worker that rejoins after a stall
// appends to the step it never finished). Callers hold l.mu.
func (l *Log) switchTo(step int) error {
	if l.f != nil && l.step == step {
		return nil
	}
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	path := l.SegmentPath(step)
	fct := l.ct
	if !codec.IsNone(l.cdc) {
		fct = diskio.PhysFor(l.ct)
		l.acct = diskio.NewAccountant(l.ct)
	}
	if _, err := os.Stat(path); err == nil {
		f, err := diskio.Open(path, fct)
		if err != nil {
			return err
		}
		size, err := f.Size()
		if err != nil {
			f.Close()
			return err
		}
		if codec.IsNone(l.cdc) {
			l.f, l.off = f, size
		} else {
			// Reopening a framed segment at its tail: the logical append
			// position is the sum of frame logical lengths, recovered by
			// re-reading the segment (a physical-only cost — the raw log's
			// reopen performs no data I/O, and neither does our logical
			// dimension).
			logical, phys, lerr := loadSegment(path, diskio.PhysFor(l.ct))
			if lerr != nil {
				f.Close()
				return fmt.Errorf("msglog: reopen %s: %w", path, lerr)
			}
			l.f, l.off, l.poff = f, int64(len(logical)), phys
		}
	} else {
		f, err := diskio.Create(path, fct)
		if err != nil {
			return err
		}
		l.f, l.off, l.poff = f, 0, 0
	}
	l.step = step
	return nil
}

// loadSegment reads one whole segment through the fault layer (charged
// to physCt as one sequential read) and returns its logical record
// bytes: frames are decoded when the segment is framed, raw bytes pass
// through. The sniff is unambiguous — a raw record starts with its kind
// byte (1 or 2), never with the frame magic's 'H'.
func loadSegment(path string, physCt *diskio.Counter) (logical []byte, physSize int64, err error) {
	f, err := diskio.OpenRead(path, physCt)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, 0, err
	}
	if size == 0 {
		return nil, 0, nil
	}
	buf := make([]byte, size)
	if _, err := f.ReadAtClass(buf, 0, diskio.SeqRead); err != nil {
		return nil, 0, err
	}
	if buf[0] != 'H' {
		return buf, size, nil // raw segment
	}
	var out []byte
	rest := buf
	for len(rest) > 0 {
		var n int
		out, n, err = codec.DecodeFrame(out, rest)
		if err != nil {
			return nil, 0, err
		}
		rest = rest[n:]
	}
	return out, size, nil
}

// PushTo reads every push record worker dst was sent during superstep
// step, concatenated in append order (one record per flushed packet).
// A missing segment or no matching record yields an empty slice: the
// sender simply had nothing for dst that superstep. Read bytes are
// charged to rct as sequential reads.
func (l *Log) PushTo(step, dst int, rct *diskio.Counter) ([]comm.Msg, error) {
	var out []comm.Msg
	err := l.scan(step, rct, func(kind Kind, key uint32, msgs []comm.Msg) bool {
		if kind == KindPush && key == uint32(dst) {
			out = append(out, msgs...)
		}
		return true
	})
	return out, err
}

// PullResp reads the pull response this worker served for global Vblock
// block at superstep step. Only the first matching record counts —
// duplicate RPC deliveries under a faulty transport may log twice, and
// both copies are identical by construction. ok is false when the
// segment holds no record for block (the survivor served nothing).
func (l *Log) PullResp(step, block int, rct *diskio.Counter) ([]comm.Msg, bool, error) {
	var out []comm.Msg
	found := false
	err := l.scan(step, rct, func(kind Kind, key uint32, msgs []comm.Msg) bool {
		if kind == KindPullResp && key == uint32(block) {
			out, found = msgs, true
			return false
		}
		return true
	})
	return out, found, err
}

// scan reads and verifies step's whole segment, invoking fn per record
// until it returns false. The full-segment sequential read is the honest
// cost: survivors stream a segment once per replayed superstep.
func (l *Log) scan(step int, rct *diskio.Counter, fn func(kind Kind, key uint32, msgs []comm.Msg) bool) error {
	path := l.SegmentPath(step)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var buf []byte
	if codec.IsNone(l.cdc) {
		f, err := diskio.Open(path, rct)
		if err != nil {
			return err
		}
		defer f.Close()
		size, err := f.Size()
		if err != nil {
			return err
		}
		buf = make([]byte, size)
		if size > 0 {
			if _, err := f.ReadAtClass(buf, 0, diskio.SeqRead); err != nil {
				return err
			}
		}
	} else {
		logical, _, err := loadSegment(path, diskio.PhysFor(rct))
		if err != nil {
			return fmt.Errorf("msglog: %s: %w", path, err)
		}
		buf = logical
		if len(buf) > 0 {
			// The raw log charges the whole-segment sequential read; the
			// logical dimension charges the same record bytes.
			diskio.NewAccountant(rct).ReadAtClass(int64(len(buf)), 0, diskio.SeqRead)
		}
	}
	off := 0
	for off < len(buf) {
		kind, key, recStep, msgs, n, err := decodeRecord(buf[off:])
		if err != nil {
			return fmt.Errorf("msglog: %s at offset %d: %w", path, off, err)
		}
		if recStep != step {
			return fmt.Errorf("msglog: %s at offset %d: record for superstep %d in segment %d", path, off, recStep, step)
		}
		off += n
		if !fn(kind, key, msgs) {
			return nil
		}
	}
	return nil
}

// Prune deletes every segment for supersteps <= through. Called when the
// checkpoint coordinator commits superstep through: the snapshot's parked
// inbox messages subsume every logged packet up to and including that
// superstep, and confined replay never reaches further back. Returns how
// many segments were removed; removal errors are joined, not fatal —
// callers log them and carry on with a larger-than-necessary log.
func (l *Log) Prune(through int) (int, error) {
	l.mu.Lock()
	if l.f != nil && l.step <= through {
		l.f.Close()
		l.f = nil
		l.step = -1
	}
	l.mu.Unlock()
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	var errs []error
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		s, perr := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log"))
		if perr != nil || s > through {
			continue
		}
		if rerr := os.Remove(filepath.Join(l.dir, name)); rerr != nil {
			errs = append(errs, rerr)
			continue
		}
		removed++
	}
	return removed, errors.Join(errs...)
}

// Sync fsyncs every segment file still in the log — the open one and
// the closed per-superstep segments pruning has not yet removed. The
// checkpoint coordinator calls this on every worker's log before
// writing its commit marker: after the commit, confined replay trusts
// segments newer than the restored checkpoint, and a segment the
// platter never saw would silently replay as "nothing sent". Each flush
// is charged to the log's counter as one zero-byte sequential-write op
// (LogIO accounting).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("msglog: %s: %w", l.SegmentPath(l.step), err)
		}
		if !codec.IsNone(l.cdc) {
			// The open framed segment's handle charges the physical twin;
			// the logical dimension records the same zero-byte sync op.
			l.acct.Sync()
		}
	}
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		if l.f != nil {
			if s, perr := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log")); perr == nil && s == l.step {
				continue // already synced through the open handle
			}
		}
		if err := diskio.SyncFile(filepath.Join(l.dir, name), l.ct); err != nil {
			return fmt.Errorf("msglog: %s: %w", name, err)
		}
	}
	return nil
}

// BytesLogged reports the total record bytes appended so far.
func (l *Log) BytesLogged() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// SegmentBytes reports the *logical* record bytes of every segment
// still in the log (pruned segments excluded). This is the size of the
// log slice a partition adoption must ship to the surviving host —
// BytesLogged is the wrong number there, being a lifetime total that
// still counts pruned segments. For framed segments the logical size is
// recovered from the frame headers (a physical-only re-read), so the
// migration cost model sees the same bytes whatever codec is active.
func (l *Log) SegmentBytes() (int64, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		if codec.IsNone(l.cdc) {
			info, err := e.Info()
			if err != nil {
				return 0, err
			}
			total += info.Size()
			continue
		}
		logical, _, err := loadSegment(filepath.Join(l.dir, name), diskio.PhysFor(l.ct))
		if err != nil {
			return 0, err
		}
		total += int64(len(logical))
	}
	return total, nil
}

// Records reports the number of records appended so far.
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Close releases the open segment, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	l.step = -1
	return err
}

// encodeRecord frames one record:
//
//	kind(1) step(4) key(4) count(4) count×[dst(4) val(8)] crc(4)
//
// The CRC covers everything before it, so any torn or flipped byte fails
// verification.
func encodeRecord(step int, kind Kind, key uint32, msgs []comm.Msg) []byte {
	buf := make([]byte, 0, recHeaderSize+len(msgs)*msgSize+4)
	buf = append(buf, byte(kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(step))
	buf = binary.LittleEndian.AppendUint32(buf, key)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(msgs)))
	for _, m := range msgs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Dst))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Val))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeRecord parses and CRC-verifies one record from the front of b,
// reporting how many bytes it consumed.
func decodeRecord(b []byte) (kind Kind, key uint32, step int, msgs []comm.Msg, n int, err error) {
	if len(b) < recHeaderSize+4 {
		return 0, 0, 0, nil, 0, fmt.Errorf("truncated record header (%d bytes)", len(b))
	}
	kind = Kind(b[0])
	step = int(binary.LittleEndian.Uint32(b[1:]))
	key = binary.LittleEndian.Uint32(b[5:])
	count := int(binary.LittleEndian.Uint32(b[9:]))
	n = recHeaderSize + count*msgSize + 4
	if count < 0 || n > len(b) {
		return 0, 0, 0, nil, 0, fmt.Errorf("truncated record body (count %d, %d bytes left)", count, len(b))
	}
	body := b[:n-4]
	want := binary.LittleEndian.Uint32(b[n-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return 0, 0, 0, nil, 0, fmt.Errorf("CRC mismatch (got %08x, want %08x)", got, want)
	}
	if kind != KindPush && kind != KindPullResp {
		return 0, 0, 0, nil, 0, fmt.Errorf("unknown record kind %d", kind)
	}
	msgs = make([]comm.Msg, count)
	off := recHeaderSize
	for i := range msgs {
		msgs[i] = comm.Msg{
			Dst: graph.VertexID(binary.LittleEndian.Uint32(b[off:])),
			Val: math.Float64frombits(binary.LittleEndian.Uint64(b[off+4:])),
		}
		off += msgSize
	}
	return kind, key, step, msgs, n, nil
}
