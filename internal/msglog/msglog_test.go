package msglog

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hybridgraph/internal/comm"
	"hybridgraph/internal/diskio"
)

func openTest(t *testing.T) (*Log, *diskio.Counter) {
	t.Helper()
	ct := &diskio.Counter{}
	l, err := Open(filepath.Join(t.TempDir(), "msglog"), ct, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, ct
}

func msgsEqual(a, b []comm.Msg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPushRoundTrip(t *testing.T) {
	l, ct := openTest(t)
	p1 := []comm.Msg{{Dst: 1, Val: 0.5}, {Dst: 9, Val: -3}}
	p2 := []comm.Msg{{Dst: 4, Val: 7}}
	other := []comm.Msg{{Dst: 2, Val: 1}}
	if err := l.AppendPush(3, 1, p1); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPush(3, 2, other); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPush(3, 1, p2); err != nil {
		t.Fatal(err)
	}
	rct := &diskio.Counter{}
	got, err := l.PushTo(3, 1, rct)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]comm.Msg(nil), p1...), p2...)
	if !msgsEqual(got, want) {
		t.Fatalf("PushTo = %v, want %v", got, want)
	}
	if rct.Snapshot().Total() == 0 {
		t.Fatal("read bytes were not charged to the read counter")
	}
	if ct.Snapshot().Bytes[diskio.SeqWrite] == 0 {
		t.Fatal("append bytes were not charged as sequential writes")
	}
	// Other destination, other step: isolated.
	if got, err := l.PushTo(3, 0, rct); err != nil || len(got) != 0 {
		t.Fatalf("PushTo(3,0) = %v, %v, want empty", got, err)
	}
	if got, err := l.PushTo(4, 1, rct); err != nil || len(got) != 0 {
		t.Fatalf("PushTo(4,1) = %v, %v, want empty (missing segment)", got, err)
	}
}

func TestPullRespFirstRecordWins(t *testing.T) {
	l, _ := openTest(t)
	resp := []comm.Msg{{Dst: 11, Val: 2.5}, {Dst: 12, Val: 4}}
	// A duplicated RPC delivery logs the identical response twice; the
	// reader must take the first copy only.
	if err := l.AppendPullResp(5, 7, resp); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPullResp(5, 7, resp); err != nil {
		t.Fatal(err)
	}
	rct := &diskio.Counter{}
	got, ok, err := l.PullResp(5, 7, rct)
	if err != nil || !ok {
		t.Fatalf("PullResp = ok %v, err %v", ok, err)
	}
	if !msgsEqual(got, resp) {
		t.Fatalf("PullResp = %v, want %v", got, resp)
	}
	if _, ok, err := l.PullResp(5, 8, rct); err != nil || ok {
		t.Fatalf("PullResp(5,8) ok=%v err=%v, want absent", ok, err)
	}
}

func TestSegmentReopenAfterStepChange(t *testing.T) {
	l, _ := openTest(t)
	if err := l.AppendPush(2, 0, []comm.Msg{{Dst: 1, Val: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPush(3, 0, []comm.Msg{{Dst: 2, Val: 2}}); err != nil {
		t.Fatal(err)
	}
	// A rejoining worker appends to an earlier step's segment again.
	if err := l.AppendPush(2, 0, []comm.Msg{{Dst: 3, Val: 3}}); err != nil {
		t.Fatal(err)
	}
	rct := &diskio.Counter{}
	got, err := l.PushTo(2, 0, rct)
	if err != nil {
		t.Fatal(err)
	}
	want := []comm.Msg{{Dst: 1, Val: 1}, {Dst: 3, Val: 3}}
	if !msgsEqual(got, want) {
		t.Fatalf("PushTo after reopen = %v, want %v", got, want)
	}
}

func TestCorruptionDetected(t *testing.T) {
	l, _ := openTest(t)
	if err := l.AppendPush(2, 1, []comm.Msg{{Dst: 5, Val: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := l.SegmentPath(2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[recHeaderSize] ^= 0xff // flip a payload byte
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PushTo(2, 1, &diskio.Counter{}); err == nil {
		t.Fatal("corrupted record passed CRC verification")
	}
}

func TestPrune(t *testing.T) {
	l, _ := openTest(t)
	for step := 1; step <= 6; step++ {
		if err := l.AppendPush(step, 0, []comm.Msg{{Dst: 1, Val: float64(step)}}); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := l.Prune(4)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 {
		t.Fatalf("Prune removed %d segments, want 4", removed)
	}
	for step := 1; step <= 4; step++ {
		if _, err := os.Stat(l.SegmentPath(step)); !os.IsNotExist(err) {
			t.Fatalf("segment %d survived pruning", step)
		}
	}
	rct := &diskio.Counter{}
	for step := 5; step <= 6; step++ {
		got, err := l.PushTo(step, 0, rct)
		if err != nil || len(got) != 1 {
			t.Fatalf("segment %d unreadable after prune: %v, %v", step, got, err)
		}
	}
	// The log keeps appending after a prune closed its open segment.
	if err := l.AppendPush(7, 0, []comm.Msg{{Dst: 2, Val: 7}}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	l, _ := openTest(t)
	var wg sync.WaitGroup
	const per = 50
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.AppendPullResp(3, g, []comm.Msg{{Dst: 1, Val: float64(i)}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Records() != 4*per {
		t.Fatalf("Records = %d, want %d", l.Records(), 4*per)
	}
	// Every record must still parse (no interleaved torn writes).
	rct := &diskio.Counter{}
	for g := 0; g < 4; g++ {
		if _, ok, err := l.PullResp(3, g, rct); err != nil || !ok {
			t.Fatalf("block %d: ok=%v err=%v", g, ok, err)
		}
	}
}
