package lru

import (
	"math/rand"
	"testing"
)

func TestGetPutEviction(t *testing.T) {
	c := New(2)
	c.Put(1, 10)
	c.Put(2, 20)
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %v,%v", v, ok)
	}
	// 1 is now MRU; inserting 3 evicts 2.
	c.Put(3, 30)
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatalf("1 should survive, got %v,%v", v, ok)
	}
	if v, ok := c.Get(3); !ok || v != 30 {
		t.Fatalf("Get(3) = %v,%v", v, ok)
	}
	hits, misses, evict := c.Stats()
	if hits != 3 || misses != 1 || evict != 1 {
		t.Fatalf("stats = %d,%d,%d", hits, misses, evict)
	}
}

func TestPutUpdatesExisting(t *testing.T) {
	c := New(2)
	c.Put(1, 10)
	c.Put(1, 11)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if v, _ := c.Get(1); v != 11 {
		t.Fatalf("Get(1) = %v, want 11", v)
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New(0)
	c.Put(1, 10)
	if _, ok := c.Get(1); ok {
		t.Fatal("zero-capacity cache should always miss")
	}
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache should stay empty")
	}
}

func TestInvalidateAndClear(t *testing.T) {
	c := New(4)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Invalidate(1)
	if _, ok := c.Get(1); ok {
		t.Fatal("invalidated key still present")
	}
	c.Invalidate(99) // no-op
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("Clear left entries")
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("cleared key still present")
	}
}

func TestNeverExceedsCapacity(t *testing.T) {
	c := New(16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		c.Put(uint32(rng.Intn(100)), float64(i))
		if c.Len() > 16 {
			t.Fatalf("cache grew to %d entries", c.Len())
		}
	}
}

func TestLRUOrderIsRecencyNotInsertion(t *testing.T) {
	c := New(3)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	c.Get(1) // refresh 1: eviction order should now be 2,3,1
	c.Put(4, 4)
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted first")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 was refreshed and should survive")
	}
}
