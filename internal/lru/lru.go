// Package lru implements the least-recently-used vertex cache used by the
// pull baseline. The paper modifies GraphLab PowerGraph to keep a bounded
// number of vertices in memory under an LRU replacement strategy (Section
// 6, "The LRU replacing strategy is used to manage vertices in GraphLab
// PowerGraph"); cache misses become the random vertex reads that dominate
// pull's I/O cost in Fig. 10.
package lru

import "container/list"

// Cache is a fixed-capacity LRU map from uint32 keys to arbitrary values.
// Not safe for concurrent use; callers guard it.
type Cache struct {
	cap       int
	ll        *list.List
	items     map[uint32]*list.Element
	hits      int64
	misses    int64
	evictions int64
	onEvict   func(key uint32, val any)
}

// SetOnEvict installs a callback invoked for each evicted entry — the
// pull baseline uses it to write dirty vertex records back to disk.
func (c *Cache) SetOnEvict(fn func(key uint32, val any)) { c.onEvict = fn }

type entry struct {
	key uint32
	val any
}

// New returns a cache holding at most capacity entries. A capacity <= 0
// yields a cache that stores nothing (every lookup misses), which models
// the paper's fully disk-resident configurations.
func New(capacity int) *Cache {
	return &Cache{cap: capacity, ll: list.New(), items: make(map[uint32]*list.Element)}
}

// Cap reports the configured capacity.
func (c *Cache) Cap() int { return c.cap }

// Len reports the number of cached entries.
func (c *Cache) Len() int { return len(c.items) }

// Get looks a key up, promoting it to most-recently-used on a hit.
func (c *Cache) Get(key uint32) (any, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	c.misses++
	return nil, false
}

// Put inserts or updates a key, evicting the least-recently-used entry if
// the cache is full.
func (c *Cache) Put(key uint32, val any) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	if len(c.items) >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			e := oldest.Value.(*entry)
			c.ll.Remove(oldest)
			delete(c.items, e.key)
			c.evictions++
			if c.onEvict != nil {
				c.onEvict(e.key, e.val)
			}
		}
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
}

// Invalidate drops a key if present. Superstep boundaries invalidate
// broadcast values that changed.
func (c *Cache) Invalidate(key uint32) {
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// Clear drops every entry but keeps hit/miss statistics.
func (c *Cache) Clear() {
	c.ll.Init()
	c.items = make(map[uint32]*list.Element)
}

// Each calls fn for every cached entry, most- to least-recently used.
func (c *Cache) Each(fn func(key uint32, val any)) {
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		fn(e.key, e.val)
	}
}

// Stats reports hits, misses and evictions since creation.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}
