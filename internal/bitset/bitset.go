// Package bitset implements the fixed-size bit vectors HybridGraph uses
// for per-vertex flags (active-flag and responding-flag vectors, Section
// 4.2) and for the per-Vblock destination bitmaps x_j in VE-BLOCK metadata
// (Section 4.1).
package bitset

import "sync/atomic"

// Set is a fixed-capacity bit vector. The zero value is unusable; call New.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set holding n bits, all clear.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len reports the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// SetAtomic sets bit i with a compare-and-swap loop, safe for concurrent
// SetAtomic calls on the same set — the parallel update scan's shards may
// share a word at their boundaries. Readers of bits written this way must
// be separated from the writers by a happens-before edge (the superstep
// barrier); mixing SetAtomic with the plain mutators concurrently is not
// safe.
func (s *Set) SetAtomic(i int) {
	w := &s.words[i>>6]
	mask := uint64(1) << (uint(i) & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 || atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// Clear clears bit i.
func (s *Set) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports bit i.
func (s *Set) Get(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count reports the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += popcount(w)
	}
	return c
}

// Any reports whether any bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Words exposes the underlying word storage. Callers serializing or
// restoring the set (checkpointing) read or overwrite it directly; the
// slice aliases the set's memory.
func (s *Set) Words() []uint64 { return s.words }

// CopyFrom overwrites s with o's bits. The sets must have equal capacity.
func (s *Set) CopyFrom(o *Set) {
	copy(s.words, o.words)
}

// MemBytes reports the approximate memory footprint, used by the paper's
// "metadata memory is negligible" accounting.
func (s *Set) MemBytes() int64 { return int64(len(s.words) * 8) }

func popcount(x uint64) int {
	// Hacker's Delight population count; avoids importing math/bits for a
	// single call site and keeps the package dependency-free.
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}
