package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetClearGet(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 129} {
		if s.Get(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 3 {
		t.Fatalf("Clear(64) failed: get=%v count=%d", s.Get(64), s.Count())
	}
	if !s.Any() {
		t.Fatal("Any should be true")
	}
	s.Reset()
	if s.Any() || s.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestCountMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		s := New(n)
		ref := map[int]bool{}
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				k := rng.Intn(n)
				s.Set(k)
				ref[k] = true
			case 1:
				k := rng.Intn(n)
				s.Clear(k)
				delete(ref, k)
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for k := range ref {
			if !s.Get(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(70), New(70)
	a.Set(3)
	a.Set(69)
	b.CopyFrom(a)
	if !b.Get(3) || !b.Get(69) || b.Count() != 2 {
		t.Fatal("CopyFrom did not copy bits")
	}
	b.Clear(3)
	if !a.Get(3) {
		t.Fatal("CopyFrom aliased storage")
	}
}

func TestMemBytes(t *testing.T) {
	if got := New(64).MemBytes(); got != 8 {
		t.Fatalf("MemBytes(64 bits) = %d, want 8", got)
	}
	if got := New(65).MemBytes(); got != 16 {
		t.Fatalf("MemBytes(65 bits) = %d, want 16", got)
	}
}

func TestLenAndZeroSize(t *testing.T) {
	s := New(0)
	if s.Len() != 0 || s.Any() {
		t.Fatal("empty set misbehaves")
	}
	if New(10).Len() != 10 {
		t.Fatal("Len wrong")
	}
}
