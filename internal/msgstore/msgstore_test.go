package msgstore

import (
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"hybridgraph/internal/comm"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
)

func newInbox(t *testing.T, capacity int) (*Inbox, *diskio.Counter) {
	t.Helper()
	var ct diskio.Counter
	return NewInbox(filepath.Join(t.TempDir(), "spill.dat"), &ct, capacity, nil), &ct
}

func TestInboxInMemory(t *testing.T) {
	b, ct := newInbox(t, 10)
	for i := 0; i < 5; i++ {
		if err := b.Add(comm.Msg{Dst: graph.VertexID(i % 2), Val: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Spilled() != 0 || b.Received() != 5 {
		t.Fatalf("spilled=%d received=%d", b.Spilled(), b.Received())
	}
	msgs, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs[0]) != 3 || len(msgs[1]) != 2 {
		t.Fatalf("msgs = %v", msgs)
	}
	if ct.Total() != 0 {
		t.Fatalf("in-memory inbox did I/O: %d bytes", ct.Total())
	}
}

func TestInboxSpillsOverCapacity(t *testing.T) {
	b, ct := newInbox(t, 3)
	for i := 0; i < 10; i++ {
		if err := b.Add(comm.Msg{Dst: graph.VertexID(i), Val: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Spilled() != 7 {
		t.Fatalf("spilled = %d, want 7", b.Spilled())
	}
	// Spill writes are charged as random writes (poor destination
	// locality), reads back as sequential.
	if got := ct.Bytes(diskio.RandWrite); got != 7*recSize {
		t.Fatalf("RandWrite = %d, want %d", got, 7*recSize)
	}
	msgs, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 10 {
		t.Fatalf("drained %d destinations, want 10", len(msgs))
	}
	for i := 0; i < 10; i++ {
		vals := msgs[graph.VertexID(i)]
		if len(vals) != 1 || vals[0] != float64(i) {
			t.Fatalf("dst %d vals = %v", i, vals)
		}
	}
	if got := ct.Bytes(diskio.SeqRead); got != 7*recSize {
		t.Fatalf("SeqRead = %d, want %d", got, 7*recSize)
	}
}

func TestInboxUnlimitedAndAlwaysSpill(t *testing.T) {
	unlimited, _ := newInbox(t, 0)
	for i := 0; i < 100; i++ {
		if err := unlimited.Add(comm.Msg{Dst: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if unlimited.Spilled() != 0 {
		t.Fatal("capacity 0 should never spill")
	}
	always, _ := newInbox(t, -1)
	if err := always.Add(comm.Msg{Dst: 1, Val: 2}); err != nil {
		t.Fatal(err)
	}
	if always.Spilled() != 1 {
		t.Fatal("negative capacity should always spill")
	}
	msgs, err := always.Drain()
	if err != nil || msgs[1][0] != 2 {
		t.Fatalf("drain after spill: %v, %v", msgs, err)
	}
}

func TestInboxReusableAcrossSupersteps(t *testing.T) {
	b, _ := newInbox(t, 2)
	for round := 0; round < 3; round++ {
		for i := 0; i < 5; i++ {
			if err := b.Add(comm.Msg{Dst: graph.VertexID(i), Val: float64(round)}); err != nil {
				t.Fatal(err)
			}
		}
		msgs, err := b.Drain()
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 5 {
			t.Fatalf("round %d drained %d", round, len(msgs))
		}
		if b.Received() != 0 || b.Spilled() != 0 || b.MaxMemBytes() != 0 {
			t.Fatal("Drain should reset the inbox")
		}
	}
}

func TestInboxConcurrentAdd(t *testing.T) {
	b, _ := newInbox(t, 100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Add(comm.Msg{Dst: graph.VertexID(i), Val: float64(g)})
			}
		}(g)
	}
	wg.Wait()
	if b.Received() != 1600 {
		t.Fatalf("received = %d, want 1600", b.Received())
	}
	msgs, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, vals := range msgs {
		total += len(vals)
	}
	if total != 1600 {
		t.Fatalf("drained %d messages, want 1600", total)
	}
}

func TestOnlineInboxCombinesHot(t *testing.T) {
	cold, ct := newInbox(t, -1)
	hot := map[graph.VertexID]bool{1: true, 2: true}
	o := NewOnlineInbox(cold, hot, func(a, b float64) float64 { return a + b })
	for i := 0; i < 10; i++ {
		if err := o.Add(comm.Msg{Dst: 1, Val: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Add(comm.Msg{Dst: 5, Val: 3}); err != nil { // cold → spill
		t.Fatal(err)
	}
	if o.OnlineCount() != 10 || o.Spilled() != 1 {
		t.Fatalf("online=%d spilled=%d", o.OnlineCount(), o.Spilled())
	}
	if ct.Bytes(diskio.RandWrite) != recSize {
		t.Fatalf("cold spill bytes = %d", ct.Bytes(diskio.RandWrite))
	}
	msgs, err := o.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs[1]) != 1 || msgs[1][0] != 10 {
		t.Fatalf("hot vertex combined to %v, want [10]", msgs[1])
	}
	if msgs[5][0] != 3 {
		t.Fatalf("cold vertex = %v", msgs[5])
	}
	if o.OnlineCount() != 0 {
		t.Fatal("Drain should reset online count")
	}
}

func TestOnlineInboxReceivedCountsMessages(t *testing.T) {
	// Regression: Received used to report the number of distinct hot
	// destinations rather than the number of messages received, so any
	// combining made the count collapse (10 messages to one hot vertex
	// counted as 1) while cold deliveries were dropped entirely.
	cold, _ := newInbox(t, -1)
	hot := map[graph.VertexID]bool{1: true, 2: true}
	o := NewOnlineInbox(cold, hot, func(a, b float64) float64 { return a + b })
	for i := 0; i < 10; i++ {
		if err := o.Add(comm.Msg{Dst: 1, Val: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := o.Add(comm.Msg{Dst: 2, Val: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := o.Add(comm.Msg{Dst: 5, Val: 1}); err != nil { // cold → spill
			t.Fatal(err)
		}
	}
	if got := o.Received(); got != 15 {
		t.Fatalf("Received = %d, want 15 (10+3 combined online, 2 cold)", got)
	}
	if _, err := o.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := o.Received(); got != 0 {
		t.Fatalf("Received after Drain = %d, want 0", got)
	}
}

func TestOnlineInboxFoldsColdStragglers(t *testing.T) {
	// A hot vertex's messages may land in the cold inbox before the hot
	// set is consulted elsewhere; Drain must fold them into one value.
	cold, _ := newInbox(t, 0)
	hot := map[graph.VertexID]bool{1: true}
	o := NewOnlineInbox(cold, hot, func(a, b float64) float64 { return a + b })
	cold.Add(comm.Msg{Dst: 1, Val: 5}) // bypasses the online path
	o.Add(comm.Msg{Dst: 1, Val: 2})
	msgs, err := o.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs[1]) != 1 || msgs[1][0] != 7 {
		t.Fatalf("folded = %v, want [7]", msgs[1])
	}
}

func TestMaxMemBytesTracksPeak(t *testing.T) {
	b, _ := newInbox(t, 4)
	for i := 0; i < 10; i++ {
		b.Add(comm.Msg{Dst: graph.VertexID(i)})
	}
	if got := b.MaxMemBytes(); got != 4*recSize {
		t.Fatalf("MaxMemBytes = %d, want %d", got, 4*recSize)
	}
}

func TestInboxRoundTripProperty(t *testing.T) {
	f := func(dsts []uint8, capRaw uint8) bool {
		capacity := int(capRaw % 20)
		var ct diskio.Counter
		b := NewInbox(filepath.Join(t.TempDir(), "p.dat"), &ct, capacity, nil)
		want := map[graph.VertexID]int{}
		for i, d := range dsts {
			m := comm.Msg{Dst: graph.VertexID(d % 32), Val: float64(i)}
			if err := b.Add(m); err != nil {
				return false
			}
			want[m.Dst]++
		}
		got, err := b.Drain()
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for dst, n := range want {
			if len(got[dst]) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
