// Package msgstore implements the receiver-side message stores of the
// push engines. An Inbox buffers up to B_i messages in memory; overflow is
// spilled to disk with random-write cost — the poor temporal locality of
// messages across destination vertices is the I/O problem the whole paper
// attacks — and read back sequentially at the start of the next superstep
// (the 2·IO(M_disk) term of Eq. 7, split across srw and ssr exactly as
// Eq. 11 splits it). An OnlineInbox adds MOCgraph's message online
// computing: messages for a configured hot set of vertices are folded into
// an in-memory accumulator immediately and never touch disk.
package msgstore

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"

	"hybridgraph/internal/codec"
	"hybridgraph/internal/comm"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/obs"
)

const recSize = 12 // dst uint32 + val float64

// recSize is this store's on-disk record layout while comm.MsgWireSize is
// the fabric's wire accounting; Q^t, Spilled and MdiskW are only coherent
// if the two agree. These constant conversions fail to compile the moment
// the constants diverge in either direction.
const (
	_ = uint(recSize - comm.MsgWireSize)
	_ = uint(comm.MsgWireSize - recSize)
)

// SortLists canonicalises a drained message map by sorting each vertex's
// list ascending, fanning the independent lists across up to p goroutines.
// Delivery order depends on goroutine interleaving across senders and
// floating-point update functions are order-sensitive, so every engine
// sorts before consuming; each list is sorted in isolation, which makes
// the result bit-identical for every p (including 1).
func SortLists(m map[graph.VertexID][]float64, p int) {
	if p <= 1 || len(m) <= 1 {
		for _, vals := range m {
			sort.Float64s(vals)
		}
		return
	}
	lists := make([][]float64, 0, len(m))
	for _, vals := range m {
		if len(vals) > 1 {
			lists = append(lists, vals)
		}
	}
	if p > len(lists) {
		p = len(lists)
	}
	if p <= 1 {
		for _, vals := range lists {
			sort.Float64s(vals)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for s := 0; s < p; s++ {
		go func(s int) {
			defer wg.Done()
			for i := s; i < len(lists); i += p {
				sort.Float64s(lists[i])
			}
		}(s)
	}
	wg.Wait()
}

// spillFile is the spill backend: the raw accounted file, or a
// compressed codec.SpillFile charging identical logical bytes while
// staging compressed frames on the counter's physical twin. Records are
// appended in arrival order either way; ReadAll reassembles the full
// record stream.
type spillFile interface {
	Append(rec []byte) error
	ReadAll(p []byte) error
	Close() error
}

// rawSpill is the codec-"none" backend, preserving the historical
// charge sequence exactly: one random write per record at the record's
// offset, one sequential whole-file read at drain.
type rawSpill struct {
	f   *diskio.File
	off int64
}

func (r *rawSpill) Append(rec []byte) error {
	_, err := r.f.WriteAtClass(rec, r.off, diskio.RandWrite)
	if err == nil {
		r.off += int64(len(rec))
	}
	return err
}

func (r *rawSpill) ReadAll(p []byte) error {
	_, err := r.f.ReadAtClass(p, 0, diskio.SeqRead)
	return err
}

func (r *rawSpill) Close() error { return r.f.Close() }

// Inbox is one worker's receive buffer for one superstep's incoming
// messages. Safe for concurrent Add from multiple senders.
type Inbox struct {
	mu       sync.Mutex
	ct       *diskio.Counter
	cdc      codec.Codec
	path     string
	capacity int // B_i in messages; <= 0 means unlimited (sufficient memory)
	mem      []comm.Msg
	spill    spillFile
	spillN   int64
	received int64
	maxMem   int64

	mSpilledMsgs  *obs.Counter // nil when metrics are disabled
	mSpilledBytes *obs.Counter
}

// SetMetrics wires the inbox's spill tallies into reg ("msgstore.*"
// counters, shared across inboxes). A nil registry disables them.
func (b *Inbox) SetMetrics(reg *obs.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mSpilledMsgs = reg.Counter("msgstore.spilled_msgs")
	b.mSpilledBytes = reg.Counter("msgstore.spilled_bytes")
}

// NewInbox returns an inbox spilling to path once capacity messages are
// buffered: capacity 0 means unlimited (sufficient memory), a negative
// capacity means every message spills (MOCgraph's "messages sent to
// disk-resident vertices reside on disk"). The spill file is created
// lazily; cdc selects its on-disk encoding (nil or codec.None = raw).
func NewInbox(path string, ct *diskio.Counter, capacity int, cdc codec.Codec) *Inbox {
	return &Inbox{ct: ct, cdc: cdc, path: path, capacity: capacity}
}

// Add accepts one message. Beyond capacity the message is spilled with
// random-write accounting.
func (b *Inbox) Add(m comm.Msg) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.received++
	if b.capacity == 0 || (b.capacity > 0 && len(b.mem) < b.capacity) {
		b.mem = append(b.mem, m)
		if n := int64(len(b.mem)) * recSize; n > b.maxMem {
			b.maxMem = n
		}
		return nil
	}
	return b.spillMsg(m)
}

// AddAll accepts a batch.
func (b *Inbox) AddAll(msgs []comm.Msg) error {
	for _, m := range msgs {
		if err := b.Add(m); err != nil {
			return err
		}
	}
	return nil
}

func (b *Inbox) spillMsg(m comm.Msg) error {
	if b.spill == nil {
		if codec.IsNone(b.cdc) {
			f, err := diskio.Create(b.path, b.ct)
			if err != nil {
				return err
			}
			b.spill = &rawSpill{f: f}
		} else {
			b.spill = codec.NewSpillFile(b.path, b.ct, b.cdc)
		}
	}
	var rec [recSize]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(m.Dst))
	binary.LittleEndian.PutUint64(rec[4:], math.Float64bits(m.Val))
	// Charged as a random write: Giraph's spilled messages have no
	// destination locality, which is what makes push I/O-inefficient
	// (Section 1, "expensive random writes").
	if err := b.spill.Append(rec[:]); err != nil {
		return err
	}
	b.spillN++
	b.mSpilledMsgs.Inc()
	b.mSpilledBytes.Add(recSize)
	return nil
}

// Received reports the number of messages accepted so far.
func (b *Inbox) Received() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.received
}

// Spilled reports the number of messages that went to disk (|M_disk|).
func (b *Inbox) Spilled() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spillN
}

// MaxMemBytes reports the peak in-memory footprint of the buffer.
func (b *Inbox) MaxMemBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.maxMem
}

// Drain returns all buffered messages grouped by destination vertex,
// reading any spill back sequentially, and resets the inbox for reuse.
func (b *Inbox) Drain() (map[graph.VertexID][]float64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[graph.VertexID][]float64, len(b.mem))
	for _, m := range b.mem {
		out[m.Dst] = append(out[m.Dst], m.Val)
	}
	if b.spill != nil {
		buf := make([]byte, b.spillN*recSize)
		if err := b.spill.ReadAll(buf); err != nil {
			return nil, err
		}
		for o := int64(0); o < int64(len(buf)); o += recSize {
			dst := graph.VertexID(binary.LittleEndian.Uint32(buf[o:]))
			val := math.Float64frombits(binary.LittleEndian.Uint64(buf[o+4:]))
			out[dst] = append(out[dst], val)
		}
		if err := b.spill.Close(); err != nil {
			return nil, err
		}
		b.spill = nil
	}
	b.mem = b.mem[:0]
	b.spillN = 0
	b.received = 0
	b.maxMem = 0 // peak is tracked per drain interval (one superstep)
	return out, nil
}

// Pending returns a copy of every buffered message — memory and spill —
// without resetting the inbox, in arrival order. Used by checkpointing to
// capture parked messages; the spill re-read is charged as a sequential
// read like any other checkpoint byte.
func (b *Inbox) Pending() ([]comm.Msg, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]comm.Msg, len(b.mem), len(b.mem)+int(b.spillN))
	copy(out, b.mem)
	if b.spill != nil && b.spillN > 0 {
		buf := make([]byte, b.spillN*recSize)
		if err := b.spill.ReadAll(buf); err != nil {
			return nil, err
		}
		for o := int64(0); o < int64(len(buf)); o += recSize {
			out = append(out, comm.Msg{
				Dst: graph.VertexID(binary.LittleEndian.Uint32(buf[o:])),
				Val: math.Float64frombits(binary.LittleEndian.Uint64(buf[o+4:])),
			})
		}
	}
	return out, nil
}

// OnlineInbox implements MOCgraph's message online computing: messages to
// vertices in the hot set are combined into an in-memory accumulator the
// moment they arrive (valid only for commutative, associative messages);
// messages to cold vertices fall through to a regular spilling inbox.
type OnlineInbox struct {
	mu      sync.Mutex
	hot     map[graph.VertexID]bool
	combine func(a, b float64) float64
	acc     map[graph.VertexID]float64
	cold    *Inbox
	online  int64

	mOnlineMsgs     *obs.Counter // nil when metrics are disabled
	mOnlineCombines *obs.Counter
}

// SetMetrics wires the online-computing tallies (and the cold inbox's
// spill tallies) into reg. A nil registry disables them.
func (o *OnlineInbox) SetMetrics(reg *obs.Registry) {
	o.mu.Lock()
	o.mOnlineMsgs = reg.Counter("msgstore.online_msgs")
	o.mOnlineCombines = reg.Counter("msgstore.online_combines")
	o.mu.Unlock()
	o.cold.SetMetrics(reg)
}

// NewOnlineInbox wraps cold with online computing for the hot vertices.
// combine must be a commutative, associative reducer.
func NewOnlineInbox(cold *Inbox, hot map[graph.VertexID]bool, combine func(a, b float64) float64) *OnlineInbox {
	return &OnlineInbox{hot: hot, combine: combine, acc: make(map[graph.VertexID]float64), cold: cold}
}

// Add accepts one message, consuming it online when possible.
func (o *OnlineInbox) Add(m comm.Msg) error {
	o.mu.Lock()
	if o.hot[m.Dst] {
		if v, ok := o.acc[m.Dst]; ok {
			o.acc[m.Dst] = o.combine(v, m.Val)
			o.mOnlineCombines.Inc()
		} else {
			o.acc[m.Dst] = m.Val
		}
		o.online++
		o.mOnlineMsgs.Inc()
		o.mu.Unlock()
		return nil
	}
	o.mu.Unlock()
	return o.cold.Add(m)
}

// Received reports the number of messages accepted (online + cold). Note
// this counts messages, not accumulator slots: several messages combined
// into one hot destination still each count once.
func (o *OnlineInbox) Received() int64 {
	o.mu.Lock()
	online := o.online
	o.mu.Unlock()
	return online + o.cold.Received()
}

// OnlineCount reports how many messages were consumed online.
func (o *OnlineInbox) OnlineCount() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.online
}

// Spilled reports how many messages reached disk despite online computing.
func (o *OnlineInbox) Spilled() int64 { return o.cold.Spilled() }

// MaxMemBytes reports the peak memory of accumulator plus cold buffer.
func (o *OnlineInbox) MaxMemBytes() int64 {
	o.mu.Lock()
	n := int64(len(o.acc)) * recSize
	o.mu.Unlock()
	return n + o.cold.MaxMemBytes()
}

// Pending returns a copy of every buffered message without resetting: the
// cold inbox's messages followed by the online accumulator's combined
// values, the latter in ascending destination order so checkpoint bytes
// are deterministic.
func (o *OnlineInbox) Pending() ([]comm.Msg, error) {
	out, err := o.cold.Pending()
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	hot := make([]comm.Msg, 0, len(o.acc))
	for dst, v := range o.acc {
		hot = append(hot, comm.Msg{Dst: dst, Val: v})
	}
	o.mu.Unlock()
	sort.Slice(hot, func(i, j int) bool { return hot[i].Dst < hot[j].Dst })
	return append(out, hot...), nil
}

// Drain merges the online accumulator with the cold inbox's contents and
// resets both.
func (o *OnlineInbox) Drain() (map[graph.VertexID][]float64, error) {
	out, err := o.cold.Drain()
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for dst, v := range o.acc {
		// Fold any cold stragglers for a hot vertex into the accumulator
		// value so the consumer sees one combined message.
		for _, c := range out[dst] {
			v = o.combine(v, c)
		}
		out[dst] = append(out[dst][:0], v)
	}
	o.acc = make(map[graph.VertexID]float64)
	o.online = 0
	return out, nil
}
