package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in the whitespace-separated text edge-list format
// used by the paper's dataset sources: one "src dst weight" triple per
// line, preceded by a "# vertices N" header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d\n", g.NumVertices); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices; v++ {
		for _, h := range g.OutEdges(VertexID(v)) {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", v, h.Dst, h.Weight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text edge-list format. Lines starting with '#'
// are comments, except a "# vertices N" header which fixes the vertex
// count; without the header the count is max(id)+1. The weight column is
// optional and defaults to 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var edges []Edge
	n := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			var hn int
			if _, err := fmt.Sscanf(text, "# vertices %d", &hn); err == nil && hn > 0 {
				n = hn
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", line, text)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %v", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %v", line, err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", line, err)
			}
		}
		edges = append(edges, Edge{Src: VertexID(src), Dst: VertexID(dst), Weight: float32(w)})
		if int(src) >= n {
			n = int(src) + 1
		}
		if int(dst) >= n {
			n = int(dst) + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	bld := NewBuilder(n)
	for _, e := range edges {
		bld.AddEdge(e.Src, e.Dst, e.Weight)
	}
	return bld.Build(), nil
}

// SaveEdgeList writes g to a file in edge-list format.
func SaveEdgeList(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadEdgeList reads a graph from an edge-list file.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}
