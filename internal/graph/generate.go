package graph

import (
	"math/rand"
)

// GenRMAT generates a power-law directed graph with n vertices (rounded up
// to a power of two internally, then ids are mapped back into [0,n)) and
// approximately m edges using the R-MAT recursive quadrant model with
// partition probabilities a, b, c (d = 1-a-b-c). Social-network datasets in
// the paper (livej, orkut, twi, fri) are highly skewed; a=0.57, b=0.19,
// c=0.19 reproduces that skew. The generator is deterministic for a given
// seed.
func GenRMAT(n, m int, a, b, c float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	levels := 0
	for 1<<levels < n {
		levels++
	}
	bld := NewBuilder(n)
	for bld.Len() < m {
		src, dst := 0, 0
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				dst |= 1 << l
			case r < a+b+c:
				src |= 1 << l
			default:
				src |= 1 << l
				dst |= 1 << l
			}
		}
		src %= n
		dst %= n
		if src == dst {
			continue
		}
		bld.AddEdge(VertexID(src), VertexID(dst), randWeight(rng))
	}
	return bld.Build()
}

// GenWeb generates a web-like directed graph: vertices are grouped into
// hosts of hostSize pages; most edges stay within a host (strong locality,
// like the paper's wiki and uk web graphs), and the rest link to random
// pages on popular hosts. Deterministic for a given seed.
func GenWeb(n, m, hostSize int, intraProb float64, seed int64) *Graph {
	if hostSize < 2 {
		hostSize = 2
	}
	rng := rand.New(rand.NewSource(seed))
	hosts := (n + hostSize - 1) / hostSize
	bld := NewBuilder(n)
	for bld.Len() < m {
		src := rng.Intn(n)
		var dst int
		if rng.Float64() < intraProb {
			// Intra-host link: nearby id on the same host.
			host := src / hostSize
			lo := host * hostSize
			hi := lo + hostSize
			if hi > n {
				hi = n
			}
			dst = lo + rng.Intn(hi-lo)
		} else {
			// Cross-host link, biased toward low-id (popular) hosts.
			h := int(float64(hosts) * rng.Float64() * rng.Float64())
			lo := h * hostSize
			hi := lo + hostSize
			if hi > n {
				hi = n
			}
			dst = lo + rng.Intn(hi-lo)
		}
		if src == dst {
			continue
		}
		bld.AddEdge(VertexID(src), VertexID(dst), randWeight(rng))
	}
	return bld.Build()
}

// GenUniform generates an Erdős–Rényi style directed graph with n vertices
// and approximately m uniformly random edges. Used by property tests as a
// skew-free control.
func GenUniform(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n)
	for bld.Len() < m {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if src == dst {
			continue
		}
		bld.AddEdge(VertexID(src), VertexID(dst), randWeight(rng))
	}
	return bld.Build()
}

// GenChain generates a simple path 0→1→…→n-1 plus optional extra shortcut
// edges every stride vertices. Useful to force long-diameter Traversal
// behaviour (SSSP converges over ~n supersteps on a pure chain).
func GenChain(n, stride int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		bld.AddEdge(VertexID(i), VertexID(i+1), randWeight(rng))
	}
	if stride > 1 {
		for i := 0; i+stride < n; i += stride {
			bld.AddEdge(VertexID(i), VertexID(i+stride), randWeight(rng))
		}
	}
	return bld.Build()
}

func randWeight(rng *rand.Rand) float32 {
	// Weights in (0,1]; SSSP needs strictly positive weights.
	return float32(rng.Float64()*0.99 + 0.01)
}
