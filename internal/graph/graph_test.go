package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBuildsSortedCSR(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(2, 1, 1)
	b.AddEdge(0, 3, 1)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if got := g.OutDegree(0); got != 2 {
		t.Fatalf("OutDegree(0) = %d, want 2", got)
	}
	e := g.OutEdges(0)
	if e[0].Dst != 1 || e[1].Dst != 3 {
		t.Fatalf("OutEdges(0) = %v, want dsts 1,3", e)
	}
	if got := g.OutDegree(1); got != 0 {
		t.Fatalf("OutDegree(1) = %d, want 0", got)
	}
}

func TestBuilderDropsSelfLoopsAndOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1, 1) // self-loop
	b.AddEdge(5, 0, 1) // src out of range
	b.AddEdge(0, 9, 1) // dst out of range
	b.AddEdge(0, 2, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestReverseIsInvolution(t *testing.T) {
	g := GenUniform(100, 500, 7)
	rr := g.Reverse().Reverse()
	if rr.NumVertices != g.NumVertices || rr.NumEdges() != g.NumEdges() {
		t.Fatalf("double reverse changed size: %d/%d vs %d/%d",
			rr.NumVertices, rr.NumEdges(), g.NumVertices, g.NumEdges())
	}
	for v := 0; v < g.NumVertices; v++ {
		a, b := g.OutEdges(VertexID(v)), rr.OutEdges(VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed: %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i].Dst != b[i].Dst {
				t.Fatalf("vertex %d edge %d: dst %d vs %d", v, i, a[i].Dst, b[i].Dst)
			}
		}
	}
}

func TestReversePreservesEdgeCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 20 + int(seed%80+80)%80
		g := GenUniform(n, n*4, seed)
		r := g.Reverse()
		if r.NumEdges() != g.NumEdges() {
			return false
		}
		return r.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := GenRMAT(256, 1024, 0.57, 0.19, 0.19, 42)
	b := GenRMAT(256, 1024, 0.57, 0.19, 0.19, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("RMAT not deterministic: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			t.Fatalf("RMAT not deterministic at edge %d", i)
		}
	}
	c := GenWeb(256, 1024, 16, 0.8, 42)
	d := GenWeb(256, 1024, 16, 0.8, 42)
	if c.NumEdges() != d.NumEdges() {
		t.Fatal("Web generator not deterministic")
	}
}

func TestRMATIsSkewedWebIsLocal(t *testing.T) {
	rmat := GenRMAT(2048, 16384, 0.6, 0.15, 0.15, 1)
	uni := GenUniform(2048, 16384, 1)
	sr, su := Stats(rmat), Stats(uni)
	if sr.Gini <= su.Gini {
		t.Fatalf("RMAT gini %.3f should exceed uniform gini %.3f", sr.Gini, su.Gini)
	}
	if sr.Max <= su.Max {
		t.Fatalf("RMAT max degree %d should exceed uniform max %d", sr.Max, su.Max)
	}
	web := GenWeb(2048, 16384, 32, 0.8, 1)
	intra := 0
	for v := 0; v < web.NumVertices; v++ {
		for _, h := range web.OutEdges(VertexID(v)) {
			if v/32 == int(h.Dst)/32 {
				intra++
			}
		}
	}
	if frac := float64(intra) / float64(web.NumEdges()); frac < 0.6 {
		t.Fatalf("web graph intra-host fraction %.2f, want >= 0.6", frac)
	}
}

func TestGenChainDiameter(t *testing.T) {
	g := GenChain(50, 0, 3)
	if g.NumEdges() != 49 {
		t.Fatalf("chain edges = %d, want 49", g.NumEdges())
	}
	for v := 0; v+1 < 50; v++ {
		e := g.OutEdges(VertexID(v))
		if len(e) != 1 || e[0].Dst != VertexID(v+1) {
			t.Fatalf("vertex %d edges %v", v, e)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := GenRMAT(128, 512, 0.57, 0.19, 0.19, 5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices != g.NumVertices || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d vs %d/%d",
			got.NumVertices, got.NumEdges(), g.NumVertices, g.NumEdges())
	}
	for i := range g.Adj {
		if got.Adj[i].Dst != g.Adj[i].Dst {
			t.Fatalf("edge %d dst %d vs %d", i, got.Adj[i].Dst, g.Adj[i].Dst)
		}
	}
}

func TestEdgeListRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"1\n", "a b\n", "1 2 x\n"} {
		if _, err := ReadEdgeList(bytes.NewReader([]byte(bad))); err == nil {
			t.Fatalf("ReadEdgeList(%q) succeeded, want error", bad)
		}
	}
}

func TestEdgeListDefaultWeight(t *testing.T) {
	g, err := ReadEdgeList(bytes.NewReader([]byte("0 1\n1 2\n")))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d vertices / %d edges", g.NumVertices, g.NumEdges())
	}
	if w := g.OutEdges(0)[0].Weight; w != 1 {
		t.Fatalf("default weight = %g, want 1", w)
	}
}

func TestSaveLoadEdgeList(t *testing.T) {
	g := GenUniform(64, 256, 9)
	path := t.TempDir() + "/g.txt"
	if err := SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d vs %d", got.NumEdges(), g.NumEdges())
	}
}

func TestRangePartitionCoversAllVertices(t *testing.T) {
	f := func(nRaw, tRaw uint16) bool {
		n := int(nRaw%5000) + 1
		tw := int(tRaw%31) + 1
		parts := RangePartition(n, tw)
		if len(parts) != tw {
			return false
		}
		total := 0
		prev := VertexID(0)
		for i, p := range parts {
			if p.Lo != prev {
				return false
			}
			if p.Worker != i {
				return false
			}
			total += p.Len()
			prev = p.Hi
		}
		if total != n || prev != VertexID(n) {
			return false
		}
		// Balance: sizes differ by at most 1.
		minLen, maxLen := parts[0].Len(), parts[0].Len()
		for _, p := range parts {
			if p.Len() < minLen {
				minLen = p.Len()
			}
			if p.Len() > maxLen {
				maxLen = p.Len()
			}
		}
		return maxLen-minLen <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerOfAgreesWithContains(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := RangePartition(1000, 7)
	for i := 0; i < 500; i++ {
		v := VertexID(rng.Intn(1000))
		w := OwnerOf(parts, v)
		if w < 0 || !parts[w].Contains(v) {
			t.Fatalf("OwnerOf(%d) = %d but partition does not contain it", v, w)
		}
	}
	if OwnerOf(parts, 1000) != -1 {
		t.Fatal("OwnerOf(out of range) should be -1")
	}
}

func TestBlockRangesSubdivide(t *testing.T) {
	p := Partition{Worker: 2, Lo: 100, Hi: 200}
	blocks := BlockRanges(p, 7)
	if len(blocks) != 7 {
		t.Fatalf("got %d blocks, want 7", len(blocks))
	}
	total := 0
	prev := p.Lo
	for _, b := range blocks {
		if b.Lo != prev {
			t.Fatalf("gap at %d", b.Lo)
		}
		if b.Worker != 2 {
			t.Fatalf("worker = %d, want 2", b.Worker)
		}
		total += b.Len()
		prev = b.Hi
	}
	if total != 100 || prev != 200 {
		t.Fatalf("blocks cover %d vertices ending at %d", total, prev)
	}
}

func TestBlockRangesMoreBlocksThanVertices(t *testing.T) {
	p := Partition{Lo: 0, Hi: 3}
	blocks := BlockRanges(p, 10)
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want clamped 3", len(blocks))
	}
}

func TestDatasetRegistry(t *testing.T) {
	if len(Datasets) != 6 {
		t.Fatalf("want the paper's 6 datasets, got %d", len(Datasets))
	}
	for _, d := range Datasets {
		g := d.GenerateCached(0.1)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		avg := g.AvgDegree()
		if avg < d.AvgDegree*0.5 || avg > d.AvgDegree*1.5 {
			t.Fatalf("%s: avg degree %.1f too far from target %.1f", d.Name, avg, d.AvgDegree)
		}
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("DatasetByName should fail for unknown names")
	}
	d, err := DatasetByName("twi")
	if err != nil || d.Name != "twi" {
		t.Fatalf("DatasetByName(twi) = %v, %v", d, err)
	}
}

func TestGenerateCachedReturnsSameGraph(t *testing.T) {
	d := Datasets[0]
	a := d.GenerateCached(0.1)
	b := d.GenerateCached(0.1)
	if a != b {
		t.Fatal("GenerateCached should return the cached pointer")
	}
}

func TestStatsOnEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	s := Stats(g)
	if s.Avg != 0 || s.Max != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}
