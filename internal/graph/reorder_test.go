package graph

import (
	"testing"
	"testing/quick"
)

func TestRelabelPreservesStructure(t *testing.T) {
	g := GenRMAT(200, 1500, 0.57, 0.19, 0.19, 71)
	perm := BFSOrder(g)
	if !IsPermutation(perm, g.NumVertices) {
		t.Fatal("BFSOrder is not a permutation")
	}
	r := Relabel(g, perm)
	if r.NumVertices != g.NumVertices || r.NumEdges() != g.NumEdges() {
		t.Fatalf("relabel changed size: %d/%d", r.NumVertices, r.NumEdges())
	}
	// Every original edge must exist under the new names.
	has := map[[2]VertexID]bool{}
	for v := 0; v < r.NumVertices; v++ {
		for _, h := range r.OutEdges(VertexID(v)) {
			has[[2]VertexID{VertexID(v), h.Dst}] = true
		}
	}
	for v := 0; v < g.NumVertices; v++ {
		for _, h := range g.OutEdges(VertexID(v)) {
			if !has[[2]VertexID{perm[v], perm[h.Dst]}] {
				t.Fatalf("edge (%d,%d) lost by relabelling", v, h.Dst)
			}
		}
	}
}

func TestRelabelDegreeSequencePreservedProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := GenUniform(80, 400, seed)
		perm := DegreeOrder(g)
		if !IsPermutation(perm, g.NumVertices) {
			return false
		}
		r := Relabel(g, perm)
		for v := 0; v < g.NumVertices; v++ {
			if r.OutDegree(perm[v]) != g.OutDegree(VertexID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeOrderPutsHubsFirst(t *testing.T) {
	g := GenRMAT(256, 4096, 0.6, 0.15, 0.15, 72)
	perm := DegreeOrder(g)
	r := Relabel(g, perm)
	// Degrees must be non-increasing in the new numbering.
	for v := 1; v < r.NumVertices; v++ {
		if r.OutDegree(VertexID(v)) > r.OutDegree(VertexID(v-1)) {
			t.Fatalf("degree order violated at %d: %d > %d",
				v, r.OutDegree(VertexID(v)), r.OutDegree(VertexID(v-1)))
		}
	}
}

func TestBFSOrderCoversDisconnectedGraphs(t *testing.T) {
	b := NewBuilder(10)
	b.AddEdge(0, 1, 1)
	b.AddEdge(5, 6, 1) // second component; 2,3,4,7,8,9 isolated
	g := b.Build()
	perm := BFSOrder(g)
	if !IsPermutation(perm, 10) {
		t.Fatalf("BFSOrder on disconnected graph: %v", perm)
	}
}

func TestIsPermutationRejects(t *testing.T) {
	if IsPermutation([]VertexID{0, 0}, 2) {
		t.Fatal("duplicate accepted")
	}
	if IsPermutation([]VertexID{0, 5}, 2) {
		t.Fatal("out of range accepted")
	}
	if IsPermutation([]VertexID{0}, 2) {
		t.Fatal("short permutation accepted")
	}
	if !IsPermutation([]VertexID{1, 0}, 2) {
		t.Fatal("valid permutation rejected")
	}
}
