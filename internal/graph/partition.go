package graph

// Partition is a contiguous range of vertex ids [Lo, Hi) assigned to one
// worker. The paper uses range partitioning throughout ("a graph is
// partitioned by the range method for Giraph, MOCgraph, and HybridGraph").
type Partition struct {
	Worker int
	Lo, Hi VertexID
}

// Contains reports whether v falls in the partition.
func (p Partition) Contains(v VertexID) bool { return v >= p.Lo && v < p.Hi }

// Len reports the number of vertices in the partition.
func (p Partition) Len() int { return int(p.Hi - p.Lo) }

// RangePartition splits [0, n) into t contiguous ranges whose sizes differ
// by at most one vertex, one per worker.
func RangePartition(n, t int) []Partition {
	if t < 1 {
		t = 1
	}
	parts := make([]Partition, t)
	base := n / t
	rem := n % t
	lo := 0
	for w := 0; w < t; w++ {
		size := base
		if w < rem {
			size++
		}
		parts[w] = Partition{Worker: w, Lo: VertexID(lo), Hi: VertexID(lo + size)}
		lo += size
	}
	return parts
}

// OwnerOf returns the index of the partition containing v. Partitions must
// be the contiguous, sorted output of RangePartition.
func OwnerOf(parts []Partition, v VertexID) int {
	lo, hi := 0, len(parts)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case v < parts[mid].Lo:
			hi = mid
		case v >= parts[mid].Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// BlockRanges subdivides one partition into nb contiguous Vblocks of
// near-equal size, returning the [lo,hi) boundaries. Used to build
// VE-BLOCK (Section 4.1): all vertices are range-partitioned into V
// fixed-size Vblocks.
func BlockRanges(p Partition, nb int) []Partition {
	if nb < 1 {
		nb = 1
	}
	n := p.Len()
	if nb > n && n > 0 {
		nb = n
	}
	out := make([]Partition, nb)
	base := n / nb
	rem := n % nb
	lo := int(p.Lo)
	for b := 0; b < nb; b++ {
		size := base
		if b < rem {
			size++
		}
		out[b] = Partition{Worker: p.Worker, Lo: VertexID(lo), Hi: VertexID(lo + size)}
		lo += size
	}
	return out
}
