package graph

import "sort"

// Relabel returns the graph obtained by renaming every vertex v to
// perm[v]. perm must be a permutation of [0, NumVertices). Because
// VE-BLOCK range-partitions by id, relabelling is how any partitioning
// strategy is expressed (the paper's footnote 1: "VE-BLOCK can also be
// applied to any partitioning method by re-ordering vertices").
func Relabel(g *Graph, perm []VertexID) *Graph {
	b := NewBuilder(g.NumVertices)
	for v := 0; v < g.NumVertices; v++ {
		for _, h := range g.OutEdges(VertexID(v)) {
			b.AddEdge(perm[v], perm[h.Dst], h.Weight)
		}
	}
	return b.Build()
}

// IsPermutation reports whether perm is a permutation of [0, n).
func IsPermutation(perm []VertexID, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// BFSOrder returns a permutation that renumbers vertices in
// breadth-first-search order over the undirected version of g, giving
// neighbourhoods contiguous id ranges. BFS ordering clusters each
// vertex's out-neighbours into few Vblocks, which cuts the fragment count
// of VE-BLOCK (Theorem 1's constant) and with it b-pull's IO(F^t).
func BFSOrder(g *Graph) []VertexID {
	n := g.NumVertices
	// Undirected adjacency for traversal.
	und := make([][]VertexID, n)
	for v := 0; v < n; v++ {
		for _, h := range g.OutEdges(VertexID(v)) {
			und[v] = append(und[v], h.Dst)
			und[h.Dst] = append(und[h.Dst], VertexID(v))
		}
	}
	perm := make([]VertexID, n)
	visited := make([]bool, n)
	next := VertexID(0)
	queue := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			perm[v] = next
			next++
			for _, u := range und[v] {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, int(u))
				}
			}
		}
	}
	return perm
}

// DegreeOrder returns a permutation that renumbers vertices by descending
// out-degree (hubs first), the hot-aware placement MOCgraph uses for its
// in-memory set; ties break by original id for determinism.
func DegreeOrder(g *Graph) []VertexID {
	n := g.NumVertices
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.OutDegree(VertexID(ids[a])), g.OutDegree(VertexID(ids[b]))
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	perm := make([]VertexID, n)
	for rank, v := range ids {
		perm[v] = VertexID(rank)
	}
	return perm
}
