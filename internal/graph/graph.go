// Package graph defines the directed-graph model used throughout
// HybridGraph: vertex identifiers, weighted edges, an in-memory builder
// used at load time, deterministic synthetic generators standing in for
// the paper's six real-world datasets, an edge-list text codec, and the
// range partitioner the paper uses to spread vertices across workers.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. The paper range-partitions vertices by id,
// so ids are dense integers in [0, NumVertices).
type VertexID uint32

// Edge is a directed, weighted edge. Weights matter only to SSSP; the other
// algorithms ignore them.
type Edge struct {
	Src    VertexID
	Dst    VertexID
	Weight float32
}

// Graph is an immutable directed graph in CSR-like form: Adj holds all
// out-edges grouped by source vertex, and Index[v]..Index[v+1] delimits
// vertex v's run. It is the in-memory staging representation produced by
// loading or generating a dataset, before the per-worker disk stores
// (adjacency list and VE-BLOCK) are built from it.
type Graph struct {
	NumVertices int
	Index       []int32 // len NumVertices+1; offsets into Adj
	Adj         []Half  // out-edges sorted by source
}

// Half is the destination half of an edge; the source is implied by the
// CSR position.
type Half struct {
	Dst    VertexID
	Weight float32
}

// NumEdges reports the total number of directed edges.
func (g *Graph) NumEdges() int { return len(g.Adj) }

// OutDegree reports the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.Index[v+1] - g.Index[v])
}

// OutEdges returns the out-edge run of v. The slice aliases the graph's
// storage and must not be modified.
func (g *Graph) OutEdges(v VertexID) []Half {
	return g.Adj[g.Index[v]:g.Index[v+1]]
}

// AvgDegree reports the average out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices == 0 {
		return 0
	}
	return float64(len(g.Adj)) / float64(g.NumVertices)
}

// MaxDegree reports the maximum out-degree, a proxy for skew.
func (g *Graph) MaxDegree() int {
	maxd := 0
	for v := 0; v < g.NumVertices; v++ {
		if d := g.OutDegree(VertexID(v)); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Reverse builds the transpose graph (in-edges become out-edges). The pull
// baseline gathers along in-edges, so it needs the transpose at load time.
func (g *Graph) Reverse() *Graph {
	deg := make([]int32, g.NumVertices+1)
	for _, h := range g.Adj {
		deg[h.Dst+1]++
	}
	for i := 1; i <= g.NumVertices; i++ {
		deg[i] += deg[i-1]
	}
	adj := make([]Half, len(g.Adj))
	next := make([]int32, g.NumVertices)
	copy(next, deg[:g.NumVertices])
	for src := 0; src < g.NumVertices; src++ {
		for _, h := range g.OutEdges(VertexID(src)) {
			adj[next[h.Dst]] = Half{Dst: VertexID(src), Weight: h.Weight}
			next[h.Dst]++
		}
	}
	return &Graph{NumVertices: g.NumVertices, Index: deg, Adj: adj}
}

// Builder accumulates edges and produces a Graph. Duplicate edges are kept
// (multigraphs are legal inputs for all four algorithms); self-loops are
// dropped, matching the usual cleaning applied to the paper's datasets.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph over n vertices.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge records a directed edge. Out-of-range endpoints and self-loops
// are ignored.
func (b *Builder) AddEdge(src, dst VertexID, w float32) {
	if int(src) >= b.n || int(dst) >= b.n || src == dst {
		return
	}
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Weight: w})
}

// Len reports the number of edges recorded so far.
func (b *Builder) Len() int { return len(b.edges) }

// Build sorts the accumulated edges into CSR form and returns the graph.
// The builder may be reused afterwards but shares no storage with the
// result.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].Src != b.edges[j].Src {
			return b.edges[i].Src < b.edges[j].Src
		}
		return b.edges[i].Dst < b.edges[j].Dst
	})
	idx := make([]int32, b.n+1)
	for _, e := range b.edges {
		idx[e.Src+1]++
	}
	for i := 1; i <= b.n; i++ {
		idx[i] += idx[i-1]
	}
	adj := make([]Half, len(b.edges))
	for i, e := range b.edges {
		adj[i] = Half{Dst: e.Dst, Weight: e.Weight}
	}
	return &Graph{NumVertices: b.n, Index: idx, Adj: adj}
}

// Validate checks structural invariants of a Graph and returns an error
// describing the first violation, or nil.
func (g *Graph) Validate() error {
	if len(g.Index) != g.NumVertices+1 {
		return fmt.Errorf("graph: index length %d, want %d", len(g.Index), g.NumVertices+1)
	}
	if g.Index[0] != 0 {
		return fmt.Errorf("graph: index[0] = %d, want 0", g.Index[0])
	}
	if int(g.Index[g.NumVertices]) != len(g.Adj) {
		return fmt.Errorf("graph: index[n] = %d, want %d", g.Index[g.NumVertices], len(g.Adj))
	}
	for i := 0; i < g.NumVertices; i++ {
		if g.Index[i] > g.Index[i+1] {
			return fmt.Errorf("graph: index not monotone at %d", i)
		}
	}
	for i, h := range g.Adj {
		if int(h.Dst) >= g.NumVertices {
			return fmt.Errorf("graph: edge %d has out-of-range dst %d", i, h.Dst)
		}
	}
	return nil
}
