package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Dataset describes one synthetic stand-in for a real graph from the
// paper's Table 4. Scale 1.0 is the default experiment size; the harness
// may scale datasets up or down uniformly.
type Dataset struct {
	Name      string  // paper name, e.g. "livej"
	Kind      string  // "social" (R-MAT) or "web" (host-clustered)
	Vertices  int     // at scale 1.0
	AvgDegree float64 // target average degree, matching Table 4
	Skew      float64 // R-MAT 'a' parameter; higher = more skew
	Seed      int64
	// Paper-reported full-size numbers, for documentation and Table 4 output.
	PaperVertices string
	PaperEdges    string
	PaperDegree   float64
	PaperType     string
}

// Datasets mirrors the paper's Table 4, scaled down so the full experiment
// grid runs on one machine. Average degrees match the paper exactly; the
// vertex counts preserve the relative ordering livej < wiki < orkut ≪ twi <
// fri < uk.
var Datasets = []Dataset{
	{Name: "livej", Kind: "social", Vertices: 12000, AvgDegree: 14.2, Skew: 0.57, Seed: 101,
		PaperVertices: "4.8M", PaperEdges: "68M", PaperDegree: 14.2, PaperType: "Social networks"},
	{Name: "wiki", Kind: "web", Vertices: 14000, AvgDegree: 22.8, Skew: 0.57, Seed: 102,
		PaperVertices: "5.7M", PaperEdges: "130M", PaperDegree: 22.8, PaperType: "Web graphs"},
	{Name: "orkut", Kind: "social", Vertices: 8000, AvgDegree: 75.5, Skew: 0.55, Seed: 103,
		PaperVertices: "3.1M", PaperEdges: "234M", PaperDegree: 75.5, PaperType: "Social networks"},
	{Name: "twi", Kind: "social", Vertices: 40000, AvgDegree: 35.3, Skew: 0.62, Seed: 104,
		PaperVertices: "41.7M", PaperEdges: "1,470M", PaperDegree: 35.3, PaperType: "Social networks"},
	{Name: "fri", Kind: "social", Vertices: 52000, AvgDegree: 27.5, Skew: 0.58, Seed: 105,
		PaperVertices: "65.6M", PaperEdges: "1,810M", PaperDegree: 27.5, PaperType: "Social networks"},
	{Name: "uk", Kind: "web", Vertices: 64000, AvgDegree: 35.6, Skew: 0.57, Seed: 106,
		PaperVertices: "105.9M", PaperEdges: "3,740M", PaperDegree: 35.6, PaperType: "Web graphs"},
}

// DatasetByName looks a dataset up by its paper name.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("graph: unknown dataset %q", name)
}

// SmallDatasets reports the paper's "small graph" subset (run on 5 nodes).
func SmallDatasets() []string { return []string{"livej", "wiki", "orkut"} }

// LargeDatasets reports the paper's "large graph" subset (run on 30 nodes).
func LargeDatasets() []string { return []string{"twi", "fri", "uk"} }

// Generate materialises the dataset at the given scale (1.0 = default).
func (d Dataset) Generate(scale float64) *Graph {
	n := int(float64(d.Vertices) * scale)
	if n < 64 {
		n = 64
	}
	m := int(float64(n) * d.AvgDegree)
	switch d.Kind {
	case "web":
		return GenWeb(n, m, 32, 0.8, d.Seed)
	default:
		b := (1 - d.Skew) / 3 * 1.0
		return GenRMAT(n, m, d.Skew, b, b, d.Seed)
	}
}

var (
	genMu    sync.Mutex
	genCache = map[string]*Graph{}
)

// GenerateCached is Generate with a process-wide cache, so the experiment
// harness and benchmarks do not rebuild the same graph repeatedly.
func (d Dataset) GenerateCached(scale float64) *Graph {
	key := fmt.Sprintf("%s@%g", d.Name, scale)
	genMu.Lock()
	defer genMu.Unlock()
	if g, ok := genCache[key]; ok {
		return g
	}
	g := d.Generate(scale)
	genCache[key] = g
	return g
}

// DegreeStats summarises a degree distribution for dataset reports.
type DegreeStats struct {
	Avg      float64
	Max      int
	P50      int
	P99      int
	Gini     float64 // inequality of the out-degree distribution; ~0 uniform, →1 skewed
	Isolated int     // vertices with out-degree 0
}

// Stats computes degree statistics of g.
func Stats(g *Graph) DegreeStats {
	degs := make([]int, g.NumVertices)
	iso := 0
	for v := 0; v < g.NumVertices; v++ {
		degs[v] = g.OutDegree(VertexID(v))
		if degs[v] == 0 {
			iso++
		}
	}
	sort.Ints(degs)
	var s DegreeStats
	s.Avg = g.AvgDegree()
	s.Isolated = iso
	if len(degs) > 0 {
		s.Max = degs[len(degs)-1]
		s.P50 = degs[len(degs)/2]
		s.P99 = degs[len(degs)*99/100]
	}
	// Gini coefficient over the sorted degree sequence.
	var cum, total float64
	for i, d := range degs {
		cum += float64(i+1) * float64(d)
		total += float64(d)
	}
	n := float64(len(degs))
	if total > 0 && n > 0 {
		s.Gini = (2*cum)/(n*total) - (n+1)/n
	}
	return s
}
