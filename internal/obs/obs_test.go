package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Max(3) // lower: no change
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.Max(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge after Max = %d, want 11", got)
	}
	r.RegisterFunc("a.func", func() int64 { return 42 })

	snap := r.Snapshot()
	want := map[string]int64{"a.count": 5, "a.gauge": 11, "a.func": 42}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%s] = %d, want %d", k, snap[k], v)
		}
	}

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wantDump := "a.count 5\na.func 42\na.gauge 11\n"
	if buf.String() != wantDump {
		t.Fatalf("WriteTo = %q, want %q", buf.String(), wantDump)
	}
}

func TestNilRegistryAndInstrumentsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay zero")
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Max(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay zero")
	}
	r.RegisterFunc("z", func() int64 { return 1 })
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry must snapshot empty")
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteTo = %q, %v", buf.String(), err)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				r.Counter("shared").Inc()
				r.Gauge("peak").Max(int64(k))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Gauge("peak").Value(); got != 999 {
		t.Fatalf("peak gauge = %d, want 999", got)
	}
}

func TestTracerWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(JobEvent{Type: EventJobStart, Engine: "hybrid", Algorithm: "pagerank", Workers: 3})
	tr.Emit(WorkerStepEvent{Type: EventWorkerStep, Step: 1, Worker: 0, Mode: "push", Produced: 7})
	tr.Emit(StepEvent{Type: EventStep})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Events(); got != 3 {
		t.Fatalf("Events = %d, want 3", got)
	}
	sc := bufio.NewScanner(&buf)
	var types []string
	for sc.Scan() {
		var ev struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		types = append(types, ev.Type)
	}
	want := []string{EventJobStart, EventWorkerStep, EventStep}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("event types = %v, want %v", types, want)
	}
}

func TestOpenTracerCreatesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := OpenTracer(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit(FaultEvent{Type: EventFault, Step: 3, Worker: 1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"type":"fault"`) {
		t.Fatalf("journal = %q, want a fault event", data)
	}
}

func TestNilTracerNoop(t *testing.T) {
	var tr *Tracer
	tr.Emit(StepEvent{Type: EventStep})
	if tr.Events() != 0 || tr.Err() != nil || tr.Close() != nil {
		t.Fatal("nil tracer must no-op")
	}
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil) must return a nil tracer")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.n--
	return len(p), nil
}

func TestTracerLatchesFirstError(t *testing.T) {
	tr := NewTracer(&failWriter{n: 1})
	tr.Emit(StepEvent{Type: EventStep})
	tr.Emit(StepEvent{Type: EventStep}) // fails
	tr.Emit(StepEvent{Type: EventStep}) // dropped
	if tr.Events() != 1 {
		t.Fatalf("Events = %d, want 1", tr.Events())
	}
	if tr.Err() == nil {
		t.Fatal("expected a latched error")
	}
}

func TestDebugServerServesMetricsAndVars(t *testing.T) {
	r := NewRegistry()
	r.Counter("debug.test").Add(9)
	srv, err := StartDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "debug.test 9") {
		t.Fatalf("/metrics = %q, want debug.test 9", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "hybridgraph") {
		t.Fatalf("/debug/vars = %q, want a hybridgraph var", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %q, want the pprof index", body)
	}
}
