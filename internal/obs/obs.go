// Package obs is HybridGraph's observability layer: a lightweight metrics
// registry of atomic counters and gauges every subsystem reports into, a
// structured JSONL superstep trace journal, and an optional HTTP debug
// server. The paper's whole contribution hinges on per-superstep byte
// accounting — Eq. (11)'s Q^t combines categorized I/O and network bytes to
// drive hybrid switching — and this package makes those numbers visible
// while a job runs instead of only in the final JobResult.
//
// Everything is nil-safe: a nil *Registry hands out nil *Counter and
// *Gauge values whose methods no-op, and a nil *Tracer drops events, so
// instrumented code pays one nil check when observability is disabled.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic tally. The zero value is
// ready to use; a nil Counter silently discards increments so callers can
// wire instrumentation unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current tally; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (e.g. the superstep in flight or
// a peak memory watermark). A nil Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores n. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Max raises the gauge to n if n is larger (a high-watermark update).
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value reports the current value; zero on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry names and holds counters, gauges and read-only metric
// functions. Lookups are idempotent — every subsystem asking for
// "msgstore.spilled_msgs" shares one counter — and a nil Registry hands
// out nil instruments, which is the disabled mode.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil counter (whose methods no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// RegisterFunc installs a read-only metric evaluated at snapshot time —
// used for subsystems that already keep their own tallies (the pull
// baseline's LRU cache, say). Re-registering a name replaces the function.
// No-op on a nil registry.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot captures every metric as a name → value map. Counters, gauges
// and funcs share one namespace; on a collision the counter wins, then the
// gauge. Nil registries snapshot empty.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return map[string]int64{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	gauges := make(map[string]*Gauge, len(r.gauges))
	funcs := make(map[string]func() int64, len(r.funcs))
	for n, c := range r.counters {
		counters[n] = c
	}
	for n, g := range r.gauges {
		gauges[n] = g
	}
	for n, f := range r.funcs {
		funcs[n] = f
	}
	r.mu.Unlock()

	out := make(map[string]int64, len(counters)+len(gauges)+len(funcs))
	// Funcs run outside the registry lock: they may take subsystem locks of
	// their own, and holding ours across arbitrary callbacks invites
	// deadlock.
	for n, f := range funcs {
		out[n] = f()
	}
	for n, g := range gauges {
		out[n] = g.Value()
	}
	for n, c := range counters {
		out[n] = c.Value()
	}
	return out
}

// WriteTo dumps the registry as sorted "name value" lines — the plain-text
// /metrics format of the debug server. Implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var total int64
	for _, n := range names {
		k, err := fmt.Fprintf(w, "%s %d\n", n, snap[n])
		total += int64(k)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// MetricsSetter is implemented by subsystems that accept a registry after
// construction (the comm fabrics, say); core wires any fabric that
// implements it.
type MetricsSetter interface {
	SetMetrics(*Registry)
}

// traceSeq numbers auto-named journal files within one process so
// concurrent jobs tracing into one directory never collide.
var traceSeq atomic.Int64

// NextTraceSeq returns a process-unique, monotonically increasing sequence
// number for journal file naming.
func NextTraceSeq() int64 { return traceSeq.Add(1) }
