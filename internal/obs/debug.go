package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-wide expvar name: expvar.Publish panics on
// duplicates, and tests may start several debug servers.
var (
	expvarOnce sync.Once
	expvarMu   sync.Mutex
	expvarReg  *Registry
)

// DebugServer is a running HTTP debug endpoint.
type DebugServer struct {
	Addr string // bound address (useful with ":0")
	srv  *http.Server
}

// Shutdown stops the server, waiting for in-flight requests up to ctx.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Shutdown(ctx)
}

// StartDebug serves the standard Go debug surface on addr:
//
//	/metrics       plain-text "name value" dump of reg (sorted)
//	/debug/vars    expvar JSON, including the registry under "hybridgraph"
//	/debug/pprof/  the full pprof index (profile, heap, trace, ...)
//
// A reg of nil still serves pprof and expvar with an empty metrics dump.
// The listener binds before returning, so Addr is always usable.
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	expvarMu.Lock()
	expvarReg = reg
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("hybridgraph", expvar.Func(func() any {
			expvarMu.Lock()
			r := expvarReg
			expvarMu.Unlock()
			return r.Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.WriteTo(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &DebugServer{Addr: ln.Addr().String(), srv: srv}, nil
}
