package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"

	"hybridgraph/internal/diskio"
	"hybridgraph/internal/metrics"
)

// Tracer writes a structured JSONL trace journal: one JSON object per
// line, each carrying a "type" discriminator. The journal is the live,
// per-worker view of the byte accounting that JobResult only totals —
// every superstep emits one WorkerStepEvent per worker plus one StepEvent
// for the cluster, and mode switches, checkpoint commits, injected faults
// and recoveries get events of their own.
//
// A nil Tracer drops everything, so callers emit unconditionally after one
// nil check. Safe for concurrent Emit from worker goroutines.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer
	enc *json.Encoder
	n   int64
	err error
}

// NewTracer wraps an io.Writer. The caller owns the writer's lifetime.
func NewTracer(w io.Writer) *Tracer {
	if w == nil {
		return nil
	}
	return &Tracer{w: w, enc: json.NewEncoder(w)}
}

// OpenTracer creates (truncating) a journal file at path; Close releases
// it.
func OpenTracer(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := NewTracer(f)
	t.c = f
	return t, nil
}

// Emit appends one event line. Encoding or write errors latch: the first
// one is kept, later events are dropped, and Err/Close report it. No-op on
// a nil receiver.
func (t *Tracer) Emit(ev any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(ev); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Events reports the number of events written so far.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Err reports the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close releases an owned file (OpenTracer) and reports the first latched
// write error. Nil-safe.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c != nil {
		if cerr := t.c.Close(); cerr != nil && t.err == nil {
			t.err = cerr
		}
		t.c = nil
	}
	return t.err
}

// Event type discriminators (the "type" field of every journal line).
const (
	EventJobStart   = "job_start"
	EventJobEnd     = "job_end"
	EventWorkerStep = "superstep"   // one per superstep per worker
	EventStep       = "step"        // one per superstep, cluster-aggregated
	EventModeSwitch = "mode_switch" // hybrid executed a switch superstep
	EventCheckpoint = "checkpoint"  // master committed a checkpoint
	EventRestore    = "restore"     // recovery restored a committed checkpoint
	EventFault      = "fault"       // an injected worker crash or stall fired
	EventRecovery   = "recovery"    // the master recovered and restarts the loop

	// Confined-recovery events (the msglog-based per-worker policy).
	EventRestoreFailed = "restore_failed"    // a committed checkpoint failed verification
	EventReplayStep    = "replay_step"       // the failed worker replayed one superstep
	EventReplayServe   = "replay_serve"      // one survivor's share of a replayed superstep
	EventPruneFailed   = "ckpt_prune_failed" // checkpoint or msglog pruning reported errors

	// Partition-reassignment events (the reassign recovery policy).
	EventReassign   = "reassign"    // the master declared a worker permanently dead
	EventAdoptBlock = "adopt_block" // a survivor adopted one of the dead worker's Vblocks

	// Service events (the graph service daemon's catalog and scheduler).
	EventCatalog      = "catalog"       // setup resolved its edge layouts (hit = reused)
	EventJobQueued    = "job_queued"    // the scheduler admitted a job into its queue
	EventJobCancelled = "job_cancelled" // a queued or running job was cancelled

	// Storage-fault and durability events.
	EventDiskFault        = "disk_fault"        // the FaultFS injected one storage fault
	EventCheckpointFailed = "checkpoint_failed" // a checkpoint write failed; the attempt was abandoned
	EventWALReplay        = "wal_replay"        // a restarted scheduler replayed its job WAL

	// Block-codec events (Config.Codec != "none"): the per-superstep
	// logical-vs-physical byte pairs on each direction of the codec.
	EventCompress   = "compress"   // write side: logical bytes in, frame bytes out
	EventDecompress = "decompress" // read side: frame bytes in, logical bytes out
)

// JobEvent opens (job_start) and closes (job_end) a journal.
type JobEvent struct {
	Type        string  `json:"type"`
	JobID       string  `json:"job_id,omitempty"` // service-assigned id (Config.JobLabel)
	Engine      string  `json:"engine"`
	Algorithm   string  `json:"algorithm"`
	Workers     int     `json:"workers"`
	Parallelism int     `json:"parallelism,omitempty"` // per-worker compute goroutines
	Vertices    int     `json:"vertices,omitempty"`
	Edges       int64   `json:"edges,omitempty"`
	Steps       int     `json:"steps,omitempty"`       // job_end: supersteps kept
	SimSecs     float64 `json:"sim_seconds,omitempty"` // job_end
	NetBytes    int64   `json:"net_bytes,omitempty"`   // job_end
	IOBytes     int64   `json:"io_bytes,omitempty"`    // job_end: logical superstep bytes
	Restarts    int     `json:"restarts,omitempty"`    // job_end
}

// WorkerStepEvent is one worker's share of one superstep: the full I/O
// breakdown of Eqs. (7)/(8), the class-tagged disk snapshot delta, and the
// fabric bytes this worker moved. Summing a step's WorkerStepEvents
// reproduces the StepStats the job reports — the cross-check the
// accounting tests pin down.
type WorkerStepEvent struct {
	Type       string              `json:"type"`
	Step       int                 `json:"step"`
	Worker     int                 `json:"worker"`
	Mode       string              `json:"mode"`
	Updated    int64               `json:"updated"`
	Responding int64               `json:"responding"`
	Produced   int64               `json:"produced"`
	Requests   int64               `json:"requests"`
	Spilled    int64               `json:"spilled"` // messages spilled for t+1 (|M_disk|)
	NetIn      int64               `json:"net_in"`
	NetOut     int64               `json:"net_out"`
	IO         diskio.Snapshot     `json:"io"`    // class-tagged disk delta
	Parts      metrics.IOBreakdown `json:"parts"` // Eq. (7)/(8) categories
	MemBytes   int64               `json:"mem_bytes"`
	// LogIO is the confined policy's sender-side message-log writes this
	// worker performed during the superstep. Kept apart from IO so the
	// worker-events-sum-to-StepStats cross-check and the Q^t inputs stay
	// exact: log bytes are policy overhead, not Eq. (7)/(8) traffic.
	LogIO diskio.Snapshot `json:"log_io"`
	// Host names the worker whose goroutine executed this unit's share of
	// the superstep — itself normally, the adopting survivor after a
	// reassignment. The correctness matrix reads it to prove the dead
	// worker never executes after its partition moved.
	Host int `json:"host"`
	// MigrationIO/MigrationNetBytes land an adoption's migration cost on
	// the adopted unit's first post-reassignment superstep, mirroring the
	// StepStats fields so the events-sum-to-stats cross-check covers them.
	MigrationIO       diskio.Snapshot `json:"migration_io,omitempty"`
	MigrationNetBytes int64           `json:"migration_net_bytes,omitempty"`
	// PhysIO is the physical (post-codec) disk delta this worker's
	// superstep traffic moved, the compressed counterpart of IO+LogIO
	// (equal to it charge-for-charge under codec "none"). Summing a
	// step's worker PhysIO reproduces StepStats.PhysIO, the physical leg
	// of the events-sum-to-stats cross-check. Omitted only when zero
	// (in-memory runs).
	PhysIO diskio.Snapshot `json:"phys_io,omitzero"`
}

// StepEvent is the cluster-aggregated superstep record: the same StepStats
// the JobResult keeps, plus hybrid's decision for superstep t+2 (the mode
// the Q^t evaluation just scheduled). Emitted after the hybrid scheduler
// has run, so NextMode reflects the decision this superstep's data made.
type StepEvent struct {
	Type     string            `json:"type"`
	Stats    metrics.StepStats `json:"stats"`
	NextMode string            `json:"next_mode,omitempty"` // hybrid: modes[t+2]
}

// CodecEvent summarises one direction of the block codec's work during
// one superstep: Logical is the uncompressed bytes the engines charged,
// Physical the frame bytes that actually crossed the disk boundary.
// Type "compress" pairs the write classes, "decompress" the read classes.
// Emitted only when the job runs with a non-trivial codec.
type CodecEvent struct {
	Type     string `json:"type"`
	Step     int    `json:"step"`
	Codec    string `json:"codec"`
	Logical  int64  `json:"logical_bytes"`
	Physical int64  `json:"physical_bytes"`
}

// ModeSwitchEvent records a hybrid switch superstep (Fig. 6): superstep
// Step consumed messages per From and produced per To.
type ModeSwitchEvent struct {
	Type string `json:"type"`
	Step int    `json:"step"`
	From string `json:"from"`
	To   string `json:"to"`
}

// CheckpointEvent records one committed checkpoint and its charged cost.
type CheckpointEvent struct {
	Type    string  `json:"type"`
	Step    int     `json:"step"`
	Workers int     `json:"workers"`
	Bytes   int64   `json:"bytes"` // logical checkpoint I/O (snapshot writes + spill re-reads)
	SimSecs float64 `json:"sim_seconds"`
}

// FaultEvent records an injected worker fault the master's detector saw:
// a crash (detected at superstep start) or, with Kind "stall", a hang the
// barrier-deadline supervision declared failed.
type FaultEvent struct {
	Type   string `json:"type"`
	Step   int    `json:"step"`
	Worker int    `json:"worker"`
	Kind   string `json:"kind,omitempty"` // "" = crash, "stall" = barrier-deadline hang
}

// RecoveryEvent records one recovery: the policy applied, the superstep
// the restarted loop resumes from, and how many supersteps were discarded.
// Confined recoveries discard nothing; they name the worker that replayed
// and how many supersteps it consumed from the survivors' logs.
type RecoveryEvent struct {
	Type        string `json:"type"`
	Policy      string `json:"policy"`
	RestartStep int    `json:"restart_step"`
	Discarded   int    `json:"discarded_steps"`
	Restored    bool   `json:"restored"` // true when a committed checkpoint was used
	Worker      int    `json:"worker,omitempty"`
	Replayed    int    `json:"replayed_steps,omitempty"`
}

// RestoreFailedEvent records a restore that aborted: a committed
// checkpoint existed but failed verification (torn/corrupt snapshot,
// stale or unreadable master record). The bytes read before the abort are
// still charged to RecoverySimSeconds; this event makes the fallback to
// scratch visible in the journal.
type RestoreFailedEvent struct {
	Type   string `json:"type"`
	Step   int    `json:"step"`   // the checkpoint step that failed
	Reason string `json:"reason"` // what the verification rejected
}

// ReplayStepEvent records one superstep the failed worker re-executed
// during confined recovery: its own recompute I/O, the bytes survivors
// served from their logs, and the modelled time charged to
// RecoverySimSeconds. Rejoin marks a stalled worker's final replay step,
// which runs against the live fabric (survivors never finished hearing
// from it) instead of dropping its output.
type ReplayStepEvent struct {
	Type     string          `json:"type"`
	Step     int             `json:"step"`
	Worker   int             `json:"worker"`
	Rejoin   bool            `json:"rejoin,omitempty"`
	IO       diskio.Snapshot `json:"io"`        // failed worker's recompute disk delta
	LogBytes int64           `json:"log_bytes"` // bytes read from survivors' logs
	NetBytes int64           `json:"net_bytes"` // replayed wire bytes (re-pulls + injected pushes)
	SimSecs  float64         `json:"sim_seconds"`
}

// ReplayServeEvent records one survivor's share of one replayed
// superstep: the log bytes it served and its own compute-counter delta —
// which must be zero, the "survivors do no recompute I/O" property the
// confined policy exists to provide.
type ReplayServeEvent struct {
	Type   string          `json:"type"`
	Step   int             `json:"step"`
	Worker int             `json:"worker"`
	Bytes  int64           `json:"bytes"` // log bytes served to the recovering worker
	IO     diskio.Snapshot `json:"io"`    // survivor's compute disk delta (zero)
}

// ReassignEvent records the master permanently retiring a worker under
// the reassign policy: why it was declared dead (a faultplan permanent
// crash, a crash count past MaxRestarts, or repeated stalls), which
// survivor adopted its partition, the ownership epoch the reassignment
// advanced to, and the migration bytes the adoption charged.
type ReassignEvent struct {
	Type    string `json:"type"`
	Step    int    `json:"step"` // detection superstep
	Worker  int    `json:"worker"`
	Host    int    `json:"host"`
	Epoch   int64  `json:"epoch"`
	Reason  string `json:"reason"` // "permanent-crash", "crash-limit", "stall-limit"
	Crashes int    `json:"crashes,omitempty"`
	Stalls  int    `json:"stalls,omitempty"`
	// MigrationIOBytes is the adoption's disk traffic (store rebuilds +
	// snapshot/log reads); MigrationNetBytes the state bytes that logically
	// moved to the host.
	MigrationIOBytes  int64 `json:"migration_io_bytes"`
	MigrationNetBytes int64 `json:"migration_net_bytes"`
}

// AdoptBlockEvent records one global Vblock changing hands during a
// reassignment. One event per adopted block keeps the journal
// block-grain — the ownership table's unit — even though a whole-origin
// adoption moves every block of the dead worker to the same host.
type AdoptBlockEvent struct {
	Type   string `json:"type"`
	Step   int    `json:"step"`
	Block  int    `json:"block"` // global Vblock id
	From   int    `json:"from"`  // dead worker
	To     int    `json:"to"`    // adopting host
	Epoch  int64  `json:"epoch"`
	Vfirst int    `json:"v_first"` // first vertex id of the block
	Vcount int    `json:"v_count"` // vertices in the block
}

// CatalogEvent records how a job's setup resolved its edge layouts: a hit
// opened pre-built stores from a catalog source (ReusedBytes of layout
// served read-only, BuiltBytes zero by construction), a miss built them
// fresh (BuiltBytes of sequential layout writes). The catalog-reuse tests
// cross-check the "zero layout-rebuild writes" claim against this line.
type CatalogEvent struct {
	Type        string `json:"type"`
	Graph       string `json:"graph,omitempty"` // catalog graph name on a hit
	Hit         bool   `json:"hit"`
	BuiltBytes  int64  `json:"built_bytes"`
	ReusedBytes int64  `json:"reused_bytes"`
}

// SchedulerEvent records a scheduler transition for one job: admission into
// the queue (job_queued, with its position) or cancellation
// (job_cancelled, with the state it was cancelled from).
type SchedulerEvent struct {
	Type   string `json:"type"`
	JobID  string `json:"job_id"`
	Queued int    `json:"queued,omitempty"` // queue depth after the transition
	From   string `json:"from,omitempty"`   // job_cancelled: state left behind
}

// DiskFaultEvent records one injected storage fault the diskio fault
// layer fired: which operation on which file, in which access class,
// failed and how ("enospc", "torn-write", "sync-fail", "bit-flip",
// "power-cut"). Bit flips return no error to the reader — this journal
// line is the only direct evidence they happened.
type DiskFaultEvent struct {
	Type  string `json:"type"`
	Op    string `json:"op"`
	Path  string `json:"path"`
	Class string `json:"class,omitempty"`
	Kind  string `json:"kind"`
}

// CheckpointFailedEvent records a checkpoint attempt a storage fault
// aborted. The attempt is abandoned — no commit marker was written, so
// recovery falls back to the previous committed checkpoint — and the
// job continues; only a power cut fails the job outright.
type CheckpointFailedEvent struct {
	Type   string `json:"type"`
	Step   int    `json:"step"`
	Reason string `json:"reason"`
}

// WALReplayEvent records a restarted scheduler's job-WAL replay: how
// many records were read, how many jobs were re-enqueued (queued at the
// kill) or resumed from their last committed checkpoint (running at the
// kill), and whether the log ended in a torn record (discarded — the
// power cut caught an append mid-write).
type WALReplayEvent struct {
	Type     string `json:"type"`
	Records  int    `json:"records"`
	Requeued int    `json:"requeued"`
	Resumed  int    `json:"resumed"`
	Torn     bool   `json:"torn,omitempty"`
}

// PruneFailedEvent records a checkpoint or message-log pruning failure.
// Pruning failures never fail the job — they leave garbage that a later
// restore must not trust, which is why Coordinator.Remove deletes the
// commit marker first — but they must be visible.
type PruneFailedEvent struct {
	Type   string `json:"type"`
	Step   int    `json:"step"`
	Reason string `json:"reason"`
}
