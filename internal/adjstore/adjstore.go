// Package adjstore implements the Giraph-style on-disk adjacency list used
// by the push engines (and by hybrid when it runs push supersteps): for
// each vertex a run of out-edges, addressed through an in-memory offset
// index. The paper stores edges twice in HybridGraph — once here, once in
// VE-BLOCK — because pushRes() needs all out-edges of one vertex together
// while b-pull needs them clustered by destination block (Section 5.2,
// "Data Storage").
package adjstore

import (
	"encoding/binary"
	"fmt"

	"hybridgraph/internal/codec"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
)

const edgeSize = 8 // dst uint32 + weight float32

// blockReader is the store's file abstraction: a raw accounted File
// (codec "none") or a compressed codec.BlockFile, which charges the
// identical logical bytes and puts its frame I/O on the counter's
// physical twin.
type blockReader interface {
	ReadAtClass(p []byte, off int64, c diskio.Class) (int, error)
	Size() (int64, error)
	SetCounter(*diskio.Counter)
	Close() error
}

// Store holds the out-edges of one worker's vertex range [Lo, Lo+N).
type Store struct {
	f      blockReader
	lo     graph.VertexID
	offs   []int64 // len N+1, byte offsets into the file
	nEdges int64
	memG   *graph.Graph // non-nil for memory-resident stores
}

// Build writes the adjacency runs for partition part of g to path and
// returns the opened store. The write is one sequential pass, mirroring
// the paper's Fig. 16 "adj" loading path; under a non-trivial codec the
// same pass is stored as compressed chunk frames with the logical
// charge unchanged.
func Build(path string, ct *diskio.Counter, g *graph.Graph, part graph.Partition, cdc codec.Codec) (*Store, error) {
	n := part.Len()
	s := &Store{lo: part.Lo, offs: make([]int64, n+1)}
	// Buffer whole partition; partitions are modest at our scales.
	var buf []byte
	var off int64
	for i := 0; i < n; i++ {
		v := part.Lo + graph.VertexID(i)
		s.offs[i] = off
		for _, h := range g.OutEdges(v) {
			var rec [edgeSize]byte
			binary.LittleEndian.PutUint32(rec[0:], uint32(h.Dst))
			binary.LittleEndian.PutUint32(rec[4:], floatBits(h.Weight))
			buf = append(buf, rec[:]...)
			off += edgeSize
			s.nEdges++
		}
	}
	s.offs[n] = off
	if !codec.IsNone(cdc) {
		if err := codec.WriteBlockFile(path, ct, cdc, buf); err != nil {
			return nil, err
		}
		bf, err := codec.OpenBlockFile(path, ct)
		if err != nil {
			return nil, err
		}
		s.f = bf
		return s, nil
	}
	f, err := diskio.Create(path, ct)
	if err != nil {
		return nil, err
	}
	s.f = f
	if len(buf) > 0 {
		if _, err := f.WriteAtClass(buf, 0, diskio.SeqWrite); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// BuildReverse is Build over the transpose: it stores, for each vertex of
// the partition, its *in*-edges (sources as Dst fields). The pull baseline
// gathers along in-edges.
func BuildReverse(path string, ct *diskio.Counter, g *graph.Graph, part graph.Partition, cdc codec.Codec) (*Store, error) {
	return Build(path, ct, g.Reverse(), part, cdc)
}

// Open opens a previously built adjacency file read-only, recomputing the
// offset index from the staged graph — the index is a deterministic
// function of (g, part), so the catalog need not persist it. The file size
// must match the index; deeper integrity is the manifest CRC's job.
func Open(path string, ct *diskio.Counter, g *graph.Graph, part graph.Partition, cdc codec.Codec) (*Store, error) {
	f, err := openReader(path, ct, cdc)
	if err != nil {
		return nil, err
	}
	n := part.Len()
	s := &Store{f: f, lo: part.Lo, offs: make([]int64, n+1)}
	var off int64
	for i := 0; i < n; i++ {
		s.offs[i] = off
		d := g.OutDegree(part.Lo + graph.VertexID(i))
		off += int64(d) * edgeSize
		s.nEdges += int64(d)
	}
	s.offs[n] = off
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size != off {
		f.Close()
		return nil, fmt.Errorf("adjstore: %s is %d bytes, index expects %d", path, size, off)
	}
	return s, nil
}

// openReader opens path as a raw file or a compressed block file.
func openReader(path string, ct *diskio.Counter, cdc codec.Codec) (blockReader, error) {
	if codec.IsNone(cdc) {
		return diskio.OpenRead(path, ct)
	}
	return codec.OpenBlockFile(path, ct)
}

// SizeBytes reports the store's edge-run bytes (the on-disk file size for
// file-backed stores).
func (s *Store) SizeBytes() int64 { return s.nEdges * edgeSize }

// Close releases the underlying file, if any.
func (s *Store) Close() error {
	if s.f == nil {
		return nil
	}
	return s.f.Close()
}

// Lo reports the first vertex id in the store.
func (s *Store) Lo() graph.VertexID { return s.lo }

// Len reports the number of vertices covered.
func (s *Store) Len() int { return len(s.offs) - 1 }

// NumEdges reports the number of stored edges.
func (s *Store) NumEdges() int64 { return s.nEdges }

// Degree reports the out-degree of v without touching disk (the index is
// in memory, like Hama's edge-offset table).
func (s *Store) Degree(v graph.VertexID) (int, error) {
	i, err := s.idx(v)
	if err != nil {
		return 0, err
	}
	return int((s.offs[i+1] - s.offs[i]) / edgeSize), nil
}

// EdgeBytes reports the on-disk byte size of v's edge run, used by hybrid
// to estimate IO(Et) for push without running it.
func (s *Store) EdgeBytes(v graph.VertexID) (int64, error) {
	i, err := s.idx(v)
	if err != nil {
		return 0, err
	}
	return s.offs[i+1] - s.offs[i], nil
}

// Edges reads v's out-edges, appending to dst and returning it. Reads are
// charged as sequential: push streams the edge file in vertex-id order, and
// the paper's Eq. 11 accounts IO(Et) at sequential-read throughput.
func (s *Store) Edges(v graph.VertexID, dst []graph.Half) ([]graph.Half, error) {
	i, err := s.idx(v)
	if err != nil {
		return dst, err
	}
	if s.memG != nil {
		return append(dst, s.memG.OutEdges(v)...), nil
	}
	length := s.offs[i+1] - s.offs[i]
	if length == 0 {
		return dst, nil
	}
	buf := make([]byte, length)
	if _, err := s.f.ReadAtClass(buf, s.offs[i], diskio.SeqRead); err != nil {
		return dst, err
	}
	for o := 0; o < len(buf); o += edgeSize {
		dst = append(dst, graph.Half{
			Dst:    graph.VertexID(binary.LittleEndian.Uint32(buf[o:])),
			Weight: floatFromBits(binary.LittleEndian.Uint32(buf[o+4:])),
		})
	}
	return dst, nil
}

func (s *Store) idx(v graph.VertexID) (int, error) {
	if v < s.lo || int(v-s.lo) >= s.Len() {
		return 0, fmt.Errorf("adjstore: vertex %d outside [%d,%d)", v, s.lo, int(s.lo)+s.Len())
	}
	return int(v - s.lo), nil
}

// SetCounter retargets the store's I/O accounting (no-op for
// memory-resident stores).
func (s *Store) SetCounter(ct *diskio.Counter) {
	if s == nil || s.f == nil {
		return
	}
	s.f.SetCounter(ct)
}
