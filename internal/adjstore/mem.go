package adjstore

import "hybridgraph/internal/graph"

// BuildMem returns a memory-resident adjacency store for the paper's
// sufficient-memory scenario: same interface, no file, no I/O charges. It
// aliases the staged graph's storage.
func BuildMem(g *graph.Graph, part graph.Partition) *Store {
	n := part.Len()
	s := &Store{lo: part.Lo, offs: make([]int64, n+1), memG: g}
	var off int64
	for i := 0; i < n; i++ {
		v := part.Lo + graph.VertexID(i)
		s.offs[i] = off
		d := int64(g.OutDegree(v))
		off += d * edgeSize
		s.nEdges += d
	}
	s.offs[n] = off
	return s
}

// InMemory reports whether the store is memory-resident.
func (s *Store) InMemory() bool { return s.memG != nil }
