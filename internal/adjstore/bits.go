package adjstore

import "math"

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func floatFromBits(u uint32) float32 { return math.Float32frombits(u) }
