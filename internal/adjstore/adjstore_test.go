package adjstore

import (
	"path/filepath"
	"testing"

	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
)

func build(t *testing.T, g *graph.Graph, p graph.Partition) (*Store, *diskio.Counter) {
	t.Helper()
	var ct diskio.Counter
	s, err := Build(filepath.Join(t.TempDir(), "adj.dat"), &ct, g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, &ct
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(0, 2, 0.25)
	b.AddEdge(1, 3, 1)
	b.AddEdge(3, 0, 1)
	b.AddEdge(3, 4, 2)
	b.AddEdge(3, 5, 3)
	b.AddEdge(5, 0, 1)
	return b.Build()
}

func TestBuildAndReadEdges(t *testing.T) {
	g := testGraph(t)
	s, ct := build(t, g, graph.Partition{Lo: 0, Hi: 6})
	if s.NumEdges() != 7 {
		t.Fatalf("NumEdges = %d, want 7", s.NumEdges())
	}
	if got := ct.Bytes(diskio.SeqWrite); got != 7*edgeSize {
		t.Fatalf("build wrote %d bytes, want %d", got, 7*edgeSize)
	}
	e, err := s.Edges(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 3 || e[0].Dst != 0 || e[1].Dst != 4 || e[2].Dst != 5 {
		t.Fatalf("Edges(3) = %v", e)
	}
	if e[2].Weight != 3 {
		t.Fatalf("Edges(3)[2].Weight = %g, want 3", e[2].Weight)
	}
	if d, _ := s.Degree(3); d != 3 {
		t.Fatalf("Degree(3) = %d, want 3", d)
	}
	if d, _ := s.Degree(2); d != 0 {
		t.Fatalf("Degree(2) = %d, want 0", d)
	}
	e, err = s.Edges(2, e[:0])
	if err != nil || len(e) != 0 {
		t.Fatalf("Edges(2) = %v, %v; want empty", e, err)
	}
}

func TestPartitionedStoreOnlyHoldsItsRange(t *testing.T) {
	g := testGraph(t)
	s, _ := build(t, g, graph.Partition{Lo: 3, Hi: 6})
	if s.Len() != 3 || s.Lo() != 3 {
		t.Fatalf("store covers lo=%d len=%d", s.Lo(), s.Len())
	}
	if s.NumEdges() != 4 { // edges of 3 and 5
		t.Fatalf("NumEdges = %d, want 4", s.NumEdges())
	}
	if _, err := s.Edges(0, nil); err == nil {
		t.Fatal("Edges outside partition should fail")
	}
	if _, err := s.Degree(6); err == nil {
		t.Fatal("Degree outside partition should fail")
	}
	b, err := s.EdgeBytes(3)
	if err != nil || b != 3*edgeSize {
		t.Fatalf("EdgeBytes(3) = %d, %v; want %d", b, err, 3*edgeSize)
	}
}

func TestBuildReverseHoldsInEdges(t *testing.T) {
	g := testGraph(t)
	var ct diskio.Counter
	s, err := BuildReverse(filepath.Join(t.TempDir(), "radj.dat"), &ct, g, graph.Partition{Lo: 0, Hi: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	in0, err := s.Edges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 0 has in-edges from 3 and 5.
	if len(in0) != 2 || in0[0].Dst != 3 || in0[1].Dst != 5 {
		t.Fatalf("in-edges of 0 = %v", in0)
	}
}

func TestReadAccountedSequential(t *testing.T) {
	g := graph.GenUniform(200, 1000, 3)
	s, ct := build(t, g, graph.Partition{Lo: 0, Hi: 200})
	before := ct.Snapshot()
	var e []graph.Half
	var err error
	total := 0
	for v := 0; v < 200; v++ {
		e, err = s.Edges(graph.VertexID(v), e[:0])
		if err != nil {
			t.Fatal(err)
		}
		total += len(e)
	}
	if total != g.NumEdges() {
		t.Fatalf("scanned %d edges, want %d", total, g.NumEdges())
	}
	d := ct.Snapshot().Sub(before)
	if d.Bytes[diskio.SeqRead] != int64(g.NumEdges()*edgeSize) {
		t.Fatalf("SeqRead = %d, want %d", d.Bytes[diskio.SeqRead], g.NumEdges()*edgeSize)
	}
	if d.Bytes[diskio.RandRead] != 0 {
		t.Fatalf("RandRead = %d, want 0 (push edge reads are charged sequential)", d.Bytes[diskio.RandRead])
	}
}
