package algo

import "hybridgraph/internal/graph"

// SSSP computes single-source shortest paths (the paper's second
// benchmark): a vertex keeps the minimum distance received, and broadcasts
// distance+weight along out-edges whenever it improves. The active-vertex
// population grows from the source and then shrinks through a long
// convergent tail — the Traversal-Style behaviour that makes the hybrid
// switcher profitable (Fig. 14).
type SSSP struct {
	source graph.VertexID
}

// NewSSSP returns SSSP from the given source vertex.
func NewSSSP(source graph.VertexID) *SSSP { return &SSSP{source: source} }

// Name implements Program.
func (s *SSSP) Name() string { return "sssp" }

// Style implements Program.
func (s *SSSP) Style() Style { return Traversal }

// Init implements Program: the source holds distance 0 and responds;
// everyone else is unreached and silent.
func (s *SSSP) Init(ctx *Context, v graph.VertexID, outdeg int) (float64, bool) {
	if v == s.source {
		return 0, true
	}
	return Infinity, false
}

// Update implements Program: adopt the minimum incoming distance if it
// improves, responding only on improvement.
func (s *SSSP) Update(ctx *Context, v graph.VertexID, outdeg int, val float64, msgs []float64) (float64, bool) {
	best := val
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	return best, best < val
}

// Bcast implements Program: the broadcast value is the vertex's distance.
func (s *SSSP) Bcast(val float64, outdeg int) float64 { return val }

// MsgValue implements Program.
func (s *SSSP) MsgValue(bcast float64, weight float32) float64 {
	return bcast + float64(weight)
}

// Combiner implements Program: distances combine by minimum.
func (s *SSSP) Combiner() Combiner {
	return func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
}
