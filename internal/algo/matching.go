package algo

import "hybridgraph/internal/graph"

// Matching is Pregel's bipartite maximal matching with deterministic
// (minimum-id) choice rules, the canonical real Multi-Phase-Style
// algorithm (the class Section 5.3 says defeats hybrid's plain
// predictor): computation cycles through phases — unmatched left vertices
// request, right vertices grant one request, left vertices accept one
// grant, right vertices record the match — so the responding population
// oscillates with the cycle.
//
// Vertices with even id form the left side, odd ids the right side; run
// it on a bipartite graph with edges in both directions (see GenBipartite
// or Symmetrize). A vertex's value is its matched partner id, or a
// negative attempt counter while unmatched. Messages are targeted
// (TargetedSender), not broadcast, except the request phase.
type Matching struct {
	maxAttempts int
}

// NewMatching returns the matching program; a left vertex gives up after
// maxAttempts fruitless request cycles, bounding termination.
func NewMatching(maxAttempts int) *Matching {
	if maxAttempts < 1 {
		maxAttempts = 8
	}
	return &Matching{maxAttempts: maxAttempts}
}

// Broadcast-value encoding: kind in the low bits of the integer part's
// top, target and self packed below. All ids fit 24 bits at our scales;
// float64 is exact through 2^53.
const (
	matchKindRequest = 1
	matchKindGrant   = 2
	matchKindAccept  = 3
	matchIDBits      = 24
	matchIDMask      = 1<<matchIDBits - 1
)

func matchEncode(kind int, target, self graph.VertexID) float64 {
	return float64(kind<<(2*matchIDBits) | int(target)<<matchIDBits | int(self))
}

func matchDecode(b float64) (kind int, target, self graph.VertexID) {
	u := uint64(b)
	return int(u >> (2 * matchIDBits)), graph.VertexID(u >> matchIDBits & matchIDMask),
		graph.VertexID(u & matchIDMask)
}

// Name implements Program.
func (m *Matching) Name() string { return "matching" }

// Style implements Program.
func (m *Matching) Style() Style { return MultiPhase }

func matchLeft(v graph.VertexID) bool { return v%2 == 0 }

// phase maps the superstep to the cycle. Pregel describes four phases;
// here the record phase folds into the next request step (the accepted
// right vertex records its match while unmatched left vertices issue the
// next round of requests), so the cycle is three supersteps and every
// superstep has responders until the matching is maximal — which is what
// lets the BSP halt-on-silence rule terminate the job.
func matchPhase(step int) int { return (step - 1) % 3 }

// Init implements Program: everyone starts unmatched; left vertices with
// out-edges open the first request phase.
func (m *Matching) Init(ctx *Context, v graph.VertexID, outdeg int) (float64, bool) {
	if matchLeft(v) && outdeg > 0 {
		return -1, true
	}
	return -1, false
}

// Update implements Program. Values: >= 0 matched partner; -1..-(max)
// unmatched with attempt count; respond flags drive the next phase.
func (m *Matching) Update(ctx *Context, v graph.VertexID, outdeg int, val float64, msgs []float64) (float64, bool) {
	if val >= 0 || ctx.Step >= ctx.MaxSteps {
		return val, false // matched vertices are done
	}
	left := matchLeft(v)
	switch matchPhase(ctx.Step) {
	case 0: // request (left) + record (right, accepts from last cycle)
		if left {
			if outdeg > 0 && val > -float64(m.maxAttempts) {
				return val, true
			}
		} else if len(msgs) > 0 {
			return float64(minID(msgs)), false // record the match
		}
	case 1: // grant: unmatched right vertices grant one request
		if !left && len(msgs) > 0 {
			return val, true // bcast encodes the chosen requester
		}
	case 2: // accept: left vertices accept one grant and match
		if left {
			if len(msgs) == 0 {
				return val - 1, false // fruitless cycle: count the attempt
			}
			return float64(minID(msgs)), true
		}
	}
	return val, false
}

// Bcast implements Program: encode the phase's message kind and target.
// The vertex id is not available here, so Update-side state carries it:
// we re-derive everything from the value and phase in MsgValueTo instead,
// and Bcast packs what the phase needs. For request we only need self;
// for grant/accept we need target and self — but Bcast's inputs are the
// value and degree alone, so the grant/accept targets ride in the value
// via a transient encoding set by Update... To keep Program's contract
// honest, Matching implements the richer BcastFrom.
func (m *Matching) Bcast(val float64, outdeg int) float64 { return val }

// BcastFrom implements StatefulBcaster: the broadcast value carries the
// message kind, the chosen target (from the phase's messages) and the
// sender's own id.
func (m *Matching) BcastFrom(ctx *Context, v graph.VertexID, val float64, msgs []float64) float64 {
	switch matchPhase(ctx.Step) {
	case 0:
		return matchEncode(matchKindRequest, 0, v)
	case 1:
		return matchEncode(matchKindGrant, minID(msgs), v)
	case 2:
		return matchEncode(matchKindAccept, graph.VertexID(val), v)
	}
	return matchEncode(0, 0, v)
}

// MsgValue implements Program (unused; MsgValueTo takes precedence).
func (m *Matching) MsgValue(bcast float64, weight float32) float64 { return bcast }

// MsgValueTo implements TargetedSender: requests broadcast the sender's
// id; grants and accepts reach only their chosen target.
func (m *Matching) MsgValueTo(bcast float64, dst graph.VertexID, weight float32) (float64, bool) {
	kind, target, self := matchDecode(bcast)
	switch kind {
	case matchKindRequest:
		return float64(self), true
	case matchKindGrant, matchKindAccept:
		return float64(self), dst == target
	}
	return 0, false
}

// Combiner implements Program: ids must all arrive (choices are
// deterministic minima, but grants/accepts are distinct senders).
func (m *Matching) Combiner() Combiner { return nil }

// minID returns the smallest id among message values (deterministic
// choice rule).
func minID(msgs []float64) graph.VertexID {
	best := msgs[0]
	for _, v := range msgs[1:] {
		if v < best {
			best = v
		}
	}
	return graph.VertexID(best)
}

// StatefulBcaster is an optional Program extension for algorithms whose
// broadcast value depends on more than the vertex value — the vertex id
// and the superstep's messages (Pregel programs routinely use both).
// Engines call BcastFrom instead of Bcast when implemented.
type StatefulBcaster interface {
	Program
	BcastFrom(ctx *Context, v graph.VertexID, val float64, msgs []float64) float64
}

// GenBipartite builds a bipartite graph over n vertices (even ids left,
// odd ids right) with approximately m edge *pairs* (each undirected
// contact stored in both directions), deterministically from seed.
func GenBipartite(n, m int, seed int64) *graph.Graph {
	g := graph.GenUniform(n, m, seed)
	b := graph.NewBuilder(n)
	seen := make(map[[2]graph.VertexID]bool)
	for v := 0; v < n; v++ {
		for _, h := range g.OutEdges(graph.VertexID(v)) {
			l, r := graph.VertexID(v), h.Dst
			// Force bipartiteness: connect v's left form to dst's right form.
			l = l &^ 1
			r = r | 1
			if l == r || seen[[2]graph.VertexID{l, r}] {
				continue
			}
			seen[[2]graph.VertexID{l, r}] = true
			b.AddEdge(l, r, h.Weight)
			b.AddEdge(r, l, h.Weight)
		}
	}
	return b.Build()
}
