package algo

import (
	"math"

	"hybridgraph/internal/graph"
)

// ConvergingPageRank is PageRank with a Pregel-style aggregator: each
// superstep sums the absolute rank change across all vertices (the L1
// delta) and the job halts once it falls below epsilon — instead of a
// fixed superstep budget. This is how production deployments of the
// paper's workloads actually terminate PageRank.
type ConvergingPageRank struct {
	PageRank
	epsilon float64
}

// NewConvergingPageRank returns PageRank that halts when the total L1
// rank change drops below epsilon.
func NewConvergingPageRank(damping, epsilon float64) *ConvergingPageRank {
	return &ConvergingPageRank{PageRank: *NewPageRank(damping), epsilon: epsilon}
}

// Name implements Program.
func (p *ConvergingPageRank) Name() string { return "pagerank-converging" }

// Update implements Program: like PageRank, but the halt decision comes
// from the aggregate rather than the superstep count; a vertex keeps
// responding until the previous superstep's global delta converged.
func (p *ConvergingPageRank) Update(ctx *Context, v graph.VertexID, outdeg int, val float64, msgs []float64) (float64, bool) {
	sum := 0.0
	for _, m := range msgs {
		sum += m
	}
	newVal := (1-p.damping)/float64(ctx.NumVertices) + p.damping*sum
	return newVal, ctx.Step < ctx.MaxSteps
}

// Contribute implements Aggregating: the vertex's absolute rank change.
func (p *ConvergingPageRank) Contribute(before, after float64) float64 {
	return math.Abs(after - before)
}

// Reduce implements Aggregating.
func (p *ConvergingPageRank) Reduce(a, b float64) float64 { return a + b }

// Converged implements Aggregating.
func (p *ConvergingPageRank) Converged(aggregate float64) bool {
	return aggregate < p.epsilon
}
