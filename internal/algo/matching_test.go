package algo

import (
	"testing"
	"testing/quick"

	"hybridgraph/internal/graph"
)

func TestMatchEncodeDecodeRoundTrip(t *testing.T) {
	f := func(kindRaw uint8, targetRaw, selfRaw uint32) bool {
		kind := int(kindRaw%3) + 1
		target := graph.VertexID(targetRaw & matchIDMask)
		self := graph.VertexID(selfRaw & matchIDMask)
		k, tg, s := matchDecode(matchEncode(kind, target, self))
		return k == kind && tg == target && s == self
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingPhases(t *testing.T) {
	// Superstep 1 is the request phase; the cycle has length 3.
	for step, want := range map[int]int{1: 0, 2: 1, 3: 2, 4: 0, 7: 0} {
		if got := matchPhase(step); got != want {
			t.Fatalf("phase(step %d) = %d, want %d", step, got, want)
		}
	}
}

func TestMatchingTargeting(t *testing.T) {
	m := NewMatching(4)
	// Requests broadcast.
	req := matchEncode(matchKindRequest, 0, 7)
	if v, keep := m.MsgValueTo(req, 99, 1); !keep || v != 7 {
		t.Fatalf("request: %g, %v", v, keep)
	}
	// Grants reach only the chosen target.
	grant := matchEncode(matchKindGrant, 42, 9)
	if _, keep := m.MsgValueTo(grant, 41, 1); keep {
		t.Fatal("grant leaked to a non-target")
	}
	if v, keep := m.MsgValueTo(grant, 42, 1); !keep || v != 9 {
		t.Fatalf("grant to target: %g, %v", v, keep)
	}
}

func TestMatchingUpdateAttemptBudget(t *testing.T) {
	m := NewMatching(3)
	ctx := &Context{Step: 3, NumVertices: 10, MaxSteps: 100} // phase 2 (accept)
	// A fruitless accept phase decrements the attempt counter.
	val, respond := m.Update(ctx, 0, 2, -1, nil)
	if val != -2 || respond {
		t.Fatalf("fruitless cycle: val=%g respond=%v", val, respond)
	}
	// Out of attempts: the vertex stops requesting.
	ctx.Step = 4 // phase 0
	if _, respond := m.Update(ctx, 0, 2, -3, nil); respond {
		t.Fatal("exhausted vertex should not request")
	}
	// Matched vertices never move again.
	if val, respond := m.Update(ctx, 0, 2, 5, []float64{1}); val != 5 || respond {
		t.Fatal("matched vertex changed state")
	}
}

func TestGenBipartiteProperties(t *testing.T) {
	g := GenBipartite(100, 400, 5)
	seen := map[[2]graph.VertexID]int{}
	for v := 0; v < g.NumVertices; v++ {
		for _, h := range g.OutEdges(graph.VertexID(v)) {
			if v%2 == int(h.Dst)%2 {
				t.Fatalf("edge (%d,%d) is not bipartite", v, h.Dst)
			}
			seen[[2]graph.VertexID{graph.VertexID(v), h.Dst}]++
		}
	}
	for e, c := range seen {
		if c != 1 {
			t.Fatalf("duplicate edge %v", e)
		}
		if seen[[2]graph.VertexID{e[1], e[0]}] != 1 {
			t.Fatalf("edge %v missing its reverse", e)
		}
	}
}

func TestWCCSemantics(t *testing.T) {
	w := NewWCC()
	if v, r := w.Init(&Context{NumVertices: 5}, 3, 2); v != 3 || !r {
		t.Fatalf("Init = %g, %v", v, r)
	}
	if v, r := w.Update(&Context{Step: 2}, 3, 2, 3, []float64{5, 1}); v != 1 || !r {
		t.Fatalf("improving update = %g, %v", v, r)
	}
	if v, r := w.Update(&Context{Step: 3}, 3, 2, 1, []float64{2}); v != 1 || r {
		t.Fatalf("non-improving update = %g, %v", v, r)
	}
	if c := w.Combiner(); c(3, 1) != 1 {
		t.Fatal("WCC combiner should take the minimum")
	}
}

func TestSymmetrize(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := Symmetrize(b.Build())
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	if g.OutDegree(1) != 1 || g.OutEdges(1)[0].Dst != 0 {
		t.Fatal("reverse edge missing")
	}
}

func TestConvergingPageRankAggregation(t *testing.T) {
	p := NewConvergingPageRank(0.85, 0.01)
	if p.Contribute(0.5, 0.3) != 0.2 {
		t.Fatal("Contribute should be |after-before|")
	}
	if p.Reduce(1, 2) != 3 {
		t.Fatal("Reduce should sum")
	}
	if !p.Converged(0.005) || p.Converged(0.02) {
		t.Fatal("Converged threshold wrong")
	}
	if p.Name() == NewPageRank(0.85).Name() {
		t.Fatal("names should differ")
	}
}
