package algo

import "hybridgraph/internal/graph"

// WCC computes weakly connected components by min-label propagation — the
// workload the paper's related-work discussion attributes to Blogel
// ("block-level communication ... only for specific algorithms like
// connected components", Section 2). Every vertex starts with its own id
// and adopts the minimum label it hears; labels flood until components
// stabilise. Messages combine by minimum, so every engine including pushM
// applies.
//
// Correct weak connectivity requires labels to travel both edge
// directions; callers should run WCC on a symmetrised graph (add the
// reverse of every edge) — see Symmetrize.
type WCC struct{}

// NewWCC returns the connected-components program.
func NewWCC() *WCC { return &WCC{} }

// Name implements Program.
func (c *WCC) Name() string { return "wcc" }

// Style implements Program: after the first flood wave only improving
// vertices stay active, the Traversal pattern.
func (c *WCC) Style() Style { return Traversal }

// Init implements Program: every vertex broadcasts its own id.
func (c *WCC) Init(ctx *Context, v graph.VertexID, outdeg int) (float64, bool) {
	return float64(v), true
}

// Update implements Program: adopt the minimum label heard, responding
// only on improvement.
func (c *WCC) Update(ctx *Context, v graph.VertexID, outdeg int, val float64, msgs []float64) (float64, bool) {
	best := val
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	return best, best < val
}

// Bcast implements Program.
func (c *WCC) Bcast(val float64, outdeg int) float64 { return val }

// MsgValue implements Program.
func (c *WCC) MsgValue(bcast float64, weight float32) float64 { return bcast }

// Combiner implements Program: labels combine by minimum.
func (c *WCC) Combiner() Combiner {
	return func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
}

// Symmetrize returns g plus the reverse of every edge, so undirected
// reachability algorithms like WCC see both directions.
func Symmetrize(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices)
	for v := 0; v < g.NumVertices; v++ {
		for _, h := range g.OutEdges(graph.VertexID(v)) {
			b.AddEdge(graph.VertexID(v), h.Dst, h.Weight)
			b.AddEdge(h.Dst, graph.VertexID(v), h.Weight)
		}
	}
	return b.Build()
}
