package algo

import "hybridgraph/internal/graph"

// SA simulates advertisements on a social network (the paper's fourth
// benchmark, from Mizan [15]): selected source vertices inject
// advertisement ids; a vertex receiving ads adopts the one the majority of
// its responding in-neighbours hold, and forwards it only if it matches
// the vertex's interests — otherwise it ignores it. Advertisements are not
// commutative (the update is a majority), so messages concatenate only.
// The frontier grows and collapses abruptly, producing the sudden
// active-vertex variation the paper observes in supersteps 6–10
// (Fig. 11-13).
type SA struct {
	sourceEvery int // every sourceEvery-th vertex is an initial advertiser
	numAds      int
	interestPct uint32 // probability (%) that a vertex is interested in an ad
}

// NewSA returns the social-advertisement program. Every sourceEvery-th
// vertex advertises one of numAds ads; a vertex forwards an adopted ad
// with probability interestPct% (deterministic per vertex/ad pair).
func NewSA(sourceEvery, numAds int, interestPct uint32) *SA {
	if sourceEvery < 1 {
		sourceEvery = 1
	}
	if numAds < 1 {
		numAds = 1
	}
	return &SA{sourceEvery: sourceEvery, numAds: numAds, interestPct: interestPct}
}

// Name implements Program.
func (s *SA) Name() string { return "sa" }

// Style implements Program.
func (s *SA) Style() Style { return Traversal }

const noAd = -1

// Init implements Program: sources adopt their own ad and respond.
func (s *SA) Init(ctx *Context, v graph.VertexID, outdeg int) (float64, bool) {
	if int(v)%s.sourceEvery == 0 {
		return float64(int(v) % s.numAds), true
	}
	return noAd, false
}

// Update implements Program: adopt the majority ad among responding
// in-neighbours; forward it only when interested and not already holding
// an ad (each person forwards at most once).
func (s *SA) Update(ctx *Context, v graph.VertexID, outdeg int, val float64, msgs []float64) (float64, bool) {
	if val != noAd {
		return val, false
	}
	ad, ok := MostFrequent(msgs)
	if !ok {
		return val, false
	}
	if !s.interested(v, ad) {
		return val, false
	}
	return ad, true
}

// Bcast implements Program.
func (s *SA) Bcast(val float64, outdeg int) float64 { return val }

// MsgValue implements Program.
func (s *SA) MsgValue(bcast float64, weight float32) float64 { return bcast }

// Combiner implements Program: majorities need every message.
func (s *SA) Combiner() Combiner { return nil }

// interested is a deterministic hash-based interest test, standing in for
// the per-person favourite-advertisement lists of the original workload.
func (s *SA) interested(v graph.VertexID, ad float64) bool {
	h := uint32(v)*2654435761 + uint32(ad)*40503 + 0x9e3779b9
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	return h%100 < s.interestPct
}

// PhaseOscillator is a synthetic Multi-Phase-Style program used to probe the
// boundary of hybrid (Section 5.3 and Appendix G): activity oscillates
// with period 2·phaseLen — all vertices broadcast during odd phases, only
// a 1/16 sample during even phases — mimicking the periodic behaviour of
// algorithms like minimum spanning tree that defeat the Q^{t+2} predictor.
type PhaseOscillator struct {
	phaseLen int
}

// NewMultiPhase returns the synthetic multi-phase program.
func NewMultiPhase(phaseLen int) *PhaseOscillator {
	if phaseLen < 1 {
		phaseLen = 1
	}
	return &PhaseOscillator{phaseLen: phaseLen}
}

// Name implements Program.
func (m *PhaseOscillator) Name() string { return "multiphase" }

// Style implements Program.
func (m *PhaseOscillator) Style() Style { return MultiPhase }

// Init implements Program.
func (m *PhaseOscillator) Init(ctx *Context, v graph.VertexID, outdeg int) (float64, bool) {
	return float64(v), true
}

// Update implements Program: the respond decision depends only on the
// phase, producing a square-wave active-vertex population.
func (m *PhaseOscillator) Update(ctx *Context, v graph.VertexID, outdeg int, val float64, msgs []float64) (float64, bool) {
	if ctx.Step >= ctx.MaxSteps {
		return val, false
	}
	phase := (ctx.Step / m.phaseLen) % 2
	if phase == 0 {
		return val, true
	}
	return val, v%16 == 0
}

// Bcast implements Program.
func (m *PhaseOscillator) Bcast(val float64, outdeg int) float64 { return val }

// MsgValue implements Program.
func (m *PhaseOscillator) MsgValue(bcast float64, weight float32) float64 { return bcast }

// Combiner implements Program.
func (m *PhaseOscillator) Combiner() Combiner { return nil }
