package algo

import "hybridgraph/internal/graph"

// LPA is the near-linear label propagation community detection algorithm
// (Raghavan et al., the paper's [19]): every vertex starts in its own
// community, and in each superstep adopts the label the majority of its
// in-neighbours broadcast. Labels are not commutative — the whole
// neighbour multiset is needed — so messages can only be concatenated,
// never combined. Every vertex sends every superstep.
type LPA struct{}

// NewLPA returns the label propagation program.
func NewLPA() *LPA { return &LPA{} }

// Name implements Program.
func (l *LPA) Name() string { return "lpa" }

// Style implements Program: all vertices broadcast every superstep.
func (l *LPA) Style() Style { return AlwaysActive }

// Init implements Program: the label is the vertex's own id.
func (l *LPA) Init(ctx *Context, v graph.VertexID, outdeg int) (float64, bool) {
	return float64(v), true
}

// Update implements Program: adopt the most frequent label received.
func (l *LPA) Update(ctx *Context, v graph.VertexID, outdeg int, val float64, msgs []float64) (float64, bool) {
	if lbl, ok := MostFrequent(msgs); ok {
		val = lbl
	}
	return val, ctx.Step < ctx.MaxSteps
}

// Bcast implements Program.
func (l *LPA) Bcast(val float64, outdeg int) float64 { return val }

// MsgValue implements Program.
func (l *LPA) MsgValue(bcast float64, weight float32) float64 { return bcast }

// Combiner implements Program: labels cannot be combined (Section 6,
// "Messages, i.e., community labels, are thereby not commutative"), which
// is why MOCgraph's pushM does not appear in the paper's LPA plots.
func (l *LPA) Combiner() Combiner { return nil }
