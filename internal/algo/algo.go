// Package algo defines the vertex-program interface shared by every
// engine and implements the paper's four benchmark algorithms: PageRank,
// SSSP, LPA and SA (Section 6). The interface is the decoupled form the
// paper requires for seamless push/b-pull switching (Section 5.2):
// compute() is split into update() — here Update — and the message-
// generation side — here Bcast + MsgValue, playing the role of pullRes()
// and pushRes() depending on the engine.
package algo

import (
	"math"

	"hybridgraph/internal/graph"
)

// Style is the Shang–Yu classification of graph algorithms by how the
// active-vertex population evolves (Section 5.3), which bounds where the
// hybrid switcher is effective.
type Style int

const (
	// AlwaysActive: every vertex sends to all neighbours every superstep
	// (PageRank, LPA). Predictions of Q^{t+2} are always accurate.
	AlwaysActive Style = iota
	// Traversal: activity spreads from starting points and varies, mostly
	// monotonically, across supersteps (SSSP, SA).
	Traversal
	// MultiPhase: activity oscillates periodically; the current hybrid
	// cannot accumulate switching gains here.
	MultiPhase
)

// String implements fmt.Stringer.
func (s Style) String() string {
	switch s {
	case AlwaysActive:
		return "always-active"
	case Traversal:
		return "traversal"
	case MultiPhase:
		return "multi-phase"
	}
	return "unknown"
}

// Context carries per-superstep globals into a Program.
type Context struct {
	Step        int // 1-based superstep number
	NumVertices int
	MaxSteps    int
	// Aggregate is the reduced aggregator value from the previous
	// superstep, for Aggregating programs (0 before the first reduction).
	Aggregate float64
}

// Combiner merges two commutative, associative message values.
type Combiner func(a, b float64) float64

// Program is a vertex program. All vertex and message state is a single
// float64: rank mass, tentative distance, community label or advertisement
// id — exact for integers below 2^53.
type Program interface {
	// Name reports the algorithm name used in reports.
	Name() string
	// Style reports the activity class.
	Style() Style
	// Init runs at superstep 1 in place of Update: it returns the initial
	// value and whether the vertex responds (broadcasts) to superstep 2.
	Init(ctx *Context, v graph.VertexID, outdeg int) (val float64, respond bool)
	// Update consumes the messages received (already combined when
	// Combiner is non-nil) and returns the new value and the respond flag.
	Update(ctx *Context, v graph.VertexID, outdeg int, val float64, msgs []float64) (newVal float64, respond bool)
	// Bcast converts a responding vertex's state into the broadcast value
	// stored in the vertex record's bcast column; message generation needs
	// only this value plus the edge weight.
	Bcast(val float64, outdeg int) float64
	// MsgValue produces the message value for one out-edge.
	MsgValue(bcast float64, weight float32) float64
	// Combiner returns the message reducer, or nil when messages are not
	// commutative (LPA, SA) and must be concatenated instead.
	Combiner() Combiner
}

// ByName constructs one of the four paper algorithms with its default
// parameters. source seeds SSSP and SA.
func ByName(name string, source graph.VertexID) (Program, bool) {
	switch name {
	case "pagerank", "pr":
		return NewPageRank(0.85), true
	case "sssp":
		return NewSSSP(source), true
	case "lpa":
		return NewLPA(), true
	case "sa":
		return NewSA(64, 16, 55), true
	case "wcc", "cc":
		return NewWCC(), true
	case "matching":
		return NewMatching(8), true
	case "mst-phase", "multiphase":
		return NewMultiPhase(4), true
	}
	return nil, false
}

// TargetedSender is an optional Program extension for algorithms that
// address a single chosen neighbour instead of broadcasting (Pregel's
// SendMessageTo): MsgValueTo sees the destination vertex and may return
// keep=false to suppress the message on that edge. Engines consult it in
// place of MsgValue when implemented.
type TargetedSender interface {
	Program
	MsgValueTo(bcast float64, dst graph.VertexID, weight float32) (val float64, keep bool)
}

// Aggregating is an optional Program extension modelled on Pregel's
// aggregators: after each superstep the master reduces per-vertex
// contributions into one global value, which the next superstep sees in
// Context.Aggregate and which may signal convergence (e.g. PageRank's L1
// rank delta falling below a threshold).
type Aggregating interface {
	Program
	// Contribute returns a vertex's contribution from its values before
	// and after update().
	Contribute(before, after float64) float64
	// Reduce merges two contributions; it must be commutative and
	// associative.
	Reduce(a, b float64) float64
	// Converged reports whether the reduced value signals a global halt.
	Converged(aggregate float64) bool
}

// Infinity is the SSSP "unreached" distance.
var Infinity = math.Inf(1)

// MostFrequent returns the most frequent value in msgs, breaking ties
// toward the smaller value; ok is false when msgs is empty. Shared by LPA
// and SA, whose updates both take a majority over received values.
func MostFrequent(msgs []float64) (float64, bool) {
	if len(msgs) == 0 {
		return 0, false
	}
	counts := make(map[float64]int, len(msgs))
	for _, m := range msgs {
		counts[m]++
	}
	best, bestN := msgs[0], 0
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best, true
}
