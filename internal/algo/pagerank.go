package algo

import "hybridgraph/internal/graph"

// PageRank is the paper's Fig. 3 PageRank: every vertex sums incoming rank
// shares, damps them, and broadcasts its new rank divided by its
// out-degree, for a fixed number of supersteps (the paper runs 5 or 10 and
// reports per-superstep averages).
type PageRank struct {
	damping float64
}

// NewPageRank returns PageRank with the given damping factor (0.85 in the
// literature the paper follows).
func NewPageRank(damping float64) *PageRank { return &PageRank{damping: damping} }

// Name implements Program.
func (p *PageRank) Name() string { return "pagerank" }

// Style implements Program: PageRank is the canonical Always-Active-Style
// algorithm.
func (p *PageRank) Style() Style { return AlwaysActive }

// Init implements Program: ranks start uniform and every vertex responds.
func (p *PageRank) Init(ctx *Context, v graph.VertexID, outdeg int) (float64, bool) {
	return 1.0 / float64(ctx.NumVertices), true
}

// Update implements Program.
func (p *PageRank) Update(ctx *Context, v graph.VertexID, outdeg int, val float64, msgs []float64) (float64, bool) {
	sum := 0.0
	for _, m := range msgs {
		sum += m
	}
	newVal := (1-p.damping)/float64(ctx.NumVertices) + p.damping*sum
	// Vote to halt once the superstep budget is exhausted (Fig. 3(a),
	// lines 12-14).
	return newVal, ctx.Step < ctx.MaxSteps
}

// Bcast implements Program: the broadcast value is the rank share per
// out-edge, so MsgValue needs no degree lookup at the sender.
func (p *PageRank) Bcast(val float64, outdeg int) float64 {
	if outdeg == 0 {
		return 0
	}
	return val / float64(outdeg)
}

// MsgValue implements Program.
func (p *PageRank) MsgValue(bcast float64, weight float32) float64 { return bcast }

// Combiner implements Program: rank shares sum.
func (p *PageRank) Combiner() Combiner {
	return func(a, b float64) float64 { return a + b }
}
