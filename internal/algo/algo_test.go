package algo

import (
	"math"
	"testing"
	"testing/quick"

	"hybridgraph/internal/graph"
)

func ctx(step, n, max int) *Context {
	return &Context{Step: step, NumVertices: n, MaxSteps: max}
}

func TestPageRankSemantics(t *testing.T) {
	pr := NewPageRank(0.85)
	val, respond := pr.Init(ctx(1, 100, 5), 3, 4)
	if val != 0.01 || !respond {
		t.Fatalf("Init = %g, %v", val, respond)
	}
	nv, r := pr.Update(ctx(2, 100, 5), 3, 4, val, []float64{0.1, 0.2})
	want := 0.15/100 + 0.85*0.3
	if math.Abs(nv-want) > 1e-15 || !r {
		t.Fatalf("Update = %g, %v; want %g, true", nv, r, want)
	}
	// Last superstep votes to halt.
	if _, r := pr.Update(ctx(5, 100, 5), 3, 4, nv, nil); r {
		t.Fatal("should not respond at MaxSteps")
	}
	if b := pr.Bcast(0.8, 4); b != 0.2 {
		t.Fatalf("Bcast = %g, want 0.2", b)
	}
	if b := pr.Bcast(0.8, 0); b != 0 {
		t.Fatalf("Bcast with zero out-degree = %g, want 0", b)
	}
	if pr.Combiner() == nil || pr.Combiner()(1, 2) != 3 {
		t.Fatal("PageRank combiner should sum")
	}
	if pr.Style() != AlwaysActive {
		t.Fatal("PageRank is Always-Active-Style")
	}
}

func TestSSSPSemantics(t *testing.T) {
	s := NewSSSP(7)
	if v, r := s.Init(ctx(1, 10, 5), 7, 2); v != 0 || !r {
		t.Fatalf("source Init = %g, %v", v, r)
	}
	if v, r := s.Init(ctx(1, 10, 5), 3, 2); !math.IsInf(v, 1) || r {
		t.Fatalf("non-source Init = %g, %v", v, r)
	}
	// Improvement responds; non-improvement stays silent.
	if v, r := s.Update(ctx(2, 10, 5), 3, 2, Infinity, []float64{5, 3, 9}); v != 3 || !r {
		t.Fatalf("Update = %g, %v; want 3, true", v, r)
	}
	if v, r := s.Update(ctx(3, 10, 5), 3, 2, 3, []float64{4, 8}); v != 3 || r {
		t.Fatalf("no-improvement Update = %g, %v; want 3, false", v, r)
	}
	if m := s.MsgValue(3, 0.5); m != 3.5 {
		t.Fatalf("MsgValue = %g, want 3.5", m)
	}
	if c := s.Combiner(); c(2, 1) != 1 || c(1, 2) != 1 {
		t.Fatal("SSSP combiner should take the minimum")
	}
	if s.Style() != Traversal {
		t.Fatal("SSSP is Traversal-Style")
	}
}

func TestLPASemantics(t *testing.T) {
	l := NewLPA()
	if v, r := l.Init(ctx(1, 10, 5), 4, 1); v != 4 || !r {
		t.Fatalf("Init = %g, %v", v, r)
	}
	if v, _ := l.Update(ctx(2, 10, 5), 4, 1, 4, []float64{7, 7, 2}); v != 7 {
		t.Fatalf("majority label = %g, want 7", v)
	}
	// No messages: keep the label.
	if v, _ := l.Update(ctx(2, 10, 5), 4, 1, 4, nil); v != 4 {
		t.Fatalf("empty-update label = %g, want 4", v)
	}
	if l.Combiner() != nil {
		t.Fatal("LPA labels must not combine")
	}
}

func TestMostFrequentTieBreaksSmall(t *testing.T) {
	if v, ok := MostFrequent([]float64{5, 2, 5, 2}); !ok || v != 2 {
		t.Fatalf("MostFrequent tie = %g, want 2", v)
	}
	if _, ok := MostFrequent(nil); ok {
		t.Fatal("MostFrequent(nil) should report !ok")
	}
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		msgs := make([]float64, len(raw))
		counts := map[float64]int{}
		for i, r := range raw {
			msgs[i] = float64(r % 8)
			counts[msgs[i]]++
		}
		got, ok := MostFrequent(msgs)
		if !ok {
			return false
		}
		// No value may strictly beat the winner, and ties go to smaller.
		for v, c := range counts {
			if c > counts[got] {
				return false
			}
			if c == counts[got] && v < got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSASemantics(t *testing.T) {
	sa := NewSA(4, 8, 100) // always interested
	if v, r := sa.Init(ctx(1, 100, 9), 8, 3); v != 0 || !r {
		t.Fatalf("source Init = %g, %v (vertex 8, ad 8%%8=0)", v, r)
	}
	if v, r := sa.Init(ctx(1, 100, 9), 9, 3); v != noAd || r {
		t.Fatalf("non-source Init = %g, %v", v, r)
	}
	// Adoption of the majority ad, forwarding once.
	v, r := sa.Update(ctx(2, 100, 9), 9, 3, noAd, []float64{2, 2, 5})
	if v != 2 || !r {
		t.Fatalf("adopt = %g, %v; want 2, true", v, r)
	}
	// Already holding an ad: ignore further messages, never re-forward.
	if v, r := sa.Update(ctx(3, 100, 9), 9, 3, 2, []float64{5, 5}); v != 2 || r {
		t.Fatalf("re-update = %g, %v; want 2, false", v, r)
	}
	// Zero interest: never adopts.
	cold := NewSA(4, 8, 0)
	if _, r := cold.Update(ctx(2, 100, 9), 9, 3, noAd, []float64{2}); r {
		t.Fatal("uninterested vertex should not forward")
	}
	if sa.Combiner() != nil {
		t.Fatal("SA ads must not combine")
	}
}

func TestSAInterestDeterministic(t *testing.T) {
	sa := NewSA(4, 8, 50)
	for v := graph.VertexID(0); v < 100; v++ {
		a := sa.interested(v, 3)
		b := sa.interested(v, 3)
		if a != b {
			t.Fatalf("interest of vertex %d not deterministic", v)
		}
	}
}

func TestPhaseOscillator(t *testing.T) {
	m := NewMultiPhase(3)
	if m.Style() != MultiPhase {
		t.Fatal("style should be MultiPhase")
	}
	// Phase 0 (steps 1,2 with phaseLen 3... step/3 alternates): every
	// vertex responds in even phases, a sample in odd phases.
	_, rAll := m.Update(ctx(1, 100, 50), 5, 2, 5, nil)
	_, rSample := m.Update(ctx(4, 100, 50), 5, 2, 5, nil)
	if !rAll || rSample {
		t.Fatalf("phase responses = %v, %v; want true, false for vertex 5", rAll, rSample)
	}
	if _, r := m.Update(ctx(4, 100, 50), 16, 2, 16, nil); !r {
		t.Fatal("sampled vertex (16%%16==0) should respond in odd phases")
	}
	if _, r := m.Update(ctx(50, 100, 50), 16, 2, 16, nil); r {
		t.Fatal("should halt at MaxSteps")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"pagerank", "pr", "sssp", "lpa", "sa", "multiphase"} {
		p, ok := ByName(name, 0)
		if !ok || p == nil {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope", 0); ok {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestStyleString(t *testing.T) {
	if AlwaysActive.String() != "always-active" || Traversal.String() != "traversal" ||
		MultiPhase.String() != "multi-phase" || Style(99).String() != "unknown" {
		t.Fatal("Style.String mismatch")
	}
}
