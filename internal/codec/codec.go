// Package codec is the pluggable block-codec subsystem for every
// on-disk structure the engine writes: adjacency runs, VE-BLOCK
// fragments, message spills, msglog segments and checkpoint snapshots.
//
// The design splits byte accounting into two dimensions. The *logical*
// bytes are the paper's cost model — Eqs. (7)/(8), the Q^t switch
// inputs, the trace-vs-stats cross-checks — and are computed exactly as
// if every structure were stored raw, whatever codec is active. The
// *physical* bytes are what actually hits the disk: compressed frames,
// charged to a parallel physical counter (diskio.Counter.Phys). A codec
// therefore never changes a job's logical statistics or its final
// values; it only shrinks the physical dimension.
//
// Every compressed block is wrapped in a self-describing frame:
//
//	offset size  field
//	0      4     magic "HGCB"
//	4      1     codec ID (registry: none=0, delta=1, lz=2)
//	5      1     reserved (zero)
//	6      4     logical length  (uint32 LE, bytes before encoding)
//	10     4     physical length (uint32 LE, bytes of payload)
//	14     n     payload (encoded bytes)
//	14+n   4     CRC32 (IEEE) of header+payload
//
// The trailing CRC covers the header too, so a bit flip anywhere in the
// frame — length fields included — surfaces as ErrCorrupt rather than a
// silent mis-decode. Frames are self-delimiting: ParseHeader on the
// first HeaderSize bytes yields the total frame length.
package codec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Frame geometry.
const (
	HeaderSize    = 14             // magic + id + reserved + 2×u32
	FrameOverhead = HeaderSize + 4 // plus trailing CRC32
	MaxBlockLen   = 1<<31 - 1      // lengths are u32; keep int-safe
	magic         = "HGCB"
	// FrameMagic is the frame prefix, exported so readers of
	// self-describing files (checkpoint snapshots) can sniff whether a
	// file is codec-framed before deciding how to charge the read.
	FrameMagic = magic
)

// ErrCorrupt is the typed sentinel every decode failure wraps: bad
// magic, truncated frame, CRC mismatch, unknown codec ID, or a payload
// that does not decode to its declared logical length. Callers match it
// with errors.Is, including through the diskio fault layer's wrapping.
var ErrCorrupt = errors.New("codec: corrupt block")

// ErrUnknown reports a codec name that is not registered.
var ErrUnknown = errors.New("codec: unknown codec")

// Codec encodes a logical byte block into a physical payload and back.
// Encode never fails (every codec has a raw fallback); Decode validates
// and reports ErrCorrupt-wrapped failures.
type Codec interface {
	Name() string
	ID() byte
	// Encode appends the encoded form of src to dst and returns it.
	Encode(dst, src []byte) []byte
	// Decode appends the decoded form of src to dst and returns it. The
	// caller supplies the expected logical length from the frame header;
	// a mismatch is corruption.
	Decode(dst, src []byte, logicalLen int) ([]byte, error)
}

// ---- registry -------------------------------------------------------

var (
	byName = map[string]Codec{}
	byID   = map[byte]Codec{}
)

// None is the identity codec (ID 0): payload == logical bytes.
var None Codec = noneCodec{}

func register(c Codec) {
	byName[c.Name()] = c
	byID[c.ID()] = c
}

func init() {
	register(None)
	register(deltaCodec{})
	register(lzCodec{})
}

// Lookup resolves a codec by name. The empty string means "none".
func Lookup(name string) (Codec, error) {
	if name == "" {
		return None, nil
	}
	if c, ok := byName[name]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknown, name, Names())
}

// ByID resolves a codec by its frame ID byte.
func ByID(id byte) (Codec, error) {
	if c, ok := byID[id]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("%w: frame declares codec id %d", ErrCorrupt, id)
}

// Names lists the registered codec names, sorted.
func Names() []string {
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsNone reports whether c is absent or the identity codec.
func IsNone(c Codec) bool { return c == nil || c.ID() == 0 }

// ---- frame ----------------------------------------------------------

// Header is the parsed fixed-size prefix of one frame.
type Header struct {
	CodecID     byte
	LogicalLen  int
	PhysicalLen int
}

// FrameLen is the total on-disk size of the frame this header describes.
func (h Header) FrameLen() int { return FrameOverhead + h.PhysicalLen }

// AppendFrame encodes logical with c and appends one complete frame to
// dst, returning the extended slice.
func AppendFrame(dst []byte, c Codec, logical []byte) []byte {
	if c == nil {
		c = None
	}
	if len(logical) > MaxBlockLen {
		// Callers chunk well below this; guard anyway.
		panic("codec: block exceeds maximum frame size")
	}
	start := len(dst)
	dst = append(dst, magic...)
	dst = append(dst, c.ID(), 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(logical)))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // physLen patched below
	dst = c.Encode(dst, logical)
	phys := len(dst) - start - HeaderSize
	binary.LittleEndian.PutUint32(dst[start+10:], uint32(phys))
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// ParseHeader validates the fixed-size prefix of a frame. It does not
// verify the CRC (the payload may not be in b yet); DecodeFrame does.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("%w: truncated frame header (%d bytes)", ErrCorrupt, len(b))
	}
	if string(b[:4]) != magic {
		return Header{}, fmt.Errorf("%w: bad frame magic %q", ErrCorrupt, b[:4])
	}
	h := Header{
		CodecID:     b[4],
		LogicalLen:  int(binary.LittleEndian.Uint32(b[6:])),
		PhysicalLen: int(binary.LittleEndian.Uint32(b[10:])),
	}
	if _, err := ByID(h.CodecID); err != nil {
		return Header{}, err
	}
	return h, nil
}

// DecodeFrame verifies and decodes the frame at the start of b,
// appending the logical bytes to dst. It returns the extended dst and
// the total frame length consumed.
func DecodeFrame(dst, b []byte) ([]byte, int, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return dst, 0, err
	}
	n := h.FrameLen()
	if len(b) < n {
		return dst, 0, fmt.Errorf("%w: truncated frame (%d of %d bytes)", ErrCorrupt, len(b), n)
	}
	body := b[:HeaderSize+h.PhysicalLen]
	want := binary.LittleEndian.Uint32(b[HeaderSize+h.PhysicalLen:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return dst, 0, fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	c, err := ByID(h.CodecID)
	if err != nil {
		return dst, 0, err
	}
	dst, err = c.Decode(dst, body[HeaderSize:], h.LogicalLen)
	if err != nil {
		return dst, 0, err
	}
	return dst, n, nil
}

// ---- none -----------------------------------------------------------

type noneCodec struct{}

func (noneCodec) Name() string { return "none" }
func (noneCodec) ID() byte     { return 0 }

func (noneCodec) Encode(dst, src []byte) []byte { return append(dst, src...) }

func (noneCodec) Decode(dst, src []byte, logicalLen int) ([]byte, error) {
	if len(src) != logicalLen {
		return dst, fmt.Errorf("%w: none payload %d bytes, logical %d", ErrCorrupt, len(src), logicalLen)
	}
	return append(dst, src...), nil
}

// ---- delta ----------------------------------------------------------

// deltaCodec targets the sorted fixed-width ID runs adjacency and
// VE-BLOCK fragments are made of: the block is viewed as a stream of
// little-endian uint32 words and stored as zigzag-varint deltas between
// consecutive words. Sorted neighbour runs collapse to one or two bytes
// per edge. A leading marker byte keeps arbitrary input safe: blocks
// whose length is not word-aligned, or where delta coding would grow
// the block, fall back to a raw copy.
type deltaCodec struct{}

const (
	deltaRaw   = 0 // payload[1:] is the logical block verbatim
	deltaWords = 1 // payload[1:] is zigzag-varint deltas of LE u32 words
)

func (deltaCodec) Name() string { return "delta" }
func (deltaCodec) ID() byte     { return 1 }

func (deltaCodec) Encode(dst, src []byte) []byte {
	if len(src)%4 != 0 || len(src) == 0 {
		return append(append(dst, deltaRaw), src...)
	}
	start := len(dst)
	dst = append(dst, deltaWords)
	var prev uint32
	var tmp [binary.MaxVarintLen64]byte
	for i := 0; i < len(src); i += 4 {
		w := binary.LittleEndian.Uint32(src[i:])
		d := int64(w) - int64(prev)
		n := binary.PutVarint(tmp[:], d)
		dst = append(dst, tmp[:n]...)
		prev = w
		if len(dst)-start > len(src) {
			// Growing: abandon and store raw.
			return append(append(dst[:start], deltaRaw), src...)
		}
	}
	return dst
}

func (deltaCodec) Decode(dst, src []byte, logicalLen int) ([]byte, error) {
	if len(src) == 0 {
		return dst, fmt.Errorf("%w: empty delta payload", ErrCorrupt)
	}
	switch src[0] {
	case deltaRaw:
		if len(src)-1 != logicalLen {
			return dst, fmt.Errorf("%w: raw delta payload %d bytes, logical %d", ErrCorrupt, len(src)-1, logicalLen)
		}
		return append(dst, src[1:]...), nil
	case deltaWords:
		if logicalLen%4 != 0 {
			return dst, fmt.Errorf("%w: delta-coded block with unaligned logical length %d", ErrCorrupt, logicalLen)
		}
		body := src[1:]
		var prev uint32
		got := 0
		for got < logicalLen {
			d, n := binary.Varint(body)
			if n <= 0 {
				return dst, fmt.Errorf("%w: bad varint in delta block", ErrCorrupt)
			}
			body = body[n:]
			w := uint32(int64(prev) + d)
			dst = binary.LittleEndian.AppendUint32(dst, w)
			prev = w
			got += 4
		}
		if len(body) != 0 {
			return dst, fmt.Errorf("%w: %d trailing bytes in delta block", ErrCorrupt, len(body))
		}
		return dst, nil
	default:
		return dst, fmt.Errorf("%w: unknown delta marker %d", ErrCorrupt, src[0])
	}
}

// ---- lz -------------------------------------------------------------

// lzCodec is the general byte codec: DEFLATE (stdlib compress/flate)
// with a raw-copy fallback when compression does not pay. Marker byte
// as in deltaCodec.
type lzCodec struct{}

const (
	lzRaw   = 0
	lzFlate = 1
)

func (lzCodec) Name() string { return "lz" }
func (lzCodec) ID() byte     { return 2 }

func (lzCodec) Encode(dst, src []byte) []byte {
	if len(src) == 0 {
		return append(dst, lzRaw)
	}
	var buf bytes.Buffer
	buf.Grow(len(src) / 2)
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err == nil {
		if _, err = zw.Write(src); err == nil {
			err = zw.Close()
		}
	}
	if err != nil || buf.Len() >= len(src) {
		return append(append(dst, lzRaw), src...)
	}
	return append(append(dst, lzFlate), buf.Bytes()...)
}

func (lzCodec) Decode(dst, src []byte, logicalLen int) ([]byte, error) {
	if len(src) == 0 {
		return dst, fmt.Errorf("%w: empty lz payload", ErrCorrupt)
	}
	switch src[0] {
	case lzRaw:
		if len(src)-1 != logicalLen {
			return dst, fmt.Errorf("%w: raw lz payload %d bytes, logical %d", ErrCorrupt, len(src)-1, logicalLen)
		}
		return append(dst, src[1:]...), nil
	case lzFlate:
		zr := flate.NewReader(bytes.NewReader(src[1:]))
		out := make([]byte, logicalLen)
		if _, err := io.ReadFull(zr, out); err != nil {
			return dst, fmt.Errorf("%w: flate decode: %v", ErrCorrupt, err)
		}
		// Exactly logicalLen bytes, then EOF.
		var one [1]byte
		if n, _ := zr.Read(one[:]); n != 0 {
			return dst, fmt.Errorf("%w: flate stream longer than logical length %d", ErrCorrupt, logicalLen)
		}
		zr.Close()
		return append(dst, out...), nil
	default:
		return dst, fmt.Errorf("%w: unknown lz marker %d", ErrCorrupt, src[0])
	}
}
