package codec

import (
	"bytes"
	"errors"
	"testing"
)

func fuzzSeeds(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte("hello, world"))
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0}) // sorted LE u32 run
	f.Add(bytes.Repeat([]byte("ab"), 400))
	f.Add([]byte{0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa, 0xf9})
}

// FuzzRoundtripNone / Delta / Lz: for arbitrary logical blocks, the
// encode → frame → decode cycle must reproduce the input exactly.
func fuzzRoundtrip(f *testing.F, name string) {
	c, err := Lookup(name)
	if err != nil {
		f.Fatal(err)
	}
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, block []byte) {
		frame := AppendFrame(nil, c, block)
		out, n, err := DecodeFrame(nil, frame)
		if err != nil {
			t.Fatalf("decode of own frame: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("consumed %d of %d frame bytes", n, len(frame))
		}
		if !bytes.Equal(out, block) {
			t.Fatalf("roundtrip mismatch: %d in, %d out", len(block), len(out))
		}
	})
}

func FuzzRoundtripNone(f *testing.F)  { fuzzRoundtrip(f, "none") }
func FuzzRoundtripDelta(f *testing.F) { fuzzRoundtrip(f, "delta") }
func FuzzRoundtripLz(f *testing.F)    { fuzzRoundtrip(f, "lz") }

// FuzzDecodeFrame feeds arbitrary bytes to the frame decoder: it must
// never panic, and every failure must be the typed ErrCorrupt. Inputs
// that happen to be valid frames must decode to their declared logical
// length and re-encode losslessly.
func FuzzDecodeFrame(f *testing.F) {
	fuzzSeeds(f)
	for _, name := range Names() {
		c, _ := Lookup(name)
		f.Add(AppendFrame(nil, c, []byte("seed payload for the decoder")))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		out, n, err := DecodeFrame(nil, b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode failure: %v", err)
			}
			return
		}
		if n < FrameOverhead || n > len(b) {
			t.Fatalf("decoded frame length %d out of range (input %d)", n, len(b))
		}
		h, err := ParseHeader(b)
		if err != nil {
			t.Fatalf("decoded a frame whose header does not parse: %v", err)
		}
		if len(out) != h.LogicalLen {
			t.Fatalf("decoded %d bytes, header declares %d", len(out), h.LogicalLen)
		}
	})
}
