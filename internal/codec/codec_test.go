package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"hybridgraph/internal/diskio"
)

// testBlocks covers the payload shapes the stores produce: empty, tiny,
// word-aligned sorted runs (adjacency), unaligned tails, incompressible
// noise, and a multi-chunk image.
func testBlocks() [][]byte {
	rng := rand.New(rand.NewSource(42))
	sorted := make([]byte, 4*10000)
	v := uint32(0)
	for i := 0; i < len(sorted); i += 4 {
		v += uint32(rng.Intn(5))
		binary.LittleEndian.PutUint32(sorted[i:], v)
	}
	noise := make([]byte, 33333)
	rng.Read(noise)
	big := bytes.Repeat([]byte("hybrid pulling and pushing "), 10000)
	return [][]byte{
		nil,
		{0x01},
		[]byte("hello"),
		sorted,
		noise,
		big,
	}
}

func TestRoundtripAllCodecs(t *testing.T) {
	for _, name := range Names() {
		c, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, block := range testBlocks() {
			frame := AppendFrame(nil, c, block)
			h, err := ParseHeader(frame)
			if err != nil {
				t.Fatalf("%s block %d: %v", name, i, err)
			}
			if h.CodecID != c.ID() || h.LogicalLen != len(block) || h.FrameLen() != len(frame) {
				t.Fatalf("%s block %d: header %+v, frame %d bytes", name, i, h, len(frame))
			}
			out, n, err := DecodeFrame(nil, frame)
			if err != nil {
				t.Fatalf("%s block %d: decode: %v", name, i, err)
			}
			if n != len(frame) || !bytes.Equal(out, block) {
				t.Fatalf("%s block %d: roundtrip mismatch (%d of %d bytes consumed)", name, i, n, len(frame))
			}
		}
	}
}

// TestDeltaCompressesSortedRuns pins the codec's reason to exist: sorted
// word runs (adjacency lists) must shrink; lz must shrink repetitive text.
func TestDeltaCompressesSortedRuns(t *testing.T) {
	blocks := testBlocks()
	sorted, big := blocks[3], blocks[5]
	d, _ := Lookup("delta")
	if got := len(AppendFrame(nil, d, sorted)); got >= len(sorted) {
		t.Errorf("delta frame of sorted run: %d bytes for %d logical", got, len(sorted))
	}
	l, _ := Lookup("lz")
	if got := len(AppendFrame(nil, l, big)); got >= len(big) {
		t.Errorf("lz frame of repetitive text: %d bytes for %d logical", got, len(big))
	}
}

// TestEncodeNeverGrowsPastRawFallback: every codec carries a raw-copy
// escape, so the payload is never more than one marker byte over logical.
func TestEncodeNeverGrowsPastRawFallback(t *testing.T) {
	for _, name := range []string{"delta", "lz"} {
		c, _ := Lookup(name)
		for i, block := range testBlocks() {
			frame := AppendFrame(nil, c, block)
			if len(frame) > len(block)+1+FrameOverhead {
				t.Errorf("%s block %d: frame %d bytes for %d logical", name, i, len(frame), len(block))
			}
		}
	}
}

func TestLookupErrors(t *testing.T) {
	if c, err := Lookup(""); err != nil || !IsNone(c) {
		t.Fatalf("Lookup(\"\") = %v, %v; want the none codec", c, err)
	}
	if _, err := Lookup("snappy"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Lookup(snappy) error = %v, want ErrUnknown", err)
	}
	if _, err := ByID(200); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ByID(200) error = %v, want ErrCorrupt", err)
	}
}

// TestCorruptFramesAreTyped flips, truncates and rewrites frames every
// way a disk can and demands errors.Is(err, ErrCorrupt) each time.
func TestCorruptFramesAreTyped(t *testing.T) {
	c, _ := Lookup("lz")
	block := bytes.Repeat([]byte("abcdefgh"), 600)
	frame := AppendFrame(nil, c, block)

	mutations := map[string]func([]byte) []byte{
		"bad magic":      func(f []byte) []byte { f[0] ^= 0xff; return f },
		"unknown codec":  func(f []byte) []byte { f[4] = 200; return f },
		"logical len":    func(f []byte) []byte { f[6] ^= 0x10; return f },
		"physical len":   func(f []byte) []byte { f[10] ^= 0x01; return f },
		"payload flip":   func(f []byte) []byte { f[HeaderSize+3] ^= 0x40; return f },
		"crc flip":       func(f []byte) []byte { f[len(f)-1] ^= 0x01; return f },
		"truncated head": func(f []byte) []byte { return f[:HeaderSize-2] },
		"truncated body": func(f []byte) []byte { return f[:len(f)-7] },
	}
	for name, mutate := range mutations {
		mutated := mutate(append([]byte(nil), frame...))
		if _, _, err := DecodeFrame(nil, mutated); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error = %v, want ErrCorrupt", name, err)
		}
	}
	// The pristine frame still decodes after all that (mutations copied).
	if out, _, err := DecodeFrame(nil, frame); err != nil || !bytes.Equal(out, block) {
		t.Fatalf("pristine frame broken: %v", err)
	}
}

// TestBlockFileRoundtrip exercises the chunked store: multi-chunk image,
// sequential and random reads, logical accounting identical to a raw
// File, physical bytes smaller than logical for compressible data.
func TestBlockFileRoundtrip(t *testing.T) {
	for _, name := range []string{"none", "delta", "lz"} {
		c, _ := Lookup(name)
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			img := make([]byte, 3*ChunkSize+1234) // multi-chunk with a short tail
			v := uint32(0)
			for i := 0; i+4 <= len(img); i += 4 {
				v += uint32(i % 7)
				binary.LittleEndian.PutUint32(img[i:], v)
			}

			// Raw reference: the same writes and reads against a plain File
			// (Create + one sequential write, the raw stores' pattern).
			var rawCt diskio.Counter
			rawPath := filepath.Join(dir, "raw.dat")
			rw, err := diskio.Create(rawPath, &rawCt)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rw.WriteAtClass(img, 0, diskio.SeqWrite); err != nil {
				t.Fatal(err)
			}
			if err := rw.Close(); err != nil {
				t.Fatal(err)
			}

			var ct diskio.Counter
			phys := &diskio.Counter{}
			ct.SetPhys(phys)
			path := filepath.Join(dir, "blk.dat")
			if err := WriteBlockFile(path, &ct, c, img); err != nil {
				t.Fatal(err)
			}
			if ct.Snapshot() != rawCt.Snapshot() {
				t.Fatalf("write: logical %v != raw-store %v", ct.Snapshot(), rawCt.Snapshot())
			}

			b, err := OpenBlockFile(path, &ct)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			if sz, _ := b.Size(); sz != int64(len(img)) {
				t.Fatalf("Size = %d, want %d", sz, len(img))
			}

			rf, err := diskio.OpenRead(rawPath, &rawCt)
			if err != nil {
				t.Fatal(err)
			}
			defer rf.Close()

			reads := []struct {
				off int64
				n   int
				cls diskio.Class
			}{
				{0, 8192, diskio.SeqRead},
				{8192, 8192, diskio.SeqRead},
				{int64(len(img)) - 100, 100, diskio.RandRead},
				{ChunkSize - 10, 20, diskio.RandRead}, // chunk-straddling
				{0, 0, diskio.RandRead},               // zero-byte op
				{int64(len(img)) + 5, 10, diskio.RandRead},
			}
			for i, r := range reads {
				got := make([]byte, r.n)
				want := make([]byte, r.n)
				gn, gerr := b.ReadAtClass(got, r.off, r.cls)
				wn, werr := rf.ReadAtClass(want, r.off, r.cls)
				if gn != wn || (gerr == nil) != (werr == nil) {
					t.Fatalf("read %d: (%d, %v) vs raw (%d, %v)", i, gn, gerr, wn, werr)
				}
				if !bytes.Equal(got[:gn], want[:wn]) {
					t.Fatalf("read %d: data mismatch", i)
				}
			}
			if ct.Snapshot() != rawCt.Snapshot() {
				t.Fatalf("logical accounting diverged: %v vs raw %v", ct.Snapshot(), rawCt.Snapshot())
			}
			if name != "none" {
				if p, l := phys.Snapshot().Total(), ct.Snapshot().Total(); p >= l {
					t.Errorf("physical %d !< logical %d", p, l)
				}
			}
		})
	}
}

// TestBlockFileCorruptionTyped: flip one byte anywhere in a compressed
// store and every outcome must be a typed ErrCorrupt (at open, from the
// footer and index checks, or at read, from the chunk CRC) or, for flips
// inside a chunk the reads never touch, a clean identical read.
func TestBlockFileCorruptionTyped(t *testing.T) {
	c, _ := Lookup("lz")
	dir := t.TempDir()
	img := bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8}, ChunkSize/4)
	var ct diskio.Counter
	path := filepath.Join(dir, "blk.dat")
	if err := WriteBlockFile(path, &ct, c, img); err != nil {
		t.Fatal(err)
	}
	pristine, err := readRawFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(pristine); off += 37 {
		mutated := append([]byte(nil), pristine...)
		mutated[off] ^= 0x20
		if err := writeRawFile(path, mutated); err != nil {
			t.Fatal(err)
		}
		var rc diskio.Counter
		b, err := OpenBlockFile(path, &rc)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrUnknown) {
				t.Fatalf("flip at %d: open error not typed: %v", off, err)
			}
			continue
		}
		buf := make([]byte, len(img))
		_, rerr := b.ReadAtClass(buf, 0, diskio.SeqRead)
		b.Close()
		if rerr != nil {
			if !errors.Is(rerr, ErrCorrupt) {
				t.Fatalf("flip at %d: read error not typed: %v", off, rerr)
			}
			continue
		}
		if !bytes.Equal(buf, img) {
			t.Fatalf("flip at %d: silent corruption", off)
		}
	}
}

// TestSpillFileRoundtrip: append records, drain, recycle — data and
// logical charges must match the raw spill pattern.
func TestSpillFileRoundtrip(t *testing.T) {
	for _, name := range []string{"none", "lz"} {
		c, _ := Lookup(name)
		t.Run(name, func(t *testing.T) {
			var ct diskio.Counter
			phys := &diskio.Counter{}
			ct.SetPhys(phys)
			s := NewSpillFile(filepath.Join(t.TempDir(), "spill.dat"), &ct, c)
			for cycle := 0; cycle < 2; cycle++ {
				var want []byte
				rec := make([]byte, 12)
				for i := 0; i < 4000; i++ {
					binary.LittleEndian.PutUint32(rec, uint32(i))
					binary.LittleEndian.PutUint64(rec[4:], uint64(cycle))
					if err := s.Append(rec); err != nil {
						t.Fatal(err)
					}
					want = append(want, rec...)
				}
				if s.Len() != int64(len(want)) {
					t.Fatalf("Len = %d, want %d", s.Len(), len(want))
				}
				got := make([]byte, len(want))
				if err := s.ReadAll(got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatal("drained records differ")
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			}
			snap := ct.Snapshot()
			if snap.Bytes[diskio.RandWrite] != 2*4000*12 || snap.Bytes[diskio.SeqRead] != 2*4000*12 {
				t.Fatalf("logical charges: %v", snap)
			}
		})
	}
}

func readRawFile(path string) ([]byte, error) {
	var ct diskio.Counter
	f, err := diskio.OpenRead(path, &ct)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, sz)
	if _, err := f.ReadAtClass(buf, 0, diskio.SeqRead); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeRawFile(path string, b []byte) error {
	var ct diskio.Counter
	return diskio.WriteFileSync(path, b, &ct, diskio.SeqWrite)
}
