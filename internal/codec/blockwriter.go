package codec

import (
	"encoding/binary"
	"fmt"

	"hybridgraph/internal/diskio"
)

// BlockWriter streams a block file to disk without holding the logical
// image in memory: logical bytes are staged up to ChunkSize, each full
// chunk is emitted as one frame, and Close appends the chunk index and
// footer. The output is byte-identical to WriteBlockFile over the same
// logical stream — same chunk boundaries, index frame, footer, and the
// same single whole-image logical charge — so builders that used to
// buffer a store can switch to streaming without disturbing manifests,
// CRCs or accounting.
type BlockWriter struct {
	f       *diskio.File
	ct      *diskio.Counter
	c       Codec
	buf     []byte // staged logical bytes, < ChunkSize after flush
	frame   []byte
	lens    []uint32 // physical frame length per chunk
	physOff int64
	logical int64
	closed  bool
}

// NewBlockWriter creates (truncating) a block file at path. As with
// WriteBlockFile, physical frame I/O lands on ct's physical twin and the
// logical charge is taken once, at Close.
func NewBlockWriter(path string, ct *diskio.Counter, c Codec) (*BlockWriter, error) {
	f, err := diskio.Create(path, diskio.PhysFor(ct))
	if err != nil {
		return nil, err
	}
	if c == nil {
		c = None
	}
	return &BlockWriter{f: f, ct: ct, c: c, buf: make([]byte, 0, ChunkSize)}, nil
}

// Write stages logical bytes, flushing a frame per completed ChunkSize
// chunk. Implements io.Writer.
func (w *BlockWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("codec: write to closed block writer %s", w.f.Name())
	}
	n := len(p)
	for len(p) > 0 {
		take := ChunkSize - len(w.buf)
		if take > len(p) {
			take = len(p)
		}
		w.buf = append(w.buf, p[:take]...)
		p = p[take:]
		if len(w.buf) == ChunkSize {
			if err := w.flushChunk(); err != nil {
				return n - len(p), err
			}
		}
	}
	return n, nil
}

func (w *BlockWriter) flushChunk() error {
	w.frame = AppendFrame(w.frame[:0], w.c, w.buf)
	if _, err := w.f.WriteAtClass(w.frame, w.physOff, diskio.SeqWrite); err != nil {
		return err
	}
	w.lens = append(w.lens, uint32(len(w.frame)))
	w.physOff += int64(len(w.frame))
	w.logical += int64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

// Logical reports the logical bytes accepted so far, staged included.
func (w *BlockWriter) Logical() int64 { return w.logical + int64(len(w.buf)) }

// Close flushes the final partial chunk, writes the index frame and
// footer, and takes the whole-image logical charge. A writer that never
// received a byte leaves an empty file, exactly like WriteBlockFile on
// an empty image. Close is not idempotent-safe for further Writes but
// may be called once on any writer.
func (w *BlockWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	defer w.f.Close()
	if len(w.buf) > 0 {
		if err := w.flushChunk(); err != nil {
			return err
		}
	}
	if w.logical == 0 {
		return nil
	}
	index := make([]byte, 0, 4+4*len(w.lens))
	index = binary.LittleEndian.AppendUint32(index, uint32(len(w.lens)))
	for _, l := range w.lens {
		index = binary.LittleEndian.AppendUint32(index, l)
	}
	indexFrame := AppendFrame(nil, None, index)
	if _, err := w.f.WriteAtClass(indexFrame, w.physOff, diskio.SeqWrite); err != nil {
		return err
	}
	footer := make([]byte, 0, footerSize)
	footer = append(footer, footerMagic...)
	footer = binary.LittleEndian.AppendUint64(footer, uint64(w.physOff))
	footer = binary.LittleEndian.AppendUint64(footer, uint64(w.logical))
	if _, err := w.f.WriteAtClass(footer, w.physOff+int64(len(indexFrame)), diskio.SeqWrite); err != nil {
		return err
	}
	diskio.NewAccountant(w.ct).WriteAtClass(w.logical, 0, diskio.SeqWrite)
	return nil
}
