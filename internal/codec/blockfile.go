package codec

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"hybridgraph/internal/diskio"
	"hybridgraph/internal/lru"
)

// ChunkSize is the logical granularity of a compressed block file: the
// raw image is split into ChunkSize runs, each stored as one frame, so
// a random logical access decompresses one chunk, not the whole store.
const ChunkSize = 64 << 10

// SpillChunk is the staging threshold of a compressed spill file:
// records accumulate in memory and are flushed as one frame per
// SpillChunk logical bytes (12-byte spill records framed individually
// would expand, not compress).
const SpillChunk = 16 << 10

const (
	footerMagic = "HGCI"
	footerSize  = 4 + 8 + 8 // magic + index offset + logical size
)

// chunkCacheCap bounds the decoded-chunk LRU each BlockFile holds
// (chunkCacheCap × ChunkSize bytes at most). One chunk is not enough:
// b-pull's Pull-Respond interleaves fragment scans with metadata reads
// in a different file region, and a single-slot cache re-decodes a full
// frame on every alternation — physical reads would dwarf the logical
// bytes the access actually asked for.
const chunkCacheCap = 8

// BlockFile is the compressed replacement for the write-once,
// scan-many stores (adjacency runs, VE-BLOCK images). On disk it is a
// run of chunk frames, an index frame (frame lengths of every chunk,
// codec "none"), and a fixed footer locating the index. Logical
// accounting replays the caller's accesses through an Accountant;
// physical frame I/O is charged, in the caller's access class, to the
// counter's physical twin.
//
// Safe for concurrent readers: a mutex serialises chunk decode and the
// one-chunk cache (parallel shards scanning disjoint ranges still get
// exact logical accounting — charges are per-access, not positional).
type BlockFile struct {
	f    *diskio.File // physical frames, charged to the phys twin
	acct *diskio.Accountant
	path string

	mu     sync.Mutex
	size   int64 // logical bytes
	chunks []chunkRef
	cache  *lru.Cache // chunk index -> decoded chunk
}

type chunkRef struct {
	physOff int64
	physLen int64
}

// WriteBlockFile writes buf as a compressed block file at path. The
// logical charge is exactly the uncompressed store's: one sequential
// write of len(buf) bytes at offset 0 on a fresh file — and, like the
// raw stores, nothing at all for an empty image (the file is created
// and left empty). It is the buffered convenience over BlockWriter; the
// two produce byte-identical files.
func WriteBlockFile(path string, ct *diskio.Counter, c Codec, buf []byte) error {
	w, err := NewBlockWriter(path, ct, c)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// OpenBlockFile opens a compressed block file for reading. The footer
// and index reads are physical-only (the raw store's open performs no
// data I/O either — geometry checks come from sizes the caller knows).
func OpenBlockFile(path string, ct *diskio.Counter) (*BlockFile, error) {
	f, err := diskio.OpenRead(path, diskio.PhysFor(ct))
	if err != nil {
		return nil, err
	}
	b := &BlockFile{f: f, acct: diskio.NewAccountant(ct), path: path, cache: lru.New(chunkCacheCap)}
	if err := b.loadIndex(); err != nil {
		f.Close()
		return nil, fmt.Errorf("codec: open %s: %w", path, err)
	}
	return b, nil
}

func (b *BlockFile) loadIndex() error {
	fsize, err := b.f.Size()
	if err != nil {
		return err
	}
	if fsize == 0 {
		return nil // empty image
	}
	if fsize < footerSize {
		return fmt.Errorf("%w: %d-byte file below footer size", ErrCorrupt, fsize)
	}
	fb := make([]byte, footerSize)
	if _, err := b.f.ReadAtClass(fb, fsize-footerSize, diskio.RandRead); err != nil {
		return err
	}
	if string(fb[:4]) != footerMagic {
		return fmt.Errorf("%w: bad footer magic %q", ErrCorrupt, fb[:4])
	}
	indexOff := int64(binary.LittleEndian.Uint64(fb[4:]))
	b.size = int64(binary.LittleEndian.Uint64(fb[12:]))
	if indexOff < 0 || indexOff > fsize-footerSize || b.size < 0 {
		return fmt.Errorf("%w: implausible footer (index %d size %d)", ErrCorrupt, indexOff, b.size)
	}
	rawIdx := make([]byte, fsize-footerSize-indexOff)
	if _, err := b.f.ReadAtClass(rawIdx, indexOff, diskio.RandRead); err != nil {
		return err
	}
	index, _, err := DecodeFrame(nil, rawIdx)
	if err != nil {
		return err
	}
	if len(index) < 4 {
		return fmt.Errorf("%w: truncated chunk index", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(index))
	if len(index) != 4+4*n {
		return fmt.Errorf("%w: chunk index declares %d entries in %d bytes", ErrCorrupt, n, len(index))
	}
	want := (b.size + ChunkSize - 1) / ChunkSize
	if int64(n) != want {
		return fmt.Errorf("%w: %d chunks for %d logical bytes", ErrCorrupt, n, b.size)
	}
	b.chunks = make([]chunkRef, n)
	var off int64
	for i := 0; i < n; i++ {
		l := int64(binary.LittleEndian.Uint32(index[4+4*i:]))
		b.chunks[i] = chunkRef{physOff: off, physLen: l}
		off += l
	}
	if off != indexOff {
		return fmt.Errorf("%w: chunk lengths sum to %d, index at %d", ErrCorrupt, off, indexOff)
	}
	return nil
}

// Size reports the logical image size.
func (b *BlockFile) Size() (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.size, nil
}

// SetCounter retargets logical accounting to ct and physical accounting
// to ct's twin, mirroring File.SetCounter on the raw stores.
func (b *BlockFile) SetCounter(ct *diskio.Counter) {
	b.acct.SetCounter(ct)
	b.f.SetCounter(diskio.PhysFor(ct))
}

// Name reports the file path.
func (b *BlockFile) Name() string { return b.path }

// Close releases the physical file.
func (b *BlockFile) Close() error { return b.f.Close() }

// ReadAtClass reads logical bytes at off, charging exactly what the
// raw store's File.ReadAtClass would charge, and decompressing only the
// chunks the range touches (physical reads carry the same class).
func (b *BlockFile) ReadAtClass(p []byte, off int64, c diskio.Class) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("codec: %s: negative read offset %d", b.path, off)
	}
	n := int64(len(p))
	if n == 0 || off >= b.size {
		// Mirror the raw File: a zero-byte or past-end read still records
		// one zero-byte operation of class c.
		b.acct.ReadAtClass(0, off, c)
		if n == 0 {
			return 0, nil
		}
		return 0, io.EOF
	}
	short := false
	if off+n > b.size {
		n = b.size - off
		short = true
	}
	var copied int64
	for copied < n {
		pos := off + copied
		ci := int(pos / ChunkSize)
		chunk, err := b.chunkLocked(ci, c)
		if err != nil {
			return int(copied), fmt.Errorf("codec: %s: %w", b.path, err)
		}
		in := pos - int64(ci)*ChunkSize
		copied += int64(copy(p[copied:n], chunk[in:]))
	}
	b.acct.ReadAtClass(n, off, c)
	if short {
		return int(n), io.EOF
	}
	return int(n), nil
}

// chunkLocked returns the decoded chunk ci, via the chunk LRU.
func (b *BlockFile) chunkLocked(ci int, c diskio.Class) ([]byte, error) {
	if v, ok := b.cache.Get(uint32(ci)); ok {
		return v.([]byte), nil
	}
	ref := b.chunks[ci]
	raw := make([]byte, ref.physLen)
	if _, err := b.f.ReadAtClass(raw, ref.physOff, c); err != nil {
		return nil, err
	}
	chunk, _, err := DecodeFrame(nil, raw)
	if err != nil {
		return nil, err
	}
	wantLen := ChunkSize
	if ci == len(b.chunks)-1 {
		wantLen = int(b.size - int64(ci)*ChunkSize)
	}
	if len(chunk) != wantLen {
		return nil, fmt.Errorf("%w: chunk %d decoded to %d bytes, want %d", ErrCorrupt, ci, len(chunk), wantLen)
	}
	b.cache.Put(uint32(ci), chunk)
	return chunk, nil
}

// SpillFile is the compressed replacement for a message-spill file:
// records are charged logically as the paper's random writes (arrival
// order, destination locality unknown), staged in memory, and flushed
// to disk as compressed frames. ReadAll reassembles the full logical
// record stream — flushed frames plus the unflushed tail — and charges
// the one sequential read the raw spill's drain performs.
type SpillFile struct {
	path string
	c    Codec
	ct   *diskio.Counter

	acct       *diskio.Accountant
	f          *diskio.File
	staging    []byte
	physOff    int64
	logicalLen int64
}

// NewSpillFile prepares a spill at path; like the raw spill, the file
// is created lazily on the first Append.
func NewSpillFile(path string, ct *diskio.Counter, c Codec) *SpillFile {
	return &SpillFile{path: path, c: c, ct: ct}
}

// SetCounter retargets future logical and physical charges.
func (s *SpillFile) SetCounter(ct *diskio.Counter) {
	s.ct = ct
	if s.acct != nil {
		s.acct.SetCounter(ct)
	}
	if s.f != nil {
		s.f.SetCounter(diskio.PhysFor(ct))
	}
}

// Len reports the logical bytes appended since the last Close.
func (s *SpillFile) Len() int64 { return s.logicalLen }

// Append spills one record, charging the random write the raw spill
// would perform at the same logical offset.
func (s *SpillFile) Append(rec []byte) error {
	if s.f == nil {
		f, err := diskio.Create(s.path, diskio.PhysFor(s.ct))
		if err != nil {
			return err
		}
		s.f = f
		s.acct = diskio.NewAccountant(s.ct)
	}
	s.acct.WriteAtClass(int64(len(rec)), s.logicalLen, diskio.RandWrite)
	s.staging = append(s.staging, rec...)
	s.logicalLen += int64(len(rec))
	if len(s.staging) >= SpillChunk {
		return s.flush()
	}
	return nil
}

func (s *SpillFile) flush() error {
	frame := AppendFrame(nil, s.c, s.staging)
	if _, err := s.f.WriteAtClass(frame, s.physOff, diskio.RandWrite); err != nil {
		return err
	}
	s.physOff += int64(len(frame))
	s.staging = s.staging[:0]
	return nil
}

// ReadAll fills p (which must be exactly Len() bytes) with the logical
// record stream and charges the whole-spill sequential read.
func (s *SpillFile) ReadAll(p []byte) error {
	if int64(len(p)) != s.logicalLen {
		return fmt.Errorf("codec: %s: drain of %d bytes, spilled %d", s.path, len(p), s.logicalLen)
	}
	out := p[:0]
	if s.physOff > 0 {
		raw := make([]byte, s.physOff)
		if _, err := s.f.ReadAtClass(raw, 0, diskio.SeqRead); err != nil {
			return err
		}
		for len(raw) > 0 {
			var n int
			var err error
			out, n, err = DecodeFrame(out, raw)
			if err != nil {
				return fmt.Errorf("codec: %s: %w", s.path, err)
			}
			raw = raw[n:]
		}
	}
	out = append(out, s.staging...)
	if int64(len(out)) != s.logicalLen {
		return fmt.Errorf("%w: %s: spill decoded to %d bytes, want %d", ErrCorrupt, s.path, len(out), s.logicalLen)
	}
	s.acct.ReadAtClass(s.logicalLen, 0, diskio.SeqRead)
	return nil
}

// Close releases the physical file and resets to the lazy state, so the
// next Append starts a fresh spill cycle exactly as the raw spill's
// close-and-recreate does.
func (s *SpillFile) Close() error {
	var err error
	if s.f != nil {
		err = s.f.Close()
	}
	s.f, s.acct = nil, nil
	s.staging = nil
	s.physOff, s.logicalLen = 0, 0
	return err
}
