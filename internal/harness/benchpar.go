package harness

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/core"
	"hybridgraph/internal/graph"
)

// BenchParLeg is one (graph, algorithm, engine) cell of the
// parallel-compute benchmark: the same job run at Parallelism=1 and at
// Parallelism=NumCPU, with the wall-clock ratio and a proof that nothing
// but wall clock changed.
type BenchParLeg struct {
	Graph     string `json:"graph"`
	Algorithm string `json:"algorithm"`
	Engine    string `json:"engine"`

	BaseWallSeconds float64 `json:"base_wall_seconds"` // Parallelism=1
	ParWallSeconds  float64 `json:"par_wall_seconds"`  // Parallelism=NumCPU
	Speedup         float64 `json:"speedup"`           // base/par

	// Identity checks: the parallel run must reproduce the sequential
	// run byte for byte. ValuesFNV is an FNV-1a hash over every vertex
	// value's IEEE-754 bits in vertex order; the remaining fields are the
	// job totals the Q^t switcher and the cost models consume.
	Identical   bool   `json:"identical"`
	ValuesFNV   uint64 `json:"values_fnv"`
	NetBytes    int64  `json:"net_bytes"`
	IOBytes     int64  `json:"io_bytes"`
	Eq7CioPush  int64  `json:"eq7_cio_push_bytes"`
	Eq8CioBpull int64  `json:"eq8_cio_bpull_bytes"`
}

// BenchParArtifact is the BENCH_pr7.json document.
type BenchParArtifact struct {
	Workers     int           `json:"workers"`
	Parallelism int           `json:"parallelism"` // the parallel leg's setting (NumCPU)
	MsgBuf      int           `json:"msg_buf"`
	Profile     string        `json:"profile"`
	Graphs      []BenchGraph  `json:"graphs"`
	Legs        []BenchParLeg `json:"legs"`
	// MeanSpeedup is the geometric mean of the per-leg wall-clock
	// speedups; AllIdentical aggregates the per-leg identity checks.
	MeanSpeedup  float64 `json:"mean_speedup"`
	AllIdentical bool    `json:"all_identical"`
}

// BenchParPath is the benchpar experiment's default JSON artifact path;
// Options.Out overrides it.
var BenchParPath = "BENCH_pr7.json"

// valuesFNV hashes the converged vertex values bit-exactly, in vertex
// order, so two runs agree iff every value's float bits agree.
func valuesFNV(vals []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// BenchPar measures what intra-worker parallel compute buys: the fixed
// benchmark graphs x {PageRank, SSSP} x {push, b-pull, hybrid}, each run
// at Parallelism=1 and Parallelism=NumCPU, writing BENCH_pr7.json. The
// artifact carries both the wall-clock speedup and a per-leg proof of the
// determinism contract — identical value hashes, net bytes, device bytes
// and Eq. (7)/(8) totals. Non-gating in CI, like bench: the numbers are
// regression-tracking material.
func BenchPar(o Options) ([]*Table, error) {
	o = o.withDefaults()
	out := o.Out
	if out == "" {
		out = BenchParPath
	}
	// Bigger per-worker partitions than bench and fewer workers, so the
	// sharded update scan is the dominant cost being measured.
	n, m := 30000, 240000
	workers := 2
	if o.Quick {
		n, m = 6000, 48000
	}
	par := runtime.NumCPU()
	if par < 2 {
		par = 2 // still exercises the sharded path on a 1-core runner
	}
	art := BenchParArtifact{
		Workers:      workers,
		Parallelism:  par,
		MsgBuf:       n / 10,
		Profile:      o.Profile.Name,
		AllIdentical: true,
		Graphs: []BenchGraph{
			{Name: "rmat", Kind: "rmat", Vertices: n, Edges: m, Seed: 7},
			{Name: "web", Kind: "web", Vertices: n, Edges: m, Seed: 7},
		},
	}
	graphs := map[string]*graph.Graph{
		"rmat": graph.GenRMAT(n, m, 0.57, 0.19, 0.19, 7),
		"web":  graph.GenWeb(n, m, 64, 0.8, 7),
	}
	algos := []struct {
		name string
		prog func() algo.Program
	}{
		{"pagerank", func() algo.Program { return algo.NewPageRank(0.85) }},
		{"sssp", func() algo.Program { return algo.NewSSSP(0) }},
	}
	engines := []core.Engine{core.Push, core.BPull, core.Hybrid}

	tb := &Table{ID: "benchpar", Title: "Parallel compute speedup (also written to " + out + ")",
		Header: []string{"graph", "algo", "engine", "wall-1", fmt.Sprintf("wall-%d", par), "speedup", "identical"}}
	logSpeedups := 0.0
	for _, bg := range art.Graphs {
		g := graphs[bg.Name]
		for _, a := range algos {
			for _, e := range engines {
				cfgFor := func(p int) core.Config {
					return core.Config{
						Workers:     workers,
						MsgBuf:      art.MsgBuf,
						MaxSteps:    maxStepsFor(a.name),
						Profile:     o.Profile,
						Parallelism: p,
						Metrics:     o.Metrics,
					}
				}
				base, err := core.Run(g, a.prog(), cfgFor(1), e)
				if err != nil {
					return nil, fmt.Errorf("benchpar %s/%s/%s p=1: %w", bg.Name, a.name, e, err)
				}
				pres, err := core.Run(g, a.prog(), cfgFor(par), e)
				if err != nil {
					return nil, fmt.Errorf("benchpar %s/%s/%s p=%d: %w", bg.Name, a.name, e, par, err)
				}
				var b7, b8, p7, p8 int64
				for _, s := range base.Steps {
					b7 += s.Parts.CioPush()
					b8 += s.Parts.CioBpull()
				}
				for _, s := range pres.Steps {
					p7 += s.Parts.CioPush()
					p8 += s.Parts.CioBpull()
				}
				leg := BenchParLeg{
					Graph:           bg.Name,
					Algorithm:       a.name,
					Engine:          string(e),
					BaseWallSeconds: base.WallSeconds,
					ParWallSeconds:  pres.WallSeconds,
					ValuesFNV:       valuesFNV(base.Values),
					NetBytes:        base.NetBytes,
					IOBytes:         base.IO.DevTotal(),
					Eq7CioPush:      b7,
					Eq8CioBpull:     b8,
				}
				leg.Identical = valuesFNV(pres.Values) == leg.ValuesFNV &&
					pres.NetBytes == leg.NetBytes &&
					pres.IO.DevTotal() == leg.IOBytes &&
					p7 == leg.Eq7CioPush && p8 == leg.Eq8CioBpull &&
					pres.Supersteps() == base.Supersteps()
				if !leg.Identical {
					art.AllIdentical = false
				}
				if leg.ParWallSeconds > 0 {
					leg.Speedup = leg.BaseWallSeconds / leg.ParWallSeconds
				}
				if leg.Speedup > 0 {
					logSpeedups += math.Log(leg.Speedup)
				}
				art.Legs = append(art.Legs, leg)
				tb.Rows = append(tb.Rows, []string{
					bg.Name, a.name, string(e),
					fmt.Sprintf("%.4f", leg.BaseWallSeconds),
					fmt.Sprintf("%.4f", leg.ParWallSeconds),
					fmt.Sprintf("%.2fx", leg.Speedup),
					fmt.Sprintf("%v", leg.Identical),
				})
			}
		}
	}
	if len(art.Legs) > 0 {
		art.MeanSpeedup = math.Exp(logSpeedups / float64(len(art.Legs)))
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	if !art.AllIdentical {
		return nil, fmt.Errorf("benchpar: parallel run diverged from sequential run (see %s)", out)
	}
	return []*Table{tb}, nil
}
