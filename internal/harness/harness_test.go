package harness

import (
	"bytes"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// quickOpts keeps each experiment in test-friendly territory.
func quickOpts() Options {
	return Options{Scale: 0.08, Workers: 3, LargeWorkers: 4, Quick: true}
}

func mustRun(t *testing.T, name string) []*Table {
	t.Helper()
	exp, ok := ByName(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	o := quickOpts()
	// Keep the bench-style JSON artifacts out of the package directory.
	o.Out = filepath.Join(t.TempDir(), "artifact.json")
	tables, err := exp.Run(o)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", name)
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s table %s has no rows", name, tb.ID)
		}
		var buf bytes.Buffer
		tb.Fprint(&buf)
		if !strings.Contains(buf.String(), tb.ID) {
			t.Fatalf("%s: printed table missing its id", name)
		}
	}
	return tables
}

func cellFloat(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("table %s cell (%d,%d) = %q not numeric: %v", tb.ID, row, col, tb.Rows[row][col], err)
	}
	return v
}

func colIndex(t *testing.T, tb *Table, name string) int {
	t.Helper()
	for i, h := range tb.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("table %s has no column %q (header %v)", tb.ID, name, tb.Header)
	return -1
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	for _, exp := range Experiments {
		exp := exp
		t.Run(exp.Name, func(t *testing.T) {
			mustRun(t, exp.Name)
		})
	}
}

func TestFig2ShapeRuntimeDropsWithBuffer(t *testing.T) {
	tables := mustRun(t, "fig2")
	pr := tables[0]
	// The first row is the smallest buffer, the last is "mem": runtime
	// must fall and the disk-message share must fall to zero.
	first := cellFloat(t, pr, 0, 1)
	last := cellFloat(t, pr, len(pr.Rows)-1, 1)
	if !(first > last) {
		t.Fatalf("fig2: runtime %.4f (tiny buffer) should exceed %.4f (mem)", first, last)
	}
	if pct := cellFloat(t, pr, len(pr.Rows)-1, 2); pct != 0 {
		t.Fatalf("fig2: mem row should have 0%% messages on disk, got %g", pct)
	}
	if pct := cellFloat(t, pr, 0, 2); pct < 50 {
		t.Fatalf("fig2: starved buffer should spill most messages, got %g%%", pct)
	}
}

func TestFig8ShapeBpullBeatsPushUnderPressure(t *testing.T) {
	tables := mustRun(t, "fig8")
	// PageRank table: b-pull and hybrid must beat push on every dataset.
	pr := tables[0]
	pushCol := colIndex(t, pr, "push")
	bpullCol := colIndex(t, pr, "b-pull")
	hybridCol := colIndex(t, pr, "hybrid")
	for r := range pr.Rows {
		push := cellFloat(t, pr, r, pushCol)
		bpull := cellFloat(t, pr, r, bpullCol)
		hybrid := cellFloat(t, pr, r, hybridCol)
		if !(bpull < push) {
			t.Errorf("fig8 %s: b-pull %.4f should beat push %.4f", pr.Rows[r][0], bpull, push)
		}
		if hybrid > 1.2*bpull+1e-9 {
			t.Errorf("fig8 %s: hybrid %.4f should track the winner (b-pull %.4f)",
				pr.Rows[r][0], hybrid, bpull)
		}
	}
}

func TestFig10ShapePullIOWorst(t *testing.T) {
	tables := mustRun(t, "fig10")
	pr := tables[0] // PageRank
	pullCol := colIndex(t, pr, "pull")
	bpullCol := colIndex(t, pr, "b-pull")
	for r := range pr.Rows {
		pull := cellFloat(t, pr, r, pullCol)
		bpull := cellFloat(t, pr, r, bpullCol)
		if !(pull > bpull) {
			t.Errorf("fig10 %s: pull I/O %g should exceed b-pull %g", pr.Rows[r][0], pull, bpull)
		}
	}
}

func TestFig14HasSwitchColumns(t *testing.T) {
	tables := mustRun(t, "fig14")
	if tables[0].ID != "fig14a" || len(tables) != 4 {
		t.Fatalf("fig14 should produce 4 tables, got %d", len(tables))
	}
	// The Qt table carries a mode column taking b-pull or push values.
	sawMode := map[string]bool{}
	for _, row := range tables[0].Rows {
		sawMode[row[1]] = true
	}
	if !sawMode["b-pull"] && !sawMode["push"] {
		t.Fatalf("fig14a modes = %v", sawMode)
	}
}

func TestFig15ShapePushMDegradesFaster(t *testing.T) {
	tables := mustRun(t, "fig15")
	pm, hy := tables[0], tables[1]
	// Fewest workers (first column after graph) versus most: the
	// degradation factor of pushM should exceed hybrid's.
	last := len(pm.Header) - 1
	for r := range pm.Rows {
		pmF := cellFloat(t, pm, r, 1) / cellFloat(t, pm, r, last)
		hyF := cellFloat(t, hy, r, 1) / cellFloat(t, hy, r, last)
		if !(pmF > hyF) {
			t.Errorf("fig15 %s: pushM degradation %.2fx should exceed hybrid %.2fx",
				pm.Rows[r][0], pmF, hyF)
		}
	}
}

func TestFig16ShapeLoadingRatios(t *testing.T) {
	tables := mustRun(t, "fig16")
	rt, iob := tables[0], tables[1]
	for r := range rt.Rows {
		if base := cellFloat(t, rt, r, 1); base != 1 {
			t.Fatalf("fig16 adj ratio should be 1, got %g", base)
		}
		ve := cellFloat(t, iob, r, 2)
		both := cellFloat(t, iob, r, 3)
		if !(ve >= 1) || !(both > ve) {
			t.Errorf("fig16 %s: I/O ratios adj=1 <= VE-BLOCK=%.2f < adj+VE-BLOCK=%.2f violated",
				iob.Rows[r][0], ve, both)
		}
	}
}

func TestFig18ShapeBpullSavesTraffic(t *testing.T) {
	tables := mustRun(t, "fig18")
	tb := tables[0]
	// Sum across supersteps: concatenation alone should save b-pull
	// roughly half the bytes (paper: "almost 50% reduction").
	var push, bpull float64
	for r := range tb.Rows {
		if tb.Rows[r][1] != "-" {
			push += cellFloat(t, tb, r, 1)
		}
		if tb.Rows[r][2] != "-" {
			bpull += cellFloat(t, tb, r, 2)
		}
	}
	if !(bpull < push*0.85) {
		t.Fatalf("fig18: b-pull bytes %.0f should be well below push %.0f", bpull, push)
	}
}

func TestFig23ShapeMemoryFallsIOGrows(t *testing.T) {
	tables := mustRun(t, "fig23")
	mem, iob := tables[0], tables[1]
	nRows := len(mem.Rows)
	if nRows < 2 {
		t.Fatal("need at least two sweep points")
	}
	memFirst := cellFloat(t, mem, 0, 1)
	memLast := cellFloat(t, mem, nRows-1, 1)
	if !(memLast < memFirst) {
		t.Errorf("fig23: PageRank memory should fall with more Vblocks: %g -> %g", memFirst, memLast)
	}
	ioFirst := cellFloat(t, iob, 0, 1)
	ioLast := cellFloat(t, iob, nRows-1, 1)
	if !(ioLast > ioFirst) {
		t.Errorf("fig23: PageRank I/O should grow with more Vblocks: %g -> %g", ioFirst, ioLast)
	}
}

func TestFig26ShapeCombiningRatioGrowsWithThreshold(t *testing.T) {
	tables := mustRun(t, "fig26")
	cr := tables[1]
	first := cellFloat(t, cr, 0, 1)
	last := cellFloat(t, cr, len(cr.Rows)-1, 1)
	if !(last >= first) {
		t.Errorf("fig26: pushM+com combining ratio should not fall with threshold: %g -> %g", first, last)
	}
	// b-pull's ratio is threshold-independent.
	bfirst := cellFloat(t, cr, 0, 2)
	blast := cellFloat(t, cr, len(cr.Rows)-1, 2)
	if bfirst != blast {
		t.Errorf("fig26: b-pull ratio should be threshold-independent: %g vs %g", bfirst, blast)
	}
}

func TestTable5ShapeCacheCliff(t *testing.T) {
	tables := mustRun(t, "table5")
	pr := tables[0] // PageRank
	rowOf := func(name string) int {
		for i, r := range pr.Rows {
			if r[0] == name {
				return i
			}
		}
		t.Fatalf("table5 missing scenario %s", name)
		return -1
	}
	for col := 1; col < len(pr.Header); col++ {
		orig := cellFloat(t, pr, rowOf("original"), col)
		extMem := cellFloat(t, pr, rowOf("ext-mem"), col)
		v3 := cellFloat(t, pr, rowOf("ext-edge-v3"), col)
		v25 := cellFloat(t, pr, rowOf("ext-edge-v2.5"), col)
		if extMem < orig*0.5 || extMem > orig*2+1e-9 {
			t.Errorf("table5 %s: ext-mem %.4f should track original %.4f", pr.Header[col], extMem, orig)
		}
		if !(v25 > 3*v3) {
			t.Errorf("table5 %s: v2.5 %.4f should be far above v3 %.4f (cache cliff)",
				pr.Header[col], v25, v3)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("fig99"); ok {
		t.Fatal("unknown experiment should not resolve")
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := &Table{ID: "x", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}, {"3", "4"}}}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestFig9ShapeSSDKeepsOrdering(t *testing.T) {
	tables := mustRun(t, "fig9")
	pr := tables[0]
	pushCol := colIndex(t, pr, "push")
	pushMCol := colIndex(t, pr, "pushM")
	bpullCol := colIndex(t, pr, "b-pull")
	for r := range pr.Rows {
		push := cellFloat(t, pr, r, pushCol)
		pushM := cellFloat(t, pr, r, pushMCol)
		bpull := cellFloat(t, pr, r, bpullCol)
		// SSDs do not change who wins: b-pull < pushM < push.
		if !(bpull < pushM && pushM < push) {
			t.Errorf("fig9 %s: ordering violated: b-pull %.4f, pushM %.4f, push %.4f",
				pr.Rows[r][0], bpull, pushM, push)
		}
	}
}

func TestFig17ShapeBpullSilentFirstStep(t *testing.T) {
	tables := mustRun(t, "fig17")
	tb := tables[0]
	// "b-pull starts exchanging messages from the 2nd superstep."
	if v := cellFloat(t, tb, 0, 3); v != 0 {
		t.Fatalf("fig17: b-pull blocking time at superstep 1 = %g, want 0", v)
	}
	// Thereafter its blocking time is comparable to push's (within 2x).
	for r := 1; r < len(tb.Rows); r++ {
		push := cellFloat(t, tb, r, 1)
		bpull := cellFloat(t, tb, r, 3)
		if push > 0 && bpull > 2*push {
			t.Errorf("fig17 step %d: b-pull blocking %.5f far above push %.5f", r+1, bpull, push)
		}
	}
}

func TestFig26ShapeSmallThresholdNotAmortised(t *testing.T) {
	tables := mustRun(t, "fig26")
	rt := tables[0]
	// At the smallest threshold, sender-side combining costs more than it
	// saves: pushM+com >= pushM (Appendix E's finding).
	pm := cellFloat(t, rt, 0, 1)
	pmc := cellFloat(t, rt, 0, 2)
	if pmc < pm {
		t.Errorf("fig26: at the smallest threshold pushM+com %.4f should not beat pushM %.4f", pmc, pm)
	}
	// b-pull's runtime is threshold-independent.
	b0 := cellFloat(t, rt, 0, 3)
	bN := cellFloat(t, rt, len(rt.Rows)-1, 3)
	if b0 != bN {
		t.Errorf("fig26: b-pull runtime should not vary with threshold: %g vs %g", b0, bN)
	}
}

func TestFig11PredictionRatiosFinite(t *testing.T) {
	tables := mustRun(t, "fig11")
	for _, tb := range tables {
		for r := range tb.Rows {
			for c := 1; c < len(tb.Header); c++ {
				cell := tb.Rows[r][c]
				if cell == "-" {
					continue
				}
				v := cellFloat(t, tb, r, c)
				if v < 0 {
					t.Fatalf("%s: negative ratio %g at row %d", tb.ID, v, r)
				}
			}
		}
	}
}

func TestReassignChaosShape(t *testing.T) {
	tables := mustRun(t, "reassignchaos")
	tb := tables[0]
	reCol := colIndex(t, tb, "reassigns")
	valCol := colIndex(t, tb, "values")
	identical := 0
	for r := range tb.Rows {
		switch tb.Rows[r][valCol] {
		case "identical":
			identical++
			if n := cellFloat(t, tb, r, reCol); n < 1 {
				t.Errorf("reassignchaos row %d: completed with %g reassignments, want >= 1", r, n)
			}
		case "no-survivors":
			// A schedule that kills every machine is a typed failure row.
		default:
			t.Errorf("reassignchaos row %d: values column %q", r, tb.Rows[r][valCol])
		}
	}
	if identical == 0 {
		t.Fatal("reassignchaos: no leg completed; the campaign never exercised adoption")
	}
}
