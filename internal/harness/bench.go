package harness

import (
	"encoding/json"
	"fmt"
	"os"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/core"
	"hybridgraph/internal/graph"
)

// BenchResult is one engine run in the machine-readable benchmark
// artifact: runtime, the Eq. (7)/(8) I/O totals and the Q^t signal the
// hybrid switcher acts on.
type BenchResult struct {
	Graph      string  `json:"graph"`
	Algorithm  string  `json:"algorithm"`
	Engine     string  `json:"engine"`
	Supersteps int     `json:"supersteps"`
	SimSeconds float64 `json:"sim_seconds"`
	NetBytes   int64   `json:"net_bytes"`
	IOBytes    int64   `json:"io_bytes"` // device bytes, loading excluded
	// Eq7CioPush and Eq8CioBpull are the job totals of the paper's two
	// I/O cost equations, summed over supersteps.
	Eq7CioPush  int64 `json:"eq7_cio_push_bytes"`
	Eq8CioBpull int64 `json:"eq8_cio_bpull_bytes"`
	// QtMean and QtLast summarise Eq. (11) over the run (b-pull is the
	// profitable mode while Q^t >= 0).
	QtMean float64 `json:"qt_mean"`
	QtLast float64 `json:"qt_last"`
}

// BenchGraph records one benchmark input so runs are comparable across
// commits.
type BenchGraph struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Seed     int64  `json:"seed"`
}

// BenchArtifact is the BENCH_pr4.json document.
type BenchArtifact struct {
	Workers int           `json:"workers"`
	MsgBuf  int           `json:"msg_buf"`
	Profile string        `json:"profile"`
	Graphs  []BenchGraph  `json:"graphs"`
	Results []BenchResult `json:"results"`
}

// BenchPath is where the bench experiment writes its JSON artifact.
// Overridable for tests; CI uploads the file as a build artifact.
var BenchPath = "BENCH_pr4.json"

// Bench runs the fixed benchmark matrix — two seeded graphs x
// {PageRank, SSSP} x {push, b-pull, hybrid} under limited memory — and
// writes BenchPath. The numbers are regression-tracking material, not a
// paper figure: CI keeps the artifact per commit so runtime or byte-count
// drifts are visible without gating the build.
func Bench(o Options) ([]*Table, error) {
	o = o.withDefaults()
	out := o.Out
	if out == "" {
		out = BenchPath
	}
	n, m := 8000, 64000
	if o.Quick {
		n, m = 2000, 16000
	}
	art := BenchArtifact{
		Workers: o.Workers,
		MsgBuf:  n / 10,
		Profile: o.Profile.Name,
		Graphs: []BenchGraph{
			{Name: "rmat", Kind: "rmat", Vertices: n, Edges: m, Seed: 7},
			{Name: "web", Kind: "web", Vertices: n, Edges: m, Seed: 7},
		},
	}
	graphs := map[string]*graph.Graph{
		"rmat": graph.GenRMAT(n, m, 0.57, 0.19, 0.19, 7),
		"web":  graph.GenWeb(n, m, 64, 0.8, 7),
	}
	algos := []struct {
		name string
		prog func() algo.Program
	}{
		{"pagerank", func() algo.Program { return algo.NewPageRank(0.85) }},
		{"sssp", func() algo.Program { return algo.NewSSSP(0) }},
	}
	engines := []core.Engine{core.Push, core.BPull, core.Hybrid}

	tb := &Table{ID: "bench", Title: "Benchmark matrix (also written to " + out + ")",
		Header: []string{"graph", "algo", "engine", "steps", "sim-s", "net-B", "io-B", "Eq7-B", "Eq8-B", "Qt-mean"}}
	for _, bg := range art.Graphs {
		g := graphs[bg.Name]
		for _, a := range algos {
			for _, e := range engines {
				cfg := core.Config{
					Workers:  o.Workers,
					MsgBuf:   art.MsgBuf,
					MaxSteps: maxStepsFor(a.name),
					Profile:  o.Profile,
					Metrics:  o.Metrics,
				}
				res, err := core.Run(g, a.prog(), cfg, e)
				if err != nil {
					return nil, fmt.Errorf("bench %s/%s/%s: %w", bg.Name, a.name, e, err)
				}
				var qtSum, qtLast float64
				var cio7, cio8 int64
				for _, s := range res.Steps {
					cio7 += s.Parts.CioPush()
					cio8 += s.Parts.CioBpull()
					qtSum += s.Qt
					qtLast = s.Qt
				}
				qtMean := 0.0
				if len(res.Steps) > 0 {
					qtMean = qtSum / float64(len(res.Steps))
				}
				br := BenchResult{
					Graph:       bg.Name,
					Algorithm:   a.name,
					Engine:      string(e),
					Supersteps:  res.Supersteps(),
					SimSeconds:  res.SimSeconds,
					NetBytes:    res.NetBytes,
					IOBytes:     res.IO.DevTotal(),
					Eq7CioPush:  cio7,
					Eq8CioBpull: cio8,
					QtMean:      qtMean,
					QtLast:      qtLast,
				}
				art.Results = append(art.Results, br)
				tb.Rows = append(tb.Rows, []string{
					bg.Name, a.name, string(e),
					fmt.Sprintf("%d", br.Supersteps),
					fmt.Sprintf("%.4f", br.SimSeconds),
					fmt.Sprintf("%d", br.NetBytes),
					fmt.Sprintf("%d", br.IOBytes),
					fmt.Sprintf("%d", br.Eq7CioPush),
					fmt.Sprintf("%d", br.Eq8CioBpull),
					fmt.Sprintf("%+.4g", br.QtMean),
				})
			}
		}
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return []*Table{tb}, nil
}
