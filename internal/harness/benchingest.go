package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/catalog"
	"hybridgraph/internal/core"
)

// BenchIngestPath is where the streaming-ingest benchmark writes its
// JSON artifact.
var BenchIngestPath = "BENCH_pr10.json"

// BenchIngestLeg is one streaming ingest of the same edge-list file at
// one memory budget.
type BenchIngestLeg struct {
	MemBudget   int64   `json:"mem_budget"`
	Seconds     float64 `json:"seconds"`
	EdgesPerSec float64 `json:"edges_per_sec"`
	// External-sort effort at this budget.
	Runs                int   `json:"runs"`
	MergeGenerations    int   `json:"merge_generations"`
	SpillWriteBytes     int64 `json:"spill_write_bytes"`
	SpillReadBytes      int64 `json:"spill_read_bytes"`
	SpillPhysWriteBytes int64 `json:"spill_phys_write_bytes"`
	SpillPhysReadBytes  int64 `json:"spill_phys_read_bytes"`
	// PeakHeapBytes is the sampled runtime.MemStats HeapAlloc high-water
	// mark above the pre-ingest baseline. WithinBudget gates builds:
	// a limited-budget leg whose peak exceeds its budget fails the
	// experiment (only enforced for budgets large enough that runtime
	// noise cannot swamp the measurement).
	PeakHeapBytes    int64 `json:"peak_heap_bytes"`
	WithinBudget     bool  `json:"within_budget"`
	IngestWriteBytes int64 `json:"ingest_write_bytes"`
}

// BenchIngestArtifact is the BENCH_pr10.json document.
type BenchIngestArtifact struct {
	FileBytes int64            `json:"file_bytes"`
	Edges     int64            `json:"edges"`
	Vertices  int              `json:"vertices"`
	Workers   int              `json:"workers"`
	Legs      []BenchIngestLeg `json:"legs"`
	// Identical records the byte-identity acceptance check: every leg's
	// manifest (file sizes and CRCs) matched the first's.
	Identical bool `json:"identical"`
	// PageRankSeconds is a traced PageRank over the published entry,
	// proving the streamed layout is immediately runnable.
	PageRankSeconds float64 `json:"pagerank_seconds"`
	PageRankSteps   int     `json:"pagerank_steps"`
}

// heapGateFloor: below this budget the HeapAlloc delta is dominated by
// runtime noise (GC pacing, test scaffolding), so the gate is recorded
// but not enforced.
const heapGateFloor = 8 << 20

// BenchIngest measures the streaming importer: one synthetic edge-list
// file (~600 MB at scale 1, shrunk by -scale and -quick), stream-ingested
// at budgets {size/16, size/8, unlimited}. For each leg it records
// edges/sec, spill traffic and the sampled peak heap, gates limited legs
// on peak <= budget, gates all legs on bit-identical manifests, and
// finishes with a PageRank over the published entry.
func BenchIngest(o Options) ([]*Table, error) {
	o = o.withDefaults()
	out := o.Out
	if out == "" {
		out = BenchIngestPath
	}
	edges := int64(48_000_000 * o.Scale)
	if o.Quick {
		edges = 200_000
	}
	if edges < 50_000 {
		edges = 50_000
	}
	n := int(edges / 16)

	work, err := os.MkdirTemp("", "benchingest-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(work)
	file := filepath.Join(work, "edges.el")
	if err := writeSyntheticEdgeList(file, n, edges, 42); err != nil {
		return nil, err
	}
	fi, err := os.Stat(file)
	if err != nil {
		return nil, err
	}
	size := fi.Size()

	art := BenchIngestArtifact{FileBytes: size, Workers: o.Workers, Identical: true}
	budgets := []int64{size / 16, size / 8, 0}
	for i, b := range budgets {
		if b > 0 && b < 1<<20 {
			budgets[i] = 1 << 20
		}
	}

	tb := &Table{ID: "benchingest",
		Title: fmt.Sprintf("Streaming ingest of a %d-byte edge list (also written to %s)", size, out),
		Header: []string{"budget-B", "seconds", "edges/s", "runs", "gens",
			"spill-w-B", "spill-r-B", "peak-heap-B", "within"}}

	var refFiles map[string]catalog.FileSum
	var entry *catalog.Entry
	for i, budget := range budgets {
		c, err := catalog.Open(filepath.Join(work, fmt.Sprintf("cat%d", i)))
		if err != nil {
			return nil, err
		}
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}

		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		base := ms.HeapAlloc
		var peak atomic.Uint64
		peak.Store(base)
		stop := make(chan struct{})
		sampled := make(chan struct{})
		go func() {
			defer close(sampled)
			tick := time.NewTicker(20 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					var s runtime.MemStats
					runtime.ReadMemStats(&s)
					if s.HeapAlloc > peak.Load() {
						peak.Store(s.HeapAlloc)
					}
				}
			}
		}()

		start := time.Now()
		e, st, err := c.IngestStream("bench", f, catalog.StreamOptions{
			Workers: o.Workers, MemBudget: budget})
		elapsed := time.Since(start).Seconds()
		close(stop)
		<-sampled
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("benchingest: budget %d: %w", budget, err)
		}

		peakDelta := int64(peak.Load()) - int64(base)
		if peakDelta < 0 {
			peakDelta = 0
		}
		leg := BenchIngestLeg{
			MemBudget:           budget,
			Seconds:             elapsed,
			EdgesPerSec:         float64(st.ParsedEdges) / elapsed,
			Runs:                st.Runs,
			MergeGenerations:    st.MergeGenerations,
			SpillWriteBytes:     st.SpillWriteBytes,
			SpillReadBytes:      st.SpillReadBytes,
			SpillPhysWriteBytes: st.SpillPhysWriteBytes,
			SpillPhysReadBytes:  st.SpillPhysReadBytes,
			PeakHeapBytes:       peakDelta,
			WithinBudget:        budget <= 0 || peakDelta <= budget,
			IngestWriteBytes:    e.Manifest().IngestWriteBytes,
		}
		if budget >= heapGateFloor && !leg.WithinBudget {
			return nil, fmt.Errorf("benchingest: peak heap %d bytes exceeds %d-byte budget",
				peakDelta, budget)
		}
		m := e.Manifest()
		art.Vertices, art.Edges = m.Vertices, m.Edges
		if refFiles == nil {
			refFiles = m.Files
		} else if !sameFileSums(refFiles, m.Files) {
			art.Identical = false
			return nil, fmt.Errorf("benchingest: budget %d produced a different entry than budget %d",
				budget, budgets[0])
		}
		entry = e
		art.Legs = append(art.Legs, leg)
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", budget),
			fmt.Sprintf("%.3f", leg.Seconds),
			fmt.Sprintf("%.0f", leg.EdgesPerSec),
			fmt.Sprintf("%d", leg.Runs),
			fmt.Sprintf("%d", leg.MergeGenerations),
			fmt.Sprintf("%d", leg.SpillWriteBytes),
			fmt.Sprintf("%d", leg.SpillReadBytes),
			fmt.Sprintf("%d", leg.PeakHeapBytes),
			fmt.Sprintf("%v", leg.WithinBudget),
		})
	}

	// The streamed entry must be immediately runnable: a (optionally
	// traced) PageRank over the catalog stores.
	cfg := core.Config{Stores: entry, MsgBuf: art.Vertices/10 + 1, MaxSteps: 3}
	if o.TraceDir != "" {
		if err := os.MkdirAll(o.TraceDir, 0o755); err != nil {
			return nil, err
		}
		cfg.TracePath = filepath.Join(o.TraceDir, "benchingest-pagerank.jsonl")
	}
	res, err := core.Run(entry.Graph(), algo.NewPageRank(0.85), cfg, core.Hybrid)
	if err != nil {
		return nil, fmt.Errorf("benchingest: pagerank over streamed entry: %w", err)
	}
	art.PageRankSeconds = res.SimSeconds
	art.PageRankSteps = res.Supersteps()

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return []*Table{tb}, nil
}

func sameFileSums(a, b map[string]catalog.FileSum) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// writeSyntheticEdgeList streams a deterministic text edge list of m
// edges over n vertices to path, without holding it in memory.
func writeSyntheticEdgeList(path string, n int, m int64, seed int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	rng := rand.New(rand.NewSource(seed))
	var line []byte
	fmt.Fprintf(w, "# vertices %d\n", n)
	for i := int64(0); i < m; i++ {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if dst == src {
			dst = (dst + 1) % n
		}
		line = strconv.AppendInt(line[:0], int64(src), 10)
		line = append(line, ' ')
		line = strconv.AppendInt(line, int64(dst), 10)
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
