package harness

import (
	"errors"
	"fmt"
	"time"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/core"
	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
)

// Chaos runs the seeded chaos campaign: deterministic multi-crash ×
// stall × transport-fault schedules over every loggable engine, asserting
// after each run that the final vertex values are byte-identical to a
// fault-free run of the same configuration. A mismatch is an error, not a
// table row — the campaign is a correctness gate first and a report
// second.
func Chaos(o Options) ([]*Table, error) {
	o = o.withDefaults()
	ds, err := graph.DatasetByName("livej")
	if err != nil {
		return nil, err
	}
	g := ds.GenerateCached(o.Scale)

	seeds := []int64{o.ChaosSeed, o.ChaosSeed + 1, o.ChaosSeed + 2, o.ChaosSeed + 3}
	policies := []string{"confined", "checkpoint", "scratch"}
	if o.Quick {
		seeds = seeds[:2]
		policies = []string{"confined", "checkpoint"}
	}
	if o.Recovery != "" {
		policies = []string{o.Recovery}
	}
	progs := map[string]func() algo.Program{
		"pagerank": func() algo.Program { return algo.NewPageRank(0.85) },
		"sssp":     func() algo.Program { return algo.NewSSSP(0) },
	}
	algs := []string{"pagerank", "sssp"}
	if o.Quick {
		algs = algs[:1]
	}

	tb := &Table{ID: "chaos", Title: "Chaos campaign: seeded crash+stall+transport faults, values vs fault-free run",
		Header: []string{"seed", "algo", "engine", "policy", "tcp", "crashes", "stalls",
			"restarts", "replayed", "recovery(sim s)", "replay(B)", "values"}}

	base := core.Config{Workers: o.Workers, MsgBuf: 64, MaxSteps: 8,
		Profile: o.Profile, CheckpointEvery: 3, Codec: o.Codec, TraceDir: o.TraceDir, Metrics: o.Metrics}

	for _, alg := range algs {
		for _, e := range []core.Engine{core.Push, core.BPull, core.Hybrid} {
			clean, err := core.Run(g, progs[alg](), base, e)
			if err != nil {
				return nil, err
			}
			for _, seed := range seeds {
				plan := faultplan.NewPlan(faultplan.RandomCrashes(seed, 2, 6, o.Workers)...).
					WithStalls(faultplan.RandomStalls(seed+9973, 1, 6, o.Workers)...)
				// One TCP leg per seed exercises the resilient fabric's
				// retry/dedup under the same crash+stall schedule.
				tcp := seed == seeds[0]
				if tcp {
					plan.Net = &faultplan.TransportFaults{Seed: seed,
						DropRequest: 0.02, DropResponse: 0.02, Duplicate: 0.02}
				}
				for _, policy := range policies {
					cfg := base
					cfg.Recovery = policy
					cfg.FaultPlan = plan
					cfg.BarrierDeadline = 100 * time.Millisecond
					cfg.TCP = tcp
					res, err := core.Run(g, progs[alg](), cfg, e)
					if err != nil {
						return nil, fmt.Errorf("chaos seed %d %s/%s/%s: %w", seed, alg, e, policy, err)
					}
					for v := range clean.Values {
						if res.Values[v] != clean.Values[v] {
							return nil, fmt.Errorf("chaos seed %d %s/%s/%s: vertex %d = %g, fault-free run has %g",
								seed, alg, e, policy, v, res.Values[v], clean.Values[v])
						}
					}
					tb.Rows = append(tb.Rows, []string{
						fmt.Sprintf("%d", seed), alg, string(e), policy,
						fmt.Sprintf("%v", tcp),
						fmt.Sprintf("%d", len(plan.Crashes)), fmt.Sprintf("%d", res.Stalls),
						fmt.Sprintf("%d", res.Restarts), fmt.Sprintf("%d", res.ReplayedSupersteps),
						fmtSeconds(res.RecoverySimSeconds), fmtBytes(res.ReplayIO.Total()),
						"identical"})
				}
			}
		}
	}
	return []*Table{tb}, nil
}

// ReassignChaos runs the permanent-loss campaign: seeded permanent
// crashes (plus a stall and transport faults on some legs) under the
// reassign policy, over every loggable engine. Each run must finish with
// values byte-identical to a fault-free run, with the dead workers'
// partitions adopted by survivors and migration bytes charged — or fail
// with the typed no-survivors error when a schedule kills every machine.
func ReassignChaos(o Options) ([]*Table, error) {
	o = o.withDefaults()
	ds, err := graph.DatasetByName("livej")
	if err != nil {
		return nil, err
	}
	g := ds.GenerateCached(o.Scale)

	seeds := []int64{o.ChaosSeed, o.ChaosSeed + 1, o.ChaosSeed + 2, o.ChaosSeed + 3}
	if o.Quick {
		seeds = seeds[:2]
	}
	progs := map[string]func() algo.Program{
		"pagerank": func() algo.Program { return algo.NewPageRank(0.85) },
		"sssp":     func() algo.Program { return algo.NewSSSP(0) },
	}
	algs := []string{"pagerank", "sssp"}
	if o.Quick {
		algs = algs[:1]
	}

	tb := &Table{ID: "reassignchaos", Title: "Reassign campaign: seeded permanent crashes, partitions adopted, values vs fault-free run",
		Header: []string{"seed", "algo", "engine", "tcp", "perm-crashes", "stalls",
			"reassigns", "migration(B)", "net-migration(B)", "values"}}

	base := core.Config{Workers: o.Workers, MsgBuf: 64, MaxSteps: 8,
		Profile: o.Profile, CheckpointEvery: 3, Recovery: "reassign",
		MaxRestarts: 1, Codec: o.Codec, TraceDir: o.TraceDir, Metrics: o.Metrics}

	for _, alg := range algs {
		for _, e := range []core.Engine{core.Push, core.BPull, core.Hybrid} {
			cleanCfg := base
			cleanCfg.Recovery = ""
			clean, err := core.Run(g, progs[alg](), cleanCfg, e)
			if err != nil {
				return nil, err
			}
			for _, seed := range seeds {
				// Up to two permanent losses out of o.Workers machines: the
				// cluster shrinks but survives. One seeded stall leg layers a
				// repeated-stall escalation on top.
				plan := faultplan.NewPlan(faultplan.RandomPermanentCrashes(seed, 2, 6, o.Workers)...).
					WithStalls(faultplan.RandomStalls(seed+9973, 1, 6, o.Workers)...)
				tcp := seed == seeds[0]
				if tcp {
					plan.Net = &faultplan.TransportFaults{Seed: seed,
						DropRequest: 0.02, DropResponse: 0.02, Duplicate: 0.02}
				}
				cfg := base
				cfg.FaultPlan = plan
				cfg.BarrierDeadline = 100 * time.Millisecond
				cfg.TCP = tcp
				res, err := core.Run(g, progs[alg](), cfg, e)
				if err != nil {
					if errors.Is(err, core.ErrNoSurvivors) {
						tb.Rows = append(tb.Rows, []string{
							fmt.Sprintf("%d", seed), alg, string(e), fmt.Sprintf("%v", tcp),
							fmt.Sprintf("%d", len(plan.Crashes)), "-", "-", "-", "-",
							"no-survivors"})
						continue
					}
					return nil, fmt.Errorf("reassign chaos seed %d %s/%s: %w", seed, alg, e, err)
				}
				if res.Reassignments < 1 {
					return nil, fmt.Errorf("reassign chaos seed %d %s/%s: no reassignment despite permanent crashes", seed, alg, e)
				}
				if res.MigrationIO.Total() <= 0 || !res.Degraded {
					return nil, fmt.Errorf("reassign chaos seed %d %s/%s: migration accounting empty (io=%d degraded=%v)",
						seed, alg, e, res.MigrationIO.Total(), res.Degraded)
				}
				for v := range clean.Values {
					if res.Values[v] != clean.Values[v] {
						return nil, fmt.Errorf("reassign chaos seed %d %s/%s: vertex %d = %g, fault-free run has %g",
							seed, alg, e, v, res.Values[v], clean.Values[v])
					}
				}
				tb.Rows = append(tb.Rows, []string{
					fmt.Sprintf("%d", seed), alg, string(e), fmt.Sprintf("%v", tcp),
					fmt.Sprintf("%d", len(plan.Crashes)), fmt.Sprintf("%d", res.Stalls),
					fmt.Sprintf("%d", res.Reassignments),
					fmtBytes(res.MigrationIO.Total()), fmtBytes(res.MigrationNetBytes),
					"identical"})
			}
		}
	}
	return []*Table{tb}, nil
}

// RecoveryCost compares the four recovery policies on an identical fault
// plan: what each pays during normal execution (checkpoints, message
// logging) and at recovery time (restores, discarded or replayed work).
// Confined's claim is the replay column: recovery cost proportional to
// one worker's partition, not the cluster's.
func RecoveryCost(o Options) ([]*Table, error) {
	o = o.withDefaults()
	ds, err := graph.DatasetByName("livej")
	if err != nil {
		return nil, err
	}
	g := ds.GenerateCached(o.Scale)

	plan := faultplan.NewPlan(faultplan.Crash{Step: 5, Worker: 1})
	engines := []core.Engine{core.Push, core.BPull, core.Hybrid}
	if o.Quick {
		engines = engines[:1]
	}
	policies := []string{"scratch", "resume", "checkpoint", "confined"}
	if o.Recovery != "" {
		policies = []string{o.Recovery}
	}

	tb := &Table{ID: "recovery", Title: "Recovery cost by policy (SSSP, crash at superstep 5)",
		Header: []string{"engine", "policy", "total(sim s)", "recovery(sim s)",
			"replayed", "replay(B)", "ckpt(B)", "log(B)"}}
	for _, e := range engines {
		for _, policy := range policies {
			cfg := core.Config{Workers: o.Workers, MsgBuf: 64, MaxSteps: 30,
				Profile: o.Profile, CheckpointEvery: 3, Recovery: policy,
				FaultPlan: plan, Codec: o.Codec, TraceDir: o.TraceDir, Metrics: o.Metrics}
			res, err := core.Run(g, algo.NewSSSP(0), cfg, e)
			if err != nil {
				return nil, err
			}
			tb.Rows = append(tb.Rows, []string{string(e), policy,
				fmtSeconds(res.SimSeconds), fmtSeconds(res.RecoverySimSeconds),
				fmt.Sprintf("%d", res.ReplayedSupersteps),
				fmtBytes(res.ReplayIO.Total()), fmtBytes(res.CheckpointIO.Total()),
				fmtBytes(res.LogIO.Total())})
		}
	}
	return []*Table{tb}, nil
}
