package harness

import (
	"fmt"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/comm"
	"hybridgraph/internal/core"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/metrics"
)

// Fig2 reproduces the motivation experiment: Giraph-style push over wiki,
// PageRank (10 supersteps) and SSSP, with the message buffer swept from
// tiny to "mem"; runtime climbs as the fraction of disk-resident messages
// grows.
func Fig2(o Options) ([]*Table, error) {
	o = o.withDefaults()
	ds, err := graph.DatasetByName("wiki")
	if err != nil {
		return nil, err
	}
	g := ds.GenerateCached(o.Scale)
	fractions := []float64{0.02, 0.05, 0.1, 0.2, 0.4, 0.8}
	if o.Quick {
		fractions = []float64{0.05, 0.4}
	}
	var tables []*Table
	for _, spec := range []struct {
		name  string
		prog  algo.Program
		steps int
	}{
		{"pagerank", algo.NewPageRank(0.85), 10},
		{"sssp", algo.NewSSSP(0), 60},
	} {
		tb := &Table{ID: "fig2-" + spec.name,
			Title:  fmt.Sprintf("push over wiki, %s: runtime vs message buffer", spec.name),
			Header: []string{"buffer(msgs/worker)", "runtime(sim s)", "msgs-on-disk(%)"}}
		addRow := func(label string, buf int) error {
			cfg := core.Config{Workers: o.Workers, MsgBuf: buf, MaxSteps: spec.steps, Profile: o.Profile,
				TraceDir: o.TraceDir, Metrics: o.Metrics}
			r, err := core.Run(g, spec.prog, cfg, core.Push)
			if err != nil {
				return err
			}
			var produced, spilled int64
			for _, s := range r.Steps {
				produced += s.Produced
				spilled += s.Spilled
			}
			pct := 0.0
			if produced > 0 {
				pct = 100 * float64(spilled) / float64(produced)
			}
			tb.Rows = append(tb.Rows, []string{label, fmtSeconds(r.SimSeconds), fmt.Sprintf("%.1f", pct)})
			return nil
		}
		for _, f := range fractions {
			buf := int(f * float64(g.NumVertices))
			if err := addRow(fmt.Sprintf("%d", buf), buf); err != nil {
				return nil, err
			}
		}
		if err := addRow("mem", 0); err != nil {
			return nil, err
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// Table4 reports the synthetic datasets next to the paper's originals.
func Table4(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tb := &Table{ID: "table4", Title: "Graph datasets (synthetic stand-ins)",
		Header: []string{"graph", "vertices", "edges", "avg-deg", "max-deg", "gini",
			"type", "paper-V", "paper-E", "paper-deg"}}
	for _, ds := range graph.Datasets {
		g := ds.GenerateCached(o.Scale)
		st := graph.Stats(g)
		tb.Rows = append(tb.Rows, []string{
			ds.Name, fmt.Sprintf("%d", g.NumVertices), fmt.Sprintf("%d", g.NumEdges()),
			fmt.Sprintf("%.1f", st.Avg), fmt.Sprintf("%d", st.Max), fmt.Sprintf("%.2f", st.Gini),
			ds.PaperType, ds.PaperVertices, ds.PaperEdges, fmt.Sprintf("%.1f", ds.PaperDegree),
		})
	}
	return []*Table{tb}, nil
}

// runGrid executes one engine grid and renders a runtime (or I/O) table
// per algorithm, mirroring the layout of Figs. 7-10.
func (o Options) runGrid(id string, datasets []graph.Dataset, sufficient bool,
	value func(r *metrics.JobResult, alg string) string, valueName string) ([]*Table, error) {

	var tables []*Table
	for _, prog := range o.algorithms() {
		tb := &Table{ID: fmt.Sprintf("%s-%s", id, prog.Name()),
			Title:  fmt.Sprintf("%s of %s (F = not runnable)", valueName, prog.Name()),
			Header: []string{"graph"}}
		engines := enginesFor(prog, true)
		for _, e := range engines {
			tb.Header = append(tb.Header, string(e))
		}
		for _, ds := range datasets {
			g := ds.GenerateCached(o.Scale)
			row := []string{ds.Name}
			for _, e := range engines {
				var cfg core.Config
				if sufficient {
					cfg = o.sufficientCfg(ds, prog.Name())
				} else {
					cfg = o.limitedCfg(ds, g, prog.Name())
				}
				r, err := core.Run(g, prog, cfg, e)
				if err != nil {
					row = append(row, "F")
					continue
				}
				row = append(row, value(r, prog.Name()))
			}
			tb.Rows = append(tb.Rows, row)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// Fig7 is the sufficient-memory runtime comparison over the small graphs
// plus twi.
func Fig7(o Options) ([]*Table, error) {
	o = o.withDefaults()
	return o.runGrid("fig7", o.datasets(false), true,
		func(r *metrics.JobResult, alg string) string { return fmtSeconds(runtimeOf(r, alg)) },
		"runtime (sim s, sufficient memory)")
}

// Fig8 is the limited-memory runtime comparison on the HDD cluster.
func Fig8(o Options) ([]*Table, error) {
	o = o.withDefaults()
	o.Profile = diskio.HDDLocal
	return o.runGrid("fig8", o.datasets(true), false,
		func(r *metrics.JobResult, alg string) string { return fmtSeconds(runtimeOf(r, alg)) },
		"runtime (sim s, limited memory, HDD)")
}

// Fig9 repeats Fig8 on the SSD profile.
func Fig9(o Options) ([]*Table, error) {
	o = o.withDefaults()
	o.Profile = diskio.SSDAmazon
	return o.runGrid("fig9", o.datasets(true), false,
		func(r *metrics.JobResult, alg string) string { return fmtSeconds(runtimeOf(r, alg)) },
		"runtime (sim s, limited memory, SSD)")
}

// Fig10 reports total disk bytes for the Fig8 grid.
func Fig10(o Options) ([]*Table, error) {
	o = o.withDefaults()
	return o.runGrid("fig10", o.datasets(true), false,
		func(r *metrics.JobResult, alg string) string {
			if perStep(alg) && len(r.Steps) > 0 {
				return fmtBytes(r.IO.DevTotal() / int64(len(r.Steps)))
			}
			return fmtBytes(r.IO.DevTotal())
		},
		"device I/O bytes (per superstep for PR/LPA, total otherwise)")
}

// predictionSeries runs push and b-pull to convergence and reports the
// ratio predicted(t)/actual(t+2) for one metric, the Shang-Yu persistence
// forecast the switcher uses (Figs. 11-13).
func (o Options) predictionSeries(id, title string, engine core.Engine,
	metric func(s metrics.StepStats) float64) ([]*Table, error) {

	var tables []*Table
	for _, prog := range []algo.Program{algo.NewSSSP(0), algo.NewSA(64, 16, 55)} {
		tb := &Table{ID: fmt.Sprintf("%s-%s", id, prog.Name()),
			Title:  fmt.Sprintf("%s, %s: ratio predicted(t)/actual(t+2)", title, prog.Name()),
			Header: []string{"superstep"}}
		series := map[string][]float64{}
		var maxLen int
		dss := o.datasets(true)
		for _, ds := range dss {
			g := ds.GenerateCached(o.Scale)
			cfg := o.limitedCfg(ds, g, prog.Name())
			r, err := core.Run(g, prog, cfg, engine)
			if err != nil {
				return nil, err
			}
			vals := make([]float64, len(r.Steps))
			for i, s := range r.Steps {
				vals[i] = metric(s)
			}
			var ratios []float64
			for t := 0; t+2 < len(vals); t++ {
				if vals[t+2] != 0 {
					ratios = append(ratios, vals[t]/vals[t+2])
				} else {
					ratios = append(ratios, 0)
				}
			}
			series[ds.Name] = ratios
			if len(ratios) > maxLen {
				maxLen = len(ratios)
			}
			tb.Header = append(tb.Header, ds.Name)
		}
		if maxLen > 16 {
			maxLen = 16 // the paper plots supersteps 0..16
		}
		for t := 0; t < maxLen; t++ {
			row := []string{fmt.Sprintf("%d", t+1)}
			for _, ds := range dss {
				r := series[ds.Name]
				if t < len(r) {
					row = append(row, fmt.Sprintf("%.2f", r[t]))
				} else {
					row = append(row, "-")
				}
			}
			tb.Rows = append(tb.Rows, row)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// Fig11 reports the prediction accuracy of Mco.
func Fig11(o Options) ([]*Table, error) {
	o = o.withDefaults()
	return o.predictionSeries("fig11", "Mco accuracy", core.BPull,
		func(s metrics.StepStats) float64 { return float64(s.McoBytes) })
}

// Fig12 reports the prediction accuracy of Cio(push).
func Fig12(o Options) ([]*Table, error) {
	o = o.withDefaults()
	return o.predictionSeries("fig12", "Cio(push) accuracy", core.Push,
		func(s metrics.StepStats) float64 { return float64(s.Parts.CioPush()) })
}

// Fig13 reports the prediction accuracy of Cio(b-pull).
func Fig13(o Options) ([]*Table, error) {
	o = o.withDefaults()
	return o.predictionSeries("fig13", "Cio(b-pull) accuracy", core.BPull,
		func(s metrics.StepStats) float64 { return float64(s.Parts.CioBpull()) })
}

// Fig14 traces hybrid through SSSP over twi: the metric Qt on HDD and SSD
// (14a), per-superstep disk I/O (14b), network messages (14c) and memory
// (14d) for push, b-pull and hybrid.
func Fig14(o Options) ([]*Table, error) {
	o = o.withDefaults()
	name := "twi"
	if o.Quick {
		name = "livej"
	}
	ds, err := graph.DatasetByName(name)
	if err != nil {
		return nil, err
	}
	g := ds.GenerateCached(o.Scale)
	prog := algo.NewSSSP(0)

	runWith := func(p diskio.Profile, e core.Engine) (*metrics.JobResult, error) {
		opt := o
		opt.Profile = p
		cfg := opt.limitedCfg(ds, g, prog.Name())
		return core.Run(g, prog, cfg, e)
	}
	hddHybrid, err := runWith(diskio.HDDLocal, core.Hybrid)
	if err != nil {
		return nil, err
	}
	ssdHybrid, err := runWith(diskio.SSDAmazon, core.Hybrid)
	if err != nil {
		return nil, err
	}
	push, err := runWith(o.Profile, core.Push)
	if err != nil {
		return nil, err
	}
	bpull, err := runWith(o.Profile, core.BPull)
	if err != nil {
		return nil, err
	}

	qt := &Table{ID: "fig14a", Title: "performance metric Qt per superstep (SSSP over " + name + ")",
		Header: []string{"superstep", "mode", "Qt-HDD", "Qt-SSD"}}
	n := len(hddHybrid.Steps)
	for i := 0; i < n; i++ {
		s := hddHybrid.Steps[i]
		ssd := ""
		if i < len(ssdHybrid.Steps) {
			ssd = fmt.Sprintf("%.4g", ssdHybrid.Steps[i].Qt)
		}
		qt.Rows = append(qt.Rows, []string{
			fmt.Sprintf("%d", s.Step), s.Mode, fmt.Sprintf("%.4g", s.Qt), ssd})
	}

	series := func(id, title, unit string, f func(s metrics.StepStats) string) *Table {
		tb := &Table{ID: id, Title: title, Header: []string{"superstep", "push", "b-pull", "hybrid"}}
		maxN := len(push.Steps)
		if len(bpull.Steps) > maxN {
			maxN = len(bpull.Steps)
		}
		if len(hddHybrid.Steps) > maxN {
			maxN = len(hddHybrid.Steps)
		}
		cell := func(r *metrics.JobResult, i int) string {
			if i < len(r.Steps) {
				return f(r.Steps[i])
			}
			return "-"
		}
		for i := 0; i < maxN; i++ {
			tb.Rows = append(tb.Rows, []string{fmt.Sprintf("%d", i+1),
				cell(push, i), cell(bpull, i), cell(hddHybrid, i)})
		}
		_ = unit
		return tb
	}
	io := series("fig14b", "disk I/O bytes per superstep", "bytes",
		func(s metrics.StepStats) string { return fmtBytes(s.IO.Total()) })
	net := series("fig14c", "network messages per superstep", "msgs",
		func(s metrics.StepStats) string { return fmtBytes(s.NetBytes) })
	mem := series("fig14d", "memory usage per superstep (bytes)", "bytes",
		func(s metrics.StepStats) string { return fmtBytes(s.MemBytes) })
	return []*Table{qt, io, net, mem}, nil
}

// Fig15 sweeps the worker count for pushM and hybrid under PageRank with
// limited memory: pushM degrades super-linearly as nodes shrink, hybrid
// sub-linearly.
func Fig15(o Options) ([]*Table, error) {
	o = o.withDefaults()
	workerGrid := []int{10, 15, 20, 25, 30}
	if o.Quick {
		workerGrid = []int{2, 4, 8}
	}
	prog := algo.NewPageRank(0.85)
	var tables []*Table
	for _, e := range []core.Engine{core.PushM, core.Hybrid} {
		tb := &Table{ID: "fig15-" + string(e),
			Title:  fmt.Sprintf("scalability of %s (PageRank, limited memory): runtime vs workers", e),
			Header: []string{"graph"}}
		for _, wkr := range workerGrid {
			tb.Header = append(tb.Header, fmt.Sprintf("T=%d", wkr))
		}
		for _, ds := range o.datasets(true) {
			g := ds.GenerateCached(o.Scale)
			row := []string{ds.Name}
			for _, wkr := range workerGrid {
				cfg := o.limitedCfg(ds, g, prog.Name())
				cfg.Workers = wkr
				r, err := core.Run(g, prog, cfg, e)
				if err != nil {
					row = append(row, "F")
					continue
				}
				row = append(row, fmtSeconds(runtimeOf(r, prog.Name())))
			}
			tb.Rows = append(tb.Rows, row)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// Fig16 compares graph-loading cost for the three storage layouts, as
// ratios to the adjacency-list build.
func Fig16(o Options) ([]*Table, error) {
	o = o.withDefaults()
	rt := &Table{ID: "fig16a", Title: "loading runtime ratio vs adj",
		Header: []string{"graph", "adj", "VE-BLOCK", "adj+VE-BLOCK"}}
	iob := &Table{ID: "fig16b", Title: "loading I/O bytes ratio vs adj",
		Header: []string{"graph", "adj", "VE-BLOCK", "adj+VE-BLOCK"}}
	prog := algo.NewPageRank(0.85)
	for _, ds := range o.datasets(true) {
		g := ds.GenerateCached(o.Scale)
		cfg := o.limitedCfg(ds, g, prog.Name())
		cfg.MaxSteps = 1
		var secs [3]float64
		var bytes [3]float64
		for i, e := range []core.Engine{core.Push, core.BPull, core.Hybrid} {
			r, err := core.Run(g, prog, cfg, e)
			if err != nil {
				return nil, err
			}
			secs[i] = r.LoadSimSeconds
			bytes[i] = float64(r.LoadIO.Total())
		}
		ratio := func(v [3]float64) []string {
			out := make([]string, 3)
			for i := range v {
				out[i] = fmt.Sprintf("%.2f", v[i]/v[0])
			}
			return out
		}
		rt.Rows = append(rt.Rows, append([]string{ds.Name}, ratio(secs)...))
		iob.Rows = append(iob.Rows, append([]string{ds.Name}, ratio(bytes)...))
	}
	return []*Table{rt, iob}, nil
}

// Fig17 reports per-superstep blocking (message-exchange) time for push,
// pushM and b-pull under PageRank with sufficient memory.
func Fig17(o Options) ([]*Table, error) {
	o = o.withDefaults()
	prog := algo.NewPageRank(0.85)
	names := []string{"wiki", "orkut"}
	if o.Quick {
		names = []string{"wiki"}
	}
	var tables []*Table
	for _, name := range names {
		ds, err := graph.DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := ds.GenerateCached(o.Scale)
		tb := &Table{ID: "fig17-" + name,
			Title:  "blocking time (sim s) per superstep, PageRank over " + name,
			Header: []string{"superstep", "push", "pushM", "b-pull"}}
		var runs []*metrics.JobResult
		for _, e := range []core.Engine{core.Push, core.PushM, core.BPull} {
			r, err := core.Run(g, prog, o.sufficientCfg(ds, prog.Name()), e)
			if err != nil {
				return nil, err
			}
			runs = append(runs, r)
		}
		for i := 0; i < len(runs[0].Steps); i++ {
			row := []string{fmt.Sprintf("%d", i+1)}
			for _, r := range runs {
				if i < len(r.Steps) {
					row = append(row, fmt.Sprintf("%.5f", r.Steps[i].NetSeconds))
				} else {
					row = append(row, "-")
				}
			}
			tb.Rows = append(tb.Rows, row)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// Fig18 reports per-superstep network traffic for push versus b-pull with
// combining disabled (concatenation only), PageRank.
func Fig18(o Options) ([]*Table, error) {
	o = o.withDefaults()
	prog := algo.NewPageRank(0.85)
	names := []string{"wiki", "orkut"}
	if o.Quick {
		names = []string{"wiki"}
	}
	var tables []*Table
	for _, name := range names {
		ds, err := graph.DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := ds.GenerateCached(o.Scale)
		tb := &Table{ID: "fig18-" + name,
			Title:  "network bytes per superstep (combining off), PageRank over " + name,
			Header: []string{"superstep", "push", "b-pull"}}
		cfg := o.sufficientCfg(ds, prog.Name())
		cfg.DisableCombine = true
		push, err := core.Run(g, prog, cfg, core.Push)
		if err != nil {
			return nil, err
		}
		bpull, err := core.Run(g, prog, cfg, core.BPull)
		if err != nil {
			return nil, err
		}
		for i := 0; i < len(push.Steps) || i < len(bpull.Steps); i++ {
			cell := func(r *metrics.JobResult) string {
				if i < len(r.Steps) {
					return fmtBytes(r.Steps[i].NetBytes)
				}
				return "-"
			}
			tb.Rows = append(tb.Rows, []string{fmt.Sprintf("%d", i+1), cell(push), cell(bpull)})
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// vblockSweep runs PageRank and SSSP over one dataset while varying the
// number of Vblocks, reporting memory, I/O and runtime (Appendix C).
func (o Options) vblockSweep(id, dsName string) ([]*Table, error) {
	ds, err := graph.DatasetByName(dsName)
	if err != nil {
		return nil, err
	}
	g := ds.GenerateCached(o.Scale)
	grid := []int{1, 2, 4, 8, 16, 32, 64}
	if o.Quick {
		grid = []int{1, 8, 32}
	}
	mem := &Table{ID: id + "-mem", Title: "peak memory (bytes) vs Vblocks/worker over " + dsName,
		Header: []string{"V/worker", "pagerank", "sssp"}}
	iob := &Table{ID: id + "-io", Title: "I/O bytes vs Vblocks/worker over " + dsName,
		Header: []string{"V/worker", "pagerank", "sssp"}}
	rt := &Table{ID: id + "-runtime", Title: "runtime (sim s) vs Vblocks/worker over " + dsName,
		Header: []string{"V/worker", "pagerank", "sssp"}}
	progs := []algo.Program{algo.NewPageRank(0.85), algo.NewSSSP(0)}
	for _, v := range grid {
		memRow := []string{fmt.Sprintf("%d", v)}
		ioRow := []string{fmt.Sprintf("%d", v)}
		rtRow := []string{fmt.Sprintf("%d", v)}
		for _, prog := range progs {
			cfg := o.limitedCfg(ds, g, prog.Name())
			cfg.BlocksPerWorker = v
			r, err := core.Run(g, prog, cfg, core.BPull)
			if err != nil {
				return nil, err
			}
			memRow = append(memRow, fmtBytes(r.MaxMemBytes))
			ioRow = append(ioRow, fmtBytes(r.IO.Total()))
			rtRow = append(rtRow, fmtSeconds(r.SimSeconds))
		}
		mem.Rows = append(mem.Rows, memRow)
		iob.Rows = append(iob.Rows, ioRow)
		rt.Rows = append(rt.Rows, rtRow)
	}
	return []*Table{mem, iob, rt}, nil
}

// Fig23 sweeps the Vblock count over livej (memory and I/O).
func Fig23(o Options) ([]*Table, error) {
	o = o.withDefaults()
	ts, err := o.vblockSweep("fig23", "livej")
	if err != nil {
		return nil, err
	}
	return ts[:2], nil
}

// Fig24 sweeps the Vblock count over wiki (memory and I/O).
func Fig24(o Options) ([]*Table, error) {
	o = o.withDefaults()
	ts, err := o.vblockSweep("fig24", "wiki")
	if err != nil {
		return nil, err
	}
	return ts[:2], nil
}

// Fig25 reports the runtime column of the Vblock sweeps.
func Fig25(o Options) ([]*Table, error) {
	o = o.withDefaults()
	var out []*Table
	for _, name := range []string{"livej", "wiki"} {
		ts, err := o.vblockSweep("fig25-"+name, name)
		if err != nil {
			return nil, err
		}
		out = append(out, ts[2])
	}
	return out, nil
}

// Fig26 sweeps the sending threshold for pushM, pushM+com (sender-side
// combining) and b-pull under PageRank over orkut, reporting runtime and
// the combining ratio (Appendix E).
func Fig26(o Options) ([]*Table, error) {
	o = o.withDefaults()
	ds, err := graph.DatasetByName("orkut")
	if err != nil {
		return nil, err
	}
	g := ds.GenerateCached(o.Scale)
	prog := algo.NewPageRank(0.85)
	thresholds := []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	if o.Quick {
		thresholds = []int64{4 << 10, 256 << 10}
	}
	rt := &Table{ID: "fig26a", Title: "runtime (sim s) vs sending threshold, PageRank over orkut",
		Header: []string{"threshold", "pushM", "pushM+com", "b-pull"}}
	cr := &Table{ID: "fig26b", Title: "combining ratio vs sending threshold",
		Header: []string{"threshold", "pushM+com", "b-pull"}}
	for _, th := range thresholds {
		cfg := o.sufficientCfg(ds, prog.Name())
		cfg.SendThreshold = th
		pm, err := core.Run(g, prog, cfg, core.PushM)
		if err != nil {
			return nil, err
		}
		cfgCom := cfg
		cfgCom.SenderCombine = true
		pmc, err := core.Run(g, prog, cfgCom, core.Push)
		if err != nil {
			return nil, err
		}
		bp, err := core.Run(g, prog, cfg, core.BPull)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%dKB", th>>10)
		rt.Rows = append(rt.Rows, []string{label,
			fmtSeconds(pm.SimSeconds), fmtSeconds(pmc.SimSeconds), fmtSeconds(bp.SimSeconds)})
		ratio := func(r *metrics.JobResult) string {
			var produced, saved int64
			for _, s := range r.Steps {
				produced += s.Produced
				saved += s.McoBytes
			}
			if produced == 0 {
				return "0.00"
			}
			return fmt.Sprintf("%.2f", float64(saved)/float64(produced*comm.MsgWireSize))
		}
		cr.Rows = append(cr.Rows, []string{label, ratio(pmc), ratio(bp)})
	}
	return []*Table{rt, cr}, nil
}

// Table5 reproduces Appendix F: the modified pull baseline in five
// scenarios from fully memory-resident to a vertex cache below the
// working set.
func Table5(o Options) ([]*Table, error) {
	o = o.withDefaults()
	names := graph.SmallDatasets()
	if o.Quick {
		names = names[:2]
	}
	progs := o.algorithms()
	if o.Quick {
		progs = progs[:2]
	}
	var tables []*Table
	for _, prog := range progs {
		tb := &Table{ID: "table5-" + prog.Name(),
			Title:  "pull scenarios, runtime (sim s) of " + prog.Name(),
			Header: append([]string{"scenario"}, names...)}
		type scenario struct {
			name string
			cfg  func(ds graph.Dataset, g *graph.Graph) core.Config
		}
		scenarios := []scenario{
			{"original", func(ds graph.Dataset, g *graph.Graph) core.Config {
				return o.sufficientCfg(ds, prog.Name())
			}},
			{"ext-mem", func(ds graph.Dataset, g *graph.Graph) core.Config {
				return o.sufficientCfg(ds, prog.Name())
			}},
			{"ext-edge", func(ds graph.Dataset, g *graph.Graph) core.Config {
				c := o.limitedCfg(ds, g, prog.Name())
				c.VerticesInMemory = true
				c.VertexCache = 0
				return c
			}},
			{"ext-edge-v3", func(ds graph.Dataset, g *graph.Graph) core.Config {
				c := o.limitedCfg(ds, g, prog.Name())
				// Paper: 3M cached vertices per task ≳ the per-task
				// working set; scaled to just above the partition size.
				c.VertexCache = (g.NumVertices/c.Workers)*21/20 + 1
				return c
			}},
			{"ext-edge-v2.5", func(ds graph.Dataset, g *graph.Graph) core.Config {
				c := o.limitedCfg(ds, g, prog.Name())
				// Scaled to just below the working set: LRU thrashes.
				c.VertexCache = (g.NumVertices / c.Workers) * 4 / 5
				return c
			}},
		}
		for _, sc := range scenarios {
			row := []string{sc.name}
			for _, name := range names {
				ds, err := graph.DatasetByName(name)
				if err != nil {
					return nil, err
				}
				g := ds.GenerateCached(o.Scale)
				r, err := core.Run(g, prog, sc.cfg(ds, g), core.Pull)
				if err != nil {
					row = append(row, "F")
					continue
				}
				row = append(row, fmtSeconds(r.SimSeconds))
			}
			tb.Rows = append(tb.Rows, row)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}
