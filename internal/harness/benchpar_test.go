package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchParWritesArtifactAndHoldsIdentity(t *testing.T) {
	old := BenchParPath
	BenchParPath = filepath.Join(t.TempDir(), "BENCH_pr7.json")
	defer func() { BenchParPath = old }()

	tables, err := BenchPar(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 12 {
		t.Fatalf("benchpar table shape: %d tables, %d rows (want 1 x 12)", len(tables), len(tables[0].Rows))
	}
	data, err := os.ReadFile(BenchParPath)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var art BenchParArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(art.Graphs) != 2 || len(art.Legs) != 12 {
		t.Fatalf("artifact has %d graphs, %d legs (want 2, 12)", len(art.Graphs), len(art.Legs))
	}
	if !art.AllIdentical {
		t.Fatal("artifact reports a parallel run diverging from its sequential run")
	}
	for _, l := range art.Legs {
		if !l.Identical {
			t.Fatalf("%s/%s/%s: not identical", l.Graph, l.Algorithm, l.Engine)
		}
		if l.BaseWallSeconds <= 0 || l.ParWallSeconds <= 0 {
			t.Fatalf("%s/%s/%s: empty run (%g s, %g s)",
				l.Graph, l.Algorithm, l.Engine, l.BaseWallSeconds, l.ParWallSeconds)
		}
		if l.ValuesFNV == 0 || l.Eq7CioPush <= 0 || l.Eq8CioBpull <= 0 {
			t.Fatalf("%s/%s/%s: identity fields not populated", l.Graph, l.Algorithm, l.Engine)
		}
	}
	if art.Parallelism < 2 {
		t.Fatalf("parallel leg ran at Parallelism %d; want >= 2", art.Parallelism)
	}
	if art.MeanSpeedup <= 0 {
		t.Fatalf("mean speedup %g not populated", art.MeanSpeedup)
	}
}
