package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchWritesArtifact(t *testing.T) {
	old := BenchPath
	BenchPath = filepath.Join(t.TempDir(), "BENCH_pr4.json")
	defer func() { BenchPath = old }()

	tables, err := Bench(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 12 {
		t.Fatalf("bench table shape: %d tables, %d rows (want 1 x 12)", len(tables), len(tables[0].Rows))
	}
	data, err := os.ReadFile(BenchPath)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var art BenchArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(art.Graphs) != 2 || len(art.Results) != 12 {
		t.Fatalf("artifact has %d graphs, %d results (want 2, 12)", len(art.Graphs), len(art.Results))
	}
	for _, r := range art.Results {
		if r.Supersteps <= 0 || r.SimSeconds <= 0 {
			t.Fatalf("%s/%s/%s: empty run (%d steps, %g s)",
				r.Graph, r.Algorithm, r.Engine, r.Supersteps, r.SimSeconds)
		}
		if r.Eq7CioPush <= 0 || r.Eq8CioBpull <= 0 {
			t.Fatalf("%s/%s/%s: Eq. 7/8 byte totals not populated (%d, %d)",
				r.Graph, r.Algorithm, r.Engine, r.Eq7CioPush, r.Eq8CioBpull)
		}
	}
	// The headline shape the paper argues: under memory pressure b-pull's
	// Eq. (8) traffic beats push's Eq. (7) traffic for PageRank.
	byKey := map[string]BenchResult{}
	for _, r := range art.Results {
		byKey[r.Graph+"/"+r.Algorithm+"/"+r.Engine] = r
	}
	push := byKey["rmat/pagerank/push"]
	bpull := byKey["rmat/pagerank/b-pull"]
	if bpull.Eq8CioBpull >= push.Eq7CioPush {
		t.Errorf("b-pull Eq8 bytes %d should undercut push Eq7 bytes %d on rmat/pagerank",
			bpull.Eq8CioBpull, push.Eq7CioPush)
	}
}
