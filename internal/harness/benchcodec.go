package harness

import (
	"encoding/json"
	"fmt"
	"os"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/core"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/metrics"
)

// BenchCodecLeg is one (engine, codec) cell of the codec ablation: the
// same PageRank job over the synthetic livej stand-in, with the codec as
// the only variable. The logical columns must be byte-identical to the
// codec-none leg of the same engine — the codec is not allowed to touch
// the paper's cost model — while the physical column is what actually
// hit the disk.
type BenchCodecLeg struct {
	Engine string `json:"engine"`
	Codec  string `json:"codec"`

	// Identity proof against the codec-none leg: an FNV-1a hash over the
	// final values' IEEE-754 bits, plus the logical totals the Q^t switch
	// and the cost models consume.
	ValuesFNV    uint64 `json:"values_fnv"`
	Identical    bool   `json:"identical"`
	LogicalBytes int64  `json:"logical_bytes"`
	NetBytes     int64  `json:"net_bytes"`
	Eq7CioPush   int64  `json:"eq7_cio_push_bytes"`
	Eq8CioBpull  int64  `json:"eq8_cio_bpull_bytes"`

	// The physical dimension: post-codec bytes and the resulting ratio
	// (logical/physical; exactly 1 under codec none).
	PhysicalBytes    int64   `json:"physical_bytes"`
	CompressionRatio float64 `json:"compression_ratio"`
	Shrinks          bool    `json:"shrinks"` // physical < codec-none physical
}

// BenchCodecArtifact is the BENCH_pr9.json document.
type BenchCodecArtifact struct {
	Workers int             `json:"workers"`
	MsgBuf  int             `json:"msg_buf"`
	Profile string          `json:"profile"`
	Graph   BenchGraph      `json:"graph"`
	Codecs  []string        `json:"codecs"`
	Legs    []BenchCodecLeg `json:"legs"`
	// AllIdentical aggregates the per-leg logical-identity checks;
	// AllShrink aggregates the per-leg physical-shrink checks over the
	// non-none codecs.
	AllIdentical bool `json:"all_identical"`
	AllShrink    bool `json:"all_shrink"`
}

// BenchCodecPath is the benchcodec experiment's default JSON artifact
// path; Options.Out overrides it.
var BenchCodecPath = "BENCH_pr9.json"

// logicalTotal sums every logical byte dimension a run charges.
func logicalTotal(r *metrics.JobResult) int64 {
	return r.IO.Total() + r.LogIO.Total() + r.LoadIO.Total() +
		r.CheckpointIO.Total() + r.ReplayIO.Total() + r.MigrationIO.Total()
}

// physicalTotal sums the parallel physical dimensions.
func physicalTotal(r *metrics.JobResult) int64 {
	return r.PhysIO.Total() + r.LoadPhysIO.Total() +
		r.CheckpointPhysIO.Total() + r.ReplayPhysIO.Total() + r.MigrationPhysIO.Total()
}

// BenchCodec runs the codec ablation: PageRank over the synthetic livej
// stand-in under the limited-memory configuration, for every registered
// codec crossed with {push, b-pull, hybrid}, writing BENCH_pr9.json. Per
// engine, the codec-none leg is the baseline; every other codec must
// reproduce its values and every logical byte statistic exactly, and
// must put fewer physical bytes on disk. A violation of either contract
// fails the experiment, not just the artifact.
func BenchCodec(o Options) ([]*Table, error) {
	o = o.withDefaults()
	out := o.Out
	if out == "" {
		out = BenchCodecPath
	}
	ds, err := graph.DatasetByName("livej")
	if err != nil {
		return nil, err
	}
	scale := o.Scale
	if o.Quick && scale > 0.05 {
		scale = 0.05
	}
	g := ds.GenerateCached(scale)

	codecs := []string{"none", "delta", "lz"}
	engines := []core.Engine{core.Push, core.BPull, core.Hybrid}
	if o.Quick {
		engines = []core.Engine{core.Push, core.Hybrid}
	}
	buf := int(bufferRatio["livej"] * float64(g.NumVertices))
	if buf < 16 {
		buf = 16
	}
	art := BenchCodecArtifact{
		Workers:      o.Workers,
		MsgBuf:       buf,
		Profile:      o.Profile.Name,
		Codecs:       codecs,
		AllIdentical: true,
		AllShrink:    true,
		Graph: BenchGraph{Name: "livej", Kind: "rmat",
			Vertices: g.NumVertices, Edges: g.NumEdges(), Seed: ds.Seed},
	}

	tb := &Table{ID: "benchcodec", Title: "Codec ablation (also written to " + out + ")",
		Header: []string{"engine", "codec", "logical-B", "physical-B", "ratio", "identical", "shrinks"}}
	for _, e := range engines {
		var base *BenchCodecLeg
		for _, cn := range codecs {
			cfg := core.Config{
				Workers:     o.Workers,
				MsgBuf:      buf,
				MaxSteps:    maxStepsFor("pagerank"),
				Profile:     o.Profile,
				Parallelism: o.Parallelism,
				Codec:       cn,
				TraceDir:    o.TraceDir,
				Metrics:     o.Metrics,
			}
			res, err := core.Run(g, algo.NewPageRank(0.85), cfg, e)
			if err != nil {
				return nil, fmt.Errorf("benchcodec %s/%s: %w", e, cn, err)
			}
			var cio7, cio8 int64
			for _, s := range res.Steps {
				cio7 += s.Parts.CioPush()
				cio8 += s.Parts.CioBpull()
			}
			leg := BenchCodecLeg{
				Engine:           string(e),
				Codec:            cn,
				ValuesFNV:        valuesFNV(res.Values),
				LogicalBytes:     logicalTotal(res),
				NetBytes:         res.NetBytes,
				Eq7CioPush:       cio7,
				Eq8CioBpull:      cio8,
				PhysicalBytes:    physicalTotal(res),
				CompressionRatio: res.CompressionRatio,
			}
			if base == nil {
				// The codec-none baseline is, by definition, identical to
				// itself and is not expected to shrink.
				base = &leg
				leg.Identical = true
				leg.Shrinks = false
			} else {
				leg.Identical = leg.ValuesFNV == base.ValuesFNV &&
					leg.LogicalBytes == base.LogicalBytes &&
					leg.NetBytes == base.NetBytes &&
					leg.Eq7CioPush == base.Eq7CioPush &&
					leg.Eq8CioBpull == base.Eq8CioBpull
				leg.Shrinks = leg.PhysicalBytes < base.PhysicalBytes
				if !leg.Identical {
					art.AllIdentical = false
				}
				if !leg.Shrinks {
					art.AllShrink = false
				}
			}
			art.Legs = append(art.Legs, leg)
			tb.Rows = append(tb.Rows, []string{
				string(e), cn,
				fmtBytes(leg.LogicalBytes), fmtBytes(leg.PhysicalBytes),
				fmt.Sprintf("%.2fx", leg.CompressionRatio),
				fmt.Sprintf("%v", leg.Identical), fmt.Sprintf("%v", leg.Shrinks),
			})
		}
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	if !art.AllIdentical {
		return nil, fmt.Errorf("benchcodec: a codec changed the values or the logical statistics (see %s)", out)
	}
	if !art.AllShrink {
		return nil, fmt.Errorf("benchcodec: a codec failed to shrink physical bytes (see %s)", out)
	}
	return []*Table{tb}, nil
}
