package harness

import (
	"errors"
	"fmt"
	"time"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/core"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
)

// DiskChaos runs the seeded storage-fault campaign: deterministic disk
// faults (failed fsyncs, ENOSPC, torn writes, simulated power cuts)
// layered under the crash/stall schedules of the chaos campaign, over
// every loggable engine. The gate is the durability contract: every run
// either completes with final vertex values byte-identical to a
// fault-free run of the same configuration, or fails with a typed error
// matching diskio.ErrDiskFault — anything else (an untyped failure, or a
// completed run with diverged values) is an error, not a table row.
//
// Three fault legs per (engine, seed, policy) cell:
//
//   - syncfail: every fsync may fail. Checkpoint attempts are abandoned,
//     never trusted; the job must still complete byte-identical while
//     crashes and stalls force recovery from whatever did commit.
//   - writefault: seeded ENOSPC and torn writes on the data path. The
//     write that faults fails its superstep, so the job must surface a
//     typed error (or, if the stream spares it, finish identical).
//   - powercut: the machine loses power on a deterministic mutating op.
//     The job must fail, typed, and diskio.IsPowerCut must see it.
func DiskChaos(o Options) ([]*Table, error) {
	o = o.withDefaults()
	ds, err := graph.DatasetByName("livej")
	if err != nil {
		return nil, err
	}
	g := ds.GenerateCached(o.Scale)

	seeds := []int64{o.ChaosSeed, o.ChaosSeed + 1, o.ChaosSeed + 2}
	engines := []core.Engine{core.Push, core.BPull, core.Hybrid}
	policies := []string{"checkpoint", "confined"}
	if o.Quick {
		seeds = seeds[:2]
		engines = []core.Engine{core.Push, core.Hybrid}
		policies = []string{"checkpoint"}
	}
	if o.Recovery != "" {
		policies = []string{o.Recovery}
	}

	tb := &Table{ID: "diskchaos",
		Title: "Disk-fault chaos: seeded storage faults under crash+stall plans, values vs fault-free run",
		Header: []string{"seed", "engine", "policy", "leg", "crashes", "stalls",
			"disk-faults", "ckpt-abandoned", "restarts", "outcome"}}

	base := core.Config{Workers: o.Workers, MsgBuf: 64, MaxSteps: 8,
		Profile: o.Profile, CheckpointEvery: 2, Codec: o.Codec, TraceDir: o.TraceDir, Metrics: o.Metrics}

	identical, typed, faultsSeen := 0, 0, 0
	for _, e := range engines {
		clean, err := core.Run(g, algo.NewPageRank(0.85), base, e)
		if err != nil {
			return nil, err
		}
		for _, seed := range seeds {
			for _, policy := range policies {
				type leg struct {
					name string
					disk diskio.FaultConfig
					plan bool // layer the crash+stall schedule under the disk faults
				}
				legs := []leg{
					{"syncfail", diskio.FaultConfig{Seed: seed, SyncFail: 0.2}, true},
					{"writefault", diskio.FaultConfig{Seed: seed, WriteENOSPC: 2e-4, TornWrite: 2e-4}, false},
					{"powercut", diskio.FaultConfig{Seed: seed, PowerCutAfter: 40 + 20*seed}, false},
				}
				for _, l := range legs {
					cfg := base
					cfg.Recovery = policy
					plan := faultplan.NewPlan()
					if l.plan {
						plan = faultplan.NewPlan(faultplan.RandomCrashes(seed, 2, 6, o.Workers)...).
							WithStalls(faultplan.RandomStalls(seed+9973, 1, 6, o.Workers)...)
						cfg.BarrierDeadline = 100 * time.Millisecond
					}
					cfg.FaultPlan = plan.WithDisk(l.disk)

					res, err := core.Run(g, algo.NewPageRank(0.85), cfg, e)
					row := []string{fmt.Sprintf("%d", seed), string(e), policy, l.name,
						fmt.Sprintf("%d", len(plan.Crashes)), fmt.Sprintf("%d", len(plan.Stalls))}
					switch {
					case err == nil:
						if l.name == "powercut" {
							return nil, fmt.Errorf("disk chaos seed %d %s/%s: power cut at op %d never fired",
								seed, e, policy, l.disk.PowerCutAfter)
						}
						for v := range clean.Values {
							if res.Values[v] != clean.Values[v] {
								return nil, fmt.Errorf("disk chaos seed %d %s/%s/%s: vertex %d = %g, fault-free run has %g",
									seed, e, policy, l.name, v, res.Values[v], clean.Values[v])
							}
						}
						identical++
						faultsSeen += res.DiskFaults
						row = append(row, fmt.Sprintf("%d", res.DiskFaults),
							fmt.Sprintf("%d", res.CheckpointWriteFailures),
							fmt.Sprintf("%d", res.Restarts), "identical")
					case errors.Is(err, diskio.ErrDiskFault):
						if l.name == "powercut" && !diskio.IsPowerCut(err) {
							return nil, fmt.Errorf("disk chaos seed %d %s/%s: power-cut leg failed with a different fault: %v",
								seed, e, policy, err)
						}
						typed++
						faultsSeen++
						row = append(row, "-", "-", "-", "typed-fault")
					default:
						return nil, fmt.Errorf("disk chaos seed %d %s/%s/%s: untyped failure: %w",
							seed, e, policy, l.name, err)
					}
					tb.Rows = append(tb.Rows, row)
				}
			}
		}
	}
	// The campaign must exercise both halves of the contract, or the rates
	// are mistuned and the gate is vacuous.
	if identical == 0 {
		return nil, fmt.Errorf("disk chaos: no run completed; the byte-identity half never ran")
	}
	if typed == 0 {
		return nil, fmt.Errorf("disk chaos: no run failed typed; the fault path never ran")
	}
	if faultsSeen == 0 {
		return nil, fmt.Errorf("disk chaos: no disk fault was ever injected")
	}
	return []*Table{tb}, nil
}
