package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchCodecWritesArtifactAndHoldsContracts(t *testing.T) {
	o := quickOpts()
	o.Out = filepath.Join(t.TempDir(), "BENCH_pr9.json")

	tables, err := BenchCodec(o)
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode: 2 engines x 3 codecs.
	if len(tables) != 1 || len(tables[0].Rows) != 6 {
		t.Fatalf("benchcodec table shape: %d tables, %d rows (want 1 x 6)", len(tables), len(tables[0].Rows))
	}
	data, err := os.ReadFile(o.Out)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var art BenchCodecArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(art.Codecs) != 3 || len(art.Legs) != 6 {
		t.Fatalf("artifact has %d codecs, %d legs (want 3, 6)", len(art.Codecs), len(art.Legs))
	}
	if !art.AllIdentical || !art.AllShrink {
		t.Fatalf("contracts violated: identical=%v shrink=%v", art.AllIdentical, art.AllShrink)
	}
	for _, l := range art.Legs {
		if l.ValuesFNV == 0 || l.LogicalBytes <= 0 || l.PhysicalBytes <= 0 {
			t.Fatalf("%s/%s: identity fields not populated: %+v", l.Engine, l.Codec, l)
		}
		switch l.Codec {
		case "none":
			if l.CompressionRatio != 1.0 {
				t.Fatalf("%s/none: compression ratio %g, want exactly 1", l.Engine, l.CompressionRatio)
			}
		default:
			if !l.Identical || !l.Shrinks || l.CompressionRatio <= 1.0 {
				t.Fatalf("%s/%s: identical=%v shrinks=%v ratio=%g", l.Engine, l.Codec, l.Identical, l.Shrinks, l.CompressionRatio)
			}
		}
	}
}
