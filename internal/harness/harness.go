// Package harness regenerates every table and figure of the paper's
// evaluation (Section 6 and the appendices) on the synthetic stand-in
// datasets, printing the same rows and series the paper plots. Absolute
// numbers are simulated seconds under the Table 3 cost model; the shapes —
// which engine wins, by what factor, where the crossovers sit — are the
// reproduction target (see DESIGN.md and EXPERIMENTS.md).
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/core"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/metrics"
	"hybridgraph/internal/obs"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies every dataset's vertex count (default 0.25; tests
	// and benchmarks use less).
	Scale float64
	// Workers is the small-graph cluster size (default 5, as the paper).
	Workers int
	// LargeWorkers is the large-graph cluster size (default 10; the paper
	// used 30 physical nodes).
	LargeWorkers int
	// Profile is the hardware model (default HDD local cluster).
	Profile diskio.Profile
	// Parallelism is the per-worker compute parallelism every job runs
	// with (0 = core's NumCPU/Workers default). Results are identical at
	// any setting; only wall-clock changes.
	Parallelism int
	// Quick trims dataset lists and sweeps so the full suite runs in
	// seconds (used by `go test -bench` and CI).
	Quick bool
	// TraceDir, when set, exports one JSONL superstep trace journal per job
	// the experiments run, auto-named <algorithm>_<engine>_<seq>.jsonl (see
	// core.Config.TraceDir). Empty disables tracing.
	TraceDir string
	// Metrics, when non-nil, receives live counters from every job the
	// experiments run (see core.Config.Metrics).
	Metrics *obs.Registry
	// ChaosSeed is the base seed of the chaos campaign's deterministic
	// fault schedules (default 1); consecutive seeds derive from it.
	ChaosSeed int64
	// Recovery, when set, restricts the recovery-policy sweeps of the
	// chaos and recovery experiments to one policy ("scratch", "resume",
	// "checkpoint", "confined" or "reassign"). Empty runs each
	// experiment's full list.
	Recovery string
	// Codec names the block codec every disk-backed job runs with ("",
	// "none", "delta", "lz"). Results and every logical byte statistic are
	// identical whatever the codec; only physical bytes change. The chaos
	// and disk-chaos campaigns honour it, which is how CI runs their
	// compression legs.
	Codec string
	// Out overrides the benchmark experiments' JSON artifact path (bench,
	// benchpar, benchcodec each have their own default when empty).
	Out string
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.25
	}
	if o.Workers <= 0 {
		o.Workers = 5
	}
	if o.LargeWorkers <= 0 {
		o.LargeWorkers = 10
	}
	if o.Profile.SNet == 0 {
		o.Profile = diskio.HDDLocal
	}
	if o.ChaosSeed == 0 {
		o.ChaosSeed = 1
	}
	return o
}

// Table is one printable experiment result.
type Table struct {
	ID     string // e.g. "fig8a"
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the table as RFC-4180 CSV, one header row then data.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Experiment is one regenerable table/figure.
type Experiment struct {
	Name string // "fig2", "table5", ...
	What string
	Run  func(Options) ([]*Table, error)
}

// Experiments lists every regenerable artefact in paper order.
var Experiments = []Experiment{
	{"fig2", "Motivation: push runtime and %messages on disk vs buffer (wiki)", Fig2},
	{"table4", "Dataset inventory (synthetic stand-ins for Table 4)", Table4},
	{"fig7", "Runtime with sufficient memory (4 algorithms x 4 graphs x 5 engines)", Fig7},
	{"fig8", "Runtime with limited memory on the HDD cluster", Fig8},
	{"fig9", "Runtime with limited memory on the SSD cluster", Fig9},
	{"fig10", "I/O bytes with limited memory", Fig10},
	{"fig11", "Prediction accuracy of Mco (SSSP, SA)", Fig11},
	{"fig12", "Prediction accuracy of Cio(push) (SSSP, SA)", Fig12},
	{"fig13", "Prediction accuracy of Cio(b-pull) (SSSP, SA)", Fig13},
	{"fig14", "Hybrid per-superstep trace: Qt, I/O, network, memory (SSSP over twi)", Fig14},
	{"fig15", "Scalability: pushM vs hybrid, PageRank, varying workers", Fig15},
	{"fig16", "Graph loading cost: adj vs VE-BLOCK vs adj+VE-BLOCK", Fig16},
	{"fig17", "Blocking time per superstep: push vs pushM vs b-pull (PageRank)", Fig17},
	{"fig18", "Network traffic per superstep: push vs b-pull, combining off", Fig18},
	{"fig23", "Vblock count sweep over livej: memory and I/O", Fig23},
	{"fig24", "Vblock count sweep over wiki: memory and I/O", Fig24},
	{"fig25", "Vblock count sweep: runtime (livej, wiki)", Fig25},
	{"fig26", "Combining effectiveness vs sending threshold (PageRank over orkut)", Fig26},
	{"table5", "Modified-pull scenarios (original/ext-mem/ext-edge/v3/v2.5)", Table5},
	{"recovery", "Recovery cost by policy: scratch/resume/checkpoint/confined", RecoveryCost},
	{"chaos", "Chaos campaign: seeded crash+stall+transport faults, values must match fault-free", Chaos},
	{"reassignchaos", "Reassign chaos: seeded permanent crashes, partitions adopted by survivors, values must match fault-free", ReassignChaos},
	{"diskchaos", "Disk-fault chaos: seeded storage faults under crash+stall plans, identical or typed failure", DiskChaos},
	{"bench", "Machine-readable benchmark matrix, written to BENCH_pr4.json (runtime, Eq. 7/8 bytes, Qt)", Bench},
	{"benchpar", "Parallel-compute benchmark: Parallelism=1 vs NumCPU, written to BENCH_pr7.json (speedup, identity checks)", BenchPar},
	{"benchcodec", "Codec ablation: none vs delta vs lz, written to BENCH_pr9.json (logical/physical bytes, identity checks)", BenchCodec},
	{"benchingest", "Streaming ingest benchmark: edges/sec, spill bytes and peak heap at several memory budgets, written to BENCH_pr10.json", BenchIngest},
}

// ByName finds an experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// bufferRatio reproduces the paper's per-dataset message-buffer settings
// (B_i = 0.5M/1M/2M messages) as a fraction of each dataset's vertex
// count, so the spill pressure matches at our scales.
var bufferRatio = map[string]float64{
	"livej": 0.104, // 0.5M / 4.8M
	"wiki":  0.088, // 0.5M / 5.7M
	"orkut": 0.161, // 0.5M / 3.1M
	"twi":   0.024, // 1M / 41.7M
	"fri":   0.030, // 2M / 65.6M
	"uk":    0.019, // 2M / 105.9M
}

// steps per algorithm: the paper runs PageRank and LPA for 5 supersteps
// and reports per-superstep averages; SSSP and SA run to convergence.
func maxStepsFor(alg string) int {
	switch alg {
	case "pagerank", "lpa":
		return 5
	default:
		return 60
	}
}

func perStep(alg string) bool { return alg == "pagerank" || alg == "lpa" }

func (o Options) workersFor(ds string) int {
	for _, n := range graph.LargeDatasets() {
		if n == ds {
			return o.LargeWorkers
		}
	}
	return o.Workers
}

// limitedCfg builds the paper's limited-memory configuration for one
// dataset: graph and message data disk-resident, buffer scaled per
// bufferRatio, pull's vertex cache at the paper's ">70% of vertices
// resident" setting.
func (o Options) limitedCfg(ds graph.Dataset, g *graph.Graph, alg string) core.Config {
	t := o.workersFor(ds.Name)
	buf := int(bufferRatio[ds.Name] * float64(g.NumVertices))
	if buf < 16 {
		buf = 16
	}
	partition := (g.NumVertices + t - 1) / t
	return core.Config{
		Workers:     t,
		MsgBuf:      buf,
		MaxSteps:    maxStepsFor(alg),
		Profile:     o.Profile,
		Parallelism: o.Parallelism,
		VertexCache: int(0.7 * float64(partition)), // ">70% of vertices reside in memory"
		TraceDir:    o.TraceDir,
		Metrics:     o.Metrics,
	}
}

// sufficientCfg is the all-in-memory configuration of Fig. 7.
func (o Options) sufficientCfg(ds graph.Dataset, alg string) core.Config {
	return core.Config{
		Workers:     o.workersFor(ds.Name),
		InMemory:    true,
		MaxSteps:    maxStepsFor(alg),
		Profile:     o.Profile,
		Parallelism: o.Parallelism,
		TraceDir:    o.TraceDir,
		Metrics:     o.Metrics,
	}
}

func (o Options) datasets(all bool) []graph.Dataset {
	names := graph.SmallDatasets()
	if all {
		names = append(names, graph.LargeDatasets()...)
	} else {
		names = append(names, "twi")
	}
	if o.Quick {
		names = []string{"livej", "wiki"}
	}
	out := make([]graph.Dataset, 0, len(names))
	for _, n := range names {
		d, err := graph.DatasetByName(n)
		if err == nil {
			out = append(out, d)
		}
	}
	return out
}

func (o Options) algorithms() []algo.Program {
	return []algo.Program{
		algo.NewPageRank(0.85),
		algo.NewSSSP(0),
		algo.NewLPA(),
		algo.NewSA(64, 16, 55),
	}
}

func enginesFor(prog algo.Program, withPull bool) []core.Engine {
	es := []core.Engine{core.Push}
	if prog.Combiner() != nil {
		es = append(es, core.PushM)
	}
	if withPull {
		es = append(es, core.Pull)
	}
	return append(es, core.BPull, core.Hybrid)
}

func fmtSeconds(s float64) string { return fmt.Sprintf("%.4f", s) }

func fmtBytes(b int64) string { return fmt.Sprintf("%d", b) }

// runtimeOf reports the figure's runtime metric: per-superstep average for
// constant-workload algorithms, total otherwise.
func runtimeOf(r *metrics.JobResult, alg string) float64 {
	if perStep(alg) && len(r.Steps) > 0 {
		return r.SimSeconds / float64(len(r.Steps))
	}
	return r.SimSeconds
}
