package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"hybridgraph/internal/graph"
)

// fuzzParse runs parseStream over data and enforces the package's error
// contract: every failure is typed ErrFormat (sink errors are impossible
// here — the emit never fails), and nothing panics.
func fuzzParse(t *testing.T, data []byte) (int, int64, bool) {
	var edges int64
	n, parsed, err := parseStream(bytes.NewReader(data), func(src, dst uint32, w float32) error {
		edges++
		return nil
	})
	if err != nil {
		if !errors.Is(err, ErrFormat) {
			t.Fatalf("untyped parse error: %v", err)
		}
		return 0, 0, false
	}
	if parsed != edges {
		t.Fatalf("parsed = %d but emit saw %d", parsed, edges)
	}
	return n, parsed, true
}

// FuzzTextParser is differential against graph.ReadEdgeList: wherever
// the original in-memory reader accepts an input, the streaming parser
// must accept it with the same vertex count — and where it rejects, the
// streaming parser must reject with the typed ErrFormat, never a panic.
func FuzzTextParser(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# vertices 10\n0 1 2.5\n")
	f.Add("5 6\n# vertices 3\n0 1\n")
	f.Add("0\t1\t0.5\n# comment\n\n2 0\n")
	f.Add("x y z\n")
	f.Add("0 1 1e309\n")
	f.Add("18446744073709551616 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		// Keep the corpus in text-parser territory: a gzip or binary
		// magic prefix would route elsewhere and void the differential.
		if len(input) >= 2 && input[0] == 0x1f && input[1] == 0x8b {
			return
		}
		if strings.HasPrefix(input, BinaryMagic) {
			return
		}
		n, _, ok := fuzzParse(t, []byte(input))
		g, gerr := graph.ReadEdgeList(strings.NewReader(input))
		if !ok {
			if gerr == nil {
				t.Fatalf("streaming parser rejected input ReadEdgeList accepts: %q", input)
			}
			return
		}
		// parseStream defers the empty-graph rejection to the builder;
		// ReadEdgeList folds it into the read.
		if n == 0 {
			return
		}
		if gerr != nil {
			t.Fatalf("ReadEdgeList rejected input the streaming parser accepts (%v): %q", gerr, input)
		}
		if g.NumVertices != n {
			t.Fatalf("vertex count: streaming %d, ReadEdgeList %d for %q", n, g.NumVertices, input)
		}
	})
}

// FuzzBinaryParser throws arbitrary bodies behind the HGE1 magic: whole
// 8-byte records must parse exactly, any trailing partial record must be
// the typed truncation error, and nothing panics.
func FuzzBinaryParser(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0})
	f.Fuzz(func(t *testing.T, body []byte) {
		data := append([]byte(BinaryMagic), body...)
		n, parsed, ok := fuzzParse(t, data)
		if len(body)%8 == 0 {
			if !ok {
				t.Fatalf("aligned binary body of %d bytes rejected", len(body))
			}
			if parsed != int64(len(body)/8) {
				t.Fatalf("parsed %d records from %d bytes", parsed, len(body))
			}
			want := 0
			for off := 0; off+8 <= len(body); off += 8 {
				if v := int(binary.LittleEndian.Uint32(body[off:])) + 1; v > want {
					want = v
				}
				if v := int(binary.LittleEndian.Uint32(body[off+4:])) + 1; v > want {
					want = v
				}
			}
			if n != want {
				t.Fatalf("n = %d, want %d", n, want)
			}
		} else if ok {
			t.Fatalf("misaligned binary body of %d bytes accepted", len(body))
		}
	})
}

// FuzzSniff feeds raw bytes straight at the format sniffer — gzip
// headers with garbage deflate streams, truncated members, magic-byte
// prefixes of every kind. The only allowed outcomes are success or the
// typed ErrFormat.
func FuzzSniff(f *testing.F) {
	f.Add([]byte{0x1f, 0x8b})
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03})
	f.Add([]byte(BinaryMagic))
	f.Add([]byte("0 1\n"))
	f.Add([]byte{0x1f})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzParse(t, data)
	})
}
