package ingest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"
	"path/filepath"
	"strconv"

	"hybridgraph/internal/codec"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/veblock"
)

var le = binary.LittleEndian

// SpillDirName is the hidden scratch directory the builder keeps inside
// the staging dir. It is removed before the build returns, so the
// catalog's checksum walk never sees it.
const SpillDirName = ".spill"

// Options configures one streaming build into a staging directory.
type Options struct {
	// Dir is the staging directory the entry files are written into
	// (graph.el plus w<i>/adj.dat and w<i>/veblock.dat per worker).
	Dir string
	// Workers is the partition count the stores are built for.
	Workers int
	// BlocksPer is each worker's Vblock count (min 1).
	BlocksPer int
	// Codec frames the store files and the spill runs (nil = raw).
	Codec codec.Codec
	// MemBudget bounds the builder's working memory in bytes: run
	// buffers, merge fan-in and frame staging are all derived from it.
	// <= 0 means unlimited — everything sorts in memory, nothing spills.
	MemBudget int64
	// LayoutCT receives the adjacency/VE-BLOCK write charges — the
	// manifest's IngestWriteBytes, identical whatever the budget.
	LayoutCT *diskio.Counter
	// SpillCT receives the external sort's scratch I/O: sequential
	// logical writes and reads of the raw record stream, with physical
	// frame bytes on its phys twin (attached if absent).
	SpillCT *diskio.Counter
}

// Stats reports what one build did. Vertices and Edges describe the
// resulting entry; the rest describe the external sort's effort.
type Stats struct {
	Vertices    int   `json:"vertices"`
	Edges       int64 `json:"edges"`
	ParsedEdges int64 `json:"parsed_edges"`
	SelfLoops   int64 `json:"self_loops"`
	OutOfRange  int64 `json:"out_of_range"`
	// Runs counts the sorted runs spilled to disk (both sort phases);
	// 0 means the build fit in memory. MergeGenerations counts merge
	// rounds over the data (intermediate cascades plus the final merge,
	// maximum of the two phases).
	Runs             int `json:"runs"`
	MergeGenerations int `json:"merge_generations"`
	// Spill bytes: logical (raw record stream) and physical (codec
	// frames actually hitting the disk), split by direction.
	SpillWriteBytes     int64 `json:"spill_write_bytes"`
	SpillReadBytes      int64 `json:"spill_read_bytes"`
	SpillPhysWriteBytes int64 `json:"spill_phys_write_bytes"`
	SpillPhysReadBytes  int64 `json:"spill_phys_read_bytes"`
	// MaxDegree and DegreeHist summarise the out-degree distribution
	// seen during the merge pass (DegreeHist[k] counts vertices with
	// out-degree in [2^(k-1), 2^k); bucket 0 is isolated vertices).
	// The histogram is what sizes the range partitioner's input: it is
	// computed in O(1) memory from the sorted stream's run lengths.
	MaxDegree  int       `json:"max_degree"`
	DegreeHist [33]int64 `json:"degree_hist"`
}

// BuildFromStream sniffs and parses r (text, binary, gzip-wrapped) and
// builds the full entry layout under o.Dir within o.MemBudget.
func BuildFromStream(o Options, r io.Reader) (*Stats, error) {
	b, err := newBuilder(o)
	if err != nil {
		return nil, err
	}
	defer b.cleanup()
	n, parsed, err := parseStream(r, b.add)
	if err != nil {
		return nil, err
	}
	b.stats.ParsedEdges = parsed
	return b.finish(n)
}

// BuildFromGraph builds the same entry layout from an in-memory graph —
// the catalog's legacy ingest path, routed through the identical
// pipeline so both paths produce bit-identical files.
func BuildFromGraph(o Options, g *graph.Graph) (*Stats, error) {
	b, err := newBuilder(o)
	if err != nil {
		return nil, err
	}
	defer b.cleanup()
	for v := 0; v < g.NumVertices; v++ {
		for _, h := range g.OutEdges(graph.VertexID(v)) {
			if err := b.add(uint32(v), uint32(h.Dst), h.Weight); err != nil {
				return nil, err
			}
		}
	}
	b.stats.ParsedEdges = int64(g.NumEdges())
	return b.finish(g.NumVertices)
}

type builder struct {
	o        Options
	spillDir string
	sa       *sorter // phase A: (src, dst, weight) order
	stats    Stats
}

func newBuilder(o Options) (*builder, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("ingest: staging directory is required")
	}
	if o.Workers <= 0 {
		return nil, fmt.Errorf("ingest: %d workers", o.Workers)
	}
	if o.BlocksPer <= 0 {
		o.BlocksPer = 1
	}
	if o.Codec == nil {
		o.Codec = codec.None
	}
	if o.LayoutCT == nil {
		o.LayoutCT = &diskio.Counter{}
	}
	if o.SpillCT == nil {
		o.SpillCT = &diskio.Counter{}
	}
	if o.SpillCT.Phys() == nil {
		o.SpillCT.SetPhys(&diskio.Counter{})
	}
	spillDir := filepath.Join(o.Dir, SpillDirName)
	if err := os.MkdirAll(spillDir, 0o755); err != nil {
		return nil, err
	}
	return &builder{
		o:        o,
		spillDir: spillDir,
		sa:       newSorter(spillDir, "a", o.SpillCT, o.Codec, o.MemBudget),
	}, nil
}

// add accepts one parsed edge. Self-loops are dropped here (matching
// graph.Builder's cleaning); out-of-range drops must wait for the final
// vertex count and happen during the merge.
func (b *builder) add(src, dst uint32, w float32) error {
	if src == dst {
		b.stats.SelfLoops++
		return nil
	}
	return b.sa.add(rec{0, 0, src, dst, math.Float32bits(w)})
}

func (b *builder) cleanup() {
	os.RemoveAll(b.spillDir)
}

// finish runs the two merge phases: phase A streams the (src, dst,
// weight)-sorted edges into graph.el, the per-worker adjacency files
// and the degree histogram while refeeding a second sorter in VE-BLOCK
// key order; phase B streams that order into the per-worker Eblock
// files. n is the final vertex count.
func (b *builder) finish(n int) (*Stats, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: empty input (no vertices)", ErrFormat)
	}
	if b.o.Workers > n {
		return nil, fmt.Errorf("ingest: %d workers for %d vertices", b.o.Workers, n)
	}
	b.stats.Vertices = n
	parts := graph.RangePartition(n, b.o.Workers)
	blocksPer := make([]int, b.o.Workers)
	for i := range blocksPer {
		blocksPer[i] = b.o.BlocksPer
	}
	layout, err := veblock.NewLayout(parts, blocksPer)
	if err != nil {
		return nil, err
	}
	sb := newSorter(b.spillDir, "b", b.o.SpillCT, b.o.Codec, b.o.MemBudget)
	if err := b.mergeA(n, parts, layout, sb); err != nil {
		return nil, err
	}
	if err := b.mergeB(layout, sb); err != nil {
		return nil, err
	}
	b.stats.Runs = b.sa.spilled + sb.spilled
	b.stats.MergeGenerations = b.sa.gens
	if sb.gens > b.stats.MergeGenerations {
		b.stats.MergeGenerations = sb.gens
	}
	b.stats.SpillWriteBytes = b.o.SpillCT.Bytes(diskio.SeqWrite)
	b.stats.SpillReadBytes = b.o.SpillCT.Bytes(diskio.SeqRead)
	if p := b.o.SpillCT.Phys(); p != nil {
		b.stats.SpillPhysWriteBytes = p.Bytes(diskio.SeqWrite)
		b.stats.SpillPhysReadBytes = p.Bytes(diskio.SeqRead)
	}
	return &b.stats, nil
}

// mergeA drains the phase-A sort: one pass over the globally sorted
// edge stream writes graph.el and each worker's adj.dat shard by shard,
// folds the out-degree histogram from run lengths, and feeds the
// phase-B sorter with VE-BLOCK keys.
func (b *builder) mergeA(n int, parts []graph.Partition, layout *veblock.Layout, sb *sorter) error {
	it, err := b.sa.finish()
	if err != nil {
		return err
	}
	defer it.close()

	elF, err := os.Create(filepath.Join(b.o.Dir, "graph.el"))
	if err != nil {
		return err
	}
	defer elF.Close()
	elW := bufio.NewWriterSize(elF, 1<<16)
	if _, err := fmt.Fprintf(elW, "# vertices %d\n", n); err != nil {
		return err
	}

	openAdj := func(w int) (storeWriter, error) {
		wdir := filepath.Join(b.o.Dir, fmt.Sprintf("w%d", w))
		if err := os.MkdirAll(wdir, 0o755); err != nil {
			return nil, err
		}
		return newStoreWriter(filepath.Join(wdir, "adj.dat"), b.o.LayoutCT, b.o.Codec)
	}
	cur := 0
	aw, err := openAdj(0)
	if err != nil {
		return err
	}
	closeAll := func() error {
		// Close the open shard and create the remaining workers' files
		// (possibly empty — a worker owning only isolated vertices still
		// gets its adj.dat, exactly as the per-worker builders would).
		if err := aw.Close(); err != nil {
			return err
		}
		for cur++; cur < b.o.Workers; cur++ {
			w, err := openAdj(cur)
			if err != nil {
				return err
			}
			if err := w.Close(); err != nil {
				return err
			}
		}
		return nil
	}

	var line []byte
	var eb [8]byte
	var lastSrc uint32
	runLen := 0
	var distinct int64
	bumpHist := func() {
		if runLen == 0 {
			return
		}
		b.stats.DegreeHist[bits.Len(uint(runLen))]++
		if runLen > b.stats.MaxDegree {
			b.stats.MaxDegree = runLen
		}
		distinct++
		runLen = 0
	}
	for {
		r, ok, err := it.next()
		if err != nil {
			aw.Close()
			return err
		}
		if !ok {
			break
		}
		if int(r.src) >= n || int(r.dst) >= n {
			b.stats.OutOfRange++
			continue
		}
		// graph.el line, identical to WriteEdgeList's "%d %d %g\n".
		line = strconv.AppendUint(line[:0], uint64(r.src), 10)
		line = append(line, ' ')
		line = strconv.AppendUint(line, uint64(r.dst), 10)
		line = append(line, ' ')
		line = strconv.AppendFloat(line, float64(math.Float32frombits(r.w)), 'g', -1, 32)
		line = append(line, '\n')
		if _, err := elW.Write(line); err != nil {
			aw.Close()
			return err
		}
		// Advance to the owning worker's shard (src ascends, so shards
		// complete in order).
		for graph.VertexID(r.src) >= parts[cur].Hi {
			if err := aw.Close(); err != nil {
				return err
			}
			cur++
			if aw, err = openAdj(cur); err != nil {
				return err
			}
		}
		le.PutUint32(eb[0:], r.dst)
		le.PutUint32(eb[4:], r.w)
		if _, err := aw.Write(eb[:]); err != nil {
			aw.Close()
			return err
		}
		if b.stats.Edges == 0 || r.src != lastSrc {
			bumpHist()
			lastSrc = r.src
		}
		runLen++
		jb := layout.BlockOf(graph.VertexID(r.src))
		ib := layout.BlockOf(graph.VertexID(r.dst))
		if err := sb.add(rec{uint32(jb), uint32(ib), r.src, r.dst, r.w}); err != nil {
			aw.Close()
			return err
		}
		b.stats.Edges++
	}
	bumpHist()
	b.stats.DegreeHist[0] += int64(n) - distinct
	if err := closeAll(); err != nil {
		return err
	}
	if err := elW.Flush(); err != nil {
		return err
	}
	return elF.Close()
}

// mergeB drains the phase-B sort: the (srcBlock, dstBlock, src, dst,
// weight) order is exactly the VE-BLOCK file layout, so one pass writes
// each worker's veblock.dat — fragments of same-source edges prefixed
// by their (svertex, count) auxiliary record, Eblocks in destination-
// block order, local blocks ascending.
func (b *builder) mergeB(layout *veblock.Layout, sb *sorter) error {
	it, err := sb.finish()
	if err != nil {
		return err
	}
	defer it.close()

	openVE := func(w int) (storeWriter, error) {
		return newStoreWriter(filepath.Join(b.o.Dir, fmt.Sprintf("w%d", w), "veblock.dat"),
			b.o.LayoutCT, b.o.Codec)
	}
	cur := 0
	vw, err := openVE(0)
	if err != nil {
		return err
	}
	// One fragment is buffered at a time: its (svertex, count) auxiliary
	// record precedes the edges, and the count is only known when the
	// (srcBlock, dstBlock, src) key changes. The buffer is bounded by
	// the largest single-vertex edge run into one block, not the budget.
	var frag []byte
	var fragKey [3]uint32
	fragCount := 0
	flushFrag := func() error {
		if fragCount == 0 {
			return nil
		}
		var aux [veblock.FragAuxSize]byte
		le.PutUint32(aux[0:], fragKey[2])
		le.PutUint32(aux[4:], uint32(fragCount))
		if _, err := vw.Write(aux[:]); err != nil {
			return err
		}
		if _, err := vw.Write(frag); err != nil {
			return err
		}
		frag = frag[:0]
		fragCount = 0
		return nil
	}
	var eb [8]byte
	for {
		r, ok, err := it.next()
		if err != nil {
			vw.Close()
			return err
		}
		if !ok {
			break
		}
		key := [3]uint32{r.a, r.b, r.src}
		if fragCount > 0 && key != fragKey {
			if err := flushFrag(); err != nil {
				vw.Close()
				return err
			}
		}
		// The fragment was flushed to its own block's worker; only now
		// may the shard advance.
		for w := layout.OwnerOfBlock(int(r.a)); w > cur; {
			if err := vw.Close(); err != nil {
				return err
			}
			cur++
			if vw, err = openVE(cur); err != nil {
				return err
			}
		}
		fragKey = key
		le.PutUint32(eb[0:], r.dst)
		le.PutUint32(eb[4:], r.w)
		frag = append(frag, eb[:]...)
		fragCount++
	}
	if err := flushFrag(); err != nil {
		vw.Close()
		return err
	}
	if err := vw.Close(); err != nil {
		return err
	}
	for cur++; cur < b.o.Workers; cur++ {
		w, err := openVE(cur)
		if err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// storeWriter is the streaming store sink: a raw accounted file or a
// codec BlockWriter, both charged as one sequential logical write.
type storeWriter interface {
	io.Writer
	Close() error
}

func newStoreWriter(path string, ct *diskio.Counter, cdc codec.Codec) (storeWriter, error) {
	if !codec.IsNone(cdc) {
		return codec.NewBlockWriter(path, ct, cdc)
	}
	f, err := diskio.Create(path, ct)
	if err != nil {
		return nil, err
	}
	return &rawStoreWriter{f: f, buf: make([]byte, 0, 32<<10)}, nil
}

type rawStoreWriter struct {
	f   *diskio.File
	buf []byte
	off int64
}

func (w *rawStoreWriter) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		take := cap(w.buf) - len(w.buf)
		if take > len(p) {
			take = len(p)
		}
		w.buf = append(w.buf, p[:take]...)
		p = p[take:]
		if len(w.buf) == cap(w.buf) {
			if err := w.flush(); err != nil {
				return n - len(p), err
			}
		}
	}
	return n, nil
}

func (w *rawStoreWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.f.WriteAtClass(w.buf, w.off, diskio.SeqWrite); err != nil {
		return err
	}
	w.off += int64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

func (w *rawStoreWriter) Close() error {
	err := w.flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
