package ingest

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hybridgraph/internal/codec"
	"hybridgraph/internal/diskio"
)

// rec is the 20-byte spill record, one per edge, carrying the sort key
// as its leading fields. Phase A (edge order) leaves a and b zero, so
// the key degenerates to (src, dst, weight bits); phase B (VE-BLOCK
// order) sets a to the source's Vblock and b to the destination's, so
// the same comparator yields the Eblock layout order. The weight rides
// as its IEEE-754 bit pattern: total, deterministic ordering with no
// NaN pitfalls, and bit-exact round-tripping.
type rec struct {
	a, b, src, dst, w uint32
}

const recSize = 20

// spillFrameRecs keeps each spill frame at ~32 KiB logical: big enough
// for the codecs to pay, small enough that a merge holds fanIn decoded
// frames without denting the budget.
const spillFrameRecs = (32 << 10) / recSize

func recLess(x, y rec) bool {
	switch {
	case x.a != y.a:
		return x.a < y.a
	case x.b != y.b:
		return x.b < y.b
	case x.src != y.src:
		return x.src < y.src
	case x.dst != y.dst:
		return x.dst < y.dst
	default:
		return x.w < y.w
	}
}

func appendRec(dst []byte, r rec) []byte {
	var b [recSize]byte
	le.PutUint32(b[0:], r.a)
	le.PutUint32(b[4:], r.b)
	le.PutUint32(b[8:], r.src)
	le.PutUint32(b[12:], r.dst)
	le.PutUint32(b[16:], r.w)
	return append(dst, b[:]...)
}

func decodeRec(b []byte) rec {
	return rec{
		a: le.Uint32(b[0:]), b: le.Uint32(b[4:]),
		src: le.Uint32(b[8:]), dst: le.Uint32(b[12:]), w: le.Uint32(b[16:]),
	}
}

// sortBudget derives the run capacity (records) and merge fan-in from
// the memory budget. The run buffer takes ~1/5 of the budget — two
// sorters overlap during the adjacency merge (phase A draining, phase B
// filling), and the GC roughly doubles live bytes at peak — and the
// fan-in is sized so fanIn decoded spill frames stay well under the
// rest. budget <= 0 means unlimited: everything sorts in memory and no
// run ever spills.
func sortBudget(budget int64) (capRecs, fanIn int) {
	if budget <= 0 {
		return 0, 64
	}
	capRecs = int(budget / (5 * recSize))
	if capRecs < 256 {
		capRecs = 256
	}
	fanIn = int(budget >> 19) // budget / 512 KiB
	if fanIn < 2 {
		fanIn = 2
	}
	if fanIn > 64 {
		fanIn = 64
	}
	return capRecs, fanIn
}

// sorter is one external-sort instance: records accumulate in buf up to
// capRecs, full runs spill sorted and codec-framed, and finish merges
// everything back into one globally sorted stream, cascading through
// merge generations whenever the live run count exceeds the fan-in.
type sorter struct {
	dir     string
	prefix  string
	ct      *diskio.Counter
	cdc     codec.Codec
	capRecs int
	fanIn   int

	buf     []rec
	runs    []string
	seq     int
	spilled int // initial sorted runs written to disk
	gens    int // merge rounds performed (intermediate + final)
	payload []byte
	frame   []byte
}

func newSorter(dir, prefix string, ct *diskio.Counter, cdc codec.Codec, budget int64) *sorter {
	capRecs, fanIn := sortBudget(budget)
	s := &sorter{dir: dir, prefix: prefix, ct: ct, cdc: cdc, capRecs: capRecs, fanIn: fanIn}
	if capRecs > 0 {
		s.buf = make([]rec, 0, capRecs)
	}
	return s
}

func (s *sorter) add(r rec) error {
	s.buf = append(s.buf, r)
	if s.capRecs > 0 && len(s.buf) >= s.capRecs {
		return s.spill()
	}
	return nil
}

// spill sorts the current run and writes it as one codec-framed file.
func (s *sorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	sortRecs(s.buf)
	path, err := s.writeRun(s.buf)
	if err != nil {
		return err
	}
	s.runs = append(s.runs, path)
	s.spilled++
	s.buf = s.buf[:0]
	return nil
}

func sortRecs(recs []rec) {
	sort.Slice(recs, func(i, j int) bool { return recLess(recs[i], recs[j]) })
}

// writeRun writes recs (already sorted) as a run file: a sequence of
// codec frames of spillFrameRecs records each. Physical frame bytes
// land on the spill counter's physical twin; the logical charge is the
// raw record stream, written sequentially — the paper's accounting
// discipline, applied to ingest scratch I/O.
func (s *sorter) writeRun(recs []rec) (string, error) {
	path := filepath.Join(s.dir, fmt.Sprintf("%s-%06d.run", s.prefix, s.seq))
	s.seq++
	f, err := diskio.Create(path, diskio.PhysFor(s.ct))
	if err != nil {
		return "", err
	}
	var physOff, logical int64
	for off := 0; off < len(recs); off += spillFrameRecs {
		end := off + spillFrameRecs
		if end > len(recs) {
			end = len(recs)
		}
		s.payload = s.payload[:0]
		for _, r := range recs[off:end] {
			s.payload = appendRec(s.payload, r)
		}
		s.frame = codec.AppendFrame(s.frame[:0], s.cdc, s.payload)
		if _, err := f.WriteAtClass(s.frame, physOff, diskio.SeqWrite); err != nil {
			f.Close()
			return "", err
		}
		physOff += int64(len(s.frame))
		logical += int64(len(s.payload))
	}
	diskio.NewAccountant(s.ct).WriteAtClass(logical, 0, diskio.SeqWrite)
	return path, f.Close()
}

// finish sorts the in-memory tail and returns the globally sorted
// iterator. With spilled runs it first cascades merge generations until
// at most fanIn runs remain, then merges those (plus the tail) live.
func (s *sorter) finish() (*mergeIter, error) {
	sortRecs(s.buf)
	for len(s.runs) > s.fanIn {
		var next []string
		for i := 0; i < len(s.runs); i += s.fanIn {
			j := i + s.fanIn
			if j > len(s.runs) {
				j = len(s.runs)
			}
			if j-i == 1 {
				next = append(next, s.runs[i])
				continue
			}
			merged, err := s.mergeToFile(s.runs[i:j])
			if err != nil {
				return nil, err
			}
			next = append(next, merged)
		}
		s.runs = next
		s.gens++
	}
	if len(s.runs) > 0 {
		s.gens++
	}
	return s.newMergeIter(s.runs, s.buf)
}

// mergeToFile merges the given runs into one new run file and removes
// the inputs.
func (s *sorter) mergeToFile(runs []string) (string, error) {
	it, err := s.newMergeIter(runs, nil)
	if err != nil {
		return "", err
	}
	path := filepath.Join(s.dir, fmt.Sprintf("%s-%06d.run", s.prefix, s.seq))
	s.seq++
	f, err := diskio.Create(path, diskio.PhysFor(s.ct))
	if err != nil {
		it.close()
		return "", err
	}
	var physOff, logical int64
	count := 0
	s.payload = s.payload[:0]
	flush := func() error {
		if len(s.payload) == 0 {
			return nil
		}
		s.frame = codec.AppendFrame(s.frame[:0], s.cdc, s.payload)
		if _, err := f.WriteAtClass(s.frame, physOff, diskio.SeqWrite); err != nil {
			return err
		}
		physOff += int64(len(s.frame))
		logical += int64(len(s.payload))
		s.payload = s.payload[:0]
		return nil
	}
	for {
		r, ok, err := it.next()
		if err != nil {
			it.close()
			f.Close()
			return "", err
		}
		if !ok {
			break
		}
		s.payload = appendRec(s.payload, r)
		count++
		if count%spillFrameRecs == 0 {
			if err := flush(); err != nil {
				it.close()
				f.Close()
				return "", err
			}
		}
	}
	if err := flush(); err != nil {
		f.Close()
		return "", err
	}
	diskio.NewAccountant(s.ct).WriteAtClass(logical, 0, diskio.SeqWrite)
	if err := f.Close(); err != nil {
		return "", err
	}
	for _, r := range runs {
		if err := os.Remove(r); err != nil {
			return "", err
		}
	}
	return path, nil
}

// runReader streams one run file frame by frame, holding a single
// decoded frame (~32 KiB) in memory.
type runReader struct {
	f       *diskio.File
	acct    *diskio.Accountant
	path    string
	physOff int64
	logOff  int64
	size    int64
	head    []byte
	raw     []byte
	payload []byte
	recs    []rec
	i       int
}

func openRun(path string, ct *diskio.Counter) (*runReader, error) {
	f, err := diskio.OpenRead(path, diskio.PhysFor(ct))
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &runReader{f: f, acct: diskio.NewAccountant(ct), path: path, size: size,
		head: make([]byte, codec.HeaderSize)}, nil
}

// next returns the next record, or ok=false at end of run. Frame
// corruption — a flipped bit on a spill read — surfaces as
// codec.ErrCorrupt through DecodeFrame's CRC.
func (r *runReader) next() (rec, bool, error) {
	if r.i >= len(r.recs) {
		if r.physOff >= r.size {
			return rec{}, false, nil
		}
		if _, err := r.f.ReadAtClass(r.head, r.physOff, diskio.SeqRead); err != nil {
			return rec{}, false, fmt.Errorf("ingest: spill %s: %w", r.path, err)
		}
		h, err := codec.ParseHeader(r.head)
		if err != nil {
			return rec{}, false, fmt.Errorf("ingest: spill %s: %w", r.path, err)
		}
		n := h.FrameLen()
		if cap(r.raw) < n {
			r.raw = make([]byte, n)
		}
		r.raw = r.raw[:n]
		if _, err := r.f.ReadAtClass(r.raw, r.physOff, diskio.SeqRead); err != nil {
			return rec{}, false, fmt.Errorf("ingest: spill %s: %w", r.path, err)
		}
		// The header was read twice (once to size the frame, once as the
		// frame's prefix); a transient fault on either read shows up as a
		// disagreement the frame CRC alone cannot see.
		if !bytes.Equal(r.head, r.raw[:codec.HeaderSize]) {
			return rec{}, false, fmt.Errorf("%w: spill %s: header re-read mismatch", codec.ErrCorrupt, r.path)
		}
		r.payload, _, err = codec.DecodeFrame(r.payload[:0], r.raw)
		if err != nil {
			return rec{}, false, fmt.Errorf("ingest: spill %s: %w", r.path, err)
		}
		if len(r.payload)%recSize != 0 {
			return rec{}, false, fmt.Errorf("%w: spill %s frame of %d bytes not record-aligned",
				codec.ErrCorrupt, r.path, len(r.payload))
		}
		r.recs = r.recs[:0]
		for off := 0; off < len(r.payload); off += recSize {
			r.recs = append(r.recs, decodeRec(r.payload[off:]))
		}
		r.acct.ReadAtClass(int64(len(r.payload)), r.logOff, diskio.SeqRead)
		r.physOff += int64(n)
		r.logOff += int64(len(r.payload))
		r.i = 0
	}
	out := r.recs[r.i]
	r.i++
	return out, true, nil
}

func (r *runReader) close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// mergeIter is the k-way merge: a binary min-heap over run readers plus
// the sorter's in-memory tail, ordered by the record comparator with
// the source index as tie-break (ties are bit-identical records, so the
// break only stabilises the heap, never the output).
type mergeIter struct {
	readers []*runReader
	mem     []rec
	memI    int
	heap    []mergeHead
}

// mergeHead is one heap entry: the next record of source idx. Index
// len(readers) is the in-memory tail.
type mergeHead struct {
	r   rec
	idx int
}

func (s *sorter) newMergeIter(runs []string, mem []rec) (*mergeIter, error) {
	m := &mergeIter{mem: mem}
	for _, path := range runs {
		rr, err := openRun(path, s.ct)
		if err != nil {
			m.close()
			return nil, err
		}
		m.readers = append(m.readers, rr)
	}
	for i, rr := range m.readers {
		r, ok, err := rr.next()
		if err != nil {
			m.close()
			return nil, err
		}
		if ok {
			m.push(mergeHead{r, i})
		}
	}
	if len(m.mem) > 0 {
		m.push(mergeHead{m.mem[0], len(m.readers)})
		m.memI = 1
	}
	return m, nil
}

func headLess(x, y mergeHead) bool {
	if recLess(x.r, y.r) {
		return true
	}
	if recLess(y.r, x.r) {
		return false
	}
	return x.idx < y.idx
}

func (m *mergeIter) push(h mergeHead) {
	m.heap = append(m.heap, h)
	i := len(m.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !headLess(m.heap[i], m.heap[p]) {
			break
		}
		m.heap[i], m.heap[p] = m.heap[p], m.heap[i]
		i = p
	}
}

func (m *mergeIter) popReplace(h mergeHead, replace bool) mergeHead {
	top := m.heap[0]
	if replace {
		m.heap[0] = h
	} else {
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
	}
	// Sift down.
	i := 0
	n := len(m.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && headLess(m.heap[l], m.heap[min]) {
			min = l
		}
		if r < n && headLess(m.heap[r], m.heap[min]) {
			min = r
		}
		if min == i {
			break
		}
		m.heap[i], m.heap[min] = m.heap[min], m.heap[i]
		i = min
	}
	return top
}

// next returns the globally next record, refilling from whichever
// source produced it.
func (m *mergeIter) next() (rec, bool, error) {
	if len(m.heap) == 0 {
		return rec{}, false, nil
	}
	top := m.heap[0]
	if top.idx == len(m.readers) {
		if m.memI < len(m.mem) {
			m.popReplace(mergeHead{m.mem[m.memI], top.idx}, true)
			m.memI++
		} else {
			m.popReplace(mergeHead{}, false)
		}
		return top.r, true, nil
	}
	r, ok, err := m.readers[top.idx].next()
	if err != nil {
		return rec{}, false, err
	}
	if ok {
		m.popReplace(mergeHead{r, top.idx}, true)
	} else {
		m.popReplace(mergeHead{}, false)
	}
	return top.r, true, nil
}

// close releases every reader (idempotent; run files are removed with
// the spill directory by the builder).
func (m *mergeIter) close() {
	for _, rr := range m.readers {
		rr.close()
	}
}
