// Package ingest is the bounded-memory streaming importer: it turns an
// arbitrary-size edge-list stream — whitespace/tab text, a binary
// u32-pair format, or either wrapped in gzip, sniffed by magic bytes —
// into the catalog's on-disk entry layout (graph.el, per-worker
// adjacency runs and VE-BLOCK files) without ever materialising the
// graph. The pipeline is a classic external sort: parsed edges fill a
// fixed-size in-RAM run under Options.MemBudget, full runs spill as
// codec-framed sorted files, and a k-way merge streams globally sorted
// edges into the store builders shard by shard. Both the catalog's
// legacy in-memory ingest and the new streaming entry point route
// through this builder, so the two produce bit-identical entries.
package ingest

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrFormat is the typed sentinel every malformed-input failure wraps:
// unparsable text lines, truncated binary records, gzip garbage, or a
// stream that yields no vertices at all. Callers match it with
// errors.Is; I/O failures while draining the stream are wrapped too,
// since a half-delivered upload is indistinguishable from a truncated
// file.
var ErrFormat = errors.New("ingest: malformed edge-list input")

// BinaryMagic prefixes the binary u32-pair edge format: the 4 magic
// bytes, then one record per edge — src uint32 LE, dst uint32 LE, unit
// weight implied. The format exists for bulk transfers: 8 bytes per
// edge against ~14 for text, and no parsing cost.
const BinaryMagic = "HGE1"

const gzipNesting = 4 // sniffing depth cap for gzip-in-gzip inputs

// emitFunc receives one parsed edge. Errors returned by the sink (spill
// I/O, fault injection) propagate unwrapped — they are not format
// errors.
type emitFunc func(src, dst uint32, w float32) error

// parseStream sniffs r's format by magic bytes and parses every edge
// into emit, returning the final vertex count under the text codec's
// rules (a "# vertices N" header fixes the count; ids extend it) and
// the number of records parsed.
func parseStream(r io.Reader, emit emitFunc) (n int, parsed int64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	for depth := 0; ; depth++ {
		head, err := br.Peek(2)
		if err == io.EOF {
			// Empty input: zero vertices, reported by the caller.
			return 0, 0, nil
		}
		if err != nil {
			return 0, 0, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		if head[0] != 0x1f || head[1] != 0x8b {
			break
		}
		if depth == gzipNesting {
			return 0, 0, fmt.Errorf("%w: gzip nested deeper than %d levels", ErrFormat, gzipNesting)
		}
		zr, err := gzip.NewReader(br)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: gzip: %v", ErrFormat, err)
		}
		br = bufio.NewReaderSize(zr, 1<<16)
	}
	if magic, err := br.Peek(len(BinaryMagic)); err == nil && string(magic) == BinaryMagic {
		br.Discard(len(BinaryMagic))
		return parseBinary(br, emit)
	}
	return parseText(br, emit)
}

// parseText consumes the whitespace-separated text edge-list format
// with exactly graph.ReadEdgeList's semantics: '#' lines are comments
// except a "# vertices N" header that (re)fixes the vertex count, the
// weight column is optional and defaults to 1, and ids raise the count
// to max(id)+1 as they appear.
func parseText(r io.Reader, emit emitFunc) (int, int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	n := 0
	line := 0
	var parsed int64
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			var hn int
			if _, err := fmt.Sscanf(text, "# vertices %d", &hn); err == nil && hn > 0 {
				n = hn
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return 0, 0, fmt.Errorf("%w: line %d: want 'src dst [weight]', got %q", ErrFormat, line, text)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: line %d: bad src: %v", ErrFormat, line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: line %d: bad dst: %v", ErrFormat, line, err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return 0, 0, fmt.Errorf("%w: line %d: bad weight: %v", ErrFormat, line, err)
			}
		}
		if err := emit(uint32(src), uint32(dst), float32(w)); err != nil {
			return 0, 0, err
		}
		parsed++
		if int(src) >= n {
			n = int(src) + 1
		}
		if int(dst) >= n {
			n = int(dst) + 1
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, fmt.Errorf("%w: line %d: %v", ErrFormat, line, err)
	}
	return n, parsed, nil
}

// parseBinary consumes the post-magic body of the binary format: 8-byte
// (src, dst) little-endian records to EOF. A trailing partial record is
// a truncation, reported as ErrFormat.
func parseBinary(r io.Reader, emit emitFunc) (int, int64, error) {
	n := 0
	var parsed int64
	var rec [8]byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return n, parsed, nil
			}
			return 0, 0, fmt.Errorf("%w: truncated binary edge record after %d edges: %v", ErrFormat, parsed, err)
		}
		src := binary.LittleEndian.Uint32(rec[0:])
		dst := binary.LittleEndian.Uint32(rec[4:])
		if err := emit(src, dst, 1); err != nil {
			return 0, 0, err
		}
		parsed++
		if int(src) >= n {
			n = int(src) + 1
		}
		if int(dst) >= n {
			n = int(dst) + 1
		}
	}
}

// ParseBytes parses a human byte quantity: a plain integer, or one with
// a K/M/G/T suffix (binary multiples; "KiB"/"kb" style spellings are
// accepted). Used by the CLI's -mem-budget flag and the service's
// mem_budget query parameter.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, fmt.Errorf("ingest: empty byte quantity")
	}
	mult := int64(1)
	suffixes := []struct {
		s string
		m int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30}, {"tib", 1 << 40},
		{"kb", 1 << 10}, {"mb", 1 << 20}, {"gb", 1 << 30}, {"tb", 1 << 40},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30}, {"t", 1 << 40},
	}
	for _, sf := range suffixes {
		if strings.HasSuffix(t, sf.s) && len(t) > len(sf.s) {
			mult = sf.m
			t = strings.TrimSuffix(t, sf.s)
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("ingest: bad byte quantity %q", s)
	}
	return int64(v * float64(mult)), nil
}
