package ingest

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"hybridgraph/internal/adjstore"
	"hybridgraph/internal/codec"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/veblock"
)

type edge struct {
	src, dst uint32
	w        float32
}

func parseAll(t *testing.T, input []byte) (int, int64, []edge, error) {
	t.Helper()
	var out []edge
	n, parsed, err := parseStream(bytes.NewReader(input), func(src, dst uint32, w float32) error {
		out = append(out, edge{src, dst, w})
		return nil
	})
	return n, parsed, out, err
}

func TestParseTextSemantics(t *testing.T) {
	cases := []struct {
		name  string
		input string
		n     int
		edges []edge
	}{
		{"plain", "0 1\n1 2\n", 3, []edge{{0, 1, 1}, {1, 2, 1}}},
		{"weights", "0 1 2.5\n1 0 0.25\n", 2, []edge{{0, 1, 2.5}, {1, 0, 0.25}}},
		{"header", "# vertices 10\n0 1\n", 10, []edge{{0, 1, 1}}},
		// A later header overwrites the running count, even downward —
		// graph.ReadEdgeList's exact rule.
		{"header-lowers", "5 6\n# vertices 3\n0 1\n", 3, []edge{{5, 6, 1}, {0, 1, 1}}},
		{"ids-raise-header", "# vertices 2\n7 1\n", 8, []edge{{7, 1, 1}}},
		{"comments-blanks", "# a comment\n\n  \n0 1\n# another\n2 0\n", 3, []edge{{0, 1, 1}, {2, 0, 1}}},
		{"tabs", "0\t1\t3\n", 2, []edge{{0, 1, 3}}},
		{"empty", "", 0, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, parsed, got, err := parseAll(t, []byte(tc.input))
			if err != nil {
				t.Fatal(err)
			}
			if n != tc.n {
				t.Fatalf("n = %d, want %d", n, tc.n)
			}
			if parsed != int64(len(tc.edges)) {
				t.Fatalf("parsed = %d, want %d", parsed, len(tc.edges))
			}
			if len(got) != len(tc.edges) {
				t.Fatalf("edges = %v, want %v", got, tc.edges)
			}
			for i := range got {
				if got[i] != tc.edges[i] {
					t.Fatalf("edge %d = %v, want %v", i, got[i], tc.edges[i])
				}
			}
			// Differential: where the text parser succeeds, its count
			// must agree with graph.ReadEdgeList over the same bytes.
			g, err := graph.ReadEdgeList(strings.NewReader(tc.input))
			if tc.n == 0 {
				return // ReadEdgeList rejects empty graphs; parseStream defers that
			}
			if err != nil {
				t.Fatalf("ReadEdgeList: %v", err)
			}
			if g.NumVertices != tc.n {
				t.Fatalf("ReadEdgeList n = %d, parser n = %d", g.NumVertices, tc.n)
			}
		})
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, input := range []string{
		"0\n",                 // one field
		"x 1\n",               // bad src
		"0 y\n",               // bad dst
		"0 1 heavy\n",         // bad weight
		"0 1\n5000000000 1\n", // src overflows uint32
	} {
		_, _, _, err := parseAll(t, []byte(input))
		if !errors.Is(err, ErrFormat) {
			t.Errorf("input %q: err = %v, want ErrFormat", input, err)
		}
	}
}

func binEdges(edges []edge) []byte {
	out := []byte(BinaryMagic)
	for _, e := range edges {
		out = binary.LittleEndian.AppendUint32(out, e.src)
		out = binary.LittleEndian.AppendUint32(out, e.dst)
	}
	return out
}

func TestParseBinary(t *testing.T) {
	want := []edge{{0, 7, 1}, {7, 3, 1}, {2, 2, 1}}
	n, parsed, got, err := parseAll(t, binEdges(want))
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 || parsed != 3 {
		t.Fatalf("n=%d parsed=%d, want 8/3", n, parsed)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
	// A trailing partial record is a truncation, typed ErrFormat.
	_, _, _, err = parseAll(t, binEdges(want)[:len(BinaryMagic)+11])
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated binary: err = %v, want ErrFormat", err)
	}
}

func gz(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParseGzip(t *testing.T) {
	text := []byte("0 1\n1 2\n")
	for name, input := range map[string][]byte{
		"text":   gz(t, text),
		"double": gz(t, gz(t, text)),
		"binary": gz(t, binEdges([]edge{{0, 1, 1}, {1, 2, 1}})),
	} {
		n, parsed, _, err := parseAll(t, input)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != 3 || parsed != 2 {
			t.Fatalf("%s: n=%d parsed=%d, want 3/2", name, n, parsed)
		}
	}
	// Garbage after a gzip magic prefix is a format error, not a panic.
	if _, _, _, err := parseAll(t, []byte{0x1f, 0x8b, 0xff, 0x00, 0x01}); !errors.Is(err, ErrFormat) {
		t.Fatalf("gzip garbage: err = %v, want ErrFormat", err)
	}
	// Nesting beyond the cap is rejected rather than recursed forever.
	deep := text
	for i := 0; i <= gzipNesting; i++ {
		deep = gz(t, deep)
	}
	if _, _, _, err := parseAll(t, deep); !errors.Is(err, ErrFormat) {
		t.Fatalf("deep gzip: err = %v, want ErrFormat", err)
	}
}

func TestParseBytes(t *testing.T) {
	for in, want := range map[string]int64{
		"0": 0, "123": 123, "64k": 64 << 10, "64K": 64 << 10,
		"1.5m": 3 << 19, "2g": 2 << 30, "64MiB": 64 << 20, "10kb": 10 << 10,
	} {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "-1", "x", "12q", "k"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) succeeded, want error", bad)
		}
	}
}

func TestSorterSpillsAndMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var recs []rec
	for i := 0; i < 20000; i++ {
		recs = append(recs, rec{
			a: uint32(rng.Intn(4)), b: uint32(rng.Intn(4)),
			src: uint32(rng.Intn(500)), dst: uint32(rng.Intn(500)), w: rng.Uint32(),
		})
	}
	want := append([]rec(nil), recs...)
	sortRecs(want)
	for _, budget := range []int64{0, 16 << 10, 1 << 20} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			s := newSorter(t.TempDir(), "t", &diskio.Counter{}, codec.None, budget)
			for _, r := range recs {
				if err := s.add(r); err != nil {
					t.Fatal(err)
				}
			}
			it, err := s.finish()
			if err != nil {
				t.Fatal(err)
			}
			defer it.close()
			for i := range want {
				r, ok, err := it.next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("stream ended at %d of %d", i, len(want))
				}
				if r != want[i] {
					t.Fatalf("record %d = %v, want %v", i, r, want[i])
				}
			}
			if _, ok, _ := it.next(); ok {
				t.Fatal("stream yielded extra records")
			}
			if budget == 0 && s.spilled != 0 {
				t.Fatalf("unlimited budget spilled %d runs", s.spilled)
			}
			if budget == 16<<10 && (s.spilled == 0 || s.gens < 3) {
				t.Fatalf("tiny budget: %d runs, %d generations; want spills and >=3 generations",
					s.spilled, s.gens)
			}
		})
	}
}

func TestSorterCorruptSpillDetected(t *testing.T) {
	dir := t.TempDir()
	s := newSorter(dir, "t", &diskio.Counter{}, codec.None, 16<<10)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4000; i++ {
		if err := s.add(rec{src: rng.Uint32(), dst: rng.Uint32(), w: 1}); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := filepath.Glob(filepath.Join(dir, "*.run"))
	if err != nil || len(runs) == 0 {
		t.Fatalf("no spill runs (%v)", err)
	}
	data, err := os.ReadFile(runs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(runs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	it, err := s.finish()
	if err == nil {
		defer it.close()
		for {
			_, ok, nerr := it.next()
			if nerr != nil {
				err = nerr
				break
			}
			if !ok {
				break
			}
		}
	}
	if !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("err = %v, want codec.ErrCorrupt", err)
	}
}

// buildDirs builds the same input at several budgets plus the in-memory
// path, returning the directories.
func TestBuildByteIdenticalAcrossBudgets(t *testing.T) {
	const n, m = 400, 6000
	input := synthEdgeList(t, n, m, 3)
	g, err := graph.ReadEdgeList(bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}

	build := func(name string, f func(o Options) (*Stats, error)) (string, *Stats) {
		t.Helper()
		dir := filepath.Join(t.TempDir(), name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		st, err := f(Options{Dir: dir, Workers: 3, BlocksPer: 2, Codec: codec.None})
		if err != nil {
			t.Fatal(err)
		}
		return dir, st
	}

	memDir, _ := build("mem", func(o Options) (*Stats, error) { return BuildFromGraph(o, g) })
	for _, budget := range []int64{16 << 10, 256 << 10, 0} {
		o := budget
		dir, st := build(fmt.Sprintf("b%d", budget), func(opt Options) (*Stats, error) {
			opt.MemBudget = o
			return BuildFromStream(opt, bytes.NewReader(input))
		})
		if budget == 16<<10 && st.MergeGenerations < 3 {
			t.Errorf("budget 16k: %d merge generations, want >= 3", st.MergeGenerations)
		}
		if budget == 0 && st.Runs != 0 {
			t.Errorf("unlimited budget spilled %d runs", st.Runs)
		}
		if st.Vertices != g.NumVertices || st.Edges != int64(g.NumEdges()) {
			t.Errorf("budget %d: stats %dv/%de, graph %dv/%de",
				budget, st.Vertices, st.Edges, g.NumVertices, g.NumEdges())
		}
		compareTrees(t, memDir, dir)
	}
}

// TestBuildMatchesLegacyStoreBuilders pins the layout bytes to the
// original per-worker builders: the streamed adj.dat and veblock.dat
// must be byte-for-byte what adjstore.Build and veblock.Build write from
// the materialised graph.
func TestBuildMatchesLegacyStoreBuilders(t *testing.T) {
	input := synthEdgeList(t, 300, 4000, 7)
	g, err := graph.ReadEdgeList(bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	const workers, blocksPer = 3, 2
	for _, codecName := range []string{"none", "lz"} {
		t.Run(codecName, func(t *testing.T) {
			cdc, err := codec.Lookup(codecName)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if _, err := BuildFromStream(Options{Dir: dir, Workers: workers,
				BlocksPer: blocksPer, Codec: cdc, MemBudget: 32 << 10},
				bytes.NewReader(input)); err != nil {
				t.Fatal(err)
			}
			parts := graph.RangePartition(g.NumVertices, workers)
			bp := make([]int, workers)
			for i := range bp {
				bp[i] = blocksPer
			}
			layout, err := veblock.NewLayout(parts, bp)
			if err != nil {
				t.Fatal(err)
			}
			ref := t.TempDir()
			ct := &diskio.Counter{}
			for w := 0; w < workers; w++ {
				adjRef := filepath.Join(ref, fmt.Sprintf("adj%d.dat", w))
				a, err := adjstore.Build(adjRef, ct, g, parts[w], cdc)
				if err != nil {
					t.Fatal(err)
				}
				a.Close()
				veRef := filepath.Join(ref, fmt.Sprintf("ve%d.dat", w))
				ve, err := veblock.Build(veRef, ct, g, layout, w, cdc)
				if err != nil {
					t.Fatal(err)
				}
				ve.Close()
				compareFiles(t, adjRef, filepath.Join(dir, fmt.Sprintf("w%d", w), "adj.dat"))
				compareFiles(t, veRef, filepath.Join(dir, fmt.Sprintf("w%d", w), "veblock.dat"))
			}
		})
	}
}

func TestBuildRejectsEmptyAndOverPartitioned(t *testing.T) {
	o := Options{Dir: t.TempDir(), Workers: 2}
	if _, err := BuildFromStream(o, strings.NewReader("")); !errors.Is(err, ErrFormat) {
		t.Fatalf("empty input: err = %v, want ErrFormat", err)
	}
	o.Dir = t.TempDir()
	o.Workers = 10
	if _, err := BuildFromStream(o, strings.NewReader("0 1\n")); err == nil {
		t.Fatal("10 workers for 2 vertices succeeded")
	}
}

func TestBuildDropsSelfLoopsAndOutOfRange(t *testing.T) {
	// The trailing header lowers n to 3, stranding the 7->1 edge out of
	// range; 2->2 is a self-loop. Both drop, mirroring graph.ReadEdgeList
	// + Builder exactly.
	input := "7 1\n0 1\n2 2\n1 2\n# vertices 3\n"
	dir := t.TempDir()
	st, err := BuildFromStream(Options{Dir: dir, Workers: 1}, strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if st.Vertices != 3 || st.Edges != 2 || st.SelfLoops != 1 || st.OutOfRange != 1 {
		t.Fatalf("stats = %+v, want 3v/2e, 1 self-loop, 1 out-of-range", st)
	}
	g, err := graph.LoadEdgeList(filepath.Join(dir, "graph.el"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 3 || g.NumEdges() != 2 {
		t.Fatalf("graph.el is %dv/%de, want 3v/2e", g.NumVertices, g.NumEdges())
	}
}

func TestBuildCleansSpillDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := BuildFromStream(Options{Dir: dir, Workers: 2, MemBudget: 16 << 10},
		bytes.NewReader(synthEdgeList(t, 100, 2000, 1))); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, SpillDirName)); !os.IsNotExist(err) {
		t.Fatalf("spill dir survives the build (stat err = %v)", err)
	}
}

// synthEdgeList generates a deterministic text edge list with unique
// (src, dst) pairs (ties in the canonical sort would make legacy CSR
// builders order-dependent) and varied weights.
func synthEdgeList(t *testing.T, n, m int, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# vertices %d\n", n)
	for len(seen) < m {
		src := uint32(rng.Intn(n))
		dst := uint32(rng.Intn(n))
		if src == dst {
			continue
		}
		key := uint64(src)<<32 | uint64(dst)
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Fprintf(&buf, "%d %d %g\n", src, dst, float32(rng.Intn(1000))/8)
	}
	return buf.Bytes()
}

func compareTrees(t *testing.T, want, got string) {
	t.Helper()
	var wantFiles []string
	filepath.Walk(want, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			rel, _ := filepath.Rel(want, path)
			wantFiles = append(wantFiles, rel)
		}
		return nil
	})
	sort.Strings(wantFiles)
	var gotFiles []string
	filepath.Walk(got, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			rel, _ := filepath.Rel(got, path)
			gotFiles = append(gotFiles, rel)
		}
		return nil
	})
	sort.Strings(gotFiles)
	if len(wantFiles) != len(gotFiles) {
		t.Fatalf("trees differ: %v vs %v", wantFiles, gotFiles)
	}
	for i, rel := range wantFiles {
		if gotFiles[i] != rel {
			t.Fatalf("trees differ: %v vs %v", wantFiles, gotFiles)
		}
		compareFiles(t, filepath.Join(want, rel), filepath.Join(got, rel))
	}
}

func compareFiles(t *testing.T, want, got string) {
	t.Helper()
	wb, err := os.ReadFile(want)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := os.ReadFile(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatalf("%s and %s differ (%d vs %d bytes)", want, got, len(wb), len(gb))
	}
}
