package service

import (
	"context"
	"path/filepath"
	"testing"
	"time"
)

// startServer runs a daemon on an ephemeral port and returns a client for
// it; the server is shut down when the test ends.
func startServer(t *testing.T, cfg ServerConfig) (*Server, *Client) {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, NewClient("http://" + srv.Addr)
}

// TestServerEndToEnd is the HTTP smoke test: ingest over the API, run
// concurrent jobs to completion, fetch results, cancel a running job and
// shut down cleanly.
func TestServerEndToEnd(t *testing.T) {
	dataDir := t.TempDir()
	_, c := startServer(t, ServerConfig{DataDir: dataDir, MaxConcurrent: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	m, err := c.Ingest(ctx, IngestRequest{
		Name: "web1", Workers: 3, BlocksPer: 2,
		Generator: &GenSpec{Kind: "web", Vertices: 1500, Edges: 12000, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "web1" || m.Vertices != 1500 || m.Workers != 3 {
		t.Fatalf("ingest manifest = %+v", m)
	}
	// Ingesting the same name again conflicts.
	if _, err := c.Ingest(ctx, IngestRequest{Name: "web1", Workers: 3,
		Generator: &GenSpec{Kind: "uniform", Vertices: 100, Edges: 500, Seed: 1}}); err == nil {
		t.Fatal("duplicate ingest succeeded over HTTP")
	}
	graphs, err := c.Graphs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 1 {
		t.Fatalf("%d graphs listed, want 1", len(graphs))
	}

	// Three concurrent jobs over the shared catalog entry (the acceptance
	// scenario): all complete, all reuse the layout with zero build bytes.
	specs := []JobSpec{
		{Graph: "web1", Algorithm: "pagerank", Engine: "hybrid", MaxSteps: 8, MsgBuf: 300},
		{Graph: "web1", Algorithm: "sssp", Engine: "b-pull", MaxSteps: 30, MsgBuf: 300},
		{Graph: "web1", Algorithm: "pagerank", Engine: "push", MaxSteps: 8, MsgBuf: 300},
	}
	var ids []string
	for _, spec := range specs {
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for i, id := range ids {
		st, err := c.WaitJob(ctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobDone {
			t.Fatalf("%s (%s/%s): state %s (%s)", id, specs[i].Algorithm, specs[i].Engine, st.State, st.Error)
		}
		if !st.CatalogHit || st.LayoutBuild != 0 {
			t.Fatalf("%s: catalog_hit=%v layout_build=%d", id, st.CatalogHit, st.LayoutBuild)
		}
		res, err := c.Result(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Values) != 1500 || res.Supersteps() == 0 {
			t.Fatalf("%s: result %d values, %d steps", id, len(res.Values), res.Supersteps())
		}
	}

	// Cancel a long-running job through the API.
	st, err := c.Submit(ctx, JobSpec{Graph: "web1", Algorithm: "pagerank", Engine: "push",
		MaxSteps: 1000, MsgBuf: 200})
	if err != nil {
		t.Fatal(err)
	}
	for {
		cur, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == JobRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := c.Cancel(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != JobCancelled {
		t.Fatalf("state after cancel = %s (%s)", got.State, got.Error)
	}
	// Result of a cancelled job is a conflict, not a 404.
	if _, err := c.Result(ctx, st.ID); err == nil {
		t.Fatal("Result of a cancelled job succeeded")
	}
	// Unknown ids are 404s.
	if _, err := c.Job(ctx, "job-999999"); err == nil {
		t.Fatal("status of unknown job succeeded")
	}

	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("%d jobs listed, want 4", len(jobs))
	}
	// No job work directories survive.
	if m, _ := filepath.Glob(filepath.Join(dataDir, "jobs", "*")); len(m) != 0 {
		t.Fatalf("job directories left behind: %v", m)
	}

}

// TestServerDrainWithQueuedJobs shuts the daemon down while jobs are
// queued; queued jobs must be reported cancelled and the drain must not
// hang.
func TestServerDrainWithQueuedJobs(t *testing.T) {
	dataDir := t.TempDir()
	srv, c := startServer(t, ServerConfig{DataDir: dataDir, MaxConcurrent: 1, DrainGrace: 100 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := c.Ingest(ctx, IngestRequest{Name: "g", Workers: 2,
		Generator: &GenSpec{Kind: "rmat", Vertices: 1000, Edges: 8000, Seed: 3}}); err != nil {
		t.Fatal(err)
	}
	// Long jobs, so the queue is still populated when the daemon drains:
	// the running one is cancelled after the short grace, the queued ones
	// immediately.
	spec := JobSpec{Graph: "g", Algorithm: "pagerank", Engine: "push", MaxSteps: 5000, MsgBuf: 300}
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The scheduler is still inspectable in-process after shutdown.
	sawCancelled := 0
	for _, id := range ids {
		st, err := srv.Scheduler().Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if !st.State.Terminal() {
			t.Fatalf("%s: state %s after shutdown", id, st.State)
		}
		if st.State == JobCancelled {
			sawCancelled++
			if st.Error == "" {
				t.Fatalf("%s: cancelled with empty error", id)
			}
		}
	}
	if sawCancelled < 2 {
		t.Fatalf("%d queued jobs reported cancelled, want >= 2", sawCancelled)
	}
}

// TestServerRestartReopensCatalog checks persistence: a new daemon over
// the same DataDir serves the previously ingested graph without
// re-ingesting.
func TestServerRestartReopensCatalog(t *testing.T) {
	dataDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	{
		srv, c := startServer(t, ServerConfig{DataDir: dataDir})
		if _, err := c.Ingest(ctx, IngestRequest{Name: "keep", Workers: 2,
			Generator: &GenSpec{Kind: "uniform", Vertices: 500, Edges: 3000, Seed: 9}}); err != nil {
			t.Fatal(err)
		}
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := srv.Shutdown(sctx); err != nil {
			t.Fatal(err)
		}
		scancel()
	}
	srv2, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv2.Serve() }()
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		if err := srv2.Shutdown(sctx); err != nil {
			t.Error(err)
		}
		<-done
	}()
	c2 := NewClient("http://" + srv2.Addr)
	st, err := c2.Submit(ctx, JobSpec{Graph: "keep", Algorithm: "pagerank", Engine: "b-pull",
		MaxSteps: 5, MsgBuf: 200})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c2.WaitJob(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone || !final.CatalogHit {
		t.Fatalf("restarted daemon: state=%s hit=%v (%s)", final.State, final.CatalogHit, final.Error)
	}
	if final.LayoutBuild != 0 {
		t.Fatalf("restarted daemon rebuilt %d layout bytes", final.LayoutBuild)
	}
}
