package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"hybridgraph/internal/catalog"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/ingest"
	"hybridgraph/internal/metrics"
	"hybridgraph/internal/obs"
)

// ServerConfig configures the daemon.
type ServerConfig struct {
	// Addr is the listen address (":8080"; use ":0" for an ephemeral port).
	Addr string
	// DataDir is the daemon's root: the catalog lives in <DataDir>/catalog,
	// job work directories in <DataDir>/jobs, per-job trace journals in
	// <DataDir>/traces, the job WAL in <DataDir>/wal, and the service
	// journal at <DataDir>/service.jsonl.
	DataDir string
	// WALDir overrides where the crash-safe job WAL lives (default
	// <DataDir>/wal). Set to "off" to disable durability entirely —
	// submitted jobs then die with the process.
	WALDir string
	// Scheduler bounds; DataDir/Tracer/Metrics/TraceDir fields are managed
	// by the server and ignored here.
	MaxQueued     int
	MaxConcurrent int
	MaxMsgBuf     int
	// DrainGrace is how long Shutdown lets running jobs finish before
	// cancelling them (default 5s).
	DrainGrace time.Duration
}

// Server is a running graph service daemon.
type Server struct {
	Addr string // bound address

	cfg   ServerConfig
	cat   *catalog.Catalog
	sched *Scheduler
	reg   *obs.Registry
	trace *obs.Tracer
	srv   *http.Server
	ln    net.Listener
}

// NewServer builds the daemon: opens (or creates) the catalog under
// cfg.DataDir, starts the scheduler, and binds the listener. Call Serve to
// run it and Shutdown to drain.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: DataDir is required")
	}
	if cfg.Addr == "" {
		cfg.Addr = ":8080"
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 5 * time.Second
	}
	for _, sub := range []string{"catalog", "jobs", "traces"} {
		if err := os.MkdirAll(filepath.Join(cfg.DataDir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	cat, err := catalog.Open(filepath.Join(cfg.DataDir, "catalog"))
	if err != nil {
		return nil, err
	}
	tracer, err := obs.OpenTracer(filepath.Join(cfg.DataDir, "service.jsonl"))
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	walDir := cfg.WALDir
	switch walDir {
	case "":
		walDir = filepath.Join(cfg.DataDir, "wal")
	case "off":
		walDir = ""
	}
	sched, err := NewScheduler(cat, SchedulerConfig{
		MaxQueued:     cfg.MaxQueued,
		MaxConcurrent: cfg.MaxConcurrent,
		MaxMsgBuf:     cfg.MaxMsgBuf,
		DataDir:       cfg.DataDir,
		Tracer:        tracer,
		Metrics:       reg,
		TraceDir:      filepath.Join(cfg.DataDir, "traces"),
		WALDir:        walDir,
	})
	if err != nil {
		tracer.Close()
		return nil, err
	}
	s := &Server{cfg: cfg, cat: cat, sched: sched, reg: reg, trace: tracer}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		tracer.Close()
		return nil, err
	}
	s.ln = ln
	s.Addr = ln.Addr().String()
	s.srv = &http.Server{Handler: s.mux()}
	return s, nil
}

// Serve runs the HTTP loop until Shutdown; it returns nil after a clean
// shutdown.
func (s *Server) Serve() error {
	err := s.srv.Serve(s.ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains the daemon: the scheduler cancels queued jobs and gives
// running jobs DrainGrace to finish, then the HTTP server stops accepting.
func (s *Server) Shutdown(ctx context.Context) error {
	s.sched.Drain(s.cfg.DrainGrace)
	err := s.srv.Shutdown(ctx)
	if cerr := s.trace.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// Scheduler exposes the scheduler (tests drive it directly).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Catalog exposes the catalog.
func (s *Server) Catalog() *catalog.Catalog { return s.cat }

// GenSpec describes a seeded synthetic graph (the generator alternative to
// uploading an edge list).
type GenSpec struct {
	Kind     string  `json:"kind"` // rmat | web | uniform | chain
	Vertices int     `json:"vertices"`
	Edges    int     `json:"edges"`
	Seed     int64   `json:"seed"`
	A        float64 `json:"a,omitempty"` // rmat partition probabilities
	B        float64 `json:"b,omitempty"`
	C        float64 `json:"c,omitempty"`
	HostSize int     `json:"host_size,omitempty"`  // web
	Intra    float64 `json:"intra_prob,omitempty"` // web
	Stride   int     `json:"stride,omitempty"`     // chain
}

// Generate materialises the spec.
func (g GenSpec) Generate() (*graph.Graph, error) {
	if g.Vertices <= 0 {
		return nil, fmt.Errorf("service: generator needs vertices > 0")
	}
	switch g.Kind {
	case "rmat":
		a, b, c := g.A, g.B, g.C
		if a == 0 && b == 0 && c == 0 {
			a, b, c = 0.57, 0.19, 0.19
		}
		return graph.GenRMAT(g.Vertices, g.Edges, a, b, c, g.Seed), nil
	case "web":
		hs := g.HostSize
		if hs <= 0 {
			hs = 64
		}
		intra := g.Intra
		if intra <= 0 {
			intra = 0.8
		}
		return graph.GenWeb(g.Vertices, g.Edges, hs, intra, g.Seed), nil
	case "uniform":
		return graph.GenUniform(g.Vertices, g.Edges, g.Seed), nil
	case "chain":
		st := g.Stride
		if st <= 0 {
			st = 1
		}
		return graph.GenChain(g.Vertices, st, g.Seed), nil
	}
	return nil, fmt.Errorf("service: unknown generator kind %q", g.Kind)
}

// IngestRequest asks the daemon to ingest a graph into the catalog, from
// exactly one of: an inline edge list, a server-side edge-list file, or a
// generator spec.
type IngestRequest struct {
	Name      string   `json:"name"`
	Workers   int      `json:"workers"`
	BlocksPer int      `json:"blocks_per,omitempty"`
	EdgeList  string   `json:"edge_list,omitempty"` // inline text edge list
	Path      string   `json:"path,omitempty"`      // server-side file path
	Generator *GenSpec `json:"generator,omitempty"`
	// Codec names the block codec the catalog stores this graph's layouts
	// with ("", "none", "delta", "lz"). Jobs over the graph must run with a
	// matching Config.Codec; the manifest records the choice.
	Codec string `json:"codec,omitempty"`
	// MemBudget bounds the streaming builder's working memory when the
	// graph arrives via Path (bytes; <= 0 means unlimited). Inline and
	// generated graphs are already in memory, so it applies only to Path.
	MemBudget int64 `json:"mem_budget,omitempty"`
}

// IngestStreamResponse reports a streaming ingest: the published
// manifest plus the builder's effort (spill bytes, merge generations,
// drops).
type IngestStreamResponse struct {
	Manifest *catalog.Manifest `json:"manifest"`
	Stats    *ingest.Stats     `json:"stats"`
}

type apiError struct {
	Error string `json:"error"`
}

// resultWire carries a JobResult across the API. Vertex values travel as
// IEEE-754 bit patterns: JSON has no encoding for the non-finite
// distances SSSP leaves on unreached vertices, and bits round-trip
// bit-identically besides.
type resultWire struct {
	Result     *metrics.JobResult `json:"result"`
	ValuesBits []uint64           `json:"values_bits,omitempty"`
}

func toWire(res *metrics.JobResult) resultWire {
	cp := *res
	bits := make([]uint64, len(cp.Values))
	for i, v := range cp.Values {
		bits[i] = math.Float64bits(v)
	}
	cp.Values = nil
	return resultWire{Result: &cp, ValuesBits: bits}
}

func (w resultWire) toResult() *metrics.JobResult {
	res := w.Result
	if res == nil {
		res = &metrics.JobResult{}
	}
	if len(w.ValuesBits) > 0 {
		res.Values = make([]float64, len(w.ValuesBits))
		for i, b := range w.ValuesBits {
			res.Values[i] = math.Float64frombits(b)
		}
	}
	return res
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Marshal before touching the response so an encoding failure can
	// still produce a well-formed error status.
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *Server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /api/graphs", s.handleIngest)
	mux.HandleFunc("POST /api/ingest", s.handleIngestStream)
	mux.HandleFunc("GET /api/graphs", s.handleGraphs)
	mux.HandleFunc("GET /api/graphs/{name}", s.handleGraph)
	mux.HandleFunc("POST /api/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/jobs", s.handleJobs)
	mux.HandleFunc("GET /api/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /api/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /workers", s.handleWorkers)
	mux.HandleFunc("GET /api/workers", s.handleWorkers)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.reg.WriteTo(w)
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var g *graph.Graph
	var err error
	sources := 0
	for _, set := range []bool{req.EdgeList != "", req.Path != "", req.Generator != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("service: ingest needs exactly one of edge_list, path, generator"))
		return
	}
	if req.Workers <= 0 {
		req.Workers = 5
	}
	if req.Path != "" {
		// Server-side files route through the streaming builder: the
		// graph is never materialised, whatever its size, and the entry
		// is bit-identical to the in-memory path's.
		f, err := os.Open(req.Path)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		defer f.Close()
		entry, _, err := s.cat.IngestStream(req.Name, f, catalog.StreamOptions{
			Workers: req.Workers, BlocksPer: req.BlocksPer,
			Codec: req.Codec, MemBudget: req.MemBudget})
		if err != nil {
			writeErr(w, ingestStatus(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, entry.Manifest())
		return
	}
	switch {
	case req.EdgeList != "":
		g, err = graph.ReadEdgeList(strings.NewReader(req.EdgeList))
	default:
		g, err = req.Generator.Generate()
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	entry, err := s.cat.Ingest(req.Name, g, req.Workers, req.BlocksPer, req.Codec)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, entry.Manifest())
}

// ingestStatus maps a streaming-ingest failure to an HTTP status:
// malformed input is the client's fault, everything else (name taken,
// bad codec, disk trouble) keeps the legacy conflict mapping.
func ingestStatus(err error) int {
	if errors.Is(err, ingest.ErrFormat) {
		return http.StatusBadRequest
	}
	return http.StatusConflict
}

// handleIngestStream is the bulk-import endpoint: POST /api/ingest with
// the edge list as the request body (text, binary "HGE1", or either
// gzip-wrapped — sniffed, so curl --data-binary @file.gz just works), or
// with ?path= naming a server-side file to stream instead. Geometry and
// budget ride as query parameters since the body is the payload.
func (s *Server) handleIngestStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	so := catalog.StreamOptions{Workers: 5, Codec: q.Get("codec")}
	var err error
	if v := q.Get("workers"); v != "" {
		if so.Workers, err = strconv.Atoi(v); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad workers %q", v))
			return
		}
	}
	if v := q.Get("blocks"); v != "" {
		if so.BlocksPer, err = strconv.Atoi(v); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad blocks %q", v))
			return
		}
	}
	if v := q.Get("mem_budget"); v != "" {
		if so.MemBudget, err = ingest.ParseBytes(v); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	var src io.Reader = r.Body
	if p := q.Get("path"); p != "" {
		f, err := os.Open(p)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		defer f.Close()
		src = f
	}
	entry, st, err := s.cat.IngestStream(q.Get("name"), src, so)
	if err != nil {
		writeErr(w, ingestStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, IngestStreamResponse{Manifest: entry.Manifest(), Stats: st})
}

func (s *Server) handleGraphs(w http.ResponseWriter, _ *http.Request) {
	list, err := s.cat.List()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if list == nil {
		list = []*catalog.Manifest{}
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	entry, err := s.cat.Entry(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, entry.Manifest())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.sched.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "queue full") || strings.Contains(err.Error(), "draining") {
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.sched.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.sched.Result(r.PathValue("id"))
	if err != nil {
		code := http.StatusConflict
		if strings.Contains(err.Error(), "no job") {
			code = http.StatusNotFound
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, toWire(res))
}

func (s *Server) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Workers())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.sched.Cancel(r.PathValue("id"))
	if err != nil {
		code := http.StatusConflict
		if strings.Contains(err.Error(), "no job") {
			code = http.StatusNotFound
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
