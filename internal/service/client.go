package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"hybridgraph/internal/catalog"
	"hybridgraph/internal/metrics"
)

// Client talks to a running daemon's JSON API. The zero HTTPClient uses
// http.DefaultClient.
//
// Connection-level failures (refused, reset, a round trip exceeding
// Timeout) are retried with exponential backoff and jitter — but only for
// requests that are safe to repeat: reads always, a submit only when its
// spec carries a RequestID the server deduplicates on. A submit without
// one is sent exactly once, because a retry after a lost response could
// run the job twice. HTTP-level errors (4xx/5xx bodies) never retry: the
// server heard us and said no.
type Client struct {
	Base       string // e.g. "http://127.0.0.1:8080"
	HTTPClient *http.Client
	// Timeout bounds each individual round trip, not the whole retried
	// operation (default 30s; the caller's ctx still caps everything).
	Timeout time.Duration
	// MaxRetries is the number of re-sends after the first attempt fails
	// at the connection level (default 3). Backoff is the base delay
	// (default 50ms), doubling per attempt with up to 100% jitter.
	MaxRetries int
	Backoff    time.Duration

	jmu sync.Mutex
	jrt *rand.Rand // jitter source, lazily seeded
}

// NewClient returns a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

func (c *Client) retries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 3
}

// jitter draws a random duration in [0, d].
func (c *Client) jitter(d time.Duration) time.Duration {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	if c.jrt == nil {
		c.jrt = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return time.Duration(c.jrt.Int63n(int64(d) + 1))
}

// do issues a JSON operation with the retry policy above; a non-nil out
// receives the decoded body. idempotent marks the request safe to re-send
// after a connection-level failure.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return err
		}
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries(); attempt++ {
		if attempt > 0 {
			d := backoff << uint(attempt-1)
			if max := 2 * time.Second; d > max {
				d = max
			}
			tm := time.NewTimer(d + c.jitter(d))
			select {
			case <-tm.C:
			case <-ctx.Done():
				tm.Stop()
				return ctx.Err()
			}
		}
		err := c.once(ctx, method, path, data, out)
		if err == nil {
			return nil
		}
		lastErr = err
		var he *httpError
		if errors.As(err, &he) {
			// The server processed the request; repeating it cannot help
			// and (for a submit) could double-apply it.
			return err
		}
		if ctx.Err() != nil {
			// The caller's context expired, not just this attempt's
			// per-request deadline.
			return err
		}
		if !idempotent {
			return err
		}
	}
	return fmt.Errorf("service: %s %s failed after %d attempts: %w",
		method, path, c.retries()+1, lastErr)
}

// httpError is a response the server actually produced (status >= 400),
// as opposed to a connection-level failure. Never retried.
type httpError struct{ msg string }

func (e *httpError) Error() string { return e.msg }

// once performs a single round trip under the per-request timeout.
func (c *Client) once(ctx context.Context, method, path string, data []byte, out any) error {
	rctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	var body io.Reader
	if data != nil {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(rctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if data != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var ae apiError
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			return &httpError{fmt.Sprintf("%s %s: %s (%s)", method, path, ae.Error, resp.Status)}
		}
		return &httpError{fmt.Sprintf("%s %s: %s", method, path, resp.Status)}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health reports whether the daemon answers /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, true)
}

// Ingest ingests a graph and returns its manifest. Not retried: a lost
// response would make the retry collide with the first attempt's
// already-created entry.
func (c *Client) Ingest(ctx context.Context, req IngestRequest) (*catalog.Manifest, error) {
	m := &catalog.Manifest{}
	if err := c.do(ctx, http.MethodPost, "/api/graphs", req, m, false); err != nil {
		return nil, err
	}
	return m, nil
}

// IngestStream streams an edge-list body (text, binary, or gzip) to the
// daemon's bulk-import endpoint. Never retried: the body is consumed by
// the attempt, and a lost response would collide with the entry the
// first attempt created. No per-request timeout applies — a bulk import
// legitimately outlives one round trip — so bound it with ctx.
func (c *Client) IngestStream(ctx context.Context, name string, body io.Reader, o catalog.StreamOptions) (*IngestStreamResponse, error) {
	return c.ingestStream(ctx, ingestQuery(name, o), body)
}

// IngestServerPath asks the daemon to stream-ingest a file on the
// server's own filesystem — the bulk path when the data is already
// there. Same no-retry, no-timeout policy as IngestStream.
func (c *Client) IngestServerPath(ctx context.Context, name, path string, o catalog.StreamOptions) (*IngestStreamResponse, error) {
	q := ingestQuery(name, o)
	q.Set("path", path)
	return c.ingestStream(ctx, q, nil)
}

func ingestQuery(name string, o catalog.StreamOptions) url.Values {
	q := url.Values{}
	q.Set("name", name)
	if o.Workers > 0 {
		q.Set("workers", strconv.Itoa(o.Workers))
	}
	if o.BlocksPer > 0 {
		q.Set("blocks", strconv.Itoa(o.BlocksPer))
	}
	if o.Codec != "" {
		q.Set("codec", o.Codec)
	}
	if o.MemBudget > 0 {
		q.Set("mem_budget", strconv.FormatInt(o.MemBudget, 10))
	}
	return q
}

func (c *Client) ingestStream(ctx context.Context, q url.Values, body io.Reader) (*IngestStreamResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/api/ingest?"+q.Encode(), body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var ae apiError
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			return nil, &httpError{fmt.Sprintf("POST /api/ingest: %s (%s)", ae.Error, resp.Status)}
		}
		return nil, &httpError{fmt.Sprintf("POST /api/ingest: %s", resp.Status)}
	}
	out := &IngestStreamResponse{}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return nil, err
	}
	return out, nil
}

// Graphs lists the catalog's manifests.
func (c *Client) Graphs(ctx context.Context) ([]*catalog.Manifest, error) {
	var out []*catalog.Manifest
	if err := c.do(ctx, http.MethodGet, "/api/graphs", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// Submit enqueues a job. A spec carrying a RequestID is retried on
// connection errors — the server deduplicates, so the retry lands on the
// job the lost first attempt created. Without one the submit is sent
// exactly once and a connection error surfaces to the caller.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/api/jobs", spec, &st, spec.RequestID != "")
	return st, err
}

// Job reports one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/api/jobs/"+id, nil, &st, true)
	return st, err
}

// Jobs lists every job.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	if err := c.do(ctx, http.MethodGet, "/api/jobs", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// Workers fetches the per-job worker-health view.
func (c *Client) Workers(ctx context.Context) ([]JobWorkers, error) {
	var out []JobWorkers
	if err := c.do(ctx, http.MethodGet, "/api/workers", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// Result fetches a done job's full result.
func (c *Client) Result(ctx context.Context, id string) (*metrics.JobResult, error) {
	var wire resultWire
	if err := c.do(ctx, http.MethodGet, "/api/jobs/"+id+"/result", nil, &wire, true); err != nil {
		return nil, err
	}
	return wire.toResult(), nil
}

// Cancel cancels a queued or running job. Not retried: cancelling an
// already-terminal job is an error, so a retry of a cancel whose response
// was lost would mask the first attempt's success.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/api/jobs/"+id+"/cancel", nil, &st, false)
	return st, err
}

// WaitJob polls until the job reaches a terminal state or ctx expires.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}
