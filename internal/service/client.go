package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hybridgraph/internal/catalog"
	"hybridgraph/internal/metrics"
)

// Client talks to a running daemon's JSON API. The zero HTTPClient uses
// http.DefaultClient.
type Client struct {
	Base       string // e.g. "http://127.0.0.1:8080"
	HTTPClient *http.Client
}

// NewClient returns a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one JSON round trip; a non-nil out receives the decoded body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var ae apiError
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			return fmt.Errorf("%s %s: %s (%s)", method, path, ae.Error, resp.Status)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health reports whether the daemon answers /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Ingest ingests a graph and returns its manifest.
func (c *Client) Ingest(ctx context.Context, req IngestRequest) (*catalog.Manifest, error) {
	m := &catalog.Manifest{}
	if err := c.do(ctx, http.MethodPost, "/api/graphs", req, m); err != nil {
		return nil, err
	}
	return m, nil
}

// Graphs lists the catalog's manifests.
func (c *Client) Graphs(ctx context.Context) ([]*catalog.Manifest, error) {
	var out []*catalog.Manifest
	if err := c.do(ctx, http.MethodGet, "/api/graphs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Submit enqueues a job.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/api/jobs", spec, &st)
	return st, err
}

// Job reports one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/api/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists every job.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	if err := c.do(ctx, http.MethodGet, "/api/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Result fetches a done job's full result.
func (c *Client) Result(ctx context.Context, id string) (*metrics.JobResult, error) {
	var wire resultWire
	if err := c.do(ctx, http.MethodGet, "/api/jobs/"+id+"/result", nil, &wire); err != nil {
		return nil, err
	}
	return wire.toResult(), nil
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/api/jobs/"+id+"/cancel", nil, &st)
	return st, err
}

// WaitJob polls until the job reaches a terminal state or ctx expires.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}
