// Package service implements the graph service daemon: a persistent graph
// catalog (internal/catalog) fronted by a bounded multi-job scheduler and
// an HTTP JSON API. Graphs are ingested once; jobs over them reuse the
// pre-built VE-BLOCK and adjacency layouts read-only (zero layout-rebuild
// writes, trace-verified), run concurrently up to an admission-controlled
// limit, and are cancellable mid-superstep through the context plumbing in
// core.RunContext.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/catalog"
	"hybridgraph/internal/codec"
	"hybridgraph/internal/core"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/metrics"
	"hybridgraph/internal/obs"
)

// JobState is a job's lifecycle position.
type JobState string

// The five job states. Queued and Running are live; the rest are terminal.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// JobSpec is what a client submits: which catalog graph to compute over,
// with which algorithm and engine, under which budgets.
type JobSpec struct {
	Graph     string `json:"graph"`
	Algorithm string `json:"algorithm"` // pagerank | pagerank-converging | sssp | lpa
	Engine    string `json:"engine"`    // push | pushM | pull | b-pull | hybrid
	// MaxSteps caps supersteps (default 30). MsgBuf is the per-worker
	// message-buffer budget in messages (0 = unlimited), bounded by the
	// scheduler's MaxMsgBuf admission rule.
	MaxSteps int `json:"max_steps,omitempty"`
	MsgBuf   int `json:"msg_buf,omitempty"`
	// Parallelism is the per-worker compute parallelism (0 = the core
	// default, NumCPU/Workers). Any value yields identical results.
	Parallelism int `json:"parallelism,omitempty"`
	// Source seeds SSSP (default 0).
	Source int `json:"source,omitempty"`
	// Priority orders the queue: higher first, FIFO within a priority.
	Priority int `json:"priority,omitempty"`
	// TCP routes worker traffic over the loopback TCP fabric.
	TCP bool `json:"tcp,omitempty"`
	// Recovery selects the fault-tolerance policy ("", scratch, resume,
	// checkpoint, confined, reassign) and Retries the number of times the
	// scheduler re-enqueues the job after a non-cancellation failure.
	Recovery string `json:"recovery,omitempty"`
	Retries  int    `json:"retries,omitempty"`
	// MaxRestarts is the reassign policy's per-worker failure budget: a
	// worker exceeding it is declared permanently dead and its partition
	// adopted by a survivor (0 = the core default).
	MaxRestarts int `json:"max_restarts,omitempty"`
	// RequestID, when set, makes the submit idempotent: re-submitting a
	// spec carrying a RequestID the scheduler has already accepted returns
	// the existing job instead of enqueuing a duplicate. The client's
	// retry layer only retries submits that carry one, because without it
	// a retried submit whose first response was lost would run twice.
	RequestID string `json:"request_id,omitempty"`
	// CheckpointEvery commits a checkpoint every N supersteps. Beyond the
	// in-run recovery policies, a checkpointing job killed with the daemon
	// resumes from its last committed checkpoint on restart (job WAL).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Codec names the block codec for the job's scratch state (spills,
	// message logs, checkpoints). It must match the graph's ingest codec;
	// an empty value adopts the graph's codec so compressed catalogs work
	// without every client repeating the name.
	Codec string `json:"codec,omitempty"`
	// ChargePhysical makes the cost model's DiskSeconds run on physical
	// (post-codec) bytes instead of the paper's logical bytes.
	ChargePhysical bool `json:"charge_physical,omitempty"`
}

// JobStatus is the externally visible job record (JSON-served as-is).
type JobStatus struct {
	ID       string   `json:"id"`
	Spec     JobSpec  `json:"spec"`
	State    JobState `json:"state"`
	Error    string   `json:"error,omitempty"`
	Attempts int      `json:"attempts"`
	// Summary numbers lifted off the JobResult when the job is done; the
	// full result (including final vertex values) is served separately.
	Steps       int     `json:"steps,omitempty"`
	SimSeconds  float64 `json:"sim_seconds,omitempty"`
	NetBytes    int64   `json:"net_bytes,omitempty"`
	IOBytes     int64   `json:"io_bytes,omitempty"`
	CatalogHit  bool    `json:"catalog_hit,omitempty"`
	LayoutBuild int64   `json:"layout_build_bytes,omitempty"`
	LayoutReuse int64   `json:"layout_reused_bytes,omitempty"`
	// Degraded marks a job that survived a permanent worker loss under the
	// reassign policy: the result is exact, but fewer machines computed it.
	Degraded      bool `json:"degraded,omitempty"`
	Reassignments int  `json:"reassignments,omitempty"`

	EnqueuedAt time.Time `json:"enqueued_at"`
	StartedAt  time.Time `json:"started_at,omitempty"`
	FinishedAt time.Time `json:"finished_at,omitempty"`
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// WorkerHealth is one worker's liveness within a job, as reported by the
// recovery machinery through core's OnRecovery hook.
type WorkerHealth struct {
	Worker int  `json:"worker"`
	Alive  bool `json:"alive"`
	// Host is the worker hosting this worker's partition: itself while
	// alive, the adopting survivor after a reassignment.
	Host    int `json:"host"`
	Crashes int `json:"crashes"`
	Stalls  int `json:"stalls"`
}

// JobWorkers is one job's row in the /workers health view.
type JobWorkers struct {
	JobID         string         `json:"job_id"`
	State         JobState       `json:"state"`
	Degraded      bool           `json:"degraded,omitempty"`
	Reassignments int            `json:"reassignments,omitempty"`
	Workers       []WorkerHealth `json:"workers"`
}

// job is the scheduler's internal record.
type job struct {
	status JobStatus
	seq    int64 // FIFO tiebreak within a priority
	cancel context.CancelCauseFunc
	done   chan struct{} // closed when the job reaches a terminal state
	result *metrics.JobResult
	// resume marks a job the WAL replay found in the running state: its
	// next attempt restores the last committed checkpoint from the job's
	// (surviving) work directory instead of starting over.
	resume bool
	// health is the per-worker liveness this job's OnRecovery notices have
	// built up; nil until the first notice (or until the attempt starts
	// for a reassign job). Guarded by the scheduler's mu.
	health        []WorkerHealth
	reassignments int
}

// ensureHealth grows j.health to cover worker w. Callers hold s.mu.
func (j *job) ensureHealth(w int) {
	for len(j.health) <= w {
		j.health = append(j.health, WorkerHealth{
			Worker: len(j.health), Alive: true, Host: len(j.health)})
	}
}

// SchedulerConfig bounds the scheduler (admission control).
type SchedulerConfig struct {
	// MaxQueued bounds the queue; submits beyond it are rejected (default
	// 64). MaxConcurrent bounds simultaneously running jobs (default 2).
	MaxQueued     int
	MaxConcurrent int
	// MaxMsgBuf caps a job's per-worker message-buffer budget; specs
	// asking for more (or for unlimited, MsgBuf <= 0, when a cap is set)
	// are clamped to it. Zero means uncapped.
	MaxMsgBuf int
	// DataDir holds per-job work directories (jobs/<id>); they are removed
	// on every terminal state. Empty uses the OS temp dir per job.
	DataDir string
	// Tracer, when non-nil, receives job_queued / job_cancelled scheduler
	// events. Metrics, when non-nil, receives service.* counters and is
	// shared with every job the scheduler runs.
	Tracer  *obs.Tracer
	Metrics *obs.Registry
	// TraceDir, when set, gives every job a JSONL trace journal
	// <TraceDir>/<jobid>.jsonl (the journal the catalog-reuse acceptance
	// check reads).
	TraceDir string
	// WALDir, when set, enables the crash-safe job WAL at
	// <WALDir>/jobs.wal: every submit and state transition is fsynced
	// before it is acknowledged, and NewScheduler replays the log — a
	// killed daemon re-enqueues the jobs it lost and resumes ones that
	// were running from their last committed checkpoint. Empty disables
	// the WAL (jobs die with the process).
	WALDir string
	// ConfigHook, when non-nil, is applied to every job's core.Config just
	// before the run starts. Chaos harnesses and tests inject fault plans
	// through it; production daemons leave it nil.
	ConfigHook func(jobID string, cfg *core.Config)
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	return c
}

// Scheduler admits jobs into a bounded priority queue and runs at most
// MaxConcurrent of them at once over a shared catalog.
type Scheduler struct {
	cfg SchedulerConfig
	cat *catalog.Catalog

	baseCtx context.Context
	stop    context.CancelFunc

	mu       sync.Mutex
	queue    []*job // ordered: higher priority first, then FIFO
	jobs     map[string]*job
	byReqID  map[string]string // JobSpec.RequestID -> job id (submit dedup)
	order    []string          // all job ids in submit order (for listing)
	running  int
	nextSeq  int64
	draining bool
	killed   bool // Kill() was called: simulate kill -9, no terminal WAL writes
	wg       sync.WaitGroup

	wal   *wal // nil when the WAL is disabled
	walCt diskio.Counter

	mSubmitted *obs.Counter
	mDone      *obs.Counter
	mFailed    *obs.Counter
	mCancelled *obs.Counter
	mRejected  *obs.Counter
}

// NewScheduler builds a scheduler over cat. When cfg.WALDir is set the
// job WAL is opened and replayed before the first dispatch: jobs a
// previous process left queued are re-enqueued, jobs it left running are
// re-enqueued with resume-from-checkpoint. Call Drain to shut it down.
func NewScheduler(cat *catalog.Catalog, cfg SchedulerConfig) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Scheduler{cfg: cfg, cat: cat, baseCtx: ctx, stop: stop,
		jobs: make(map[string]*job), byReqID: make(map[string]string)}
	reg := cfg.Metrics
	s.mSubmitted = reg.Counter("service.jobs_submitted")
	s.mDone = reg.Counter("service.jobs_done")
	s.mFailed = reg.Counter("service.jobs_failed")
	s.mCancelled = reg.Counter("service.jobs_cancelled")
	s.mRejected = reg.Counter("service.jobs_rejected")
	reg.RegisterFunc("service.jobs_running", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.running)
	})
	reg.RegisterFunc("service.queue_depth", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.queue))
	})
	reg.RegisterFunc("service.workers_degraded", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var dead int64
		for _, j := range s.jobs {
			if j.status.State.Terminal() {
				continue
			}
			for _, h := range j.health {
				if !h.Alive {
					dead++
				}
			}
		}
		return dead
	})
	if cfg.WALDir != "" {
		if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
			return nil, err
		}
		w, recs, torn, err := openWAL(filepath.Join(cfg.WALDir, "jobs.wal"), &s.walCt)
		if err != nil {
			stop()
			return nil, err
		}
		s.wal = w
		s.replayWAL(recs, torn)
	}
	return s, nil
}

// replayWAL rebuilds the job table from the log and re-admits the jobs a
// previous process never finished. Terminal jobs are kept queryable;
// queued jobs go back into the queue as-is; running jobs go back with
// the resume flag so their next attempt restores the last committed
// checkpoint from the surviving work directory.
func (s *Scheduler) replayWAL(recs []walRecord, torn bool) {
	for _, rec := range recs {
		switch rec.Kind {
		case "submit":
			if rec.Spec == nil {
				continue
			}
			j := &job{seq: rec.Seq, done: make(chan struct{})}
			j.status = JobStatus{ID: rec.ID, Spec: *rec.Spec, State: JobQueued,
				EnqueuedAt: time.Now()}
			s.jobs[rec.ID] = j
			s.order = append(s.order, rec.ID)
			if rec.Spec.RequestID != "" {
				s.byReqID[rec.Spec.RequestID] = rec.ID
			}
			if rec.Seq > s.nextSeq {
				s.nextSeq = rec.Seq
			}
		case "state":
			j, ok := s.jobs[rec.ID]
			if !ok {
				continue
			}
			j.status.State = rec.State
			j.status.Error = rec.Error
			j.status.Attempts = rec.Attempts
		}
	}
	requeued, resumed := 0, 0
	for _, id := range s.order {
		j := s.jobs[id]
		switch j.status.State {
		case JobQueued:
			requeued++
			s.enqueueLocked(j)
		case JobRunning:
			// The process died mid-attempt: the attempt is lost but its
			// work directory (and any committed checkpoint) survives.
			resumed++
			j.status.State = JobQueued
			j.status.Error = ""
			j.resume = true
			s.enqueueLocked(j)
		default:
			close(j.done) // terminal before the crash; keep it queryable
		}
	}
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Emit(obs.WALReplayEvent{Type: obs.EventWALReplay,
			Records: len(recs), Requeued: requeued, Resumed: resumed, Torn: torn})
	}
	s.maybeStartLocked() // no lock needed yet: no goroutines exist before this
}

// progFor maps a spec to its vertex program.
func progFor(spec JobSpec) (algo.Program, error) {
	switch spec.Algorithm {
	case "pagerank":
		return algo.NewPageRank(0.85), nil
	case "pagerank-converging":
		return algo.NewConvergingPageRank(0.85, 1e-3), nil
	case "sssp":
		return algo.NewSSSP(graph.VertexID(spec.Source)), nil
	case "lpa":
		return algo.NewLPA(), nil
	}
	return nil, fmt.Errorf("service: unknown algorithm %q", spec.Algorithm)
}

func engineFor(spec JobSpec) (core.Engine, error) {
	for _, e := range core.Engines {
		if string(e) == spec.Engine {
			return e, nil
		}
	}
	return "", fmt.Errorf("service: unknown engine %q", spec.Engine)
}

// Submit validates spec against the catalog and the admission rules and
// enqueues it. The returned status is a snapshot.
func (s *Scheduler) Submit(spec JobSpec) (JobStatus, error) {
	if _, err := progFor(spec); err != nil {
		return JobStatus{}, err
	}
	if _, err := engineFor(spec); err != nil {
		return JobStatus{}, err
	}
	entry, err := s.cat.Entry(spec.Graph)
	if err != nil {
		return JobStatus{}, err
	}
	if spec.Codec != "" {
		// Reject a codec mismatch at the door rather than as a failed run:
		// the catalog's layouts are framed with the ingest codec and a job
		// cannot re-encode them.
		want, err := codec.Lookup(entry.Codec())
		if err != nil {
			return JobStatus{}, err
		}
		have, err := codec.Lookup(spec.Codec)
		if err != nil {
			return JobStatus{}, err
		}
		if want.ID() != have.ID() {
			return JobStatus{}, fmt.Errorf(
				"service: job codec %q does not match graph %q ingest codec %q",
				spec.Codec, spec.Graph, entry.Codec())
		}
	}
	if s.cfg.MaxMsgBuf > 0 && (spec.MsgBuf <= 0 || spec.MsgBuf > s.cfg.MaxMsgBuf) {
		// Admission's memory budget: unlimited buffers are not available
		// on a shared daemon.
		spec.MsgBuf = s.cfg.MaxMsgBuf
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if spec.RequestID != "" {
		// Idempotent submit: the same request (a client retry after a lost
		// response, say) returns the job it already created.
		if id, ok := s.byReqID[spec.RequestID]; ok {
			return s.jobs[id].status, nil
		}
	}
	if s.draining {
		s.mRejected.Inc()
		return JobStatus{}, fmt.Errorf("service: scheduler is draining")
	}
	if len(s.queue) >= s.cfg.MaxQueued {
		s.mRejected.Inc()
		return JobStatus{}, fmt.Errorf("service: queue full (%d queued)", len(s.queue))
	}
	s.nextSeq++
	j := &job{seq: s.nextSeq, done: make(chan struct{})}
	j.status = JobStatus{
		ID:         fmt.Sprintf("job-%06d", s.nextSeq),
		Spec:       spec,
		State:      JobQueued,
		EnqueuedAt: time.Now(),
	}
	// The submit record is fsynced before the job is acknowledged: once
	// Submit returns, a killed-and-restarted daemon still runs the job. A
	// WAL that cannot take the record rejects the submit — an acknowledged
	// job that evaporates on restart is the one broken promise.
	if s.wal != nil {
		if err := s.wal.append(walRecord{Kind: "submit", ID: j.status.ID,
			Seq: j.seq, Spec: &spec}); err != nil {
			s.nextSeq--
			s.mRejected.Inc()
			return JobStatus{}, err
		}
	}
	s.jobs[j.status.ID] = j
	s.order = append(s.order, j.status.ID)
	if spec.RequestID != "" {
		s.byReqID[spec.RequestID] = j.status.ID
	}
	s.enqueueLocked(j)
	s.mSubmitted.Inc()
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Emit(obs.SchedulerEvent{Type: obs.EventJobQueued,
			JobID: j.status.ID, Queued: len(s.queue)})
	}
	s.maybeStartLocked()
	return j.status, nil
}

// enqueueLocked inserts j in priority order (stable FIFO within one
// priority). Callers hold s.mu.
func (s *Scheduler) enqueueLocked(j *job) {
	i := sort.Search(len(s.queue), func(i int) bool {
		q := s.queue[i]
		if q.status.Spec.Priority != j.status.Spec.Priority {
			return q.status.Spec.Priority < j.status.Spec.Priority
		}
		return q.seq > j.seq
	})
	s.queue = append(s.queue, nil)
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = j
}

// maybeStartLocked dispatches queue heads while capacity remains.
func (s *Scheduler) maybeStartLocked() {
	for !s.draining && s.running < s.cfg.MaxConcurrent && len(s.queue) > 0 {
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.startLocked(j)
	}
}

func (s *Scheduler) startLocked(j *job) {
	j.status.State = JobRunning
	j.status.StartedAt = time.Now()
	j.status.Attempts++
	s.walState(j)
	s.running++
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	j.cancel = cancel
	s.wg.Add(1)
	go s.runJob(j, ctx)
}

// walState appends j's current state to the WAL (best-effort: a failed
// transition append degrades a restart to re-running the job from its
// previous durable state, never to losing it). Callers hold s.mu.
func (s *Scheduler) walState(j *job) {
	if s.wal == nil || s.killed {
		return
	}
	_ = s.wal.append(walRecord{Kind: "state", ID: j.status.ID,
		State: j.status.State, Error: j.status.Error,
		Attempts: j.status.Attempts})
}

// runJob executes one attempt and applies the terminal (or retry)
// transition. Job work directories are removed on every exit path.
func (s *Scheduler) runJob(j *job, ctx context.Context) {
	defer s.wg.Done()
	res, err := s.execute(j, ctx)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	if s.killed {
		// Simulated kill -9: the process is "gone" — no terminal
		// transition is recorded anywhere, which is exactly what the WAL
		// replay must cope with (the job is still "running" on disk).
		return
	}
	switch {
	case err == nil:
		j.result = res
		st := &j.status
		st.State = JobDone
		st.Steps = res.Supersteps()
		st.SimSeconds = res.SimSeconds
		st.NetBytes = res.NetBytes
		st.IOBytes = res.IO.Total()
		st.CatalogHit = res.CatalogHit
		st.LayoutBuild = res.LayoutBuildBytes
		st.LayoutReuse = res.LayoutReusedBytes
		st.Degraded = res.Degraded
		st.Reassignments = res.Reassignments
		s.mDone.Inc()
	case errors.Is(err, context.Canceled) || errors.Is(ctx.Err(), context.Canceled):
		j.status.State = JobCancelled
		j.status.Error = err.Error()
		s.mCancelled.Inc()
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Emit(obs.SchedulerEvent{Type: obs.EventJobCancelled,
				JobID: j.status.ID, From: string(JobRunning)})
		}
	case j.status.Attempts <= j.status.Spec.Retries && !s.draining:
		// Transient failure budget left: back into the queue it goes. The
		// per-run recovery policies already absorb injected faults; this
		// retry layer covers whole-attempt failures.
		j.status.Error = err.Error()
		j.status.State = JobQueued
		s.walState(j)
		s.enqueueLocked(j)
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Emit(obs.SchedulerEvent{Type: obs.EventJobQueued,
				JobID: j.status.ID, Queued: len(s.queue)})
		}
		s.maybeStartLocked()
		return
	default:
		j.status.State = JobFailed
		j.status.Error = err.Error()
		s.mFailed.Inc()
	}
	s.walState(j)
	j.status.FinishedAt = time.Now()
	close(j.done)
	s.maybeStartLocked()
}

// execute runs one attempt of j under ctx.
func (s *Scheduler) execute(j *job, ctx context.Context) (*metrics.JobResult, error) {
	spec := j.status.Spec
	prog, err := progFor(spec)
	if err != nil {
		return nil, err
	}
	engine, err := engineFor(spec)
	if err != nil {
		return nil, err
	}
	entry, err := s.cat.Entry(spec.Graph)
	if err != nil {
		return nil, err
	}
	jobCodec := spec.Codec
	if jobCodec == "" {
		jobCodec = entry.Codec()
	}
	cfg := core.Config{
		Stores:          entry,
		JobLabel:        j.status.ID,
		MaxSteps:        spec.MaxSteps,
		MsgBuf:          spec.MsgBuf,
		Parallelism:     spec.Parallelism,
		TCP:             spec.TCP,
		Recovery:        spec.Recovery,
		MaxRestarts:     spec.MaxRestarts,
		CheckpointEvery: spec.CheckpointEvery,
		Codec:           jobCodec,
		ChargePhysical:  spec.ChargePhysical,
		Metrics:         s.cfg.Metrics,
	}
	// The recovery hook is the /workers health feed: every crash, stall
	// and adoption lands in the job's per-worker liveness table as it
	// happens, so a health query during a long run sees the current
	// cluster shape, not the post-mortem.
	cfg.OnRecovery = func(n core.RecoveryNotice) {
		s.mu.Lock()
		defer s.mu.Unlock()
		j.ensureHealth(n.Worker)
		h := &j.health[n.Worker]
		switch n.Kind {
		case "crash":
			h.Crashes++
		case "stall":
			h.Stalls++
		case "reassign":
			j.ensureHealth(n.Host)
			h.Alive = false
			h.Host = n.Host
			j.reassignments++
			j.status.Degraded = true
			j.status.Reassignments = j.reassignments
		}
	}
	if s.cfg.TraceDir != "" {
		cfg.TracePath = filepath.Join(s.cfg.TraceDir,
			fmt.Sprintf("%s-a%d.jsonl", j.status.ID, j.status.Attempts))
	}
	if s.cfg.DataDir != "" {
		cfg.WorkDir = filepath.Join(s.cfg.DataDir, "jobs", j.status.ID)
		if s.wal != nil {
			// Under the WAL a killed attempt's checkpoint files are the
			// restart's source of truth: keep them even when the run fails
			// (core would otherwise clear a failed job's artifacts), and
			// skip the removal below when the failure was a simulated kill.
			cfg.KeepFiles = true
		}
		// A successful run keeps a caller-provided WorkDir; the daemon has
		// no use for finished per-worker stores, so remove the whole job
		// directory once the attempt ends, whatever the outcome — unless
		// the daemon was "killed", in which case nothing runs at all.
		defer func() {
			s.mu.Lock()
			killed := s.killed
			s.mu.Unlock()
			if !killed {
				os.RemoveAll(cfg.WorkDir)
			}
		}()
	}
	s.mu.Lock()
	if j.resume {
		// WAL replay found this job mid-run: restore its last committed
		// checkpoint (if any verifies) instead of starting from scratch.
		// One shot — a retry after a genuine failure starts clean. A
		// checkpoint committed after a reassignment carries the ownership
		// table, so the resumed attempt continues with the shrunken worker
		// set rather than waiting on a machine that is gone.
		j.resume = false
		cfg.ResumeFromCheckpoint = true
	} else {
		// A clean (re)start brings every worker back: the health table
		// describes this attempt's cluster, not a previous one's.
		j.health, j.reassignments = nil, 0
		j.status.Degraded, j.status.Reassignments = false, 0
	}
	if spec.Recovery == "reassign" {
		j.ensureHealth(entry.Workers() - 1)
	}
	s.mu.Unlock()
	if s.cfg.ConfigHook != nil {
		s.cfg.ConfigHook(j.status.ID, &cfg)
	}
	return core.RunContext(ctx, entry.Graph(), prog, cfg, engine)
}

// Kill simulates kill -9 for tests and chaos harnesses: running jobs are
// aborted, no terminal state reaches the WAL or the job table, and the
// job work directories are left exactly as the "crash" found them. A new
// scheduler over the same WALDir/DataDir replays the log and picks the
// lost jobs back up. The scheduler is unusable afterwards.
func (s *Scheduler) Kill() {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.killed = true
	s.draining = true
	s.queue = nil
	s.mu.Unlock()
	s.stop() // abort running jobs at their next cancellation point
	s.wg.Wait()
	s.closeWAL()
}

// Cancel cancels a queued or running job. Cancelling a queued job
// finalises it immediately; a running job unwinds at its next fabric
// operation or superstep barrier. Cancelling a terminal job is an error.
func (s *Scheduler) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("service: no job %q", id)
	}
	switch j.status.State {
	case JobQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		j.status.State = JobCancelled
		j.status.Error = context.Canceled.Error()
		j.status.FinishedAt = time.Now()
		s.walState(j)
		close(j.done)
		s.mCancelled.Inc()
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Emit(obs.SchedulerEvent{Type: obs.EventJobCancelled,
				JobID: id, From: string(JobQueued)})
		}
		st := j.status
		s.mu.Unlock()
		return st, nil
	case JobRunning:
		cancel := j.cancel
		s.mu.Unlock()
		cancel(context.Canceled)
		<-j.done
		s.mu.Lock()
		st := j.status
		s.mu.Unlock()
		return st, nil
	default:
		st := j.status
		s.mu.Unlock()
		return st, fmt.Errorf("service: job %q is already %s", id, st.State)
	}
}

// Job reports one job's status snapshot.
func (s *Scheduler) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("service: no job %q", id)
	}
	return j.status, nil
}

// Result returns a finished job's full result.
func (s *Scheduler) Result(id string) (*metrics.JobResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("service: no job %q", id)
	}
	if j.status.State != JobDone {
		return nil, fmt.Errorf("service: job %q is %s, not done", id, j.status.State)
	}
	return j.result, nil
}

// Workers reports the per-job worker-health view backing GET /workers:
// one row per job that has a liveness table (reassign-policy jobs, plus
// any job that reported a recovery notice), in submission order.
func (s *Scheduler) Workers() []JobWorkers {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := []JobWorkers{}
	for _, id := range s.order {
		j := s.jobs[id]
		if len(j.health) == 0 {
			continue
		}
		out = append(out, JobWorkers{
			JobID:         id,
			State:         j.status.State,
			Degraded:      j.status.Degraded,
			Reassignments: j.status.Reassignments,
			Workers:       append([]WorkerHealth(nil), j.health...),
		})
	}
	return out
}

// Jobs lists all jobs in submission order.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status)
	}
	return out
}

// Wait blocks until job id reaches a terminal state (or ctx expires).
func (s *Scheduler) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("service: no job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.status, nil
}

// Drain shuts the scheduler down: submissions are rejected, every queued
// job is finalised as cancelled, and running jobs are given grace to
// finish before being cancelled too. It returns once every job goroutine
// has exited.
func (s *Scheduler) Drain(grace time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	queued := s.queue
	s.queue = nil
	for _, j := range queued {
		j.status.State = JobCancelled
		j.status.Error = "cancelled: service shutting down"
		j.status.FinishedAt = time.Now()
		s.walState(j)
		close(j.done)
		s.mCancelled.Inc()
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Emit(obs.SchedulerEvent{Type: obs.EventJobCancelled,
				JobID: j.status.ID, From: string(JobQueued)})
		}
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() { s.wg.Wait(); close(finished) }()
	if grace > 0 {
		tm := time.NewTimer(grace)
		select {
		case <-finished:
			tm.Stop()
			s.closeWAL()
			return
		case <-tm.C:
		}
	}
	s.stop() // cancels every running job's context
	<-finished
	s.closeWAL()
}

// closeWAL releases the WAL handle after every job goroutine has exited
// (every acknowledged record is already fsynced; close never loses one).
func (s *Scheduler) closeWAL() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		s.wal.close()
		s.wal = nil
	}
}
