package service

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"hybridgraph/internal/core"
	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/obs"
)

// TestSchedulerReassignDegraded runs a reassign-policy job whose fault
// plan kills a worker permanently: the job must finish done, be marked
// degraded in its status, and show the dead worker in the /workers view
// with its partition hosted by a survivor.
func TestSchedulerReassignDegraded(t *testing.T) {
	dir := t.TempDir()
	cat := newTestCatalog(t, dir)
	reg := obs.NewRegistry()
	s, err := NewScheduler(cat, SchedulerConfig{DataDir: dir, Metrics: reg,
		ConfigHook: func(_ string, cfg *core.Config) {
			cfg.FaultPlan = faultplan.NewPlan(faultplan.PermanentCrash(4, 1))
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(time.Minute)

	st, err := s.Submit(JobSpec{Graph: "g", Algorithm: "pagerank", Engine: "push",
		MaxSteps: 8, MsgBuf: 300, Recovery: "reassign", CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := waitAll(t, s, []string{st.ID})[st.ID]
	if got.State != JobDone {
		t.Fatalf("state = %s (%s), want done", got.State, got.Error)
	}
	if !got.Degraded || got.Reassignments != 1 {
		t.Fatalf("degraded=%v reassignments=%d, want true/1", got.Degraded, got.Reassignments)
	}
	view := s.Workers()
	if len(view) != 1 {
		t.Fatalf("workers view rows = %d, want 1", len(view))
	}
	row := view[0]
	if row.JobID != st.ID || !row.Degraded || row.Reassignments != 1 {
		t.Fatalf("workers row = %+v", row)
	}
	if len(row.Workers) != 3 {
		t.Fatalf("health entries = %d, want 3", len(row.Workers))
	}
	dead := row.Workers[1]
	if dead.Alive || dead.Host == 1 || dead.Crashes != 1 {
		t.Fatalf("dead worker health = %+v", dead)
	}
	for _, w := range []int{0, 2} {
		if h := row.Workers[w]; !h.Alive || h.Host != w {
			t.Fatalf("survivor %d health = %+v", w, h)
		}
	}
	// The result the service serves is complete and exact in shape.
	res, err := s.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Reassignments != 1 || res.MigrationIO.Total() <= 0 {
		t.Fatalf("result degraded=%v reassignments=%d migIO=%d",
			res.Degraded, res.Reassignments, res.MigrationIO.Total())
	}
}

// TestWorkersDegradedGauge: the gauge counts dead workers of live jobs
// and drops back when the jobs finish.
func TestWorkersDegradedGauge(t *testing.T) {
	dir := t.TempDir()
	cat := newTestCatalog(t, dir)
	reg := obs.NewRegistry()
	s, err := NewScheduler(cat, SchedulerConfig{DataDir: dir, Metrics: reg,
		ConfigHook: func(_ string, cfg *core.Config) {
			cfg.FaultPlan = faultplan.NewPlan(faultplan.PermanentCrash(3, 2))
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(time.Minute)
	st, err := s.Submit(JobSpec{Graph: "g", Algorithm: "sssp", Engine: "b-pull",
		MaxSteps: 8, MsgBuf: 300, Recovery: "reassign", CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := waitAll(t, s, []string{st.ID})[st.ID]
	if got.State != JobDone {
		t.Fatalf("state = %s (%s), want done", got.State, got.Error)
	}
	// Terminal job: its dead worker no longer counts against the gauge.
	if g := reg.Snapshot()["service.workers_degraded"]; g != 0 {
		t.Fatalf("workers_degraded = %d after the job finished, want 0", g)
	}
}

// TestSubmitRequestIDDedup: the same RequestID enqueues exactly one job,
// whichever submit carried it first, and survives a WAL replay.
func TestSubmitRequestIDDedup(t *testing.T) {
	dir := t.TempDir()
	cat := newTestCatalog(t, dir)
	s, err := NewScheduler(cat, SchedulerConfig{DataDir: dir,
		WALDir: dir + "/wal"})
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Graph: "g", Algorithm: "pagerank", Engine: "push",
		MaxSteps: 4, MsgBuf: 300, RequestID: "req-abc"}
	a, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("duplicate submit created a second job: %s vs %s", a.ID, b.ID)
	}
	if n := len(s.Jobs()); n != 1 {
		t.Fatalf("jobs = %d, want 1", n)
	}
	waitAll(t, s, []string{a.ID})
	s.Drain(time.Minute)

	// A restarted daemon rebuilds the dedup index from the WAL: the retry
	// of an old request still lands on the old job.
	s2, err := NewScheduler(cat, SchedulerConfig{DataDir: dir,
		WALDir: dir + "/wal"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(time.Minute)
	c, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != a.ID {
		t.Fatalf("post-restart duplicate submit created %s, want %s", c.ID, a.ID)
	}
}

// flakyTransport fails the first n round trips at the connection level,
// then delegates to the default transport.
type flakyTransport struct {
	fails atomic.Int32
	next  http.RoundTripper
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.fails.Add(-1) >= 0 {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("connection refused")}
	}
	return f.next.RoundTrip(req)
}

// TestClientRetriesIdempotent: reads and RequestID-carrying submits ride
// out transient connection failures; a submit without a RequestID
// surfaces the first connection error instead of risking a double run.
func TestClientRetriesIdempotent(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", DataDir: dir, WALDir: "off"})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	defer srv.Shutdown(context.Background())

	newFlaky := func(fails int32) *Client {
		ft := &flakyTransport{next: http.DefaultTransport}
		ft.fails.Store(fails)
		c := NewClient("http://" + srv.Addr)
		c.HTTPClient = &http.Client{Transport: ft}
		c.Backoff = time.Millisecond
		return c
	}

	if _, err := newFlaky(0).Ingest(ctx, IngestRequest{Name: "g", Workers: 3,
		Generator: &GenSpec{Kind: "uniform", Vertices: 200, Edges: 1200, Seed: 3}}); err != nil {
		t.Fatal(err)
	}
	// A read retries through two dead connections.
	if _, err := newFlaky(2).Graphs(ctx); err != nil {
		t.Fatalf("Graphs did not ride out connection failures: %v", err)
	}
	// A keyed submit retries and lands exactly one job.
	if _, err := newFlaky(2).Submit(ctx, JobSpec{Graph: "g", Algorithm: "pagerank",
		Engine: "push", MaxSteps: 3, MsgBuf: 200, RequestID: "retry-1"}); err != nil {
		t.Fatalf("keyed submit did not ride out connection failures: %v", err)
	}
	if jobs, err := newFlaky(0).Jobs(ctx); err != nil || len(jobs) != 1 {
		t.Fatalf("jobs after keyed retry = %d (%v), want 1", len(jobs), err)
	}
	// An unkeyed submit must not be retried: the first connection error
	// surfaces and no job is created by the failed attempt.
	if _, err := newFlaky(1).Submit(ctx, JobSpec{Graph: "g", Algorithm: "pagerank",
		Engine: "push", MaxSteps: 3, MsgBuf: 200}); err == nil {
		t.Fatal("unkeyed submit swallowed a connection error via retry")
	}
	if jobs, err := newFlaky(0).Jobs(ctx); err != nil || len(jobs) != 1 {
		t.Fatalf("jobs after unkeyed failure = %d (%v), want still 1", len(jobs), err)
	}
	// HTTP-level errors are terminal even for idempotent requests: a 404
	// returns immediately rather than burning the retry budget.
	c := newFlaky(0)
	c.MaxRetries = 10
	start := time.Now()
	if _, err := c.Job(ctx, "job-999999"); err == nil {
		t.Fatal("Job on a missing id should fail")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("HTTP error was retried; it must return immediately")
	}

	// The /workers endpoint answers (empty view, no reassign jobs ran).
	if view, err := newFlaky(1).Workers(ctx); err != nil || view == nil || len(view) != 0 {
		t.Fatalf("workers view = %v (%v), want empty list", view, err)
	}
}
