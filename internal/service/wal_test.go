package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hybridgraph/internal/diskio"
	"hybridgraph/internal/obs"
)

// TestWALTornTailStopsCleanly exercises the WAL file format directly:
// intact records replay, a torn tail (a crash mid-append) is detected and
// skipped rather than erroring, and the next append overwrites it.
func TestWALTornTailStopsCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	ct := &diskio.Counter{}

	w, recs, torn, err := openWAL(path, ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || torn {
		t.Fatalf("fresh WAL: %d records, torn=%v", len(recs), torn)
	}
	spec := JobSpec{Graph: "g", Algorithm: "pagerank", Engine: "push"}
	for i := 1; i <= 3; i++ {
		if err := w.append(walRecord{Kind: "submit", ID: "job-1", Seq: int64(i), Spec: &spec}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-append leaves a frame the platter saw only part of.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0, 0, 0, 0xde}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w, recs, torn, err = openWAL(path, ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || !torn {
		t.Fatalf("after torn tail: %d records, torn=%v, want 3 intact and torn", len(recs), torn)
	}
	if recs[2].Seq != 3 || recs[2].Spec == nil || recs[2].Spec.Algorithm != "pagerank" {
		t.Fatalf("record 3 did not round-trip: %+v", recs[2])
	}
	// The next append lands where the torn tail began.
	if err := w.append(walRecord{Kind: "state", ID: "job-1", State: JobDone, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	w.close()
	_, recs, torn, err = openWAL(path, ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || torn {
		t.Fatalf("after overwrite append: %d records, torn=%v, want 4 clean", len(recs), torn)
	}
	if recs[3].State != JobDone {
		t.Fatalf("record 4 state = %s, want done", recs[3].State)
	}
}

// TestWALKillRestartRequeuesAndResumes is the crash-safety acceptance
// test: a daemon killed with one checkpointing job running and another
// queued must, on restart over the same WAL and data directory, resume
// the running job from its last committed checkpoint and re-run the
// queued one — both to completion, byte-identical to an undisturbed run.
func TestWALKillRestartRequeuesAndResumes(t *testing.T) {
	dir := t.TempDir()
	cat := newTestCatalog(t, dir)
	walDir := filepath.Join(dir, "wal")

	// Baseline values from an undisturbed scheduler (no WAL, own jobs dir).
	base, err := NewScheduler(cat, SchedulerConfig{MaxConcurrent: 1,
		DataDir: filepath.Join(dir, "base")})
	if err != nil {
		t.Fatal(err)
	}
	ckptSpec := JobSpec{Graph: "g", Algorithm: "pagerank", Engine: "push",
		MaxSteps: 40, MsgBuf: 300, Recovery: "checkpoint", CheckpointEvery: 2}
	plainSpec := JobSpec{Graph: "g", Algorithm: "pagerank", Engine: "b-pull",
		MaxSteps: 8, MsgBuf: 300}
	bst, err := base.Submit(ckptSpec)
	if err != nil {
		t.Fatal(err)
	}
	bst2, err := base.Submit(plainSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, base, []string{bst.ID, bst2.ID})
	cleanCkpt, err := base.Result(bst.ID)
	if err != nil {
		t.Fatal(err)
	}
	cleanPlain, err := base.Result(bst2.ID)
	if err != nil {
		t.Fatal(err)
	}
	base.Drain(time.Minute)

	// First incarnation: one slot, so the checkpointing job runs and the
	// plain job queues behind it. Kill once a checkpoint has committed.
	tracer, err := obs.OpenTracer(filepath.Join(dir, "service.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := SchedulerConfig{MaxConcurrent: 1, DataDir: dir, WALDir: walDir, Tracer: tracer}
	s1, err := NewScheduler(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := s1.Submit(ckptSpec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s1.Submit(plainSpec)
	if err != nil {
		t.Fatal(err)
	}
	workDir := filepath.Join(dir, "jobs", st1.ID)
	deadline := time.Now().Add(20 * time.Second)
	for {
		if m, _ := filepath.Glob(filepath.Join(workDir, "ckpt-*.commit")); len(m) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint committed before the deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s1.Kill()

	// The simulated kill -9 leaves the running job's directory (and its
	// committed checkpoint) exactly as the crash found it.
	if m, _ := filepath.Glob(filepath.Join(workDir, "ckpt-*.commit")); len(m) == 0 {
		t.Fatal("kill removed the running job's checkpoint files")
	}

	// Second incarnation over the same WAL: both jobs come back and finish.
	s2, err := NewScheduler(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(time.Minute)
	sts := waitAll(t, s2, []string{st1.ID, st2.ID})
	for id, st := range sts {
		if st.State != JobDone {
			t.Fatalf("%s after restart: state %s (%s), want done", id, st.State, st.Error)
		}
	}
	res1, err := s2.Result(st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Restores == 0 {
		t.Fatal("resumed job restored no checkpoint: it recomputed from scratch")
	}
	res2, err := s2.Result(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	for v := range cleanCkpt.Values {
		if res1.Values[v] != cleanCkpt.Values[v] {
			t.Fatalf("resumed job: vertex %d = %g, undisturbed run has %g",
				v, res1.Values[v], cleanCkpt.Values[v])
		}
	}
	for v := range cleanPlain.Values {
		if res2.Values[v] != cleanPlain.Values[v] {
			t.Fatalf("requeued job: vertex %d = %g, undisturbed run has %g",
				v, res2.Values[v], cleanPlain.Values[v])
		}
	}
	// New submissions must not collide with replayed job ids.
	st3, err := s2.Submit(plainSpec)
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID == st1.ID || st3.ID == st2.ID {
		t.Fatalf("post-restart submit reused id %s", st3.ID)
	}
	waitAll(t, s2, []string{st3.ID})

	tracer.Close()
	journal, err := os.ReadFile(filepath.Join(dir, "service.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(journal), `"wal_replay"`) {
		t.Fatal("service journal has no wal_replay event")
	}
}

// TestWALTerminalStatesDoNotReplay checks the other half of the replay
// contract: jobs that finished (done, failed or cancelled) before the
// restart stay terminal and queryable — they are never re-run.
func TestWALTerminalStatesDoNotReplay(t *testing.T) {
	dir := t.TempDir()
	cat := newTestCatalog(t, dir)
	cfg := SchedulerConfig{MaxConcurrent: 1, DataDir: dir,
		WALDir: filepath.Join(dir, "wal")}
	s1, err := NewScheduler(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Graph: "g", Algorithm: "pagerank", Engine: "push",
		MaxSteps: 4, MsgBuf: 300}
	done, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// pushM over a non-combinable program fails every attempt.
	failed, err := s1.Submit(JobSpec{Graph: "g", Algorithm: "lpa", Engine: "pushM"})
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, s1, []string{done.ID, failed.ID})
	s1.Drain(time.Minute)

	s2, err := NewScheduler(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(time.Minute)
	stDone, err := s2.Job(done.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stDone.State != JobDone {
		t.Fatalf("finished job replayed as %s, want done", stDone.State)
	}
	stFailed, err := s2.Job(failed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stFailed.State != JobFailed || stFailed.Error == "" {
		t.Fatalf("failed job replayed as %s (%q), want failed with its error",
			stFailed.State, stFailed.Error)
	}
	if got := len(s2.Jobs()); got != 2 {
		t.Fatalf("replayed job table has %d entries, want 2", got)
	}
}
