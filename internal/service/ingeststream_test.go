package service

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hybridgraph/internal/catalog"
)

func streamEdgeList(t *testing.T, n, m int, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# vertices %d\n", n)
	for i := 0; i < m; i++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			continue
		}
		fmt.Fprintf(&buf, "%d %d\n", src, dst)
	}
	return buf.Bytes()
}

// TestIngestStreamEndpoint exercises the bulk-import API end to end:
// a gzip-compressed text body streamed with a memory budget, then a
// job over the published entry.
func TestIngestStreamEndpoint(t *testing.T) {
	_, c := startServer(t, ServerConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	input := streamEdgeList(t, 600, 7000, 3)
	var gzBuf bytes.Buffer
	zw := gzip.NewWriter(&gzBuf)
	zw.Write(input)
	zw.Close()

	resp, err := c.IngestStream(ctx, "lj", &gzBuf, catalog.StreamOptions{
		Workers: 3, BlocksPer: 2, MemBudget: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Manifest == nil || resp.Manifest.Name != "lj" || resp.Manifest.Vertices != 600 {
		t.Fatalf("manifest = %+v", resp.Manifest)
	}
	if resp.Stats == nil || resp.Stats.Edges != resp.Manifest.Edges {
		t.Fatalf("stats = %+v, manifest edges %d", resp.Stats, resp.Manifest.Edges)
	}
	if resp.Stats.Runs == 0 || resp.Stats.SpillWriteBytes == 0 {
		t.Fatalf("32k budget spilled nothing: %+v", resp.Stats)
	}

	st, err := c.Submit(ctx, JobSpec{Graph: "lj", Algorithm: "pagerank", Engine: "hybrid", MaxSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitJob(ctx, st.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone {
		t.Fatalf("job state %q: %s", final.State, final.Error)
	}
}

// TestIngestStreamEndpointServerPath covers the ?path= mode and the
// legacy JSON Path field, which now routes through the same streaming
// builder.
func TestIngestStreamEndpointServerPath(t *testing.T) {
	dataDir := t.TempDir()
	_, c := startServer(t, ServerConfig{DataDir: dataDir})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	input := streamEdgeList(t, 300, 3000, 9)
	path := filepath.Join(dataDir, "edges.el")
	if err := os.WriteFile(path, input, 0o644); err != nil {
		t.Fatal(err)
	}

	resp, err := c.IngestServerPath(ctx, "bypath", path, catalog.StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Manifest.Vertices != 300 {
		t.Fatalf("manifest = %+v", resp.Manifest)
	}

	m, err := c.Ingest(ctx, IngestRequest{Name: "legacy", Workers: 2, Path: path, MemBudget: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Vertices != 300 || m.Edges != resp.Manifest.Edges {
		t.Fatalf("legacy path manifest %dv/%de, streaming %dv/%de",
			m.Vertices, m.Edges, resp.Manifest.Vertices, resp.Manifest.Edges)
	}
	// Identical geometry and input: the two entries' files must carry
	// identical checksums whichever endpoint built them.
	for rel, want := range resp.Manifest.Files {
		if got, ok := m.Files[rel]; !ok || got != want {
			t.Fatalf("%s = %+v via legacy path, %+v via stream", rel, got, want)
		}
	}
}

// TestIngestStreamEndpointErrors maps failures: malformed body is the
// client's fault (400), duplicate names conflict (409), bad query
// parameters reject up front.
func TestIngestStreamEndpointErrors(t *testing.T) {
	_, c := startServer(t, ServerConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := c.IngestStream(ctx, "bad", bytes.NewReader([]byte("not an edge list\n")),
		catalog.StreamOptions{Workers: 2}); err == nil {
		t.Fatal("malformed body accepted")
	}
	input := streamEdgeList(t, 50, 300, 1)
	if _, err := c.IngestStream(ctx, "dup", bytes.NewReader(input), catalog.StreamOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestStream(ctx, "dup", bytes.NewReader(input), catalog.StreamOptions{Workers: 2}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := c.IngestServerPath(ctx, "nofile", "/definitely/not/there.el",
		catalog.StreamOptions{Workers: 2}); err == nil {
		t.Fatal("missing server path accepted")
	}
}
