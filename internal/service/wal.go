package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"hybridgraph/internal/diskio"
)

// The job WAL makes the scheduler's queue crash-safe: every submit and
// every state transition is appended as a CRC-framed JSON record and
// fsynced before the scheduler acknowledges it. A daemon killed mid-run
// replays the log on startup — jobs that were queued are re-enqueued,
// jobs that were running are re-enqueued with resume-from-checkpoint so
// a committed checkpoint in the job's work directory is picked up
// instead of recomputing from superstep 1 (see DESIGN.md, "Durability
// contract").
//
// Record framing:
//
//	len(4, little-endian) crc(4, IEEE over payload) payload(JSON)
//
// A torn tail — a record the process appended but the platter never
// wholly saw — fails either the length bound or the CRC; replay stops at
// the last intact record and the next append overwrites the tail. All
// WAL I/O flows through diskio, so the storage-fault layer can torture
// it like any other file.

// walRecord is one WAL entry. Kind "submit" carries the spec; kind
// "state" carries a transition.
type walRecord struct {
	Kind     string   `json:"kind"` // "submit" | "state"
	ID       string   `json:"id"`
	Seq      int64    `json:"seq,omitempty"`
	Spec     *JobSpec `json:"spec,omitempty"`
	State    JobState `json:"state,omitempty"`
	Error    string   `json:"error,omitempty"`
	Attempts int      `json:"attempts,omitempty"`
}

const walFrameHeader = 8 // len(4) + crc(4)

// wal is the append handle. Appends are serialised by the scheduler's
// own locking plus the internal offset bookkeeping here.
type wal struct {
	path string
	ct   *diskio.Counter
	f    *diskio.File
	off  int64
}

// openWAL opens (or creates) the log at path, replays every intact
// record, and positions the append offset after the last one. torn
// reports whether a damaged tail was found (and will be overwritten).
func openWAL(path string, ct *diskio.Counter) (w *wal, recs []walRecord, torn bool, err error) {
	if _, serr := os.Stat(path); os.IsNotExist(serr) {
		f, cerr := diskio.Create(path, ct)
		if cerr != nil {
			return nil, nil, false, fmt.Errorf("service: wal: %w", cerr)
		}
		return &wal{path: path, ct: ct, f: f}, nil, false, nil
	}
	f, oerr := diskio.Open(path, ct)
	if oerr != nil {
		return nil, nil, false, fmt.Errorf("service: wal: %w", oerr)
	}
	size, serr := f.Size()
	if serr != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("service: wal: %w", serr)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, rerr := f.ReadAtClass(buf, 0, diskio.SeqRead); rerr != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("service: wal: %w", rerr)
		}
	}
	var off int64
	for off < size {
		rec, n, ok := decodeWALRecord(buf[off:])
		if !ok {
			// Torn tail: everything before off is intact and trusted;
			// the tail is the record a crash interrupted. Replay stops
			// here and the next append overwrites it.
			torn = true
			break
		}
		recs = append(recs, rec)
		off += int64(n)
	}
	return &wal{path: path, ct: ct, f: f, off: off}, recs, torn, nil
}

// decodeWALRecord parses one frame from the front of b. ok is false for
// any damage: short header, length past the buffer, CRC mismatch, or
// un-unmarshalable payload.
func decodeWALRecord(b []byte) (rec walRecord, n int, ok bool) {
	if len(b) < walFrameHeader {
		return rec, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(b))
	want := binary.LittleEndian.Uint32(b[4:])
	n = walFrameHeader + plen
	if plen <= 0 || n > len(b) {
		return rec, 0, false
	}
	payload := b[walFrameHeader:n]
	if crc32.ChecksumIEEE(payload) != want {
		return rec, 0, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, 0, false
	}
	return rec, n, true
}

// append frames rec, writes it at the tail and fsyncs before returning:
// an acknowledged record survives a power cut, torn only if the crash
// interrupted this very call.
func (w *wal) append(rec walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: wal: %w", err)
	}
	frame := make([]byte, 0, walFrameHeader+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, err := w.f.WriteAtClass(frame, w.off, diskio.SeqWrite); err != nil {
		return fmt.Errorf("service: wal %s: %w", filepath.Base(w.path), err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("service: wal %s: %w", filepath.Base(w.path), err)
	}
	w.off += int64(len(frame))
	return nil
}

// close releases the file handle without syncing (append already synced
// every acknowledged record).
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
