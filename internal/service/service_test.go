package service

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hybridgraph/internal/catalog"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/obs"
)

// newTestCatalog ingests one small graph as "g".
func newTestCatalog(t *testing.T, dir string) *catalog.Catalog {
	t.Helper()
	c, err := catalog.Open(filepath.Join(dir, "catalog"))
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GenRMAT(1500, 12000, 0.57, 0.19, 0.19, 7)
	if _, err := c.Ingest("g", g, 3, 2, ""); err != nil {
		t.Fatal(err)
	}
	return c
}

func waitAll(t *testing.T, s *Scheduler, ids []string) map[string]JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out := make(map[string]JobStatus, len(ids))
	for _, id := range ids {
		st, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
		out[id] = st
	}
	return out
}

func TestSchedulerConcurrencyAndQueueing(t *testing.T) {
	dir := t.TempDir()
	cat := newTestCatalog(t, dir)
	reg := obs.NewRegistry()
	s, err := NewScheduler(cat, SchedulerConfig{MaxConcurrent: 2, DataDir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(time.Minute)

	spec := JobSpec{Graph: "g", Algorithm: "pagerank", Engine: "hybrid", MaxSteps: 10, MsgBuf: 300}
	var ids []string
	for i := 0; i < 5; i++ {
		st, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// Right after the submit burst at most MaxConcurrent run; the rest
	// queue (admission control, not fan-out).
	running, queued := 0, 0
	for _, st := range s.Jobs() {
		switch st.State {
		case JobRunning:
			running++
		case JobQueued:
			queued++
		}
	}
	if running > 2 {
		t.Fatalf("%d jobs running, admission limit is 2", running)
	}
	if running+queued < 4 {
		t.Fatalf("only %d jobs live right after submit (running=%d queued=%d)",
			running+queued, running, queued)
	}
	for id, st := range waitAll(t, s, ids) {
		if st.State != JobDone {
			t.Fatalf("%s: state %s (%s), want done", id, st.State, st.Error)
		}
		if !st.CatalogHit || st.LayoutBuild != 0 {
			t.Fatalf("%s: catalog_hit=%v layout_build=%d, want hit with zero build bytes",
				id, st.CatalogHit, st.LayoutBuild)
		}
	}
	if got := reg.Snapshot()["service.jobs_done"]; got != 5 {
		t.Fatalf("service.jobs_done = %d, want 5", got)
	}
	// All results identical: same graph, same spec, shared read-only stores.
	first, err := s.Result(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[1:] {
		res, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		for v := range first.Values {
			if res.Values[v] != first.Values[v] {
				t.Fatalf("%s: vertex %d = %g, first job %g", id, v, res.Values[v], first.Values[v])
			}
		}
	}
	// Terminal jobs leave no work directories behind.
	if m, _ := filepath.Glob(filepath.Join(dir, "jobs", "*")); len(m) != 0 {
		t.Fatalf("job directories left behind: %v", m)
	}
}

func TestQueueFullAndBufferClamp(t *testing.T) {
	dir := t.TempDir()
	cat := newTestCatalog(t, dir)
	s, err := NewScheduler(cat, SchedulerConfig{MaxConcurrent: 1, MaxQueued: 1, MaxMsgBuf: 500, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(time.Minute)

	long := JobSpec{Graph: "g", Algorithm: "pagerank", Engine: "push", MaxSteps: 30}
	st1, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Spec.MsgBuf != 500 {
		t.Fatalf("unlimited MsgBuf admitted as %d, want clamp to 500", st1.Spec.MsgBuf)
	}
	st2, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(long); err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("third submit error = %v, want queue full", err)
	}
	if _, err := s.Submit(JobSpec{Graph: "nope", Algorithm: "pagerank", Engine: "push"}); err == nil {
		t.Fatal("submit over unknown graph succeeded")
	}
	if _, err := s.Submit(JobSpec{Graph: "g", Algorithm: "bogus", Engine: "push"}); err == nil {
		t.Fatal("submit with unknown algorithm succeeded")
	}
	if _, err := s.Submit(JobSpec{Graph: "g", Algorithm: "pagerank", Engine: "bogus"}); err == nil {
		t.Fatal("submit with unknown engine succeeded")
	}
	waitAll(t, s, []string{st1.ID, st2.ID})
}

func TestPriorityOrdersQueue(t *testing.T) {
	dir := t.TempDir()
	cat := newTestCatalog(t, dir)
	s, err := NewScheduler(cat, SchedulerConfig{MaxConcurrent: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(time.Minute)

	spec := JobSpec{Graph: "g", Algorithm: "pagerank", Engine: "b-pull", MaxSteps: 5, MsgBuf: 300}
	head, err := s.Submit(spec) // occupies the single slot
	if err != nil {
		t.Fatal(err)
	}
	low := spec
	low.Priority = 0
	lowSt, err := s.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	high := spec
	high.Priority = 5
	highSt, err := s.Submit(high)
	if err != nil {
		t.Fatal(err)
	}
	sts := waitAll(t, s, []string{head.ID, lowSt.ID, highSt.ID})
	if !sts[highSt.ID].StartedAt.Before(sts[lowSt.ID].StartedAt) {
		t.Fatalf("high-priority job started %v, after low-priority %v",
			sts[highSt.ID].StartedAt, sts[lowSt.ID].StartedAt)
	}
}

func TestCancelRunningJob(t *testing.T) {
	dir := t.TempDir()
	cat := newTestCatalog(t, dir)
	s, err := NewScheduler(cat, SchedulerConfig{MaxConcurrent: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(time.Minute)

	st, err := s.Submit(JobSpec{Graph: "g", Algorithm: "pagerank", Engine: "push", MaxSteps: 500, MsgBuf: 200})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := s.Job(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	start := time.Now()
	got, err := s.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != JobCancelled {
		t.Fatalf("state after cancel = %s (%s)", got.State, got.Error)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancel of a running job took %v", d)
	}
	// Cancelling a terminal job errors; its status is still reported.
	if _, err := s.Cancel(st.ID); err == nil {
		t.Fatal("second cancel succeeded")
	}
	// The cancelled job's work directory is gone.
	if m, _ := filepath.Glob(filepath.Join(dir, "jobs", "*")); len(m) != 0 {
		t.Fatalf("cancelled job left directories: %v", m)
	}
}

func TestFailedJobRetriesThenCleansUp(t *testing.T) {
	dir := t.TempDir()
	cat := newTestCatalog(t, dir)
	s, err := NewScheduler(cat, SchedulerConfig{MaxConcurrent: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(time.Minute)

	// pushM requires a combinable program; lpa is not, so every attempt
	// fails at run time — exercising the retry and failure paths.
	st, err := s.Submit(JobSpec{Graph: "g", Algorithm: "lpa", Engine: "pushM", Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	final := waitAll(t, s, []string{st.ID})[st.ID]
	if final.State != JobFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if final.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", final.Attempts)
	}
	if final.Error == "" {
		t.Fatal("failed job has no error")
	}
	// The bug fix under test: failed jobs must not leave per-worker data
	// directories behind on any exit path.
	if m, _ := filepath.Glob(filepath.Join(dir, "jobs", "*")); len(m) != 0 {
		t.Fatalf("failed job left directories: %v", m)
	}
}

func TestDrainCancelsQueuedAndRejectsSubmits(t *testing.T) {
	dir := t.TempDir()
	cat := newTestCatalog(t, dir)
	s, err := NewScheduler(cat, SchedulerConfig{MaxConcurrent: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	spec := JobSpec{Graph: "g", Algorithm: "pagerank", Engine: "push", MaxSteps: 10, MsgBuf: 300}
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	s.Drain(30 * time.Second)
	if _, err := s.Submit(spec); err == nil {
		t.Fatal("submit after Drain succeeded")
	}
	cancelled := 0
	for _, id := range ids {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if !st.State.Terminal() {
			t.Fatalf("%s: non-terminal state %s after Drain", id, st.State)
		}
		if st.State == JobCancelled {
			cancelled++
		}
	}
	// The two queued jobs are cancelled; the running one had grace to
	// finish.
	if cancelled < 2 {
		t.Fatalf("%d jobs cancelled by Drain, want >= 2", cancelled)
	}
}
