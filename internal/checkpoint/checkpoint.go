// Package checkpoint implements superstep checkpointing for HybridGraph's
// fault tolerance: per-worker snapshots of vertex values, flag vectors and
// parked inbox messages, plus the master's record of job-level scheduling
// state (hybrid's mode history), all written through the diskio accounting
// layer as sequential writes so checkpoint overhead is charged to the same
// cost model as every other byte the system moves.
//
// Recovery must restore *mode-specific* state, not just vertex values
// (push parks messages in inboxes, b-pull re-derives them from responding
// flags and broadcast columns — Besta et al.'s push/pull communication
// asymmetry), which is why a Snapshot carries all of them.
//
// Durability protocol (the Pregel/Giraph commit rule): every worker writes
// its snapshot to a temporary file and atomically renames it into place;
// the master then writes its own record and finally an atomic commit
// marker. A checkpoint without a marker never existed — a crash mid-write
// can only lose the in-flight checkpoint, never corrupt an older one.
// Every file ends in a CRC32 of its payload, verified on read.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"hybridgraph/internal/codec"
	"hybridgraph/internal/comm"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/vertexfile"
)

const (
	magic       = "HGCK"
	version     = 1
	kindWorker  = 1
	kindMaster  = 2
	recordBytes = 32
	msgBytes    = 12
)

// Snapshot is one worker's superstep-consistent state after superstep Step:
// everything the worker needs to resume at Step+1.
type Snapshot struct {
	Step   int
	Worker int
	// Records are the worker's vertex records including both broadcast
	// columns, so b-pull's parity-indexed pulls replay correctly.
	Records []vertexfile.Record
	// Respond and Active are the flag vectors' words by superstep parity.
	Respond [2][]uint64
	Active  [2][]uint64
	// BlockRes is the per-Vblock responding indicator by parity (b-pull).
	BlockRes [2][]bool
	// Pending are the parked inbox messages by parity (push): messages
	// delivered during Step for consumption at Step+1.
	Pending [2][]comm.Msg
}

// Master is the job-level state the master commits with a checkpoint:
// hybrid's mode schedule and switching history, without which a restored
// switcher would re-learn from nothing.
type Master struct {
	Step       int
	Modes      []string
	QtSigns    []bool
	LastSwitch int
	Rco        float64
	PrevAgg    float64

	// Block-ownership state under the reassign recovery policy, written as
	// optional trailing fields (a record from before this version simply
	// lacks them; Epoch 0 means "no ownership information"). Dead marks
	// permanently-lost workers; Hosts[w] names the survivor serving worker
	// w's partition (w itself when alive). A resume applies them before the
	// first superstep so a restarted daemon continues with the shrunken
	// worker set instead of waiting on a machine that no longer exists.
	Epoch int64
	Dead  []bool
	Hosts []int
}

// WriteSnapshot atomically writes s to path, charging the bytes to ct as
// sequential writes. Under a non-trivial codec the serialized snapshot
// is stored as one compressed frame — the logical charge and the
// returned size are the uncompressed length either way, so checkpoint
// cost in the paper's model is codec-independent. Returns the logical
// file size.
func WriteSnapshot(path string, ct *diskio.Counter, s *Snapshot, cdc codec.Codec) (int64, error) {
	p := make([]byte, 0, 64+len(s.Records)*recordBytes)
	p = appendU32(p, kindWorker)
	p = appendU32(p, uint32(s.Step))
	p = appendU32(p, uint32(s.Worker))
	p = appendU32(p, uint32(len(s.Records)))
	for _, r := range s.Records {
		p = appendU32(p, uint32(r.ID))
		p = appendU32(p, r.OutDeg)
		p = appendF64(p, r.Val)
		p = appendF64(p, r.Bcast[0])
		p = appendF64(p, r.Bcast[1])
	}
	for par := 0; par < 2; par++ {
		p = appendWords(p, s.Respond[par])
	}
	for par := 0; par < 2; par++ {
		p = appendWords(p, s.Active[par])
	}
	for par := 0; par < 2; par++ {
		p = appendU32(p, uint32(len(s.BlockRes[par])))
		for _, b := range s.BlockRes[par] {
			p = append(p, boolByte(b))
		}
	}
	for par := 0; par < 2; par++ {
		p = appendU32(p, uint32(len(s.Pending[par])))
		for _, m := range s.Pending[par] {
			p = appendU32(p, uint32(m.Dst))
			p = appendF64(p, m.Val)
		}
	}
	return writeFile(path, ct, p, cdc)
}

// ReadSnapshot reads and CRC-verifies a worker snapshot, charging the bytes
// to ct as sequential reads. The file is self-describing: a codec-framed
// snapshot is detected by its frame magic and decoded transparently, with
// the logical charge equal to the uncompressed read.
func ReadSnapshot(path string, ct *diskio.Counter) (*Snapshot, error) {
	p, err := readFile(path, ct)
	if err != nil {
		return nil, err
	}
	r := &reader{b: p}
	if k := r.u32(); k != kindWorker && r.err == nil {
		return nil, fmt.Errorf("checkpoint: %s is not a worker snapshot (kind %d)", path, k)
	}
	s := &Snapshot{Step: int(r.u32()), Worker: int(r.u32())}
	n := int(r.u32())
	if r.err == nil && n >= 0 && n <= r.remaining()/recordBytes {
		s.Records = make([]vertexfile.Record, n)
		for i := range s.Records {
			s.Records[i] = vertexfile.Record{
				ID:     graph.VertexID(r.u32()),
				OutDeg: r.u32(),
				Val:    r.f64(),
				Bcast:  [2]float64{r.f64(), r.f64()},
			}
		}
	} else if r.err == nil {
		r.err = fmt.Errorf("checkpoint: implausible record count %d", n)
	}
	for par := 0; par < 2; par++ {
		s.Respond[par] = r.words()
	}
	for par := 0; par < 2; par++ {
		s.Active[par] = r.words()
	}
	for par := 0; par < 2; par++ {
		n := int(r.u32())
		if r.err == nil && n > 0 && n <= r.remaining() {
			s.BlockRes[par] = make([]bool, n)
			for i := range s.BlockRes[par] {
				s.BlockRes[par][i] = r.u8() != 0
			}
		}
	}
	for par := 0; par < 2; par++ {
		n := int(r.u32())
		if r.err == nil && n > 0 && n <= r.remaining()/msgBytes {
			s.Pending[par] = make([]comm.Msg, n)
			for i := range s.Pending[par] {
				s.Pending[par][i] = comm.Msg{Dst: graph.VertexID(r.u32()), Val: r.f64()}
			}
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, r.err)
	}
	return s, nil
}

// WriteMaster atomically writes the master record to path.
func WriteMaster(path string, ct *diskio.Counter, m *Master, cdc codec.Codec) (int64, error) {
	p := make([]byte, 0, 64+len(m.Modes)*8)
	p = appendU32(p, kindMaster)
	p = appendU32(p, uint32(m.Step))
	p = appendU32(p, uint32(len(m.Modes)))
	for _, mode := range m.Modes {
		p = append(p, byte(len(mode)))
		p = append(p, mode...)
	}
	p = appendU32(p, uint32(len(m.QtSigns)))
	for _, s := range m.QtSigns {
		p = append(p, boolByte(s))
	}
	p = appendU64(p, uint64(int64(m.LastSwitch)))
	p = appendF64(p, m.Rco)
	p = appendF64(p, m.PrevAgg)
	if m.Epoch != 0 {
		p = appendU64(p, uint64(m.Epoch))
		p = appendU32(p, uint32(len(m.Dead)))
		for _, d := range m.Dead {
			p = append(p, boolByte(d))
		}
		p = appendU32(p, uint32(len(m.Hosts)))
		for _, h := range m.Hosts {
			p = appendU64(p, uint64(int64(h)))
		}
	}
	return writeFile(path, ct, p, cdc)
}

// ReadMaster reads and CRC-verifies a master record.
func ReadMaster(path string, ct *diskio.Counter) (*Master, error) {
	p, err := readFile(path, ct)
	if err != nil {
		return nil, err
	}
	r := &reader{b: p}
	if k := r.u32(); k != kindMaster && r.err == nil {
		return nil, fmt.Errorf("checkpoint: %s is not a master record (kind %d)", path, k)
	}
	m := &Master{Step: int(r.u32())}
	n := int(r.u32())
	if r.err == nil && n >= 0 && n <= r.remaining() {
		m.Modes = make([]string, n)
		for i := range m.Modes {
			l := int(r.u8())
			m.Modes[i] = r.str(l)
		}
	}
	n = int(r.u32())
	if r.err == nil && n > 0 && n <= r.remaining() {
		m.QtSigns = make([]bool, n)
		for i := range m.QtSigns {
			m.QtSigns[i] = r.u8() != 0
		}
	}
	m.LastSwitch = int(int64(r.u64()))
	m.Rco = r.f64()
	m.PrevAgg = r.f64()
	if r.err == nil && r.remaining() > 0 {
		// Optional ownership trailer (reassign policy).
		m.Epoch = int64(r.u64())
		n = int(r.u32())
		if r.err == nil && n > 0 && n <= r.remaining() {
			m.Dead = make([]bool, n)
			for i := range m.Dead {
				m.Dead[i] = r.u8() != 0
			}
		}
		n = int(r.u32())
		if r.err == nil && n > 0 && n <= r.remaining()/8 {
			m.Hosts = make([]int, n)
			for i := range m.Hosts {
				m.Hosts[i] = int(int64(r.u64()))
			}
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, r.err)
	}
	return m, nil
}

// Coordinator names a job's checkpoint files under its work directory and
// implements the master's commit protocol.
type Coordinator struct {
	Dir string
}

// SnapshotPath names worker w's snapshot of the checkpoint at step.
func (c Coordinator) SnapshotPath(step, worker int) string {
	return filepath.Join(c.Dir, fmt.Sprintf("ckpt-%06d-w%d.dat", step, worker))
}

// MasterPath names the master record of the checkpoint at step.
func (c Coordinator) MasterPath(step int) string {
	return filepath.Join(c.Dir, fmt.Sprintf("ckpt-%06d-master.dat", step))
}

func (c Coordinator) commitPath(step int) string {
	return filepath.Join(c.Dir, fmt.Sprintf("ckpt-%06d.commit", step))
}

// Commit atomically publishes the checkpoint at step: after Commit returns,
// LastCommitted will report it. Call only once every snapshot and the
// master record are durably in place. The marker is written, fsynced and
// renamed through the diskio fault layer: a commit marker that survives
// a power cut while its snapshots do not is exactly the torn state the
// fault campaign exists to catch.
func (c Coordinator) Commit(step int, ct *diskio.Counter) error {
	return diskio.WriteFileSync(c.commitPath(step), []byte(strconv.Itoa(step)), ct, diskio.SeqWrite)
}

// LastCommitted reports the newest committed checkpoint step, if any.
// Uncommitted (marker-less) snapshot files are invisible here, which is
// what makes a crash mid-checkpoint harmless.
func (c Coordinator) LastCommitted() (int, bool) {
	steps := c.Committed()
	if len(steps) == 0 {
		return 0, false
	}
	return steps[0], true
}

// Committed lists every committed checkpoint step, newest first. More
// than one exists when the retention policy keeps a fallback: a restore
// that fails to verify the newest checkpoint (torn by a storage fault)
// walks down this list before giving up.
func (c Coordinator) Committed() []int {
	ents, err := os.ReadDir(c.Dir)
	if err != nil {
		return nil
	}
	var steps []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".commit") {
			continue
		}
		s, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".commit"))
		if err != nil {
			continue
		}
		steps = append(steps, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(steps)))
	return steps
}

// Remove deletes the checkpoint at step (marker first, so a partial removal
// degrades to an uncommitted checkpoint, never a corrupt committed one).
// Removal failures are joined and reported: a surviving commit marker
// would make a later LastCommitted prefer this stale checkpoint over a
// newer one whose files it then fails to verify, so callers must at least
// log the error. Already-missing files are not errors.
func (c Coordinator) Remove(step, workers int) error {
	var errs []error
	rm := func(path string) {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			errs = append(errs, err)
		}
	}
	rm(c.commitPath(step))
	rm(c.MasterPath(step))
	for w := 0; w < workers; w++ {
		rm(c.SnapshotPath(step, w))
	}
	return errors.Join(errs...)
}

// writeFile frames payload with magic, version and CRC and writes it to
// path atomically (tmp + fsync + rename) as one sequential write. The
// fsync before the rename is the durability half of the commit rule:
// without it a power cut can leave a fully renamed, fully referenced
// snapshot whose bytes never reached the platter.
func writeFile(path string, ct *diskio.Counter, payload []byte, cdc codec.Codec) (int64, error) {
	buf := make([]byte, 0, len(magic)+8+len(payload)+4)
	buf = append(buf, magic...)
	buf = appendU32(buf, version)
	buf = append(buf, payload...)
	buf = appendU32(buf, crc32.ChecksumIEEE(payload))
	if codec.IsNone(cdc) {
		if err := diskio.WriteFileSync(path, buf, ct, diskio.SeqWrite); err != nil {
			return 0, err
		}
		return int64(len(buf)), nil
	}
	// Compressed: the whole HGCK image becomes one codec frame. The
	// physical bytes land on ct's twin, the logical charge and returned
	// size stay the uncompressed length.
	frame := codec.AppendFrame(nil, cdc, buf)
	if err := diskio.WriteFileSyncDual(path, frame, int64(len(buf)), ct, diskio.SeqWrite); err != nil {
		return 0, err
	}
	return int64(len(buf)), nil
}

// readFile reads a framed file sequentially, verifies magic, version and
// CRC, and returns the payload. Codec-framed files are sniffed by their
// frame magic (format detection is uncharged metadata introspection, like
// os.Stat): the physical frame is read on ct's twin and the decoded HGCK
// image charged to ct, so logical accounting matches an uncompressed read.
func readFile(path string, ct *diskio.Counter) ([]byte, error) {
	framed, err := sniffFramed(path)
	if err != nil {
		return nil, err
	}
	var buf []byte
	if framed {
		f, err := diskio.OpenRead(path, diskio.PhysFor(ct))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		size, err := f.Size()
		if err != nil {
			return nil, err
		}
		raw := make([]byte, size)
		if _, err := f.ReadAtClass(raw, 0, diskio.SeqRead); err != nil {
			return nil, err
		}
		var n int
		buf, n, err = codec.DecodeFrame(nil, raw)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
		}
		if int64(n) != size {
			return nil, fmt.Errorf("checkpoint: %s: %d trailing bytes after frame: %w", path, size-int64(n), codec.ErrCorrupt)
		}
		diskio.NewAccountant(ct).ReadAtClass(int64(len(buf)), 0, diskio.SeqRead)
	} else {
		f, err := diskio.Open(path, ct)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		size, err := f.Size()
		if err != nil {
			return nil, err
		}
		if size < int64(len(magic))+8+4 {
			return nil, fmt.Errorf("checkpoint: %s truncated (%d bytes)", path, size)
		}
		buf = make([]byte, size)
		if _, err := f.ReadAtClass(buf, 0, diskio.SeqRead); err != nil {
			return nil, err
		}
	}
	if int64(len(buf)) < int64(len(magic))+8+4 {
		return nil, fmt.Errorf("checkpoint: %s truncated (%d bytes)", path, len(buf))
	}
	if string(buf[:len(magic)]) != magic {
		return nil, fmt.Errorf("checkpoint: %s has bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(buf[len(magic):]); v != version {
		return nil, fmt.Errorf("checkpoint: %s has version %d, want %d", path, v, version)
	}
	payload := buf[len(magic)+4 : len(buf)-4]
	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("checkpoint: %s CRC mismatch (got %08x, want %08x)", path, got, want)
	}
	return payload, nil
}

// sniffFramed peeks at the first bytes of path without charging I/O.
// Raw checkpoint files start "HGCK", codec frames "HGCB" — the two can
// never collide, so four bytes decide the format.
func sniffFramed(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var b [4]byte
	n, _ := io.ReadFull(f, b[:])
	return n == 4 && string(b[:]) == codec.FrameMagic, nil
}

// SnapshotLogicalSize reports the logical byte size of the checkpoint
// file at path: the frame header's declared logical length for a
// codec-framed file, the raw file size otherwise. Reassignment's Cmig
// uses it so migration cost stays in logical bytes under any codec.
// Uncharged, like the os.Stat it replaces.
func SnapshotLogicalSize(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [codec.HeaderSize]byte
	n, _ := io.ReadFull(f, hdr[:])
	if n >= 4 && string(hdr[:4]) == codec.FrameMagic {
		h, err := codec.ParseHeader(hdr[:n])
		if err != nil {
			return 0, fmt.Errorf("checkpoint: %s: %w", path, err)
		}
		return int64(h.LogicalLen), nil
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

func appendWords(b []byte, w []uint64) []byte {
	b = appendU32(b, uint32(len(w)))
	for _, v := range w {
		b = appendU64(b, v)
	}
	return b
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// reader decodes a payload with sticky error tracking: after the first
// malformed field every subsequent read is a zero value and the error
// surfaces once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.remaining() < n {
		r.err = fmt.Errorf("payload truncated at offset %d (need %d bytes)", r.off, n)
		return false
	}
	return true
}

func (r *reader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str(n int) string {
	if !r.need(n) {
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

func (r *reader) words() []uint64 {
	n := int(r.u32())
	if r.err != nil || n == 0 {
		return nil
	}
	if n < 0 || n > r.remaining()/8 {
		r.err = fmt.Errorf("implausible word count %d", n)
		return nil
	}
	w := make([]uint64, n)
	for i := range w {
		w[i] = r.u64()
	}
	return w
}
