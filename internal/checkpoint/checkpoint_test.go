package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"hybridgraph/internal/comm"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/vertexfile"
)

func testSnapshot() *Snapshot {
	s := &Snapshot{Step: 6, Worker: 2}
	for i := 0; i < 100; i++ {
		s.Records = append(s.Records, vertexfile.Record{
			ID: graph.VertexID(200 + i), OutDeg: uint32(i % 7), Val: float64(i) * 1.5,
			Bcast: [2]float64{float64(i), -float64(i)},
		})
	}
	s.Respond = [2][]uint64{{0xdeadbeef, 1}, {0, 0xffff}}
	s.Active = [2][]uint64{{7}, {9}}
	s.BlockRes = [2][]bool{{true, false, true}, {false, false, false}}
	s.Pending = [2][]comm.Msg{nil, {{Dst: 205, Val: 3.25}, {Dst: 299, Val: -1}}}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ct := &diskio.Counter{}
	path := filepath.Join(dir, "snap.dat")
	s := testSnapshot()
	n, err := WriteSnapshot(path, ct, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("zero bytes written")
	}
	if got := ct.Bytes(diskio.SeqWrite); got != n {
		t.Fatalf("seq-write bytes = %d, want %d (checkpoints must hit the cost model)", got, n)
	}
	got, err := ReadSnapshot(path, ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 6 || got.Worker != 2 || len(got.Records) != len(s.Records) {
		t.Fatalf("header = %+v", got)
	}
	for i, r := range s.Records {
		if got.Records[i] != r {
			t.Fatalf("record %d = %+v, want %+v", i, got.Records[i], r)
		}
	}
	for p := 0; p < 2; p++ {
		for i, w := range s.Respond[p] {
			if got.Respond[p][i] != w {
				t.Fatalf("respond[%d][%d] = %x", p, i, got.Respond[p][i])
			}
		}
		for i, b := range s.BlockRes[p] {
			if got.BlockRes[p][i] != b {
				t.Fatalf("blockRes[%d][%d] = %v", p, i, got.BlockRes[p][i])
			}
		}
		for i, m := range s.Pending[p] {
			if got.Pending[p][i] != m {
				t.Fatalf("pending[%d][%d] = %+v", p, i, got.Pending[p][i])
			}
		}
	}
	if ct.Bytes(diskio.SeqRead) != n {
		t.Fatalf("seq-read bytes = %d, want %d", ct.Bytes(diskio.SeqRead), n)
	}
}

func TestMasterRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "master.dat")
	ct := &diskio.Counter{}
	m := &Master{Step: 8, Modes: []string{"b-pull", "push", "b-pull"},
		QtSigns: []bool{true, false, true}, LastSwitch: -10, Rco: 0.4, PrevAgg: 1.25}
	if _, err := WriteMaster(path, ct, m, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMaster(path, ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 8 || got.LastSwitch != -10 || got.Rco != 0.4 || got.PrevAgg != 1.25 {
		t.Fatalf("master = %+v", got)
	}
	for i, mode := range m.Modes {
		if got.Modes[i] != mode {
			t.Fatalf("modes[%d] = %q", i, got.Modes[i])
		}
	}
	for i, s := range m.QtSigns {
		if got.QtSigns[i] != s {
			t.Fatalf("signs[%d] = %v", i, got.QtSigns[i])
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.dat")
	ct := &diskio.Counter{}
	if _, err := WriteSnapshot(path, ct, testSnapshot(), nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path, ct); err == nil {
		t.Fatal("flipped byte not detected by CRC")
	}
	// Truncation is also rejected.
	if err := os.WriteFile(path, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path, ct); err == nil {
		t.Fatal("truncated file not rejected")
	}
}

func TestCommitProtocol(t *testing.T) {
	dir := t.TempDir()
	c := Coordinator{Dir: dir}
	if _, ok := c.LastCommitted(); ok {
		t.Fatal("empty dir reported a committed checkpoint")
	}
	ct := &diskio.Counter{}
	// Snapshots written but not committed are invisible.
	if _, err := WriteSnapshot(c.SnapshotPath(4, 0), ct, testSnapshot(), nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LastCommitted(); ok {
		t.Fatal("uncommitted checkpoint visible")
	}
	if err := c.Commit(4, &diskio.Counter{}); err != nil {
		t.Fatal(err)
	}
	if s, ok := c.LastCommitted(); !ok || s != 4 {
		t.Fatalf("LastCommitted = %d, %v; want 4", s, ok)
	}
	if err := c.Commit(8, &diskio.Counter{}); err != nil {
		t.Fatal(err)
	}
	if s, _ := c.LastCommitted(); s != 8 {
		t.Fatalf("LastCommitted = %d, want 8", s)
	}
	c.Remove(8, 1)
	if s, ok := c.LastCommitted(); !ok || s != 4 {
		t.Fatalf("after Remove(8): %d, %v; want 4", s, ok)
	}
}

func TestRemoveReportsErrors(t *testing.T) {
	c := Coordinator{Dir: t.TempDir()}
	ct := &diskio.Counter{}
	if _, err := WriteMaster(c.MasterPath(3), ct, &Master{Step: 3}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(3, &diskio.Counter{}); err != nil {
		t.Fatal(err)
	}
	// A non-empty directory squatting on a snapshot path makes os.Remove
	// fail, standing in for any filesystem-level prune failure.
	snap := c.SnapshotPath(3, 0)
	if err := os.MkdirAll(filepath.Join(snap, "blocker"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(3, 1); err == nil {
		t.Fatal("Remove swallowed a deletion failure")
	}
	// The marker went first regardless, so the stale checkpoint can no
	// longer shadow a newer one.
	if _, ok := c.LastCommitted(); ok {
		t.Fatal("commit marker survived a failed Remove")
	}
	if err := os.RemoveAll(snap); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(3, 1); err != nil {
		t.Fatalf("Remove of missing files must be clean, got %v", err)
	}
}
