// Package metrics defines the per-superstep statistics every engine
// reports, the performance metric Q^t of Eq. (11) that drives hybrid's
// switching, and the cost model that converts byte tallies into the
// simulated seconds the experiment harness reports (see DESIGN.md: the
// paper's own evaluation reasons in bytes weighted by the Table 3
// throughputs, which is exactly this conversion).
package metrics

import (
	"fmt"

	"hybridgraph/internal/diskio"
)

// IOBreakdown splits a superstep's disk traffic into the components of
// Eqs. (7) and (8), in bytes.
type IOBreakdown struct {
	Vt     int64 // vertex-value reads+writes of the update scan (both engines)
	Et     int64 // push: adjacency edges read (E^t)
	Ebar   int64 // b-pull: Eblock edge bytes read (Ē^t)
	Ft     int64 // b-pull: fragment auxiliary bytes read (F^t)
	Vrr    int64 // pull/b-pull: random svertex-value reads (V_rr^t)
	MdiskW int64 // push: spilled message bytes written
	MdiskR int64 // push: spilled message bytes read back
}

// Total reports the breakdown's byte sum.
func (b IOBreakdown) Total() int64 {
	return b.Vt + b.Et + b.Ebar + b.Ft + b.Vrr + b.MdiskW + b.MdiskR
}

// CioPush evaluates Eq. (7) for this breakdown.
func (b IOBreakdown) CioPush() int64 { return b.Vt + b.Et + b.MdiskW + b.MdiskR }

// CioBpull evaluates Eq. (8) for this breakdown.
func (b IOBreakdown) CioBpull() int64 { return b.Vt + b.Ebar + b.Ft + b.Vrr }

// Prediction holds the quantities hybrid forecasts for superstep t+Δt
// while running superstep t (Section 5.3): the concatenation/combining
// savings Mco (in messages) and the two engines' I/O costs (in bytes).
// When the engine of the moment cannot measure a quantity it estimates it
// from VE-BLOCK metadata or the adjacency index, as the paper describes.
type Prediction struct {
	Mco      int64
	CioPush  int64
	CioBpull int64
}

// StepStats aggregates one superstep across the cluster.
type StepStats struct {
	Step int
	Mode string // engine that executed this superstep ("push", "b-pull", …)

	Produced   int64 // messages generated (M)
	Combined   int64 // messages eliminated by concat/combine (Mco)
	NetBytes   int64 // bytes across the fabric this superstep
	NetMsgs    int64 // message values across the fabric
	Requests   int64 // pull/gather requests issued
	Responding int64 // vertices whose respond flag was set
	Updated    int64 // vertices whose update()/compute() ran
	Spilled    int64 // messages spilled to disk (push), |M_disk|

	IO       diskio.Snapshot // per-class disk bytes this superstep
	Parts    IOBreakdown
	MemBytes int64 // peak message-buffer + metadata memory across workers

	// LogIO is the confined recovery policy's sender-side message-log
	// writes this superstep (internal/msglog), charged to DiskSeconds but
	// kept out of IO and Parts so the Q^t inputs and the trace-vs-stats
	// cross-check stay exact: log bytes are policy overhead, not Eq.
	// (7)/(8) traffic.
	LogIO diskio.Snapshot

	// PhysIO is the physical (post-codec) bytes this superstep's disk
	// traffic actually moved, per class: compressed frame writes and reads
	// of every store plus the message log. Under codec "none" it equals
	// IO+LogIO charge-for-charge; under a real codec it shrinks while IO,
	// Parts and every Q^t input stay byte-identical to the uncompressed
	// run. Purely observational unless Config.ChargePhysical redirects
	// DiskSeconds to it.
	PhysIO diskio.Snapshot

	// MigrationIO and MigrationNetBytes land the cost of a partition
	// reassignment that completed just before this superstep ran: the disk
	// traffic of rebuilding the adopted worker's stores from the shared
	// catalog, and the bytes of state that logically moved between
	// machines (snapshot + retained log segments + fetched layout
	// bytes). Kept out of IO/Parts for the same reason as LogIO — policy
	// overhead, not Eq. (7)/(8) traffic — and mirrored by the adopted
	// unit's WorkerStepEvent so the trace-vs-stats cross-check covers them.
	MigrationIO       diskio.Snapshot
	MigrationNetBytes int64

	// Cross-mode estimates hybrid gathers while running the other engine
	// (Section 5.3): what push's edge reads would have cost during a
	// b-pull superstep (EstEt), and what b-pull's Eblock scan, fragment
	// aux and svertex reads would have cost during a push superstep.
	EstEt, EstEbar, EstFt, EstVrr int64
	// McoBytes is the measured network savings from concatenation and
	// combining this superstep (b-pull modes only).
	McoBytes int64

	// Aggregate is the globally reduced aggregator value for programs
	// implementing algo.Aggregating (e.g. PageRank's L1 rank delta).
	Aggregate float64

	CPUSeconds   float64 // modelled compute time, max across workers
	DiskSeconds  float64
	NetSeconds   float64 // a.k.a. blocking time: the exchange component
	SimSeconds   float64 // max across workers of (cpu+disk+net)
	WallSeconds  float64 // measured wall clock of the superstep
	Qt           float64 // Eq. (11) evaluated from this superstep's data
	Pred         Prediction
	SwitchedFrom string // non-empty when this superstep executed a switch
}

// JobResult is the outcome of one engine run.
type JobResult struct {
	Engine      string
	Algorithm   string
	Dataset     string
	Workers     int
	Parallelism int // per-worker compute parallelism the run used
	Steps       []StepStats

	SimSeconds  float64 // Σ per-superstep simulated seconds
	WallSeconds float64
	IO          diskio.Snapshot // Σ superstep I/O (loading excluded)
	NetBytes    int64
	MaxMemBytes int64

	LoadSimSeconds float64 // graph loading cost (Fig. 16), reported separately
	LoadIO         diskio.Snapshot

	// CatalogHit marks a run whose edge layouts (adjacency, VE-BLOCK) were
	// opened read-only from a pre-built store source instead of rebuilt.
	// LayoutBuildBytes is the sequential-write cost of building them fresh
	// (zero on a hit); LayoutReusedBytes the on-disk layout bytes served by
	// the source (zero on a miss).
	CatalogHit        bool
	LayoutBuildBytes  int64
	LayoutReusedBytes int64

	// Restarts counts recoveries after detected worker failures (any
	// policy); RecoverySimSeconds is the simulated time recovery burned:
	// the discarded supersteps plus, under the checkpoint policy, the
	// restore I/O.
	Restarts           int
	RecoverySimSeconds float64
	// ReplayedSupersteps counts supersteps whose work was discarded by a
	// failure and had to be re-executed. Scratch recovery replays
	// everything since superstep 1; checkpoint recovery replays only the
	// steps since the last committed checkpoint; confined recovery replays
	// them on the failed worker alone.
	ReplayedSupersteps int
	// Stalls counts workers the barrier-deadline supervision declared
	// failed (hangs rather than crashes); included in Restarts.
	Stalls int

	// LogIO is the confined policy's total sender-side message-log writes
	// (Σ step LogIO, derived by Finish). Zero under other policies.
	LogIO diskio.Snapshot
	// ReplayIO is the disk traffic recovery forced: restore reads plus, for
	// the global policies, the I/O of the discarded-and-redone supersteps,
	// or, for confined, the failed worker's recompute I/O and the
	// survivors' log-segment reads. Comparing it across policies on the
	// same fault plan is the recovery-cost experiment.
	ReplayIO diskio.Snapshot
	// ReplayNetBytes is the wire traffic confined replay re-delivered to
	// the recovering worker (logged pushes injected plus re-pulled
	// responses).
	ReplayNetBytes int64
	// ConfinedRecoveries counts recoveries handled by the confined policy
	// (single-worker restore + log replay, no global rollback).
	ConfinedRecoveries int

	// Reassignments counts partition adoptions under the reassign policy:
	// permanently-dead workers whose Vblock range a survivor took over.
	// MigrationIO is the disk traffic of rebuilding the adopted stores from
	// the shared catalog (the snapshot and log-slice reads of the follow-up
	// restore+replay stay in ReplayIO, as under confined recovery);
	// MigrationNetBytes the state bytes that logically crossed the network
	// to the adopting host (snapshot + retained log segments + fetched
	// layout bytes). Both are charged directly at adoption time, not
	// derived by Finish, so they survive even when the job halts before
	// another superstep runs. Degraded marks a result produced by fewer
	// live workers than the job started with.
	Reassignments     int
	MigrationIO       diskio.Snapshot
	MigrationNetBytes int64
	Degraded          bool

	// Checkpoints counts committed checkpoints; CheckpointIO is the disk
	// traffic they performed (snapshot writes plus spill re-reads) and
	// CheckpointSimSeconds its modelled cost, included in SimSeconds so
	// checkpoint overhead is charged honestly. Restores counts
	// restorations from a committed checkpoint.
	Checkpoints          int
	CheckpointIO         diskio.Snapshot
	CheckpointSimSeconds float64
	Restores             int

	// DiskFaults counts the storage faults the diskio fault layer injected
	// during the run (ENOSPC, torn writes, failed fsyncs, bit flips; a
	// power cut counts once). CheckpointWriteFailures counts checkpoint
	// attempts a storage fault aborted — abandoned without a commit
	// marker, never failing the job.
	DiskFaults              int
	CheckpointWriteFailures int

	// Codec names the block codec the run stored its disk-resident
	// structures with ("none" for the raw layout). The physical dimension
	// below measures what that codec actually moved; every logical field
	// above is codec-independent by construction.
	Codec string
	// PhysIO is Σ superstep PhysIO (derived by Finish); the companions
	// split the out-of-superstep physical traffic by activity, mirroring
	// LoadIO / CheckpointIO / ReplayIO / MigrationIO.
	PhysIO           diskio.Snapshot
	LoadPhysIO       diskio.Snapshot
	CheckpointPhysIO diskio.Snapshot
	ReplayPhysIO     diskio.Snapshot
	MigrationPhysIO  diskio.Snapshot
	// CompressionRatio is total logical bytes over total physical bytes
	// across every activity (1.0 under codec "none", > 1 when compression
	// bites, 0 when the run moved no physical bytes). Derived by Finish.
	CompressionRatio float64

	// Values holds the final vertex values indexed by vertex id (rank,
	// distance, label or ad, depending on the algorithm).
	Values []float64
}

// Finish derives the job-level aggregates from the recorded steps.
func (r *JobResult) Finish() {
	r.SimSeconds, r.WallSeconds, r.NetBytes, r.MaxMemBytes = 0, 0, 0, 0
	r.IO = diskio.Snapshot{}
	r.LogIO = diskio.Snapshot{}
	r.PhysIO = diskio.Snapshot{}
	for i := range r.Steps {
		s := &r.Steps[i]
		r.SimSeconds += s.SimSeconds
		r.WallSeconds += s.WallSeconds
		r.NetBytes += s.NetBytes
		r.IO = r.IO.Add(s.IO)
		r.LogIO = r.LogIO.Add(s.LogIO)
		r.PhysIO = r.PhysIO.Add(s.PhysIO)
		if s.MemBytes > r.MaxMemBytes {
			r.MaxMemBytes = s.MemBytes
		}
	}
	r.SimSeconds += r.CheckpointSimSeconds
	logical := r.IO.Total() + r.LogIO.Total() + r.LoadIO.Total() +
		r.CheckpointIO.Total() + r.ReplayIO.Total() + r.MigrationIO.Total()
	phys := r.PhysIO.Total() + r.LoadPhysIO.Total() + r.CheckpointPhysIO.Total() +
		r.ReplayPhysIO.Total() + r.MigrationPhysIO.Total()
	if phys > 0 {
		r.CompressionRatio = float64(logical) / float64(phys)
	} else {
		r.CompressionRatio = 0
	}
}

// Supersteps reports the number of supersteps run.
func (r *JobResult) Supersteps() int { return len(r.Steps) }

// String summarises the result in one line.
func (r *JobResult) String() string {
	return fmt.Sprintf("%s/%s/%s: %d steps, sim %.3fs, io %s, net %d B",
		r.Engine, r.Algorithm, r.Dataset, len(r.Steps), r.SimSeconds, r.IO.String(), r.NetBytes)
}

// Qt evaluates the paper's Eq. (11):
//
//	Q^t = Mco·Byte_m/s_net + IO(M_disk)/s_rw − IO(V_rr^t)/s_rr
//	    + (IO(E^t) + IO(M_disk) − IO(Ē^t) − IO(F^t))/s_sr
//
// b-pull is the profitable mode when Q^t ≥ 0. mcoBytes is Mco·Byte_m (the
// extra network bytes push would pay); ioMdisk the one-sided spilled
// message bytes; the rest as in IOBreakdown.
func Qt(p diskio.Profile, mcoBytes, ioMdisk, ioVrr, ioEt, ioEbar, ioFt int64) float64 {
	const mb = 1 << 20
	return float64(mcoBytes)/(p.SNet*mb) +
		float64(ioMdisk)/(p.SRW*mb) -
		float64(ioVrr)/(p.SRR*mb) +
		float64(ioEt+ioMdisk-ioEbar-ioFt)/(p.SSR*mb)
}
