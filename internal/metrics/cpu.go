package metrics

import "hybridgraph/internal/diskio"

// CPU cost model constants, in seconds per unit of work. They are
// calibrated so that, at the paper's scales, the sufficient-memory
// runtimes of Fig. 7 are compute/communication dominated while the
// limited-memory runtimes of Figs. 8-10 are I/O dominated — the regime
// split the paper's analysis rests on. The spill-sort charge models
// Giraph's sort-merge handling of disk-resident messages, which the paper
// blames for push not improving on the amazon cluster's weak virtual CPUs
// (Section 6.1).
const (
	CostPerMessage = 300e-9 // generate/deserialise/apply one message
	CostPerEdge    = 50e-9  // scan one edge
	CostPerUpdate  = 200e-9 // one update()/compute() invocation
	// CostPerSpilledMsg covers Giraph's sort-merge handling of a
	// disk-resident message (serialisation, comparison, merge). It is
	// deliberately heavy — comparable to the HDD transfer cost of the
	// message — because the paper observes push does *not* improve on the
	// SSD cluster: "Giraph employs a sort-merge mechanism ... sorting is
	// computation-intensive" and the amazon nodes have weak virtual CPUs.
	CostPerSpilledMsg = 4e-6
)

// CPUWork tallies one worker's modelled compute during a superstep.
type CPUWork struct {
	Messages int64
	Edges    int64
	Updates  int64
	Spilled  int64
}

// Add accumulates o into w.
func (w *CPUWork) Add(o CPUWork) {
	w.Messages += o.Messages
	w.Edges += o.Edges
	w.Updates += o.Updates
	w.Spilled += o.Spilled
}

// Seconds converts the tallied work into modelled seconds under profile p
// (whose CPUFactor captures physical versus virtual CPUs).
func (w CPUWork) Seconds(p diskio.Profile) float64 {
	s := float64(w.Messages)*CostPerMessage +
		float64(w.Edges)*CostPerEdge +
		float64(w.Updates)*CostPerUpdate +
		float64(w.Spilled)*CostPerSpilledMsg
	return s * p.CPUFactor
}
