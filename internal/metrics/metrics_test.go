package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"hybridgraph/internal/diskio"
)

func TestQtMatchesEq11ByHand(t *testing.T) {
	p := diskio.Profile{SRR: 1, SRW: 2, SSR: 4, SSW: 4, SNet: 8, CPUFactor: 1}
	const mb = 1 << 20
	// Qt = mco/snet + mdisk/srw - vrr/srr + (et + mdisk - ebar - ft)/ssr
	got := Qt(p, 8*mb, 4*mb, 2*mb, 16*mb, 6*mb, 2*mb)
	want := 8.0/8 + 4.0/2 - 2.0/1 + (16.0+4-6-2)/4
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Qt = %g, want %g", got, want)
	}
}

func TestQtSignFavoursBpullUnderMessagePressure(t *testing.T) {
	p := diskio.HDDLocal
	// Huge spilled-message volume, modest svertex reads: b-pull wins.
	if q := Qt(p, 1<<20, 100<<20, 1<<20, 50<<20, 40<<20, 1<<20); q <= 0 {
		t.Fatalf("Qt = %g, want > 0 under message pressure", q)
	}
	// No spills, heavy random svertex reads: push wins.
	if q := Qt(p, 0, 0, 50<<20, 1<<20, 1<<20, 1<<20); q >= 0 {
		t.Fatalf("Qt = %g, want < 0 with expensive svertex access", q)
	}
}

func TestQtSSDNarrowsGap(t *testing.T) {
	// Same byte profile scores a smaller |Qt| on SSDs: the paper's
	// "b-pull to push can achieve more gains on HDDs" (Fig. 14a).
	mco, mdisk, vrr, et, ebar, ft := int64(0), int64(0), int64(50<<20), int64(1<<20), int64(1<<20), int64(1<<20)
	hdd := Qt(diskio.HDDLocal, mco, mdisk, vrr, et, ebar, ft)
	ssd := Qt(diskio.SSDAmazon, mco, mdisk, vrr, et, ebar, ft)
	if !(hdd < 0 && ssd < 0) {
		t.Fatalf("both negative expected: hdd %g ssd %g", hdd, ssd)
	}
	if math.Abs(hdd) <= math.Abs(ssd) {
		t.Fatalf("|Qt(HDD)| = %g should exceed |Qt(SSD)| = %g", math.Abs(hdd), math.Abs(ssd))
	}
}

func TestIOBreakdownEquations(t *testing.T) {
	b := IOBreakdown{Vt: 10, Et: 20, Ebar: 15, Ft: 3, Vrr: 7, MdiskW: 30, MdiskR: 30}
	if got := b.CioPush(); got != 10+20+30+30 {
		t.Fatalf("CioPush = %d", got)
	}
	if got := b.CioBpull(); got != 10+15+3+7 {
		t.Fatalf("CioBpull = %d", got)
	}
	if b.Total() != 115 {
		t.Fatalf("Total = %d", b.Total())
	}
}

func TestCPUWorkSeconds(t *testing.T) {
	w := CPUWork{Messages: 1000, Edges: 2000, Updates: 100, Spilled: 50}
	p := diskio.Profile{CPUFactor: 2}
	want := 2 * (1000*CostPerMessage + 2000*CostPerEdge + 100*CostPerUpdate + 50*CostPerSpilledMsg)
	if got := w.Seconds(p); math.Abs(got-want) > 1e-18 {
		t.Fatalf("Seconds = %g, want %g", got, want)
	}
	var acc CPUWork
	acc.Add(w)
	acc.Add(w)
	if acc.Messages != 2000 || acc.Spilled != 100 {
		t.Fatalf("Add = %+v", acc)
	}
}

func TestJobResultFinish(t *testing.T) {
	r := &JobResult{Engine: "push", Algorithm: "pagerank", Dataset: "livej"}
	var io1, io2 diskio.Snapshot
	io1.Bytes[diskio.SeqRead] = 100
	io2.Bytes[diskio.RandWrite] = 50
	r.Steps = []StepStats{
		{Step: 1, SimSeconds: 1.5, NetBytes: 10, IO: io1, MemBytes: 7},
		{Step: 2, SimSeconds: 2.5, NetBytes: 20, IO: io2, MemBytes: 3},
	}
	r.Finish()
	if r.SimSeconds != 4 || r.NetBytes != 30 || r.MaxMemBytes != 7 {
		t.Fatalf("Finish: %+v", r)
	}
	if r.IO.Bytes[diskio.SeqRead] != 100 || r.IO.Bytes[diskio.RandWrite] != 50 {
		t.Fatalf("IO = %v", r.IO)
	}
	if r.Supersteps() != 2 {
		t.Fatal("Supersteps wrong")
	}
	if r.String() == "" {
		t.Fatal("String empty")
	}
}

func TestFinishIdempotentProperty(t *testing.T) {
	f := func(sim []float64) bool {
		r := &JobResult{}
		for i, s := range sim {
			r.Steps = append(r.Steps, StepStats{Step: i + 1, SimSeconds: math.Abs(s)})
		}
		r.Finish()
		a := r.SimSeconds
		r.Finish()
		return r.SimSeconds == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
