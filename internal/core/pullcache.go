package core

import (
	"sync"

	"hybridgraph/internal/graph"
	"hybridgraph/internal/lru"
	"hybridgraph/internal/obs"
	"hybridgraph/internal/vertexfile"
)

// pullCache models the paper's disk extension of GraphLab PowerGraph
// (Appendix F): up to cap vertex records live in memory under LRU; while
// resident they are read and updated for free, and a dirty record pays one
// random write only when evicted. A miss pays one random read. With the
// cache larger than the per-superstep working set (Table 5's ext-edge-v3
// on small graphs) vertex I/O vanishes after warm-up; below it, cyclic
// scans defeat LRU and every access thrashes — the v2.5 cliff.
//
// Safe for concurrent use: remote gathers read through the cache while the
// owner's apply loop writes through it.
type pullCache struct {
	mu        sync.Mutex
	vs        *vertexfile.Store
	lru       *lru.Cache                         // bounded mode
	all       map[graph.VertexID]*pullCacheEntry // unbounded mode
	evictErr  error
	hits      int64
	misses    int64
	evictions int64

	mHits      *obs.Counter // "pullcache.hits"
	mMisses    *obs.Counter // "pullcache.misses"
	mEvictions *obs.Counter // "pullcache.evictions"
}

type pullCacheEntry struct {
	rec   vertexfile.Record
	dirty bool
}

// newPullCache returns a cache of the given capacity in vertices;
// capacity <= 0 means unbounded (the ext-edge scenario: vertices nominally
// memory-resident).
func newPullCache(vs *vertexfile.Store, capacity int, reg *obs.Registry) *pullCache {
	c := &pullCache{
		vs:         vs,
		mHits:      reg.Counter("pullcache.hits"),
		mMisses:    reg.Counter("pullcache.misses"),
		mEvictions: reg.Counter("pullcache.evictions"),
	}
	if capacity > 0 {
		c.lru = lru.New(capacity)
		c.lru.SetOnEvict(func(key uint32, val any) {
			e := val.(*pullCacheEntry)
			if e.dirty {
				c.evictions++
				c.mEvictions.Inc()
				if err := c.vs.WriteRecord(e.rec); err != nil && c.evictErr == nil {
					c.evictErr = err
				}
			}
		})
	} else {
		c.all = make(map[graph.VertexID]*pullCacheEntry)
	}
	return c
}

func (c *pullCache) lookup(v graph.VertexID) (*pullCacheEntry, bool) {
	if c.all != nil {
		e, ok := c.all[v]
		return e, ok
	}
	if val, ok := c.lru.Get(uint32(v)); ok {
		return val.(*pullCacheEntry), true
	}
	return nil, false
}

func (c *pullCache) insert(v graph.VertexID, e *pullCacheEntry) error {
	if c.all != nil {
		c.all[v] = e
		return nil
	}
	c.lru.Put(uint32(v), e)
	err := c.evictErr
	c.evictErr = nil
	return err
}

// get reads a record through the cache; a miss random-reads it from disk
// and may evict a dirty resident record (random write).
func (c *pullCache) get(v graph.VertexID) (vertexfile.Record, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.lookup(v); ok {
		c.hits++
		c.mHits.Inc()
		return e.rec, nil
	}
	c.misses++
	c.mMisses.Inc()
	rec, err := c.vs.ReadRecord(v)
	if err != nil {
		return rec, err
	}
	return rec, c.insert(v, &pullCacheEntry{rec: rec})
}

// put writes a record through the cache: resident records update in place
// (dirty, no I/O), absent ones are inserted dirty and pay only on
// eviction.
func (c *pullCache) put(rec vertexfile.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.lookup(rec.ID); ok {
		e.rec = rec
		e.dirty = true
		return nil
	}
	c.misses++
	c.mMisses.Inc()
	return c.insert(rec.ID, &pullCacheEntry{rec: rec, dirty: true})
}

// readBcast reads one broadcast column through the cache (the gather-side
// svertex access).
func (c *pullCache) readBcast(v graph.VertexID, parity int) (float64, error) {
	rec, err := c.get(v)
	if err != nil {
		return 0, err
	}
	return rec.Bcast[parity&1], nil
}

// flush writes every dirty resident record back, leaving the store
// authoritative (run at job end before values are collected).
func (c *pullCache) flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.all != nil {
		for _, e := range c.all {
			if e.dirty {
				if err := c.vs.WriteRecord(e.rec); err != nil {
					return err
				}
				e.dirty = false
			}
		}
		return nil
	}
	var err error
	c.lru.Each(func(key uint32, val any) {
		e := val.(*pullCacheEntry)
		if e.dirty {
			if werr := c.vs.WriteRecord(e.rec); werr != nil && err == nil {
				err = werr
			}
			e.dirty = false
		}
	})
	return err
}

// stats reports hits, misses and dirty evictions.
func (c *pullCache) stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// resident reports the number of cached records, for memory accounting.
func (c *pullCache) resident() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.all != nil {
		return len(c.all)
	}
	return c.lru.Len()
}
