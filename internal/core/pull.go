package core

import (
	"hybridgraph/internal/algo"
	"hybridgraph/internal/comm"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/vertexfile"
)

// stepPull runs one superstep of the pull baseline, our disk-extended
// model of GraphLab PowerGraph's vertex-cut Gather-Apply-Scatter: every
// active vertex sends gather requests to all workers (mirror traffic);
// each mirror scans its locally-held in-edges of the requested vertex and
// produces message values from responding sources. All vertex-record
// access goes through the worker's pullCache — the bounded in-memory
// vertex set whose misses and dirty evictions are the random reads/writes
// that dominate pull's I/O in Fig. 10 and Table 5.
func (w *worker) stepPull(t int) error {
	prog := w.job.prog
	ctx := w.job.ctx(t)
	traversal := prog.Style() == algo.Traversal
	wp := writeParity(t)

	var ids []graph.VertexID
	switch {
	case t == 1 || !traversal:
		ids = make([]graph.VertexID, 0, w.part.Len())
		for v := w.part.Lo; v < w.part.Hi; v++ {
			ids = append(ids, v)
		}
	default:
		rp := readParity(t)
		for i := 0; i < w.part.Len(); i++ {
			if w.active[rp].Get(i) {
				ids = append(ids, w.part.Lo+graph.VertexID(i))
			}
		}
	}

	const chunk = 2048
	for lo := 0; lo < len(ids); lo += chunk {
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		var msgs map[graph.VertexID][]float64
		if t > 1 {
			var err error
			msgs, err = w.gatherAll(t, ids[lo:hi])
			if err != nil {
				return err
			}
		}
		for _, v := range ids[lo:hi] {
			mv := msgs[v]
			if t > 1 && traversal && len(mv) == 0 {
				continue
			}
			rec, err := w.vcache.get(v)
			if err != nil {
				return err
			}
			var respond bool
			var contrib float64
			hasContrib := false
			if t == 1 {
				if w.job.resuming {
					respond = true // lightweight recovery: re-announce
				} else {
					rec.Val, respond = prog.Init(ctx, v, int(rec.OutDeg))
				}
			} else {
				before := rec.Val
				rec.Val, respond = prog.Update(ctx, v, int(rec.OutDeg), rec.Val, mv)
				if ag, ok := prog.(algo.Aggregating); ok {
					contrib, hasContrib = ag.Contribute(before, rec.Val), true
				}
			}
			if respond {
				rec.Bcast[wp] = w.bcastFor(ctx, v, rec.Val, int(rec.OutDeg), mv)
				w.respond[wp].Set(w.localIdx(v))
			}
			if err := w.vcache.put(rec); err != nil {
				return err
			}
			w.addStat(func(s *workerStat) {
				s.updated++
				s.cpu.Updates++
				s.cpu.Messages += int64(len(mv))
				if respond {
					s.responding++
				}
				if hasContrib {
					s.reduceAgg(prog, contrib)
				}
			})
			if traversal && respond {
				if err := w.scatterSignals(t, v); err != nil {
					return err
				}
			}
		}
	}
	w.addStat(func(s *workerStat) {
		if m := int64(w.vcache.resident()) * vertexfile.RecordSize; m > s.memBytes {
			s.memBytes = m
		}
	})
	return nil
}

// gatherAll requests gathers for ids from every worker and merges the
// returned value lists per destination.
func (w *worker) gatherAll(t int, ids []graph.VertexID) (map[graph.VertexID][]float64, error) {
	out := make(map[graph.VertexID][]float64, len(ids))
	for y := range w.job.workers {
		res, err := w.fab().Gather(w.id, y, ids, t)
		if err != nil {
			return nil, err
		}
		for _, r := range res {
			out[r.Dst] = append(out[r.Dst], r.Vals...)
		}
	}
	w.addStat(func(s *workerStat) {
		s.requests += int64(len(ids)) * int64(len(w.job.workers))
	})
	return out, nil
}

// GatherValues implements comm.Handler: the mirror-side gather. For each
// requested destination, scan this worker's locally-held in-edges and
// produce message values from sources that responded at t-1, reading
// source broadcast values through the vertex cache (misses are random
// reads). Combinable programs reduce locally, like PowerGraph's partial
// gather aggregation.
func (w *worker) GatherValues(ids []graph.VertexID, step int) ([]comm.GatherResult, error) {
	rp := readParity(step)
	prog := w.job.prog
	combine := prog.Combiner()
	var out []comm.GatherResult
	var edges, produced int64
	scratch := make([]graph.Half, 0, 128)
	for _, dst := range ids {
		var err error
		scratch = scratch[:0]
		scratch, err = w.mirror.Edges(dst, scratch)
		if err != nil {
			return nil, err
		}
		edges += int64(len(scratch))
		var vals []float64
		for _, h := range scratch {
			src := h.Dst // mirror lists store sources in the Dst field
			if !w.respond[rp].Get(w.localIdx(src)) {
				continue
			}
			bcast, err := w.vcache.readBcast(src, rp)
			if err != nil {
				return nil, err
			}
			mv, keep := w.msgValueFor(bcast, dst, h.Weight)
			if !keep {
				continue
			}
			if combine != nil && len(vals) == 1 {
				vals[0] = combine(vals[0], mv)
			} else {
				vals = append(vals, mv)
			}
			produced++
		}
		if len(vals) > 0 {
			out = append(out, comm.GatherResult{Dst: dst, Vals: vals})
		}
	}
	w.addStat(func(s *workerStat) {
		s.produced += produced
		s.cpu.Edges += edges
		s.cpu.Messages += produced
	})
	return out, nil
}

// scatterSignals activates v's out-neighbours for superstep t+1: the
// scatter phase, reading v's out-edges and sending one 4-byte activation
// per (neighbour, worker).
func (w *worker) scatterSignals(t int, v graph.VertexID) error {
	eb, err := w.adj.EdgeBytes(v)
	if err != nil {
		return err
	}
	if w.job.cfg.EdgesInMemory {
		eb = 0
	}
	var scratch []graph.Half
	scratch, err = w.adj.Edges(v, scratch)
	if err != nil {
		return err
	}
	w.addStat(func(s *workerStat) {
		s.parts.Et += eb
		s.cpu.Edges += int64(len(scratch))
	})
	byOwner := make(map[int][]graph.VertexID)
	for _, h := range scratch {
		o := w.owner(h.Dst)
		byOwner[o] = append(byOwner[o], h.Dst)
	}
	for o, targets := range byOwner {
		// Signals sent at step t are read at t+1 via readParity(t+1) ==
		// writeParity(t), so DeliverSignals writes at the sender's parity.
		if err := w.fab().Signal(w.id, o, targets, t); err != nil {
			return err
		}
	}
	return nil
}
