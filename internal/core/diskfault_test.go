package core

import (
	"errors"
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
)

// TestDiskFaultSweepByteIdenticalOrTyped is the storage-fault contract in
// one sweep: under seeded ENOSPC, torn-write and failed-fsync injection a
// job either completes with values byte-identical to the fault-free run,
// or fails with an error the caller can type-match against
// diskio.ErrDiskFault. Silent divergence — wrong values with a nil error —
// is the one outcome the fault layer must make impossible.
func TestDiskFaultSweepByteIdenticalOrTyped(t *testing.T) {
	g := graph.GenRMAT(300, 2200, 0.57, 0.19, 0.19, 11)
	prog := func() algo.Program { return algo.NewPageRank(0.85) }

	clean, err := Run(g, prog(), Config{Workers: 3, MsgBuf: 80, MaxSteps: 5}, Push)
	if err != nil {
		t.Fatal(err)
	}

	completed, failed, faultsSeen := 0, 0, 0
	for seed := int64(1); seed <= 8; seed++ {
		cfg := Config{Workers: 3, MsgBuf: 80, MaxSteps: 5,
			Recovery: "checkpoint", CheckpointEvery: 2,
			FaultPlan: faultplan.NewPlan().WithDisk(diskio.FaultConfig{
				Seed:        seed,
				WriteENOSPC: 0.0001,
				TornWrite:   0.0001,
				SyncFail:    0.10,
			})}
		res, err := Run(g, prog(), cfg, Push)
		if err != nil {
			if !errors.Is(err, diskio.ErrDiskFault) {
				t.Fatalf("seed %d: error is not a typed disk fault: %v", seed, err)
			}
			failed++
			continue
		}
		completed++
		faultsSeen += res.DiskFaults
		for v := range clean.Values {
			if res.Values[v] != clean.Values[v] {
				t.Fatalf("seed %d: vertex %d = %g, fault-free run has %g (silent divergence)",
					seed, v, res.Values[v], clean.Values[v])
			}
		}
	}
	if completed == 0 {
		t.Fatal("every seed failed: the sweep never exercised the byte-identity half")
	}
	if failed == 0 && faultsSeen == 0 {
		t.Fatal("no seed injected a fault: the sweep has no teeth")
	}
}

// TestDiskFaultPowerCutFailsTyped cuts power at the Nth mutating disk op:
// the job must fail — nothing written after the cut ever reaches disk —
// and the error must match both the fault sentinel and IsPowerCut.
func TestDiskFaultPowerCutFailsTyped(t *testing.T) {
	g := graph.GenRMAT(300, 2200, 0.57, 0.19, 0.19, 11)
	cfg := Config{Workers: 3, MsgBuf: 80, MaxSteps: 5,
		FaultPlan: faultplan.NewPlan().WithDisk(diskio.FaultConfig{
			Seed: 7, PowerCutAfter: 40,
		})}
	_, err := Run(g, algo.NewPageRank(0.85), cfg, Push)
	if err == nil {
		t.Fatal("job survived a simulated power cut")
	}
	if !errors.Is(err, diskio.ErrDiskFault) {
		t.Fatalf("power-cut error does not match ErrDiskFault: %v", err)
	}
	if !diskio.IsPowerCut(err) {
		t.Fatalf("IsPowerCut false for: %v", err)
	}
}

// TestCheckpointFaultAbandonsAttempt forces every fsync to fail: each
// checkpoint attempt must be abandoned without a commit marker and without
// failing the job, the failures must be counted, and the final values must
// still match the fault-free run — checkpointing is an overhead, never a
// correctness hazard.
func TestCheckpointFaultAbandonsAttempt(t *testing.T) {
	g := graph.GenRMAT(300, 2200, 0.57, 0.19, 0.19, 11)
	prog := func() algo.Program { return algo.NewPageRank(0.85) }

	clean, err := Run(g, prog(), Config{Workers: 3, MsgBuf: 80, MaxSteps: 5}, Push)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 3, MsgBuf: 80, MaxSteps: 5,
		Recovery: "checkpoint", CheckpointEvery: 2,
		FaultPlan: faultplan.NewPlan().WithDisk(diskio.FaultConfig{
			Seed: 3, SyncFail: 1.0,
		})}
	res, err := Run(g, prog(), cfg, Push)
	if err != nil {
		t.Fatalf("all-fsyncs-fail must not fail the job: %v", err)
	}
	if res.CheckpointWriteFailures == 0 {
		t.Fatal("no checkpoint write failures counted under SyncFail=1.0")
	}
	if res.Checkpoints != 0 {
		t.Fatalf("%d checkpoints committed though every fsync failed", res.Checkpoints)
	}
	if res.DiskFaults == 0 {
		t.Fatal("res.DiskFaults = 0, want the injected sync failures counted")
	}
	for v := range clean.Values {
		if res.Values[v] != clean.Values[v] {
			t.Fatalf("vertex %d = %g, fault-free run has %g",
				v, res.Values[v], clean.Values[v])
		}
	}
}
