package core

import (
	"testing"
	"testing/quick"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/graph"
)

// TestEnginesMatchReferenceProperty fuzzes the whole stack: random small
// graphs, random worker counts and buffer sizes, random engine — the
// result must always equal the in-memory BSP oracle.
func TestEnginesMatchReferenceProperty(t *testing.T) {
	engines := []Engine{Push, PushM, BPull, Hybrid, Pull}
	f := func(seed int64, wRaw, bRaw, eRaw uint8) bool {
		n := 60 + int(seed%140+140)%140
		g := graph.GenRMAT(n, n*6, 0.57, 0.19, 0.19, seed)
		workers := int(wRaw%4) + 2
		buf := int(bRaw%60) + 10
		engine := engines[int(eRaw)%len(engines)]
		prog := algo.NewSSSP(0)
		cfg := Config{Workers: workers, MsgBuf: buf, MaxSteps: 25, VertexCache: 20}
		want := referenceRun(g, prog, 25)
		res, err := Run(g, prog, cfg, engine)
		if err != nil {
			t.Logf("seed %d engine %s: %v", seed, engine, err)
			return false
		}
		for v := range want {
			if !almostEqual(res.Values[v], want[v]) {
				t.Logf("seed %d engine %s vertex %d: %g want %g",
					seed, engine, v, res.Values[v], want[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestMessageConservationProperty: across any push run, every message
// produced is delivered and consumed exactly once (spilled or not).
func TestMessageConservationProperty(t *testing.T) {
	f := func(seed int64, bRaw uint8) bool {
		n := 100 + int(seed%100+100)%100
		g := graph.GenUniform(n, n*5, seed)
		buf := int(bRaw%40) + 5
		res, err := Run(g, algo.NewPageRank(0.85),
			Config{Workers: 3, MsgBuf: buf, MaxSteps: 4}, Push)
		if err != nil {
			return false
		}
		// Messages produced at step t are consumed at t+1; the final
		// step's messages are never consumed. Spills never exceed
		// production.
		for i, s := range res.Steps {
			if s.Spilled > s.Produced {
				t.Logf("step %d spilled %d > produced %d", i+1, s.Spilled, s.Produced)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
