package core

import "sync"

// parallelDo runs fn(0), …, fn(n-1) concurrently, one goroutine per index,
// and waits for all of them. Every index runs to completion even when an
// earlier one fails — a half-joined scan would keep charging I/O after its
// superstep returned, which is exactly the accounting leak the prefetch
// pipeline had to fix — and the error returned is the first by index, so
// the choice of error is deterministic under any interleaving.
func parallelDo(n int, fn func(int) error) error {
	if n <= 1 {
		if n == 1 {
			return fn(0)
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
