package core

import (
	"context"
	"fmt"

	"hybridgraph/internal/checkpoint"
	"hybridgraph/internal/comm"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/metrics"
	"hybridgraph/internal/obs"
	"hybridgraph/internal/vertexfile"
)

// Checkpointing (the Pregel/Giraph policy the paper's prototype omits):
// every CheckpointEvery supersteps each worker snapshots its vertex values,
// flag vectors and parked inbox messages; the master commits the checkpoint
// only after every worker's snapshot is durably in place, together with its
// own record of hybrid's mode schedule. Recovery under Recovery:
// "checkpoint" restores the last committed checkpoint — including the
// mode-specific state each engine needs (inboxes for push, flag vectors and
// broadcast columns for b-pull, the switcher's Q^t history for hybrid) —
// and replays only the supersteps since, instead of superstep 1.

// maybeCheckpoint writes and commits a checkpoint after superstep t when
// the interval says so. All checkpoint I/O runs through the workers' disk
// counters and is surfaced as CheckpointIO/CheckpointSimSeconds, so the
// overhead is charged to the same cost model as the computation.
//
// Durability: every snapshot and the master record are fsynced before
// the rename that publishes them (checkpoint.writeFile), every worker's
// message-log segments are fsynced, and only then is the commit marker
// written — so a committed checkpoint never references volatile bytes.
// A storage fault during the attempt abandons it (no marker, recovery
// uses the previous committed checkpoint) and the job continues; only a
// simulated power cut fails the job, because nothing after it can ever
// reach disk.
func (j *job) maybeCheckpoint(t int, res *metrics.JobResult) error {
	if j.cfg.CheckpointEvery <= 0 || t%j.cfg.CheckpointEvery != 0 {
		return nil
	}
	coord := checkpoint.Coordinator{Dir: j.dir}
	befores := make([]diskio.Snapshot, len(j.workers))
	logBefores := make([]diskio.Snapshot, len(j.workers))
	physBefores := make([]diskio.Snapshot, len(j.workers))
	for i, w := range j.workers {
		befores[i] = w.ct.Snapshot()
		physBefores[i] = j.pcts[i].Snapshot()
		if w.logCt != nil {
			logBefores[i] = w.logCt.Snapshot()
		}
	}
	// The master's own record is tiny; charge it to a scratch counter and
	// fold it into the same checkpoint tally. Its physical twin keeps the
	// frame bytes of a compressed master record in the physical tally too.
	mct := &diskio.Counter{}
	mpct := &diskio.Counter{}
	mct.SetPhys(mpct)
	werr := j.writeCheckpoint(coord, t, mct)
	// Bytes moved before a failed attempt are real: charge the delta on
	// every path. The msglog fsyncs ride the workers' log counters and are
	// folded into the same tally (the LogIO side of the sync contract).
	delta := mct.Snapshot()
	physDelta := mpct.Snapshot()
	for i, w := range j.workers {
		delta = delta.Add(w.ct.Snapshot().Sub(befores[i]))
		physDelta = physDelta.Add(j.pcts[i].Snapshot().Sub(physBefores[i]))
		if w.logCt != nil {
			delta = delta.Add(w.logCt.Snapshot().Sub(logBefores[i]))
		}
	}
	res.CheckpointIO = res.CheckpointIO.Add(delta)
	res.CheckpointPhysIO = res.CheckpointPhysIO.Add(physDelta)
	if j.cfg.ChargePhysical {
		res.CheckpointSimSeconds += j.cfg.Profile.DiskSeconds(physDelta)
	} else {
		res.CheckpointSimSeconds += j.cfg.Profile.DiskSeconds(delta)
	}
	if werr != nil {
		if diskio.IsPowerCut(werr) {
			return fmt.Errorf("core: checkpoint at superstep %d: %w", t, werr)
		}
		// Abandon the attempt: no commit marker was written, so recovery
		// still sees the previous committed checkpoint. Remove what partial
		// files made it to disk (marker first, as always).
		res.CheckpointWriteFailures++
		j.jm.ckptFails.Inc()
		if j.trace != nil {
			j.trace.Emit(obs.CheckpointFailedEvent{Type: obs.EventCheckpointFailed,
				Step: t, Reason: werr.Error()})
		}
		coord.Remove(t, len(j.workers))
		return nil
	}
	older := j.ckptPrev
	j.ckptPrev = j.ckptStep
	j.ckptStep = t
	if older > 0 {
		if err := coord.Remove(older, len(j.workers)); err != nil {
			// Pruning is housekeeping: the stale checkpoint's marker went
			// first, so it can never shadow the one just committed. Log the
			// failure and move on rather than failing the job.
			j.jm.pruneFails.Inc()
			if j.trace != nil {
				j.trace.Emit(obs.PruneFailedEvent{Type: obs.EventPruneFailed,
					Step: older, Reason: err.Error()})
			}
		}
	}
	// Two checkpoints are retained (t and the previous one) so a restore
	// that finds t torn by a storage fault can fall back. Message-log
	// segments are therefore pruned only through the *older* retained
	// checkpoint: a fallback restore to it must still replay forward from
	// the survivors' logs, and a pruned segment would silently replay as
	// "nothing sent".
	if through := j.ckptPrev; through > 0 {
		for _, w := range j.workers {
			if w.mlog == nil {
				continue
			}
			n, err := w.mlog.Prune(through)
			j.jm.logPrunes.Add(int64(n))
			if err != nil {
				j.jm.pruneFails.Inc()
				if j.trace != nil {
					j.trace.Emit(obs.PruneFailedEvent{Type: obs.EventPruneFailed,
						Step: through, Reason: "msglog: " + err.Error()})
				}
			}
		}
	}
	res.Checkpoints++
	j.jm.ckptCommits.Inc()
	j.jm.ckptBytes.Add(delta.Total())
	if j.trace != nil {
		j.trace.Emit(obs.CheckpointEvent{Type: obs.EventCheckpoint, Step: t,
			Workers: len(j.workers), Bytes: delta.Total(),
			SimSecs: j.cfg.Profile.DiskSeconds(delta)})
	}
	return nil
}

// writeCheckpoint performs the durable write sequence for the checkpoint
// at t: fsynced worker snapshots, fsynced master record, fsynced message
// logs, then the fsynced commit marker. Any error aborts before the
// marker exists.
func (j *job) writeCheckpoint(coord checkpoint.Coordinator, t int, mct *diskio.Counter) error {
	for _, w := range j.workers {
		snap, err := w.buildSnapshot(t)
		if err != nil {
			return fmt.Errorf("worker %d snapshot: %w", w.id, err)
		}
		if _, err := checkpoint.WriteSnapshot(coord.SnapshotPath(t, w.id), w.ct, snap, j.cdc); err != nil {
			return fmt.Errorf("worker %d snapshot: %w", w.id, err)
		}
	}
	if _, err := checkpoint.WriteMaster(coord.MasterPath(t), mct, j.masterRecord(t), j.cdc); err != nil {
		return fmt.Errorf("master record: %w", err)
	}
	for _, w := range j.workers {
		if w.mlog == nil {
			continue
		}
		if err := w.mlog.Sync(); err != nil {
			return fmt.Errorf("worker %d msglog sync: %w", w.id, err)
		}
	}
	if err := coord.Commit(t, mct); err != nil {
		return fmt.Errorf("commit marker: %w", err)
	}
	return nil
}

// masterRecord captures the job-level state a restore must bring back so
// hybrid's switcher does not re-learn from nothing.
func (j *job) masterRecord(t int) *checkpoint.Master {
	m := &checkpoint.Master{
		Step:       t,
		LastSwitch: j.lastSwitch,
		Rco:        j.rco,
		PrevAgg:    j.prevAgg,
	}
	for _, mode := range j.modes {
		m.Modes = append(m.Modes, string(mode))
	}
	m.QtSigns = append(m.QtSigns, j.qtSigns...)
	if j.own != nil {
		// Reassign policy: the checkpoint records the ownership table so a
		// daemon restart resumes with the shrunken worker set instead of
		// resurrecting dead workers (the WAL resume path re-applies it).
		m.Epoch = j.own.epoch
		m.Dead = append([]bool(nil), j.own.dead...)
		m.Hosts = append([]int(nil), j.own.hosts...)
	}
	return m
}

// restoreFromCheckpoint brings every worker and the master back to the
// newest committed checkpoint that verifies. ok is false when no
// committed checkpoint exists or none verifies — the caller then falls
// back to scratch recovery (the checkpoint files never make recovery
// worse than the prototype's). Because the retention policy keeps two
// committed checkpoints, a newest checkpoint torn by a storage fault
// (failed verification, bad CRC) falls back to the previous one instead
// of all the way to superstep 1; each rejected candidate is journaled
// as restore_failed and removed so it can never shadow a good one
// again. The bytes read are charged to RecoverySimSeconds and ReplayIO
// on every exit path — an aborted restore reads real bytes before it
// gives up.
func (j *job) restoreFromCheckpoint(engine Engine, res *metrics.JobResult) (step int, ok bool, err error) {
	coord := checkpoint.Coordinator{Dir: j.dir}
	candidates := coord.Committed()
	if len(candidates) == 0 {
		return 0, false, nil
	}
	befores := make([]diskio.Snapshot, len(j.workers))
	physBefores := make([]diskio.Snapshot, len(j.workers))
	for i, w := range j.workers {
		befores[i] = w.ct.Snapshot()
		physBefores[i] = j.pcts[i].Snapshot()
	}
	mct := &diskio.Counter{}
	mpct := &diskio.Counter{}
	mct.SetPhys(mpct)
	defer func() {
		delta := mct.Snapshot()
		physDelta := mpct.Snapshot()
		for i, w := range j.workers {
			delta = delta.Add(w.ct.Snapshot().Sub(befores[i]))
			physDelta = physDelta.Add(j.pcts[i].Snapshot().Sub(physBefores[i]))
		}
		if j.cfg.ChargePhysical {
			res.RecoverySimSeconds += j.cfg.Profile.DiskSeconds(physDelta)
		} else {
			res.RecoverySimSeconds += j.cfg.Profile.DiskSeconds(delta)
		}
		res.ReplayIO = res.ReplayIO.Add(delta)
		res.ReplayPhysIO = res.ReplayPhysIO.Add(physDelta)
		if ok {
			j.jm.restores.Inc()
			if j.trace != nil {
				j.trace.Emit(obs.CheckpointEvent{Type: obs.EventRestore, Step: step,
					Workers: len(j.workers), Bytes: delta.Total(),
					SimSecs: j.cfg.Profile.DiskSeconds(delta)})
			}
		}
	}()
	for _, ck := range candidates {
		// Restores read every worker's snapshot; stay responsive to
		// cancellation between candidates rather than grinding through all
		// of them after the caller gave up.
		if cerr := context.Cause(j.runCtx); cerr != nil {
			return 0, false, cerr
		}
		reason, aerr := j.tryRestore(coord, engine, ck, mct)
		if aerr != nil {
			return 0, false, aerr
		}
		if reason == "" {
			j.ckptStep, j.ckptPrev = ck, 0
			for _, c := range candidates {
				if c < ck {
					j.ckptPrev = c
					break
				}
			}
			if j.own != nil && j.own.anyDead() {
				// A resumed job that had already lost workers stays degraded.
				res.Degraded = true
			}
			step, ok = ck, true
			return step, true, nil
		}
		j.jm.restoreFail.Inc()
		if j.trace != nil {
			j.trace.Emit(obs.RestoreFailedEvent{Type: obs.EventRestoreFailed,
				Step: ck, Reason: reason})
		}
		// The marker promised state the files cannot deliver; drop the
		// whole candidate (marker first) before trying an older one.
		coord.Remove(ck, len(j.workers))
	}
	return 0, false, nil
}

// tryRestore attempts one committed checkpoint. A non-empty reason means
// the candidate failed verification (torn or corrupt files — trust the
// CRC over the marker) and the caller may fall back; a non-nil error is
// a hard failure of the live stores the job cannot recover from.
func (j *job) tryRestore(coord checkpoint.Coordinator, engine Engine, step int, mct *diskio.Counter) (string, error) {
	master, merr := checkpoint.ReadMaster(coord.MasterPath(step), mct)
	if merr != nil {
		return "master record: " + merr.Error(), nil
	}
	if master.Step != step {
		return fmt.Sprintf("master record claims step %d, marker says %d", master.Step, step), nil
	}
	if j.own != nil && master.Epoch != 0 {
		if len(master.Dead) != len(j.workers) || len(master.Hosts) != len(j.workers) {
			return fmt.Sprintf("master record ownership table sized %d/%d for %d workers",
				len(master.Dead), len(master.Hosts), len(j.workers)), nil
		}
		// Re-apply the recorded ownership: a resumed job continues with the
		// shrunken worker set — dead slots stay dead, their partitions run
		// on the recorded hosts, and the fabric epoch catches up so any
		// straggler traffic from before the restart is rejected as stale.
		j.own.epoch = master.Epoch
		copy(j.own.dead, master.Dead)
		copy(j.own.hosts, master.Hosts)
		if rh, ok := j.fabric.(comm.Rehomer); ok {
			for w, d := range j.own.dead {
				if d {
					rh.Rehome(w, j.own.hosts[w])
				}
			}
			for rh.Epoch() < j.own.epoch {
				rh.AdvanceEpoch()
			}
		}
		j.jm.degraded.Set(int64(j.own.deadCount()))
		if j.cfg.OnRecovery != nil {
			// Replay the recorded adoptions into the hook so a health view
			// rebuilt after a daemon restart shows the shrunken cluster.
			for w, d := range j.own.dead {
				if d {
					j.cfg.OnRecovery(RecoveryNotice{Kind: "reassign", Step: step,
						Worker: w, Host: j.own.hosts[w], Epoch: j.own.epoch})
				}
			}
		}
	}
	for _, w := range j.workers {
		if cerr := context.Cause(j.runCtx); cerr != nil {
			return "", cerr
		}
		snap, serr := checkpoint.ReadSnapshot(coord.SnapshotPath(step, w.id), w.ct)
		if serr != nil {
			return fmt.Sprintf("worker %d snapshot: %v", w.id, serr), nil
		}
		if snap.Step != step || snap.Worker != w.id || len(snap.Records) != w.part.Len() {
			return fmt.Sprintf("worker %d snapshot claims step %d worker %d with %d records",
				w.id, snap.Step, snap.Worker, len(snap.Records)), nil
		}
		if aerr := w.applySnapshot(snap); aerr != nil {
			return "", aerr
		}
		if engine == Pull {
			w.vcache = newPullCache(w.vstore, j.cfg.VertexCache, j.cfg.Metrics)
		}
	}
	if engine == Hybrid {
		j.modes = j.modes[:0]
		for _, mode := range master.Modes {
			j.modes = append(j.modes, Engine(mode))
		}
		j.qtSigns = append(j.qtSigns[:0], master.QtSigns...)
		j.lastSwitch = master.LastSwitch
		j.rco = master.Rco
	}
	j.prevAgg = master.PrevAgg
	return "", nil
}

// buildSnapshot captures this worker's state after superstep t. The pull
// baseline's cache is flushed first so the vertex store is authoritative
// (checkpointing forces writeback, as it would on a real system).
func (w *worker) buildSnapshot(t int) (*checkpoint.Snapshot, error) {
	if w.vcache != nil {
		if err := w.vcache.flush(); err != nil {
			return nil, err
		}
	}
	s := &checkpoint.Snapshot{Step: t, Worker: w.id}
	s.Records = make([]vertexfile.Record, w.part.Len())
	if err := w.vstore.ReadRange(w.part.Lo, w.part.Hi, s.Records); err != nil {
		return nil, err
	}
	for p := 0; p < 2; p++ {
		s.Respond[p] = append([]uint64(nil), w.respond[p].Words()...)
		s.Active[p] = append([]uint64(nil), w.active[p].Words()...)
		if w.blockRes[p] != nil {
			s.BlockRes[p] = make([]bool, len(w.blockRes[p]))
			for i := range w.blockRes[p] {
				s.BlockRes[p][i] = w.blockRes[p][i].Load()
			}
		}
		if ib := w.inboxes[p]; ib != nil {
			msgs, err := ib.Pending()
			if err != nil {
				return nil, err
			}
			s.Pending[p] = msgs
		}
	}
	return s, nil
}

// applySnapshot restores this worker's state from a verified snapshot:
// vertex records (values plus both broadcast columns), flag vectors by
// parity, and — for the push engines — the parked inbox messages. Re-added
// overflow messages spill again, so restore cost follows the same model
// as the original delivery.
func (w *worker) applySnapshot(s *checkpoint.Snapshot) error {
	if err := w.vstore.WriteRange(w.part.Lo, w.part.Hi, s.Records); err != nil {
		return err
	}
	w.initFlags()
	for p := 0; p < 2; p++ {
		copy(w.respond[p].Words(), s.Respond[p])
		copy(w.active[p].Words(), s.Active[p])
		for i := 0; i < len(w.blockRes[p]) && i < len(s.BlockRes[p]); i++ {
			w.blockRes[p][i].Store(s.BlockRes[p][i])
		}
	}
	if w.inboxes[0] != nil || w.inboxes[1] != nil {
		w.initInboxes()
		for p := 0; p < 2; p++ {
			if w.inboxes[p] == nil {
				continue
			}
			for _, m := range s.Pending[p] {
				if err := w.inboxes[p].Add(m); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
