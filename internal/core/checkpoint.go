package core

import (
	"fmt"

	"hybridgraph/internal/checkpoint"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/metrics"
	"hybridgraph/internal/obs"
	"hybridgraph/internal/vertexfile"
)

// Checkpointing (the Pregel/Giraph policy the paper's prototype omits):
// every CheckpointEvery supersteps each worker snapshots its vertex values,
// flag vectors and parked inbox messages; the master commits the checkpoint
// only after every worker's snapshot is durably in place, together with its
// own record of hybrid's mode schedule. Recovery under Recovery:
// "checkpoint" restores the last committed checkpoint — including the
// mode-specific state each engine needs (inboxes for push, flag vectors and
// broadcast columns for b-pull, the switcher's Q^t history for hybrid) —
// and replays only the supersteps since, instead of superstep 1.

// maybeCheckpoint writes and commits a checkpoint after superstep t when
// the interval says so. All checkpoint I/O runs through the workers' disk
// counters and is surfaced as CheckpointIO/CheckpointSimSeconds, so the
// overhead is charged to the same cost model as the computation.
func (j *job) maybeCheckpoint(t int, res *metrics.JobResult) error {
	if j.cfg.CheckpointEvery <= 0 || t%j.cfg.CheckpointEvery != 0 {
		return nil
	}
	coord := checkpoint.Coordinator{Dir: j.dir}
	befores := make([]diskio.Snapshot, len(j.workers))
	for i, w := range j.workers {
		befores[i] = w.ct.Snapshot()
	}
	for _, w := range j.workers {
		snap, err := w.buildSnapshot(t)
		if err != nil {
			return fmt.Errorf("core: checkpoint at superstep %d: %w", t, err)
		}
		if _, err := checkpoint.WriteSnapshot(coord.SnapshotPath(t, w.id), w.ct, snap); err != nil {
			return fmt.Errorf("core: checkpoint at superstep %d: %w", t, err)
		}
	}
	// The master's own record is tiny; charge it to a scratch counter and
	// fold it into the same checkpoint tally.
	mct := &diskio.Counter{}
	if _, err := checkpoint.WriteMaster(coord.MasterPath(t), mct, j.masterRecord(t)); err != nil {
		return fmt.Errorf("core: checkpoint at superstep %d: %w", t, err)
	}
	if err := coord.Commit(t); err != nil {
		return fmt.Errorf("core: checkpoint at superstep %d: %w", t, err)
	}
	prev := j.ckptStep
	j.ckptStep = t
	if prev > 0 {
		if err := coord.Remove(prev, len(j.workers)); err != nil {
			// Pruning is housekeeping: the stale checkpoint's marker went
			// first, so it can never shadow the one just committed. Log the
			// failure and move on rather than failing the job.
			j.jm.pruneFails.Inc()
			if j.trace != nil {
				j.trace.Emit(obs.PruneFailedEvent{Type: obs.EventPruneFailed,
					Step: prev, Reason: err.Error()})
			}
		}
	}
	// Message-log segments up to t are covered by the snapshots (parked
	// inbox messages travel inside them), so confined replay never reads
	// them again.
	for _, w := range j.workers {
		if w.mlog == nil {
			continue
		}
		n, err := w.mlog.Prune(t)
		j.jm.logPrunes.Add(int64(n))
		if err != nil {
			j.jm.pruneFails.Inc()
			if j.trace != nil {
				j.trace.Emit(obs.PruneFailedEvent{Type: obs.EventPruneFailed,
					Step: t, Reason: "msglog: " + err.Error()})
			}
		}
	}
	delta := mct.Snapshot()
	for i, w := range j.workers {
		delta = delta.Add(w.ct.Snapshot().Sub(befores[i]))
	}
	res.Checkpoints++
	res.CheckpointIO = res.CheckpointIO.Add(delta)
	res.CheckpointSimSeconds += j.cfg.Profile.DiskSeconds(delta)
	j.jm.ckptCommits.Inc()
	j.jm.ckptBytes.Add(delta.Total())
	if j.trace != nil {
		j.trace.Emit(obs.CheckpointEvent{Type: obs.EventCheckpoint, Step: t,
			Workers: len(j.workers), Bytes: delta.Total(),
			SimSecs: j.cfg.Profile.DiskSeconds(delta)})
	}
	return nil
}

// masterRecord captures the job-level state a restore must bring back so
// hybrid's switcher does not re-learn from nothing.
func (j *job) masterRecord(t int) *checkpoint.Master {
	m := &checkpoint.Master{
		Step:       t,
		LastSwitch: j.lastSwitch,
		Rco:        j.rco,
		PrevAgg:    j.prevAgg,
	}
	for _, mode := range j.modes {
		m.Modes = append(m.Modes, string(mode))
	}
	m.QtSigns = append(m.QtSigns, j.qtSigns...)
	return m
}

// restoreFromCheckpoint brings every worker and the master back to the last
// committed checkpoint. ok is false when no committed checkpoint exists or
// it fails verification — the caller then falls back to scratch recovery
// (the checkpoint files never make recovery worse than the prototype's).
// The bytes read are charged to RecoverySimSeconds and ReplayIO on every
// exit path — an aborted restore reads real bytes before it gives up —
// and an abort on a committed checkpoint is journaled as restore_failed.
func (j *job) restoreFromCheckpoint(engine Engine, res *metrics.JobResult) (step int, ok bool, err error) {
	coord := checkpoint.Coordinator{Dir: j.dir}
	ck, committed := coord.LastCommitted()
	if !committed {
		return 0, false, nil
	}
	step = ck
	befores := make([]diskio.Snapshot, len(j.workers))
	for i, w := range j.workers {
		befores[i] = w.ct.Snapshot()
	}
	mct := &diskio.Counter{}
	failReason := ""
	defer func() {
		delta := mct.Snapshot()
		for i, w := range j.workers {
			delta = delta.Add(w.ct.Snapshot().Sub(befores[i]))
		}
		res.RecoverySimSeconds += j.cfg.Profile.DiskSeconds(delta)
		res.ReplayIO = res.ReplayIO.Add(delta)
		if ok {
			j.jm.restores.Inc()
			if j.trace != nil {
				j.trace.Emit(obs.CheckpointEvent{Type: obs.EventRestore, Step: ck,
					Workers: len(j.workers), Bytes: delta.Total(),
					SimSecs: j.cfg.Profile.DiskSeconds(delta)})
			}
		} else if failReason != "" {
			j.jm.restoreFail.Inc()
			if j.trace != nil {
				j.trace.Emit(obs.RestoreFailedEvent{Type: obs.EventRestoreFailed,
					Step: ck, Reason: failReason})
			}
		}
	}()
	master, merr := checkpoint.ReadMaster(coord.MasterPath(step), mct)
	if merr != nil {
		failReason = "master record: " + merr.Error()
		return 0, false, nil
	}
	if master.Step != step {
		failReason = fmt.Sprintf("master record claims step %d, marker says %d", master.Step, step)
		return 0, false, nil
	}
	for _, w := range j.workers {
		snap, serr := checkpoint.ReadSnapshot(coord.SnapshotPath(step, w.id), w.ct)
		if serr != nil {
			// A torn or corrupt snapshot: the commit marker promised it, but
			// trust the CRC over the marker and recompute from scratch.
			failReason = fmt.Sprintf("worker %d snapshot: %v", w.id, serr)
			return 0, false, nil
		}
		if snap.Step != step || snap.Worker != w.id || len(snap.Records) != w.part.Len() {
			failReason = fmt.Sprintf("worker %d snapshot claims step %d worker %d with %d records",
				w.id, snap.Step, snap.Worker, len(snap.Records))
			return 0, false, nil
		}
		if aerr := w.applySnapshot(snap); aerr != nil {
			return 0, false, aerr
		}
		if engine == Pull {
			w.vcache = newPullCache(w.vstore, j.cfg.VertexCache, j.cfg.Metrics)
		}
	}
	if engine == Hybrid {
		j.modes = j.modes[:0]
		for _, mode := range master.Modes {
			j.modes = append(j.modes, Engine(mode))
		}
		j.qtSigns = append(j.qtSigns[:0], master.QtSigns...)
		j.lastSwitch = master.LastSwitch
		j.rco = master.Rco
	}
	j.prevAgg = master.PrevAgg
	return step, true, nil
}

// buildSnapshot captures this worker's state after superstep t. The pull
// baseline's cache is flushed first so the vertex store is authoritative
// (checkpointing forces writeback, as it would on a real system).
func (w *worker) buildSnapshot(t int) (*checkpoint.Snapshot, error) {
	if w.vcache != nil {
		if err := w.vcache.flush(); err != nil {
			return nil, err
		}
	}
	s := &checkpoint.Snapshot{Step: t, Worker: w.id}
	s.Records = make([]vertexfile.Record, w.part.Len())
	if err := w.vstore.ReadRange(w.part.Lo, w.part.Hi, s.Records); err != nil {
		return nil, err
	}
	for p := 0; p < 2; p++ {
		s.Respond[p] = append([]uint64(nil), w.respond[p].Words()...)
		s.Active[p] = append([]uint64(nil), w.active[p].Words()...)
		if w.blockRes[p] != nil {
			s.BlockRes[p] = append([]bool(nil), w.blockRes[p]...)
		}
		if ib := w.inboxes[p]; ib != nil {
			msgs, err := ib.Pending()
			if err != nil {
				return nil, err
			}
			s.Pending[p] = msgs
		}
	}
	return s, nil
}

// applySnapshot restores this worker's state from a verified snapshot:
// vertex records (values plus both broadcast columns), flag vectors by
// parity, and — for the push engines — the parked inbox messages. Re-added
// overflow messages spill again, so restore cost follows the same model
// as the original delivery.
func (w *worker) applySnapshot(s *checkpoint.Snapshot) error {
	if err := w.vstore.WriteRange(w.part.Lo, w.part.Hi, s.Records); err != nil {
		return err
	}
	w.initFlags()
	for p := 0; p < 2; p++ {
		copy(w.respond[p].Words(), s.Respond[p])
		copy(w.active[p].Words(), s.Active[p])
		copy(w.blockRes[p], s.BlockRes[p])
	}
	if w.inboxes[0] != nil || w.inboxes[1] != nil {
		w.initInboxes()
		for p := 0; p < 2; p++ {
			if w.inboxes[p] == nil {
				continue
			}
			for _, m := range s.Pending[p] {
				if err := w.inboxes[p].Add(m); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
