package core

import (
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/graph"
)

// checkMatching validates a bipartite matching: matched pairs are mutual,
// lie on real edges, and the matching is maximal (no edge joins two
// unmatched vertices).
func checkMatching(t *testing.T, g *graph.Graph, vals []float64, label string) {
	t.Helper()
	matched := func(v int) (int, bool) {
		if vals[v] >= 0 {
			return int(vals[v]), true
		}
		return -1, false
	}
	edge := map[[2]int]bool{}
	for v := 0; v < g.NumVertices; v++ {
		for _, h := range g.OutEdges(graph.VertexID(v)) {
			edge[[2]int{v, int(h.Dst)}] = true
		}
	}
	for v := 0; v < g.NumVertices; v++ {
		if p, ok := matched(v); ok {
			q, ok2 := matched(p)
			if !ok2 || q != v {
				t.Fatalf("%s: vertex %d matched to %d, but %d points to %d", label, v, p, p, q)
			}
			if !edge[[2]int{v, p}] {
				t.Fatalf("%s: matched pair (%d,%d) is not an edge", label, v, p)
			}
		}
	}
	for v := 0; v < g.NumVertices; v++ {
		if _, ok := matched(v); ok {
			continue
		}
		for _, h := range g.OutEdges(graph.VertexID(v)) {
			if _, ok := matched(int(h.Dst)); !ok {
				t.Fatalf("%s: edge (%d,%d) joins two unmatched vertices (not maximal)", label, v, h.Dst)
			}
		}
	}
}

func TestMatchingIsMaximalAcrossEngines(t *testing.T) {
	g := algo.GenBipartite(200, 800, 91)
	prog := algo.NewMatching(12)
	cfg := Config{Workers: 3, MsgBuf: 100, MaxSteps: 60}
	want := referenceRun(g, prog, cfg.withDefaults().MaxSteps)
	checkMatching(t, g, want, "reference")
	for _, e := range []Engine{Push, BPull, Hybrid, Pull} {
		res, err := Run(g, prog, cfg, e)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		checkMatching(t, g, res.Values, string(e))
		// Deterministic choice rules make every engine find the same
		// matching as the oracle.
		for v := range want {
			if res.Values[v] != want[v] {
				t.Fatalf("%s: vertex %d = %g, want %g", e, v, res.Values[v], want[v])
			}
		}
	}
}

func TestMatchingRespondsOscillate(t *testing.T) {
	// Multi-Phase-Style: the responding population alternates between the
	// sides through the request/grant/accept cycle.
	g := algo.GenBipartite(300, 1500, 92)
	res, err := Run(g, algo.NewMatching(8), Config{Workers: 3, MsgBuf: 100, MaxSteps: 40}, BPull)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) < 6 {
		t.Fatalf("only %d supersteps", len(res.Steps))
	}
	for i := 0; i < 3; i++ {
		if res.Steps[i].Responding == 0 {
			t.Fatalf("phase %d should respond, got 0", i)
		}
	}
	// The responding count must not be monotone — it oscillates (left
	// requesters vs right granters vs left accepters).
	monotone := true
	for i := 1; i < 6; i++ {
		if res.Steps[i].Responding > res.Steps[i-1].Responding {
			monotone = false
		}
	}
	if monotone {
		t.Fatalf("responding counts look monotone, expected oscillation: %d %d %d %d %d %d",
			res.Steps[0].Responding, res.Steps[1].Responding, res.Steps[2].Responding,
			res.Steps[3].Responding, res.Steps[4].Responding, res.Steps[5].Responding)
	}
}

func TestMatchingTargetedMessagesStayNarrow(t *testing.T) {
	// Grant/accept phases send exactly one message per responder, far
	// fewer than a broadcast would (degree × responders).
	g := algo.GenBipartite(200, 1600, 93)
	res, err := Run(g, algo.NewMatching(8), Config{Workers: 2, MsgBuf: 100, MaxSteps: 8}, Push)
	if err != nil {
		t.Fatal(err)
	}
	grant := res.Steps[1] // phase 1
	if grant.Produced > grant.Responding {
		t.Fatalf("grant phase produced %d messages for %d responders (should be 1:1)",
			grant.Produced, grant.Responding)
	}
	request := res.Steps[0]
	if request.Produced <= request.Responding {
		t.Fatalf("request phase should broadcast: %d messages for %d responders",
			request.Produced, request.Responding)
	}
}
