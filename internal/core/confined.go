package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/checkpoint"
	"hybridgraph/internal/comm"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/metrics"
	"hybridgraph/internal/obs"
)

// Confined recovery (Recovery: "confined"): instead of rolling every
// worker back to the last committed checkpoint, only the failed worker
// restores its snapshot and replays the supersteps since, consuming the
// survivors' sender-side message logs (internal/msglog). Survivors serve
// log segments without recomputing anything — under push the failed
// worker's missing inbox deliveries are injected from the logs, and under
// b-pull its re-pulls read logged responses instead of the survivors'
// (by now advanced) vertex values. The job-level state the master keeps
// in memory (hybrid's mode schedule, Q^t history, aggregator value)
// survives a worker failure by construction, so nothing global is
// restored or discarded: recovery cost scales with the failed partition,
// which is the point.

// ErrStalledWorker is the sentinel every barrier-deadline stall detection
// matches: errors.Is(err, ErrStalledWorker) distinguishes workers the
// supervision declared failed for hanging from crashes and real errors.
var ErrStalledWorker = errors.New("core: worker missed the barrier deadline")

// StalledWorker is the typed error the master's barrier-deadline
// supervision raises when workers fail to reach the barrier of superstep
// Step before the deadline. Unlike a crash — detected before the
// superstep runs — the surviving workers have completed Step, so the
// stalled workers must rejoin a superstep the cluster already finished.
type StalledWorker struct {
	Step    int
	Workers []int
}

// Error implements error.
func (e *StalledWorker) Error() string {
	return fmt.Sprintf("core: workers %v missed the barrier deadline at superstep %d", e.Workers, e.Step)
}

// Is makes errors.Is(err, ErrStalledWorker) true for every detection.
func (e *StalledWorker) Is(target error) bool { return target == ErrStalledWorker }

// sendLogger wraps the job fabric for one worker under the confined
// policy: every cross-worker push packet is appended to the worker's
// message log before it reaches the fabric, so transport retries and
// duplicated deliveries can never double-log. Loopback packets are not
// logged — replay regenerates them locally. Pull responses are logged on
// the serving side (RespondPull), where the wire form is known.
type sendLogger struct {
	comm.Fabric
	w *worker
}

// Send implements comm.Fabric.
func (s *sendLogger) Send(p *comm.Packet) error {
	if p.To != s.w.id {
		if err := s.w.mlog.AppendPush(p.Step, p.To, p.Msgs); err != nil {
			return err
		}
	}
	return s.Fabric.Send(p)
}

// replayFabric is the fabric the failed worker's replay supersteps run
// through. In drop mode (crash replay) outgoing packets to survivors are
// discarded — they already received them before the failure — loopback
// packets are delivered locally, and pulls from survivors read their log
// segments instead of invoking Pull-Respond. In rejoin mode (the final
// superstep of a stalled worker, which the survivors finished without
// hearing from it) traffic flows through the live fabric and is logged
// like any normal superstep: the survivors' read-parity flag vectors and
// broadcast columns for that superstep are still intact, so live serving
// is exact.
type replayFabric struct {
	j      *job
	failed int
	rejoin bool

	logCt *diskio.Counter // survivors' log-segment reads

	mu     sync.Mutex
	served map[int]int64 // survivor id -> log bytes served this replay step
	net    int64         // replayed wire bytes this replay step
}

func (rf *replayFabric) resetStep() {
	rf.mu.Lock()
	rf.served = make(map[int]int64)
	rf.net = 0
	rf.mu.Unlock()
}

func (rf *replayFabric) takeStep() (served map[int]int64, net int64) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	return rf.served, rf.net
}

func (rf *replayFabric) addNet(n int64) {
	rf.mu.Lock()
	rf.net += n
	rf.mu.Unlock()
}

// Register implements comm.Fabric (never called during replay).
func (rf *replayFabric) Register(worker int, h comm.Handler) {}

// Send implements comm.Fabric.
func (rf *replayFabric) Send(p *comm.Packet) error {
	w := rf.j.workers[rf.failed]
	if rf.rejoin {
		// The survivors never heard from this worker at the rejoin
		// superstep: send for real, logging first like a normal superstep so
		// a later failure of another worker can replay against this log.
		if p.To != rf.failed {
			if err := w.mlog.AppendPush(p.Step, p.To, p.Msgs); err != nil {
				return err
			}
			rf.addNet(p.Bytes())
		}
		return rf.j.fabric.Send(p)
	}
	if p.To == rf.failed {
		// Loopback: the worker's own deliveries are regenerated, not logged.
		return w.DeliverMessages(p)
	}
	// Survivors received this packet before the failure; drop it.
	return nil
}

// PullRequest implements comm.Fabric.
func (rf *replayFabric) PullRequest(from, to, block, step int) ([]comm.Msg, int64, error) {
	if to == rf.failed {
		// Self-pull: recomputed locally from the worker's own restored state.
		return rf.j.workers[to].RespondPull(block, step)
	}
	if rf.rejoin {
		msgs, wire, err := rf.j.fabric.PullRequest(from, to, block, step)
		if err != nil {
			return nil, 0, err
		}
		rf.addNet(comm.PullReqSize + wire)
		return msgs, wire, nil
	}
	// Drop mode: the survivor serves its log segment — zero recompute I/O.
	msgs, _, err := rf.j.workers[to].mlog.PullResp(step, block, rf.logCt)
	if err != nil {
		return nil, 0, err
	}
	wire := comm.ConcatSize(msgs)
	rf.mu.Lock()
	rf.served[to] += wire
	rf.net += comm.PullReqSize + wire
	rf.mu.Unlock()
	return msgs, wire, nil
}

// Gather implements comm.Fabric. The pull baseline is rejected at setup
// under the confined policy, so replay can never reach here.
func (rf *replayFabric) Gather(from, to int, ids []graph.VertexID, step int) ([]comm.GatherResult, error) {
	return nil, fmt.Errorf("core: confined replay does not support the pull baseline")
}

// Signal implements comm.Fabric.
func (rf *replayFabric) Signal(from, to int, ids []graph.VertexID, step int) error {
	return fmt.Errorf("core: confined replay does not support the pull baseline")
}

// Traffic implements comm.Fabric.
func (rf *replayFabric) Traffic(w int) (in, out int64) { return rf.j.fabric.Traffic(w) }

// TotalBytes implements comm.Fabric.
func (rf *replayFabric) TotalBytes() int64 { return rf.j.fabric.TotalBytes() }

// rejoinStat is what a rejoin superstep contributes back to the stalled
// step's StepStats: the semantic quantities that drive halting decisions.
type rejoinStat struct {
	updated    int64
	responding int64
	produced   int64
	agg        float64
	aggSet     bool
}

// confinedRecoverAll recovers every failed worker in turn, patches the
// stalled step's aggregate with the rejoin contributions, and re-applies
// the halting checks the stalled superstep skipped. halt reports that the
// job is finished (the stalled step turned out to be the last one).
func (j *job) confinedRecoverAll(engine Engine, res *metrics.JobResult, failed []int, failStep, lastDone int, stalled bool) (halt bool, err error) {
	var rej rejoinStat
	aggProg, aggregating := j.prog.(algo.Aggregating)
	for _, fw := range failed {
		r, rerr := j.confinedRecover(engine, res, fw, lastDone, stalled)
		if rerr != nil {
			return false, rerr
		}
		rej.updated += r.updated
		rej.responding += r.responding
		rej.produced += r.produced
		if aggregating && r.aggSet {
			if rej.aggSet {
				rej.agg = aggProg.Reduce(rej.agg, r.agg)
			} else {
				rej.agg, rej.aggSet = r.agg, true
			}
		}
	}
	if !stalled || len(res.Steps) == 0 {
		return false, nil
	}
	st := &res.Steps[len(res.Steps)-1]
	if st.Step != failStep {
		return false, nil
	}
	// The stalled step's stats were aggregated without the failed workers;
	// fold their rejoin contributions back in so the halting checks the
	// superstep skipped see the complete superstep — otherwise a confined
	// run could iterate past the step a fault-free run stops at, diverging
	// from it.
	st.Updated += rej.updated
	st.Responding += rej.responding
	st.Produced += rej.produced
	if rej.aggSet {
		if j.lastStepAggSet {
			st.Aggregate = aggProg.Reduce(st.Aggregate, rej.agg)
		} else {
			st.Aggregate = rej.agg
		}
	}
	j.prevAgg = st.Aggregate
	if st.Responding == 0 {
		return true, nil
	}
	if aggregating && failStep > 1 && aggProg.Converged(st.Aggregate) {
		return true, nil
	}
	return false, nil
}

// confinedRecover restores one failed worker from its own snapshot (or
// per-worker scratch when no checkpoint verifies) and replays supersteps
// [ckpt+1, lastDone] against the survivors' logs. The caller resumes the
// main loop at lastDone+1; nothing is discarded.
func (j *job) confinedRecover(engine Engine, res *metrics.JobResult, fw, lastDone int, stalled bool) (rejoinStat, error) {
	w := j.workers[fw]
	base := j.ckptStep
	restored := false
	if base > 0 {
		ok, err := j.confinedRestore(w, base, res)
		if err != nil {
			return rejoinStat{}, err
		}
		restored = ok
		if !ok {
			base = 0
		}
	}
	if !restored {
		// Per-worker scratch: fresh flags and inboxes; replay starts at
		// superstep 1, whose Init overwrites the vertex values.
		w.initFlags()
		if w.inboxes[0] != nil || w.inboxes[1] != nil {
			w.initInboxes()
		}
	}

	rf := &replayFabric{j: j, failed: fw, logCt: &diskio.Counter{}, served: map[int]int64{}}
	// The survivors' log-segment reads get their own physical twin so the
	// frame bytes of a compressed msglog land in ReplayPhysIO.
	rf.logCt.SetPhys(&diskio.Counter{})
	j.replayFab = rf
	defer func() { j.replayFab = nil }()

	var rej rejoinStat
	replayed := 0
	for u := base + 1; u <= lastDone; u++ {
		// Replay can span many supersteps; honour cancellation between them
		// so an abort during recovery returns promptly with the context's
		// cause instead of replaying to completion first.
		if cerr := context.Cause(j.runCtx); cerr != nil {
			return rejoinStat{}, cerr
		}
		rf.rejoin = stalled && u == lastDone
		r, err := j.replayStep(w, u, base, engine, rf, res)
		if err != nil {
			return rejoinStat{}, err
		}
		if rf.rejoin {
			rej = r
		}
		replayed++
	}
	// The messages survivors sent during the last completed superstep are
	// waiting in their logs; park them in the recovered worker's inbox for
	// the superstep the resumed loop runs next.
	if lastDone > base {
		rf.rejoin = false
		rf.resetStep()
		wb := w.ct.Snapshot()
		lb := rf.logCt.Snapshot()
		wpb := j.pcts[w.id].Snapshot()
		lpb := rf.logCt.Phys().Snapshot()
		if err := j.injectLogged(w, lastDone, rf); err != nil {
			return rejoinStat{}, err
		}
		d := w.ct.Snapshot().Sub(wb)
		logD := rf.logCt.Snapshot().Sub(lb)
		physD := j.pcts[w.id].Snapshot().Sub(wpb).Add(rf.logCt.Phys().Snapshot().Sub(lpb))
		_, net := rf.takeStep()
		res.ReplayIO = res.ReplayIO.Add(d).Add(logD)
		res.ReplayPhysIO = res.ReplayPhysIO.Add(physD)
		res.ReplayNetBytes += net
		diskD := d.Add(logD)
		if j.cfg.ChargePhysical {
			diskD = physD
		}
		res.RecoverySimSeconds += j.cfg.Profile.DiskSeconds(diskD) + j.cfg.Profile.NetSeconds(net)
	}

	res.ConfinedRecoveries++
	j.jm.recoveries.Inc()
	j.jm.confined.Inc()
	if j.trace != nil {
		policy := "confined"
		if j.cfg.Recovery == "reassign" {
			policy = "reassign"
		}
		j.trace.Emit(obs.RecoveryEvent{Type: obs.EventRecovery, Policy: policy,
			RestartStep: lastDone + 1, Discarded: 0, Restored: restored,
			Worker: fw, Replayed: replayed})
	}
	return rej, nil
}

// confinedRestore restores only worker w from the committed checkpoint at
// step base. ok is false when the worker's snapshot fails verification —
// the caller then falls back to per-worker scratch replay. Either way the
// bytes read are charged to the recovery accounting, and an aborted
// restore is journaled as restore_failed.
func (j *job) confinedRestore(w *worker, base int, res *metrics.JobResult) (ok bool, err error) {
	coord := checkpoint.Coordinator{Dir: j.dir}
	before := w.ct.Snapshot()
	physBefore := j.pcts[w.id].Snapshot()
	failReason := ""
	defer func() {
		delta := w.ct.Snapshot().Sub(before)
		physDelta := j.pcts[w.id].Snapshot().Sub(physBefore)
		res.ReplayIO = res.ReplayIO.Add(delta)
		res.ReplayPhysIO = res.ReplayPhysIO.Add(physDelta)
		if j.cfg.ChargePhysical {
			res.RecoverySimSeconds += j.cfg.Profile.DiskSeconds(physDelta)
		} else {
			res.RecoverySimSeconds += j.cfg.Profile.DiskSeconds(delta)
		}
		if ok {
			res.Restores++
			j.jm.restores.Inc()
			if j.trace != nil {
				j.trace.Emit(obs.CheckpointEvent{Type: obs.EventRestore, Step: base,
					Workers: 1, Bytes: delta.Total(),
					SimSecs: j.cfg.Profile.DiskSeconds(delta)})
			}
		} else if failReason != "" {
			j.jm.restoreFail.Inc()
			if j.trace != nil {
				j.trace.Emit(obs.RestoreFailedEvent{Type: obs.EventRestoreFailed,
					Step: base, Reason: failReason})
			}
		}
	}()
	snap, serr := checkpoint.ReadSnapshot(coord.SnapshotPath(base, w.id), w.ct)
	if serr != nil {
		failReason = serr.Error()
		return false, nil
	}
	if snap.Step != base || snap.Worker != w.id || len(snap.Records) != w.part.Len() {
		failReason = fmt.Sprintf("snapshot claims step %d worker %d with %d records, want step %d worker %d with %d",
			snap.Step, snap.Worker, len(snap.Records), base, w.id, w.part.Len())
		return false, nil
	}
	if aerr := w.applySnapshot(snap); aerr != nil {
		return false, aerr
	}
	return true, nil
}

// replayStep re-executes superstep u on the failed worker alone, behind
// the replay fabric. Messages the survivors pushed to it during u-1 are
// injected from their logs first (unless u-1 is the checkpoint step,
// whose deliveries the snapshot already parked).
func (j *job) replayStep(w *worker, u, base int, engine Engine, rf *replayFabric, res *metrics.JobResult) (rejoinStat, error) {
	rf.resetStep()
	wb := w.ct.Snapshot()
	lb := rf.logCt.Snapshot()
	wpb := j.pcts[w.id].Snapshot()
	lpb := rf.logCt.Phys().Snapshot()
	survBefore := make([]diskio.Snapshot, len(j.workers))
	for i, sv := range j.workers {
		if i != w.id {
			survBefore[i] = sv.ct.Snapshot()
		}
	}
	w.resetStat()
	w.clearStepFlags(u)
	if u-1 > base {
		if err := j.injectLogged(w, u-1, rf); err != nil {
			return rejoinStat{}, err
		}
	}
	mode := engine
	if engine == Hybrid {
		mode = j.modes[u]
	}
	if err := j.stepWorker(w, u, engine, mode); err != nil {
		return rejoinStat{}, err
	}

	d := w.ct.Snapshot().Sub(wb)
	logD := rf.logCt.Snapshot().Sub(lb)
	physD := j.pcts[w.id].Snapshot().Sub(wpb).Add(rf.logCt.Phys().Snapshot().Sub(lpb))
	served, net := rf.takeStep()
	w.mu.Lock()
	stat := w.stat
	w.mu.Unlock()
	cpuSec := stat.cpu.Seconds(j.cfg.Profile)
	diskD := d.Add(logD)
	if j.cfg.ChargePhysical {
		diskD = physD
	}
	simSecs := cpuSec + j.cfg.Profile.DiskSeconds(diskD) + j.cfg.Profile.NetSeconds(net)
	res.ReplayIO = res.ReplayIO.Add(d).Add(logD)
	res.ReplayPhysIO = res.ReplayPhysIO.Add(physD)
	res.ReplayNetBytes += net
	res.RecoverySimSeconds += simSecs
	res.ReplayedSupersteps++
	j.jm.replayBytes.Add(d.Total() + logD.Total())
	j.jm.replaySteps.Inc()
	if j.trace != nil {
		j.trace.Emit(obs.ReplayStepEvent{Type: obs.EventReplayStep, Step: u,
			Worker: w.id, Rejoin: rf.rejoin, IO: d, LogBytes: logD.Total(),
			NetBytes: net, SimSecs: simSecs})
		for i, sv := range j.workers {
			if i == w.id {
				continue
			}
			// One line per survivor: the log bytes it served and its own
			// compute-counter delta — the "zero recompute I/O" assertion.
			j.trace.Emit(obs.ReplayServeEvent{Type: obs.EventReplayServe, Step: u,
				Worker: i, Bytes: served[i], IO: sv.ct.Snapshot().Sub(survBefore[i])})
		}
	}
	return rejoinStat{updated: stat.updated, responding: stat.responding,
		produced: stat.produced, agg: stat.agg, aggSet: stat.aggSet}, nil
}

// injectLogged parks the messages every survivor pushed to w during
// superstep step into w's inbox for step+1, reading them back from the
// survivors' logs. Log reads are charged to the replay fabric's counter;
// the re-delivered bytes count as replayed network traffic.
func (j *job) injectLogged(w *worker, step int, rf *replayFabric) error {
	for _, sv := range j.workers {
		if sv.id == w.id {
			continue
		}
		msgs, err := sv.mlog.PushTo(step, w.id, rf.logCt)
		if err != nil {
			return err
		}
		if len(msgs) == 0 {
			continue
		}
		if err := w.DeliverMessages(&comm.Packet{From: sv.id, To: w.id, Step: step, Msgs: msgs}); err != nil {
			return err
		}
		wire := int64(len(msgs)) * comm.MsgWireSize
		rf.mu.Lock()
		rf.served[sv.id] += wire
		rf.net += wire
		rf.mu.Unlock()
	}
	return nil
}
