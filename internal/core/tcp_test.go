package core

import (
	"testing"
	"time"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
)

// TestEnginesOverTCP runs the engines with all worker communication over
// real loopback TCP sockets and checks the results and byte accounting
// match the in-process fabric.
func TestEnginesOverTCP(t *testing.T) {
	g := graph.GenRMAT(400, 3200, 0.57, 0.19, 0.19, 77)
	cfg := Config{Workers: 3, MsgBuf: 100, MaxSteps: 6, VertexCache: 50}
	for name, prog := range map[string]algo.Program{
		"pagerank": algo.NewPageRank(0.85),
		"sssp":     algo.NewSSSP(0),
	} {
		for _, e := range []Engine{Push, BPull, Hybrid} {
			t.Run(name+"/"+string(e), func(t *testing.T) {
				local, err := Run(g, prog, cfg, e)
				if err != nil {
					t.Fatal(err)
				}
				tcpCfg := cfg
				tcpCfg.TCP = true
				tcp, err := Run(g, prog, tcpCfg, e)
				if err != nil {
					t.Fatal(err)
				}
				if tcp.Supersteps() != local.Supersteps() {
					t.Fatalf("supersteps %d over TCP vs %d local", tcp.Supersteps(), local.Supersteps())
				}
				for v := range local.Values {
					if !almostEqual(tcp.Values[v], local.Values[v]) {
						t.Fatalf("vertex %d = %g over TCP, %g local", v, tcp.Values[v], local.Values[v])
					}
				}
				if tcp.NetBytes != local.NetBytes {
					t.Fatalf("net bytes %d over TCP vs %d local (accounting must be transport-independent)",
						tcp.NetBytes, local.NetBytes)
				}
			})
		}
	}
}

// TestEnginesOverFaultyTCP runs the engines over a TCP fabric with a
// seeded fault plan dropping, delaying and duplicating well over 5% of
// RPCs. The resilient fabric must absorb every fault via deadline-bounded
// retries and serving-side dedup: results, superstep counts and byte
// accounting must be identical to a fault-free in-process run.
func TestEnginesOverFaultyTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injected TCP runs wait out many injected timeouts")
	}
	g := graph.GenRMAT(300, 2400, 0.57, 0.19, 0.19, 78)
	base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 5}
	prog := algo.NewPageRank(0.85)
	for _, e := range []Engine{Push, BPull, Hybrid} {
		t.Run(string(e), func(t *testing.T) {
			local, err := Run(g, prog, base, e)
			if err != nil {
				t.Fatal(err)
			}
			faulty := base
			faulty.TCP = true
			faulty.FaultPlan = &faultplan.Plan{Net: &faultplan.TransportFaults{
				Seed:         101,
				DropRequest:  0.04,
				DropResponse: 0.02,
				Duplicate:    0.05,
				Delay:        0.05,
				MaxDelay:     2 * time.Millisecond,
			}}
			res, err := Run(g, prog, faulty, e)
			if err != nil {
				t.Fatal(err)
			}
			if res.Supersteps() != local.Supersteps() {
				t.Fatalf("supersteps %d over faulty TCP vs %d local", res.Supersteps(), local.Supersteps())
			}
			for v := range local.Values {
				if !almostEqual(res.Values[v], local.Values[v]) {
					t.Fatalf("vertex %d = %g over faulty TCP, %g local", v, res.Values[v], local.Values[v])
				}
			}
			if res.NetBytes != local.NetBytes {
				t.Fatalf("net bytes %d over faulty TCP vs %d local (retries must not leak into accounting)",
					res.NetBytes, local.NetBytes)
			}
		})
	}
}
