package core

import (
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/graph"
)

// TestEnginesOverTCP runs the engines with all worker communication over
// real loopback TCP sockets and checks the results and byte accounting
// match the in-process fabric.
func TestEnginesOverTCP(t *testing.T) {
	g := graph.GenRMAT(400, 3200, 0.57, 0.19, 0.19, 77)
	cfg := Config{Workers: 3, MsgBuf: 100, MaxSteps: 6, VertexCache: 50}
	for name, prog := range map[string]algo.Program{
		"pagerank": algo.NewPageRank(0.85),
		"sssp":     algo.NewSSSP(0),
	} {
		for _, e := range []Engine{Push, BPull, Hybrid} {
			t.Run(name+"/"+string(e), func(t *testing.T) {
				local, err := Run(g, prog, cfg, e)
				if err != nil {
					t.Fatal(err)
				}
				tcpCfg := cfg
				tcpCfg.TCP = true
				tcp, err := Run(g, prog, tcpCfg, e)
				if err != nil {
					t.Fatal(err)
				}
				if tcp.Supersteps() != local.Supersteps() {
					t.Fatalf("supersteps %d over TCP vs %d local", tcp.Supersteps(), local.Supersteps())
				}
				for v := range local.Values {
					if !almostEqual(tcp.Values[v], local.Values[v]) {
						t.Fatalf("vertex %d = %g over TCP, %g local", v, tcp.Values[v], local.Values[v])
					}
				}
				if tcp.NetBytes != local.NetBytes {
					t.Fatalf("net bytes %d over TCP vs %d local (accounting must be transport-independent)",
						tcp.NetBytes, local.NetBytes)
				}
			})
		}
	}
}
