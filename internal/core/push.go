package core

import (
	"hybridgraph/internal/comm"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/msgstore"
	"hybridgraph/internal/vertexfile"
)

// stepPush runs one push superstep (Giraph's compute(), decoupled per
// Section 5.2 into load + update + pushRes): drain the messages pushed
// during the previous superstep, scan the vertex partition invoking
// update(), and — when produce is set — immediately push new messages
// toward their destination workers. produce is false only on hybrid's
// push→b-pull switch superstep (Fig. 6), where load()+update() run alone.
func (w *worker) stepPush(t int, produce bool) error {
	msgs, err := w.drainInbox(t)
	if err != nil {
		return err
	}
	var outbox *comm.Outbox
	if produce {
		outbox = comm.NewOutbox(w.fab(), len(w.job.workers), w.id, t, w.job.cfg.SendThreshold)
		if w.job.cfg.SenderCombine {
			if c := w.job.prog.Combiner(); c != nil {
				outbox.SetCombine(c)
			}
		}
	}
	// Each shard of the parallel update scan stages its sends locally and
	// the stages replay into the single outbox in shard order after the
	// scan joins — reproducing the sequential Add sequence, so packet
	// boundaries, combine batches and wire bytes are Parallelism-invariant.
	var stages []*comm.Stage
	hookFor := func(shard, shards int) updateHook {
		var stage *comm.Stage
		if outbox != nil {
			stage = comm.NewStage(comm.ShardThreshold(w.job.cfg.SendThreshold, shards))
			stages = append(stages, stage)
		}
		scratch := make([]graph.Half, 0, 256)
		return func(v graph.VertexID, rec *vertexfile.Record, responded bool) error {
			// Giraph loads a vertex together with its edges, so push reads the
			// edge run of every *updated* vertex (the active set V_act), not
			// just the responders — the IO(E^t) asymmetry against b-pull.
			if rec.OutDeg == 0 {
				return nil
			}
			eb, err := w.adj.EdgeBytes(v)
			if err != nil {
				return err
			}
			if w.job.cfg.EdgesInMemory {
				eb = 0
			}
			scratch = scratch[:0]
			scratch, err = w.adj.Edges(v, scratch)
			if err != nil {
				return err
			}
			w.addStat(func(s *workerStat) {
				s.parts.Et += eb
				s.cpu.Edges += int64(len(scratch))
			})
			if !responded || stage == nil {
				return nil
			}
			wp := writeParity(t)
			var sent int64
			for _, e := range scratch {
				val, keep := w.msgValueFor(rec.Bcast[wp], e.Dst, e.Weight)
				if !keep {
					continue
				}
				stage.Add(w.owner(e.Dst), comm.Msg{Dst: e.Dst, Val: val})
				sent++
			}
			w.addStat(func(s *workerStat) {
				s.produced += sent
				s.estM += sent
				s.cpu.Messages += sent
			})
			return nil
		}
	}
	if err := w.updateBlock(t, w.part.Lo, w.part.Hi, msgs, hookFor); err != nil {
		return err
	}
	if outbox != nil {
		for _, stage := range stages {
			if err := stage.MergeInto(outbox); err != nil {
				return err
			}
		}
		if err := outbox.Flush(); err != nil {
			return err
		}
		if saved := outbox.SavedBytes(); saved > 0 {
			w.addStat(func(s *workerStat) {
				s.mcoBytes += saved
				s.cpu.Messages += outbox.CombinedTouches() // combining is not free
			})
		}
	}
	if w.job.cfg.Async && produce && w.job.engine == Push {
		if err := w.relaxAsync(t); err != nil {
			return err
		}
	}
	if w.ve != nil {
		w.estimateBpullCosts(t)
	}
	return nil
}

// relaxAsync is the asynchronous-iteration extension: instead of parking
// messages that arrive during superstep t until the barrier, the worker
// keeps draining its inbox and applying updates eagerly, pushing the
// consequences on immediately. Workers ping-pong until global quiescence,
// which for monotone programs collapses convergence into few supersteps.
func (w *worker) relaxAsync(t int) error {
	prog := w.job.prog
	ctx := w.job.ctx(t)
	in := w.inboxes[writeParity(t+1)]
	scratch := make([]graph.Half, 0, 256)
	for {
		if in.Received() == 0 {
			return nil
		}
		msgs, err := in.Drain()
		if err != nil {
			return err
		}
		if len(msgs) == 0 {
			return nil
		}
		outbox := comm.NewOutbox(w.fab(), len(w.job.workers), w.id, t, w.job.cfg.SendThreshold)
		var updated, responding, sent int64
		for v, mv := range msgs {
			rec, err := w.vstore.ReadRecord(v)
			if err != nil {
				return err
			}
			var respond bool
			rec.Val, respond = prog.Update(ctx, v, int(rec.OutDeg), rec.Val, mv)
			updated++
			if !respond {
				continue
			}
			responding++
			bcast := w.bcastFor(ctx, v, rec.Val, int(rec.OutDeg), mv)
			rec.Bcast[writeParity(t)] = bcast
			if err := w.vstore.WriteRecord(rec); err != nil {
				return err
			}
			scratch = scratch[:0]
			scratch, err = w.adj.Edges(v, scratch)
			if err != nil {
				return err
			}
			for _, e := range scratch {
				val, keep := w.msgValueFor(bcast, e.Dst, e.Weight)
				if !keep {
					continue
				}
				if err := outbox.Add(w.owner(e.Dst), comm.Msg{Dst: e.Dst, Val: val}); err != nil {
					return err
				}
				sent++
			}
		}
		if err := outbox.Flush(); err != nil {
			return err
		}
		w.addStat(func(s *workerStat) {
			s.updated += updated
			s.responding += responding
			s.produced += sent
			s.cpu.Updates += updated
			s.cpu.Messages += sent
		})
	}
}

// drainInbox loads the messages pushed during superstep t-1, charging the
// spill read-back and MOCgraph-free sort work.
func (w *worker) drainInbox(t int) (map[graph.VertexID][]float64, error) {
	ib := w.inboxes[t&1]
	if ib == nil {
		return nil, nil
	}
	spilled := ib.Spilled()
	msgs, err := ib.Drain()
	if err != nil {
		return nil, err
	}
	// Canonicalise each vertex's message list: delivery order depends on
	// goroutine interleaving across senders, and floating-point update
	// functions (PageRank's sum) are order-sensitive. Sorting makes every
	// run — and every recovery replay, whose injected messages arrive in
	// log order — produce bit-identical values. Independent per-list sorts
	// parallelise freely; the result is the same regardless.
	msgstore.SortLists(msgs, w.job.cfg.Parallelism)
	var inMem int64
	for _, vals := range msgs {
		inMem += int64(len(vals))
	}
	inMem -= spilled
	w.addStat(func(s *workerStat) {
		s.parts.MdiskR += spilled * comm.MsgWireSize
		s.cpu.Spilled += spilled // Giraph's sort-merge handling of disk messages
		s.msgsInMem += inMem
		if m := inMem * comm.MsgWireSize; m > s.memBytes {
			s.memBytes = m
		}
	})
	return msgs, nil
}

// estimateBpullCosts records what b-pull would have paid this superstep,
// from VE-BLOCK metadata alone (Section 5.3: "Cio(b-pull) is estimated
// using the metadata of Eblocks"): the Eblocks g_ji reachable from blocks
// with responders at t-1, their fragment auxiliary bytes, and an upper
// bound on the svertex random reads.
func (w *worker) estimateBpullCosts(t int) {
	if w.job.cfg.EdgesInMemory && w.job.cfg.VerticesInMemory {
		return // the other mode would pay no disk I/O either
	}
	rp := readParity(t)
	var ebar, ft, vrr int64
	for j := 0; j < w.ve.LocalBlocks(); j++ {
		if !w.blockRes[rp][j].Load() {
			continue
		}
		m := w.ve.Meta(j)
		for i := 0; i < w.job.layout.NumBlocks(); i++ {
			if !m.Bitmap.Get(i) {
				continue
			}
			size, frags, _ := w.ve.EblockSize(j, i)
			ft += int64(frags) * 8
			ebar += size - int64(frags)*8
			vrr += int64(frags) * vertexfile.BcastSize
		}
	}
	w.addStat(func(s *workerStat) {
		s.estEbar += ebar
		s.estFt += ft
		s.estVrr += vrr
	})
}

// DeliverMessages implements comm.Handler: accept a packet pushed during
// superstep p.Step for consumption at p.Step+1.
func (w *worker) DeliverMessages(p *comm.Packet) error {
	ib := w.inboxes[writeParity(p.Step+1)]
	for _, m := range p.Msgs {
		if err := ib.Add(m); err != nil {
			return err
		}
	}
	w.addStat(func(s *workerStat) {
		s.cpu.Messages += int64(len(p.Msgs))
	})
	return nil
}

// DeliverSignals implements comm.Handler (pull baseline scatter).
func (w *worker) DeliverSignals(ids []graph.VertexID, step int) error {
	wp := writeParity(step)
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, v := range ids {
		w.active[wp].Set(w.localIdx(v))
	}
	return nil
}
