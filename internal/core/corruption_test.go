package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/checkpoint"
	"hybridgraph/internal/graph"
)

// flipByte corrupts one byte in the middle of a checkpoint file.
func flipByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatalf("%s is empty", path)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreSurvivesCorruption seeds a work directory with a committed
// checkpoint, corrupts one of its pieces, and drives a crash recovery
// through it: the CRC must catch the damage, the job must fall back to
// scratch recomputation with values exactly matching a fault-free run,
// the aborted restore must be journaled as restore_failed, and the bytes
// it read before giving up must be charged to RecoverySimSeconds.
func TestRestoreSurvivesCorruption(t *testing.T) {
	g := graph.GenRMAT(400, 3000, 0.57, 0.19, 0.19, 71)
	prog := func() algo.Program { return algo.NewPageRank(0.85) }

	clean, err := Run(g, prog(), Config{Workers: 3, MsgBuf: 100, MaxSteps: 5}, Push)
	if err != nil {
		t.Fatal(err)
	}

	// seed writes a committed checkpoint at superstep 3 into dir.
	seed := func(t *testing.T, dir string) {
		cfg := Config{Workers: 3, MsgBuf: 100, MaxSteps: 4, CheckpointEvery: 3,
			WorkDir: dir, KeepFiles: true}
		if _, err := Run(g, prog(), cfg, Push); err != nil {
			t.Fatal(err)
		}
		coord := checkpoint.Coordinator{Dir: dir}
		if step, ok := coord.LastCommitted(); !ok || step != 3 {
			t.Fatalf("seed run committed step %d (ok=%v), want 3", step, ok)
		}
	}

	// crash runs the same job with a crash at superstep 2 under the
	// checkpoint policy, so recovery attempts a restore from the (damaged)
	// directory, and returns the result plus the parsed trace.
	crash := func(t *testing.T, dir string) (*parsedTrace, float64, []float64) {
		var buf bytes.Buffer
		cfg := Config{Workers: 3, MsgBuf: 100, MaxSteps: 5, Recovery: "checkpoint",
			CheckpointEvery: 10, WorkDir: dir, KeepFiles: true,
			FailStep: 2, FailWorker: 1, TraceWriter: &buf}
		res, err := Run(g, prog(), cfg, Push)
		if err != nil {
			t.Fatal(err)
		}
		return parseTrace(t, buf.Bytes()), res.RecoverySimSeconds, res.Values
	}

	// baseline: the same crash with no checkpoint directory at all — the
	// recovery-time difference against it is the aborted restore's reads.
	_, baseSecs, _ := crash(t, t.TempDir())

	check := func(t *testing.T, p *parsedTrace, secs float64, vals []float64, wantExtraSecs bool) {
		if len(p.restores) != 0 {
			t.Fatal("a corrupt checkpoint must not restore")
		}
		if len(p.restoreFailed) != 1 {
			t.Fatalf("restore_failed events = %d, want 1", len(p.restoreFailed))
		}
		if p.restoreFailed[0].Reason == "" {
			t.Fatal("restore_failed event carries no reason")
		}
		if len(p.recoveries) != 1 || p.recoveries[0].RestartStep != 1 {
			t.Fatalf("recovery = %+v, want scratch fallback restarting at 1", p.recoveries)
		}
		if wantExtraSecs && secs <= baseSecs {
			t.Fatalf("RecoverySimSeconds = %g, want > %g: the aborted restore read real bytes",
				secs, baseSecs)
		}
		for v := range clean.Values {
			if vals[v] != clean.Values[v] {
				t.Fatalf("vertex %d = %g after fallback, fault-free run has %g",
					v, vals[v], clean.Values[v])
			}
		}
	}

	t.Run("worker-snapshot", func(t *testing.T) {
		dir := t.TempDir()
		seed(t, dir)
		flipByte(t, checkpoint.Coordinator{Dir: dir}.SnapshotPath(3, 1))
		p, secs, vals := crash(t, dir)
		check(t, p, secs, vals, true)
	})
	t.Run("master-record", func(t *testing.T) {
		dir := t.TempDir()
		seed(t, dir)
		flipByte(t, checkpoint.Coordinator{Dir: dir}.MasterPath(3))
		p, secs, vals := crash(t, dir)
		check(t, p, secs, vals, true)
	})
	t.Run("stale-commit-marker", func(t *testing.T) {
		// A commit marker promising a checkpoint whose files never made it:
		// the phantom candidate must be rejected (journaled restore_failed)
		// and the restore must fall back to the older, intact committed
		// checkpoint — not crash, not restore garbage, and not throw the
		// good checkpoint away with the bad one.
		dir := t.TempDir()
		seed(t, dir)
		if err := os.WriteFile(filepath.Join(dir, "ckpt-000009.commit"), []byte("9"), 0o644); err != nil {
			t.Fatal(err)
		}
		p, _, vals := crash(t, dir)
		if len(p.restoreFailed) != 1 || p.restoreFailed[0].Step != 9 {
			t.Fatalf("restore_failed = %+v, want exactly one at the phantom step 9", p.restoreFailed)
		}
		if len(p.restores) != 1 || p.restores[0].Step != 3 {
			t.Fatalf("restores = %+v, want the fallback restore of the intact checkpoint at 3", p.restores)
		}
		if len(p.recoveries) != 1 || p.recoveries[0].RestartStep != 4 || !p.recoveries[0].Restored {
			t.Fatalf("recovery = %+v, want a restored restart at superstep 4", p.recoveries)
		}
		// The phantom marker must be gone so it can never shadow again.
		if _, err := os.Stat(filepath.Join(dir, "ckpt-000009.commit")); !os.IsNotExist(err) {
			t.Fatalf("phantom commit marker still present after rejection (err=%v)", err)
		}
		for v := range clean.Values {
			if vals[v] != clean.Values[v] {
				t.Fatalf("vertex %d = %g after fallback restore, fault-free run has %g",
					v, vals[v], clean.Values[v])
			}
		}
	})
}
