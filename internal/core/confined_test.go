package core

import (
	"bytes"
	"testing"
	"time"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
)

// TestConfinedMatchesEveryPolicy is the acceptance matrix: for identical
// fault plans, the final values under scratch, checkpoint and confined
// recovery must be exactly — bit for bit — the values of a fault-free
// run, across the three core algorithms and the three loggable engines.
func TestConfinedMatchesEveryPolicy(t *testing.T) {
	g := graph.GenRMAT(500, 4000, 0.57, 0.19, 0.19, 61)
	plan := faultplan.NewPlan(faultplan.Crash{Step: 5, Worker: 1})
	for name, prog := range map[string]algo.Program{
		"pagerank": algo.NewPageRank(0.85),
		"sssp":     algo.NewSSSP(0),
		"wcc":      algo.NewWCC(),
	} {
		for _, e := range []Engine{Push, BPull, Hybrid} {
			t.Run(name+"/"+string(e), func(t *testing.T) {
				base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 8, CheckpointEvery: 3}
				clean, err := Run(g, prog, base, e)
				if err != nil {
					t.Fatal(err)
				}
				for _, policy := range []string{"scratch", "checkpoint", "confined"} {
					cfg := base
					cfg.Recovery = policy
					cfg.FaultPlan = plan
					res, err := Run(g, prog, cfg, e)
					if err != nil {
						t.Fatalf("%s: %v", policy, err)
					}
					if res.Restarts != 1 {
						t.Fatalf("%s: Restarts = %d, want 1", policy, res.Restarts)
					}
					if policy == "confined" && res.ConfinedRecoveries != 1 {
						t.Fatalf("ConfinedRecoveries = %d, want 1", res.ConfinedRecoveries)
					}
					for v := range clean.Values {
						if res.Values[v] != clean.Values[v] {
							t.Fatalf("%s: vertex %d = %g, fault-free run has %g",
								policy, v, res.Values[v], clean.Values[v])
						}
					}
					if res.Supersteps() != clean.Supersteps() {
						t.Fatalf("%s: %d supersteps, fault-free run took %d",
							policy, res.Supersteps(), clean.Supersteps())
					}
				}
			})
		}
	}
}

// TestConfinedRestoresOnlyFailedWorker asserts, from the trace journal,
// the tentpole's defining properties for a single-worker crash: only the
// failed worker's snapshot is read back, the survivors serve replay with
// zero recompute I/O, and the replay bytes are strictly less than what
// the global checkpoint policy pays for the same fault plan.
func TestConfinedRestoresOnlyFailedWorker(t *testing.T) {
	g := graph.GenRMAT(600, 6000, 0.57, 0.19, 0.19, 62)
	plan := faultplan.NewPlan(faultplan.Crash{Step: 6, Worker: 2})
	base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 9, CheckpointEvery: 3, FaultPlan: plan}

	var buf bytes.Buffer
	cfg := base
	cfg.Recovery = "confined"
	cfg.TraceWriter = &buf
	conf, err := Run(g, algo.NewPageRank(0.85), cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	p := parseTrace(t, buf.Bytes())

	if len(p.restores) != 1 {
		t.Fatalf("restore events = %d, want 1", len(p.restores))
	}
	if p.restores[0].Workers != 1 {
		t.Fatalf("restore touched %d workers, confined must restore only the failed one", p.restores[0].Workers)
	}
	// Crash at 6 with a checkpoint at 3: replay supersteps 4 and 5.
	if len(p.replaySteps) != 2 {
		t.Fatalf("replay_step events = %d, want 2", len(p.replaySteps))
	}
	for _, ev := range p.replaySteps {
		if ev.Worker != 2 {
			t.Fatalf("replay_step on worker %d, want the failed worker 2", ev.Worker)
		}
		if ev.Rejoin {
			t.Fatal("crash replay must not have a rejoin step")
		}
	}
	if len(p.replayServes) == 0 {
		t.Fatal("no replay_serve events journaled")
	}
	for _, ev := range p.replayServes {
		if ev.Worker == 2 {
			t.Fatalf("replay_serve attributed to the failed worker")
		}
		if ev.IO.Total() != 0 {
			t.Fatalf("survivor %d paid %d bytes of recompute I/O at replay step %d, want 0",
				ev.Worker, ev.IO.Total(), ev.Step)
		}
	}
	if len(p.recoveries) != 1 || p.recoveries[0].Policy != "confined" {
		t.Fatalf("recovery events = %+v, want one confined recovery", p.recoveries)
	}
	if p.recoveries[0].Worker != 2 || p.recoveries[0].Replayed != 2 || p.recoveries[0].Discarded != 0 {
		t.Fatalf("recovery event = %+v, want worker 2, 2 replayed, 0 discarded", p.recoveries[0])
	}

	cfg = base
	cfg.Recovery = "checkpoint"
	ckpt, err := Run(g, algo.NewPageRank(0.85), cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	if conf.ReplayIO.Total() <= 0 {
		t.Fatal("confined recovery should have replayed some bytes")
	}
	if ckpt.ReplayIO.Total() <= conf.ReplayIO.Total() {
		t.Fatalf("confined replayed %d bytes, global checkpoint %d — confined must be strictly cheaper",
			conf.ReplayIO.Total(), ckpt.ReplayIO.Total())
	}
	if conf.LogIO.Total() <= 0 {
		t.Fatal("confined runs must account their message-log writes")
	}
	if ckpt.LogIO.Total() != 0 {
		t.Fatalf("checkpoint policy logged %d bytes, logging is confined-only", ckpt.LogIO.Total())
	}
}

// TestConfinedStallRejoin drives the barrier-deadline supervision: a
// stalled worker is declared failed at a superstep the survivors
// completed, recovers confined, and rejoins with the final values exactly
// matching a fault-free run.
func TestConfinedStallRejoin(t *testing.T) {
	g := graph.GenRMAT(500, 4000, 0.57, 0.19, 0.19, 63)
	for name, prog := range map[string]algo.Program{
		"pagerank": algo.NewPageRank(0.85),
		"sssp":     algo.NewSSSP(0),
	} {
		for _, e := range []Engine{Push, BPull, Hybrid} {
			t.Run(name+"/"+string(e), func(t *testing.T) {
				base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 8, CheckpointEvery: 3}
				clean, err := Run(g, prog, base, e)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				cfg := base
				cfg.Recovery = "confined"
				cfg.FaultPlan = faultplan.NewPlan().WithStalls(faultplan.Stall{Step: 4, Worker: 1})
				cfg.BarrierDeadline = 50 * time.Millisecond
				cfg.TraceWriter = &buf
				res, err := Run(g, prog, cfg, e)
				if err != nil {
					t.Fatal(err)
				}
				if res.Stalls != 1 {
					t.Fatalf("Stalls = %d, want 1", res.Stalls)
				}
				if res.ConfinedRecoveries != 1 {
					t.Fatalf("ConfinedRecoveries = %d, want 1", res.ConfinedRecoveries)
				}
				p := parseTrace(t, buf.Bytes())
				foundStall := false
				for _, f := range p.faults {
					if f.Kind == "stall" && f.Step == 4 && f.Worker == 1 {
						foundStall = true
					}
				}
				if !foundStall {
					t.Fatal("no stall fault journaled")
				}
				rejoins := 0
				for _, ev := range p.replaySteps {
					if ev.Rejoin {
						rejoins++
						if ev.Step != 4 {
							t.Fatalf("rejoin at step %d, want the stalled step 4", ev.Step)
						}
					}
				}
				if rejoins != 1 {
					t.Fatalf("rejoin steps = %d, want 1", rejoins)
				}
				for v := range clean.Values {
					if res.Values[v] != clean.Values[v] {
						t.Fatalf("vertex %d = %g after stall recovery, fault-free run has %g",
							v, res.Values[v], clean.Values[v])
					}
				}
				if res.Supersteps() != clean.Supersteps() {
					t.Fatalf("%d supersteps, fault-free run took %d",
						res.Supersteps(), clean.Supersteps())
				}
			})
		}
	}
}

// TestConfinedScratchReplayWithoutCheckpoint: a crash before the first
// checkpoint interval leaves no snapshot; the failed worker alone replays
// from superstep 1 against the survivors' logs.
func TestConfinedScratchReplayWithoutCheckpoint(t *testing.T) {
	g := graph.GenRMAT(400, 3000, 0.57, 0.19, 0.19, 64)
	base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 7, CheckpointEvery: 100}
	clean, err := Run(g, algo.NewSSSP(0), base, Push)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := base
	cfg.Recovery = "confined"
	cfg.FaultPlan = faultplan.NewPlan(faultplan.Crash{Step: 4, Worker: 0})
	cfg.TraceWriter = &buf
	res, err := Run(g, algo.NewSSSP(0), cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	p := parseTrace(t, buf.Bytes())
	if len(p.restores) != 0 {
		t.Fatalf("restore events = %d, want none without a committed checkpoint", len(p.restores))
	}
	if len(p.replaySteps) != 3 {
		t.Fatalf("replay_step events = %d, want 3 (supersteps 1-3)", len(p.replaySteps))
	}
	for v := range clean.Values {
		if res.Values[v] != clean.Values[v] {
			t.Fatalf("vertex %d = %g, fault-free run has %g", v, res.Values[v], clean.Values[v])
		}
	}
}

// TestConfinedCompoundFaults chains a crash and a later stall of another
// worker inside one confined run.
func TestConfinedCompoundFaults(t *testing.T) {
	g := graph.GenRMAT(500, 4000, 0.57, 0.19, 0.19, 65)
	base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 9, CheckpointEvery: 3}
	clean, err := Run(g, algo.NewPageRank(0.85), base, Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Recovery = "confined"
	cfg.FaultPlan = faultplan.NewPlan(faultplan.Crash{Step: 3, Worker: 0}).
		WithStalls(faultplan.Stall{Step: 6, Worker: 2})
	cfg.BarrierDeadline = 50 * time.Millisecond
	res, err := Run(g, algo.NewPageRank(0.85), cfg, Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 2 || res.ConfinedRecoveries != 2 || res.Stalls != 1 {
		t.Fatalf("Restarts=%d ConfinedRecoveries=%d Stalls=%d, want 2/2/1",
			res.Restarts, res.ConfinedRecoveries, res.Stalls)
	}
	for v := range clean.Values {
		if res.Values[v] != clean.Values[v] {
			t.Fatalf("vertex %d = %g, fault-free run has %g", v, res.Values[v], clean.Values[v])
		}
	}
}

// TestConfinedRejectsPullBaseline: gather/scatter exchanges cannot be
// replayed from a sender-side log.
func TestConfinedRejectsPullBaseline(t *testing.T) {
	g := graph.GenUniform(100, 500, 66)
	cfg := Config{Workers: 2, MsgBuf: 50, MaxSteps: 4, Recovery: "confined"}
	if _, err := Run(g, algo.NewPageRank(0.85), cfg, Pull); err == nil {
		t.Fatal("confined + pull baseline should be rejected")
	}
	cfg.Async = true
	if _, err := Run(g, algo.NewSSSP(0), cfg, Push); err == nil {
		t.Fatal("confined + async should be rejected")
	}
}
