package core

import (
	"hybridgraph/internal/comm"
	"hybridgraph/internal/metrics"
)

// Hybrid mode scheduling (Section 5.3-5.4, Algorithm 3).
//
// Modes are decided two supersteps ahead: the statistics of superstep t
// predict Q^{t+2} (Shang-Yu persistence forecasting with Δt = 2), so while
// superstep t runs, modes[t] and modes[t+1] are already fixed. That is
// what makes Fig. 6's switch supersteps well-defined: superstep t consumes
// messages per modes[t] and produces per modes[t+1]; when they differ the
// superstep executes the switch (pullRes+update+pushRes, or load+update
// alone).

// initHybridModes picks the starting mode before any superstep has run
// (Algorithm 3, line 2). Theorem 2's rule — b-pull when B ≤ B⊥ = |E|/2−f —
// decides the clear cases. When B > B⊥ we additionally evaluate Eq. (11)
// directly under the theorem's own broadcast assumption (every vertex
// sends on every out-edge, M = |E|): the theorem drops constant factors
// that matter when fragments are small relative to messages, and the
// direct Qt estimate is strictly sharper. With unlimited buffers
// (sufficient memory) communication dominates and b-pull's concatenation
// and combining always win, so b-pull starts.
func (j *job) initHybridModes() {
	init := BPull
	if j.bTotal > 0 {
		bLower := int64(j.g.NumEdges())/2 - j.totalFrags
		if j.bTotal > bLower {
			m := int64(j.g.NumEdges())
			var mdisk int64
			if over := m - j.bTotal; over > 0 {
				mdisk = over * comm.MsgWireSize
			}
			ft := j.totalFrags * 8
			vrr := j.totalFrags * 8
			et := m * 8
			ebar := m * 8
			// Mco conservatively 0: the decision rests on I/O alone,
			// exactly as Theorem 2's derivation does.
			if metrics.Qt(j.cfg.Profile, 0, mdisk, vrr, et, ebar, ft) < 0 {
				init = Push
			}
		}
	}
	j.modes = make([]Engine, j.cfg.MaxSteps+3)
	for i := range j.modes {
		j.modes[i] = init
	}
	j.rco = 0.4 // prior for the combining ratio before b-pull has run
	j.lastSwitch = -10
	j.qtSigns = nil
}

// produceMode reports how superstep t's messages leave the node: pushed
// now (modes[t+1] == Push) or pulled at t+1.
func (j *job) produceMode(t int) Engine {
	if t+1 < len(j.modes) {
		return j.modes[t+1]
	}
	return j.modes[len(j.modes)-1]
}

// scheduleMode runs Algorithm 3's evaluate() after superstep t: the
// predicted Q^{t+2} picks modes[t+2], with switches spaced at least the
// switching interval Δt = 2 apart (frequent switching is not cost
// effective, Section 5.3). With PhaseAware set, a detected period in the
// Q^t sign history overrides the persistence forecast — the Appendix G
// proposal for Multi-Phase-Style algorithms, whose oscillating activity
// defeats Δt-delayed switching.
func (j *job) scheduleMode(t int, st metrics.StepStats) {
	j.qtSigns = append(j.qtSigns, st.Qt >= 0)
	if t+2 >= len(j.modes) {
		return
	}
	want := Push
	if st.Qt >= 0 {
		want = BPull
	}
	periodic := false
	if j.cfg.PhaseAware {
		if p, ok := detectPeriod(j.qtSigns); ok {
			// Predict t+2's sign from the same phase one period earlier.
			idx := len(j.qtSigns) + 1 - p // 0-based index of step t+2-p
			if idx >= 0 && idx < len(j.qtSigns) {
				periodic = true
				if j.qtSigns[idx] {
					want = BPull
				} else {
					want = Push
				}
			}
		}
	}
	cur := j.modes[t+1]
	// A confidently periodic schedule may switch every superstep; the
	// Δt spacing exists only because *mispredicted* switches are wasted.
	if want != cur && !periodic && (t+2)-j.lastSwitch < j.cfg.SwitchInterval {
		want = cur
	}
	if want != cur {
		j.lastSwitch = t + 2
	}
	for i := t + 2; i < len(j.modes); i++ {
		j.modes[i] = want
	}
}

// detectPeriod looks for the smallest period p (2 ≤ p ≤ len/3) such that
// the boolean history repeats over its last three cycles; requiring three
// keeps spurious matches on short histories out.
func detectPeriod(signs []bool) (int, bool) {
	n := len(signs)
	for p := 2; p*3 <= n; p++ {
		ok := true
		// The last 2p entries must match the p entries before them.
		for i := n - 2*p; i < n && ok; i++ {
			ok = signs[i] == signs[i-p]
		}
		if !ok {
			continue
		}
		// Reject constant histories: a period needs both signs.
		var hasTrue, hasFalse bool
		for _, s := range signs[n-p:] {
			if s {
				hasTrue = true
			} else {
				hasFalse = true
			}
		}
		if hasTrue && hasFalse {
			return p, true
		}
	}
	return 0, false
}

// finishQt evaluates Eq. (11) for the superstep from measured quantities
// plus the estimates the other mode requires, and records the prediction
// inputs (Figs. 11-13 report their accuracy).
func (j *job) finishQt(t int, mode Engine, st *metrics.StepStats) {
	p := j.cfg.Profile
	var estEbar, estFt, estVrr, estEt int64
	var mdisk int64
	var mcoBytes int64

	switch mode {
	case BPull:
		// Measured b-pull side; push side estimated.
		mcoBytes = st.McoBytes
		estEt = st.EstEt
		if st.Parts.Et > 0 { // a switch superstep measured real push edges
			estEt += st.Parts.Et
		}
		if j.bTotal > 0 {
			if over := st.Produced - j.bTotal; over > 0 {
				mdisk = over * comm.MsgWireSize
			}
		}
		st.Qt = metrics.Qt(p, mcoBytes, mdisk, st.Parts.Vrr, estEt, st.Parts.Ebar, st.Parts.Ft)
		st.Pred = metrics.Prediction{
			Mco:      mcoBytes,
			CioPush:  st.Parts.Vt + estEt + 2*mdisk,
			CioBpull: st.Parts.CioBpull(),
		}
		if st.Produced > 0 {
			j.rco = float64(mcoBytes) / float64(st.Produced*comm.MsgWireSize)
		}
	case Push, PushM:
		// Measured push side; b-pull side estimated from metadata.
		estEbar, estFt, estVrr = st.EstEbar, st.EstFt, st.EstVrr
		mdisk = st.Parts.MdiskW
		mcoBytes = int64(float64(st.Produced*comm.MsgWireSize) * j.rco)
		st.Qt = metrics.Qt(p, mcoBytes, mdisk, estVrr, st.Parts.Et, estEbar, estFt)
		st.Pred = metrics.Prediction{
			Mco:      mcoBytes,
			CioPush:  st.Parts.CioPush(),
			CioBpull: st.Parts.Vt + estEbar + estFt + estVrr,
		}
	default:
		st.Qt = 0
	}
}
