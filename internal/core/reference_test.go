package core

import (
	"math"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/graph"
)

// referenceRun is a plain in-memory BSP simulation of a vertex program,
// with no partitioning, disk or message machinery: the oracle every engine
// must agree with.
func referenceRun(g *graph.Graph, prog algo.Program, maxSteps int) []float64 {
	n := g.NumVertices
	vals := make([]float64, n)
	bcast := make([]float64, n)
	respond := make([]bool, n)
	ctx := func(t int) *algo.Context {
		return &algo.Context{Step: t, NumVertices: n, MaxSteps: maxSteps}
	}
	mkBcast := func(t int, v graph.VertexID, val float64, deg int, mv []float64) float64 {
		if sb, ok := prog.(algo.StatefulBcaster); ok {
			return sb.BcastFrom(ctx(t), v, val, mv)
		}
		return prog.Bcast(val, deg)
	}
	mkMsg := func(b float64, dst graph.VertexID, w float32) (float64, bool) {
		if ts, ok := prog.(algo.TargetedSender); ok {
			return ts.MsgValueTo(b, dst, w)
		}
		return prog.MsgValue(b, w), true
	}
	anyRespond := false
	for v := 0; v < n; v++ {
		deg := g.OutDegree(graph.VertexID(v))
		var r bool
		vals[v], r = prog.Init(ctx(1), graph.VertexID(v), deg)
		if r {
			bcast[v] = mkBcast(1, graph.VertexID(v), vals[v], deg, nil)
			respond[v] = true
			anyRespond = true
		}
	}
	for t := 2; t <= maxSteps && anyRespond; t++ {
		msgs := make(map[graph.VertexID][]float64)
		for u := 0; u < n; u++ {
			if !respond[u] {
				continue
			}
			for _, h := range g.OutEdges(graph.VertexID(u)) {
				if mv, keep := mkMsg(bcast[u], h.Dst, h.Weight); keep {
					msgs[h.Dst] = append(msgs[h.Dst], mv)
				}
			}
		}
		next := make([]bool, n)
		anyRespond = false
		for v := 0; v < n; v++ {
			mv := msgs[graph.VertexID(v)]
			if len(mv) == 0 && prog.Style() == algo.Traversal {
				continue
			}
			deg := g.OutDegree(graph.VertexID(v))
			var r bool
			vals[v], r = prog.Update(ctx(t), graph.VertexID(v), deg, vals[v], mv)
			if r {
				bcast[v] = mkBcast(t, graph.VertexID(v), vals[v], deg, mv)
				next[v] = true
				anyRespond = true
			}
		}
		respond = next
	}
	return vals
}

// almostEqual compares two float64s with a relative tolerance that absorbs
// summation-order differences in PageRank.
func almostEqual(a, b float64) bool {
	if a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
