package core

import (
	"fmt"

	"hybridgraph/internal/comm"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/vertexfile"
)

// stepBPull runs one block-centric pull superstep (Algorithms 1 and 2):
// for each local Vblock, send its block id to every worker, merge the
// returned (concatenated/combined) messages into the receiving buffer BR,
// and run update() over the block. Superstep 1 only initialises vertices —
// "b-pull starts exchanging messages from the 2nd superstep" (Section 6.5)
// — which is the one extra superstep of Appendix B.
func (w *worker) stepBPull(t int) error {
	return w.stepBPullProduce(t, false)
}

// stepBPullThenPush is hybrid's b-pull→push switch superstep (Fig. 6):
// pullRes() and update() run as usual, and pushRes() is invoked
// immediately on the new values, pushing messages for superstep t+1.
func (w *worker) stepBPullThenPush(t int) error {
	return w.stepBPullProduce(t, true)
}

func (w *worker) stepBPullProduce(t int, pushProduce bool) error {
	var outbox *comm.Outbox
	if pushProduce {
		outbox = comm.NewOutbox(w.fab(), len(w.job.workers), w.id, t, w.job.cfg.SendThreshold)
	}
	// Per-shard send staging, replayed into the outbox in shard order after
	// each block's scan joins (see stepPush).
	var stages []*comm.Stage
	hookFor := func(shard, shards int) updateHook {
		var stage *comm.Stage
		if outbox != nil {
			stage = comm.NewStage(comm.ShardThreshold(w.job.cfg.SendThreshold, shards))
			stages = append(stages, stage)
		}
		scratch := make([]graph.Half, 0, 256)
		return func(v graph.VertexID, rec *vertexfile.Record, responded bool) error {
			// Estimate push's IO(E^t) from the in-memory adjacency index when
			// hybrid carries one (edges of every updated vertex).
			if w.adj != nil && !pushProduce && !w.job.cfg.EdgesInMemory {
				if eb, err := w.adj.EdgeBytes(v); err == nil {
					w.addStat(func(s *workerStat) { s.estEt += eb })
				}
			}
			if !pushProduce || rec.OutDeg == 0 {
				return nil
			}
			// The switch superstep really reads the adjacency list and pushes.
			eb, err := w.adj.EdgeBytes(v)
			if err != nil {
				return err
			}
			if w.job.cfg.EdgesInMemory {
				eb = 0
			}
			scratch = scratch[:0]
			scratch, err = w.adj.Edges(v, scratch)
			if err != nil {
				return err
			}
			w.addStat(func(s *workerStat) {
				s.parts.Et += eb
				s.cpu.Edges += int64(len(scratch))
			})
			if !responded {
				return nil
			}
			wp := writeParity(t)
			var sent int64
			for _, e := range scratch {
				val, keep := w.msgValueFor(rec.Bcast[wp], e.Dst, e.Weight)
				if !keep {
					continue
				}
				stage.Add(w.owner(e.Dst), comm.Msg{Dst: e.Dst, Val: val})
				sent++
			}
			w.addStat(func(s *workerStat) {
				s.produced += sent
				s.cpu.Messages += sent
			})
			return nil
		}
	}
	runBlock := func(blo, bhi graph.VertexID, msgs map[graph.VertexID][]float64) error {
		stages = stages[:0]
		if err := w.updateBlock(t, blo, bhi, msgs, hookFor); err != nil {
			return err
		}
		for _, stage := range stages {
			if err := stage.MergeInto(outbox); err != nil {
				return err
			}
		}
		return nil
	}

	if t == 1 {
		// Initialisation superstep: nothing to pull yet.
		if err := runBlock(w.part.Lo, w.part.Hi, nil); err != nil {
			return err
		}
	} else {
		lo, hi := w.job.layout.WorkerBlocks(w.id)
		depth := w.job.cfg.PrefetchDepth
		type fetched struct {
			msgs map[graph.VertexID][]float64
			mem  int64
			err  error
		}
		launch := func(b int) chan fetched {
			ch := make(chan fetched, 1)
			go func() {
				m, mem, err := w.pullBlock(t, b)
				ch <- fetched{m, mem, err}
			}()
			return ch
		}
		// inflight holds the pipeline's pending fetches, oldest first (the
		// next block to update is always inflight[0]). Every exit path —
		// including a failed pull or a failed update — must receive from
		// each remaining channel: an abandoned fetch would keep charging
		// pull I/O to this superstep's counters after stepBPull returned,
		// corrupting the Q^t inputs of whatever ran next.
		var inflight []chan fetched
		defer func() {
			for _, ch := range inflight {
				<-ch
			}
		}()
		nextLaunch := lo + 1
		for b := lo; b < hi; b++ {
			var msgs map[graph.VertexID][]float64
			var brMem int64
			if len(inflight) > 0 {
				ch := inflight[0]
				inflight = inflight[1:]
				f := <-ch
				if f.err != nil {
					return f.err
				}
				msgs, brMem = f.msgs, f.mem
			} else {
				var err error
				msgs, brMem, err = w.pullBlock(t, b)
				if err != nil {
					return err
				}
			}
			// Top the pipeline up to PrefetchDepth blocks ahead. Depth 1 is
			// the paper's pre-pulling; depth 0 (DisablePrepull) never
			// launches and always pulls inline. An inline pull consumes a
			// block no launch covered, so nextLaunch may have to skip past
			// it — it must always point strictly ahead of b.
			if nextLaunch <= b {
				nextLaunch = b + 1
			}
			for ; nextLaunch < hi && nextLaunch <= b+depth; nextLaunch++ {
				inflight = append(inflight, launch(nextLaunch))
			}
			// Receiving-buffer memory: BR_i·(1+inflight) — the block being
			// updated plus one buffer per fetch actually in flight (the
			// paper's BR_i = 2·n_i/V_i doubling at depth 1). Charged only
			// when a prefetch really launched: the last block, and every
			// block under DisablePrepull, pays the single buffer.
			charged := brMem * int64(1+len(inflight))
			w.addStat(func(s *workerStat) {
				if charged > s.memBytes {
					s.memBytes = charged
				}
			})
			blk := w.job.layout.Blocks[b]
			if err := runBlock(blk.Lo, blk.Hi, msgs); err != nil {
				return err
			}
		}
		if len(inflight) > 0 {
			return fmt.Errorf("core: b-pull prefetched past the last block")
		}
	}
	if outbox != nil {
		return outbox.Flush()
	}
	return nil
}

// pullBlock performs Pull-Request (Algorithm 1) for global block b:
// request messages from every worker and merge them into BR, combining
// when the program allows it. Returns the per-vertex message lists and the
// buffer's memory footprint.
func (w *worker) pullBlock(t, b int) (map[graph.VertexID][]float64, int64, error) {
	combine := w.job.prog.Combiner()
	if w.job.cfg.DisableCombine {
		combine = nil
	}
	out := make(map[graph.VertexID][]float64)
	var held int64
	for y := range w.job.workers {
		msgs, _, err := w.fab().PullRequest(w.id, y, b, t)
		if err != nil {
			return nil, 0, err
		}
		for _, m := range msgs {
			if vals := out[m.Dst]; combine != nil && len(vals) == 1 {
				vals[0] = combine(vals[0], m.Val)
			} else {
				out[m.Dst] = append(vals, m.Val)
			}
		}
	}
	for _, vals := range out {
		held += int64(len(vals))*comm.MsgValSize + comm.MsgIDSize
	}
	w.addStat(func(s *workerStat) {
		s.requests += int64(len(w.job.workers))
	})
	return out, held, nil
}

// RespondPull implements comm.Handler: Pull-Respond (Algorithm 2). For
// each local Vblock whose res indicator and destination bitmap allow it,
// scan the Eblock toward the requested block; for each fragment whose
// source vertex responded at t-1, random-read its broadcast value and
// generate one message per clustered edge. The sending buffer BS is then
// concatenated (and combined when legal) before crossing the wire.
func (w *worker) RespondPull(reqBlock, step int) ([]comm.Msg, int64, error) {
	rp := readParity(step)
	prog := w.job.prog
	var out []comm.Msg
	var produced, vrr, ebar, ft int64
	for j := 0; j < w.ve.LocalBlocks(); j++ {
		if !w.blockRes[rp][j].Load() || !w.ve.Meta(j).Bitmap.Get(reqBlock) {
			continue
		}
		st, err := w.ve.ScanEblock(j, reqBlock, func(src graph.VertexID, edges []graph.Half) error {
			if !w.respond[rp].Get(w.localIdx(src)) {
				return nil
			}
			w.scanMu.Lock()
			bcast, err := w.vstore.ReadBcastScan(src, rp, w.scanPages)
			w.scanMu.Unlock()
			if err != nil {
				return err
			}
			vrr += vertexfile.BcastSize
			for _, e := range edges {
				val, keep := w.msgValueFor(bcast, e.Dst, e.Weight)
				if !keep {
					continue
				}
				out = append(out, comm.Msg{Dst: e.Dst, Val: val})
				produced++
			}
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
		ebar += st.EdgeBytes
		ft += st.FragBytes
	}
	if w.job.cfg.EdgesInMemory {
		ebar, ft = 0, 0
	}
	if w.job.cfg.VerticesInMemory {
		vrr = 0
	}

	rawBytes := int64(len(out)) * comm.MsgWireSize
	comm.SortByDst(out)
	if c := prog.Combiner(); c != nil && !w.job.cfg.DisableCombine {
		out = comm.CombineSorted(out, c)
	}
	wire := comm.ConcatSize(out)
	bsMem := int64(len(out)) * comm.MsgWireSize

	w.addStat(func(s *workerStat) {
		s.produced += produced
		s.estM += produced
		s.mcoBytes += rawBytes - wire
		s.parts.Vrr += vrr
		s.parts.Ebar += ebar
		s.parts.Ft += ft
		s.cpu.Messages += produced
		s.cpu.Edges += ebar / 8 // every scanned edge costs, responding or not
		if bsMem > s.memBytes {
			s.memBytes = bsMem
		}
	})
	if w.mlog != nil && w.job.layout.OwnerOfBlock(reqBlock) != w.id {
		// Confined recovery: log the response exactly as it crosses the wire,
		// so the requester's replay re-pull reads these bytes instead of this
		// worker's (by then advanced) vertex values. Self-serving responses
		// are regenerated during replay and never logged. Duplicate RPC
		// deliveries may log twice; the reader takes the first copy.
		if err := w.mlog.AppendPullResp(step, reqBlock, out); err != nil {
			return nil, 0, err
		}
	}
	return out, wire, nil
}
