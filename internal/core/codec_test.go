package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/catalog"
	"hybridgraph/internal/codec"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/metrics"
	"hybridgraph/internal/obs"
)

// The codec contract, pinned end to end: a block codec may shrink the
// bytes that physically hit the disk, but the logical dimension — vertex
// values, every class-tagged byte counter, the Eq. (7)/(8) breakdowns,
// Q^t — must be byte-identical to a codec-none run. These tests exercise
// the contract across engines, parallelism settings, every recovery
// path that rereads compressed state, and the storage-fault layer.

func physTotal(r *metrics.JobResult) int64 {
	return r.PhysIO.Total() + r.LoadPhysIO.Total() + r.CheckpointPhysIO.Total() +
		r.ReplayPhysIO.Total() + r.MigrationPhysIO.Total()
}

func logTotal(r *metrics.JobResult) int64 {
	return r.IO.Total() + r.LogIO.Total() + r.LoadIO.Total() +
		r.CheckpointIO.Total() + r.ReplayIO.Total() + r.MigrationIO.Total()
}

// TestCodecLogicalIdentity: for every engine, a delta- or lz-coded run
// must reproduce the codec-none run's values and complete per-superstep
// statistics, while an lz run must put strictly fewer physical bytes on
// disk than its logical charge.
func TestCodecLogicalIdentity(t *testing.T) {
	g := graph.GenRMAT(800, 7200, 0.57, 0.19, 0.19, 91)
	for _, e := range []Engine{Push, BPull, Hybrid} {
		t.Run(string(e), func(t *testing.T) {
			cfg := Config{Workers: 3, MsgBuf: 100, MaxSteps: 6}
			base := runOne(t, g, algo.NewPageRank(0.85), cfg, e)
			if base.Codec != "none" {
				t.Fatalf("default run Codec = %q, want none", base.Codec)
			}
			// Under codec none the physical twin mirrors the logical
			// counters charge for charge: the ratio is exactly 1.
			if base.CompressionRatio != 1.0 {
				t.Fatalf("codec none CompressionRatio = %v, want exactly 1", base.CompressionRatio)
			}
			if physTotal(base) != logTotal(base) {
				t.Fatalf("codec none physical %d != logical %d", physTotal(base), logTotal(base))
			}
			for _, cn := range []string{"delta", "lz"} {
				cfg.Codec = cn
				got := runOne(t, g, algo.NewPageRank(0.85), cfg, e)
				sameResultsEx(t, string(e)+"/"+cn, base, got, false)
				if got.Codec != cn {
					t.Errorf("%s: JobResult.Codec = %q, want %q", e, got.Codec, cn)
				}
				if cn == "lz" {
					if physTotal(got) >= logTotal(got) {
						t.Errorf("%s/lz: physical %d !< logical %d (nothing compressed)",
							e, physTotal(got), logTotal(got))
					}
					if got.CompressionRatio <= 1.0 {
						t.Errorf("%s/lz: CompressionRatio = %v, want > 1", e, got.CompressionRatio)
					}
				}
			}
		})
	}
}

// TestCodecParallelismIdentity: the parallelism-invariance contract must
// hold under a non-trivial codec too, including the physical dimension.
func TestCodecParallelismIdentity(t *testing.T) {
	g := graph.GenRMAT(700, 5600, 0.57, 0.19, 0.19, 92)
	for _, e := range []Engine{Push, Hybrid} {
		cfg := Config{Workers: 3, MsgBuf: 90, MaxSteps: 6, Codec: "lz", Parallelism: 1}
		base := runOne(t, g, algo.NewSSSP(0), cfg, e)
		for _, p := range []int{2, 8} {
			cfg.Parallelism = p
			got := runOne(t, g, algo.NewSSSP(0), cfg, e)
			sameResults(t, string(e)+"/lz/p="+itoa(p), base, got)
			if physTotal(base) != physTotal(got) {
				t.Errorf("%s p=%d: physical bytes %d != %d", e, p, physTotal(got), physTotal(base))
			}
		}
	}
}

// TestCodecRecoveryIdentity: checkpoint restore and confined log replay
// both reread codec-framed files (snapshots, message-log segments); the
// recovered run must still match the fault-free codec-none run exactly.
func TestCodecRecoveryIdentity(t *testing.T) {
	g := graph.GenRMAT(600, 4800, 0.57, 0.19, 0.19, 93)
	clean := runOne(t, g, algo.NewPageRank(0.85),
		Config{Workers: 3, MsgBuf: 80, MaxSteps: 8}, Push)
	for _, policy := range []string{"checkpoint", "confined"} {
		for _, cn := range []string{"delta", "lz"} {
			cfg := Config{Workers: 3, MsgBuf: 80, MaxSteps: 8, Codec: cn,
				Recovery: policy, CheckpointEvery: 2,
				FaultPlan: faultplan.NewPlan(faultplan.Crash{Step: 5, Worker: 1})}
			res := runOne(t, g, algo.NewPageRank(0.85), cfg, Push)
			if res.Restarts == 0 {
				t.Fatalf("%s/%s: crash did not trigger recovery", policy, cn)
			}
			if policy == "checkpoint" && res.Restores == 0 {
				t.Fatalf("%s/%s: no snapshot restore happened", policy, cn)
			}
			for v := range clean.Values {
				if math.Float64bits(clean.Values[v]) != math.Float64bits(res.Values[v]) {
					t.Fatalf("%s/%s: vertex %d = %g, fault-free %g",
						policy, cn, v, res.Values[v], clean.Values[v])
				}
			}
			if res.ReplayIO.Total() > 0 && res.ReplayPhysIO.Total() == 0 {
				t.Errorf("%s/%s: replay charged %d logical bytes but no physical bytes",
					policy, cn, res.ReplayIO.Total())
			}
		}
	}
}

// TestCodecReassignFromCompressedCatalog: a permanent loss makes the
// adopting survivor rebuild the dead partition from the shared catalog —
// here one ingested with a codec — and replay from codec-framed logs.
func TestCodecReassignFromCompressedCatalog(t *testing.T) {
	g := graph.GenRMAT(500, 4000, 0.57, 0.19, 0.19, 94)
	clean := runOne(t, g, algo.NewPageRank(0.85),
		Config{Workers: 3, MsgBuf: 80, MaxSteps: 8}, Push)

	cat, err := catalog.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entry, err := cat.Ingest("g", g, 3, 1, "lz")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Codec() != "lz" {
		t.Fatalf("entry.Codec() = %q, want lz", entry.Codec())
	}
	cfg := Config{Workers: 3, MsgBuf: 80, MaxSteps: 8, Stores: entry, Codec: "lz",
		Recovery: "reassign", CheckpointEvery: 2,
		FaultPlan: faultplan.NewPlan(faultplan.PermanentCrash(5, 1))}
	res := runOne(t, g, algo.NewPageRank(0.85), cfg, Push)
	if res.Reassignments == 0 || !res.Degraded {
		t.Fatalf("reassignments = %d, degraded = %v; want an adoption",
			res.Reassignments, res.Degraded)
	}
	for v := range clean.Values {
		if math.Float64bits(clean.Values[v]) != math.Float64bits(res.Values[v]) {
			t.Fatalf("vertex %d = %g, fault-free %g", v, res.Values[v], clean.Values[v])
		}
	}
	if res.MigrationIO.Total() > 0 && res.MigrationPhysIO.Total() == 0 {
		t.Errorf("migration charged %d logical bytes but no physical bytes",
			res.MigrationIO.Total())
	}

	// A job whose codec disagrees with the catalog's ingest codec must be
	// rejected up front, not silently re-encoded.
	bad := cfg
	bad.Codec = "none"
	bad.FaultPlan = nil
	if _, err := Run(g, algo.NewPageRank(0.85), bad, Push); err == nil {
		t.Fatal("Config.Codec none over an lz catalog did not fail validation")
	}
}

// TestCodecBitFlipSweep: seeded read bit-flips over compressed stores.
// Every frame carries a CRC over header and payload, so a flipped bit
// must surface as a typed failure (the fault layer's ErrDiskFault or the
// codec's ErrCorrupt) — never as silently wrong values.
func TestCodecBitFlipSweep(t *testing.T) {
	g := graph.GenRMAT(400, 3200, 0.57, 0.19, 0.19, 95)
	clean := runOne(t, g, algo.NewPageRank(0.85),
		Config{Workers: 3, MsgBuf: 70, MaxSteps: 5}, Push)
	completed, failed := 0, 0
	for seed := int64(1); seed <= 10; seed++ {
		cfg := Config{Workers: 3, MsgBuf: 70, MaxSteps: 5, Codec: "lz",
			FaultPlan: faultplan.NewPlan().WithDisk(diskio.FaultConfig{
				Seed: seed, ReadBitFlip: 0.01, MaxFaults: 2})}
		res, err := Run(g, algo.NewPageRank(0.85), cfg, Push)
		if err != nil {
			if !errors.Is(err, diskio.ErrDiskFault) && !errors.Is(err, codec.ErrCorrupt) {
				t.Fatalf("seed %d: error is neither a disk fault nor codec corruption: %v", seed, err)
			}
			failed++
			continue
		}
		completed++
		for v := range clean.Values {
			if clean.Values[v] != res.Values[v] {
				t.Fatalf("seed %d: vertex %d = %g, fault-free %g (silent divergence)",
					seed, v, res.Values[v], clean.Values[v])
			}
		}
	}
	if completed == 0 {
		t.Fatal("every seed failed: the byte-identity half was never exercised")
	}
	if failed == 0 {
		t.Log("no seed corrupted a read; CRC path exercised by codec package tests")
	}
}

// TestCodecChargePhysical: the ChargePhysical toggle switches only the
// DiskSeconds dimension of the cost model onto physical bytes — values
// and logical statistics stay put, simulated time drops with the bytes.
func TestCodecChargePhysical(t *testing.T) {
	g := graph.GenRMAT(700, 6300, 0.57, 0.19, 0.19, 96)
	cfg := Config{Workers: 3, MsgBuf: 90, MaxSteps: 5, Codec: "lz"}
	logical := runOne(t, g, algo.NewPageRank(0.85), cfg, Push)
	cfg.ChargePhysical = true
	physical := runOne(t, g, algo.NewPageRank(0.85), cfg, Push)
	for v := range logical.Values {
		if math.Float64bits(logical.Values[v]) != math.Float64bits(physical.Values[v]) {
			t.Fatalf("vertex %d differs under ChargePhysical", v)
		}
	}
	if logical.IO != physical.IO {
		t.Fatalf("ChargePhysical changed the logical IO snapshot: %+v vs %+v",
			logical.IO, physical.IO)
	}
	if physical.SimSeconds >= logical.SimSeconds {
		t.Fatalf("ChargePhysical SimSeconds %g >= logical-charge %g (compression bought nothing)",
			physical.SimSeconds, logical.SimSeconds)
	}
}

// TestCodecTraceEvents: the journal must carry the physical dimension —
// per-worker PhysIO snapshots summing to the step's PhysIO, and
// compress/decompress events describing each superstep's codec work.
func TestCodecTraceEvents(t *testing.T) {
	g := graph.GenRMAT(600, 4200, 0.57, 0.19, 0.19, 97)
	var buf bytes.Buffer
	cfg := Config{Workers: 3, MsgBuf: 90, MaxSteps: 6, Codec: "lz", TraceWriter: &buf}
	res := runOne(t, g, algo.NewPageRank(0.85), cfg, Hybrid)
	p := parseTrace(t, buf.Bytes())

	byStep := map[int]diskio.Snapshot{}
	for _, ev := range p.workerSteps {
		byStep[ev.Step] = byStep[ev.Step].Add(ev.PhysIO)
	}
	shrunk := false
	for _, st := range res.Steps {
		if got := byStep[st.Step]; got != st.PhysIO {
			t.Fatalf("step %d: worker PhysIO sum %+v != StepStats.PhysIO %+v", st.Step, got, st.PhysIO)
		}
		if st.PhysIO.Total() < st.IO.Total()+st.LogIO.Total() {
			shrunk = true
		}
	}
	if !shrunk {
		t.Error("no superstep's physical bytes were below its logical bytes")
	}
	if len(p.codecs) == 0 {
		t.Fatal("no compress/decompress events in the journal")
	}
	sawCompress, sawDecompress := false, false
	for _, ev := range p.codecs {
		if ev.Codec != "lz" || ev.Logical <= 0 || ev.Physical <= 0 {
			t.Fatalf("codec event = %+v", ev)
		}
		switch ev.Type {
		case obs.EventCompress:
			sawCompress = true
		case obs.EventDecompress:
			sawDecompress = true
		}
	}
	if !sawCompress || !sawDecompress {
		t.Fatalf("compress=%v decompress=%v, want both", sawCompress, sawDecompress)
	}
}
