package core

import (
	"math"
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
)

// TestPaperWorkedExample reproduces Appendix B (Figs. 20-22): SSSP by
// b-pull over a five-vertex graph split into three Vblocks on two
// computational nodes, with v3 (index 2) as the source. The appendix's
// observable claims: b-pull sends no messages in the 1st superstep; in the
// 2nd superstep v2, v4 and v5 pull v3's distance and update; push and
// b-pull converge to the same distances.
func TestPaperWorkedExample(t *testing.T) {
	// Vertices 0..4 stand for the paper's v1..v5. Blocks (via 2 workers,
	// then per-worker splits below): b1={v1,v2}, b2={v3,v4}, b3={v5}.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1, 0.5) // v1→v2 (within b1; X1's bitmap is 100)
	b.AddEdge(1, 0, 0.4) // v2→v1
	b.AddEdge(2, 1, 0.8) // v3→v2, the weight-0.8 edge of Fig. 22
	b.AddEdge(2, 3, 0.3) // v3→v4
	b.AddEdge(2, 4, 0.6) // v3→v5
	b.AddEdge(3, 4, 0.2) // v4→v5
	b.AddEdge(4, 3, 0.9) // v5→v4
	g := b.Build()

	prog := algo.NewSSSP(2)
	// Worker 0 holds b1+b2 (vertices 0..3, two Vblocks of two), worker 1
	// holds b3 (vertex 4) — the paper's T1/T2 assignment.
	cfg := Config{Workers: 2, MsgBuf: 10, MaxSteps: 10, BlocksPerWorker: 2}
	res, err := Run(g, prog, cfg, BPull)
	if err != nil {
		t.Fatal(err)
	}

	// "In the 1st superstep, the source vertex v3 only updates its value
	// to be zero. There are no any messages sending."
	if res.Steps[0].Produced != 0 || res.Steps[0].NetBytes != 0 {
		t.Fatalf("superstep 1 moved messages: produced=%d net=%d",
			res.Steps[0].Produced, res.Steps[0].NetBytes)
	}
	if res.Steps[0].Responding != 1 {
		t.Fatalf("superstep 1 responders = %d, want 1 (the source)", res.Steps[0].Responding)
	}
	// "In the 2nd superstep, via pull requesting based on Vblock ids, v2,
	// v4, and v5 request messages to be sent from the vertex v3."
	if res.Steps[1].Produced != 3 {
		t.Fatalf("superstep 2 produced %d messages, want 3", res.Steps[1].Produced)
	}
	if res.Steps[1].Updated != 3 || res.Steps[1].Responding != 3 {
		t.Fatalf("superstep 2 updated/responding = %d/%d, want 3/3",
			res.Steps[1].Updated, res.Steps[1].Responding)
	}

	want := []float64{
		0.8 + 0.4, // v1 via v3→v2→v1
		0.8,       // v2 via v3→v2
		0,         // v3, the source
		0.3,       // v4 via v3→v4
		0.3 + 0.2, // v5 via v3→v4→v5
	}
	for v, d := range want {
		if math.Abs(res.Values[v]-d) > 1e-6 {
			t.Fatalf("distance to v%d = %g, want %g", v+1, res.Values[v], d)
		}
	}

	// Push reaches the same distances (Fig. 21's left column).
	push, err := Run(g, prog, cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(push.Values[v]-res.Values[v]) > 1e-9 {
			t.Fatalf("push and b-pull disagree at v%d", v+1)
		}
	}
}

// TestBlockResIndicatorSkipsEblocks checks the X_j res/bitmap fast path:
// when only one Vblock's vertices respond, pull-responding must not scan
// Eblocks of silent blocks.
func TestBlockResIndicatorSkipsEblocks(t *testing.T) {
	// Chain: only the frontier block has responders each superstep.
	g := graph.GenChain(64, 0, 3)
	res, err := Run(g, algo.NewSSSP(0), Config{Workers: 2, MsgBuf: 8, MaxSteps: 80, BlocksPerWorker: 4}, BPull)
	if err != nil {
		t.Fatal(err)
	}
	// Each superstep exactly one vertex responds, so only its Vblock's
	// Eblocks may be scanned (one 8-vertex block: at most 8 chain edges
	// plus the boundary edge). Whole-Eblock scans do read the silent
	// fragments inside the responding block — the "useless edges" cost of
	// Appendix C — but without the res/bitmap pruning all 63 edges (504
	// bytes) would be read every superstep.
	for _, s := range res.Steps[1:] {
		if s.Parts.Ebar > 9*8 {
			t.Fatalf("step %d scanned %d edge bytes; res-indicator pruning failed", s.Step, s.Parts.Ebar)
		}
	}
	if math.IsInf(res.Values[63], 1) {
		t.Fatal("chain tail unreached")
	}
}

// TestIOBreakdownConsistency cross-checks the per-part I/O attribution
// against the class counters for a b-pull run: logical random reads must
// equal the Vrr part, and message spill parts must be zero.
func TestIOBreakdownConsistency(t *testing.T) {
	g := graph.GenRMAT(500, 5000, 0.57, 0.19, 0.19, 54)
	res, err := Run(g, algo.NewPageRank(0.85), Config{Workers: 3, MsgBuf: 80, MaxSteps: 4}, BPull)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Steps {
		if s.Parts.Vrr != s.IO.Bytes[diskio.RandRead] {
			t.Fatalf("step %d: Vrr part %d != random-read bytes %d",
				s.Step, s.Parts.Vrr, s.IO.Bytes[diskio.RandRead])
		}
		seq := s.Parts.Vt/2 + s.Parts.Ebar + s.Parts.Ft // Vt is half reads, half writes
		if seq != s.IO.Bytes[diskio.SeqRead] {
			t.Fatalf("step %d: seq parts %d != seq-read bytes %d",
				s.Step, seq, s.IO.Bytes[diskio.SeqRead])
		}
	}
}
