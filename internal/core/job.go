package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/codec"
	"hybridgraph/internal/comm"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/metrics"
	"hybridgraph/internal/msglog"
	"hybridgraph/internal/obs"
	"hybridgraph/internal/veblock"
	"hybridgraph/internal/vertexfile"
)

// job is one engine run over one graph.
type job struct {
	cfg     Config
	runCtx  context.Context
	g       *graph.Graph
	prog    algo.Program
	engine  Engine
	parts   []graph.Partition
	layout  *veblock.Layout
	fabric  comm.Fabric
	workers []*worker
	loadCts []*diskio.Counter
	dir     string
	ownDir  bool

	// cdc is the resolved block codec every disk-resident structure uses;
	// pcts are the per-worker physical twin counters its frame I/O lands
	// on (one per worker, shared by that worker's compute, load and log
	// counters via Counter.SetPhys). Under codec "none" the twins mirror
	// the logical charges exactly, so physical == logical by construction.
	cdc  codec.Codec
	pcts []*diskio.Counter

	// Catalog accounting: bytes written building edge layouts during setup
	// (adj, VE-BLOCK, mirror) and bytes reused from a pre-built store
	// source. A catalog hit makes buildBytes zero by construction.
	layoutBuildBytes  int64
	layoutReusedBytes int64

	totalFrags int64
	bTotal     int64 // B = Σ B_i in messages (0 = unlimited)

	// hybrid state
	modes      []Engine // mode per superstep, index t (1-based)
	lastSwitch int
	rco        float64 // observed b-pull byte-savings ratio, for Mco estimates
	qtSigns    []bool  // per-superstep "b-pull preferred" history (PhaseAware)

	prevAgg float64 // last superstep's reduced aggregator value

	crashFired []bool // per fault-plan crash: already injected
	stallFired []bool // per fault-plan stall: already injected

	// Reassign policy state (Recovery: "reassign"): the epoch-versioned
	// ownership table, per-worker failure counts driving the permanence
	// decision, and the per-unit migration-cost stash that lands in the
	// first post-adoption superstep's stats. All nil under other policies.
	own         *ownership
	crashCounts []int
	stallCounts []int
	pendingMig  []pendingMig
	resuming    bool // lightweight recovery: superstep 1 re-announces values
	ckptStep    int  // last committed checkpoint superstep (0 = none)
	ckptPrev    int  // previous retained checkpoint (fallback for torn restores)

	// faultFS is the storage-fault injector installed over the work
	// directory when the fault plan carries a Disk config; nil otherwise.
	faultFS *diskio.FaultFS

	// lastStepAggSet records whether any worker contributed to the last
	// superstep's aggregate — confined stall recovery needs it to fold the
	// rejoin contribution in correctly.
	lastStepAggSet bool
	// replayFab, while non-nil, redirects the failed worker's superstep
	// sends and pulls through the confined replay fabric. Installed and
	// removed between supersteps only.
	replayFab *replayFabric

	// observability: nil trace drops events, nil-instrument jm no-ops.
	trace *obs.Tracer
	jm    jobMetrics
}

// ErrInjectedFailure is the sentinel every injected worker crash matches:
// errors.Is(err, ErrInjectedFailure) distinguishes faults the master's
// detector raised on purpose from real execution errors.
var ErrInjectedFailure = errors.New("core: injected worker failure")

// InjectedFailure is the typed error the master's fault detector raises
// when a scheduled worker crash fires at the superstep barrier. Permanent
// marks a crash the fault plan declared unrecoverable — under the
// reassign policy the worker's partition is adopted by a survivor instead
// of restored in place.
type InjectedFailure struct {
	Step      int
	Worker    int
	Permanent bool
}

// Error implements error.
func (e *InjectedFailure) Error() string {
	return fmt.Sprintf("core: injected failure of worker %d at superstep %d", e.Worker, e.Step)
}

// Is makes errors.Is(err, ErrInjectedFailure) true for every injection.
func (e *InjectedFailure) Is(target error) bool { return target == ErrInjectedFailure }

// Run executes one algorithm over one graph with the given engine and
// returns the per-superstep statistics. It is the package's main entry
// point; RunContext adds cancellation.
func Run(g *graph.Graph, prog algo.Program, cfg Config, engine Engine) (*metrics.JobResult, error) {
	return RunContext(context.Background(), g, prog, cfg, engine)
}

// RunContext is Run under a context: cancelling ctx (or exceeding its
// deadline) aborts the job promptly — the master loop checks the context
// at every superstep barrier, and both comm fabrics fail in-flight
// exchanges fast once the context is done — returning an error matching
// ctx's cause via errors.Is (context.Canceled / DeadlineExceeded). A
// cancelled job's work directory is removed like any failed job's.
func RunContext(ctx context.Context, g *graph.Graph, prog algo.Program, cfg Config, engine Engine) (_ *metrics.JobResult, err error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(g.NumVertices); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	j := &job{cfg: cfg, runCtx: ctx, g: g, prog: prog, engine: engine}
	j.cdc, _ = codec.Lookup(cfg.Codec)
	tr, err := newJobTracer(cfg, prog, engine)
	if err != nil {
		return nil, err
	}
	j.trace = tr
	defer tr.Close()
	j.jm = newJobMetrics(cfg.Metrics)
	if err := j.setupDir(); err != nil {
		return nil, err
	}
	defer func() { j.close(err != nil) }()
	if tr != nil {
		tr.Emit(obs.JobEvent{Type: obs.EventJobStart, JobID: cfg.JobLabel,
			Engine: string(engine), Algorithm: prog.Name(), Workers: cfg.Workers,
			Parallelism: cfg.Parallelism,
			Vertices:    g.NumVertices, Edges: int64(g.NumEdges())})
	}
	res := &metrics.JobResult{
		Engine:      string(engine),
		Algorithm:   prog.Name(),
		Workers:     cfg.Workers,
		Parallelism: cfg.Parallelism,
		Codec:       j.cdc.Name(),
	}
	if err := j.setup(engine, res); err != nil {
		return nil, err
	}
	if err := j.run(engine, res); err != nil {
		if j.faultFS != nil {
			res.DiskFaults = j.faultFS.Stats().Total()
		}
		return nil, err
	}
	res.Finish()
	j.jm.compression.Set(int64(res.CompressionRatio * 1000))
	if j.faultFS != nil {
		res.DiskFaults = j.faultFS.Stats().Total()
	}
	vals, err := j.collectValues()
	if err != nil {
		return nil, err
	}
	res.Values = vals
	if tr != nil {
		tr.Emit(obs.JobEvent{Type: obs.EventJobEnd, JobID: cfg.JobLabel,
			Engine: string(engine), Algorithm: prog.Name(), Workers: cfg.Workers,
			Parallelism: cfg.Parallelism,
			Steps:       len(res.Steps), SimSecs: res.SimSeconds,
			NetBytes: res.NetBytes, IOBytes: res.IO.Total(), Restarts: res.Restarts})
	}
	if err := tr.Close(); err != nil {
		return nil, fmt.Errorf("core: trace journal: %w", err)
	}
	return res, nil
}

// collectValues reads the final vertex values back out of the stores.
func (j *job) collectValues() ([]float64, error) {
	vals := make([]float64, j.g.NumVertices)
	for _, w := range j.workers {
		recs := make([]vertexfile.Record, w.part.Len())
		if err := w.vstore.ReadRange(w.part.Lo, w.part.Hi, recs); err != nil {
			return nil, err
		}
		for _, r := range recs {
			vals[r.ID] = r.Val
		}
	}
	return vals, nil
}

func (j *job) setupDir() error {
	if j.cfg.WorkDir != "" {
		j.dir = j.cfg.WorkDir
		if err := os.MkdirAll(j.dir, 0o755); err != nil {
			return err
		}
	} else {
		dir, err := os.MkdirTemp("", "hybridgraph-")
		if err != nil {
			return err
		}
		j.dir = dir
		j.ownDir = true
	}
	if plan := j.cfg.FaultPlan; plan != nil && plan.Disk != nil && plan.Disk.Enabled() {
		j.faultFS = diskio.NewFaultFS(*plan.Disk)
		j.faultFS.OnFault = func(e *diskio.Error) {
			j.jm.diskFaults.Inc()
			if j.trace != nil {
				j.trace.Emit(obs.DiskFaultEvent{Type: obs.EventDiskFault,
					Op: e.Op, Path: e.Path, Class: e.Class, Kind: string(e.Kind)})
			}
		}
		diskio.Install(j.dir, j.faultFS)
	}
	return nil
}

// close releases every resource. failed marks a run that ended in an
// error (including cancellation): its on-disk artifacts are removed even
// under a caller-provided WorkDir, so an aborted job never leaves
// per-worker data directories or checkpoint files behind.
func (j *job) close(failed bool) {
	if j.faultFS != nil {
		diskio.Uninstall(j.dir)
	}
	for _, w := range j.workers {
		if w != nil {
			w.close()
		}
	}
	if c, ok := j.fabric.(interface{ Close() error }); ok {
		c.Close()
	}
	if j.cfg.KeepFiles {
		return
	}
	if j.ownDir {
		os.RemoveAll(j.dir)
		return
	}
	if failed {
		// Caller-provided WorkDir: remove only what this job created —
		// the w<i> store directories and any checkpoint artifacts — and
		// leave the directory itself to its owner. Glob rather than walk
		// j.workers so dirs created before a mid-setup failure go too.
		for _, pat := range []string{"w[0-9]*", "ckpt-*"} {
			matches, _ := filepath.Glob(filepath.Join(j.dir, pat))
			for _, m := range matches {
				os.RemoveAll(m)
			}
		}
	}
}

func (j *job) ctx(t int) *algo.Context {
	return &algo.Context{Step: t, NumVertices: j.g.NumVertices, MaxSteps: j.cfg.MaxSteps,
		Aggregate: j.prevAgg}
}

func (j *job) loadCt(w int) *diskio.Counter { return j.loadCts[w] }

// blocksPerWorker derives each worker's Vblock count from Eq. (5)/(6), or
// honours the explicit configuration. A store source's geometry is
// authoritative: its VE files were laid out for a specific block count,
// so reusing them means adopting it.
func (j *job) blocksPerWorker() []int {
	if j.cfg.Stores != nil {
		return append([]int(nil), j.cfg.Stores.BlocksPer()...)
	}
	t := j.cfg.Workers
	out := make([]int, t)
	for w, p := range j.parts {
		switch {
		case j.cfg.BlocksPerWorker > 0:
			out[w] = j.cfg.BlocksPerWorker
		case j.cfg.MsgBuf <= 0:
			// Sufficient memory: the paper sets V as small as possible.
			out[w] = 1
		case j.prog.Combiner() != nil:
			out[w] = veblock.BlocksCombinable(p.Len(), t, j.cfg.MsgBuf)
		default:
			out[w] = veblock.BlocksConcatOnly(j.inDegreeSum(p), j.cfg.MsgBuf, p.Len())
		}
		if out[w] < 1 {
			out[w] = 1
		}
	}
	return out
}

func (j *job) inDegreeSum(p graph.Partition) int64 {
	var ind int64
	for u := 0; u < j.g.NumVertices; u++ {
		for _, h := range j.g.OutEdges(graph.VertexID(u)) {
			if p.Contains(h.Dst) {
				ind++
			}
		}
	}
	return ind
}

// setup partitions the graph, builds the stores each engine needs, and
// records the loading cost (Fig. 16) into res.
func (j *job) setup(engine Engine, res *metrics.JobResult) error {
	if engine == PushM && j.prog.Combiner() == nil {
		// MOCgraph's online computing needs commutative messages, which is
		// why the paper's LPA and SA plots have no pushM bars.
		return fmt.Errorf("core: pushM requires a combinable algorithm, %s is not", j.prog.Name())
	}
	t := j.cfg.Workers
	j.parts = graph.RangePartition(j.g.NumVertices, t)
	if j.cfg.FaultPlan != nil {
		j.crashFired = make([]bool, len(j.cfg.FaultPlan.Crashes))
		j.stallFired = make([]bool, len(j.cfg.FaultPlan.Stalls))
	}
	logged := j.cfg.Recovery == "confined" || j.cfg.Recovery == "reassign"
	if logged && engine == Pull {
		// The pull baseline's gather/scatter exchanges carry whole vertex
		// states on demand, not superstep-framed messages; there is nothing
		// a sender-side log could replay.
		return fmt.Errorf("core: %s recovery does not support the pull baseline", j.cfg.Recovery)
	}
	if j.cfg.Recovery == "reassign" {
		j.own = newOwnership(t)
		j.crashCounts = make([]int, t)
		j.stallCounts = make([]int, t)
		j.pendingMig = make([]pendingMig, t)
	}
	if j.cfg.TCP {
		var tcfg comm.TCPConfig
		if j.cfg.FaultPlan != nil {
			tcfg.Faults = j.cfg.FaultPlan.Net
		}
		fab, err := comm.NewTCPConfig(t, tcfg)
		if err != nil {
			return err
		}
		j.fabric = fab
	} else {
		j.fabric = comm.NewLocal(t)
	}
	if ms, ok := j.fabric.(obs.MetricsSetter); ok {
		ms.SetMetrics(j.cfg.Metrics)
	}
	if cs, ok := j.fabric.(comm.ContextSetter); ok {
		cs.SetContext(j.runCtx)
	}
	j.loadCts = make([]*diskio.Counter, t)
	j.pcts = make([]*diskio.Counter, t)
	j.workers = make([]*worker, t)
	if j.cfg.MsgBuf > 0 {
		j.bTotal = int64(j.cfg.MsgBuf) * int64(t)
	}

	needVE := engine == BPull || engine == Hybrid
	needAdj := engine == Push || engine == PushM || engine == Hybrid ||
		(engine == Pull && j.prog.Style() != algo.AlwaysActive)
	needMirror := engine == Pull

	if needVE {
		layout, err := veblock.NewLayout(j.parts, j.blocksPerWorker())
		if err != nil {
			return err
		}
		j.layout = layout
	} else {
		// A degenerate one-block-per-worker layout keeps BlockOf and the
		// flag machinery uniform across engines.
		layout, err := veblock.UniformLayout(j.parts, 1)
		if err != nil {
			return err
		}
		j.layout = layout
	}

	for w := 0; w < t; w++ {
		j.loadCts[w] = &diskio.Counter{}
		j.pcts[w] = &diskio.Counter{}
		j.loadCts[w].SetPhys(j.pcts[w])
		wk := &worker{id: w, job: j, part: j.parts[w], ct: &diskio.Counter{},
			dir: filepath.Join(j.dir, fmt.Sprintf("w%d", w))}
		wk.ct.SetPhys(j.pcts[w])
		if err := os.MkdirAll(wk.dir, 0o755); err != nil {
			return err
		}
		if err := wk.buildVertexStore(j.g); err != nil {
			return err
		}
		// Edge-layout builds are bracketed so their write bytes can be
		// told apart from the per-job vertex-store init: on a catalog hit
		// this delta must be zero (the stores are opened, not rebuilt).
		edgeBase := j.loadCts[w].Snapshot()
		if needAdj {
			if err := wk.buildAdj(j.g); err != nil {
				return err
			}
		}
		if needMirror {
			if err := wk.buildMirror(j.g); err != nil {
				return err
			}
		}
		if needVE {
			if err := wk.buildVE(j.g); err != nil {
				return err
			}
			j.totalFrags += wk.ve.Fragments()
		}
		j.layoutBuildBytes += j.loadCts[w].Snapshot().Sub(edgeBase).Bytes[diskio.SeqWrite]
		if engine == PushM {
			wk.pickHotSet(j.g, j.cfg.MsgBuf)
		}
		wk.initFlags()
		if engine == Push || engine == PushM || engine == Hybrid {
			wk.initInboxes()
		}
		// Stores were built under the loading counter; computation I/O
		// goes to the worker's own counter from here on.
		for _, s := range []interface{ SetCounter(*diskio.Counter) }{wk.vstore, wk.adj, wk.mirror, wk.ve} {
			if s != nil {
				s.SetCounter(wk.ct)
			}
		}
		if engine == Pull {
			wk.vcache = newPullCache(wk.vstore, j.cfg.VertexCache, j.cfg.Metrics)
		}
		if logged {
			wk.logCt = &diskio.Counter{}
			wk.logCt.SetPhys(j.pcts[w])
			ml, err := msglog.Open(filepath.Join(wk.dir, "msglog"), wk.logCt, j.cdc)
			if err != nil {
				return err
			}
			wk.mlog = ml
			wk.sendLog = &sendLogger{Fabric: j.fabric, w: wk}
		}
		j.fabric.Register(w, wk)
		j.workers[w] = wk
	}
	// Loading cost: bytes written by the builders converted under the
	// profile, plus a parse charge per edge.
	var loadIO diskio.Snapshot
	for _, ct := range j.loadCts {
		loadIO = loadIO.Add(ct.Snapshot())
	}
	res.LoadIO = loadIO
	var loadPhys diskio.Snapshot
	for _, p := range j.pcts {
		loadPhys = loadPhys.Add(p.Snapshot())
	}
	res.LoadPhysIO = loadPhys
	res.LoadSimSeconds = j.cfg.Profile.DiskSeconds(loadIO) +
		float64(j.g.NumEdges())*metrics.CostPerEdge*j.cfg.Profile.CPUFactor
	res.CatalogHit = j.cfg.Stores != nil
	res.LayoutBuildBytes = j.layoutBuildBytes
	res.LayoutReusedBytes = j.layoutReusedBytes
	if j.trace != nil {
		ev := obs.CatalogEvent{Type: obs.EventCatalog, Hit: res.CatalogHit,
			BuiltBytes: j.layoutBuildBytes, ReusedBytes: j.layoutReusedBytes}
		if j.cfg.Stores != nil {
			ev.Graph = j.cfg.Stores.GraphName()
		}
		j.trace.Emit(ev)
	}

	if engine == Hybrid {
		j.initHybridModes()
	}
	return nil
}

// run drives the superstep loop. After each detected worker failure it
// recovers per the configured policy — recompute from superstep 1
// (scratch/resume, the prototype's Appendix A behaviour) or restore the
// last committed checkpoint and replay only the supersteps since — and
// charges the discarded work to RecoverySimSeconds.
func (j *job) run(engine Engine, res *metrics.JobResult) error {
	start := 1
	if j.cfg.ResumeFromCheckpoint {
		// A restarted daemon re-runs an interrupted job in its original
		// WorkDir: pick up at the last committed checkpoint rather than
		// recomputing everything a process kill threw away. Verification
		// failures fall through to a fresh start, never an error.
		step, ok, err := j.restoreFromCheckpoint(engine, res)
		if err != nil {
			return err
		}
		if ok {
			res.Restores++
			start = step + 1
		}
	}
	for {
		err := j.runOnce(engine, res, start)
		if err == nil {
			return nil
		}
		var failed []int
		var failStep, lastDone int
		stalled := false
		permHint := false
		var inj *InjectedFailure
		var stl *StalledWorker
		switch {
		case errors.As(err, &inj):
			// A crash fires before superstep Step runs: Step-1 completed.
			failed, failStep, lastDone = []int{inj.Worker}, inj.Step, inj.Step-1
			permHint = inj.Permanent
		case errors.As(err, &stl):
			// A stall is detected at the barrier of Step: the survivors
			// completed Step, the stalled workers did not.
			failed, failStep, lastDone, stalled = stl.Workers, stl.Step, stl.Step, true
			res.Stalls += len(stl.Workers)
		default:
			// A cancelled run context makes fabric operations fail with
			// whatever they were doing; attribute the abort to the cause so
			// callers can match it with errors.Is regardless of which layer
			// noticed first.
			if cerr := context.Cause(j.runCtx); cerr != nil {
				return cerr
			}
			return err
		}
		res.Restarts++
		if j.cfg.OnRecovery != nil {
			kind := "crash"
			if stalled {
				kind = "stall"
			}
			for _, fw := range failed {
				j.cfg.OnRecovery(RecoveryNotice{Kind: kind, Step: failStep, Worker: fw, Host: -1})
			}
		}
		if j.cfg.Recovery == "confined" || j.cfg.Recovery == "reassign" {
			var halt bool
			var rerr error
			if j.cfg.Recovery == "reassign" {
				halt, rerr = j.reassignRecoverAll(engine, res, failed, failStep, lastDone, stalled, permHint)
			} else {
				halt, rerr = j.confinedRecoverAll(engine, res, failed, failStep, lastDone, stalled)
			}
			if rerr != nil {
				// Recovery aborted: surface a cancelled run context as its
				// cause, like the main-loop paths, so callers can match it.
				if cerr := context.Cause(j.runCtx); cerr != nil {
					return cerr
				}
				return rerr
			}
			if halt {
				return nil
			}
			start = lastDone + 1
			continue
		}
		restart, rerr := j.recover(engine, res)
		if rerr != nil {
			if cerr := context.Cause(j.runCtx); cerr != nil {
				return cerr
			}
			return rerr
		}
		// Steps the restart will redo are discarded; their simulated time
		// and I/O are the price of recovery — the quantity confined
		// recovery's ReplayIO is compared against.
		kept := 0
		for i := range res.Steps {
			if res.Steps[i].Step >= restart {
				break
			}
			kept = i + 1
		}
		for _, s := range res.Steps[kept:] {
			res.RecoverySimSeconds += s.SimSeconds
			res.ReplayedSupersteps++
			res.ReplayIO = res.ReplayIO.Add(s.IO)
			res.ReplayPhysIO = res.ReplayPhysIO.Add(s.PhysIO)
			res.ReplayNetBytes += s.NetBytes
		}
		discarded := len(res.Steps) - kept
		res.Steps = res.Steps[:kept]
		j.jm.recoveries.Inc()
		if j.trace != nil {
			policy := j.cfg.Recovery
			if policy == "" {
				policy = "scratch"
			}
			j.trace.Emit(obs.RecoveryEvent{Type: obs.EventRecovery, Policy: policy,
				RestartStep: restart, Discarded: discarded,
				Restored: j.cfg.Recovery == "checkpoint" && restart > 1})
		}
		start = restart
	}
}

// recover applies the configured recovery policy and reports the superstep
// the restarted loop should resume from. The checkpoint policy falls back
// to scratch when no committed checkpoint exists yet (a crash before the
// first checkpoint interval) or the checkpoint fails verification.
func (j *job) recover(engine Engine, res *metrics.JobResult) (int, error) {
	if j.cfg.Recovery == "checkpoint" {
		step, ok, err := j.restoreFromCheckpoint(engine, res)
		if err != nil {
			return 0, err
		}
		if ok {
			res.Restores++
			return step + 1, nil
		}
	}
	if err := j.resetForRecovery(engine); err != nil {
		return 0, err
	}
	return 1, nil
}

// injectCrash reports whether a scheduled, not-yet-fired crash hits at the
// start of superstep t. Each crash fires at most once per job: supersteps
// re-executed during recovery do not re-fire past faults, while later
// crashes in the plan still hit the recovered run (compound failures). A
// crash aimed at a worker the reassign policy already declared dead is
// consumed without firing — there is no machine left to crash.
func (j *job) injectCrash(t int) (worker int, permanent, fired bool) {
	plan := j.cfg.FaultPlan
	if plan == nil {
		return 0, false, false
	}
	for i, c := range plan.Crashes {
		if c.Step == t && !j.crashFired[i] {
			j.crashFired[i] = true
			if j.own != nil && j.own.isDead(c.Worker) {
				continue
			}
			return c.Worker, c.Permanent, true
		}
	}
	return 0, false, false
}

// resetForRecovery returns every worker to its freshly-loaded state: flag
// vectors cleared, inboxes emptied, caches dropped. Under the default
// scratch policy vertex values need no reset — superstep 1's Init
// overwrites them; under "resume" they survive and are re-announced.
func (j *job) resetForRecovery(engine Engine) error {
	if j.cfg.Recovery == "resume" {
		j.resuming = true
	}
	for _, w := range j.workers {
		w.initFlags()
		if engine == Push || engine == PushM || engine == Hybrid {
			w.initInboxes()
		}
		if engine == Pull {
			w.vcache = newPullCache(w.vstore, j.cfg.VertexCache, j.cfg.Metrics)
		}
	}
	j.prevAgg = 0
	if engine == Hybrid {
		j.initHybridModes()
	}
	return nil
}

func (j *job) runOnce(engine Engine, res *metrics.JobResult, start int) error {
	for t := start; t <= j.cfg.MaxSteps; t++ {
		// Master barrier loop cancellation point: a cancelled context stops
		// the job between supersteps even when no fabric traffic is in
		// flight (e.g. a single-worker run doing pure local compute).
		if err := context.Cause(j.runCtx); err != nil {
			return err
		}
		if w, perm, fired := j.injectCrash(t); fired {
			// The fault detector notices the crashed worker at the barrier.
			j.jm.faults.Inc()
			if j.trace != nil {
				kind := ""
				if perm {
					kind = "permanent-crash"
				}
				j.trace.Emit(obs.FaultEvent{Type: obs.EventFault, Step: t, Worker: w, Kind: kind})
			}
			return &InjectedFailure{Step: t, Worker: w, Permanent: perm}
		}
		mode := engine
		if engine == Hybrid {
			mode = j.modes[t]
		}
		st, err := j.superstep(t, engine, mode)
		var stallErr *StalledWorker
		if err != nil && !errors.As(err, &stallErr) {
			return err
		}
		res.Steps = append(res.Steps, st)
		if engine == Hybrid {
			j.scheduleMode(t, st)
		}
		if st.SwitchedFrom != "" {
			j.jm.switches.Inc()
		}
		if j.trace != nil {
			// The step summary is emitted after the hybrid scheduler ran, so
			// NextMode carries the decision this superstep's Q^t just made.
			ev := obs.StepEvent{Type: obs.EventStep, Stats: st}
			if engine == Hybrid && t+2 < len(j.modes) {
				ev.NextMode = string(j.modes[t+2])
			}
			j.trace.Emit(ev)
			if st.SwitchedFrom != "" {
				j.trace.Emit(obs.ModeSwitchEvent{Type: obs.EventModeSwitch,
					Step: t, From: st.SwitchedFrom, To: st.Mode})
			}
		}
		j.prevAgg = st.Aggregate
		if stallErr != nil {
			// The stalled workers missed the barrier deadline: journal the
			// fault and hand the incomplete superstep to recovery. The
			// halting checks are re-applied after recovery folds the rejoin
			// contributions back into this step's stats.
			j.jm.faults.Inc()
			j.jm.stalls.Add(int64(len(stallErr.Workers)))
			if j.trace != nil {
				for _, w := range stallErr.Workers {
					j.trace.Emit(obs.FaultEvent{Type: obs.EventFault, Step: t,
						Worker: w, Kind: "stall"})
				}
			}
			return stallErr
		}
		if st.Responding == 0 {
			break
		}
		if ag, ok := j.prog.(algo.Aggregating); ok && t > 1 && ag.Converged(st.Aggregate) {
			break
		}
		if err := j.maybeCheckpoint(t, res); err != nil {
			return err
		}
	}
	if engine == Pull {
		// Dirty resident vertex records must reach the store before final
		// values are read out.
		for _, w := range j.workers {
			if w.vcache != nil {
				if err := w.vcache.flush(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// injectStalls reports which workers a scheduled, not-yet-fired stall
// freezes at superstep t (nil when none). Like crashes, each stall fires
// at most once per job.
func (j *job) injectStalls(t int) []bool {
	plan := j.cfg.FaultPlan
	if plan == nil {
		return nil
	}
	var out []bool
	for i, s := range plan.Stalls {
		if s.Step == t && !j.stallFired[i] {
			j.stallFired[i] = true
			if j.own != nil && j.own.isDead(s.Worker) {
				// The reassign policy removed this worker; its partition now
				// runs on a survivor's machine and cannot stall on its own.
				continue
			}
			if out == nil {
				out = make([]bool, len(j.workers))
			}
			out[s.Worker] = true
		}
	}
	return out
}

// superstep runs one superstep across all workers and aggregates stats.
// A returned *StalledWorker error (and only that error) comes with valid
// stats: the survivors completed the superstep and their numbers are
// real; the stalled workers contributed nothing.
func (j *job) superstep(t int, engine, mode Engine) (metrics.StepStats, error) {
	type before struct {
		io      diskio.Snapshot
		log     diskio.Snapshot
		phys    diskio.Snapshot
		in, out int64
	}
	befores := make([]before, len(j.workers))
	for i, w := range j.workers {
		w.resetStat()
		w.clearStepFlags(t)
		in, out := j.fabric.Traffic(w.id)
		befores[i] = before{io: w.ct.Snapshot(), phys: j.pcts[i].Snapshot(), in: in, out: out}
		if w.logCt != nil {
			befores[i].log = w.logCt.Snapshot()
		}
	}
	wallStart := time.Now()

	stalling := j.injectStalls(t)
	var release chan struct{}
	if stalling != nil {
		release = make(chan struct{})
	}
	var wg sync.WaitGroup
	errs := make([]error, len(j.workers))
	for i, w := range j.workers {
		if j.own != nil && j.own.isDead(w.id) {
			// Permanently-dead slot: its adopted unit is stepped by the
			// hosting survivor's goroutine below, never on its own.
			continue
		}
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			if release != nil && stalling[i] {
				// The stalled worker hangs mid-superstep: it stays reachable —
				// deliveries land in its inbox and its Pull-Respond handler
				// keeps serving — but it never reaches the barrier. The
				// master's deadline supervision declares it failed, along with
				// any adopted units riding on the same machine.
				<-release
				ws := []int{w.id}
				if j.own != nil {
					ws = append(ws, j.own.adoptedBy(w.id)...)
				}
				errs[i] = &StalledWorker{Step: t, Workers: ws}
				return
			}
			if errs[i] = j.stepWorker(w, t, engine, mode); errs[i] != nil {
				return
			}
			if j.own != nil {
				// Host machine: after its own partition, step the adopted
				// units sequentially in ascending origin order — one machine
				// executes its units serially, and the fixed order keeps the
				// visit sequence deterministic.
				for _, u := range j.own.adoptedBy(w.id) {
					if errs[i] = j.stepWorker(j.workers[u], t, engine, mode); errs[i] != nil {
						return
					}
				}
			}
		}(i, w)
	}
	if release == nil {
		wg.Wait()
	} else {
		deadline := j.cfg.BarrierDeadline
		if deadline <= 0 {
			deadline = 250 * time.Millisecond
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(deadline):
			// Barrier deadline expired: declare the missing workers failed
			// and release their goroutines.
			close(release)
			<-done
		}
	}
	var stallErr *StalledWorker
	for _, err := range errs {
		if err == nil {
			continue
		}
		var se *StalledWorker
		if errors.As(err, &se) {
			if stallErr == nil {
				stallErr = &StalledWorker{Step: t}
			}
			stallErr.Workers = append(stallErr.Workers, se.Workers...)
			continue
		}
		return metrics.StepStats{}, err
	}
	wall := time.Since(wallStart).Seconds()

	st := metrics.StepStats{Step: t, Mode: string(mode), WallSeconds: wall}
	if engine == Hybrid && t > 1 && j.modes[t] != j.modes[t-1] {
		st.SwitchedFrom = string(j.modes[t-1])
	}
	aggProg, aggregating := j.prog.(algo.Aggregating)
	aggSet := false
	var simMax float64
	var hostSim map[int]float64
	if j.own != nil {
		// Under reassignment a host machine runs its own unit plus its
		// adopted ones serially, so the superstep's critical path is the
		// per-host sum of unit times, maxed across hosts.
		hostSim = make(map[int]float64, len(j.workers))
	}
	for i, w := range j.workers {
		d := w.ct.Snapshot().Sub(befores[i].io)
		pd := j.pcts[i].Snapshot().Sub(befores[i].phys)
		var logD diskio.Snapshot
		if w.logCt != nil {
			logD = w.logCt.Snapshot().Sub(befores[i].log)
		}
		in, out := j.fabric.Traffic(w.id)
		nIn, nOut := in-befores[i].in, out-befores[i].out

		w.mu.Lock()
		s := w.stat
		w.mu.Unlock()

		// pushM/push: spill written for next superstep (M_disk).
		if mode == Push || mode == PushM || (engine == Hybrid && j.produceMode(t) == Push) {
			if ib := w.inboxes[writeParity(t+1)]; ib != nil {
				s.parts.MdiskW += ib.Spilled() * comm.MsgWireSize
			}
		}

		st.Produced += s.produced
		st.Combined += s.mcoBytes / comm.MsgIDSize // reported in id units
		st.NetBytes += nOut
		st.Requests += s.requests
		st.Responding += s.responding
		st.Updated += s.updated
		st.Spilled += s.parts.MdiskW / comm.MsgWireSize
		st.IO = st.IO.Add(d)
		st.LogIO = st.LogIO.Add(logD)
		st.PhysIO = st.PhysIO.Add(pd)
		addBreakdown(&st.Parts, s.parts)

		mem := s.memBytes
		if ib := w.inboxes[writeParity(t+1)]; ib != nil {
			if m := ib.MaxMemBytes(); m > mem {
				mem = m
			}
		}
		if w.ve != nil {
			mem += w.ve.MetaMemBytes()
		}
		if mem > st.MemBytes {
			st.MemBytes = mem
		}

		host := w.id
		var migIO diskio.Snapshot
		var migNet int64
		if j.own != nil {
			host = j.own.hostOf(w.id)
			// A migration that completed since the last superstep lands its
			// cost here, on the adopted unit's row, exactly once — the
			// JobResult totals were charged at adoption and are independent.
			if pm := j.pendingMig[w.id]; pm.set {
				migIO, migNet = pm.io, pm.net
				st.MigrationIO = st.MigrationIO.Add(migIO)
				st.MigrationNetBytes += migNet
				j.pendingMig[w.id] = pendingMig{}
			}
		}

		if j.trace != nil {
			// One journal line per worker per superstep: exactly the numbers
			// this loop folds into st, so summing a step's worker events must
			// reproduce the StepStats (the accounting cross-check test).
			j.trace.Emit(obs.WorkerStepEvent{Type: obs.EventWorkerStep,
				Step: t, Worker: w.id, Host: host, Mode: string(mode),
				Updated: s.updated, Responding: s.responding,
				Produced: s.produced, Requests: s.requests,
				Spilled: s.parts.MdiskW / comm.MsgWireSize,
				NetIn:   nIn, NetOut: nOut,
				IO: d, LogIO: logD, PhysIO: pd, Parts: s.parts, MemBytes: mem,
				MigrationIO: migIO, MigrationNetBytes: migNet})
		}

		cpuSec := s.cpu.Seconds(j.cfg.Profile)
		// Message-log appends are real sequential writes the confined policy
		// pays during normal execution; they cost time but stay out of st.IO
		// so the Q^t inputs and the trace-vs-stats cross-check see pure
		// Eq. (7)/(8) traffic.
		diskSec := j.cfg.Profile.DiskSeconds(d.Add(logD))
		if j.cfg.ChargePhysical {
			// Charge what the platter actually moved: the compressed frame
			// bytes. Logical stats and Q^t inputs are untouched — only the
			// time dimension switches to the physical reality.
			diskSec = j.cfg.Profile.DiskSeconds(pd)
		}
		netSec := j.cfg.Profile.NetSeconds(nIn + nOut)
		st.CPUSeconds += cpuSec
		st.DiskSeconds += diskSec
		if netSec > st.NetSeconds {
			st.NetSeconds = netSec
		}
		sim := cpuSec + diskSec + netSec
		if hostSim != nil {
			hostSim[host] += sim
		} else if sim > simMax {
			simMax = sim
		}

		// Hybrid prediction inputs.
		st.McoBytes += s.mcoBytes
		st.EstEt += s.estEt
		st.EstEbar += s.estEbar
		st.EstFt += s.estFt
		st.EstVrr += s.estVrr

		if aggregating && s.aggSet {
			if !aggSet {
				st.Aggregate, aggSet = s.agg, true
			} else {
				st.Aggregate = aggProg.Reduce(st.Aggregate, s.agg)
			}
		}
	}
	for _, s := range hostSim {
		if s > simMax {
			simMax = s
		}
	}
	st.SimSeconds = simMax
	j.lastStepAggSet = aggSet
	j.finishQt(t, mode, &st)

	if j.trace != nil && !codec.IsNone(j.cdc) {
		// One codec event pair per superstep, derived from the counter
		// deltas: the write classes are the compress direction, the read
		// classes decompress. Logical bytes include the message log — the
		// codec frames it too.
		wLog := st.IO.Bytes[diskio.SeqWrite] + st.IO.Bytes[diskio.RandWrite] +
			st.LogIO.Bytes[diskio.SeqWrite] + st.LogIO.Bytes[diskio.RandWrite]
		rLog := st.IO.Bytes[diskio.SeqRead] + st.IO.Bytes[diskio.RandRead] +
			st.LogIO.Bytes[diskio.SeqRead] + st.LogIO.Bytes[diskio.RandRead]
		wPhys := st.PhysIO.Bytes[diskio.SeqWrite] + st.PhysIO.Bytes[diskio.RandWrite]
		rPhys := st.PhysIO.Bytes[diskio.SeqRead] + st.PhysIO.Bytes[diskio.RandRead]
		if wLog > 0 {
			j.trace.Emit(obs.CodecEvent{Type: obs.EventCompress, Step: t,
				Codec: j.cdc.Name(), Logical: wLog, Physical: wPhys})
		}
		if rLog > 0 {
			j.trace.Emit(obs.CodecEvent{Type: obs.EventDecompress, Step: t,
				Codec: j.cdc.Name(), Logical: rLog, Physical: rPhys})
		}
	}

	j.jm.supersteps.Inc()
	j.jm.step.Set(int64(t))
	j.jm.updated.Add(st.Updated)
	j.jm.produced.Add(st.Produced)
	j.jm.spilled.Add(st.Spilled)
	j.jm.netBytes.Add(st.NetBytes)
	j.jm.ioBytes.Add(st.IO.Total())
	j.jm.logBytes.Add(st.LogIO.Total())
	j.jm.physBytes.Add(st.PhysIO.Total())
	j.jm.memPeak.Max(st.MemBytes)
	if stallErr != nil {
		return st, stallErr
	}
	return st, nil
}

func addBreakdown(dst *metrics.IOBreakdown, s metrics.IOBreakdown) {
	dst.Vt += s.Vt
	dst.Et += s.Et
	dst.Ebar += s.Ebar
	dst.Ft += s.Ft
	dst.Vrr += s.Vrr
	dst.MdiskW += s.MdiskW
	dst.MdiskR += s.MdiskR
}

// stepWorker dispatches one worker's superstep by mode.
func (j *job) stepWorker(w *worker, t int, engine, mode Engine) error {
	switch mode {
	case Push, PushM:
		produce := engine != Hybrid || j.produceMode(t) == Push
		return w.stepPush(t, produce)
	case BPull:
		if engine == Hybrid && j.produceMode(t) == Push {
			// Fig. 6 switch superstep b-pull→push: pullRes+update, then
			// pushRes immediately.
			return w.stepBPullThenPush(t)
		}
		return w.stepBPull(t)
	case Pull:
		return w.stepPull(t)
	}
	return fmt.Errorf("core: unknown mode %q", mode)
}
