package core

import (
	"errors"
	"math"
	"strconv"
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/metrics"
)

// Intra-worker parallel compute must be invisible in everything but wall
// clock: vertex values bit for bit, the class-tagged disk snapshots
// (bytes, device bytes AND op counts), wire bytes, the Eq. (7)/(8)
// breakdowns feeding Q^t, and peak memory. These tests pin that contract
// for every engine across Parallelism 1, 2 and 8, under -race in CI.

func parallelPrograms() map[string]func() algo.Program {
	return map[string]func() algo.Program{
		"pagerank": func() algo.Program { return algo.NewPageRank(0.85) },
		"sssp":     func() algo.Program { return algo.NewSSSP(0) },
	}
}

// sameSteps compares every deterministic per-superstep field; wall clock
// is the only StepStats field allowed to differ.
func sameSteps(t *testing.T, label string, a, b []metrics.StepStats) {
	t.Helper()
	sameStepsEx(t, label, a, b, true)
}

// sameStepsEx is sameSteps with the physical dimension optional: two runs
// under the same codec must agree on PhysIO too, while a cross-codec
// comparison (the codec-identity suite) checks only the logical fields.
func sameStepsEx(t *testing.T, label string, a, b []metrics.StepStats, comparePhys bool) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d supersteps vs %d", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Mode != y.Mode {
			t.Errorf("%s step %d: mode %q vs %q", label, x.Step, x.Mode, y.Mode)
		}
		if x.Produced != y.Produced || x.Combined != y.Combined ||
			x.NetBytes != y.NetBytes || x.NetMsgs != y.NetMsgs ||
			x.Requests != y.Requests || x.Responding != y.Responding ||
			x.Updated != y.Updated || x.Spilled != y.Spilled {
			t.Errorf("%s step %d: counters differ: %+v vs %+v", label, x.Step, x, y)
		}
		if x.IO != y.IO {
			t.Errorf("%s step %d: IO snapshot differs: %+v vs %+v", label, x.Step, x.IO, y.IO)
		}
		if x.LogIO != y.LogIO {
			t.Errorf("%s step %d: LogIO snapshot differs", label, x.Step)
		}
		if comparePhys && x.PhysIO != y.PhysIO {
			t.Errorf("%s step %d: PhysIO snapshot differs: %+v vs %+v", label, x.Step, x.PhysIO, y.PhysIO)
		}
		if x.Parts != y.Parts {
			t.Errorf("%s step %d: Eq.(7)/(8) parts differ: %+v vs %+v", label, x.Step, x.Parts, y.Parts)
		}
		if x.MemBytes != y.MemBytes {
			t.Errorf("%s step %d: MemBytes %d vs %d", label, x.Step, x.MemBytes, y.MemBytes)
		}
		if math.Float64bits(x.Qt) != math.Float64bits(y.Qt) {
			t.Errorf("%s step %d: Qt %g vs %g", label, x.Step, x.Qt, y.Qt)
		}
	}
}

func sameResults(t *testing.T, label string, a, b *metrics.JobResult) {
	t.Helper()
	sameResultsEx(t, label, a, b, true)
}

func sameResultsEx(t *testing.T, label string, a, b *metrics.JobResult, comparePhys bool) {
	t.Helper()
	if len(a.Values) != len(b.Values) {
		t.Fatalf("%s: %d values vs %d", label, len(a.Values), len(b.Values))
	}
	for v := range a.Values {
		if math.Float64bits(a.Values[v]) != math.Float64bits(b.Values[v]) {
			t.Fatalf("%s: vertex %d = %x, want %x (values not byte-identical)",
				label, v, math.Float64bits(b.Values[v]), math.Float64bits(a.Values[v]))
		}
	}
	if a.IO != b.IO {
		t.Errorf("%s: job IO snapshot differs: %+v vs %+v", label, a.IO, b.IO)
	}
	if a.NetBytes != b.NetBytes {
		t.Errorf("%s: NetBytes %d vs %d", label, a.NetBytes, b.NetBytes)
	}
	if a.MaxMemBytes != b.MaxMemBytes {
		t.Errorf("%s: MaxMemBytes %d vs %d", label, a.MaxMemBytes, b.MaxMemBytes)
	}
	sameStepsEx(t, label, a.Steps, b.Steps, comparePhys)
}

func TestParallelismByteIdentical(t *testing.T) {
	g := graph.GenRMAT(900, 8100, 0.57, 0.19, 0.19, 77)
	engines := []Engine{Push, BPull, Hybrid}
	for name, mk := range parallelPrograms() {
		for _, e := range engines {
			t.Run(name+"/"+string(e), func(t *testing.T) {
				cfg := Config{Workers: 3, MsgBuf: 120, MaxSteps: 8, SenderCombine: true}
				cfg.Parallelism = 1
				base := runOne(t, g, mk(), cfg, e)
				for _, p := range []int{2, 8} {
					cfg.Parallelism = p
					got := runOne(t, g, mk(), cfg, e)
					sameResults(t, string(e)+"/p="+itoa(p), base, got)
				}
			})
		}
	}
}

// Sender-side staging partitions the 4 MB threshold across shards; with a
// tiny threshold and combining on, any drift in the replay order would
// change packet boundaries, combine batches and hence wire bytes.
func TestParallelismPacketInvariance(t *testing.T) {
	g := graph.GenRMAT(700, 6300, 0.57, 0.19, 0.19, 78)
	cfg := Config{Workers: 3, MsgBuf: 80, MaxSteps: 5,
		SenderCombine: true, SendThreshold: 40 * 12} // a few dozen messages per packet
	cfg.Parallelism = 1
	base := runOne(t, g, algo.NewPageRank(0.85), cfg, Push)
	for _, p := range []int{2, 8} {
		cfg.Parallelism = p
		got := runOne(t, g, algo.NewPageRank(0.85), cfg, Push)
		sameResults(t, "push-tiny-threshold/p="+itoa(p), base, got)
	}
}

// The b-pull block-fetch pipeline must not change accounting at any depth.
func TestPrefetchDepthByteIdentical(t *testing.T) {
	g := graph.GenRMAT(800, 7200, 0.57, 0.19, 0.19, 79)
	cfg := Config{Workers: 2, MsgBuf: 100, MaxSteps: 8, Parallelism: 4}
	cfg.PrefetchDepth = 1
	base := runOne(t, g, algo.NewSSSP(0), cfg, BPull)
	for _, d := range []int{2, 3} {
		cfg.PrefetchDepth = d
		got := runOne(t, g, algo.NewSSSP(0), cfg, BPull)
		if len(got.Values) != len(base.Values) {
			t.Fatalf("depth %d: value count differs", d)
		}
		for v := range base.Values {
			if math.Float64bits(base.Values[v]) != math.Float64bits(got.Values[v]) {
				t.Fatalf("depth %d: vertex %d differs", d, v)
			}
		}
		// A deeper pipeline holds more receive buffers, so MemBytes may
		// legitimately grow; everything else must match.
		if base.NetBytes != got.NetBytes || base.IO != got.IO {
			t.Fatalf("depth %d: I/O accounting drifted", d)
		}
	}
}

// Crash + confined recovery under parallel compute: the replayed run must
// converge to the same values as a fault-free sequential run.
func TestParallelismConfinedRecovery(t *testing.T) {
	g := graph.GenRMAT(600, 4800, 0.57, 0.19, 0.19, 80)
	clean := Config{Workers: 3, MsgBuf: 80, MaxSteps: 8, Parallelism: 1}
	want := runOne(t, g, algo.NewPageRank(0.85), clean, Push)
	cfg := clean
	cfg.Parallelism = 8
	cfg.Recovery = "confined"
	cfg.FaultPlan = faultplan.NewPlan(faultplan.Crash{Step: 4, Worker: 1})
	got := runOne(t, g, algo.NewPageRank(0.85), cfg, Push)
	if got.Restarts == 0 {
		t.Fatal("crash did not trigger a recovery")
	}
	for v := range want.Values {
		if math.Float64bits(want.Values[v]) != math.Float64bits(got.Values[v]) {
			t.Fatalf("vertex %d: recovered value %g != fault-free %g", v, got.Values[v], want.Values[v])
		}
	}
}

// A failed pull must deterministically drain its in-flight prefetches:
// after a fault-injected run, no goroutine may still be charging reads to
// the job's counters (the leak the depth-1 prepull had). The gate is
// tolerant of where the fault lands: either the run failed with a typed
// disk fault or it succeeded with byte-identical values.
func TestPrefetchDrainUnderDiskFaults(t *testing.T) {
	g := graph.GenRMAT(500, 4000, 0.57, 0.19, 0.19, 81)
	clean := Config{Workers: 2, MsgBuf: 60, MaxSteps: 6, Parallelism: 4, PrefetchDepth: 3}
	want := runOne(t, g, algo.NewSSSP(0), clean, BPull)
	for seed := int64(1); seed <= 6; seed++ {
		cfg := clean
		cfg.FaultPlan = faultplan.NewPlan().WithDisk(diskio.FaultConfig{
			Seed: seed, WriteENOSPC: 0.001, TornWrite: 0.001, MaxFaults: 2,
		})
		res, err := Run(g, algo.NewSSSP(0), cfg, BPull)
		if err != nil {
			if !errors.Is(err, diskio.ErrDiskFault) {
				t.Fatalf("seed %d: error is not a typed disk fault: %v", seed, err)
			}
			continue
		}
		for v := range want.Values {
			if math.Float64bits(want.Values[v]) != math.Float64bits(res.Values[v]) {
				t.Fatalf("seed %d: surviving run diverged at vertex %d", seed, v)
			}
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
