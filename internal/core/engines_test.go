package core

import (
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/metrics"
)

func testPrograms(t *testing.T) map[string]algo.Program {
	t.Helper()
	return map[string]algo.Program{
		"pagerank": algo.NewPageRank(0.85),
		"sssp":     algo.NewSSSP(0),
		"lpa":      algo.NewLPA(),
		"sa":       algo.NewSA(16, 8, 60),
	}
}

func enginesFor(prog algo.Program) []Engine {
	if prog.Combiner() == nil {
		return []Engine{Push, Pull, BPull, Hybrid}
	}
	return Engines
}

func runOne(t *testing.T, g *graph.Graph, prog algo.Program, cfg Config, e Engine) *metrics.JobResult {
	t.Helper()
	res, err := Run(g, prog, cfg, e)
	if err != nil {
		t.Fatalf("%s/%s: %v", e, prog.Name(), err)
	}
	return res
}

func checkAgainstReference(t *testing.T, g *graph.Graph, prog algo.Program, cfg Config) {
	t.Helper()
	want := referenceRun(g, prog, cfg.withDefaults().MaxSteps)
	for _, e := range enginesFor(prog) {
		res := runOne(t, g, prog, cfg, e)
		if len(res.Values) != len(want) {
			t.Fatalf("%s: %d values, want %d", e, len(res.Values), len(want))
		}
		bad := 0
		for v := range want {
			if !almostEqual(res.Values[v], want[v]) {
				bad++
				if bad <= 3 {
					t.Errorf("%s/%s: vertex %d = %g, want %g", e, prog.Name(), v, res.Values[v], want[v])
				}
			}
		}
		if bad > 0 {
			t.Fatalf("%s/%s: %d/%d vertices differ from reference", e, prog.Name(), bad, len(want))
		}
	}
}

func TestEnginesMatchReferenceLimitedMemory(t *testing.T) {
	g := graph.GenRMAT(600, 4200, 0.57, 0.19, 0.19, 21)
	cfg := Config{Workers: 4, MsgBuf: 150, MaxSteps: 8, VertexCache: 100}
	for name, prog := range testPrograms(t) {
		t.Run(name, func(t *testing.T) { checkAgainstReference(t, g, prog, cfg) })
	}
}

func TestEnginesMatchReferenceSufficientMemory(t *testing.T) {
	g := graph.GenRMAT(500, 3000, 0.57, 0.19, 0.19, 22)
	cfg := Config{Workers: 3, InMemory: true, MaxSteps: 6}
	for name, prog := range testPrograms(t) {
		t.Run(name, func(t *testing.T) { checkAgainstReference(t, g, prog, cfg) })
	}
}

func TestSSSPOnChainConverges(t *testing.T) {
	// A chain forces many supersteps with one active vertex each: the long
	// convergent tail the paper highlights for Traversal algorithms.
	g := graph.GenChain(40, 0, 5)
	prog := algo.NewSSSP(0)
	want := referenceRun(g, prog, 60)
	for _, e := range []Engine{Push, BPull, Hybrid, Pull} {
		res := runOne(t, g, prog, Config{Workers: 3, MsgBuf: 10, MaxSteps: 60, VertexCache: 4}, e)
		for v := range want {
			if !almostEqual(res.Values[v], want[v]) {
				t.Fatalf("%s: vertex %d = %g, want %g", e, v, res.Values[v], want[v])
			}
		}
		// 40 vertices in a chain need ~41 supersteps.
		if res.Supersteps() < 40 {
			t.Fatalf("%s: converged after %d supersteps, expected ≥ 40", e, res.Supersteps())
		}
	}
}

func TestSufficientMemoryHasNoDiskIO(t *testing.T) {
	g := graph.GenUniform(300, 1800, 9)
	for _, e := range Engines {
		res := runOne(t, g, algo.NewPageRank(0.85),
			Config{Workers: 3, InMemory: true, MaxSteps: 4, VertexCache: 1000}, e)
		if res.IO.Total() != 0 {
			t.Fatalf("%s: sufficient-memory run did %d bytes of disk I/O (%s)",
				e, res.IO.Total(), res.IO.String())
		}
	}
}

func TestPushSpillsWhenBufferSmall(t *testing.T) {
	g := graph.GenUniform(400, 4000, 10)
	res := runOne(t, g, algo.NewPageRank(0.85), Config{Workers: 4, MsgBuf: 50, MaxSteps: 4}, Push)
	if res.IO.Bytes[diskio.RandWrite] == 0 {
		t.Fatal("push with a tiny buffer should spill messages (random writes)")
	}
	var spilled int64
	for _, s := range res.Steps {
		spilled += s.Spilled
	}
	if spilled == 0 {
		t.Fatal("no spilled messages recorded")
	}
}

func TestBPullAvoidsMessageIO(t *testing.T) {
	g := graph.GenUniform(400, 4000, 10)
	res := runOne(t, g, algo.NewPageRank(0.85), Config{Workers: 4, MsgBuf: 50, MaxSteps: 4}, BPull)
	for _, s := range res.Steps {
		if s.Parts.MdiskW != 0 || s.Parts.MdiskR != 0 {
			t.Fatalf("b-pull step %d touched message disk I/O: %+v", s.Step, s.Parts)
		}
	}
	if res.IO.Bytes[diskio.RandWrite] != 0 {
		t.Fatalf("b-pull should not random-write; did %d bytes", res.IO.Bytes[diskio.RandWrite])
	}
}

func TestBPullBeatsPushOnIOWhenBufferSmall(t *testing.T) {
	// Theorem 2's regime: B far below |E|/2 - f makes push's message I/O
	// dominate; b-pull's total I/O bytes must come out lower.
	g := graph.GenRMAT(1024, 16384, 0.57, 0.19, 0.19, 33)
	cfg := Config{Workers: 4, MsgBuf: 100, MaxSteps: 4}
	prog := algo.NewPageRank(0.85)
	push := runOne(t, g, prog, cfg, Push)
	bpull := runOne(t, g, prog, cfg, BPull)
	if bpull.IO.Total() >= push.IO.Total() {
		t.Fatalf("b-pull I/O %d should beat push I/O %d in the small-buffer regime",
			bpull.IO.Total(), push.IO.Total())
	}
}

func TestPushMReducesSpillVersusPush(t *testing.T) {
	g := graph.GenRMAT(1024, 16384, 0.6, 0.15, 0.15, 34)
	cfg := Config{Workers: 4, MsgBuf: 120, MaxSteps: 4}
	prog := algo.NewPageRank(0.85)
	push := runOne(t, g, prog, cfg, Push)
	pushm := runOne(t, g, prog, cfg, PushM)
	var sPush, sPushM int64
	for _, s := range push.Steps {
		sPush += s.Spilled
	}
	for _, s := range pushm.Steps {
		sPushM += s.Spilled
	}
	if sPushM >= sPush {
		t.Fatalf("pushM spilled %d messages, push %d; online computing should reduce spill",
			sPushM, sPush)
	}
}

func TestPullPaysRandomVertexReads(t *testing.T) {
	g := graph.GenUniform(600, 9000, 11)
	cfg := Config{Workers: 3, MsgBuf: 100, MaxSteps: 3, VertexCache: 20}
	pull := runOne(t, g, algo.NewPageRank(0.85), cfg, Pull)
	bpull := runOne(t, g, algo.NewPageRank(0.85), cfg, BPull)
	if pull.IO.Bytes[diskio.RandRead] <= bpull.IO.Bytes[diskio.RandRead] {
		t.Fatalf("pull random reads %d should exceed b-pull's %d",
			pull.IO.Bytes[diskio.RandRead], bpull.IO.Bytes[diskio.RandRead])
	}
}

func TestBPullCombiningSavesNetworkBytes(t *testing.T) {
	g := graph.GenUniform(500, 7500, 12)
	prog := algo.NewPageRank(0.85)
	on := runOne(t, g, prog, Config{Workers: 4, MsgBuf: 200, MaxSteps: 3}, BPull)
	off := runOne(t, g, prog, Config{Workers: 4, MsgBuf: 200, MaxSteps: 3, DisableCombine: true}, BPull)
	if on.NetBytes >= off.NetBytes {
		t.Fatalf("combining on: %d net bytes, off: %d; combining should save",
			on.NetBytes, off.NetBytes)
	}
	if off.Steps[1].McoBytes == 0 {
		t.Fatal("concatenation alone should still save bytes (shared destination ids)")
	}
}

func TestPushMRequiresCombiner(t *testing.T) {
	g := graph.GenUniform(100, 500, 13)
	if _, err := Run(g, algo.NewLPA(), Config{Workers: 2, MaxSteps: 3}, PushM); err == nil {
		t.Fatal("pushM over LPA should be rejected (messages not commutative)")
	}
}

func TestHybridSwitchesOnTraversal(t *testing.T) {
	// SSSP on a skewed graph with a modest buffer: hybrid should start in
	// b-pull (Theorem 2) and switch to push as the message volume decays.
	g := graph.GenRMAT(2048, 32768, 0.6, 0.15, 0.15, 35)
	res := runOne(t, g, algo.NewSSSP(0), Config{Workers: 4, MsgBuf: 400, MaxSteps: 40}, Hybrid)
	modes := map[string]int{}
	switches := 0
	for i, s := range res.Steps {
		modes[s.Mode]++
		if i > 0 && s.Mode != res.Steps[i-1].Mode {
			switches++
		}
	}
	if modes[string(BPull)] == 0 {
		t.Fatalf("hybrid never ran b-pull: %v", modes)
	}
	if switches == 0 {
		t.Logf("note: hybrid never switched on this workload (modes %v)", modes)
	}
	// Switches must be spaced by the Δt=2 interval.
	last := -10
	for i := 1; i < len(res.Steps); i++ {
		if res.Steps[i].Mode != res.Steps[i-1].Mode {
			if res.Steps[i].Step-last < 2 {
				t.Fatalf("switches at steps %d and %d violate Δt=2", last, res.Steps[i].Step)
			}
			last = res.Steps[i].Step
		}
	}
}

func TestHybridInitialModeFollowsTheorem2(t *testing.T) {
	g := graph.GenUniform(800, 12000, 36)
	prog := algo.NewPageRank(0.85)
	// Small buffer with a coarse block layout keeps the fragment count f
	// below |E|/2, so B ≤ B⊥ and hybrid must start in b-pull. (Under the
	// automatic Eq.-5 layout our scaled graphs fragment heavily, making
	// B⊥ negative — Theorem 2 then correctly prefers push initially.)
	small := runOne(t, g, prog, Config{Workers: 4, MsgBuf: 10, MaxSteps: 3, BlocksPerWorker: 1}, Hybrid)
	if small.Steps[0].Mode != string(BPull) {
		t.Fatalf("small buffer should start in b-pull, got %s", small.Steps[0].Mode)
	}
	// Huge buffer: B above B⊥ ⇒ start in push.
	big := runOne(t, g, prog, Config{Workers: 4, MsgBuf: 50000, MaxSteps: 3}, Hybrid)
	if big.Steps[0].Mode != string(Push) {
		t.Fatalf("huge buffer should start in push, got %s", big.Steps[0].Mode)
	}
}

func TestHybridMatchesReferenceAcrossSwitches(t *testing.T) {
	g := graph.GenRMAT(1500, 24000, 0.6, 0.15, 0.15, 37)
	for name, prog := range testPrograms(t) {
		t.Run(name, func(t *testing.T) {
			cfg := Config{Workers: 4, MsgBuf: 300, MaxSteps: 12, VertexCache: 100}
			want := referenceRun(g, prog, cfg.withDefaults().MaxSteps)
			res := runOne(t, g, prog, cfg, Hybrid)
			for v := range want {
				if !almostEqual(res.Values[v], want[v]) {
					t.Fatalf("vertex %d = %g, want %g", v, res.Values[v], want[v])
				}
			}
		})
	}
}

func TestQtSignMatchesRegime(t *testing.T) {
	prog := algo.NewPageRank(0.85)
	g := graph.GenUniform(800, 12000, 38)
	// Message-heavy, tiny buffer: Qt ≥ 0 (b-pull wins).
	res := runOne(t, g, prog, Config{Workers: 4, MsgBuf: 10, MaxSteps: 4}, Hybrid)
	mid := res.Steps[2]
	if mid.Qt < 0 {
		t.Fatalf("Qt = %g at step 3 with a starved buffer; want ≥ 0", mid.Qt)
	}
}

func TestWorkDirRespectedAndCleaned(t *testing.T) {
	g := graph.GenUniform(100, 400, 40)
	dir := t.TempDir() + "/job"
	_, err := Run(g, algo.NewPageRank(0.85),
		Config{Workers: 2, MsgBuf: 50, MaxSteps: 2, WorkDir: dir}, Push)
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.GenUniform(10, 30, 41)
	if _, err := Run(g, algo.NewPageRank(0.85), Config{Workers: 50}, Push); err == nil {
		t.Fatal("more workers than vertices should be rejected")
	}
	empty := graph.NewBuilder(0).Build()
	if _, err := Run(empty, algo.NewPageRank(0.85), Config{}, Push); err == nil {
		t.Fatal("empty graph should be rejected")
	}
}

func TestDisablePrepullStillCorrect(t *testing.T) {
	g := graph.GenRMAT(700, 7000, 0.57, 0.19, 0.19, 42)
	prog := algo.NewSSSP(0)
	cfg := Config{Workers: 3, MsgBuf: 100, MaxSteps: 20}
	a := runOne(t, g, prog, cfg, BPull)
	cfg.DisablePrepull = true
	b := runOne(t, g, prog, cfg, BPull)
	for v := range a.Values {
		if !almostEqual(a.Values[v], b.Values[v]) {
			t.Fatalf("prepull changed results at vertex %d", v)
		}
	}
	// Pre-pulling doubles the per-block receive buffer accounting.
	if a.MaxMemBytes <= b.MaxMemBytes {
		t.Logf("note: prepull mem %d vs no-prepull %d", a.MaxMemBytes, b.MaxMemBytes)
	}
}
