package core

import (
	"errors"
	"fmt"

	"hybridgraph/internal/checkpoint"
	"hybridgraph/internal/comm"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/metrics"
	"hybridgraph/internal/obs"
)

// Partition-reassignment recovery (Recovery: "reassign"): confined
// recovery handles transient failures in place, but when a worker is
// declared permanently dead — a fault-plan crash marked Permanent, or the
// same worker failing more than Config.MaxRestarts times — there is no
// machine to restart. Instead of failing the job, a least-loaded survivor
// adopts the dead worker's whole Vblock range: the ownership table bumps
// to a new epoch and the fabric rewires the dead slot's address to the
// host (stale-epoch traffic is rejected and re-sent, see comm.Rehomer),
// the host rebuilds the dead partition's stores from the shared catalog,
// restores its last checkpoint snapshot, and replays the supersteps since
// against the survivors' message logs exactly as confined recovery would.
// The adopted unit keeps its origin identity — packets, pulls and
// per-origin combine folds are addressed and ordered as before — so final
// vertex values are byte-identical to a fault-free run; only the physical
// placement changed. Migration traffic is charged to the Migration*
// counters, journaled as reassign/adopt_block events, and the job runs on
// degraded from there.

// ErrNoSurvivors is the typed failure a reassignment raises when a
// permanent loss leaves no live worker to adopt the dead partition.
var ErrNoSurvivors = errors.New("core: no surviving workers to adopt the failed partition")

// pendingMig is one adopted unit's migration cost, stashed until the next
// superstep runs so StepStats.MigrationIO/MigrationNetBytes and the
// unit's WorkerStepEvent land the same numbers (the trace-vs-stats
// cross-check covers migration like everything else). The JobResult
// totals are charged directly at adoption and do not depend on this.
type pendingMig struct {
	set bool
	io  diskio.Snapshot
	net int64
}

// reassignRecoverAll is the reassign policy's recovery driver. It counts
// the failures, decides which failed workers are permanently dead,
// performs the adoptions (including units orphaned because their host
// died), and then runs the shared confined restore+replay for every
// failed unit. permHint marks an injected crash the fault plan declared
// permanent outright.
func (j *job) reassignRecoverAll(engine Engine, res *metrics.JobResult, failed []int,
	failStep, lastDone int, stalled, permHint bool) (halt bool, err error) {

	var perm []int
	for _, fw := range failed {
		if j.own.isDead(fw) {
			// An orphaned unit swept up in its host's stall: it has no
			// machine of its own to count failures against.
			continue
		}
		if stalled {
			j.stallCounts[fw]++
		} else {
			j.crashCounts[fw]++
		}
		permanent := permHint && !stalled
		if j.crashCounts[fw]+j.stallCounts[fw] > j.cfg.MaxRestarts {
			permanent = true
		}
		if permanent {
			perm = append(perm, fw)
		}
	}

	// Expand with orphans: units a dying host was carrying are lost with
	// it and need both a new host and recovery. They are not "dead again" —
	// their ownership entry just re-homes. Every loss is marked before any
	// host is picked so picking sees the complete dead set.
	allFailed := append([]int(nil), failed...)
	if len(perm) > 0 {
		reasons := make(map[int]string, len(perm))
		var units []int
		for _, fw := range perm {
			for _, u := range j.own.adoptedBy(fw) {
				units = appendUnique(units, u)
				allFailed = appendUnique(allFailed, u)
				reasons[u] = "host-lost"
			}
			units = appendUnique(units, fw)
			switch {
			case permHint && !stalled:
				reasons[fw] = "permanent-crash"
			case stalled:
				reasons[fw] = "stall-limit"
			default:
				reasons[fw] = "crash-limit"
			}
			j.own.markDead(fw)
		}
		if len(j.own.survivors()) == 0 {
			return false, fmt.Errorf("%w (workers %v at superstep %d)", ErrNoSurvivors, perm, failStep)
		}
		sortInts(units)
		for _, u := range units {
			if err := j.adoptWorker(u, j.pickHost(), failStep, reasons[u], res); err != nil {
				return false, err
			}
		}
	}
	return j.confinedRecoverAll(engine, res, allFailed, failStep, lastDone, stalled)
}

// pickHost selects the survivor that adopts the next unit: fewest hosted
// units, ties broken by fewest adopted vertices, then lowest id — so
// repeated losses spread across the cluster deterministically.
func (j *job) pickHost() int {
	best, bestUnits, bestVerts := -1, 0, 0
	for _, s := range j.own.survivors() {
		units := len(j.own.adoptedBy(s))
		verts := 0
		for _, a := range j.own.adoptedBy(s) {
			verts += j.parts[a].Len()
		}
		if best < 0 || units < bestUnits || (units == bestUnits && verts < bestVerts) {
			best, bestUnits, bestVerts = s, units, verts
		}
	}
	return best
}

// adoptWorker performs one adoption: ownership and fabric epoch bump,
// store rebuild from the shared catalog under a migration counter, and
// the migration accounting and journal events. The caller follows up with
// confinedRecover, which restores the snapshot and replays the logs — by
// then the unit is fully re-homed, so replay traffic flows through the
// new placement.
func (j *job) adoptWorker(fw, host, step int, reason string, res *metrics.JobResult) error {
	w := j.workers[fw]
	epoch := j.own.adopt(fw, host)
	if rh, ok := j.fabric.(comm.Rehomer); ok {
		rh.AdvanceEpoch()
		rh.Rehome(fw, host)
	}

	// Rebuild the dead machine's stores: vertex records fresh (the
	// snapshot restore overwrites the values), adjacency and VE-BLOCK from
	// the shared catalog source or the graph. The builds are charged to a
	// migration counter — this is the I/O the adoption itself performs —
	// and the stores then return to the unit's compute counter.
	migCt := &diskio.Counter{}
	migPct := &diskio.Counter{}
	migCt.SetPhys(migPct)
	saved := j.loadCts[fw]
	j.loadCts[fw] = migCt
	rebuild := func() error {
		if w.vstore != nil {
			w.vstore.Close()
			w.vstore = nil
		}
		if err := w.buildVertexStore(j.g); err != nil {
			return err
		}
		if w.adj != nil {
			w.adj.Close()
			w.adj = nil
			if err := w.buildAdj(j.g); err != nil {
				return err
			}
		}
		if w.ve != nil {
			w.ve.Close()
			w.ve = nil
			if err := w.buildVE(j.g); err != nil {
				return err
			}
		}
		return nil
	}
	rerr := rebuild()
	j.loadCts[fw] = saved
	if rerr != nil {
		return fmt.Errorf("core: adopting worker %d on %d: %w", fw, host, rerr)
	}
	for _, s := range []interface{ SetCounter(*diskio.Counter) }{w.vstore, w.adj, w.ve} {
		if s != nil {
			s.SetCounter(w.ct)
		}
	}

	// Migration network bytes: the state that logically crossed machines —
	// the checkpoint snapshot slice, the unit's retained message-log
	// segments, and the layout bytes fetched to rebuild the stores
	// (Cmig = |snapshot| + Σ|seg| + |adj| + |VE|).
	migIO := migCt.Snapshot()
	migPhys := migPct.Snapshot()
	var netBytes int64
	if j.ckptStep > 0 {
		// The snapshot's contribution to Cmig is its logical size: what
		// crosses the wire in the paper's model is the state, not however
		// the local file happens to be framed on disk.
		coord := checkpoint.Coordinator{Dir: j.dir}
		if sz, err := checkpoint.SnapshotLogicalSize(coord.SnapshotPath(j.ckptStep, fw)); err == nil {
			netBytes += sz
		}
	}
	if w.mlog != nil {
		if sb, err := w.mlog.SegmentBytes(); err == nil {
			netBytes += sb
		}
	}
	netBytes += migIO.Bytes[diskio.SeqWrite]

	res.Reassignments++
	res.MigrationIO = res.MigrationIO.Add(migIO)
	res.MigrationPhysIO = res.MigrationPhysIO.Add(migPhys)
	res.MigrationNetBytes += netBytes
	res.Degraded = true
	migDisk := migIO
	if j.cfg.ChargePhysical {
		migDisk = migPhys
	}
	res.RecoverySimSeconds += j.cfg.Profile.DiskSeconds(migDisk) + j.cfg.Profile.NetSeconds(netBytes)
	j.pendingMig[fw] = pendingMig{set: true, io: migIO, net: netBytes}
	j.jm.reassigns.Inc()
	j.jm.migIOBytes.Add(migIO.Total())
	j.jm.migNetBytes.Add(netBytes)
	j.jm.degraded.Set(int64(j.own.deadCount()))

	if j.trace != nil {
		j.trace.Emit(obs.ReassignEvent{Type: obs.EventReassign, Step: step,
			Worker: fw, Host: host, Epoch: epoch, Reason: reason,
			Crashes: j.crashCounts[fw], Stalls: j.stallCounts[fw],
			MigrationIOBytes: migIO.Total(), MigrationNetBytes: netBytes})
		lo, hi := j.layout.WorkerBlocks(fw)
		for b := lo; b < hi; b++ {
			blk := j.layout.Blocks[b]
			j.trace.Emit(obs.AdoptBlockEvent{Type: obs.EventAdoptBlock, Step: step,
				Block: b, From: fw, To: host, Epoch: epoch,
				Vfirst: int(blk.Lo), Vcount: blk.Len()})
		}
	}
	if j.cfg.OnRecovery != nil {
		j.cfg.OnRecovery(RecoveryNotice{Kind: "reassign", Step: step,
			Worker: fw, Host: host, Epoch: epoch})
	}
	return nil
}

// appendUnique appends v unless already present (tiny slices only).
func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// sortInts sorts ascending (insertion sort: recovery-path slices are tiny).
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}
