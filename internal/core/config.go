// Package core is HybridGraph's contribution: the push, pushM (MOCgraph-
// style), pull (PowerGraph-style vertex-cut baseline) and b-pull engines,
// plus the hybrid engine that switches between push and b-pull adaptively
// using the performance metric Q^t of Eq. (11). All engines run the same
// vertex programs over the same per-worker disk-resident stores and report
// the same per-superstep statistics, so the paper's comparisons fall out
// of one code path.
package core

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"hybridgraph/internal/adjstore"
	"hybridgraph/internal/codec"
	"hybridgraph/internal/comm"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/obs"
	"hybridgraph/internal/veblock"
)

// StoreSource supplies pre-built, read-only edge stores for a job — the
// persistent graph catalog's hook into the engines. When Config.Stores is
// set, setup opens the source's adjacency and VE-BLOCK files instead of
// rebuilding them, so the one-time ingestion cost is amortised across
// every job over the same graph (the paper's VE-BLOCK is built once at
// load time; see internal/catalog). The source's partitioning geometry is
// authoritative: the job must run with Workers() workers and, for
// block-centric engines, the BlocksPer() Vblock counts the layout was
// built with. Opens are charged to the worker's loading counter; a reused
// store performs zero build writes. The pull baseline's mirror store is
// not part of a source and is still built per job.
type StoreSource interface {
	// GraphName labels the source in traces ("" is fine).
	GraphName() string
	// Workers reports the partition count the stores were built for.
	Workers() int
	// BlocksPer reports the per-worker Vblock counts of the VE layout.
	BlocksPer() []int
	// OpenAdj opens worker w's adjacency store read-only.
	OpenAdj(w int, ct *diskio.Counter, g *graph.Graph, part graph.Partition) (*adjstore.Store, error)
	// OpenVE opens worker w's VE-BLOCK store read-only against layout,
	// which must match the geometry the file was built with.
	OpenVE(w int, ct *diskio.Counter, g *graph.Graph, layout *veblock.Layout) (*veblock.Store, error)
	// Codec names the block codec the stores were encoded with at build
	// time ("" or "none" for the raw layout). A job must declare the same
	// codec in Config.Codec — setup rejects a mismatch rather than
	// misread or silently re-encode the files.
	Codec() string
}

// Engine names one message-handling approach.
type Engine string

// The five engines of the paper's evaluation (Section 6 naming).
const (
	Push   Engine = "push"   // Giraph-style push with disk-spilled messages
	PushM  Engine = "pushM"  // MOCgraph-style push with message online computing
	Pull   Engine = "pull"   // PowerGraph-style vertex-cut pull (disk-extended)
	BPull  Engine = "b-pull" // the paper's block-centric pull
	Hybrid Engine = "hybrid" // adaptive switching between push and b-pull
)

// Engines lists all engines in the paper's plotting order.
var Engines = []Engine{Push, PushM, Pull, BPull, Hybrid}

// Config parameterises one job.
type Config struct {
	// Workers is T, the number of computational nodes (default 5).
	Workers int
	// MsgBuf is B_i, each worker's message buffer capacity in messages;
	// <= 0 means unlimited.
	MsgBuf int
	// InMemory selects the paper's sufficient-memory scenario: all stores
	// are memory-resident and no I/O is charged. Implies unlimited MsgBuf.
	InMemory bool
	// MaxSteps caps the number of supersteps (default 30; Always-Active
	// programs also halt here).
	MaxSteps int
	// Profile sets the hardware cost model (default diskio.HDDLocal).
	Profile diskio.Profile
	// WorkDir is where per-worker files live; empty means a fresh
	// temporary directory removed when the job closes.
	WorkDir string
	// BlocksPerWorker fixes the Vblock count per worker; 0 derives it from
	// Eq. (5)/(6) using MsgBuf.
	BlocksPerWorker int
	// VertexCache is the pull baseline's per-worker resident vertex
	// budget (Table 5's cache sizes); <= 0 means unbounded, i.e. the
	// ext-edge scenario where all vertices fit in memory. Ignored by
	// other engines.
	VertexCache int
	// SendThreshold is the push sender threshold in bytes (default 4 MB).
	SendThreshold int64
	// Parallelism is the per-worker compute parallelism: every engine's
	// update scan shards its vertex range into this many goroutines, and
	// the inbox drain sorts message lists on as many. Defaults to
	// runtime.NumCPU()/Workers (min 1), so a job saturates the machine
	// without oversubscribing it. Whatever the value, runs are bit-exact:
	// vertex values, Eq. (7)/(8) I/O totals, wire bytes, Q^t inputs and
	// trace events are byte-identical to Parallelism=1 (see DESIGN.md,
	// "Determinism under parallel compute").
	Parallelism int
	// PrefetchDepth is b-pull's block-fetch pipeline depth: how many
	// Vblocks ahead of the one updating are being pulled concurrently
	// (default 1, the paper's pre-pulling; DisablePrepull forces 0). The
	// receiving-buffer memory charge scales with the fetches actually in
	// flight: BR_i·(1+inflight).
	PrefetchDepth int
	// DisableCombine turns off message combining in b-pull even for
	// combinable algorithms (Fig. 18's fairness setting); concatenation
	// stays on.
	DisableCombine bool
	// DisablePrepull turns off b-pull's pre-pulling of the next Vblock
	// (ablation; also the paper's concat-only configuration).
	DisablePrepull bool
	// SenderCombine turns on sender-side combining for the push engines
	// (the paper's modified MOCgraph, pushM+com, Appendix E). Requires a
	// combinable algorithm.
	SenderCombine bool
	// SwitchInterval is hybrid's minimum spacing Δt between switches
	// (default 2, the paper's choice; Section 5.3 argues frequent
	// switching is not cost effective).
	SwitchInterval int
	// EdgesInMemory keeps edge stores memory-resident while vertex values
	// stay on disk (Table 5's ext-* scenarios for pull).
	EdgesInMemory bool
	// VerticesInMemory keeps vertex records memory-resident while edges
	// stay on disk (Table 5 ext-edge).
	VerticesInMemory bool
	// Source seeds SSSP/SA-style programs (informational; programs carry
	// their own source).
	Source graph.VertexID
	// KeepFiles leaves the work directory in place after the job.
	KeepFiles bool
	// TCP routes all worker communication over loopback TCP sockets with
	// gob framing instead of the in-process fabric, demonstrating that
	// superstep semantics survive a real network hop. Byte accounting is
	// identical either way.
	TCP bool
	// FailStep, when > 0, injects a simulated crash of worker FailWorker
	// at the start of that superstep, once — shorthand for a FaultPlan
	// with a single crash. The master's fault detector notices it at the
	// barrier and recovers per the Recovery policy.
	FailStep   int
	FailWorker int
	// FaultPlan injects a deterministic schedule of faults: multiple
	// worker crashes at (superstep, worker) points, plus — over TCP —
	// seeded transport faults (dropped, delayed, duplicated RPCs) the
	// resilient fabric must absorb. Overrides FailStep/FailWorker when
	// set. The plan is pure data; each Run tracks its own firing state,
	// so a Config (and its plan) can be reused across runs.
	FaultPlan *faultplan.Plan
	// PhaseAware enables the Appendix G extension: hybrid analyses the
	// history of Q^t signs for periodicity and, when a Multi-Phase-Style
	// cycle is detected, schedules modes from the matching phase of the
	// previous cycle instead of the (poor) persistence forecast.
	PhaseAware bool
	// Async enables asynchronous iteration inside the push engine (the
	// extension the paper flags: "HybridGraph can be extended to support
	// the asynchronous iteration"): after the superstep's scan, each
	// worker keeps draining and applying incoming messages eagerly —
	// local relaxations and cross-worker ping-pong alike — until
	// quiescence, instead of parking them for the next barrier. Sound
	// only for monotone programs with commutative, idempotent-toward-
	// fixpoint updates (SSSP, WCC); it collapses their long convergent
	// tails into a handful of supersteps.
	Async bool
	// Recovery selects the fault-tolerance policy: "scratch" (default)
	// recomputes from superstep 1 as the paper's prototype does;
	// "resume" implements the lightweight solution the paper motivates
	// for self-correcting algorithms ("some algorithms always converge to
	// the same results from any input", Appendix A) — vertex values
	// survive and the restart's first superstep just re-announces them.
	// Resume is only sound for algorithms whose fixpoint is independent
	// of the starting state (WCC, SSSP, converging PageRank);
	// "checkpoint" restores every worker from the last committed
	// superstep checkpoint (see CheckpointEvery) and replays only the
	// supersteps since — the Pregel/Giraph policy, sound for every
	// algorithm. "confined" restores only the failed worker: every worker
	// logs its outgoing push packets and served pull responses to a local
	// superstep-segmented message log (internal/msglog, pruned on
	// checkpoint commit), and after a failure the crashed worker alone
	// restores its snapshot and replays the supersteps since by consuming
	// survivors' logs — survivors serve log segments with zero recompute
	// I/O, so recovery cost scales with the failed partition instead of
	// the whole job. Confined requires a deterministic superstep schedule
	// (no Async) and an engine with loggable exchanges (push, pushM,
	// b-pull, hybrid — not the pull baseline's gather/scatter).
	// "reassign" extends confined with permanent-loss handling: when a
	// worker is declared permanently dead (a faultplan crash marked
	// Permanent, or its crash/stall count exceeding MaxRestarts), a
	// least-loaded survivor adopts the dead worker's whole Vblock range —
	// restoring its snapshot, rebuilding its edge stores from the shared
	// catalog, and replaying the logged supersteps confined-style — and
	// the job continues degraded on the shrunken worker set.
	// Non-permanent failures under "reassign" recover confined-style in
	// place. Requires Workers >= 2 and the same engine/Async constraints
	// as confined.
	Recovery string
	// MaxRestarts bounds how many times one worker may crash or stall
	// before the reassign policy declares it permanently dead and hands
	// its partition to a survivor. <= 0 defaults to 1 under "reassign"
	// (the second failure of the same worker triggers adoption). Ignored
	// by the other policies, which restart without limit.
	MaxRestarts int
	// OnRecovery, when non-nil, is invoked synchronously after every
	// recovery action the job takes — once per restored worker with Kind
	// "crash" or "stall", and once per adoption with Kind "reassign" —
	// so a scheduler can track worker health and degradation live. The
	// callback runs on the job's control goroutine; keep it fast.
	OnRecovery func(RecoveryNotice)
	// BarrierDeadline bounds how long the master waits at a superstep
	// barrier before declaring the unfinished workers failed (stall
	// detection). Zero defaults to 250ms when the fault plan schedules
	// stalls; without stalls the barrier waits forever, as before.
	BarrierDeadline time.Duration
	// TraceWriter, when non-nil, receives the structured JSONL superstep
	// trace journal: one obs.WorkerStepEvent per superstep per worker with
	// the full I/O breakdown and net in/out bytes, one obs.StepEvent per
	// superstep with the aggregated StepStats, Q^t inputs and hybrid's
	// scheduling decision, plus events for mode switches, checkpoint
	// commits, injected faults and recoveries. Nil disables tracing at
	// zero cost.
	TraceWriter io.Writer
	// TracePath writes the journal to a file (created or truncated at job
	// start, closed at job end). Ignored when TraceWriter is set.
	TracePath string
	// TraceDir writes the journal to an auto-named file
	// <dir>/<algorithm>_<engine>_<seq>.jsonl inside the directory, which is
	// created if missing. Ignored when TraceWriter or TracePath is set.
	// The harness uses this to export one journal per experiment run.
	TraceDir string
	// Metrics, when non-nil, is the registry the job and every subsystem
	// under it (comm fabrics, message stores, pull caches, checkpointing)
	// report live counters into; snapshot it any time, or serve it via
	// obs.StartDebug. Nil disables metrics at near-zero cost.
	Metrics *obs.Registry
	// Stores, when non-nil, supplies pre-built read-only edge stores (a
	// persistent-catalog hit): setup opens the source's adjacency and
	// VE-BLOCK files instead of rebuilding them, Workers is forced to the
	// source's partition count, and block-centric engines adopt the
	// source's Vblock geometry (BlocksPerWorker/Eq. 5-6 derivation are
	// ignored). LoadIO then contains only the per-job vertex-store init;
	// layout-build writes are zero, which the "catalog" trace event and
	// JobResult.LayoutBuildBytes make checkable.
	Stores StoreSource
	// JobLabel tags this run's trace events (job_start/job_end) and is
	// purely informational — the service daemon sets it to the job id so
	// journals from concurrent jobs attribute cleanly.
	JobLabel string
	// CheckpointEvery, when > 0, makes every worker write an atomic,
	// CRC-verified snapshot of its vertex values, flag vectors and parked
	// inbox messages every that many supersteps; the master commits the
	// checkpoint once all workers have written theirs. Checkpoint bytes
	// are charged to the disk cost model as sequential writes, so the
	// overhead shows up in SimSeconds. Defaults to 5 when Recovery is
	// "checkpoint" and left unset.
	CheckpointEvery int
	// Codec selects the block codec every disk-resident structure the job
	// writes or opens is encoded with: adjacency runs, VE-BLOCK Eblock
	// files, inbox spill segments, recovery message logs and checkpoint
	// snapshots. "" or "none" is the raw layout; "delta" zigzag-delta
	// varint-codes sorted id runs; "lz" is flate. The codec changes only
	// physical bytes: every logical charge — the paper's Eq. (7)/(8)
	// classes, Q^t inputs, LoadIO, checkpoint and replay costs — is
	// byte-identical to codec "none", and final vertex values are
	// bit-exact. Physical (compressed) bytes are reported separately in
	// StepStats.PhysIO / JobResult.PhysIO with the achieved
	// CompressionRatio. When Stores is set, the codec must match the
	// source's ingest codec.
	Codec string
	// ChargePhysical makes the disk-time component of SimSeconds use the
	// physical (compressed) byte deltas instead of the logical ones —
	// "what would this run cost on hardware actually moving compressed
	// blocks". Q^t inputs and all reported logical stats are unaffected;
	// only DiskSeconds switches dimension. No-op under codec "none"
	// (physical == logical there).
	ChargePhysical bool
	// ResumeFromCheckpoint makes the job, before its first superstep, look
	// for a committed checkpoint in WorkDir and resume from it instead of
	// starting at superstep 1. This is how a restarted service daemon
	// continues a job a process kill interrupted: same WorkDir, same
	// configuration, and the run picks up at the last committed checkpoint
	// (or superstep 1 when none committed). No-op when WorkDir holds no
	// committed checkpoint.
	ResumeFromCheckpoint bool
}

// RecoveryNotice describes one recovery action a job took, delivered to
// Config.OnRecovery as it happens. Kind is "crash" or "stall" for an
// in-place restore of a failed worker, or "reassign" when the reassign
// policy handed a permanently-dead worker's partition to a survivor; in
// that case Host is the adopting worker and Epoch the ownership epoch
// the adoption installed (Host is -1 and Epoch 0 otherwise).
type RecoveryNotice struct {
	Kind   string
	Step   int
	Worker int
	Host   int
	Epoch  int64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Stores != nil && c.Workers <= 0 {
		c.Workers = c.Stores.Workers()
	}
	if c.Workers <= 0 {
		c.Workers = 5
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 30
	}
	if c.Profile.SNet == 0 {
		c.Profile = diskio.HDDLocal
	}
	if c.SendThreshold <= 0 {
		c.SendThreshold = 4 << 20
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU() / c.Workers
		if c.Parallelism < 1 {
			c.Parallelism = 1
		}
	}
	if c.PrefetchDepth <= 0 {
		c.PrefetchDepth = 1
	}
	if c.DisablePrepull {
		c.PrefetchDepth = 0
	}
	if c.SwitchInterval <= 0 {
		c.SwitchInterval = 2
	}
	if c.InMemory {
		c.MsgBuf = 0
		c.EdgesInMemory = true
		c.VerticesInMemory = true
	}
	if (c.Recovery == "checkpoint" || c.Recovery == "confined" || c.Recovery == "reassign") &&
		c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 5
	}
	if c.Recovery == "reassign" && c.MaxRestarts <= 0 {
		c.MaxRestarts = 1
	}
	if c.FaultPlan == nil && c.FailStep > 0 {
		c.FaultPlan = faultplan.NewPlan(faultplan.Crash{Step: c.FailStep, Worker: c.FailWorker})
	}
	if c.BarrierDeadline <= 0 && c.FaultPlan != nil && len(c.FaultPlan.Stalls) > 0 {
		c.BarrierDeadline = 250 * time.Millisecond
	}
	return c
}

// validate rejects configurations the engines cannot honour.
func (c Config) validate(n int) error {
	if n <= 0 {
		return fmt.Errorf("core: graph has no vertices")
	}
	if c.Workers > n {
		return fmt.Errorf("core: %d workers for %d vertices", c.Workers, n)
	}
	if c.BlocksPerWorker < 0 {
		return fmt.Errorf("core: negative BlocksPerWorker")
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: negative Parallelism")
	}
	if c.PrefetchDepth < 0 {
		return fmt.Errorf("core: negative PrefetchDepth")
	}
	// Parallelism/SendThreshold interaction: the parallel scan partitions
	// the sender threshold across shards (comm.ShardThreshold, floored at
	// one message per shard), so any threshold that can carry a message at
	// all partitions cleanly. A threshold below one wire message cannot —
	// even the sequential outbox would flush every Add — so reject it here
	// rather than let packet accounting silently degenerate.
	if c.SendThreshold > 0 && c.SendThreshold < comm.MsgWireSize {
		return fmt.Errorf("core: SendThreshold %d is smaller than one wire message (%d bytes)",
			c.SendThreshold, comm.MsgWireSize)
	}
	if c.Stores != nil && c.Workers != c.Stores.Workers() {
		return fmt.Errorf("core: %d workers but the store source was built for %d",
			c.Workers, c.Stores.Workers())
	}
	if _, err := codec.Lookup(c.Codec); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Stores != nil {
		want, err := codec.Lookup(c.Stores.Codec())
		if err != nil {
			return fmt.Errorf("core: store source declares %w", err)
		}
		have, _ := codec.Lookup(c.Codec)
		if want.ID() != have.ID() {
			return fmt.Errorf("core: Config.Codec %q does not match the store source's ingest codec %q",
				have.Name(), want.Name())
		}
	}
	switch c.Recovery {
	case "", "scratch", "resume", "checkpoint", "confined", "reassign":
	default:
		return fmt.Errorf("core: unknown recovery policy %q", c.Recovery)
	}
	if (c.Recovery == "confined" || c.Recovery == "reassign") && c.Async {
		// Async drains messages eagerly past the barrier, so a survivor's
		// log is not a superstep-consistent record of what the failed
		// worker must re-consume.
		return fmt.Errorf("core: %s recovery requires synchronous iteration (Async is set)", c.Recovery)
	}
	if c.Recovery == "reassign" && c.Workers < 2 {
		// A single worker has no survivor to adopt its partition.
		return fmt.Errorf("core: reassign recovery requires at least 2 workers, have %d", c.Workers)
	}
	if c.FaultPlan != nil {
		for _, cr := range c.FaultPlan.Crashes {
			if cr.Worker < 0 || cr.Worker >= c.Workers {
				return fmt.Errorf("core: fault plan crashes worker %d of %d", cr.Worker, c.Workers)
			}
		}
		for _, s := range c.FaultPlan.Stalls {
			if s.Worker < 0 || s.Worker >= c.Workers {
				return fmt.Errorf("core: fault plan stalls worker %d of %d", s.Worker, c.Workers)
			}
		}
	}
	return nil
}
