package core

import (
	"math"
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/graph"
)

// TestAsyncSSSPMatchesSyncInFewerSupersteps checks the asynchronous-
// iteration extension: SSSP relaxes eagerly across the cluster within a
// superstep, so it reaches the same distances in a fraction of the
// supersteps the synchronous run needs.
func TestAsyncSSSPMatchesSyncInFewerSupersteps(t *testing.T) {
	// A long chain maximises the synchronous superstep count.
	g := graph.GenChain(200, 0, 95)
	prog := algo.NewSSSP(0)
	cfg := Config{Workers: 4, MsgBuf: 50, MaxSteps: 300}
	sync, err := Run(g, prog, cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	async := cfg
	async.Async = true
	as, err := Run(g, prog, async, Push)
	if err != nil {
		t.Fatal(err)
	}
	for v := range sync.Values {
		a, b := sync.Values[v], as.Values[v]
		if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
			t.Fatalf("vertex %d: async %g vs sync %g", v, b, a)
		}
	}
	if as.Supersteps()*4 > sync.Supersteps() {
		t.Fatalf("async took %d supersteps, sync %d; expected at least a 4x collapse",
			as.Supersteps(), sync.Supersteps())
	}
}

func TestAsyncWCC(t *testing.T) {
	g := algo.Symmetrize(graph.GenUniform(400, 900, 96))
	prog := algo.NewWCC()
	cfg := Config{Workers: 3, MsgBuf: 60, MaxSteps: 200}
	sync, err := Run(g, prog, cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	async := cfg
	async.Async = true
	as, err := Run(g, prog, async, Push)
	if err != nil {
		t.Fatal(err)
	}
	for v := range sync.Values {
		if sync.Values[v] != as.Values[v] {
			t.Fatalf("vertex %d: async %g vs sync %g", v, as.Values[v], sync.Values[v])
		}
	}
	if as.Supersteps() >= sync.Supersteps() {
		t.Fatalf("async %d supersteps should beat sync %d", as.Supersteps(), sync.Supersteps())
	}
}

func TestAsyncIgnoredByOtherEngines(t *testing.T) {
	// Async is a push-engine extension; b-pull runs are unaffected.
	g := graph.GenChain(50, 0, 97)
	cfg := Config{Workers: 2, MsgBuf: 20, MaxSteps: 100, Async: true}
	res, err := Run(g, algo.NewSSSP(0), cfg, BPull)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps() < 50 {
		t.Fatalf("b-pull with Async flag took %d supersteps; flag should be inert", res.Supersteps())
	}
}
