package core

import (
	"path/filepath"
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/vertexfile"
)

func newTestVStore(t *testing.T, n int, ct *diskio.Counter) *vertexfile.Store {
	t.Helper()
	recs := make([]vertexfile.Record, n)
	for i := range recs {
		recs[i] = vertexfile.Record{ID: graph.VertexID(i), Val: float64(i)}
	}
	vs, err := vertexfile.Create(filepath.Join(t.TempDir(), "v.dat"), ct, 0, recs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vs.Close() })
	return vs
}

func TestPullCacheReadThrough(t *testing.T) {
	var ct diskio.Counter
	vs := newTestVStore(t, 10, &ct)
	c := newPullCache(vs, 5, nil)
	before := ct.Snapshot()
	r, err := c.get(3)
	if err != nil || r.Val != 3 {
		t.Fatalf("get = %+v, %v", r, err)
	}
	d1 := ct.Snapshot().Sub(before)
	if d1.Bytes[diskio.RandRead] != vertexfile.RecordSize {
		t.Fatalf("miss should random-read one record, got %v", d1)
	}
	// Second read is a hit: no further I/O.
	if _, err := c.get(3); err != nil {
		t.Fatal(err)
	}
	d2 := ct.Snapshot().Sub(before)
	if d2.Bytes[diskio.RandRead] != vertexfile.RecordSize {
		t.Fatalf("hit did I/O: %v", d2)
	}
	hits, misses, _ := c.stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestPullCacheDirtyEvictionWritesBack(t *testing.T) {
	var ct diskio.Counter
	vs := newTestVStore(t, 10, &ct)
	c := newPullCache(vs, 2, nil)
	// Dirty vertex 0, then push it out with two more entries.
	r, _ := c.get(0)
	r.Val = 100
	if err := c.put(r); err != nil {
		t.Fatal(err)
	}
	before := ct.Snapshot()
	if _, err := c.get(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.get(2); err != nil { // evicts 0 (dirty)
		t.Fatal(err)
	}
	d := ct.Snapshot().Sub(before)
	if d.Bytes[diskio.RandWrite] != vertexfile.RecordSize {
		t.Fatalf("dirty eviction should write one record, got %v", d)
	}
	got, err := vs.ReadRecord(0)
	if err != nil || got.Val != 100 {
		t.Fatalf("evicted value not persisted: %+v, %v", got, err)
	}
}

func TestPullCacheCleanEvictionIsFree(t *testing.T) {
	var ct diskio.Counter
	vs := newTestVStore(t, 10, &ct)
	c := newPullCache(vs, 1, nil)
	c.get(0)
	before := ct.Snapshot()
	c.get(1) // evicts clean 0
	d := ct.Snapshot().Sub(before)
	if d.Bytes[diskio.RandWrite] != 0 {
		t.Fatalf("clean eviction wrote: %v", d)
	}
}

func TestPullCacheUnboundedNeverEvicts(t *testing.T) {
	var ct diskio.Counter
	vs := newTestVStore(t, 100, &ct)
	c := newPullCache(vs, 0, nil)
	for v := 0; v < 100; v++ {
		r, err := c.get(graph.VertexID(v))
		if err != nil {
			t.Fatal(err)
		}
		r.Val++
		if err := c.put(r); err != nil {
			t.Fatal(err)
		}
	}
	if c.resident() != 100 {
		t.Fatalf("resident = %d, want 100", c.resident())
	}
	before := ct.Snapshot()
	// Re-touch everything: all hits, no I/O.
	for v := 0; v < 100; v++ {
		if _, err := c.get(graph.VertexID(v)); err != nil {
			t.Fatal(err)
		}
	}
	if d := ct.Snapshot().Sub(before); d.Total() != 0 {
		t.Fatalf("unbounded cache re-reads did I/O: %v", d)
	}
}

func TestPullCacheFlushPersistsDirty(t *testing.T) {
	var ct diskio.Counter
	vs := newTestVStore(t, 10, &ct)
	for _, capacity := range []int{0, 4} {
		c := newPullCache(vs, capacity, nil)
		r, _ := c.get(5)
		r.Val = 55
		c.put(r)
		if err := c.flush(); err != nil {
			t.Fatal(err)
		}
		got, _ := vs.ReadRecord(5)
		if got.Val != 55 {
			t.Fatalf("capacity %d: flush did not persist (val %g)", capacity, got.Val)
		}
	}
}

func TestPullCacheReadBcastParity(t *testing.T) {
	var ct diskio.Counter
	recs := []vertexfile.Record{{ID: 0, Bcast: [2]float64{7, 9}}}
	vs, err := vertexfile.Create(filepath.Join(t.TempDir(), "v"), &ct, 0, recs)
	if err != nil {
		t.Fatal(err)
	}
	defer vs.Close()
	c := newPullCache(vs, 2, nil)
	if v, _ := c.readBcast(0, 0); v != 7 {
		t.Fatalf("parity 0 = %g", v)
	}
	if v, _ := c.readBcast(0, 1); v != 9 {
		t.Fatalf("parity 1 = %g", v)
	}
}

// TestTable5CacheCliff reproduces Appendix F's finding in miniature: with
// the cache above the working set, steady-state vertex I/O vanishes; just
// below it, cyclic scans defeat LRU and every superstep thrashes.
func TestTable5CacheCliff(t *testing.T) {
	g := graph.GenUniform(1000, 15000, 50)
	prog := algo.NewPageRank(0.85)
	base := Config{Workers: 2, MsgBuf: 100, MaxSteps: 4}

	big := base
	big.VertexCache = 0 // unbounded: ext-edge
	small := base
	small.VertexCache = 400 // below the 500-vertex per-worker working set

	rBig, err := Run(g, prog, big, Pull)
	if err != nil {
		t.Fatal(err)
	}
	rSmall, err := Run(g, prog, small, Pull)
	if err != nil {
		t.Fatal(err)
	}
	vBig := rBig.IO.Bytes[diskio.RandRead] + rBig.IO.Bytes[diskio.RandWrite]
	vSmall := rSmall.IO.Bytes[diskio.RandRead] + rSmall.IO.Bytes[diskio.RandWrite]
	if vSmall < 5*vBig {
		t.Fatalf("cache cliff missing: small-cache random I/O %d, unbounded %d", vSmall, vBig)
	}
}

func TestSenderCombineSavesBytes(t *testing.T) {
	// Many edges toward few destinations with a generous threshold lets
	// the sender-side combiner collapse traffic (pushM+com, Fig. 26).
	b := graph.NewBuilder(100)
	for src := 10; src < 90; src++ {
		for dst := 0; dst < 5; dst++ {
			b.AddEdge(graph.VertexID(src), graph.VertexID(dst), 1)
		}
	}
	g := b.Build()
	prog := algo.NewPageRank(0.85)
	cfg := Config{Workers: 2, MsgBuf: 50, MaxSteps: 3}
	plain, err := Run(g, prog, cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SenderCombine = true
	com, err := Run(g, prog, cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	if com.NetBytes >= plain.NetBytes {
		t.Fatalf("sender combining did not reduce traffic: %d vs %d", com.NetBytes, plain.NetBytes)
	}
	for v := range plain.Values {
		if !almostEqual(plain.Values[v], com.Values[v]) {
			t.Fatalf("sender combining changed results at vertex %d", v)
		}
	}
}
