package core

import (
	"fmt"
	"os"
	"path/filepath"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/obs"
)

// jobMetrics caches the registry instruments the superstep loop touches so
// the hot path pays pointer increments, not map lookups. Every field is
// nil when metrics are disabled, and the obs instruments no-op on nil.
type jobMetrics struct {
	supersteps  *obs.Counter // "core.supersteps"
	updated     *obs.Counter // "core.updated_vertices"
	produced    *obs.Counter // "core.produced_msgs"
	spilled     *obs.Counter // "core.spilled_msgs"
	netBytes    *obs.Counter // "core.net_bytes"
	ioBytes     *obs.Counter // "core.io_bytes" (logical superstep bytes)
	switches    *obs.Counter // "core.mode_switches"
	faults      *obs.Counter // "core.injected_faults"
	recoveries  *obs.Counter // "core.recoveries"
	ckptCommits *obs.Counter // "checkpoint.commits"
	ckptBytes   *obs.Counter // "checkpoint.bytes"
	restores    *obs.Counter // "checkpoint.restores"
	restoreFail *obs.Counter // "checkpoint.restore_failures"
	pruneFails  *obs.Counter // "checkpoint.prune_failures"
	stalls      *obs.Counter // "core.stalled_workers"
	confined    *obs.Counter // "core.confined_recoveries"
	logBytes    *obs.Counter // "msglog.bytes_logged"
	logPrunes   *obs.Counter // "msglog.segments_pruned"
	replayBytes *obs.Counter // "replay.bytes"
	replaySteps *obs.Counter // "replay.supersteps"
	diskFaults  *obs.Counter // "core.disk_faults" (injected storage faults observed)
	ckptFails   *obs.Counter // "checkpoint.write_failures" (abandoned, not committed)
	reassigns   *obs.Counter // "core.reassignments" (partitions adopted by survivors)
	migIOBytes  *obs.Counter // "migration.io_bytes" (store-rebuild I/O of adoptions)
	migNetBytes *obs.Counter // "migration.net_bytes" (state shipped to adopting hosts)
	physBytes   *obs.Counter // "core.phys_bytes" (physical post-codec superstep bytes)
	compression *obs.Gauge   // "core.compression_ratio_milli" (logical/physical ×1000)
	step        *obs.Gauge   // "core.superstep" (the superstep in flight)
	memPeak     *obs.Gauge   // "core.mem_bytes_peak"
	degraded    *obs.Gauge   // "core.workers_degraded" (permanently-dead workers)
}

func newJobMetrics(reg *obs.Registry) jobMetrics {
	return jobMetrics{
		supersteps:  reg.Counter("core.supersteps"),
		updated:     reg.Counter("core.updated_vertices"),
		produced:    reg.Counter("core.produced_msgs"),
		spilled:     reg.Counter("core.spilled_msgs"),
		netBytes:    reg.Counter("core.net_bytes"),
		ioBytes:     reg.Counter("core.io_bytes"),
		switches:    reg.Counter("core.mode_switches"),
		faults:      reg.Counter("core.injected_faults"),
		recoveries:  reg.Counter("core.recoveries"),
		ckptCommits: reg.Counter("checkpoint.commits"),
		ckptBytes:   reg.Counter("checkpoint.bytes"),
		restores:    reg.Counter("checkpoint.restores"),
		restoreFail: reg.Counter("checkpoint.restore_failures"),
		pruneFails:  reg.Counter("checkpoint.prune_failures"),
		stalls:      reg.Counter("core.stalled_workers"),
		confined:    reg.Counter("core.confined_recoveries"),
		logBytes:    reg.Counter("msglog.bytes_logged"),
		logPrunes:   reg.Counter("msglog.segments_pruned"),
		replayBytes: reg.Counter("replay.bytes"),
		replaySteps: reg.Counter("replay.supersteps"),
		diskFaults:  reg.Counter("core.disk_faults"),
		ckptFails:   reg.Counter("checkpoint.write_failures"),
		reassigns:   reg.Counter("core.reassignments"),
		migIOBytes:  reg.Counter("migration.io_bytes"),
		migNetBytes: reg.Counter("migration.net_bytes"),
		physBytes:   reg.Counter("core.phys_bytes"),
		compression: reg.Gauge("core.compression_ratio_milli"),
		step:        reg.Gauge("core.superstep"),
		memPeak:     reg.Gauge("core.mem_bytes_peak"),
		degraded:    reg.Gauge("core.workers_degraded"),
	}
}

// newJobTracer resolves the three trace configuration knobs in precedence
// order: an explicit writer, an explicit file path, or an auto-named file
// inside a directory. Returns nil (tracing disabled) when none is set.
func newJobTracer(cfg Config, prog algo.Program, engine Engine) (*obs.Tracer, error) {
	switch {
	case cfg.TraceWriter != nil:
		return obs.NewTracer(cfg.TraceWriter), nil
	case cfg.TracePath != "":
		return obs.OpenTracer(cfg.TracePath)
	case cfg.TraceDir != "":
		if err := os.MkdirAll(cfg.TraceDir, 0o755); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%s_%s_%04d.jsonl", prog.Name(), engine, obs.NextTraceSeq())
		return obs.OpenTracer(filepath.Join(cfg.TraceDir, name))
	}
	return nil, nil
}
