package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
)

// cancelProbe wraps a Program so a test can cancel mid-superstep
// deterministically: the first Update call of blockStep signals entered
// and parks until release is closed, holding the job inside that
// superstep while the test cancels the context.
type cancelProbe struct {
	algo.Program
	blockStep int
	entered   chan struct{}
	release   chan struct{}
	once      sync.Once
}

func newCancelProbe(p algo.Program, step int) *cancelProbe {
	return &cancelProbe{Program: p, blockStep: step,
		entered: make(chan struct{}), release: make(chan struct{})}
}

func (p *cancelProbe) Update(ctx *algo.Context, v graph.VertexID, outdeg int, val float64, msgs []float64) (float64, bool) {
	if ctx.Step == p.blockStep {
		p.once.Do(func() {
			close(p.entered)
			<-p.release
		})
	}
	return p.Program.Update(ctx, v, outdeg, val, msgs)
}

// waitGoroutines allows the runtime a moment to reap worker and fabric
// goroutines before declaring a leak.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancel: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCancelMidSuperstep cancels a running job from another goroutine
// while a superstep is executing, for each engine over both fabrics. The
// job must return promptly with an error matching context.Canceled, leak
// no goroutines and leave no per-worker or checkpoint files behind.
func TestCancelMidSuperstep(t *testing.T) {
	g := graph.GenRMAT(600, 4200, 0.57, 0.19, 0.19, 21)
	for _, tcp := range []bool{false, true} {
		for _, e := range []Engine{Push, BPull, Hybrid} {
			fabric := "inproc"
			if tcp {
				fabric = "tcp"
			}
			t.Run(fmt.Sprintf("%s/%s", e, fabric), func(t *testing.T) {
				before := runtime.NumGoroutine()
				prog := newCancelProbe(algo.NewPageRank(0.85), 3)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				dir := filepath.Join(t.TempDir(), "job")
				errc := make(chan error, 1)
				go func() {
					_, err := RunContext(ctx, g, prog,
						Config{Workers: 3, MsgBuf: 150, MaxSteps: 8, WorkDir: dir, TCP: tcp}, e)
					errc <- err
				}()
				select {
				case <-prog.entered:
				case <-time.After(10 * time.Second):
					t.Fatal("job never reached the probed superstep")
				}
				cancel()
				close(prog.release)
				select {
				case err := <-errc:
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("RunContext error = %v, want context.Canceled", err)
					}
				case <-time.After(10 * time.Second):
					t.Fatal("job did not return within 10s of cancellation")
				}
				for _, pat := range []string{"w[0-9]*", "ckpt-*"} {
					if m, _ := filepath.Glob(filepath.Join(dir, pat)); len(m) != 0 {
						t.Fatalf("orphaned files after cancel: %v", m)
					}
				}
				waitGoroutines(t, before)
			})
		}
	}
}

// recoveryCancelProbe parks the first Update call that runs after a
// recovery began (signalled by the OnRecovery hook), holding the job
// inside the confined replay while the test cancels the context.
type recoveryCancelProbe struct {
	algo.Program
	recovering atomic.Bool
	entered    chan struct{}
	release    chan struct{}
	once       sync.Once
}

func (p *recoveryCancelProbe) Update(ctx *algo.Context, v graph.VertexID, outdeg int, val float64, msgs []float64) (float64, bool) {
	if p.recovering.Load() {
		p.once.Do(func() {
			close(p.entered)
			<-p.release
		})
	}
	return p.Program.Update(ctx, v, outdeg, val, msgs)
}

// TestCancelDuringRecovery cancels a job while it is replaying logged
// supersteps after a permanent worker loss. Recovery must notice the
// cancellation between (or inside) replay steps and surface
// context.Canceled instead of finishing the adoption silently.
func TestCancelDuringRecovery(t *testing.T) {
	g := graph.GenRMAT(600, 4200, 0.57, 0.19, 0.19, 22)
	for _, policy := range []string{"confined", "reassign"} {
		t.Run(policy, func(t *testing.T) {
			before := runtime.NumGoroutine()
			prog := &recoveryCancelProbe{Program: algo.NewPageRank(0.85),
				entered: make(chan struct{}), release: make(chan struct{})}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cfg := Config{Workers: 3, MsgBuf: 150, MaxSteps: 8, CheckpointEvery: 3,
				Recovery:   policy,
				FaultPlan:  faultplan.NewPlan(faultplan.PermanentCrash(6, 1)),
				OnRecovery: func(RecoveryNotice) { prog.recovering.Store(true) }}
			errc := make(chan error, 1)
			go func() {
				_, err := RunContext(ctx, g, prog, cfg, Push)
				errc <- err
			}()
			select {
			case <-prog.entered:
			case <-time.After(10 * time.Second):
				t.Fatal("job never reached the recovery replay")
			}
			cancel()
			close(prog.release)
			select {
			case err := <-errc:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("RunContext error = %v, want context.Canceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("job did not return within 10s of mid-recovery cancellation")
			}
			waitGoroutines(t, before)
		})
	}
}

// TestCancelBeforeStart rejects an already-cancelled context without
// doing any setup work.
func TestCancelBeforeStart(t *testing.T) {
	g := graph.GenUniform(100, 500, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, g, algo.NewPageRank(0.85),
		Config{Workers: 2, MsgBuf: 50, MaxSteps: 3}, Push)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
}

// TestDeadlineExceeded surfaces a deadline cause the same way.
func TestDeadlineExceeded(t *testing.T) {
	g := graph.GenUniform(100, 500, 13)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunContext(ctx, g, algo.NewPageRank(0.85),
		Config{Workers: 2, MsgBuf: 50, MaxSteps: 3}, Push)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext error = %v, want context.DeadlineExceeded", err)
	}
}
