package core

import (
	"errors"
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
)

// TestMultiCrashRecoveryAllPolicies injects two crashes into one WCC job
// (self-correcting, so all three policies are sound for it) and checks
// every recovery policy survives both and converges to the clean labels.
// The first crash lands before the first committed checkpoint, so the
// checkpoint policy's fallback-to-scratch path is exercised too.
func TestMultiCrashRecoveryAllPolicies(t *testing.T) {
	g := algo.Symmetrize(graph.GenChain(120, 0, 63))
	prog := algo.NewWCC()
	base := Config{Workers: 3, MsgBuf: 30, MaxSteps: 300}

	for _, e := range []Engine{Push, BPull, Hybrid} {
		clean, err := Run(g, prog, base, e)
		if err != nil {
			t.Fatal(err)
		}
		plan := faultplan.NewPlan(
			faultplan.Crash{Step: 4, Worker: 0},
			faultplan.Crash{Step: 9, Worker: 1},
		)
		for _, policy := range []string{"scratch", "resume", "checkpoint"} {
			t.Run(string(e)+"/"+policy, func(t *testing.T) {
				cfg := base
				cfg.FaultPlan = plan
				cfg.Recovery = policy
				if policy == "checkpoint" {
					cfg.CheckpointEvery = 5
				}
				res, err := Run(g, prog, cfg, e)
				if err != nil {
					t.Fatal(err)
				}
				if res.Restarts != 2 {
					t.Fatalf("Restarts = %d, want 2", res.Restarts)
				}
				for v := range clean.Values {
					if res.Values[v] != clean.Values[v] {
						t.Fatalf("vertex %d = %g after two crashes, want %g",
							v, res.Values[v], clean.Values[v])
					}
				}
				if policy == "checkpoint" {
					// Crash 1 at superstep 4 predates the first checkpoint
					// (after superstep 5): scratch fallback. Crash 2 at
					// superstep 9 restores the checkpoint.
					if res.Restores != 1 {
						t.Fatalf("Restores = %d, want 1", res.Restores)
					}
					if res.Checkpoints == 0 {
						t.Fatal("no checkpoints were committed")
					}
				}
			})
		}
	}
}

// TestCheckpointRecoveryMatchesCleanRun is the acceptance matrix: for
// PageRank, SSSP and WCC on push, b-pull and hybrid, a crash after a
// committed checkpoint must (a) recover to exactly the clean run's values,
// (b) replay strictly fewer supersteps than scratch recovery under the
// same fault plan, and (c) charge strictly less recovery time.
func TestCheckpointRecoveryMatchesCleanRun(t *testing.T) {
	g := graph.GenRMAT(400, 3200, 0.57, 0.19, 0.19, 91)
	for name, prog := range map[string]algo.Program{
		"pagerank": algo.NewPageRank(0.85),
		"sssp":     algo.NewSSSP(0),
		"wcc":      algo.NewWCC(),
	} {
		for _, e := range []Engine{Push, BPull, Hybrid} {
			t.Run(name+"/"+string(e), func(t *testing.T) {
				base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 10}
				clean, err := Run(g, prog, base, e)
				if err != nil {
					t.Fatal(err)
				}
				failAt := clean.Supersteps() - 1
				if failAt < 4 {
					failAt = 4
				}
				plan := faultplan.NewPlan(faultplan.Crash{Step: failAt, Worker: 1})

				scratch := base
				scratch.FaultPlan = plan
				scratchRes, err := Run(g, prog, scratch, e)
				if err != nil {
					t.Fatal(err)
				}

				ckpt := scratch
				ckpt.Recovery = "checkpoint"
				ckpt.CheckpointEvery = 2
				ckptRes, err := Run(g, prog, ckpt, e)
				if err != nil {
					t.Fatal(err)
				}

				if ckptRes.Restarts != 1 || ckptRes.Restores != 1 {
					t.Fatalf("Restarts = %d, Restores = %d, want 1 and 1",
						ckptRes.Restarts, ckptRes.Restores)
				}
				if ckptRes.Supersteps() != clean.Supersteps() {
					t.Fatalf("recovered run took %d supersteps, clean run %d",
						ckptRes.Supersteps(), clean.Supersteps())
				}
				for v := range clean.Values {
					if !almostEqual(ckptRes.Values[v], clean.Values[v]) {
						t.Fatalf("vertex %d = %g after checkpoint recovery, want %g",
							v, ckptRes.Values[v], clean.Values[v])
					}
					if !almostEqual(scratchRes.Values[v], clean.Values[v]) {
						t.Fatalf("vertex %d = %g after scratch recovery, want %g",
							v, scratchRes.Values[v], clean.Values[v])
					}
				}
				if ckptRes.ReplayedSupersteps >= scratchRes.ReplayedSupersteps {
					t.Fatalf("checkpoint replayed %d supersteps, scratch %d; restoring should replay strictly fewer",
						ckptRes.ReplayedSupersteps, scratchRes.ReplayedSupersteps)
				}
				if ckptRes.RecoverySimSeconds >= scratchRes.RecoverySimSeconds {
					t.Fatalf("checkpoint recovery cost %.4fs, scratch %.4fs; restoring should be strictly cheaper",
						ckptRes.RecoverySimSeconds, scratchRes.RecoverySimSeconds)
				}
			})
		}
	}
}

// TestCheckpointAccounting checks the checkpoint overhead is charged
// honestly: bytes run through the disk cost model as sequential writes and
// the resulting seconds are folded into the job's total SimSeconds.
func TestCheckpointAccounting(t *testing.T) {
	g := graph.GenRMAT(400, 3200, 0.57, 0.19, 0.19, 92)
	cfg := Config{Workers: 3, MsgBuf: 100, MaxSteps: 9, Recovery: "checkpoint", CheckpointEvery: 3}
	res, err := Run(g, algo.NewPageRank(0.85), cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoints land after supersteps 3 and 6; the superstep-9 interval
	// coincides with the halt, where a checkpoint would be wasted I/O.
	if res.Checkpoints != 2 {
		t.Fatalf("Checkpoints = %d, want 2 (after supersteps 3 and 6)", res.Checkpoints)
	}
	if res.CheckpointIO.Bytes[diskio.SeqWrite] == 0 {
		t.Fatal("checkpoint bytes were not charged as sequential writes")
	}
	if res.CheckpointSimSeconds <= 0 {
		t.Fatal("checkpoint overhead should cost simulated time")
	}
	var stepSim float64
	for _, s := range res.Steps {
		stepSim += s.SimSeconds
	}
	if res.SimSeconds < stepSim+res.CheckpointSimSeconds {
		t.Fatalf("SimSeconds = %g does not include the %g of checkpoint overhead",
			res.SimSeconds, res.CheckpointSimSeconds)
	}

	// The same job without faults must produce identical values with
	// checkpointing on: snapshotting is observation, not interference.
	plain := cfg
	plain.Recovery = ""
	plain.CheckpointEvery = 0
	want, err := Run(g, algo.NewPageRank(0.85), plain, Push)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Values {
		if !almostEqual(res.Values[v], want.Values[v]) {
			t.Fatalf("vertex %d = %g with checkpointing, %g without", v, res.Values[v], want.Values[v])
		}
	}
}

// TestInjectedFailureIsTyped pins the satellite contract: the injected
// crash surfaces as a typed error matched by errors.Is, carrying the
// superstep and worker, and never escapes Run (recovery absorbs it).
func TestInjectedFailureIsTyped(t *testing.T) {
	err := error(&InjectedFailure{Step: 7, Worker: 2})
	if !errors.Is(err, ErrInjectedFailure) {
		t.Fatal("InjectedFailure should match ErrInjectedFailure via errors.Is")
	}
	if got := err.Error(); got == "" {
		t.Fatal("empty error string")
	}
}
