package core

import (
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/graph"
)

func TestConvergingPageRankHaltsByAggregate(t *testing.T) {
	g := graph.GenUniform(400, 4800, 61)
	fixed := algo.NewPageRank(0.85)
	conv := algo.NewConvergingPageRank(0.85, 1e-4)
	cfg := Config{Workers: 3, MsgBuf: 100, MaxSteps: 60}

	for _, e := range []Engine{Push, BPull, Hybrid, Pull} {
		t.Run(string(e), func(t *testing.T) {
			cfgE := cfg
			if e == Pull {
				cfgE.VertexCache = 0
			}
			res, err := Run(g, conv, cfgE, e)
			if err != nil {
				t.Fatal(err)
			}
			if res.Supersteps() >= cfg.MaxSteps {
				t.Fatalf("never converged: %d supersteps", res.Supersteps())
			}
			last := res.Steps[len(res.Steps)-1]
			if last.Aggregate >= 1e-4 {
				t.Fatalf("halted with aggregate %g >= epsilon", last.Aggregate)
			}
			// The delta series is (eventually) decreasing for PageRank.
			if len(res.Steps) > 4 {
				a, b := res.Steps[2].Aggregate, last.Aggregate
				if !(b < a) {
					t.Fatalf("delta did not shrink: step3 %g vs last %g", a, b)
				}
			}
			// Converged ranks agree with a long fixed run.
			long, err := Run(g, fixed, Config{Workers: 3, MsgBuf: 100, MaxSteps: 60}, e)
			if err != nil {
				t.Fatal(err)
			}
			for v := range long.Values {
				if d := res.Values[v] - long.Values[v]; d > 1e-3 || d < -1e-3 {
					t.Fatalf("vertex %d: converged %g vs long-run %g", v, res.Values[v], long.Values[v])
				}
			}
		})
	}
}

func TestWCCFindsComponents(t *testing.T) {
	// Three disjoint cliques plus isolated vertices.
	b := graph.NewBuilder(35)
	addClique := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := lo; j < hi; j++ {
				if i != j {
					b.AddEdge(graph.VertexID(i), graph.VertexID(j), 1)
				}
			}
		}
	}
	addClique(0, 10)
	addClique(10, 25)
	addClique(25, 30)
	g := algo.Symmetrize(b.Build())

	for _, e := range []Engine{Push, PushM, BPull, Hybrid} {
		res, err := Run(g, algo.NewWCC(), Config{Workers: 3, MsgBuf: 20, MaxSteps: 40}, e)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		want := func(v int) float64 {
			switch {
			case v < 10:
				return 0
			case v < 25:
				return 10
			case v < 30:
				return 25
			default:
				return float64(v) // isolated vertices keep their own label
			}
		}
		for v := 0; v < 35; v++ {
			if res.Values[v] != want(v) {
				t.Fatalf("%s: component of %d = %g, want %g", e, v, res.Values[v], want(v))
			}
		}
	}
}

func TestWCCOnGeneratedGraphMatchesUnionFind(t *testing.T) {
	g := algo.Symmetrize(graph.GenUniform(300, 400, 62)) // sparse: many components
	res, err := Run(g, algo.NewWCC(), Config{Workers: 3, MsgBuf: 50, MaxSteps: 80}, BPull)
	if err != nil {
		t.Fatal(err)
	}
	// Union-find oracle.
	parent := make([]int, g.NumVertices)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for v := 0; v < g.NumVertices; v++ {
		for _, h := range g.OutEdges(graph.VertexID(v)) {
			a, b := find(v), find(int(h.Dst))
			if a != b {
				parent[a] = b
			}
		}
	}
	// Same component ⇔ same label.
	for u := 0; u < g.NumVertices; u++ {
		for v := u + 1; v < g.NumVertices; v++ {
			same := find(u) == find(v)
			got := res.Values[u] == res.Values[v]
			if same != got {
				t.Fatalf("vertices %d,%d: union-find same=%v, labels %g/%g",
					u, v, same, res.Values[u], res.Values[v])
			}
		}
	}
}
