package core

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"hybridgraph/internal/adjstore"
	"hybridgraph/internal/algo"
	"hybridgraph/internal/bitset"
	"hybridgraph/internal/comm"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/metrics"
	"hybridgraph/internal/msglog"
	"hybridgraph/internal/msgstore"
	"hybridgraph/internal/veblock"
	"hybridgraph/internal/vertexfile"
)

// inbox unifies the plain spilling Inbox with MOCgraph's OnlineInbox.
type inbox interface {
	Add(m comm.Msg) error
	Drain() (map[graph.VertexID][]float64, error)
	Spilled() int64
	MaxMemBytes() int64
	Received() int64
	// Pending lists buffered messages without resetting (checkpointing).
	Pending() ([]comm.Msg, error)
}

// worker is one computational node: a vertex partition, its disk stores,
// flag vectors and per-superstep accumulators. Workers execute supersteps
// as goroutines and exchange traffic through the job's fabric.
type worker struct {
	id   int
	job  *job
	part graph.Partition
	ct   *diskio.Counter // computation-phase I/O
	dir  string

	vstore *vertexfile.Store
	adj    *adjstore.Store // forward adjacency (push/pushM/hybrid; pull scatter)
	mirror *adjstore.Store // pull: in-edges of every vertex whose source is local
	ve     *veblock.Store  // b-pull/hybrid Eblocks

	respond [2]*bitset.Set // responding-flag vectors by superstep parity
	// blockRes is the per-local-Vblock X_j.res flag by parity. Elements are
	// atomic because the parallel update scan's shards may set flags for
	// the same Vblock concurrently; readers on the other parity (pull
	// serving, cost estimation) see distinct allocations, and same-parity
	// reads happen after the superstep barrier.
	blockRes [2][]atomic.Bool
	active   [2]*bitset.Set // pull baseline activation flags by parity

	inboxes [2]inbox                // push receive buffers by parity
	hot     map[graph.VertexID]bool // pushM hot vertex set

	vcache *pullCache // pull baseline's resident vertex set

	// Confined recovery (Recovery: "confined"): every outgoing push packet
	// and served pull response is appended to mlog so survivors can serve
	// a failed worker's replay without recomputing. Log writes are charged
	// to logCt, kept apart from ct so Q^t inputs and the trace-vs-stats
	// cross-check see pure Eq. (7)/(8) traffic; the per-step delta
	// surfaces as StepStats.LogIO. sendLog wraps the job fabric with the
	// append-before-send hook; nil when the policy is off.
	mlog    *msglog.Log
	logCt   *diskio.Counter
	sendLog comm.Fabric

	// scanPages tracks which vertex-file pages this superstep's
	// Pull-Respond scans have already pulled in: the value columns of the
	// worker's Vblocks are small and stay OS-cached for the duration of a
	// superstep, so only the first touch of each page transfers (the
	// block-locality VE-BLOCK is designed to create). Reset per superstep
	// because the columns are rewritten.
	scanMu    sync.Mutex
	scanPages vertexfile.PageSet

	mu   sync.Mutex // guards stat: RespondPull/Gather run on requester goroutines
	stat workerStat
}

// workerStat accumulates one superstep's activity on one worker.
type workerStat struct {
	produced   int64 // messages generated before concat/combine
	mcoBytes   int64 // network bytes saved by concat/combine
	updated    int64
	responding int64
	msgsInMem  int64 // messages held in memory at the receive side
	requests   int64
	cpu        metrics.CPUWork
	parts      metrics.IOBreakdown
	memBytes   int64 // peak buffer memory this superstep

	// Hybrid prediction inputs gathered while running the other mode.
	estEt       int64 // adjacency bytes push would read
	estEbar     int64 // Eblock edge bytes b-pull would read
	estFt       int64 // fragment aux bytes b-pull would read
	estVrr      int64 // svertex bytes b-pull would random-read
	estM        int64 // messages the superstep produced (for M_disk estimate)
	blockedTime float64

	agg    float64 // reduced aggregator contributions (Aggregating programs)
	aggSet bool
}

// reduceAgg folds one contribution into the worker's aggregate under the
// program's reducer. Callers hold w.mu via addStat.
func (s *workerStat) reduceAgg(prog algo.Program, c float64) {
	ag, ok := prog.(algo.Aggregating)
	if !ok {
		return
	}
	if !s.aggSet {
		s.agg, s.aggSet = c, true
		return
	}
	s.agg = ag.Reduce(s.agg, c)
}

func (w *worker) resetStat() {
	w.mu.Lock()
	w.stat = workerStat{}
	w.mu.Unlock()
}

// addIOPart accumulates into the superstep I/O breakdown under the lock.
func (w *worker) addStat(f func(*workerStat)) {
	w.mu.Lock()
	f(&w.stat)
	w.mu.Unlock()
}

// owner maps a vertex to its worker.
func (w *worker) owner(v graph.VertexID) int { return graph.OwnerOf(w.job.parts, v) }

// fab is the fabric this worker's superstep code sends through: the
// replay fabric while the job is replaying a failed worker, the logging
// wrapper under the confined policy, or the job's fabric directly. The
// replay fabric is installed and removed between supersteps (never while
// worker goroutines run), so the read is race-free.
func (w *worker) fab() comm.Fabric {
	if rf := w.job.replayFab; rf != nil {
		return rf
	}
	if w.sendLog != nil {
		return w.sendLog
	}
	return w.job.fabric
}

// localIdx converts a vertex id into the worker-local flag index.
func (w *worker) localIdx(v graph.VertexID) int { return int(v - w.part.Lo) }

// buildVertexStore writes the initial vertex records.
func (w *worker) buildVertexStore(g *graph.Graph) error {
	recs := make([]vertexfile.Record, w.part.Len())
	for i := range recs {
		v := w.part.Lo + graph.VertexID(i)
		recs[i] = vertexfile.Record{ID: v, OutDeg: uint32(g.OutDegree(v))}
	}
	if w.job.cfg.VerticesInMemory {
		w.vstore = vertexfile.CreateMem(w.part.Lo, recs)
		return nil
	}
	vs, err := vertexfile.Create(filepath.Join(w.dir, "vertices.dat"), w.job.loadCt(w.id), w.part.Lo, recs)
	if err != nil {
		return err
	}
	w.vstore = vs
	return nil
}

func (w *worker) buildAdj(g *graph.Graph) error {
	if w.adj != nil {
		return nil
	}
	if src := w.job.cfg.Stores; src != nil {
		a, err := src.OpenAdj(w.id, w.job.loadCt(w.id), g, w.part)
		if err != nil {
			return err
		}
		w.adj = a
		w.job.layoutReusedBytes += a.SizeBytes()
		return nil
	}
	if w.job.cfg.EdgesInMemory {
		w.adj = adjstore.BuildMem(g, w.part)
		return nil
	}
	a, err := adjstore.Build(filepath.Join(w.dir, "adj.dat"), w.job.loadCt(w.id), g, w.part, w.job.cdc)
	if err != nil {
		return err
	}
	w.adj = a
	return nil
}

// buildMirror builds the pull baseline's mirror store: for every vertex in
// the whole graph, the in-edges whose source lives on this worker
// (vertex-cut: an edge is placed with its source).
func (w *worker) buildMirror(g *graph.Graph) error {
	sub := graph.NewBuilder(g.NumVertices)
	for u := w.part.Lo; u < w.part.Hi; u++ {
		for _, h := range g.OutEdges(u) {
			// Reversed: mirror lists are keyed by destination vertex.
			sub.AddEdge(h.Dst, u, h.Weight)
		}
	}
	mg := sub.Build()
	full := graph.Partition{Lo: 0, Hi: graph.VertexID(g.NumVertices)}
	if w.job.cfg.EdgesInMemory {
		w.mirror = adjstore.BuildMem(mg, full)
		return nil
	}
	m, err := adjstore.Build(filepath.Join(w.dir, "mirror.dat"), w.job.loadCt(w.id), mg, full, w.job.cdc)
	if err != nil {
		return err
	}
	w.mirror = m
	return nil
}

func (w *worker) buildVE(g *graph.Graph) error {
	if w.ve != nil {
		return nil
	}
	if src := w.job.cfg.Stores; src != nil {
		ve, err := src.OpenVE(w.id, w.job.loadCt(w.id), g, w.job.layout)
		if err != nil {
			return err
		}
		w.ve = ve
		w.job.layoutReusedBytes += ve.SizeBytes()
		return nil
	}
	if w.job.cfg.EdgesInMemory {
		ve, err := veblock.BuildMem(g, w.job.layout, w.id)
		if err != nil {
			return err
		}
		w.ve = ve
		return nil
	}
	ve, err := veblock.Build(filepath.Join(w.dir, "veblock.dat"), w.job.loadCt(w.id), g, w.job.layout, w.id, w.job.cdc)
	if err != nil {
		return err
	}
	w.ve = ve
	return nil
}

func (w *worker) initFlags() {
	n := w.part.Len()
	for p := 0; p < 2; p++ {
		w.respond[p] = bitset.New(n)
		w.active[p] = bitset.New(n)
	}
	if w.ve != nil {
		for p := 0; p < 2; p++ {
			w.blockRes[p] = make([]atomic.Bool, w.ve.LocalBlocks())
		}
	}
}

func (w *worker) initInboxes() {
	for p := 0; p < 2; p++ {
		capacity := w.effMsgBuf()
		if w.hot != nil && capacity > 0 {
			// pushM spends the buffer on hot vertices; messages for cold
			// (disk-resident) vertices go straight to disk.
			capacity = -1
		}
		base := msgstore.NewInbox(filepath.Join(w.dir, fmt.Sprintf("spill%d.dat", p)),
			w.ct, capacity, w.job.cdc)
		if w.hot != nil {
			online := msgstore.NewOnlineInbox(base, w.hot, w.job.prog.Combiner())
			online.SetMetrics(w.job.cfg.Metrics)
			w.inboxes[p] = online
		} else {
			base.SetMetrics(w.job.cfg.Metrics)
			w.inboxes[p] = base
		}
	}
}

// effMsgBuf reports the worker's message-buffer capacity (0 = unlimited).
func (w *worker) effMsgBuf() int {
	if w.job.cfg.InMemory {
		return 0
	}
	return w.job.cfg.MsgBuf
}

// pickHotSet selects pushM's in-memory vertices: the B_i highest in-degree
// vertices of the partition (MOCgraph's hot-aware placement).
func (w *worker) pickHotSet(g *graph.Graph, capacity int) {
	if capacity <= 0 || capacity >= w.part.Len() {
		// Unlimited buffer: everything is hot.
		w.hot = make(map[graph.VertexID]bool, w.part.Len())
		for v := w.part.Lo; v < w.part.Hi; v++ {
			w.hot[v] = true
		}
		return
	}
	indeg := make([]int32, w.part.Len())
	for u := 0; u < g.NumVertices; u++ {
		for _, h := range g.OutEdges(graph.VertexID(u)) {
			if w.part.Contains(h.Dst) {
				indeg[h.Dst-w.part.Lo]++
			}
		}
	}
	type vd struct {
		v graph.VertexID
		d int32
	}
	all := make([]vd, w.part.Len())
	for i := range all {
		all[i] = vd{w.part.Lo + graph.VertexID(i), indeg[i]}
	}
	// Partial selection: simple sort is fine at our scales; ties break by
	// id for determinism.
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d > all[j].d
		}
		return all[i].v < all[j].v
	})
	w.hot = make(map[graph.VertexID]bool, capacity)
	for i := 0; i < capacity && i < len(all); i++ {
		w.hot[all[i].v] = true
	}
}

// parity helpers: at superstep t, flags written go to parity t%2, flags
// read (set at t-1) come from parity (t-1)%2.
func writeParity(t int) int { return t & 1 }
func readParity(t int) int  { return (t - 1) & 1 }

// msgValueFor computes one edge's message from the broadcast value,
// honouring targeted senders (Pregel's SendMessageTo): keep=false
// suppresses the message on this edge.
func (w *worker) msgValueFor(bcast float64, dst graph.VertexID, weight float32) (float64, bool) {
	if ts, ok := w.job.prog.(algo.TargetedSender); ok {
		return ts.MsgValueTo(bcast, dst, weight)
	}
	return w.job.prog.MsgValue(bcast, weight), true
}

// bcastFor computes the broadcast value a responding vertex stores,
// honouring stateful bcasters that need the vertex id and messages.
func (w *worker) bcastFor(ctx *algo.Context, v graph.VertexID, val float64, outdeg int, msgs []float64) float64 {
	if sb, ok := w.job.prog.(algo.StatefulBcaster); ok {
		return sb.BcastFrom(ctx, v, val, msgs)
	}
	return w.job.prog.Bcast(val, outdeg)
}

// updateHook runs for each vertex whose update executed, after its record
// is staged — push hangs its pushRes() (edge read + message staging) here,
// hybrid its cost estimators.
type updateHook func(v graph.VertexID, rec *vertexfile.Record, responded bool) error

// updateBlock runs update()/Init over vertices [lo,hi) with the delivered
// messages, maintaining values, broadcast columns and responding flags.
// Message slices are the concatenated per-vertex lists; combinable
// programs may see them pre-combined — update() is agnostic.
//
// The scan is sharded across cfg.Parallelism goroutines. Shards are
// contiguous runs of whole 4 KB chunks on a grid anchored at lo, so the
// ReadRange/WriteRange call sequence — and with it every Eq. (7)/(8)
// Vt charge and disk op count — is the sequential scan's sequence merely
// reordered, never re-split. hookFor, when non-nil, is called once per
// shard in ascending shard order before the scan starts and returns that
// shard's per-vertex hook (which may be nil); because shards cover
// disjoint ascending vertex ranges, replaying per-shard staged state in
// shard order afterwards reproduces the sequential visit order exactly.
// Aggregator contributions reduce within each chunk as before and the
// per-chunk partials fold in ascending chunk order after the shards join,
// so float non-associativity cannot perturb the aggregate either.
func (w *worker) updateBlock(t int, lo, hi graph.VertexID, msgs map[graph.VertexID][]float64,
	hookFor func(shard, shards int) updateHook) error {

	if hi <= lo {
		return nil
	}
	prog := w.job.prog
	ctx := w.job.ctx(t)
	wp := writeParity(t)
	style := prog.Style()
	aggProg, aggregating := prog.(algo.Aggregating)

	const chunk = 4096
	nChunks := (int(hi-lo) + chunk - 1) / chunk
	shards := w.job.cfg.Parallelism
	if shards < 1 {
		shards = 1
	}
	if shards > nChunks {
		shards = nChunks
	}

	hooks := make([]updateHook, shards)
	if hookFor != nil {
		for s := 0; s < shards; s++ {
			hooks[s] = hookFor(s, shards)
		}
	}

	// Per-chunk aggregator partials, folded in chunk order after the join.
	var aggVals []float64
	var aggSets []bool
	if aggregating {
		aggVals = make([]float64, nChunks)
		aggSets = make([]bool, nChunks)
	}

	scan := func(shard int) error {
		cLo := shard * nChunks / shards
		cHi := (shard + 1) * nChunks / shards
		hook := hooks[shard]
		recs := make([]vertexfile.Record, 0, chunk)
		for c := cLo; c < cHi; c++ {
			clo := lo + graph.VertexID(c*chunk)
			chi := clo + chunk
			if chi > hi {
				chi = hi
			}
			recs = recs[:int(chi-clo)]
			if err := w.vstore.ReadRange(clo, chi, recs); err != nil {
				return err
			}
			var vt int64
			if !w.job.cfg.VerticesInMemory {
				vt = int64(len(recs)) * vertexfile.RecordSize * 2 // read + write back
			}
			var updated, responding int64
			var msgCount int64
			var agg float64
			aggAny := false
			for i := range recs {
				rec := &recs[i]
				v := rec.ID
				mv := msgs[v]
				msgCount += int64(len(mv))
				var respond bool
				switch {
				case t == 1 && w.job.resuming:
					// Lightweight recovery: values survived the failure; every
					// vertex re-announces its current value so neighbours can
					// rebuild their state (sound for self-correcting programs).
					respond = true
					updated++
				case t == 1:
					rec.Val, respond = prog.Init(ctx, v, int(rec.OutDeg))
					updated++
				case len(mv) > 0 || style != algo.Traversal:
					before := rec.Val
					rec.Val, respond = prog.Update(ctx, v, int(rec.OutDeg), rec.Val, mv)
					updated++
					if aggregating {
						c := aggProg.Contribute(before, rec.Val)
						if !aggAny {
							agg, aggAny = c, true
						} else {
							agg = aggProg.Reduce(agg, c)
						}
					}
				default:
					continue
				}
				if respond {
					rec.Bcast[wp] = w.bcastFor(ctx, v, rec.Val, int(rec.OutDeg), mv)
					w.respond[wp].SetAtomic(w.localIdx(v))
					if w.blockRes[wp] != nil {
						if b := w.job.layout.BlockOf(v); b >= 0 {
							w.blockRes[wp][b-w.ve.FirstBlock()].Store(true)
						}
					}
					responding++
				}
				if hook != nil {
					if err := hook(v, rec, respond); err != nil {
						return err
					}
				}
			}
			if err := w.vstore.WriteRange(clo, chi, recs); err != nil {
				return err
			}
			if aggAny {
				aggVals[c], aggSets[c] = agg, true
			}
			w.addStat(func(s *workerStat) {
				s.updated += updated
				s.responding += responding
				s.parts.Vt += vt
				s.cpu.Updates += updated
				s.cpu.Messages += msgCount
			})
		}
		return nil
	}

	var err error
	if shards == 1 {
		err = scan(0)
	} else {
		err = parallelDo(shards, scan)
	}
	if aggregating {
		for c := 0; c < nChunks; c++ {
			if aggSets[c] {
				partial := aggVals[c]
				w.addStat(func(s *workerStat) { s.reduceAgg(prog, partial) })
			}
		}
	}
	return err
}

// clearStepFlags resets the write-parity flag structures before a
// superstep writes them, and drops the pull baseline's stale cached
// broadcast values (they were written at a different parity).
func (w *worker) clearStepFlags(t int) {
	wp := writeParity(t)
	w.respond[wp].Reset()
	w.active[wp].Reset()
	if w.blockRes[wp] != nil {
		for i := range w.blockRes[wp] {
			w.blockRes[wp][i].Store(false)
		}
	}
	w.scanMu.Lock()
	w.scanPages = make(vertexfile.PageSet)
	w.scanMu.Unlock()
}

// close releases all stores.
func (w *worker) close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if w.vstore != nil {
		keep(w.vstore.Close())
	}
	if w.adj != nil {
		keep(w.adj.Close())
	}
	if w.mirror != nil {
		keep(w.mirror.Close())
	}
	if w.ve != nil {
		keep(w.ve.Close())
	}
	if w.mlog != nil {
		keep(w.mlog.Close())
	}
	return first
}
