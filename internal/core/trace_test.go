package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/graph"
	"hybridgraph/internal/obs"
)

// parsedTrace is one decoded journal, events bucketed by type.
type parsedTrace struct {
	jobStart, jobEnd []obs.JobEvent
	workerSteps      []obs.WorkerStepEvent
	steps            []obs.StepEvent
	switches         []obs.ModeSwitchEvent
	checkpoints      []obs.CheckpointEvent
	restores         []obs.CheckpointEvent
	faults           []obs.FaultEvent
	recoveries       []obs.RecoveryEvent
	restoreFailed    []obs.RestoreFailedEvent
	replaySteps      []obs.ReplayStepEvent
	replayServes     []obs.ReplayServeEvent
	pruneFailed      []obs.PruneFailedEvent
	catalogs         []obs.CatalogEvent
	scheduler        []obs.SchedulerEvent
	reassigns        []obs.ReassignEvent
	adoptBlocks      []obs.AdoptBlockEvent
	codecs           []obs.CodecEvent
}

func parseTrace(t *testing.T, data []byte) *parsedTrace {
	t.Helper()
	p := &parsedTrace{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &head); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		switch head.Type {
		case obs.EventJobStart, obs.EventJobEnd:
			var ev obs.JobEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			if head.Type == obs.EventJobStart {
				p.jobStart = append(p.jobStart, ev)
			} else {
				p.jobEnd = append(p.jobEnd, ev)
			}
		case obs.EventWorkerStep:
			var ev obs.WorkerStepEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.workerSteps = append(p.workerSteps, ev)
		case obs.EventStep:
			var ev obs.StepEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.steps = append(p.steps, ev)
		case obs.EventModeSwitch:
			var ev obs.ModeSwitchEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.switches = append(p.switches, ev)
		case obs.EventCheckpoint, obs.EventRestore:
			var ev obs.CheckpointEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			if head.Type == obs.EventCheckpoint {
				p.checkpoints = append(p.checkpoints, ev)
			} else {
				p.restores = append(p.restores, ev)
			}
		case obs.EventFault:
			var ev obs.FaultEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.faults = append(p.faults, ev)
		case obs.EventRecovery:
			var ev obs.RecoveryEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.recoveries = append(p.recoveries, ev)
		case obs.EventRestoreFailed:
			var ev obs.RestoreFailedEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.restoreFailed = append(p.restoreFailed, ev)
		case obs.EventReplayStep:
			var ev obs.ReplayStepEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.replaySteps = append(p.replaySteps, ev)
		case obs.EventReplayServe:
			var ev obs.ReplayServeEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.replayServes = append(p.replayServes, ev)
		case obs.EventPruneFailed:
			var ev obs.PruneFailedEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.pruneFailed = append(p.pruneFailed, ev)
		case obs.EventCatalog:
			var ev obs.CatalogEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.catalogs = append(p.catalogs, ev)
		case obs.EventReassign:
			var ev obs.ReassignEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.reassigns = append(p.reassigns, ev)
		case obs.EventAdoptBlock:
			var ev obs.AdoptBlockEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.adoptBlocks = append(p.adoptBlocks, ev)
		case obs.EventCompress, obs.EventDecompress:
			var ev obs.CodecEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.codecs = append(p.codecs, ev)
		case obs.EventJobQueued, obs.EventJobCancelled:
			var ev obs.SchedulerEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			p.scheduler = append(p.scheduler, ev)
		default:
			t.Fatalf("unknown event type %q", head.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTraceMatchesStepStats is the accounting cross-check the observability
// layer is built around: summing a superstep's per-worker journal events
// must reproduce the aggregated StepStats exactly — same byte counters,
// same I/O breakdown, same network totals. Run under hybrid with a tight
// buffer so both push (spilling) and b-pull supersteps appear.
func TestTraceMatchesStepStats(t *testing.T) {
	g := graph.GenRMAT(600, 4200, 0.57, 0.19, 0.19, 21)
	progs := []algo.Program{algo.NewPageRank(0.85), algo.NewSSSP(0)}
	// Push guarantees spilling supersteps under the tight buffer; hybrid
	// exercises the mode schedule and switch events.
	for _, engine := range []Engine{Hybrid, Push} {
		for _, prog := range progs {
			engine, prog := engine, prog
			t.Run(prog.Name()+"/"+string(engine), func(t *testing.T) {
				checkTracedRun(t, g, prog, engine)
			})
		}
	}
}

func checkTracedRun(t *testing.T, g *graph.Graph, prog algo.Program, engine Engine) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	cfg := Config{Workers: 4, MsgBuf: 150, MaxSteps: 8,
		TraceWriter: &buf, Metrics: reg}
	res, err := Run(g, prog, cfg, engine)
	if err != nil {
		t.Fatal(err)
	}
	p := parseTrace(t, buf.Bytes())

	if len(p.jobStart) != 1 || len(p.jobEnd) != 1 {
		t.Fatalf("job_start=%d job_end=%d, want 1 each", len(p.jobStart), len(p.jobEnd))
	}
	start, end := p.jobStart[0], p.jobEnd[0]
	if start.Engine != string(engine) || start.Algorithm != prog.Name() ||
		start.Workers != 4 || start.Vertices != g.NumVertices {
		t.Fatalf("job_start = %+v", start)
	}
	if end.Steps != len(res.Steps) || end.NetBytes != res.NetBytes ||
		end.IOBytes != res.IO.Total() || end.Restarts != res.Restarts {
		t.Fatalf("job_end = %+v, result steps=%d net=%d io=%d",
			end, len(res.Steps), res.NetBytes, res.IO.Total())
	}

	if len(p.steps) != len(res.Steps) {
		t.Fatalf("%d step events for %d recorded supersteps", len(p.steps), len(res.Steps))
	}
	byStep := map[int][]obs.WorkerStepEvent{}
	for _, ev := range p.workerSteps {
		byStep[ev.Step] = append(byStep[ev.Step], ev)
	}
	spilledTotal := int64(0)
	for i, st := range res.Steps {
		evs := byStep[st.Step]
		if len(evs) != cfg.Workers {
			t.Fatalf("step %d: %d worker events, want %d", st.Step, len(evs), cfg.Workers)
		}
		var sum obs.WorkerStepEvent
		var memMax int64
		for _, ev := range evs {
			if ev.Mode != st.Mode {
				t.Fatalf("step %d: worker %d mode %q, step mode %q", st.Step, ev.Worker, ev.Mode, st.Mode)
			}
			sum.Updated += ev.Updated
			sum.Responding += ev.Responding
			sum.Produced += ev.Produced
			sum.Requests += ev.Requests
			sum.Spilled += ev.Spilled
			sum.NetIn += ev.NetIn
			sum.NetOut += ev.NetOut
			sum.IO = sum.IO.Add(ev.IO)
			addBreakdown(&sum.Parts, ev.Parts)
			if ev.MemBytes > memMax {
				memMax = ev.MemBytes
			}
		}
		if sum.Updated != st.Updated || sum.Responding != st.Responding ||
			sum.Produced != st.Produced || sum.Requests != st.Requests ||
			sum.Spilled != st.Spilled {
			t.Fatalf("step %d: worker sums %+v != stats %+v", st.Step, sum, st)
		}
		if sum.NetOut != st.NetBytes {
			t.Fatalf("step %d: sum NetOut %d != StepStats.NetBytes %d", st.Step, sum.NetOut, st.NetBytes)
		}
		// Every sent byte is received by some worker (loopback traffic is
		// not accounted, so in == out cluster-wide).
		if sum.NetIn != sum.NetOut {
			t.Fatalf("step %d: NetIn sum %d != NetOut sum %d", st.Step, sum.NetIn, sum.NetOut)
		}
		if sum.IO != st.IO {
			t.Fatalf("step %d: IO sum %+v != stats %+v", st.Step, sum.IO, st.IO)
		}
		if sum.Parts != st.Parts {
			t.Fatalf("step %d: Parts sum %+v != stats %+v", st.Step, sum.Parts, st.Parts)
		}
		if memMax != st.MemBytes {
			t.Fatalf("step %d: MemBytes max %d != stats %d", st.Step, memMax, st.MemBytes)
		}
		spilledTotal += st.Spilled

		// The step summary event must carry the recorded stats verbatim
		// (ints are exact; Go's JSON float encoding round-trips).
		se := p.steps[i].Stats
		if se.Step != st.Step || se.Mode != st.Mode || se.Produced != st.Produced ||
			se.NetBytes != st.NetBytes || se.Spilled != st.Spilled ||
			se.IO != st.IO || se.Parts != st.Parts || se.MemBytes != st.MemBytes ||
			se.Qt != st.Qt || se.SwitchedFrom != st.SwitchedFrom {
			t.Fatalf("step %d: StepEvent stats %+v != recorded %+v", st.Step, se, st)
		}
	}
	if engine == Push && spilledTotal == 0 {
		t.Fatal("expected spills under MsgBuf=150; cross-check never exercised MdiskW")
	}

	// Mode switch events must match the SwitchedFrom markers.
	switched := 0
	for _, st := range res.Steps {
		if st.SwitchedFrom != "" {
			switched++
		}
	}
	if len(p.switches) != switched {
		t.Fatalf("%d mode_switch events, %d SwitchedFrom steps", len(p.switches), switched)
	}

	// Registry totals mirror the journal.
	snap := reg.Snapshot()
	if snap["core.supersteps"] != int64(len(res.Steps)) {
		t.Fatalf("core.supersteps = %d, want %d", snap["core.supersteps"], len(res.Steps))
	}
	if snap["core.net_bytes"] != res.NetBytes {
		t.Fatalf("core.net_bytes = %d, want %d", snap["core.net_bytes"], res.NetBytes)
	}
	if snap["core.io_bytes"] != res.IO.Total() {
		t.Fatalf("core.io_bytes = %d, want %d", snap["core.io_bytes"], res.IO.Total())
	}
	if snap["core.spilled_msgs"] != spilledTotal {
		t.Fatalf("core.spilled_msgs = %d, want %d", snap["core.spilled_msgs"], spilledTotal)
	}
	if snap["comm.net_bytes"] != res.NetBytes {
		t.Fatalf("comm.net_bytes = %d, want %d", snap["comm.net_bytes"], res.NetBytes)
	}
}

// TestTraceFaultEvents runs a checkpointed job with an injected crash and
// checks the journal records the whole fault story: checkpoint commits
// matching JobResult.Checkpoints, the fault at the scheduled superstep,
// the recovery, and the restore from the last committed checkpoint.
func TestTraceFaultEvents(t *testing.T) {
	g := graph.GenRMAT(400, 2800, 0.57, 0.19, 0.19, 11)
	var buf bytes.Buffer
	cfg := Config{Workers: 3, MsgBuf: 120, MaxSteps: 6,
		Recovery: "checkpoint", CheckpointEvery: 2,
		FailStep: 5, FailWorker: 1,
		TraceWriter: &buf}
	res, err := Run(g, algo.NewPageRank(0.85), cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	p := parseTrace(t, buf.Bytes())

	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", res.Restarts)
	}
	if len(p.faults) != 1 || p.faults[0].Step != 5 || p.faults[0].Worker != 1 {
		t.Fatalf("fault events = %+v, want one at step 5 worker 1", p.faults)
	}
	if len(p.recoveries) != 1 {
		t.Fatalf("recovery events = %+v, want 1", p.recoveries)
	}
	rec := p.recoveries[0]
	if rec.Policy != "checkpoint" || !rec.Restored {
		t.Fatalf("recovery = %+v, want restored checkpoint recovery", rec)
	}
	if len(p.checkpoints) != res.Checkpoints {
		t.Fatalf("%d checkpoint events, JobResult.Checkpoints = %d", len(p.checkpoints), res.Checkpoints)
	}
	if len(p.restores) != res.Restores {
		t.Fatalf("%d restore events, JobResult.Restores = %d", len(p.restores), res.Restores)
	}
	if res.Restores < 1 {
		t.Fatalf("Restores = %d, want >= 1", res.Restores)
	}
	for _, ce := range p.checkpoints {
		if ce.Workers != cfg.Workers || ce.Bytes <= 0 {
			t.Fatalf("checkpoint event = %+v", ce)
		}
	}
	if end := p.jobEnd[0]; end.Restarts != 1 {
		t.Fatalf("job_end restarts = %d, want 1", end.Restarts)
	}
}

// TestTraceDirAutoNames checks the harness-facing export path: TraceDir
// yields one journal per job, named after the algorithm and engine.
func TestTraceDirAutoNames(t *testing.T) {
	g := graph.GenRMAT(300, 2000, 0.57, 0.19, 0.19, 7)
	dir := t.TempDir()
	cfg := Config{Workers: 3, MsgBuf: 100, MaxSteps: 4, TraceDir: dir}
	if _, err := Run(g, algo.NewPageRank(0.85), cfg, Push); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "pagerank_push_*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("journals in %s = %v, want one pagerank_push_*.jsonl", dir, matches)
	}
}
