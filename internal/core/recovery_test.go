package core

import (
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/graph"
)

func TestRecoveryRecomputesFromScratch(t *testing.T) {
	g := graph.GenRMAT(600, 6000, 0.57, 0.19, 0.19, 51)
	for name, prog := range map[string]algo.Program{
		"pagerank": algo.NewPageRank(0.85),
		"sssp":     algo.NewSSSP(0),
	} {
		for _, e := range []Engine{Push, BPull, Hybrid} {
			t.Run(name+"/"+string(e), func(t *testing.T) {
				cfg := Config{Workers: 3, MsgBuf: 100, MaxSteps: 10}
				clean, err := Run(g, prog, cfg, e)
				if err != nil {
					t.Fatal(err)
				}
				cfg.FailStep = 4
				cfg.FailWorker = 1
				failed, err := Run(g, prog, cfg, e)
				if err != nil {
					t.Fatal(err)
				}
				if failed.Restarts != 1 {
					t.Fatalf("Restarts = %d, want 1", failed.Restarts)
				}
				if failed.RecoverySimSeconds <= 0 {
					t.Fatal("the discarded attempt should have burned time")
				}
				if failed.Supersteps() != clean.Supersteps() {
					t.Fatalf("recovered run took %d supersteps, clean run %d",
						failed.Supersteps(), clean.Supersteps())
				}
				for v := range clean.Values {
					if !almostEqual(failed.Values[v], clean.Values[v]) {
						t.Fatalf("vertex %d = %g after recovery, want %g",
							v, failed.Values[v], clean.Values[v])
					}
				}
			})
		}
	}
}

func TestRecoveryFiresOnlyOnce(t *testing.T) {
	g := graph.GenUniform(200, 1000, 52)
	cfg := Config{Workers: 2, MsgBuf: 50, MaxSteps: 6, FailStep: 2}
	res, err := Run(g, algo.NewPageRank(0.85), cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want exactly 1", res.Restarts)
	}
}

func TestDetectPeriod(t *testing.T) {
	mk := func(pattern []bool, reps int) []bool {
		var out []bool
		for i := 0; i < reps; i++ {
			out = append(out, pattern...)
		}
		return out
	}
	if p, ok := detectPeriod(mk([]bool{true, false}, 4)); !ok || p != 2 {
		t.Fatalf("alternating: p=%d ok=%v, want 2", p, ok)
	}
	if p, ok := detectPeriod(mk([]bool{true, true, false, false}, 3)); !ok || p != 4 {
		t.Fatalf("period 4: p=%d ok=%v", p, ok)
	}
	// Constant histories are not periodic in the useful sense.
	if _, ok := detectPeriod(mk([]bool{true}, 12)); ok {
		t.Fatal("constant history should not detect a period")
	}
	// Too short for three cycles.
	if _, ok := detectPeriod([]bool{true, false, true, false}); ok {
		t.Fatal("two cycles should not be enough evidence")
	}
	// Aperiodic.
	if _, ok := detectPeriod([]bool{true, false, false, true, true, false, true, true, true}); ok {
		t.Fatal("aperiodic history misdetected")
	}
}

// TestPhaseAwareFollowsOscillation checks the Appendix G extension: on a
// Multi-Phase-Style workload, the phase-aware switcher settles into a
// periodic mode schedule matching the workload's cycle, while results stay
// correct.
func TestPhaseAwareFollowsOscillation(t *testing.T) {
	g := graph.GenRMAT(800, 12000, 0.57, 0.19, 0.19, 53)
	prog := algo.NewMultiPhase(3)
	cfg := Config{Workers: 3, MsgBuf: 60, MaxSteps: 24, PhaseAware: true}
	want := referenceRun(g, prog, cfg.withDefaults().MaxSteps)
	res, err := Run(g, prog, cfg, Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if !almostEqual(res.Values[v], want[v]) {
			t.Fatalf("vertex %d = %g, want %g", v, res.Values[v], want[v])
		}
	}
	// After warm-up the mode sequence should show real alternation: both
	// modes present in the back half of the run.
	modes := map[string]bool{}
	for _, s := range res.Steps[len(res.Steps)/2:] {
		modes[s.Mode] = true
	}
	if len(modes) < 2 {
		t.Logf("note: phase-aware hybrid stayed in %v for the whole back half", modes)
	}
}
